
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bloom/bloom_test.cpp" "tests/CMakeFiles/bloom_tests.dir/bloom/bloom_test.cpp.o" "gcc" "tests/CMakeFiles/bloom_tests.dir/bloom/bloom_test.cpp.o.d"
  "/root/repo/tests/bloom/variable_bloom_test.cpp" "tests/CMakeFiles/bloom_tests.dir/bloom/variable_bloom_test.cpp.o" "gcc" "tests/CMakeFiles/bloom_tests.dir/bloom/variable_bloom_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/asap_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/asap/CMakeFiles/asap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/asap_search.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/asap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/asap_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/asap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/asap_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/asap_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/asap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/asap_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
