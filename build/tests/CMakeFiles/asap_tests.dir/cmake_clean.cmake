file(REMOVE_RECURSE
  "CMakeFiles/asap_tests.dir/asap/ad_cache_test.cpp.o"
  "CMakeFiles/asap_tests.dir/asap/ad_cache_test.cpp.o.d"
  "CMakeFiles/asap_tests.dir/asap/ad_test.cpp.o"
  "CMakeFiles/asap_tests.dir/asap/ad_test.cpp.o.d"
  "CMakeFiles/asap_tests.dir/asap/advertiser_test.cpp.o"
  "CMakeFiles/asap_tests.dir/asap/advertiser_test.cpp.o.d"
  "CMakeFiles/asap_tests.dir/asap/asap_protocol_test.cpp.o"
  "CMakeFiles/asap_tests.dir/asap/asap_protocol_test.cpp.o.d"
  "CMakeFiles/asap_tests.dir/asap/scheme_param_test.cpp.o"
  "CMakeFiles/asap_tests.dir/asap/scheme_param_test.cpp.o.d"
  "CMakeFiles/asap_tests.dir/asap/superpeer_test.cpp.o"
  "CMakeFiles/asap_tests.dir/asap/superpeer_test.cpp.o.d"
  "asap_tests"
  "asap_tests.pdb"
  "asap_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
