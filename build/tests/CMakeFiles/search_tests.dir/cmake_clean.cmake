file(REMOVE_RECURSE
  "CMakeFiles/search_tests.dir/search/baseline_test.cpp.o"
  "CMakeFiles/search_tests.dir/search/baseline_test.cpp.o.d"
  "CMakeFiles/search_tests.dir/search/biased_walk_test.cpp.o"
  "CMakeFiles/search_tests.dir/search/biased_walk_test.cpp.o.d"
  "CMakeFiles/search_tests.dir/search/gossip_test.cpp.o"
  "CMakeFiles/search_tests.dir/search/gossip_test.cpp.o.d"
  "CMakeFiles/search_tests.dir/search/propagation_test.cpp.o"
  "CMakeFiles/search_tests.dir/search/propagation_test.cpp.o.d"
  "search_tests"
  "search_tests.pdb"
  "search_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
