# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/overlay_tests[1]_include.cmake")
include("/root/repo/build/tests/bloom_tests[1]_include.cmake")
include("/root/repo/build/tests/trace_tests[1]_include.cmake")
include("/root/repo/build/tests/search_tests[1]_include.cmake")
include("/root/repo/build/tests/asap_tests[1]_include.cmake")
include("/root/repo/build/tests/harness_tests[1]_include.cmake")
include("/root/repo/build/tests/metrics_tests[1]_include.cmake")
include("/root/repo/build/tests/wire_tests[1]_include.cmake")
