file(REMOVE_RECURSE
  "CMakeFiles/asap_net.dir/transit_stub.cpp.o"
  "CMakeFiles/asap_net.dir/transit_stub.cpp.o.d"
  "libasap_net.a"
  "libasap_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
