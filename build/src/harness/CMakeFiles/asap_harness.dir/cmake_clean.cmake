file(REMOVE_RECURSE
  "CMakeFiles/asap_harness.dir/config.cpp.o"
  "CMakeFiles/asap_harness.dir/config.cpp.o.d"
  "CMakeFiles/asap_harness.dir/replay.cpp.o"
  "CMakeFiles/asap_harness.dir/replay.cpp.o.d"
  "CMakeFiles/asap_harness.dir/world.cpp.o"
  "CMakeFiles/asap_harness.dir/world.cpp.o.d"
  "libasap_harness.a"
  "libasap_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
