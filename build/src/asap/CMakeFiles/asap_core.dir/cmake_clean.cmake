file(REMOVE_RECURSE
  "CMakeFiles/asap_core.dir/ad.cpp.o"
  "CMakeFiles/asap_core.dir/ad.cpp.o.d"
  "CMakeFiles/asap_core.dir/ad_cache.cpp.o"
  "CMakeFiles/asap_core.dir/ad_cache.cpp.o.d"
  "CMakeFiles/asap_core.dir/advertiser.cpp.o"
  "CMakeFiles/asap_core.dir/advertiser.cpp.o.d"
  "CMakeFiles/asap_core.dir/asap_protocol.cpp.o"
  "CMakeFiles/asap_core.dir/asap_protocol.cpp.o.d"
  "CMakeFiles/asap_core.dir/superpeer.cpp.o"
  "CMakeFiles/asap_core.dir/superpeer.cpp.o.d"
  "libasap_core.a"
  "libasap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
