# Empty compiler generated dependencies file for asap_bloom.
# This may be replaced when dependencies are built.
