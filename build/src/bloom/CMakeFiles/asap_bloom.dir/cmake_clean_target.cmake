file(REMOVE_RECURSE
  "libasap_bloom.a"
)
