file(REMOVE_RECURSE
  "CMakeFiles/asap_bloom.dir/bloom.cpp.o"
  "CMakeFiles/asap_bloom.dir/bloom.cpp.o.d"
  "CMakeFiles/asap_bloom.dir/variable_bloom.cpp.o"
  "CMakeFiles/asap_bloom.dir/variable_bloom.cpp.o.d"
  "libasap_bloom.a"
  "libasap_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
