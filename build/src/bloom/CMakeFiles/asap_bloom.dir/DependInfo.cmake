
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bloom/bloom.cpp" "src/bloom/CMakeFiles/asap_bloom.dir/bloom.cpp.o" "gcc" "src/bloom/CMakeFiles/asap_bloom.dir/bloom.cpp.o.d"
  "/root/repo/src/bloom/variable_bloom.cpp" "src/bloom/CMakeFiles/asap_bloom.dir/variable_bloom.cpp.o" "gcc" "src/bloom/CMakeFiles/asap_bloom.dir/variable_bloom.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
