file(REMOVE_RECURSE
  "CMakeFiles/asap_overlay.dir/graph_metrics.cpp.o"
  "CMakeFiles/asap_overlay.dir/graph_metrics.cpp.o.d"
  "CMakeFiles/asap_overlay.dir/overlay.cpp.o"
  "CMakeFiles/asap_overlay.dir/overlay.cpp.o.d"
  "libasap_overlay.a"
  "libasap_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
