file(REMOVE_RECURSE
  "CMakeFiles/asap_sim.dir/bandwidth.cpp.o"
  "CMakeFiles/asap_sim.dir/bandwidth.cpp.o.d"
  "CMakeFiles/asap_sim.dir/engine.cpp.o"
  "CMakeFiles/asap_sim.dir/engine.cpp.o.d"
  "CMakeFiles/asap_sim.dir/liveness.cpp.o"
  "CMakeFiles/asap_sim.dir/liveness.cpp.o.d"
  "libasap_sim.a"
  "libasap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
