file(REMOVE_RECURSE
  "CMakeFiles/asap_wire.dir/messages.cpp.o"
  "CMakeFiles/asap_wire.dir/messages.cpp.o.d"
  "libasap_wire.a"
  "libasap_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
