file(REMOVE_RECURSE
  "libasap_wire.a"
)
