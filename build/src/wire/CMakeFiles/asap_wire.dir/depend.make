# Empty dependencies file for asap_wire.
# This may be replaced when dependencies are built.
