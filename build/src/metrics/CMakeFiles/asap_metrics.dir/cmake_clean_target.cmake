file(REMOVE_RECURSE
  "libasap_metrics.a"
)
