file(REMOVE_RECURSE
  "CMakeFiles/asap_metrics.dir/load_series.cpp.o"
  "CMakeFiles/asap_metrics.dir/load_series.cpp.o.d"
  "CMakeFiles/asap_metrics.dir/search_stats.cpp.o"
  "CMakeFiles/asap_metrics.dir/search_stats.cpp.o.d"
  "libasap_metrics.a"
  "libasap_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
