# Empty dependencies file for asap_metrics.
# This may be replaced when dependencies are built.
