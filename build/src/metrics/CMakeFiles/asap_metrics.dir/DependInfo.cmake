
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/load_series.cpp" "src/metrics/CMakeFiles/asap_metrics.dir/load_series.cpp.o" "gcc" "src/metrics/CMakeFiles/asap_metrics.dir/load_series.cpp.o.d"
  "/root/repo/src/metrics/search_stats.cpp" "src/metrics/CMakeFiles/asap_metrics.dir/search_stats.cpp.o" "gcc" "src/metrics/CMakeFiles/asap_metrics.dir/search_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
