file(REMOVE_RECURSE
  "CMakeFiles/asap_search.dir/baseline.cpp.o"
  "CMakeFiles/asap_search.dir/baseline.cpp.o.d"
  "CMakeFiles/asap_search.dir/gossip.cpp.o"
  "CMakeFiles/asap_search.dir/gossip.cpp.o.d"
  "libasap_search.a"
  "libasap_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
