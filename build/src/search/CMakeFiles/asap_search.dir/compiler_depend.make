# Empty compiler generated dependencies file for asap_search.
# This may be replaced when dependencies are built.
