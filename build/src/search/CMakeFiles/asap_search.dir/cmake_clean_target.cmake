file(REMOVE_RECURSE
  "libasap_search.a"
)
