file(REMOVE_RECURSE
  "CMakeFiles/asap_trace.dir/classes.cpp.o"
  "CMakeFiles/asap_trace.dir/classes.cpp.o.d"
  "CMakeFiles/asap_trace.dir/content_model.cpp.o"
  "CMakeFiles/asap_trace.dir/content_model.cpp.o.d"
  "CMakeFiles/asap_trace.dir/live_content.cpp.o"
  "CMakeFiles/asap_trace.dir/live_content.cpp.o.d"
  "CMakeFiles/asap_trace.dir/trace_gen.cpp.o"
  "CMakeFiles/asap_trace.dir/trace_gen.cpp.o.d"
  "CMakeFiles/asap_trace.dir/trace_io.cpp.o"
  "CMakeFiles/asap_trace.dir/trace_io.cpp.o.d"
  "libasap_trace.a"
  "libasap_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
