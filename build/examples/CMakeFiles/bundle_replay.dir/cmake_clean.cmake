file(REMOVE_RECURSE
  "CMakeFiles/bundle_replay.dir/bundle_replay.cpp.o"
  "CMakeFiles/bundle_replay.dir/bundle_replay.cpp.o.d"
  "bundle_replay"
  "bundle_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bundle_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
