# Empty compiler generated dependencies file for bundle_replay.
# This may be replaced when dependencies are built.
