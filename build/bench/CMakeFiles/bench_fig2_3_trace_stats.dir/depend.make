# Empty dependencies file for bench_fig2_3_trace_stats.
# This may be replaced when dependencies are built.
