# Empty compiler generated dependencies file for bench_fig10_load_timeseries.
# This may be replaced when dependencies are built.
