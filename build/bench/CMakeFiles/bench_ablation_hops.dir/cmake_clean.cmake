file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hops.dir/bench_ablation_hops.cpp.o"
  "CMakeFiles/bench_ablation_hops.dir/bench_ablation_hops.cpp.o.d"
  "bench_ablation_hops"
  "bench_ablation_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
