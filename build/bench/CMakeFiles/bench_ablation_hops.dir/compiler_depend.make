# Empty compiler generated dependencies file for bench_ablation_hops.
# This may be replaced when dependencies are built.
