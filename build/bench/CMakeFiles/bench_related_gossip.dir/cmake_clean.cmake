file(REMOVE_RECURSE
  "CMakeFiles/bench_related_gossip.dir/bench_related_gossip.cpp.o"
  "CMakeFiles/bench_related_gossip.dir/bench_related_gossip.cpp.o.d"
  "bench_related_gossip"
  "bench_related_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
