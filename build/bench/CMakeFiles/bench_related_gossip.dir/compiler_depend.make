# Empty compiler generated dependencies file for bench_related_gossip.
# This may be replaced when dependencies are built.
