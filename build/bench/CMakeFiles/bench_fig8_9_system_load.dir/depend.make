# Empty dependencies file for bench_fig8_9_system_load.
# This may be replaced when dependencies are built.
