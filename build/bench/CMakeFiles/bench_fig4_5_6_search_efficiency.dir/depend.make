# Empty dependencies file for bench_fig4_5_6_search_efficiency.
# This may be replaced when dependencies are built.
