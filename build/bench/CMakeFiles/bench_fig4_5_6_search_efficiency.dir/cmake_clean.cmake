file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_5_6_search_efficiency.dir/bench_fig4_5_6_search_efficiency.cpp.o"
  "CMakeFiles/bench_fig4_5_6_search_efficiency.dir/bench_fig4_5_6_search_efficiency.cpp.o.d"
  "bench_fig4_5_6_search_efficiency"
  "bench_fig4_5_6_search_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_5_6_search_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
