# Empty dependencies file for bench_ablation_superpeer.
# This may be replaced when dependencies are built.
