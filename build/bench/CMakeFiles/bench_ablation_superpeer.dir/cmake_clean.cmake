file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_superpeer.dir/bench_ablation_superpeer.cpp.o"
  "CMakeFiles/bench_ablation_superpeer.dir/bench_ablation_superpeer.cpp.o.d"
  "bench_ablation_superpeer"
  "bench_ablation_superpeer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_superpeer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
