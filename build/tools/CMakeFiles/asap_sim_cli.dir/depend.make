# Empty dependencies file for asap_sim_cli.
# This may be replaced when dependencies are built.
