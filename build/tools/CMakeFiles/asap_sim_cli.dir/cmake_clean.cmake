file(REMOVE_RECURSE
  "CMakeFiles/asap_sim_cli.dir/asap_sim.cpp.o"
  "CMakeFiles/asap_sim_cli.dir/asap_sim.cpp.o.d"
  "asap_sim"
  "asap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
