// Quickstart: build a small world, run ASAP(RW) against the flooding
// baseline on the crawled-like topology, and print the paper's headline
// metrics side by side.
//
//   ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "harness/replay.hpp"
#include "harness/world.hpp"

int main(int argc, char** argv) {
  using namespace asap;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. Build the world: transit-stub physical network, crawled-like
  //    overlay, eDonkey-like content, synthetic query trace.
  auto cfg = harness::ExperimentConfig::make(
      harness::Preset::kSmall, harness::TopologyKind::kCrawled, seed);
  // Keep the quickstart quick: fewer queries than the full bench preset.
  cfg.trace.num_queries = 2'000;
  cfg.trace.joins = 60;
  cfg.trace.leaves = 60;

  std::cout << "building world (" << cfg.content.initial_nodes << " peers, "
            << cfg.phys.total_nodes() << " physical nodes)...\n";
  const auto world = harness::build_world(cfg);
  std::cout << "trace: " << world.trace.num_queries << " queries, "
            << world.trace.num_changes << " content changes, "
            << world.trace.num_joins << " joins, " << world.trace.num_leaves
            << " leaves, horizon " << TextTable::num(world.trace.horizon, 1)
            << " s\n\n";

  // 2. Replay the identical trace against both systems.
  TextTable table({"algorithm", "success", "resp time (ms)",
                   "cost/search", "load (B/node/s)", "load stddev"});
  for (auto kind : {harness::AlgoKind::kFlooding, harness::AlgoKind::kAsapRw}) {
    std::cout << "running " << harness::algo_name(kind) << "...\n";
    const auto res = harness::run_experiment(world, kind);
    table.add_row({res.algo,
                   TextTable::num(100.0 * res.search.success_rate(), 1) + "%",
                   TextTable::num(1e3 * res.search.avg_response_time(), 1),
                   TextTable::bytes(res.search.avg_cost_bytes()),
                   TextTable::num(res.load.mean_bytes_per_node_per_sec, 1),
                   TextTable::num(res.load.stddev_bytes_per_node_per_sec, 1)});
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nASAP(RW) load breakdown over the measurement window:\n";
  {
    const auto res = harness::run_experiment(world, harness::AlgoKind::kAsapRw);
    for (const auto& cs : res.breakdown) {
      std::cout << "  " << sim::traffic_name(cs.category) << ": "
                << TextTable::bytes(static_cast<double>(cs.bytes)) << " ("
                << TextTable::num(100.0 * cs.share, 1) << "%)\n";
    }
    std::cout << "  local hit rate: "
              << TextTable::num(100.0 * res.search.local_hit_rate(), 1)
              << "%\n";
  }
  std::cout << "\nASAP answers searches from locally cached advertisements\n"
               "(one confirmation round trip), so expect a much lower\n"
               "response time and a search cost orders of magnitude below\n"
               "flooding, at the price of background ad traffic.\n";
  return 0;
}
