// Extending the library: plugging a custom search protocol into the
// harness.
//
// Implements "expanding-ring" search — a classic Gnutella refinement the
// paper's related work alludes to: flood with TTL 1, and only on failure
// re-flood with a doubled TTL (1, 2, 4, ...). Cheap for popular content,
// but it pays repeated floods for rare content. Running it through the
// same replayer pits it against flooding and ASAP(RW) on the identical
// workload.
//
// The example shows the full extension surface: derive from
// search::SearchAlgorithm, drive the propagation kernels, account traffic
// via the shared BandwidthLedger, and record metrics with SearchStats —
// then replay the trace by hand (the same loop harness::run_experiment
// uses internally).
//
//   ./custom_protocol [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <limits>

#include "common/table.hpp"
#include "harness/replay.hpp"
#include "harness/world.hpp"
#include "search/propagation.hpp"
#include "sim/liveness.hpp"

namespace {

using namespace asap;

class ExpandingRingSearch final : public search::SearchAlgorithm {
 public:
  ExpandingRingSearch(search::Ctx& ctx, std::uint32_t max_ttl)
      : ctx_(ctx), max_ttl_(max_ttl) {}

  std::string name() const override { return "expanding-ring"; }

  void on_trace_event(const trace::TraceEvent& ev) override {
    if (ev.type != trace::TraceEventType::kQuery) return;
    auto matching =
        ctx_.index.matching_nodes(ev.term_span(), ctx_.live, ctx_.model);
    matching.erase(
        std::remove(matching.begin(), matching.end(), ev.node),
        matching.end());

    metrics::SearchRecord rec;
    Seconds ring_start = ev.time;
    Seconds best = std::numeric_limits<Seconds>::infinity();
    for (std::uint32_t ttl = 1; ttl <= max_ttl_; ttl *= 2) {
      const auto prop = search::flood(
          ctx_, ev.node, ring_start, ttl, ctx_.sizes.query,
          sim::Traffic::kQuery,
          [&](NodeId n, Seconds t, std::uint32_t) {
            if (std::binary_search(matching.begin(), matching.end(), n)) {
              const Seconds back = t + ctx_.latency(n, ev.node);
              ctx_.ledger.deposit(back, sim::Traffic::kResponse,
                                  ctx_.sizes.response);
              best = std::min(best, back);
            }
            return search::VisitAction::kContinue;
          });
      rec.cost_bytes += prop.bytes;
      rec.messages += prop.messages;
      if (best < std::numeric_limits<Seconds>::infinity()) break;
      // Wait out the ring (~ttl hops of latency) before widening it.
      ring_start += 0.3 * ttl;
    }
    rec.success = best < std::numeric_limits<Seconds>::infinity();
    rec.response_time = rec.success ? best - ev.time : 0.0;
    stats_.add(rec);
  }

 private:
  search::Ctx& ctx_;
  std::uint32_t max_ttl_;
};

/// Minimal replay loop for a hand-constructed algorithm (the library's
/// run_experiment does exactly this for the built-in systems).
metrics::SearchStats replay(const harness::World& world,
                            search::SearchAlgorithm& algo,
                            overlay::Overlay& ov, trace::LiveContent& live,
                            trace::ContentIndex& index, sim::Engine& engine,
                            Rng& churn_rng) {
  const Seconds warmup = world.cfg.warmup;
  algo.warm_up(warmup);
  for (const auto& ev : world.trace.events) {
    const Seconds t = ev.time + warmup;
    engine.run_until(t);
    if (ev.type == trace::TraceEventType::kJoin) {
      ov.attach_new(world.cfg.join_degree, churn_rng);
    } else if (ev.type == trace::TraceEventType::kLeave) {
      ov.detach(ev.node);
    }
    live.apply(ev, world.model);
    index.apply(ev, world.model);
    trace::TraceEvent shifted = ev;
    shifted.time = t;
    algo.on_trace_event(shifted);
  }
  return algo.stats();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  auto cfg = harness::ExperimentConfig::make(
      harness::Preset::kSmall, harness::TopologyKind::kCrawled, seed);
  cfg.trace.num_queries = 2'000;
  std::cout << "building world...\n";
  const auto world = harness::build_world(cfg);

  TextTable table(
      {"algorithm", "success %", "resp ms", "cost/search", "msgs/search"});

  // The custom protocol, replayed by hand.
  {
    overlay::Overlay ov = world.base_overlay;
    trace::LiveContent live(world.model);
    trace::ContentIndex index(world.model, live);
    sim::Engine engine;
    sim::BandwidthLedger ledger(world.cfg.warmup + world.trace.horizon +
                                30.0);
    Rng algo_rng(seed);
    Rng churn_rng(seed ^ 0x2545F4914F6CDD1DULL);
    search::Ctx ctx(ov, world.phys, world.node_phys, world.model, live,
                    index, engine, ledger, cfg.sizes, algo_rng);
    ExpandingRingSearch ring(ctx, 16);
    std::cout << "running expanding-ring...\n";
    const auto stats = replay(world, ring, ov, live, index, engine,
                              churn_rng);
    table.add_row({ring.name(),
                   TextTable::num(100.0 * stats.success_rate(), 1),
                   TextTable::num(1e3 * stats.avg_response_time(), 1),
                   TextTable::bytes(stats.avg_cost_bytes()),
                   TextTable::num(stats.avg_messages(), 1)});
  }

  // Built-in references on the identical workload.
  for (const auto kind :
       {harness::AlgoKind::kFlooding, harness::AlgoKind::kAsapRw}) {
    std::cout << "running " << harness::algo_name(kind) << "...\n";
    const auto res = harness::run_experiment(world, kind);
    table.add_row({res.algo,
                   TextTable::num(100.0 * res.search.success_rate(), 1),
                   TextTable::num(1e3 * res.search.avg_response_time(), 1),
                   TextTable::bytes(res.search.avg_cost_bytes()),
                   TextTable::num(res.search.avg_messages(), 1)});
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nExpanding ring undercuts flooding's cost when content is\n"
               "popular but re-floods for rare documents; ASAP sidesteps\n"
               "the dilemma by resolving from cached advertisements.\n";
  return 0;
}
