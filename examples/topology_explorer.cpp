// Topology explorer: exercises the substrate APIs directly — the GT-ITM
// transit-stub physical network and the three overlay generators — and
// prints their structural properties (the §IV-A experimental framework).
//
//   ./topology_explorer [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "net/transit_stub.hpp"
#include "overlay/graph_metrics.hpp"
#include "overlay/overlay.hpp"

int main(int argc, char** argv) {
  using namespace asap;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  Rng rng(seed);

  // --- physical network -------------------------------------------------
  const auto params = net::TransitStubParams::small();
  std::cout << "generating transit-stub network: "
            << params.transit_domains << " transit domains x "
            << params.transit_nodes_per_domain << " transit nodes, "
            << params.stub_domains_per_transit << " stub domains each x "
            << params.stub_nodes_per_domain << " stub nodes = "
            << params.total_nodes() << " physical nodes\n";
  const auto phys = net::TransitStubNetwork::generate(params, rng);
  std::cout << "links: " << phys.num_links() << "\n\n";

  RunningStats latency;
  Rng pick(seed + 1);
  for (int i = 0; i < 20'000; ++i) {
    const auto a = static_cast<PhysNodeId>(pick.below(phys.num_nodes()));
    const auto b = static_cast<PhysNodeId>(pick.below(phys.num_nodes()));
    latency.add(phys.latency(a, b) * 1e3);
  }
  std::cout << "pairwise one-way latency (ms): mean "
            << TextTable::num(latency.mean(), 1) << ", min "
            << TextTable::num(latency.min(), 1) << ", max "
            << TextTable::num(latency.max(), 1) << ", stddev "
            << TextTable::num(latency.stddev(), 1) << "\n\n";

  // --- overlays ----------------------------------------------------------
  constexpr std::uint32_t kPeers = 2'000;
  struct Spec {
    const char* name;
    overlay::Overlay graph;
  };
  std::vector<Spec> overlays;
  overlays.push_back({"random", overlay::Overlay::random(kPeers, 5.0, rng)});
  overlays.push_back(
      {"powerlaw", overlay::Overlay::powerlaw(kPeers, 5.0, 0.74, rng)});
  overlays.push_back(
      {"crawled", overlay::Overlay::crawled_like(kPeers, 3.35, rng)});

  TextTable table({"overlay", "nodes", "edges", "avg degree", "max degree",
                   "% degree<=2", "clustering", "mean hops", "diam >=",
                   "connected"});
  for (const auto& spec : overlays) {
    const auto hist = spec.graph.degree_histogram();
    std::uint32_t leaves = 0;
    for (std::size_t d = 0; d <= 2 && d < hist.size(); ++d) {
      leaves += hist[d];
    }
    const auto cc = overlay::clustering_coefficient(spec.graph, 200, pick);
    const auto paths = overlay::path_stats(spec.graph, 8, pick);
    table.add_row({spec.name, std::to_string(spec.graph.num_nodes()),
                   std::to_string(spec.graph.num_edges()),
                   TextTable::num(spec.graph.avg_degree(), 2),
                   std::to_string(hist.size() - 1),
                   TextTable::num(100.0 * leaves / kPeers, 1),
                   TextTable::num(cc, 3),
                   TextTable::num(paths.mean_hops, 2),
                   std::to_string(paths.max_hops),
                   spec.graph.connected() ? "yes" : "no"});
  }
  table.print(std::cout);

  // --- churn demonstration ------------------------------------------------
  auto& g = overlays.back().graph;
  std::cout << "\nchurn on the crawled overlay: detaching 100 random nodes "
               "and attaching 50 fresh ones...\n";
  for (int i = 0; i < 100; ++i) {
    g.detach(static_cast<NodeId>(pick.below(kPeers)));
  }
  for (int i = 0; i < 50; ++i) g.attach_new(4, pick);
  std::cout << "after churn: " << g.attached_nodes().size()
            << " attached nodes, avg degree "
            << TextTable::num(g.avg_degree(), 2) << '\n';
  return 0;
}
