// Workload persistence: build a world once, save its content model and
// trace to a bundle file, reload, and verify a replay over the reloaded
// bundle reproduces the original run bit-for-bit.
//
// This is the workflow for comparing implementations across machines or
// versions: generate one canonical workload, ship the bundle, replay it
// everywhere.
//
//   ./bundle_replay [path]
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "harness/replay.hpp"
#include "harness/world.hpp"
#include "trace/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace asap;
  const std::string path = argc > 1 ? argv[1] : "/tmp/asap_workload.bundle";

  auto cfg = harness::ExperimentConfig::make(
      harness::Preset::kSmall, harness::TopologyKind::kCrawled, 42);
  cfg.trace.num_queries = 1'500;

  std::cout << "building world...\n";
  auto world = harness::build_world(cfg);

  std::cout << "saving workload bundle to " << path << "...\n";
  trace::save_bundle(path, world.model, world.trace);

  std::cout << "reloading...\n";
  auto bundle = trace::load_bundle(path);
  std::cout << "bundle: " << bundle.model.corpus().size() << " documents, "
            << bundle.trace.events.size() << " events\n";

  // Rebuild a world around the reloaded workload. The physical network and
  // overlay are regenerated from the same seed; the content and trace come
  // from the bundle.
  harness::World reloaded{cfg,
                          std::move(world.phys),
                          world.base_overlay,
                          world.node_phys,
                          std::move(bundle.model),
                          std::move(bundle.trace)};

  std::cout << "replaying ASAP(RW) on both...\n";
  // (the original world's phys network was moved into `reloaded`; rebuild)
  auto world2 = harness::build_world(cfg);
  const auto original =
      harness::run_experiment(world2, harness::AlgoKind::kAsapRw);
  const auto replayed =
      harness::run_experiment(reloaded, harness::AlgoKind::kAsapRw);

  TextTable table({"run", "success %", "resp ms", "cost/search"});
  for (const auto* r : {&original, &replayed}) {
    table.add_row({r == &original ? "generated" : "from bundle",
                   TextTable::num(100.0 * r->search.success_rate(), 2),
                   TextTable::num(1e3 * r->search.avg_response_time(), 2),
                   TextTable::bytes(r->search.avg_cost_bytes())});
  }
  table.print(std::cout);

  const bool identical =
      original.search.successes() == replayed.search.successes() &&
      original.search.avg_cost_bytes() == replayed.search.avg_cost_bytes();
  std::cout << (identical
                    ? "\nbundle replay is bit-identical to the generated run\n"
                    : "\nWARNING: replay diverged from the generated run\n");
  std::remove(path.c_str());
  return identical ? 0 : 1;
}
