// Churn study: how does ASAP(RW) hold up as node churn intensifies?
//
// The paper (§I, §V) claims ASAP "works well under node churn": departures
// leave stale ads behind (confirmations to dead sources fail and prune
// them), and joiners warm their caches with a neighbor ads-request. This
// example sweeps the churn volume on the crawled topology and compares
// ASAP(RW) with flooding.
//
//   ./churn_study [seed]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "harness/replay.hpp"
#include "harness/world.hpp"

int main(int argc, char** argv) {
  using namespace asap;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  TextTable table({"churn (joins+leaves)", "algorithm", "success %",
                   "local hit %", "resp ms", "load B/node/s"});

  for (const std::uint32_t churn : {0u, 100u, 300u, 600u}) {
    auto cfg = harness::ExperimentConfig::make(
        harness::Preset::kSmall, harness::TopologyKind::kCrawled, seed);
    cfg.trace.num_queries = 2'000;
    cfg.trace.joins = churn / 2;
    cfg.trace.leaves = churn / 2;
    cfg.content.joiner_nodes = std::max(1u, churn / 2);
    std::cout << "building world with churn " << churn << "...\n";
    const auto world = harness::build_world(cfg);

    for (const auto kind :
         {harness::AlgoKind::kFlooding, harness::AlgoKind::kAsapRw}) {
      const auto res = harness::run_experiment(world, kind);
      table.add_row(
          {std::to_string(churn), res.algo,
           TextTable::num(100.0 * res.search.success_rate(), 1),
           harness::is_asap(kind)
               ? TextTable::num(100.0 * res.search.local_hit_rate(), 1)
               : std::string("-"),
           TextTable::num(1e3 * res.search.avg_response_time(), 1),
           TextTable::num(res.load.mean_bytes_per_node_per_sec, 1)});
    }
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nExpect ASAP's success rate to degrade only mildly with\n"
               "churn: failed confirmations prune dead cache entries and\n"
               "the h-hop ads request re-resolves from neighbors.\n";
  return 0;
}
