#include "asap/advertiser.hpp"

#include <gtest/gtest.h>

namespace asap::ads {
namespace {

trace::Document doc(TopicId topic, std::vector<KeywordId> kws) {
  return trace::Document{topic, std::move(kws)};
}

TEST(Advertiser, FreshAdvertiserHasNothing) {
  Advertiser a(7);
  EXPECT_EQ(a.source(), 7u);
  EXPECT_FALSE(a.has_content());
  EXPECT_FALSE(a.has_advertised());
  EXPECT_EQ(a.version(), 0u);
  EXPECT_TRUE(a.topics().empty());
  EXPECT_FALSE(a.dirty());
  EXPECT_TRUE(a.pending_patch().empty());
}

TEST(Advertiser, AddDocumentSetsContentAndTopics) {
  Advertiser a(1);
  a.add_document(doc(3, {10, 20}));
  a.add_document(doc(5, {30}));
  EXPECT_TRUE(a.has_content());
  EXPECT_EQ(a.topics(), (std::vector<TopicId>{3, 5}));
  EXPECT_TRUE(a.dirty()) << "content exists but nothing advertised yet";
}

TEST(Advertiser, PublishFullSnapshotsContent) {
  Advertiser a(1);
  a.add_document(doc(2, {10, 20, 30}));
  const auto payload = a.publish_full();
  EXPECT_EQ(a.version(), 1u);
  EXPECT_EQ(payload->source, 1u);
  EXPECT_EQ(payload->version, 1u);
  EXPECT_TRUE(payload->filter.contains(10));
  EXPECT_TRUE(payload->filter.contains(30));
  EXPECT_EQ(payload->topics, (std::vector<TopicId>{2}));
  EXPECT_FALSE(a.dirty());
  EXPECT_TRUE(a.pending_patch().empty());
}

TEST(Advertiser, PendingPatchReconstructsNewFilter) {
  Advertiser a(1);
  a.add_document(doc(2, {10, 20}));
  const auto v1 = a.publish_full();
  a.add_document(doc(2, {30, 40}));
  EXPECT_TRUE(a.dirty());
  const auto patch = a.pending_patch();
  EXPECT_FALSE(patch.empty());
  // Applying the patch to the old advertised filter yields the new one.
  bloom::BloomFilter reconstructed = v1->filter;
  reconstructed.apply_toggles(patch);
  const auto v2 = a.publish_full();
  EXPECT_EQ(reconstructed, v2->filter);
  EXPECT_EQ(v2->version, 2u);
}

TEST(Advertiser, RemovalClearsBitsViaCountingFilter) {
  Advertiser a(1);
  const auto d1 = doc(2, {10, 20});
  const auto d2 = doc(2, {20, 30});  // keyword 20 shared
  a.add_document(d1);
  a.add_document(d2);
  a.publish_full();
  a.remove_document(d1);
  const auto v2 = a.publish_full();
  EXPECT_FALSE(v2->filter.contains(10)) << "10 was unique to d1";
  EXPECT_TRUE(v2->filter.contains(20)) << "20 is still held via d2";
  EXPECT_TRUE(v2->filter.contains(30));
}

TEST(Advertiser, TopicsFollowClassCounts) {
  Advertiser a(1);
  const auto d1 = doc(4, {1});
  const auto d2 = doc(4, {2});
  a.add_document(d1);
  a.add_document(d2);
  a.remove_document(d1);
  EXPECT_EQ(a.topics(), (std::vector<TopicId>{4}));
  a.remove_document(d2);
  EXPECT_TRUE(a.topics().empty());
  EXPECT_FALSE(a.has_content());
}

TEST(Advertiser, NoChangeMeansEmptyPatch) {
  Advertiser a(1);
  const auto d1 = doc(0, {10, 20});
  const auto d2 = doc(0, {10, 20});  // identical keyword set
  a.add_document(d1);
  a.publish_full();
  a.add_document(d2);  // counters bump, projection unchanged
  EXPECT_FALSE(a.dirty());
  EXPECT_TRUE(a.pending_patch().empty());
}

TEST(Advertiser, VersionsIncrementMonotonically) {
  Advertiser a(1);
  a.add_document(doc(0, {1}));
  for (std::uint32_t v = 1; v <= 5; ++v) {
    const auto p = a.publish_full();
    EXPECT_EQ(p->version, v);
  }
}

}  // namespace
}  // namespace asap::ads
