#include "asap/asap_protocol.hpp"

#include <gtest/gtest.h>

#include "../support/test_world.hpp"

namespace asap::ads {
namespace {

using asap::testing::TestWorld;

AsapParams test_params(search::Scheme scheme = search::Scheme::kRandomWalk) {
  AsapParams p;
  p.scheme = scheme;
  p.budget_unit_m0 = 600;  // ~2x coverage of the 300-node test overlay
  p.refresh_period = 30.0;
  return p;
}

/// Warm the protocol: feed warm-up and drain the engine past it.
void warm(TestWorld& w, AsapProtocol& algo, Seconds warmup = 120.0) {
  algo.warm_up(warmup);
  w.engine.run_until(warmup);
}

trace::TraceEvent query_event(const TestWorld& w, NodeId requester,
                              NodeId holder, Seconds t) {
  const DocId d = w.live.docs(holder).front();
  const auto& kws = w.model.doc(d).keywords;
  trace::TraceEvent ev;
  ev.type = trace::TraceEventType::kQuery;
  ev.time = t;
  ev.node = requester;
  ev.doc = d;
  ev.num_terms = static_cast<std::uint8_t>(std::min<std::size_t>(3, kws.size()));
  for (std::uint8_t i = 0; i < ev.num_terms; ++i) ev.terms[i] = kws[i];
  return ev;
}

TEST(AsapProtocol, NamesFollowScheme) {
  TestWorld w;
  EXPECT_EQ(AsapProtocol(w.ctx, test_params(search::Scheme::kFlooding)).name(),
            "asap(fld)");
  EXPECT_EQ(
      AsapProtocol(w.ctx, test_params(search::Scheme::kRandomWalk)).name(),
      "asap(rw)");
  EXPECT_EQ(AsapProtocol(w.ctx, test_params(search::Scheme::kGsa)).name(),
            "asap(gsa)");
}

TEST(AsapProtocol, WarmupPopulatesCaches) {
  TestWorld w;
  AsapProtocol algo(w.ctx, test_params());
  warm(w, algo);
  EXPECT_GT(algo.counters().full_ads, 0u);
  std::uint64_t cached = 0;
  for (NodeId n = 0; n < TestWorld::kNodes; ++n) {
    cached += algo.cache(n).size();
  }
  EXPECT_GT(cached, 500u) << "interest-matching ads must be cached";
  // Selective caching: every cached ad overlaps the cacher's interests.
  for (NodeId n = 0; n < TestWorld::kNodes; ++n) {
    const auto& cache = algo.cache(n);
    for (std::size_t i = 0; i < cache.entries().size(); ++i) {
      EXPECT_TRUE(topics_overlap(cache.entries()[i].ad->topics,
                                 w.model.interests(n)))
          << "node " << n << " cached an uninteresting ad from "
          << cache.sources()[i];
    }
  }
}

TEST(AsapProtocol, FreeRidersDoNotAdvertise) {
  TestWorld w;
  AsapProtocol algo(w.ctx, test_params());
  warm(w, algo);
  for (NodeId n = 0; n < TestWorld::kNodes; ++n) {
    if (w.live.docs(n).empty()) {
      EXPECT_FALSE(algo.advertiser(n).has_advertised())
          << "free-rider " << n << " advertised";
    }
  }
}

TEST(AsapProtocol, SearchSucceedsFromLocalCacheAfterWarmup) {
  TestWorld w;
  AsapProtocol algo(w.ctx, test_params(search::Scheme::kFlooding));
  warm(w, algo);  // flooding delivery covers the whole overlay
  const NodeId holder = w.a_sharer();
  // A requester interested in the holder's class definitely cached the ad.
  const TopicId cls = w.model.doc(w.live.docs(holder).front()).topic;
  NodeId requester = kInvalidNode;
  for (NodeId n = 0; n < TestWorld::kNodes; ++n) {
    if (n == holder) continue;
    const auto& ints = w.model.interests(n);
    if (std::find(ints.begin(), ints.end(), cls) != ints.end()) {
      requester = n;
      break;
    }
  }
  ASSERT_NE(requester, kInvalidNode);
  // Query by the document's unique (title) term so only replica holders
  // match; the first positive confirmation bounds the response time.
  trace::TraceEvent ev = query_event(w, requester, holder, 130.0);
  ev.num_terms = 1;
  ev.terms[0] = w.model.doc(ev.doc).keywords.back();
  algo.on_trace_event(ev);
  EXPECT_EQ(algo.stats().successes(), 1u);
  EXPECT_GT(algo.stats().local_hit_rate(), 0.0);
  EXPECT_GT(algo.stats().avg_response_time(), 0.0);
  // One-hop search: at most one confirmation round trip to this holder.
  const Seconds rtt = 2.0 * w.ctx.latency(requester, holder);
  EXPECT_LE(algo.stats().avg_response_time(), rtt + 1e-9);
}

TEST(AsapProtocol, SearchCostIsOrdersBelowFlooding) {
  TestWorld w;
  AsapProtocol algo(w.ctx, test_params(search::Scheme::kFlooding));
  warm(w, algo);
  const NodeId holder = w.a_sharer();
  algo.on_trace_event(query_event(w, holder == 0 ? 1 : 0, holder, 130.0));
  // Flooding the 300-node overlay costs ~2|E|*80 B ~ 120 KB; an ASAP search
  // is a few confirmation/ads-request messages.
  EXPECT_LT(algo.stats().avg_cost_bytes(), 30'000.0);
}

TEST(AsapProtocol, OfflineSourceConfirmationFailsOverToNeighbors) {
  TestWorld w;
  AsapProtocol algo(w.ctx, test_params(search::Scheme::kFlooding));
  warm(w, algo);
  const NodeId holder = w.a_sharer();
  // Take the only holder offline: search must fail but still be counted.
  w.live.set_online(holder, false);
  trace::TraceEvent ev = query_event(w, holder == 0 ? 1 : 0, holder, 130.0);
  // Use the doc's unique (last) keyword so only this holder can match.
  const auto& kws = w.model.doc(ev.doc).keywords;
  ev.num_terms = 1;
  ev.terms[0] = kws.back();
  algo.on_trace_event(ev);
  EXPECT_EQ(algo.stats().successes(), 0u);
  EXPECT_GT(algo.counters().ads_requests, 0u)
      << "a failed lookup must trigger the ads-request fallback";
  w.live.set_online(holder, true);
}

TEST(AsapProtocol, DeadEntriesArePrunedAfterFailedConfirmation) {
  TestWorld w;
  AsapProtocol algo(w.ctx, test_params(search::Scheme::kFlooding));
  warm(w, algo);
  const NodeId holder = w.a_sharer();
  w.live.set_online(holder, false);
  // Find a requester that cached the holder's ad.
  NodeId requester = kInvalidNode;
  for (NodeId n = 0; n < TestWorld::kNodes; ++n) {
    if (n != holder && algo.cache(n).find(holder) != nullptr) {
      requester = n;
      break;
    }
  }
  ASSERT_NE(requester, kInvalidNode);
  trace::TraceEvent ev = query_event(w, requester, holder, 130.0);
  const auto& kws = w.model.doc(ev.doc).keywords;
  ev.num_terms = 1;
  ev.terms[0] = kws.back();
  algo.on_trace_event(ev);
  EXPECT_EQ(algo.cache(requester).find(holder), nullptr)
      << "entry for a dead source must be dropped";
  w.live.set_online(holder, true);
}

TEST(AsapProtocol, ContentChangeEmitsPatchAd) {
  TestWorld w;
  AsapProtocol algo(w.ctx, test_params());
  warm(w, algo);
  const NodeId sharer = w.a_sharer();
  const auto patches_before = algo.counters().patch_ads;
  const auto version_before = algo.advertiser(sharer).version();
  // Mint a new document for the sharer and announce the addition.
  Rng mint_rng(5);
  // (const_cast: the test owns the world; ContentModel mutation mirrors
  // what the trace generator does mid-trace.)
  auto& model = const_cast<trace::ContentModel&>(w.model);
  const DocId fresh = model.mint_document(w.model.interests(sharer).front(),
                                          mint_rng);
  trace::TraceEvent ev;
  ev.type = trace::TraceEventType::kAddDoc;
  ev.time = 130.0;
  ev.node = sharer;
  ev.doc = fresh;
  w.live.apply(ev, w.model);
  algo.on_trace_event(ev);
  EXPECT_EQ(algo.counters().patch_ads, patches_before + 1);
  EXPECT_EQ(algo.advertiser(sharer).version(), version_before + 1);
}

TEST(AsapProtocol, JoinAdvertisesAndWarmsCache) {
  TestWorld w;
  AsapProtocol algo(w.ctx, test_params());
  warm(w, algo);
  // Pick a joiner slot that shares content.
  NodeId joiner = kInvalidNode;
  for (NodeId n = TestWorld::kNodes;
       n < TestWorld::kNodes + TestWorld::kJoiners; ++n) {
    if (!w.model.joiner_docs(n).empty()) {
      joiner = n;
      break;
    }
  }
  ASSERT_NE(joiner, kInvalidNode);
  const auto fulls_before = algo.counters().full_ads;
  trace::TraceEvent ev;
  ev.type = trace::TraceEventType::kJoin;
  ev.time = 130.0;
  ev.node = joiner;
  // Overlay slots are allocated sequentially; attach every slot up to and
  // including the joiner under test (mirrors the replayer's join order).
  for (NodeId n = TestWorld::kNodes; n <= joiner; ++n) {
    w.overlay.attach_new(4, w.rng);
  }
  w.live.apply(ev, w.model);
  w.index.apply(ev, w.model);
  algo.on_trace_event(ev);
  EXPECT_EQ(algo.counters().full_ads, fulls_before + 1);
  EXPECT_GT(algo.cache(joiner).size(), 0u)
      << "join-time ads request must warm the joiner's cache";
}

TEST(AsapProtocol, RefreshBeaconsFlowPeriodically) {
  TestWorld w;
  auto params = test_params();
  params.refresh_period = 10.0;
  AsapProtocol algo(w.ctx, params);
  warm(w, algo, 60.0);
  const auto before = algo.counters().refresh_ads;
  w.engine.run_until(200.0);
  EXPECT_GT(algo.counters().refresh_ads, before);
  EXPECT_GT(w.ledger.total(sim::Traffic::kRefreshAd), 0u);
}

TEST(AsapProtocol, LeaveStopsRefreshBeacons) {
  TestWorld w;
  auto params = test_params();
  params.refresh_period = 10.0;
  AsapProtocol algo(w.ctx, params);
  warm(w, algo, 60.0);
  // Take every sharer offline; beacons must die out.
  for (NodeId n = 0; n < TestWorld::kNodes; ++n) {
    if (!w.live.docs(n).empty()) w.live.set_online(n, false);
  }
  w.engine.run_until(100.0);
  const auto at_100 = algo.counters().refresh_ads;
  w.engine.run_until(400.0);
  EXPECT_EQ(algo.counters().refresh_ads, at_100);
}

TEST(AsapProtocol, DeliveredAdTrafficLandsInCorrectCategories) {
  TestWorld w;
  AsapProtocol algo(w.ctx, test_params());
  warm(w, algo);
  EXPECT_GT(w.ledger.total(sim::Traffic::kFullAd), 0u);
  EXPECT_EQ(w.ledger.total(sim::Traffic::kQuery), 0u)
      << "ASAP never sends baseline query messages";
}

TEST(AsapProtocol, RejectsBadParams) {
  TestWorld w;
  auto p = test_params();
  p.budget_unit_m0 = 0;
  EXPECT_THROW(AsapProtocol(w.ctx, p), ConfigError);
}

TEST(AsapProtocol, ZeroCacheCapacityIsAValidAblation) {
  // capacity 0 disables caching entirely (AdCache::put is a no-op), which
  // measures the protocol with dissemination but no stored state.
  TestWorld w;
  auto p = test_params();
  p.cache_capacity = 0;
  AsapProtocol algo(w.ctx, p);
  warm(w, algo);
  EXPECT_GT(algo.counters().full_ads, 0u) << "dissemination still runs";
  for (NodeId n = 0; n < TestWorld::kNodes; ++n) {
    EXPECT_EQ(algo.cache(n).size(), 0u);
  }
}

TEST(AsapProtocol, PaperPresetMatchesPaperParameters) {
  const auto p = AsapParams::paper(search::Scheme::kRandomWalk);
  EXPECT_EQ(p.budget_unit_m0, 3'000u);  // M0 (§IV-A)
  EXPECT_EQ(p.walkers, 5u);
  EXPECT_EQ(p.flood_ttl, 6u);
  EXPECT_EQ(p.ads_request_hops, 1u);  // h = 1 by default (§III-C)
}

}  // namespace
}  // namespace asap::ads
