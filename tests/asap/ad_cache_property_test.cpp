// Property tests for the AdCache hashed-query fast path: under random
// mutation sequences (put / patch / refresh / erase / evict / touch) the
// prefilter-accelerated scans must return exactly what the legacy
// hash-per-term scans return — same ads, same order — and the parallel
// SoA arrays must stay mutually consistent across swap-with-back erases.
#include "asap/ad_cache.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "bloom/hashed_query.hpp"

namespace asap::ads {
namespace {

AdPayloadPtr make_ad(NodeId src, std::uint32_t version,
                     const std::vector<KeywordId>& keys,
                     std::vector<TopicId> topics) {
  bloom::BloomFilter f;
  for (auto k : keys) f.insert(k);
  return std::make_shared<const AdPayload>(src, version, std::move(f),
                                           std::move(topics));
}

TEST(AdCacheProperty, HashedScansMatchLegacyUnderRandomOps) {
  constexpr NodeId kSources = 96;    // 2x capacity: keeps eviction busy
  constexpr std::uint64_t kKeyPool = 64;  // small pool: queries really match
  const bloom::BloomParams params;
  AdCache c(48);
  Rng rng(123);
  std::map<NodeId, std::uint32_t> version;
  bloom::HashedQuery q;
  std::vector<AdPayloadPtr> legacy, hashed;

  const auto random_keys = [&rng]() {
    std::vector<KeywordId> keys;
    const std::uint64_t n = 1 + rng.below(5);
    for (std::uint64_t i = 0; i < n; ++i) {
      keys.push_back(static_cast<KeywordId>(rng.below(kKeyPool)));
    }
    return keys;
  };
  const auto random_topics = [&rng]() {
    return std::vector<TopicId>{static_cast<TopicId>(rng.below(4))};
  };

  double now = 0.0;
  for (int step = 0; step < 4'000; ++step) {
    now += 1.0;
    const NodeId src = static_cast<NodeId>(rng.below(kSources));
    switch (rng.below(6)) {
      case 0:
      case 1: {  // put, sometimes a stale re-put
        const std::uint32_t v =
            rng.below(4) == 0 ? version[src] : ++version[src];
        c.put(make_ad(src, std::max(v, 1u), random_keys(), random_topics()),
              now, rng);
        break;
      }
      case 2: {  // patch: usually against the cached base, sometimes stale
        const auto* e = c.find(src);
        const std::uint32_t base =
            (e != nullptr ? e->ad->version : version[src] + 1) +
            (rng.below(3) == 0 ? 1 : 0);
        const std::uint32_t next_v = base + 1;
        version[src] = std::max(version[src], next_v);
        c.apply_patch(src, base,
                      make_ad(src, next_v, random_keys(), random_topics()),
                      now);
        break;
      }
      case 3:  // refresh: matching, stale or newer at random
        c.on_refresh(src, version[src] + static_cast<std::uint32_t>(
                                              rng.below(3)),
                     now);
        break;
      case 4:
        c.erase(src);
        break;
      case 5:
        c.touch(src, now);
        break;
    }

    // SoA consistency: parallel arrays agree, the index survives every
    // swap-with-back, and each prefilter word is its entry's current fold.
    ASSERT_EQ(c.sources().size(), c.entries().size());
    ASSERT_EQ(c.prefilters().size(), c.entries().size());
    for (std::size_t i = 0; i < c.entries().size(); ++i) {
      ASSERT_EQ(c.find(c.sources()[i]), &c.entries()[i]) << "step " << step;
      ASSERT_EQ(c.prefilters()[i], c.entries()[i].ad->filter.fold())
          << "step " << step;
    }

    if (step % 7 != 0) continue;
    // Random query (0..3 terms, some absent from every filter) through
    // both scan paths: identical ads in identical order.
    std::vector<KeywordId> terms;
    for (std::uint64_t t = rng.below(4); t > 0; --t) {
      terms.push_back(static_cast<KeywordId>(rng.below(kKeyPool + 16)));
    }
    q.assign(terms, params);
    c.collect_matches(std::span<const KeywordId>(terms), legacy);
    c.collect_matches(q, hashed);
    ASSERT_EQ(legacy, hashed) << "step " << step;

    const std::vector<TopicId> interests{static_cast<TopicId>(rng.below(4))};
    const auto max_ads = static_cast<std::uint32_t>(1 + rng.below(12));
    const auto max_topical = static_cast<std::uint32_t>(rng.below(6));
    c.collect_for_reply(std::span<const KeywordId>(terms), interests,
                        max_ads, max_topical, legacy);
    c.collect_for_reply(q, interests, max_ads, max_topical, hashed);
    ASSERT_EQ(legacy, hashed) << "step " << step;
  }
}

TEST(AdCacheProperty, IndexMapAgreesWithMapOracle) {
  // The FlatMap-backed source→index map must track membership exactly
  // like an ordered-map oracle under random put / erase / erase_stale /
  // touch — capacity is sized so eviction never fires, which makes the
  // oracle's membership prediction exact.
  constexpr NodeId kSources = 200;
  AdCache c(256);
  Rng rng(99);
  std::map<NodeId, std::uint32_t> oracle;  // source -> expected version
  double now = 0.0;
  for (int step = 0; step < 20'000; ++step) {
    now += 1.0;
    const NodeId src = static_cast<NodeId>(rng.below(kSources));
    switch (rng.below(4)) {
      case 0:
      case 1: {  // put a strictly newer version: always stored
        const std::uint32_t v = oracle.count(src) ? oracle[src] + 1 : 1;
        const auto r = c.put(make_ad(src, v, {static_cast<KeywordId>(src)},
                                     {static_cast<TopicId>(src % 4)}),
                             now, rng);
        EXPECT_TRUE(r.stored);
        EXPECT_FALSE(r.evicted);
        oracle[src] = v;
        break;
      }
      case 2:
        EXPECT_EQ(c.erase(src), oracle.erase(src) > 0);
        break;
      default:
        c.touch(src, now);  // membership-neutral
        break;
    }
    ASSERT_EQ(c.size(), oracle.size());
    if (step % 251 != 0) continue;
    // Periodic deep check: every oracle entry findable at its version,
    // and the dense arrays list exactly the oracle's key set.
    for (const auto& [s, v] : oracle) {
      const auto* e = c.find(s);
      ASSERT_NE(e, nullptr) << "source " << s;
      EXPECT_EQ(e->ad->version, v);
    }
    for (const auto s : c.sources()) {
      ASSERT_TRUE(oracle.count(s)) << "stray source " << s;
    }
  }
}

TEST(AdCacheProperty, EvictionKeepsIndexExactAtCapacity) {
  // Over-capacity insert load: the cache may evict whichever sampled-LRU
  // victim it likes, but size must pin at capacity and the index must
  // keep describing exactly the surviving entries.
  constexpr std::uint32_t kCapacity = 32;
  AdCache c(kCapacity);
  Rng rng(5);
  for (int step = 0; step < 5'000; ++step) {
    const NodeId src = static_cast<NodeId>(rng.below(500));
    c.put(make_ad(src, 1, {static_cast<KeywordId>(src % 64)}, {0}),
          static_cast<double>(step), rng);
    ASSERT_LE(c.size(), kCapacity);
    ASSERT_EQ(c.sources().size(), c.entries().size());
    for (std::size_t i = 0; i < c.entries().size(); ++i) {
      ASSERT_EQ(c.find(c.sources()[i]), &c.entries()[i]) << "step " << step;
    }
  }
  EXPECT_EQ(c.size(), kCapacity);
}

TEST(AdCacheProperty, EmptyCacheFootprintSupportsMillionNodeWorlds) {
  // A million-node world keeps one AdCache per peer; an idle cache must
  // own (almost) no heap. The SoA arrays, both FlatMaps and the lazy
  // fold-count array all start unallocated.
  const AdCache c(1'500);
  EXPECT_EQ(c.memory_bytes(), 0u);
  EXPECT_LT(sizeof(AdCache), 200u);
}

TEST(AdCacheProperty, ForeignGeometryEntriesAreNeverPrefilteredOut) {
  // An entry whose filter uses a different geometry cannot be folded into
  // a meaningful prefilter; it must be marked always-scan (~0) and still
  // match via the legacy per-term fallback.
  AdCache c(10);
  Rng rng(7);
  c.put(make_ad(1, 1, {5}, {0}), 1.0, rng);
  bloom::BloomFilter foreign(bloom::BloomParams::for_capacity(64, 4));
  foreign.insert(5);
  c.put(std::make_shared<const AdPayload>(2, 1, std::move(foreign),
                                          std::vector<TopicId>{0}),
        1.0, rng);
  ASSERT_EQ(c.size(), 2u);
  for (std::size_t i = 0; i < c.entries().size(); ++i) {
    if (c.sources()[i] == 2) {
      EXPECT_EQ(c.prefilters()[i], ~0ULL);
    } else {
      EXPECT_EQ(c.prefilters()[i], c.entries()[i].ad->filter.fold());
    }
  }

  const std::vector<KeywordId> terms{5};
  const bloom::HashedQuery q(terms, bloom::BloomParams{});
  std::vector<AdPayloadPtr> legacy, hashed;
  c.collect_matches(std::span<const KeywordId>(terms), legacy);
  c.collect_matches(q, hashed);
  EXPECT_EQ(legacy, hashed);
  ASSERT_EQ(hashed.size(), 2u);
}

}  // namespace
}  // namespace asap::ads
