// Property tests for the adaptive advertisement scheduler's fairness
// contract (ad_scheduler.hpp): under random insert / erase / urgent /
// touch_changed sequences,
//   * every live item is emitted at least once per
//     4 * ceil(total_bytes / round_budget) rounds (rotation fairness with
//     the worst-case stride-4 decay), and
//   * within one round every urgent emission precedes every rotation
//     emission (priority ads first).
#include "asap/ad_scheduler.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"

namespace asap::ads {
namespace {

using Emission = AdScheduler::Emission;

std::uint64_t fairness_window(Bytes total, Bytes budget) {
  const Bytes cycles = (total + budget - 1) / budget;
  return 4 * std::max<Bytes>(1, cycles);
}

// Shadow bookkeeping for one live item: when we last saw it emitted (or
// inserted) and the largest total_bytes the ring reached since then — the
// conservative denominator for the fairness bound while the set churns.
struct Watch {
  std::uint64_t anchor_round = 0;
  Bytes max_total = 0;
};

TEST(AdSchedulerProperty, FairnessAndUrgentOrderUnderRandomChurn) {
  AdSchedulerParams params;
  params.round_budget = 1'000;
  AdScheduler sched(params);
  Rng rng(20260808);

  std::map<AdScheduler::ItemId, Watch> live;
  AdScheduler::ItemId next_id = 0;
  std::vector<Emission> emissions;

  for (int step = 0; step < 3'000; ++step) {
    // --- random mutations between rounds --------------------------------
    const std::uint64_t ops = rng.below(4);
    for (std::uint64_t op = 0; op < ops; ++op) {
      switch (rng.below(5)) {
        case 0: {  // insert a fresh item (sizes straddle the budget)
          if (live.size() >= 40) break;
          const Bytes bytes = 10 + rng.below(700);
          const bool urgent = rng.below(2) == 0;
          sched.upsert(next_id, bytes, urgent);
          live[next_id] = Watch{sched.round(), sched.total_bytes()};
          ++next_id;
          break;
        }
        case 1: {  // erase a random live item
          if (live.empty()) break;
          auto it = live.begin();
          std::advance(it, rng.below(live.size()));
          EXPECT_TRUE(sched.erase(it->first));
          live.erase(it);
          break;
        }
        case 2: {  // urgent re-upsert (content change, maybe resized)
          if (live.empty()) break;
          auto it = live.begin();
          std::advance(it, rng.below(live.size()));
          sched.upsert(it->first, 10 + rng.below(700), true);
          break;
        }
        case 3: {  // touch without queue-jumping
          if (live.empty()) break;
          auto it = live.begin();
          std::advance(it, rng.below(live.size()));
          sched.touch_changed(it->first);
          break;
        }
        default:
          break;  // no-op: rounds outnumber mutations
      }
    }

    // --- one round ------------------------------------------------------
    const auto plan = sched.next_round(emissions);
    ASSERT_EQ(plan.emitted, emissions.size());

    // Urgent emissions strictly precede rotation emissions.
    bool seen_rotation = false;
    Bytes emitted_bytes = 0;
    for (const Emission& e : emissions) {
      if (e.urgent) {
        EXPECT_FALSE(seen_rotation)
            << "urgent emission after a rotation emission in round "
            << sched.round();
      } else {
        seen_rotation = true;
      }
      ASSERT_TRUE(live.count(e.id));
      live[e.id] = Watch{sched.round(), sched.total_bytes()};
      ++emitted_bytes;
    }
    // No item is emitted twice in one round.
    std::map<AdScheduler::ItemId, int> seen;
    for (const Emission& e : emissions) EXPECT_EQ(++seen[e.id], 1);

    // Fairness: no live item waits longer than the stride-4 worst case
    // over the ring's peak byte load since its last emission.
    for (auto& [id, w] : live) {
      w.max_total = std::max(w.max_total, sched.total_bytes());
      const std::uint64_t waited = sched.round() - w.anchor_round;
      EXPECT_LE(waited, fairness_window(w.max_total, params.round_budget))
          << "item " << id << " starved at round " << sched.round();
    }
  }
}

TEST(AdSchedulerProperty, StrideDecayAndChangeReset) {
  AdSchedulerParams params;
  params.round_budget = 10'000;  // everything always fits
  params.stable_after = 2;
  params.very_stable_after = 4;
  AdScheduler sched(params);
  sched.upsert(7, 100, false);

  std::vector<Emission> out;
  std::vector<std::uint64_t> emit_rounds;
  for (int i = 0; i < 20; ++i) {
    sched.next_round(out);
    if (!out.empty()) emit_rounds.push_back(sched.round());
  }
  // Every round while fresh (stride 1), every 2nd once stable, every 4th
  // once very stable.
  const std::vector<std::uint64_t> expected{1, 2, 4, 6, 10, 14, 18};
  EXPECT_EQ(emit_rounds, expected);
  EXPECT_EQ(sched.stride_of(7), 4u);

  // A change resets the decay to the every-round cadence.
  sched.touch_changed(7);
  EXPECT_EQ(sched.stride_of(7), 1u);
  sched.next_round(out);
  // Last emission was round 18; round 21 with stride 1 emits immediately.
  EXPECT_EQ(out.size(), 1u);
}

TEST(AdSchedulerProperty, BudgetSpillCarriesOver) {
  AdSchedulerParams params;
  params.round_budget = 1'000;
  AdScheduler sched(params);
  // Three items of 600 bytes: two fit per... no — the first packs, the
  // second (1200 > 1000) spills, so each round ships one and the cursor
  // carries the remainder over.
  sched.upsert(1, 600, false);
  sched.upsert(2, 600, false);
  sched.upsert(3, 600, false);

  std::vector<Emission> out;
  auto plan = sched.next_round(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(plan.spilled, 2u);

  plan = sched.next_round(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 2u);

  plan = sched.next_round(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 3u);
  // A full cycle completed: everyone was served in ring order, nobody
  // was emitted twice before the others got their turn.
}

TEST(AdSchedulerProperty, UrgentHalfBudgetCapLeavesRoomForRotation) {
  AdSchedulerParams params;
  params.round_budget = 1'000;
  AdScheduler sched(params);
  sched.upsert(1, 400, true);
  sched.upsert(2, 400, true);   // 800 > cap 500 after the first: spills
  sched.upsert(3, 300, false);  // rotation must still get budget room

  std::vector<Emission> out;
  sched.next_round(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_TRUE(out[0].urgent);
  EXPECT_EQ(out[1].id, 3u);
  EXPECT_FALSE(out[1].urgent);

  // The spilled urgent item leads the next round.
  sched.next_round(out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].id, 2u);
  EXPECT_TRUE(out[0].urgent);
}

TEST(AdSchedulerProperty, OrderedEraseKeepsCursorStable) {
  AdSchedulerParams params;
  params.round_budget = 250;  // one small item per round
  AdScheduler sched(params);
  for (AdScheduler::ItemId id = 0; id < 6; ++id) {
    sched.upsert(id, 200, false);
  }
  std::vector<Emission> out;
  sched.next_round(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 0u);
  // Erasing an item behind the cursor must not make the rotation skip or
  // repeat anyone.
  EXPECT_TRUE(sched.erase(0));
  std::vector<AdScheduler::ItemId> order;
  for (int i = 0; i < 5; ++i) {
    sched.next_round(out);
    ASSERT_EQ(out.size(), 1u);
    order.push_back(out[0].id);
  }
  EXPECT_EQ(order, (std::vector<AdScheduler::ItemId>{1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace asap::ads
