#include "asap/superpeer.hpp"

#include "asap/asap_protocol.hpp"

#include <gtest/gtest.h>

#include "../support/test_world.hpp"

namespace asap::ads {
namespace {

using asap::testing::TestWorld;

SuperpeerParams test_params(search::Scheme s = search::Scheme::kRandomWalk) {
  SuperpeerParams p;
  p.scheme = s;
  p.budget_unit_m0 = 200;  // the 45-superpeer test mesh is tiny
  p.refresh_period = 30.0;
  return p;
}

void warm(TestWorld& w, SuperpeerAsap& algo, Seconds warmup = 120.0) {
  algo.warm_up(warmup);
  w.engine.run_until(warmup);
}

trace::TraceEvent query_event(const TestWorld& w, NodeId requester,
                              NodeId holder, Seconds t) {
  const DocId d = w.live.docs(holder).front();
  const auto& kws = w.model.doc(d).keywords;
  trace::TraceEvent ev;
  ev.type = trace::TraceEventType::kQuery;
  ev.time = t;
  ev.node = requester;
  ev.doc = d;
  ev.num_terms = static_cast<std::uint8_t>(std::min<std::size_t>(3, kws.size()));
  for (std::uint8_t i = 0; i < ev.num_terms; ++i) ev.terms[i] = kws[i];
  return ev;
}

TEST(SuperpeerAsap, HierarchyCoversEveryNode) {
  TestWorld w;
  SuperpeerAsap algo(w.ctx, test_params());
  EXPECT_NEAR(algo.num_superpeers(), 0.15 * TestWorld::kNodes,
              0.02 * TestWorld::kNodes);
  for (NodeId n = 0; n < TestWorld::kNodes; ++n) {
    const NodeId proxy = algo.proxy_of(n);
    ASSERT_NE(proxy, kInvalidNode) << "node " << n << " has no proxy";
    EXPECT_TRUE(algo.is_superpeer(proxy));
    if (algo.is_superpeer(n)) EXPECT_EQ(proxy, n);
  }
}

TEST(SuperpeerAsap, SuperpeersAreHighDegreeNodes) {
  TestWorld w;
  SuperpeerAsap algo(w.ctx, test_params());
  // Every superpeer's degree must be >= every leaf's degree minus ties.
  std::uint32_t min_sp = UINT32_MAX, max_leaf = 0;
  for (NodeId n = 0; n < TestWorld::kNodes; ++n) {
    if (algo.is_superpeer(n)) {
      min_sp = std::min(min_sp, w.overlay.degree(n));
    } else {
      max_leaf = std::max(max_leaf, w.overlay.degree(n));
    }
  }
  EXPECT_GE(min_sp + 1, max_leaf);  // allow a tie boundary
}

TEST(SuperpeerAsap, OnlySuperpeersCacheAds) {
  TestWorld w;
  SuperpeerAsap algo(w.ctx, test_params(search::Scheme::kFlooding));
  warm(w, algo);
  EXPECT_GT(algo.counters().full_ads, 0u);
  EXPECT_GT(algo.counters().proxy_uploads, 0u);
  EXPECT_GT(algo.total_cached_ads(), 0u);
  for (NodeId n = 0; n < TestWorld::kNodes; ++n) {
    if (!algo.is_superpeer(n)) {
      EXPECT_EQ(algo.cache(n).size(), 0u) << "leaf " << n << " cached ads";
    }
  }
}

TEST(SuperpeerAsap, LeafSearchSucceedsThroughProxy) {
  TestWorld w;
  SuperpeerAsap algo(w.ctx, test_params(search::Scheme::kFlooding));
  warm(w, algo);
  const NodeId holder = w.a_sharer();
  // Pick a leaf requester.
  NodeId leaf = kInvalidNode;
  for (NodeId n = 0; n < TestWorld::kNodes; ++n) {
    if (!algo.is_superpeer(n) && n != holder) {
      leaf = n;
      break;
    }
  }
  ASSERT_NE(leaf, kInvalidNode);
  algo.on_trace_event(query_event(w, leaf, holder, 130.0));
  EXPECT_EQ(algo.stats().successes(), 1u);
  EXPECT_GT(algo.counters().proxy_queries, 0u);
  // Response pays the proxy round trip plus the confirmation round trip.
  EXPECT_GT(algo.stats().avg_response_time(),
            2.0 * w.ctx.latency(leaf, algo.proxy_of(leaf)) - 1e-9);
}

TEST(SuperpeerAsap, MemoryConcentratesOnSuperpeers) {
  // Flat ASAP spreads cache entries over every interested node; the
  // superpeer mode concentrates them on ~15% of nodes. Total entries must
  // be far below flat ASAP's (same warm-up, same world).
  TestWorld w1(99), w2(99);
  AsapParams flat;
  flat.scheme = search::Scheme::kFlooding;
  AsapProtocol flat_algo(w1.ctx, flat);
  flat_algo.warm_up(120.0);
  w1.engine.run_until(120.0);
  std::uint64_t flat_total = 0;
  for (NodeId n = 0; n < TestWorld::kNodes; ++n) {
    flat_total += flat_algo.cache(n).size();
  }

  SuperpeerAsap sp_algo(w2.ctx, test_params(search::Scheme::kFlooding));
  warm(w2, sp_algo);
  EXPECT_LT(sp_algo.total_cached_ads(), flat_total);
  EXPECT_GT(sp_algo.total_cached_ads(), 0u);
}

TEST(SuperpeerAsap, ContentChangeFlowsThroughProxy) {
  TestWorld w;
  SuperpeerAsap algo(w.ctx, test_params());
  warm(w, algo);
  const NodeId sharer = w.a_sharer();
  const auto patches_before = algo.counters().patch_ads;
  Rng mint_rng(5);
  auto& model = const_cast<trace::ContentModel&>(w.model);
  const DocId fresh =
      model.mint_document(w.model.interests(sharer).front(), mint_rng);
  trace::TraceEvent ev;
  ev.type = trace::TraceEventType::kAddDoc;
  ev.time = 130.0;
  ev.node = sharer;
  ev.doc = fresh;
  w.live.apply(ev, w.model);
  algo.on_trace_event(ev);
  EXPECT_EQ(algo.counters().patch_ads, patches_before + 1);
}

TEST(SuperpeerAsap, OfflineProxyTriggersReassignment) {
  TestWorld w;
  SuperpeerAsap algo(w.ctx, test_params(search::Scheme::kFlooding));
  warm(w, algo);
  const NodeId holder = w.a_sharer();
  NodeId leaf = kInvalidNode;
  for (NodeId n = 0; n < TestWorld::kNodes; ++n) {
    if (!algo.is_superpeer(n) && n != holder) {
      leaf = n;
      break;
    }
  }
  ASSERT_NE(leaf, kInvalidNode);
  const NodeId old_proxy = algo.proxy_of(leaf);
  w.live.set_online(old_proxy, false);
  algo.on_trace_event(query_event(w, leaf, holder, 130.0));
  // The query still completed (through a replacement proxy).
  EXPECT_EQ(algo.stats().total(), 1u);
  EXPECT_NE(algo.proxy_of(leaf), old_proxy);
  w.live.set_online(old_proxy, true);
}

TEST(SuperpeerAsap, NamesFollowScheme) {
  TestWorld w;
  EXPECT_EQ(SuperpeerAsap(w.ctx, test_params(search::Scheme::kFlooding)).name(),
            "sp-asap(fld)");
  EXPECT_EQ(
      SuperpeerAsap(w.ctx, test_params(search::Scheme::kRandomWalk)).name(),
      "sp-asap(rw)");
}

TEST(SuperpeerAsap, RejectsBadParams) {
  TestWorld w;
  auto p = test_params();
  p.superpeer_fraction = 0.0;
  EXPECT_THROW(SuperpeerAsap(w.ctx, p), ConfigError);
  p = test_params();
  p.budget_unit_m0 = 0;
  EXPECT_THROW(SuperpeerAsap(w.ctx, p), ConfigError);
}

}  // namespace
}  // namespace asap::ads
