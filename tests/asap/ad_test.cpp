#include "asap/ad.hpp"

#include <gtest/gtest.h>

namespace asap::ads {
namespace {

TEST(Ad, KindNamesAreDistinct) {
  EXPECT_STREQ(ad_kind_name(AdKind::kFull), "full");
  EXPECT_STREQ(ad_kind_name(AdKind::kPatch), "patch");
  EXPECT_STREQ(ad_kind_name(AdKind::kRefresh), "refresh");
}

TEST(Ad, FullAdBytesGrowWithContent) {
  sim::SizeModel sizes;
  bloom::BloomFilter empty;
  const AdPayload sparse(1, 1, empty, {0, 3});
  bloom::BloomFilter loaded;
  for (std::uint64_t k = 0; k < 1'500; ++k) loaded.insert(k);
  const AdPayload dense(2, 1, loaded, {0});
  EXPECT_LT(full_ad_bytes(sparse, sizes), full_ad_bytes(dense, sizes));
  EXPECT_GE(full_ad_bytes(sparse, sizes), sizes.ad_header);
  // A fully loaded filter transmits the whole bitmap (~1.44 KB), matching
  // the paper's 1.43 KB figure.
  EXPECT_NEAR(static_cast<double>(full_ad_bytes(dense, sizes)),
              11'542.0 / 8.0 + sizes.ad_header, 16.0);
}

TEST(Ad, PatchBytesScaleWithToggleCount) {
  sim::SizeModel sizes;
  EXPECT_EQ(patch_ad_bytes(0, 2, sizes), sizes.ad_header + 2);
  EXPECT_EQ(patch_ad_bytes(10, 2, sizes),
            sizes.ad_header + 2 + 10 * sizes.patch_entry);
  EXPECT_LT(patch_ad_bytes(10, 1, sizes), patch_ad_bytes(100, 1, sizes));
}

TEST(Ad, RefreshIsHeaderOnly) {
  sim::SizeModel sizes;
  EXPECT_EQ(refresh_ad_bytes(sizes), sizes.ad_header);
}

TEST(Ad, TopicsOverlapSemantics) {
  EXPECT_TRUE(topics_overlap({1, 3, 5}, {5, 7}));
  EXPECT_TRUE(topics_overlap({1}, {1}));
  EXPECT_FALSE(topics_overlap({1, 3}, {2, 4}));
  EXPECT_FALSE(topics_overlap({}, {1}));
  EXPECT_FALSE(topics_overlap({}, {}));
  EXPECT_TRUE(topics_overlap({0, 2, 4, 6, 8}, {8}));
}

}  // namespace
}  // namespace asap::ads
