// Differential test for the adaptive/delta advertisement paths (DESIGN.md
// §13): for every fault preset (none / churn / lossy / burst) and every ad
// variant (vanilla full+patch, adaptive packed frames, delta-vs-full-base),
// a cacher that reconstructs filters purely from decoded wire bytes must
// end every ad round bit-identical to the canonical AdCache state.
//
// The shadow reconstruction matters because the canonical payloads are
// shared pointers: comparing entry.ad->filter against itself would be
// trivially true. Here the shadow filter is rebuilt from what actually
// crossed the wire — full-ad bodies, patch/delta toggle lists — so any
// drift between the toggle encoding, the version discipline, or the
// delta-base bookkeeping and the canonical state fails the test.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "asap/ad_cache.hpp"
#include "asap/advertiser.hpp"
#include "common/rng.hpp"
#include "wire/messages.hpp"

namespace asap::ads {
namespace {

enum class Variant { kVanilla, kAdaptive, kDelta };
enum class FaultPreset { kNone, kChurn, kLossy, kBurst };

constexpr std::size_t kSources = 12;
constexpr int kRounds = 120;
constexpr std::size_t kPatchThreshold = 64;  // toggles; above -> full ad

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kVanilla: return "vanilla";
    case Variant::kAdaptive: return "adaptive";
    case Variant::kDelta: return "delta";
  }
  return "?";
}

const char* preset_name(FaultPreset p) {
  switch (p) {
    case FaultPreset::kNone: return "none";
    case FaultPreset::kChurn: return "churn";
    case FaultPreset::kLossy: return "lossy";
    case FaultPreset::kBurst: return "burst";
  }
  return "?";
}

// The cacher side: canonical AdCache plus per-source filters reconstructed
// exclusively from decoded wire messages.
struct Cacher {
  AdCache cache;
  Rng rng{55};
  std::map<NodeId, bloom::BloomFilter> shadow;       // current filter
  std::map<NodeId, bloom::BloomFilter> shadow_base;  // last full ad's filter
  std::map<NodeId, std::uint32_t> shadow_version;

  void drop(NodeId src) {
    shadow.erase(src);
    shadow_base.erase(src);
    shadow_version.erase(src);
  }

  void apply(const wire::DecodedAd& d, const AdPayloadPtr& payload,
             double now) {
    const NodeId src = d.header.source;
    switch (d.header.kind) {
      case AdKind::kFull: {
        const auto res = cache.put(payload, now, rng);
        ASSERT_TRUE(d.filter.has_value());
        if (res.stored) {
          shadow[src] = *d.filter;
          shadow_base[src] = *d.filter;
          shadow_version[src] = d.header.version;
        }
        break;
      }
      case AdKind::kPatch: {
        const auto out = cache.apply_patch(src, d.base_version, payload, now);
        if (out == UpdateOutcome::kApplied) {
          ASSERT_TRUE(shadow.count(src));
          shadow[src].apply_toggles(d.toggles);
          shadow_version[src] = d.header.version;
        } else if (out == UpdateOutcome::kInvalidated) {
          drop(src);
        }
        break;
      }
      case AdKind::kDelta: {
        const auto out =
            cache.apply_delta(src, d.base_version, d.toggles, payload, now);
        if (out == UpdateOutcome::kApplied) {
          // Deltas toggle against the last FULL ad, not the previous
          // version — reconstruct from the remembered full-ad filter.
          ASSERT_TRUE(shadow_base.count(src));
          bloom::BloomFilter next = shadow_base[src];
          next.apply_toggles(d.toggles);
          shadow[src] = std::move(next);
          shadow_version[src] = d.header.version;
        } else if (out == UpdateOutcome::kInvalidated) {
          drop(src);
        }
        break;
      }
      case AdKind::kRefresh: {
        const auto out = cache.on_refresh(src, d.header.version, now);
        if (out == UpdateOutcome::kInvalidated) drop(src);
        break;
      }
      default:
        FAIL() << "unexpected ad kind";
    }
  }

  // The differential gate: every cached entry's canonical filter must be
  // bit-identical to the wire-reconstructed shadow.
  void check(Variant v, FaultPreset p, int round) const {
    const auto srcs = cache.sources();
    const auto entries = cache.entries();
    for (std::size_t i = 0; i < srcs.size(); ++i) {
      SCOPED_TRACE(testing::Message()
                   << variant_name(v) << "/" << preset_name(p) << " round "
                   << round << " source " << srcs[i]);
      auto it = shadow.find(srcs[i]);
      ASSERT_NE(it, shadow.end()) << "cached entry with no shadow";
      EXPECT_EQ(it->second, entries[i].ad->filter)
          << "wire-reconstructed filter diverged from canonical state";
      EXPECT_EQ(shadow_version.at(srcs[i]), entries[i].ad->version);
    }
  }
};

// One advertisement from one source this round, already encoded.
struct Outgoing {
  AdPayloadPtr payload;  // canonical payload (what the sim hands around)
  std::vector<std::uint8_t> bytes;
};

trace::Document random_doc(Rng& rng) {
  std::vector<KeywordId> kws;
  const std::uint64_t n = 1 + rng.below(4);
  for (std::uint64_t i = 0; i < n; ++i) {
    kws.push_back(static_cast<KeywordId>(rng.below(100'000)));
  }
  return trace::Document{static_cast<TopicId>(rng.below(8)), std::move(kws)};
}

void run_combo(Variant variant, FaultPreset preset) {
  Rng rng(0xD1FFu * (static_cast<std::uint64_t>(variant) * 7 +
                     static_cast<std::uint64_t>(preset) + 3));
  std::vector<Advertiser> sources;
  std::vector<std::vector<trace::Document>> docs(kSources);
  sources.reserve(kSources);
  for (std::size_t s = 0; s < kSources; ++s) {
    sources.emplace_back(static_cast<NodeId>(s + 1));
  }

  Cacher cacher;
  cacher.cache.set_readmit_backoff(preset == FaultPreset::kChurn ? 3.0 : 0.0);

  for (int round = 1; round <= kRounds; ++round) {
    const double now = static_cast<double>(round);

    // --- content churn at the sources -----------------------------------
    for (std::size_t s = 0; s < kSources; ++s) {
      if (rng.below(3) == 0) {
        docs[s].push_back(random_doc(rng));
        sources[s].add_document(docs[s].back());
      }
      if (!docs[s].empty() && rng.below(6) == 0) {
        const auto victim = rng.below(docs[s].size());
        sources[s].remove_document(docs[s][victim]);
        docs[s].erase(docs[s].begin() +
                      static_cast<std::ptrdiff_t>(victim));
      }
    }

    // --- each source decides what to ship this round ---------------------
    std::vector<Outgoing> mail;
    for (std::size_t s = 0; s < kSources; ++s) {
      Advertiser& adv = sources[s];
      if (!adv.has_content()) continue;
      const bool force_full = rng.below(8) == 0;  // periodic re-announce
      if (!adv.has_advertised() || force_full) {
        auto payload = adv.publish_full();
        mail.push_back({payload, wire::encode_full_ad(*payload)});
        continue;
      }
      if (!adv.dirty()) {
        if (rng.below(3) == 0) {  // refresh beacon
          mail.push_back(
              {adv.payload(), wire::encode_refresh_ad(*adv.payload())});
        }
        continue;
      }
      if (variant == Variant::kDelta) {
        const auto toggles = adv.pending_delta();
        if (toggles.size() > kPatchThreshold) {
          auto payload = adv.publish_full();
          mail.push_back({payload, wire::encode_full_ad(*payload)});
        } else {
          const std::uint32_t base = adv.base_version();
          auto payload = adv.publish_update();
          mail.push_back(
              {payload, wire::encode_delta_ad(*payload, base, toggles)});
        }
      } else {
        const auto toggles = adv.pending_patch();
        if (toggles.size() > kPatchThreshold) {
          auto payload = adv.publish_full();
          mail.push_back({payload, wire::encode_full_ad(*payload)});
        } else {
          const std::uint32_t prev = adv.version();
          auto payload = adv.publish_full();
          mail.push_back(
              {payload, wire::encode_patch_ad(*payload, prev, toggles)});
        }
      }
    }

    // --- fault model: drop messages before they reach the cacher ---------
    const bool burst_blackout =
        preset == FaultPreset::kBurst && (round / 10) % 3 == 2;
    std::vector<Outgoing> delivered;
    for (auto& m : mail) {
      bool drop = burst_blackout;
      if (preset == FaultPreset::kLossy && rng.below(4) == 0) drop = true;
      if (preset == FaultPreset::kChurn && rng.below(10) == 0) drop = true;
      if (!drop) delivered.push_back(std::move(m));
    }

    // --- delivery: adaptive packs one frame, others ship singles ---------
    if (variant == Variant::kAdaptive) {
      std::vector<wire::DecodedAd> singles;
      for (const auto& m : delivered) singles.push_back(wire::decode_ad(m.bytes));
      std::vector<wire::PackedItem> items;
      for (std::size_t i = 0; i < delivered.size(); ++i) {
        wire::PackedItem item;
        item.kind = singles[i].header.kind;
        item.ad = delivered[i].payload.get();
        item.base_version = singles[i].base_version;
        item.toggles = singles[i].toggles;
        items.push_back(item);
      }
      const auto frame = wire::encode_packed_frame(items);
      const auto decoded = wire::decode_packed_frame(frame);
      ASSERT_EQ(decoded.size(), delivered.size());
      for (std::size_t i = 0; i < decoded.size(); ++i) {
        cacher.apply(decoded[i], delivered[i].payload, now);
      }
    } else {
      for (const auto& m : delivered) {
        cacher.apply(wire::decode_ad(m.bytes), m.payload, now);
      }
    }

    // --- churn preset: stale-strike evictions with re-admit backoff ------
    if (preset == FaultPreset::kChurn && rng.below(5) == 0 &&
        cacher.cache.size() > 0) {
      const auto srcs = cacher.cache.sources();
      const NodeId victim = srcs[rng.below(srcs.size())];
      cacher.cache.erase_stale(victim, now);
      cacher.drop(victim);
    }

    cacher.check(variant, preset, round);
  }
}

class AdaptiveDifferential
    : public ::testing::TestWithParam<std::tuple<Variant, FaultPreset>> {};

TEST_P(AdaptiveDifferential, WireReconstructionMatchesCanonicalCache) {
  run_combo(std::get<0>(GetParam()), std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, AdaptiveDifferential,
    ::testing::Combine(::testing::Values(Variant::kVanilla, Variant::kAdaptive,
                                         Variant::kDelta),
                       ::testing::Values(FaultPreset::kNone, FaultPreset::kChurn,
                                         FaultPreset::kLossy,
                                         FaultPreset::kBurst)),
    [](const auto& p) {
      return std::string(variant_name(std::get<0>(p.param))) + "_" +
             preset_name(std::get<1>(p.param));
    });

}  // namespace
}  // namespace asap::ads
