// Parameterized property suite: invariants that must hold for every ASAP
// forwarding scheme (FLD / RW / GSA).
#include <gtest/gtest.h>

#include "../support/test_world.hpp"
#include "asap/asap_protocol.hpp"

namespace asap::ads {
namespace {

using asap::testing::TestWorld;

class AsapSchemeTest : public ::testing::TestWithParam<search::Scheme> {
 protected:
  AsapParams params() const {
    AsapParams p;
    p.scheme = GetParam();
    p.budget_unit_m0 = 600;
    p.refresh_period = 40.0;
    return p;
  }
};

TEST_P(AsapSchemeTest, WarmupProducesOneFullAdPerSharer) {
  TestWorld w;
  AsapProtocol algo(w.ctx, params());
  algo.warm_up(120.0);
  w.engine.run_until(120.0);
  std::uint64_t sharers = 0;
  for (NodeId n = 0; n < TestWorld::kNodes; ++n) {
    sharers += !w.live.docs(n).empty();
  }
  EXPECT_EQ(algo.counters().full_ads, sharers);
}

TEST_P(AsapSchemeTest, AdvertiserVersionsAreConsistentWithPayloads) {
  TestWorld w;
  AsapProtocol algo(w.ctx, params());
  algo.warm_up(120.0);
  w.engine.run_until(120.0);
  for (NodeId n = 0; n < TestWorld::kNodes; ++n) {
    const auto& adv = algo.advertiser(n);
    if (adv.has_advertised()) {
      EXPECT_EQ(adv.payload()->version, adv.version());
      EXPECT_EQ(adv.payload()->source, n);
      EXPECT_FALSE(adv.dirty())
          << "published state must match the live filter after warm-up";
    }
  }
}

TEST_P(AsapSchemeTest, CachedVersionsNeverExceedTheSource) {
  TestWorld w;
  AsapProtocol algo(w.ctx, params());
  algo.warm_up(120.0);
  w.engine.run_until(300.0);  // a few refresh rounds
  for (NodeId n = 0; n < TestWorld::kNodes; ++n) {
    const auto& cache = algo.cache(n);
    for (std::size_t i = 0; i < cache.entries().size(); ++i) {
      const NodeId src = cache.sources()[i];
      EXPECT_LE(cache.entries()[i].ad->version, algo.advertiser(src).version())
          << "cache at " << n << " holds a version from the future of "
          << src;
    }
  }
}

TEST_P(AsapSchemeTest, SearchesProduceConsistentRecords) {
  TestWorld w;
  AsapProtocol algo(w.ctx, params());
  algo.warm_up(120.0);
  w.engine.run_until(120.0);
  // Replay a batch of queries for real documents.
  Rng pick(77);
  std::uint32_t issued = 0;
  for (int i = 0; i < 100; ++i) {
    const NodeId holder =
        static_cast<NodeId>(pick.below(TestWorld::kNodes));
    if (w.live.docs(holder).empty()) continue;
    const auto& docs = w.live.docs(holder);
    const DocId d = docs[pick.below(docs.size())];
    NodeId requester =
        static_cast<NodeId>(pick.below(TestWorld::kNodes));
    if (requester == holder) requester = (holder + 1) % TestWorld::kNodes;
    trace::TraceEvent ev;
    ev.type = trace::TraceEventType::kQuery;
    ev.time = 130.0 + i;
    ev.node = requester;
    ev.doc = d;
    const auto& kws = w.model.doc(d).keywords;
    ev.num_terms = 1;
    ev.terms[0] = kws.back();  // unique term: only replica holders match
    algo.on_trace_event(ev);
    ++issued;
  }
  ASSERT_GT(issued, 50u);
  const auto& s = algo.stats();
  EXPECT_EQ(s.total(), issued);
  // Invariants: successes <= total; every success implies >= 1 result and
  // a positive response time; cost is nonzero whenever messages flowed.
  EXPECT_LE(s.successes(), s.total());
  if (s.successes() > 0) {
    EXPECT_GT(s.avg_response_time(), 0.0);
    EXPECT_GE(s.avg_results() * static_cast<double>(s.total()),
              static_cast<double>(s.successes()) - 1e-9);
  }
  EXPECT_GT(s.success_rate(), 0.5) << "warmed caches must answer most";
}

TEST_P(AsapSchemeTest, LedgerOnlySeesAsapTrafficCategories) {
  TestWorld w;
  AsapProtocol algo(w.ctx, params());
  algo.warm_up(120.0);
  w.engine.run_until(200.0);
  EXPECT_EQ(w.ledger.total(sim::Traffic::kQuery), 0u);
  EXPECT_EQ(w.ledger.total(sim::Traffic::kResponse), 0u);
  EXPECT_GT(w.ledger.total(sim::Traffic::kFullAd), 0u);
}

TEST_P(AsapSchemeTest, DeterministicAcrossIdenticalRuns) {
  auto run = [&] {
    TestWorld w(4242);
    AsapProtocol algo(w.ctx, params());
    algo.warm_up(120.0);
    w.engine.run_until(250.0);
    return std::tuple(algo.counters().full_ads,
                      algo.counters().refresh_ads,
                      w.ledger.grand_total());
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, AsapSchemeTest,
                         ::testing::Values(search::Scheme::kFlooding,
                                           search::Scheme::kRandomWalk,
                                           search::Scheme::kGsa),
                         [](const auto& info) {
                           return std::string(
                               search::scheme_name(info.param)) == "flooding"
                                      ? "FLD"
                                      : search::scheme_name(info.param) ==
                                                std::string("random-walk")
                                            ? "RW"
                                            : "GSA";
                         });

}  // namespace
}  // namespace asap::ads
