#include "asap/ad_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <span>

namespace asap::ads {
namespace {

AdPayloadPtr make_ad(NodeId src, std::uint32_t version,
                     std::vector<KeywordId> keys = {},
                     std::vector<TopicId> topics = {0}) {
  bloom::BloomFilter f;
  for (auto k : keys) f.insert(k);
  return std::make_shared<const AdPayload>(src, version, std::move(f),
                                           std::move(topics));
}

TEST(AdCache, PutAndFind) {
  AdCache c(10);
  Rng rng(1);
  c.put(make_ad(5, 1), 1.0, rng);
  ASSERT_NE(c.find(5), nullptr);
  EXPECT_EQ(c.find(5)->ad->version, 1u);
  EXPECT_EQ(c.find(6), nullptr);
  EXPECT_EQ(c.size(), 1u);
}

TEST(AdCache, PutNewerVersionReplaces) {
  AdCache c(10);
  Rng rng(2);
  c.put(make_ad(5, 2), 1.0, rng);
  c.put(make_ad(5, 3), 2.0, rng);
  EXPECT_EQ(c.find(5)->ad->version, 3u);
  EXPECT_EQ(c.size(), 1u);
}

TEST(AdCache, PutOlderVersionDoesNotDowngrade) {
  AdCache c(10);
  Rng rng(3);
  c.put(make_ad(5, 4), 1.0, rng);
  c.put(make_ad(5, 2), 2.0, rng);  // a late walker delivers a stale ad
  EXPECT_EQ(c.find(5)->ad->version, 4u);
}

TEST(AdCache, CapacityEnforcedViaEviction) {
  AdCache c(8);
  Rng rng(4);
  for (NodeId s = 0; s < 100; ++s) {
    c.put(make_ad(s, 1), static_cast<double>(s), rng);
    EXPECT_LE(c.size(), 8u);
  }
  EXPECT_EQ(c.size(), 8u);
}

TEST(AdCache, EvictionPrefersStaleEntries) {
  AdCache c(16);
  Rng rng(5);
  // One entry touched recently, the rest stale; insert many more and check
  // the fresh one survives (sampled LRU is probabilistic, so give the
  // fresh entry a huge recency gap and accept a tiny failure chance by
  // fixing the seed).
  for (NodeId s = 0; s < 16; ++s) c.put(make_ad(s, 1), 0.0, rng);
  c.touch(7, 1'000.0);
  for (NodeId s = 100; s < 140; ++s) {
    c.put(make_ad(s, 1), 10.0, rng);
  }
  EXPECT_NE(c.find(7), nullptr) << "most-recently-used entry was evicted";
}

TEST(AdCache, ApplyPatchSwapsMatchingBase) {
  AdCache c(10);
  Rng rng(6);
  c.put(make_ad(5, 1, {10, 20}), 1.0, rng);
  auto next = make_ad(5, 2, {10, 20, 30});
  EXPECT_EQ(c.apply_patch(5, 1, next, 2.0), UpdateOutcome::kApplied);
  EXPECT_EQ(c.find(5)->ad->version, 2u);
  EXPECT_TRUE(c.find(5)->ad->filter.contains(30));
}

TEST(AdCache, ApplyPatchVersionMismatchInvalidates) {
  AdCache c(10);
  Rng rng(7);
  c.put(make_ad(5, 1), 1.0, rng);
  auto v4 = make_ad(5, 4);
  // Cached version 1, patch base 3: the entry is hopelessly stale.
  EXPECT_EQ(c.apply_patch(5, 3, v4, 2.0), UpdateOutcome::kInvalidated);
  EXPECT_EQ(c.find(5), nullptr);
}

TEST(AdCache, ApplyPatchIgnoresUnknownSourceAndNewerCache) {
  AdCache c(10);
  Rng rng(8);
  EXPECT_EQ(c.apply_patch(9, 1, make_ad(9, 2), 1.0),
            UpdateOutcome::kMissing);
  EXPECT_EQ(c.find(9), nullptr);
  // Cache already at version 5; an old patch (base 2 -> 3) must not erase.
  c.put(make_ad(5, 5), 1.0, rng);
  EXPECT_EQ(c.apply_patch(5, 2, make_ad(5, 3), 2.0),
            UpdateOutcome::kIgnoredStale);
  EXPECT_EQ(c.find(5)->ad->version, 5u);
}

TEST(AdCache, RefreshTouchesMatchingVersion) {
  AdCache c(10);
  Rng rng(9);
  c.put(make_ad(5, 3), 1.0, rng);
  EXPECT_EQ(c.on_refresh(5, 3, 50.0), UpdateOutcome::kApplied);
  EXPECT_DOUBLE_EQ(c.find(5)->touch, 50.0);
}

TEST(AdCache, RefreshWithNewerVersionInvalidates) {
  AdCache c(10);
  Rng rng(10);
  c.put(make_ad(5, 3), 1.0, rng);
  EXPECT_EQ(c.on_refresh(5, 7, 2.0), UpdateOutcome::kInvalidated);
  EXPECT_EQ(c.find(5), nullptr);
}

TEST(AdCache, RefreshWithOlderVersionKeepsEntry) {
  AdCache c(10);
  Rng rng(11);
  c.put(make_ad(5, 3), 1.0, rng);
  // A delayed beacon for an older version is ignored.
  EXPECT_EQ(c.on_refresh(5, 2, 2.0), UpdateOutcome::kIgnoredStale);
  ASSERT_NE(c.find(5), nullptr);
  EXPECT_EQ(c.find(5)->ad->version, 3u);
}

TEST(AdCache, RefreshOfUnknownSourceIsMissing) {
  AdCache c(10);
  EXPECT_EQ(c.on_refresh(42, 1, 1.0), UpdateOutcome::kMissing);
}

TEST(AdCache, EraseRemovesEntry) {
  AdCache c(10);
  Rng rng(12);
  c.put(make_ad(1, 1), 1.0, rng);
  c.put(make_ad(2, 1), 1.0, rng);
  EXPECT_TRUE(c.erase(1));
  EXPECT_FALSE(c.erase(1));
  EXPECT_EQ(c.find(1), nullptr);
  ASSERT_NE(c.find(2), nullptr);
  EXPECT_EQ(c.size(), 1u);
}

TEST(AdCache, CollectMatchesFindsTermMatchingAds) {
  AdCache c(10);
  Rng rng(13);
  c.put(make_ad(1, 1, {100, 200}), 1.0, rng);
  c.put(make_ad(2, 1, {100}), 1.0, rng);
  c.put(make_ad(3, 1, {999}), 1.0, rng);
  std::vector<AdPayloadPtr> out;
  const std::vector<KeywordId> terms{100, 200};
  c.collect_matches(terms, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->source, 1u);
  const std::vector<KeywordId> single{100};
  c.collect_matches(single, out);
  EXPECT_EQ(out.size(), 2u);
  c.collect_matches(std::span<const KeywordId>{}, out);
  EXPECT_TRUE(out.empty());
}

TEST(AdCache, CollectForReplyOrdersTermMatchesFirst) {
  AdCache c(20);
  Rng rng(14);
  c.put(make_ad(1, 1, {100}, {0}), 1.0, rng);   // term match
  c.put(make_ad(2, 1, {999}, {0}), 1.0, rng);   // topical only
  c.put(make_ad(3, 1, {999}, {5}), 1.0, rng);   // unrelated topic
  std::vector<AdPayloadPtr> out;
  const std::vector<KeywordId> terms{100};
  const std::vector<TopicId> interests{0};
  c.collect_for_reply(terms, interests, 10, 10, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0]->source, 1u);
  EXPECT_EQ(out[1]->source, 2u);
}

TEST(AdCache, CollectForReplyRespectsCaps) {
  AdCache c(64);
  Rng rng(15);
  for (NodeId s = 0; s < 40; ++s) c.put(make_ad(s, 1, {7}, {0}), 1.0, rng);
  std::vector<AdPayloadPtr> out;
  const std::vector<KeywordId> terms{7};
  const std::vector<TopicId> interests{0};
  c.collect_for_reply(terms, interests, 16, 8, out);
  EXPECT_EQ(out.size(), 16u);  // total cap binds
  // Topical-only flow: no terms, topical cap binds.
  c.collect_for_reply(std::span<const KeywordId>{}, interests, 64, 5, out);
  EXPECT_EQ(out.size(), 5u);
}

TEST(AdCache, ZeroCapacityDisablesCaching) {
  AdCache c(0);
  Rng rng(17);
  const auto r = c.put(make_ad(5, 1), 1.0, rng);
  EXPECT_FALSE(r.stored);
  EXPECT_FALSE(r.evicted);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.find(5), nullptr);
  // The no-op put must not draw from the RNG (digest stability).
  Rng replay(17);
  EXPECT_EQ(rng.next_u64(), replay.next_u64());
}

TEST(AdCache, PutReportsStoredAndEvicted) {
  AdCache c(2);
  Rng rng(18);
  auto r = c.put(make_ad(1, 1), 1.0, rng);
  EXPECT_TRUE(r.stored);
  EXPECT_FALSE(r.evicted);
  r = c.put(make_ad(2, 1), 2.0, rng);
  EXPECT_TRUE(r.stored);
  EXPECT_FALSE(r.evicted);
  // Third distinct source overflows the capacity-2 cache.
  r = c.put(make_ad(3, 1), 3.0, rng);
  EXPECT_TRUE(r.stored);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(c.size(), 2u);
  // A stale re-put neither stores nor evicts.
  ASSERT_NE(c.find(3), nullptr);
  c.put(make_ad(3, 5), 4.0, rng);
  r = c.put(make_ad(3, 2), 5.0, rng);
  EXPECT_FALSE(r.stored);
  EXPECT_FALSE(r.evicted);
  EXPECT_EQ(c.find(3)->ad->version, 5u);
}

TEST(AdCache, SmallCacheEvictsExactLru) {
  // At or below the sample width the cache scans for the true LRU
  // entry instead of sampling, so eviction is deterministic and must
  // not depend on the RNG at all.
  AdCache c(4);
  Rng rng(19);
  c.put(make_ad(10, 1), 5.0, rng);
  c.put(make_ad(11, 1), 1.0, rng);  // stalest
  c.put(make_ad(12, 1), 9.0, rng);
  c.put(make_ad(13, 1), 7.0, rng);
  const auto r = c.put(make_ad(14, 1), 10.0, rng);
  EXPECT_TRUE(r.stored);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(c.find(11), nullptr) << "true LRU entry must be evicted";
  EXPECT_NE(c.find(10), nullptr);
  EXPECT_NE(c.find(12), nullptr);
  EXPECT_NE(c.find(13), nullptr);
  EXPECT_NE(c.find(14), nullptr);

  // Identical inserts with a different RNG make the same choice.
  AdCache c2(4);
  Rng other(991);
  c2.put(make_ad(10, 1), 5.0, other);
  c2.put(make_ad(11, 1), 1.0, other);
  c2.put(make_ad(12, 1), 9.0, other);
  c2.put(make_ad(13, 1), 7.0, other);
  c2.put(make_ad(14, 1), 10.0, other);
  EXPECT_EQ(c2.find(11), nullptr);
  EXPECT_NE(c2.find(10), nullptr);
}

TEST(AdCache, TimeoutStrikesAccumulateAndReset) {
  AdCache c(10);
  Rng rng(20);
  c.put(make_ad(7, 1), 1.0, rng);
  EXPECT_EQ(c.record_timeout(7), 1u);
  EXPECT_EQ(c.record_timeout(7), 2u);
  EXPECT_EQ(c.find(7)->timeout_strikes, 2u);
  // A confirm reply proves the source alive: strikes clear.
  c.reset_timeouts(7);
  EXPECT_EQ(c.find(7)->timeout_strikes, 0u);
  EXPECT_EQ(c.record_timeout(7), 1u);
  // Sources that are not cached cannot strike out.
  EXPECT_EQ(c.record_timeout(99), 0u);
  c.erase(7);
  EXPECT_EQ(c.record_timeout(7), 0u);
}

TEST(AdCache, FreshAdClearsTimeoutStrikes) {
  AdCache c(10);
  Rng rng(21);
  c.put(make_ad(7, 1), 1.0, rng);
  c.record_timeout(7);
  c.record_timeout(7);
  // A newer ad from the source is proof of life; the strike count must
  // not survive and evict the replacement.
  c.put(make_ad(7, 2), 2.0, rng);
  EXPECT_EQ(c.find(7)->timeout_strikes, 0u);
  // A stale re-put is not stored and proves nothing.
  c.record_timeout(7);
  c.put(make_ad(7, 1), 3.0, rng);
  EXPECT_EQ(c.find(7)->timeout_strikes, 1u);
}

// Regression: the confirm path used to erase a struck-out stale entry with
// plain erase(), and a walker already in flight would re-admit the very
// same stale ad in the same tick — the entry then had to strike out all
// over again. erase_stale() must block re-admission until the backoff
// expires.
TEST(AdCache, EraseStaleBlocksReadmissionUntilBackoffExpires) {
  AdCache c(10);
  c.set_readmit_backoff(30.0);
  Rng rng(22);
  c.put(make_ad(7, 3), 1.0, rng);
  EXPECT_TRUE(c.erase_stale(7, 100.0));
  EXPECT_EQ(c.find(7), nullptr);
  EXPECT_TRUE(c.readmit_blocked(7, 100.0));

  // The in-flight stale ad arrives a beat later: silently dropped.
  auto res = c.put(make_ad(7, 3), 100.5, rng);
  EXPECT_FALSE(res.stored);
  EXPECT_EQ(c.find(7), nullptr);

  // Even a *newer* version is refused during the window — the source is
  // suspected dead, and re-learning waits out the backoff.
  res = c.put(make_ad(7, 4), 115.0, rng);
  EXPECT_FALSE(res.stored);
  EXPECT_TRUE(c.readmit_blocked(7, 129.9));

  // Once the window closes the source is welcome again.
  EXPECT_FALSE(c.readmit_blocked(7, 130.1));
  res = c.put(make_ad(7, 4), 130.1, rng);
  EXPECT_TRUE(res.stored);
  ASSERT_NE(c.find(7), nullptr);
  EXPECT_EQ(c.find(7)->ad->version, 4u);
}

TEST(AdCache, EraseStaleBackoffIsPerSource) {
  AdCache c(10);
  c.set_readmit_backoff(10.0);
  Rng rng(23);
  c.put(make_ad(7, 1), 1.0, rng);
  c.put(make_ad(8, 1), 1.0, rng);
  c.erase_stale(7, 50.0);
  // Only the struck source is blocked; its neighbor stores normally.
  EXPECT_TRUE(c.readmit_blocked(7, 55.0));
  EXPECT_FALSE(c.readmit_blocked(8, 55.0));
  EXPECT_TRUE(c.put(make_ad(8, 2), 55.0, rng).stored);
  EXPECT_FALSE(c.put(make_ad(7, 2), 55.0, rng).stored);
}

TEST(AdCache, ZeroBackoffDegeneratesToPlainErase) {
  AdCache c(10);  // default: readmit_backoff == 0 (vanilla behavior)
  Rng rng(24);
  c.put(make_ad(7, 1), 1.0, rng);
  EXPECT_TRUE(c.erase_stale(7, 50.0));
  EXPECT_FALSE(c.readmit_blocked(7, 50.0));
  // Re-admission is immediate, exactly like the legacy erase() path —
  // this is what keeps vanilla digests bit-identical.
  EXPECT_TRUE(c.put(make_ad(7, 1), 50.0, rng).stored);
}

}  // namespace
}  // namespace asap::ads
