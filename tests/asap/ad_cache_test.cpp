#include "asap/ad_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <span>

namespace asap::ads {
namespace {

AdPayloadPtr make_ad(NodeId src, std::uint32_t version,
                     std::vector<KeywordId> keys = {},
                     std::vector<TopicId> topics = {0}) {
  bloom::BloomFilter f;
  for (auto k : keys) f.insert(k);
  return std::make_shared<const AdPayload>(src, version, std::move(f),
                                           std::move(topics));
}

TEST(AdCache, PutAndFind) {
  AdCache c(10);
  Rng rng(1);
  c.put(make_ad(5, 1), 1.0, rng);
  ASSERT_NE(c.find(5), nullptr);
  EXPECT_EQ(c.find(5)->ad->version, 1u);
  EXPECT_EQ(c.find(6), nullptr);
  EXPECT_EQ(c.size(), 1u);
}

TEST(AdCache, PutNewerVersionReplaces) {
  AdCache c(10);
  Rng rng(2);
  c.put(make_ad(5, 2), 1.0, rng);
  c.put(make_ad(5, 3), 2.0, rng);
  EXPECT_EQ(c.find(5)->ad->version, 3u);
  EXPECT_EQ(c.size(), 1u);
}

TEST(AdCache, PutOlderVersionDoesNotDowngrade) {
  AdCache c(10);
  Rng rng(3);
  c.put(make_ad(5, 4), 1.0, rng);
  c.put(make_ad(5, 2), 2.0, rng);  // a late walker delivers a stale ad
  EXPECT_EQ(c.find(5)->ad->version, 4u);
}

TEST(AdCache, CapacityEnforcedViaEviction) {
  AdCache c(8);
  Rng rng(4);
  for (NodeId s = 0; s < 100; ++s) {
    c.put(make_ad(s, 1), static_cast<double>(s), rng);
    EXPECT_LE(c.size(), 8u);
  }
  EXPECT_EQ(c.size(), 8u);
}

TEST(AdCache, EvictionPrefersStaleEntries) {
  AdCache c(16);
  Rng rng(5);
  // One entry touched recently, the rest stale; insert many more and check
  // the fresh one survives (sampled LRU is probabilistic, so give the
  // fresh entry a huge recency gap and accept a tiny failure chance by
  // fixing the seed).
  for (NodeId s = 0; s < 16; ++s) c.put(make_ad(s, 1), 0.0, rng);
  c.touch(7, 1'000.0);
  for (NodeId s = 100; s < 140; ++s) {
    c.put(make_ad(s, 1), 10.0, rng);
  }
  EXPECT_NE(c.find(7), nullptr) << "most-recently-used entry was evicted";
}

TEST(AdCache, ApplyPatchSwapsMatchingBase) {
  AdCache c(10);
  Rng rng(6);
  c.put(make_ad(5, 1, {10, 20}), 1.0, rng);
  auto next = make_ad(5, 2, {10, 20, 30});
  EXPECT_EQ(c.apply_patch(5, 1, next, 2.0), UpdateOutcome::kApplied);
  EXPECT_EQ(c.find(5)->ad->version, 2u);
  EXPECT_TRUE(c.find(5)->ad->filter.contains(30));
}

TEST(AdCache, ApplyPatchVersionMismatchInvalidates) {
  AdCache c(10);
  Rng rng(7);
  c.put(make_ad(5, 1), 1.0, rng);
  auto v4 = make_ad(5, 4);
  // Cached version 1, patch base 3: the entry is hopelessly stale.
  EXPECT_EQ(c.apply_patch(5, 3, v4, 2.0), UpdateOutcome::kInvalidated);
  EXPECT_EQ(c.find(5), nullptr);
}

TEST(AdCache, ApplyPatchIgnoresUnknownSourceAndNewerCache) {
  AdCache c(10);
  Rng rng(8);
  EXPECT_EQ(c.apply_patch(9, 1, make_ad(9, 2), 1.0),
            UpdateOutcome::kMissing);
  EXPECT_EQ(c.find(9), nullptr);
  // Cache already at version 5; an old patch (base 2 -> 3) must not erase.
  c.put(make_ad(5, 5), 1.0, rng);
  EXPECT_EQ(c.apply_patch(5, 2, make_ad(5, 3), 2.0),
            UpdateOutcome::kIgnoredStale);
  EXPECT_EQ(c.find(5)->ad->version, 5u);
}

TEST(AdCache, RefreshTouchesMatchingVersion) {
  AdCache c(10);
  Rng rng(9);
  c.put(make_ad(5, 3), 1.0, rng);
  EXPECT_EQ(c.on_refresh(5, 3, 50.0), UpdateOutcome::kApplied);
  EXPECT_DOUBLE_EQ(c.find(5)->touch, 50.0);
}

TEST(AdCache, RefreshWithNewerVersionInvalidates) {
  AdCache c(10);
  Rng rng(10);
  c.put(make_ad(5, 3), 1.0, rng);
  EXPECT_EQ(c.on_refresh(5, 7, 2.0), UpdateOutcome::kInvalidated);
  EXPECT_EQ(c.find(5), nullptr);
}

TEST(AdCache, RefreshWithOlderVersionKeepsEntry) {
  AdCache c(10);
  Rng rng(11);
  c.put(make_ad(5, 3), 1.0, rng);
  // A delayed beacon for an older version is ignored.
  EXPECT_EQ(c.on_refresh(5, 2, 2.0), UpdateOutcome::kIgnoredStale);
  ASSERT_NE(c.find(5), nullptr);
  EXPECT_EQ(c.find(5)->ad->version, 3u);
}

TEST(AdCache, RefreshOfUnknownSourceIsMissing) {
  AdCache c(10);
  EXPECT_EQ(c.on_refresh(42, 1, 1.0), UpdateOutcome::kMissing);
}

TEST(AdCache, EraseRemovesEntry) {
  AdCache c(10);
  Rng rng(12);
  c.put(make_ad(1, 1), 1.0, rng);
  c.put(make_ad(2, 1), 1.0, rng);
  EXPECT_TRUE(c.erase(1));
  EXPECT_FALSE(c.erase(1));
  EXPECT_EQ(c.find(1), nullptr);
  ASSERT_NE(c.find(2), nullptr);
  EXPECT_EQ(c.size(), 1u);
}

TEST(AdCache, CollectMatchesFindsTermMatchingAds) {
  AdCache c(10);
  Rng rng(13);
  c.put(make_ad(1, 1, {100, 200}), 1.0, rng);
  c.put(make_ad(2, 1, {100}), 1.0, rng);
  c.put(make_ad(3, 1, {999}), 1.0, rng);
  std::vector<AdPayloadPtr> out;
  const std::vector<KeywordId> terms{100, 200};
  c.collect_matches(terms, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->source, 1u);
  const std::vector<KeywordId> single{100};
  c.collect_matches(single, out);
  EXPECT_EQ(out.size(), 2u);
  c.collect_matches(std::span<const KeywordId>{}, out);
  EXPECT_TRUE(out.empty());
}

TEST(AdCache, CollectForReplyOrdersTermMatchesFirst) {
  AdCache c(20);
  Rng rng(14);
  c.put(make_ad(1, 1, {100}, {0}), 1.0, rng);   // term match
  c.put(make_ad(2, 1, {999}, {0}), 1.0, rng);   // topical only
  c.put(make_ad(3, 1, {999}, {5}), 1.0, rng);   // unrelated topic
  std::vector<AdPayloadPtr> out;
  const std::vector<KeywordId> terms{100};
  const std::vector<TopicId> interests{0};
  c.collect_for_reply(terms, interests, 10, 10, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0]->source, 1u);
  EXPECT_EQ(out[1]->source, 2u);
}

TEST(AdCache, CollectForReplyRespectsCaps) {
  AdCache c(64);
  Rng rng(15);
  for (NodeId s = 0; s < 40; ++s) c.put(make_ad(s, 1, {7}, {0}), 1.0, rng);
  std::vector<AdPayloadPtr> out;
  const std::vector<KeywordId> terms{7};
  const std::vector<TopicId> interests{0};
  c.collect_for_reply(terms, interests, 16, 8, out);
  EXPECT_EQ(out.size(), 16u);  // total cap binds
  // Topical-only flow: no terms, topical cap binds.
  c.collect_for_reply(std::span<const KeywordId>{}, interests, 64, 5, out);
  EXPECT_EQ(out.size(), 5u);
}

TEST(AdCache, ZeroCapacityDisablesCaching) {
  AdCache c(0);
  Rng rng(17);
  const auto r = c.put(make_ad(5, 1), 1.0, rng);
  EXPECT_FALSE(r.stored);
  EXPECT_FALSE(r.evicted);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.find(5), nullptr);
  // The no-op put must not draw from the RNG (digest stability).
  Rng replay(17);
  EXPECT_EQ(rng.next_u64(), replay.next_u64());
}

TEST(AdCache, PutReportsStoredAndEvicted) {
  AdCache c(2);
  Rng rng(18);
  auto r = c.put(make_ad(1, 1), 1.0, rng);
  EXPECT_TRUE(r.stored);
  EXPECT_FALSE(r.evicted);
  r = c.put(make_ad(2, 1), 2.0, rng);
  EXPECT_TRUE(r.stored);
  EXPECT_FALSE(r.evicted);
  // Third distinct source overflows the capacity-2 cache.
  r = c.put(make_ad(3, 1), 3.0, rng);
  EXPECT_TRUE(r.stored);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(c.size(), 2u);
  // A stale re-put neither stores nor evicts.
  ASSERT_NE(c.find(3), nullptr);
  c.put(make_ad(3, 5), 4.0, rng);
  r = c.put(make_ad(3, 2), 5.0, rng);
  EXPECT_FALSE(r.stored);
  EXPECT_FALSE(r.evicted);
  EXPECT_EQ(c.find(3)->ad->version, 5u);
}

TEST(AdCache, SmallCacheEvictsExactLru) {
  // At or below the sample width the cache scans for the true LRU
  // entry instead of sampling, so eviction is deterministic and must
  // not depend on the RNG at all.
  AdCache c(4);
  Rng rng(19);
  c.put(make_ad(10, 1), 5.0, rng);
  c.put(make_ad(11, 1), 1.0, rng);  // stalest
  c.put(make_ad(12, 1), 9.0, rng);
  c.put(make_ad(13, 1), 7.0, rng);
  const auto r = c.put(make_ad(14, 1), 10.0, rng);
  EXPECT_TRUE(r.stored);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(c.find(11), nullptr) << "true LRU entry must be evicted";
  EXPECT_NE(c.find(10), nullptr);
  EXPECT_NE(c.find(12), nullptr);
  EXPECT_NE(c.find(13), nullptr);
  EXPECT_NE(c.find(14), nullptr);

  // Identical inserts with a different RNG make the same choice.
  AdCache c2(4);
  Rng other(991);
  c2.put(make_ad(10, 1), 5.0, other);
  c2.put(make_ad(11, 1), 1.0, other);
  c2.put(make_ad(12, 1), 9.0, other);
  c2.put(make_ad(13, 1), 7.0, other);
  c2.put(make_ad(14, 1), 10.0, other);
  EXPECT_EQ(c2.find(11), nullptr);
  EXPECT_NE(c2.find(10), nullptr);
}

TEST(AdCache, TimeoutStrikesAccumulateAndReset) {
  AdCache c(10);
  Rng rng(20);
  c.put(make_ad(7, 1), 1.0, rng);
  EXPECT_EQ(c.record_timeout(7), 1u);
  EXPECT_EQ(c.record_timeout(7), 2u);
  EXPECT_EQ(c.find(7)->timeout_strikes, 2u);
  // A confirm reply proves the source alive: strikes clear.
  c.reset_timeouts(7);
  EXPECT_EQ(c.find(7)->timeout_strikes, 0u);
  EXPECT_EQ(c.record_timeout(7), 1u);
  // Sources that are not cached cannot strike out.
  EXPECT_EQ(c.record_timeout(99), 0u);
  c.erase(7);
  EXPECT_EQ(c.record_timeout(7), 0u);
}

TEST(AdCache, FreshAdClearsTimeoutStrikes) {
  AdCache c(10);
  Rng rng(21);
  c.put(make_ad(7, 1), 1.0, rng);
  c.record_timeout(7);
  c.record_timeout(7);
  // A newer ad from the source is proof of life; the strike count must
  // not survive and evict the replacement.
  c.put(make_ad(7, 2), 2.0, rng);
  EXPECT_EQ(c.find(7)->timeout_strikes, 0u);
  // A stale re-put is not stored and proves nothing.
  c.record_timeout(7);
  c.put(make_ad(7, 1), 3.0, rng);
  EXPECT_EQ(c.find(7)->timeout_strikes, 1u);
}

// Regression: the confirm path used to erase a struck-out stale entry with
// plain erase(), and a walker already in flight would re-admit the very
// same stale ad in the same tick — the entry then had to strike out all
// over again. erase_stale() must block re-admission until the backoff
// expires.
TEST(AdCache, EraseStaleBlocksReadmissionUntilBackoffExpires) {
  AdCache c(10);
  c.set_readmit_backoff(30.0);
  Rng rng(22);
  c.put(make_ad(7, 3), 1.0, rng);
  EXPECT_TRUE(c.erase_stale(7, 100.0));
  EXPECT_EQ(c.find(7), nullptr);
  EXPECT_TRUE(c.readmit_blocked(7, 100.0));

  // The in-flight stale ad arrives a beat later: silently dropped.
  auto res = c.put(make_ad(7, 3), 100.5, rng);
  EXPECT_FALSE(res.stored);
  EXPECT_EQ(c.find(7), nullptr);

  // Even a *newer* version is refused during the window — the source is
  // suspected dead, and re-learning waits out the backoff.
  res = c.put(make_ad(7, 4), 115.0, rng);
  EXPECT_FALSE(res.stored);
  EXPECT_TRUE(c.readmit_blocked(7, 129.9));

  // Once the window closes the source is welcome again.
  EXPECT_FALSE(c.readmit_blocked(7, 130.1));
  res = c.put(make_ad(7, 4), 130.1, rng);
  EXPECT_TRUE(res.stored);
  ASSERT_NE(c.find(7), nullptr);
  EXPECT_EQ(c.find(7)->ad->version, 4u);
}

TEST(AdCache, EraseStaleBackoffIsPerSource) {
  AdCache c(10);
  c.set_readmit_backoff(10.0);
  Rng rng(23);
  c.put(make_ad(7, 1), 1.0, rng);
  c.put(make_ad(8, 1), 1.0, rng);
  c.erase_stale(7, 50.0);
  // Only the struck source is blocked; its neighbor stores normally.
  EXPECT_TRUE(c.readmit_blocked(7, 55.0));
  EXPECT_FALSE(c.readmit_blocked(8, 55.0));
  EXPECT_TRUE(c.put(make_ad(8, 2), 55.0, rng).stored);
  EXPECT_FALSE(c.put(make_ad(7, 2), 55.0, rng).stored);
}

TEST(AdCache, ZeroBackoffDegeneratesToPlainErase) {
  AdCache c(10);  // default: readmit_backoff == 0 (vanilla behavior)
  Rng rng(24);
  c.put(make_ad(7, 1), 1.0, rng);
  EXPECT_TRUE(c.erase_stale(7, 50.0));
  EXPECT_FALSE(c.readmit_blocked(7, 50.0));
  // Re-admission is immediate, exactly like the legacy erase() path —
  // this is what keeps vanilla digests bit-identical.
  EXPECT_TRUE(c.put(make_ad(7, 1), 50.0, rng).stored);
}

TEST(AdCacheTrust, OffByDefaultAndInert) {
  AdCache c(10);
  Rng rng(30);
  c.put(make_ad(5, 1), 1.0, rng);
  EXPECT_FALSE(c.trust_enabled());
  EXPECT_DOUBLE_EQ(c.trust_of(5), 1.0);
  // With trust off, strikes and rewards are no-ops: the entry survives
  // and no quarantine state is ever allocated (vanilla digests depend on
  // put() never paying a quarantine lookup).
  EXPECT_FALSE(c.record_strike(5, 2.0));
  c.record_reward(5);
  EXPECT_NE(c.find(5), nullptr);
  EXPECT_FALSE(c.quarantined(5, 2.0));
}

TEST(AdCacheTrust, RewardAndStrikeMoveTrustAsymptotically) {
  AdCache c(10);
  c.set_trust_params(/*reward=*/0.5, /*decay=*/0.5, /*threshold=*/0.1,
                     /*backoff=*/100.0);
  Rng rng(31);
  c.put(make_ad(5, 1), 1.0, rng);
  EXPECT_DOUBLE_EQ(c.trust_of(5), 1.0);  // entries start fully trusted
  c.record_reward(5);                    // reward at 1.0 is a fixed point
  EXPECT_DOUBLE_EQ(c.trust_of(5), 1.0);
  EXPECT_FALSE(c.record_strike(5, 2.0));  // 0.5, above threshold
  EXPECT_DOUBLE_EQ(c.trust_of(5), 0.5);
  EXPECT_FALSE(c.record_strike(5, 3.0));  // 0.25
  EXPECT_DOUBLE_EQ(c.trust_of(5), 0.25);
  c.record_reward(5);  // 0.25 + 0.5 * (1 - 0.25) = 0.625
  EXPECT_DOUBLE_EQ(c.trust_of(5), 0.625);
  // Unknown sources are neutral, not distrusted.
  EXPECT_DOUBLE_EQ(c.trust_of(99), 1.0);
}

TEST(AdCacheTrust, CrossingThresholdQuarantinesAndBlocksPut) {
  AdCache c(10);
  c.set_trust_params(0.3, /*decay=*/0.4, /*threshold=*/0.2,
                     /*backoff=*/100.0);
  Rng rng(32);
  c.put(make_ad(5, 1), 1.0, rng);
  EXPECT_FALSE(c.record_strike(5, 2.0));  // 0.4
  EXPECT_TRUE(c.record_strike(5, 3.0));   // 0.16 < 0.2: quarantined
  EXPECT_EQ(c.find(5), nullptr) << "quarantine must erase the entry";
  EXPECT_TRUE(c.quarantined(5, 3.0));
  EXPECT_TRUE(c.quarantined(5, 102.9));  // until 3.0 + 100.0
  // Puts inside the window are dropped silently.
  EXPECT_FALSE(c.put(make_ad(5, 2), 50.0, rng).stored);
  EXPECT_EQ(c.find(5), nullptr);
  // Sentence served: the next put re-admits and reports it.
  EXPECT_FALSE(c.quarantined(5, 103.1));
  const auto r = c.put(make_ad(5, 2), 103.1, rng);
  EXPECT_TRUE(r.stored);
  EXPECT_TRUE(r.readmitted);
  EXPECT_NE(c.find(5), nullptr);
  // A re-admitted entry starts fully trusted again (fresh evidence).
  EXPECT_DOUBLE_EQ(c.trust_of(5), 1.0);
}

TEST(AdCacheTrust, RepeatOffenderBackoffDoubles) {
  AdCache c(10);
  c.set_trust_params(0.3, /*decay=*/0.1, /*threshold=*/0.2,
                     /*backoff=*/100.0);
  Rng rng(33);
  c.put(make_ad(5, 1), 1.0, rng);
  EXPECT_TRUE(c.record_strike(5, 10.0));  // first offense: 100 s
  EXPECT_TRUE(c.quarantined(5, 109.0));
  EXPECT_FALSE(c.quarantined(5, 110.5));
  ASSERT_TRUE(c.put(make_ad(5, 2), 111.0, rng).readmitted);
  EXPECT_TRUE(c.record_strike(5, 120.0));  // second offense: 200 s
  EXPECT_TRUE(c.quarantined(5, 319.0));
  EXPECT_FALSE(c.quarantined(5, 320.5));
}

TEST(AdCacheTrust, QuarantineIsPerSource) {
  AdCache c(10);
  c.set_trust_params(0.3, /*decay=*/0.1, /*threshold=*/0.2, 100.0);
  Rng rng(34);
  c.put(make_ad(5, 1), 1.0, rng);
  c.put(make_ad(6, 1), 1.0, rng);
  EXPECT_TRUE(c.record_strike(5, 10.0));
  EXPECT_TRUE(c.quarantined(5, 50.0));
  EXPECT_FALSE(c.quarantined(6, 50.0));
  EXPECT_NE(c.find(6), nullptr);
  EXPECT_TRUE(c.put(make_ad(6, 2), 50.0, rng).stored);
}

// Satellite regression: the confirm-retry chain used to charge one
// logical timeout twice — once per retry attempt and once more when
// erase_stale re-opened the window — so a single silent source burned
// through stale_timeout_strikes twice as fast as configured. With the
// chain guard on, any chain that started before the last counted chain
// ended is the same evidence window and must not increment the count.
TEST(AdCacheTrust, StrikeChainGuardCountsOnePerConfirmChain) {
  AdCache c(10);
  c.set_strike_per_chain(true);
  Rng rng(35);
  c.put(make_ad(5, 1), 1.0, rng);
  EXPECT_EQ(c.record_timeout(5, /*chain_start=*/2.0, /*chain_end=*/6.0), 1u);
  // A retry whose chain started inside the counted window: same chain.
  EXPECT_EQ(c.record_timeout(5, 4.0, 9.0), 1u);
  EXPECT_EQ(c.record_timeout(5, 5.9, 7.0), 1u);
  // A chain that started after the counted window ended is new evidence.
  EXPECT_EQ(c.record_timeout(5, 6.5, 10.0), 2u);
  // A confirm reply still resets the count.
  c.reset_timeouts(5);
  EXPECT_EQ(c.record_timeout(5, 20.0, 22.0), 1u);
}

TEST(AdCacheTrust, StrikeChainGuardOffKeepsLegacyDoubleCount) {
  AdCache c(10);  // guard defaults off: every call counts (legacy)
  Rng rng(36);
  c.put(make_ad(5, 1), 1.0, rng);
  EXPECT_EQ(c.record_timeout(5, 2.0, 6.0), 1u);
  EXPECT_EQ(c.record_timeout(5, 4.0, 9.0), 2u);
  EXPECT_EQ(c.record_timeout(5, 5.0, 9.5), 3u);
}

/// An ad whose filter is stuffed past the plausibility gate's fill ratio.
AdPayloadPtr make_stuffed_ad(NodeId src, std::uint32_t version,
                             double target_fill) {
  bloom::BloomFilter f;
  const std::uint32_t bits = f.params().bits;
  const auto want = static_cast<std::uint32_t>(target_fill * bits);
  for (std::uint32_t pos = 0; pos < want; ++pos) {
    if (!f.bit(pos)) f.toggle(pos);
  }
  return std::make_shared<const AdPayload>(src, version, std::move(f),
                                           std::vector<TopicId>{0});
}

TEST(AdCacheTrust, FillGateDemotesStuffedAdsToZeroTrust) {
  AdCache c(10);
  c.set_trust_params(0.3, 0.5, 0.2, 120.0);
  c.set_fill_gate(0.65);
  Rng rng(37);
  // An honest sparse ad sails through, fully trusted.
  EXPECT_TRUE(c.put(make_ad(5, 1, {1, 2, 3}), 1.0, rng).stored);
  EXPECT_EQ(c.trust_of(5), 1.0);
  // A stuffed ad (fill 0.8 > gate 0.65) is demoted, not dropped: it stays
  // cached (the polluter's real content remains reachable) but at zero
  // trust, so ranking sends confirm probes elsewhere first.
  const auto r = c.put(make_stuffed_ad(5, 2, 0.8), 2.0, rng);
  EXPECT_TRUE(r.implausible);
  EXPECT_TRUE(r.stored);
  ASSERT_NE(c.find(5), nullptr);
  EXPECT_EQ(c.trust_of(5), 0.0);
  EXPECT_FALSE(c.quarantined(5, 3.0));
  // The first wasted confirm probe then quarantines immediately (trust is
  // already below any threshold).
  EXPECT_TRUE(c.record_strike(5, 3.0));
  EXPECT_TRUE(c.quarantined(5, 4.0));
  EXPECT_EQ(c.find(5), nullptr);
  // Another source with honest fill is unaffected.
  EXPECT_TRUE(c.put(make_ad(6, 1, {9}), 4.0, rng).stored);
  EXPECT_EQ(c.trust_of(6), 1.0);
}

TEST(AdCacheTrust, FillGateVerdictIsAboutTheSourceNotTheAdInstance) {
  AdCache c(10);
  c.set_trust_params(0.3, 0.5, 0.2, 120.0);
  c.set_fill_gate(0.65);
  Rng rng(38);
  EXPECT_TRUE(c.put(make_ad(5, 3, {1, 2}), 1.0, rng).stored);
  // A *stale* stuffed delivery is not stored, but still collapses trust:
  // the gate's evidence concerns the source's behaviour.
  const auto r = c.put(make_stuffed_ad(5, 2, 0.8), 2.0, rng);
  EXPECT_TRUE(r.implausible);
  EXPECT_FALSE(r.stored);
  EXPECT_EQ(c.find(5)->ad->version, 3u);
  EXPECT_EQ(c.trust_of(5), 0.0);
}

TEST(AdCacheTrust, FillGateOffAdmitsStuffedAdsFullyTrusted) {
  AdCache c(10);  // gate defaults off: legacy admission, full trust
  c.set_trust_params(0.3, 0.5, 0.2, 120.0);
  Rng rng(39);
  EXPECT_FALSE(c.put(make_stuffed_ad(5, 1, 0.9), 1.0, rng).implausible);
  EXPECT_EQ(c.trust_of(5), 1.0);
}

}  // namespace
}  // namespace asap::ads
