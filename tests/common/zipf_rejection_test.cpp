// Rejection-inversion Zipf sampler (Hörmann & Derflinger) tests: exact
// rank-frequency agreement with the analytic law at several (n, s) via a
// Kolmogorov–Smirnov bound, bit-exact determinism (the build pins
// -ffp-contract=off so the transcendental pipeline is stable), and the
// ZipfDraw facade contract — CDF table below the threshold (bit-identical
// to the historical sampler), rejection-inversion above it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace asap {
namespace {

/// Analytic CDF of the Zipf(n, s) law at every rank (1-indexed).
std::vector<double> zipf_cdf(std::uint32_t n, double s) {
  std::vector<double> cdf(n + 1, 0.0);
  double norm = 0.0;
  for (std::uint32_t r = 1; r <= n; ++r) {
    norm += std::pow(static_cast<double>(r), -s);
  }
  double acc = 0.0;
  for (std::uint32_t r = 1; r <= n; ++r) {
    acc += std::pow(static_cast<double>(r), -s) / norm;
    cdf[r] = acc;
  }
  return cdf;
}

/// One-sample KS statistic of `draws` (ranks in [1, n]) against the law.
double ks_statistic(const std::vector<std::uint32_t>& draws, std::uint32_t n,
                    double s) {
  const auto cdf = zipf_cdf(n, s);
  std::vector<std::uint64_t> counts(n + 1, 0);
  for (const auto d : draws) ++counts[d];
  double emp = 0.0, worst = 0.0;
  const double total = static_cast<double>(draws.size());
  for (std::uint32_t r = 1; r <= n; ++r) {
    emp += static_cast<double>(counts[r]) / total;
    worst = std::max(worst, std::abs(emp - cdf[r]));
  }
  return worst;
}

TEST(ZipfRejectionSampler, MatchesAnalyticLawAtSeveralShapes) {
  struct Case {
    std::uint32_t n;
    double s;
  };
  // Covers the s=1 harmonic pole, sub-/super-linear skew, and pool sizes
  // on both sides of the facade threshold.
  const Case cases[] = {{1'000, 1.0}, {4'096, 0.8},  {20'000, 1.0},
                        {20'000, 1.5}, {100'000, 0.6}};
  constexpr int kDraws = 200'000;
  // KS critical value at alpha = 0.001 is 1.95 / sqrt(N) ≈ 0.00436; use a
  // slightly looser bound so the test stays deterministic-robust.
  const double bound = 2.2 / std::sqrt(static_cast<double>(kDraws));
  std::uint64_t seed = 11;
  for (const auto& c : cases) {
    ZipfRejectionSampler z(c.n, c.s);
    Rng rng(seed++);
    std::vector<std::uint32_t> draws(kDraws);
    for (auto& d : draws) {
      d = z.sample(rng);
      ASSERT_GE(d, 1u);
      ASSERT_LE(d, c.n);
    }
    EXPECT_LT(ks_statistic(draws, c.n, c.s), bound)
        << "n=" << c.n << " s=" << c.s;
  }
}

TEST(ZipfRejectionSampler, AlphaZeroIsUniform) {
  ZipfRejectionSampler z(1'000, 0.0);
  Rng rng(5);
  std::vector<std::uint64_t> counts(1'001, 0);
  constexpr int kDraws = 500'000;
  for (int i = 0; i < kDraws; ++i) ++counts[z.sample(rng)];
  const double expected = kDraws / 1'000.0;
  for (std::uint32_t r = 1; r <= 1'000; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]), expected, expected * 0.35)
        << "rank " << r;
  }
}

TEST(ZipfRejectionSampler, SingleRankAlwaysReturnsOne) {
  ZipfRejectionSampler z(1, 1.2);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 1u);
}

TEST(ZipfRejectionSampler, DeterministicAcrossInstances) {
  // Two independently constructed samplers over the same (n, s) must
  // consume and map the RNG stream identically — the property streaming
  // trace replay relies on (-ffp-contract=off keeps the FP pipeline
  // identical between translation units).
  ZipfRejectionSampler a(50'000, 1.1);
  ZipfRejectionSampler b(50'000, 1.1);
  Rng ra(31), rb(31);
  for (int i = 0; i < 20'000; ++i) {
    ASSERT_EQ(a.sample(ra), b.sample(rb)) << "draw " << i;
  }
  EXPECT_EQ(ra.next_u64(), rb.next_u64());  // identical RNG consumption
}

TEST(ZipfDraw, UsesCdfTableUpToThresholdAndStaysBitIdentical) {
  // At or below the threshold the facade must delegate to the historical
  // CDF sampler draw for draw — this is what keeps every existing world
  // digest bit-identical after the facade swap.
  ZipfDraw facade(ZipfDraw::kCdfMaxRanks, 1.0);
  ZipfSampler legacy(ZipfDraw::kCdfMaxRanks, 1.0);
  EXPECT_FALSE(facade.uses_rejection());
  Rng rf(77), rl(77);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_EQ(facade.sample(rf), legacy.sample(rl)) << "draw " << i;
  }
  EXPECT_EQ(rf.next_u64(), rl.next_u64());
}

TEST(ZipfDraw, SwitchesToRejectionAboveThreshold) {
  ZipfDraw facade(ZipfDraw::kCdfMaxRanks + 1, 1.0);
  EXPECT_TRUE(facade.uses_rejection());
  Rng rng(13);
  for (int i = 0; i < 1'000; ++i) {
    const auto r = facade.sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, ZipfDraw::kCdfMaxRanks + 1);
  }
}

TEST(ZipfDraw, BothEnginesAgreeOnTheLaw) {
  // The two sampling engines are different algorithms over the same law;
  // their empirical CDFs must agree within KS distance at a size where
  // both are constructible.
  constexpr std::uint32_t kN = 2'000;
  constexpr double kS = 1.0;
  constexpr int kDraws = 200'000;
  ZipfSampler cdf_engine(kN, kS);
  ZipfRejectionSampler rej_engine(kN, kS);
  Rng r1(3), r2(4);
  std::vector<std::uint32_t> a(kDraws), b(kDraws);
  for (auto& d : a) d = cdf_engine.sample(r1);
  for (auto& d : b) d = rej_engine.sample(r2);
  const double bound = 2.2 * std::sqrt(2.0 / kDraws);  // two-sample KS
  EXPECT_LT(ks_statistic(a, kN, kS) + ks_statistic(b, kN, kS), bound * 2);
}

}  // namespace
}  // namespace asap
