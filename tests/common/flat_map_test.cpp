// FlatMap / FlatSet property tests: under random insert / erase / overwrite
// sequences the open-addressing map must agree with a std::unordered_map
// oracle at every step — including after backward-shift deletions, which
// are the easy-to-get-wrong half of linear probing.
#include "common/flat_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace asap {
namespace {

TEST(FlatMap, EmptyMapCostsOnlyTheHeader) {
  FlatMap<NodeId, std::uint32_t> m;
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.memory_bytes(), 0u);
  EXPECT_EQ(m.find(7u), nullptr);
  EXPECT_FALSE(m.erase(7u));
  EXPECT_LE(sizeof(m), 16u);
}

TEST(FlatMap, InsertFindOverwrite) {
  FlatMap<std::uint64_t, std::uint32_t> m;
  EXPECT_TRUE(m.emplace(10, 1));
  EXPECT_FALSE(m.emplace(10, 2));  // already present: value untouched
  ASSERT_NE(m.find(10), nullptr);
  EXPECT_EQ(*m.find(10), 1u);
  m[10] = 5;
  EXPECT_EQ(*m.find(10), 5u);
  m[11] = 7;
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.erase(10));
  EXPECT_FALSE(m.erase(10));
  EXPECT_EQ(m.find(10), nullptr);
  EXPECT_EQ(*m.find(11), 7u);
}

TEST(FlatMap, AgreesWithUnorderedMapOracleUnderRandomOps) {
  FlatMap<NodeId, std::uint64_t> m;
  std::unordered_map<NodeId, std::uint64_t> oracle;
  Rng rng(2024);
  // Small key space keeps collision chains long, and erase() constantly
  // punches holes into them: the strongest workout for backward-shift.
  constexpr std::uint64_t kKeys = 257;
  for (int step = 0; step < 60'000; ++step) {
    const auto key = static_cast<NodeId>(rng.below(kKeys));
    switch (rng.below(4)) {
      case 0:
      case 1: {  // insert / overwrite
        const std::uint64_t val = rng.next_u64();
        m[key] = val;
        oracle[key] = val;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(m.erase(key), oracle.erase(key) > 0);
        break;
      }
      default: {  // lookup
        const auto* p = m.find(key);
        const auto it = oracle.find(key);
        if (it == oracle.end()) {
          EXPECT_EQ(p, nullptr);
        } else {
          ASSERT_NE(p, nullptr);
          EXPECT_EQ(*p, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(m.size(), oracle.size());
  }
  // Full sweep at the end: every oracle entry, and nothing else.
  std::size_t seen = 0;
  m.for_each([&](NodeId k, std::uint64_t v) {
    ++seen;
    const auto it = oracle.find(k);
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(v, it->second);
  });
  EXPECT_EQ(seen, oracle.size());
}

TEST(FlatMap, CopyAndMovePreserveContents) {
  FlatMap<std::uint32_t, std::uint32_t> m;
  for (std::uint32_t k = 0; k < 100; ++k) m[k] = k * 3;
  FlatMap<std::uint32_t, std::uint32_t> copy(m);
  EXPECT_EQ(copy.size(), 100u);
  for (std::uint32_t k = 0; k < 100; ++k) EXPECT_EQ(*copy.find(k), k * 3);
  m[5] = 999;
  EXPECT_EQ(*copy.find(5), 15u);  // deep copy, not aliased

  FlatMap<std::uint32_t, std::uint32_t> moved(std::move(copy));
  EXPECT_EQ(moved.size(), 100u);
  EXPECT_EQ(copy.size(), 0u);  // NOLINT(bugprone-use-after-move)
  for (std::uint32_t k = 0; k < 100; ++k) EXPECT_EQ(*moved.find(k), k * 3);

  FlatMap<std::uint32_t, std::uint32_t> assigned;
  assigned[1] = 1;
  assigned = moved;
  EXPECT_EQ(assigned.size(), 100u);
  EXPECT_EQ(*assigned.find(99), 297u);
}

TEST(FlatMap, ClearReleasesTheSlab) {
  // clear() returns the map to its 16-byte empty state — a cleared
  // per-node map must cost nothing again, same as a fresh one.
  FlatMap<std::uint32_t, std::uint32_t> m;
  for (std::uint32_t k = 0; k < 64; ++k) m[k] = k;
  EXPECT_GT(m.memory_bytes(), 0u);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.memory_bytes(), 0u);
  EXPECT_EQ(m.find(3u), nullptr);
  m[3] = 9;
  EXPECT_EQ(*m.find(3u), 9u);
}

TEST(FlatSet, AgreesWithUnorderedSetOracle) {
  FlatSet<std::uint64_t> s;
  std::unordered_set<std::uint64_t> oracle;
  Rng rng(7);
  for (int step = 0; step < 30'000; ++step) {
    const std::uint64_t key = rng.below(401);
    if (rng.below(3) == 0) {
      EXPECT_EQ(s.erase(key), oracle.erase(key) > 0);
    } else {
      EXPECT_EQ(s.insert(key), oracle.insert(key).second);
    }
    ASSERT_EQ(s.size(), oracle.size());
    const std::uint64_t probe = rng.below(401);
    EXPECT_EQ(s.contains(probe), oracle.count(probe) > 0);
  }
}

}  // namespace
}  // namespace asap
