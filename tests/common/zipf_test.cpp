#include "common/zipf.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace asap {
namespace {

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler z(100, 1.2);
  double sum = 0.0;
  for (std::uint32_t r = 1; r <= 100; ++r) sum += z.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfSampler, PmfMonotonicallyDecreasing) {
  ZipfSampler z(50, 0.9);
  for (std::uint32_t r = 2; r <= 50; ++r) {
    EXPECT_LE(z.pmf(r), z.pmf(r - 1) + 1e-15);
  }
}

TEST(ZipfSampler, AlphaZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  for (std::uint32_t r = 1; r <= 10; ++r) EXPECT_NEAR(z.pmf(r), 0.1, 1e-12);
}

TEST(ZipfSampler, SamplesMatchPmf) {
  ZipfSampler z(20, 1.5);
  Rng rng(3);
  std::vector<int> counts(21, 0);
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) ++counts[z.sample(rng)];
  for (std::uint32_t r = 1; r <= 20; ++r) {
    const double expected = z.pmf(r) * kDraws;
    EXPECT_NEAR(counts[r], expected, expected * 0.1 + 40)
        << "rank " << r;
  }
}

TEST(ZipfSampler, SingleRank) {
  ZipfSampler z(1, 2.0);
  Rng rng(4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z.sample(rng), 1u);
  EXPECT_DOUBLE_EQ(z.pmf(1), 1.0);
}

TEST(ZipfSampler, RejectsBadParams) {
  EXPECT_THROW(ZipfSampler(0, 1.0), ConfigError);
  EXPECT_THROW(ZipfSampler(10, -0.5), ConfigError);
}

TEST(PowerlawDegreeSequence, MeanPinnedAndBounded) {
  Rng rng(5);
  const auto deg = powerlaw_degree_sequence(5'000, 0.74, 1, 40, 5.0, rng);
  ASSERT_EQ(deg.size(), 5'000u);
  std::uint64_t total = 0;
  for (auto d : deg) {
    EXPECT_GE(d, 1u);
    EXPECT_LE(d, 40u);
    total += d;
  }
  EXPECT_EQ(total % 2, 0u) << "degree total must be even";
  const double mean = static_cast<double>(total) / 5'000.0;
  EXPECT_NEAR(mean, 5.0, 0.05);
}

TEST(PowerlawDegreeSequence, SkewedTail) {
  Rng rng(6);
  const auto deg = powerlaw_degree_sequence(10'000, 1.5, 1, 50, 3.35, rng);
  // A heavy-tailed sequence at mean 3.35 must contain both many leaves and
  // some hubs well above the mean.
  int leaves = 0, hubs = 0;
  for (auto d : deg) {
    leaves += d <= 2;
    hubs += d >= 12;
  }
  EXPECT_GT(leaves, 3'000);
  EXPECT_GT(hubs, 30);
}

TEST(PowerlawDegreeSequence, DeterministicForFixedSeed) {
  Rng a(9), b(9);
  EXPECT_EQ(powerlaw_degree_sequence(2'000, 0.74, 1, 40, 5.0, a),
            powerlaw_degree_sequence(2'000, 0.74, 1, 40, 5.0, b));
}

TEST(PowerlawDegreeSequence, LargeSequenceStaysFast) {
  // The nudge loop used to recompute the full sum every pass, which made
  // paper-scale sequences (tens of thousands of nodes) quadratic. With the
  // running sum this is comfortably sub-second even at 200k nodes.
  Rng rng(8);
  const auto deg = powerlaw_degree_sequence(200'000, 0.74, 1, 40, 5.0, rng);
  std::uint64_t total = 0;
  for (auto d : deg) total += d;
  EXPECT_EQ(total % 2, 0u);
  EXPECT_NEAR(static_cast<double>(total) / 200'000.0, 5.0, 0.05);
}

TEST(PowerlawDegreeSequence, RejectsBadParams) {
  Rng rng(7);
  EXPECT_THROW(powerlaw_degree_sequence(1, 1.0, 1, 10, 5.0, rng),
               ConfigError);
  EXPECT_THROW(powerlaw_degree_sequence(10, 1.0, 5, 4, 5.0, rng),
               ConfigError);
  EXPECT_THROW(powerlaw_degree_sequence(10, 1.0, 1, 10, 50.0, rng),
               ConfigError);
}

}  // namespace
}  // namespace asap
