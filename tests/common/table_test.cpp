#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace asap {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const auto s = t.to_string();
  // Every line has the same width layout; headers come first.
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ConfigError);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), ConfigError);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTable, BytesPicksSuffix) {
  EXPECT_EQ(TextTable::bytes(512), "512.00 B");
  EXPECT_EQ(TextTable::bytes(2'048), "2.05 KB");
  EXPECT_EQ(TextTable::bytes(3.5e6), "3.50 MB");
  EXPECT_EQ(TextTable::bytes(7.25e9), "7.25 GB");
}

}  // namespace
}  // namespace asap
