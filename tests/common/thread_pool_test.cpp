#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace asap {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 50; ++i) {
    futs.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCount) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace asap
