#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace asap {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 50; ++i) {
    futs.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCount) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForFinishesEveryTaskBeforeRethrowing) {
  // Tasks reference the callable by reference; parallel_for must not
  // return (or throw) while any task can still run, and the pool must
  // remain usable afterwards.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      ++ran;
      if (i % 7 == 0) throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(ran.load(), 64);

  std::atomic<int> again{0};
  pool.parallel_for(16, [&](std::size_t) { ++again; });
  EXPECT_EQ(again.load(), 16);
}

TEST(ThreadPool, ParallelForRethrowsFirstExceptionByIndex) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(32, [](std::size_t i) {
      if (i >= 5) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "5");
  }
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
  pool.shutdown();
  pool.shutdown();  // idempotent
  EXPECT_THROW(pool.submit([] { return 2; }), InvariantError);
  EXPECT_THROW(pool.parallel_for(3, [](std::size_t) {}), InvariantError);
}

TEST(ThreadPool, ParallelForZeroCountAfterShutdownIsANoOp) {
  // count == 0 has no indices to run, so it must not round-trip the pool
  // at all — in particular it cannot throw "submit after shutdown".
  ThreadPool pool(1);
  pool.shutdown();
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ShutdownDuringParallelForDrainsBeforeRethrow) {
  // A shutdown() racing the submit loop makes submit() throw partway
  // through parallel_for. The already-queued tasks keep draining during
  // shutdown and reference `fn` by reference, so parallel_for must hold
  // the error until every submitted task finished — the old code
  // propagated immediately, leaving live tasks with a dangling callable
  // (the sanitizer jobs run this test under ASan/TSan).
  for (int round = 0; round < 8; ++round) {
    ThreadPool pool(2);
    std::atomic<bool> entered{false};
    std::atomic<int> live{0};
    std::atomic<int> ran{0};
    bool threw = false;
    std::thread caller([&] {
      try {
        pool.parallel_for(10'000, [&](std::size_t) {
          ++live;
          entered = true;
          ++ran;
          --live;
        });
      } catch (const InvariantError&) {
        threw = true;
      }
      // Whether it completed or threw, no submitted task may still be
      // running once parallel_for returns.
      EXPECT_EQ(live.load(), 0);
    });
    while (!entered.load()) std::this_thread::yield();
    pool.shutdown();
    caller.join();
    // shutdown() drains the queue, so either the race was lost and all
    // indices ran, or parallel_for threw the submit error after its
    // drain; both end with a quiescent pool and no further task runs.
    const int after_join = ran.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(ran.load(), after_join);
    if (threw) EXPECT_LT(after_join, 10'000);
  }
}

TEST(ThreadPool, TaskExceptionOutranksConcurrentShutdownError) {
  // When a task itself threw and shutdown also clipped the submit loop,
  // the caller's own exception must surface, not the generic
  // "submit after shutdown" invariant error.
  ThreadPool pool(1);
  std::atomic<bool> entered{false};
  std::exception_ptr seen;
  std::thread caller([&] {
    try {
      pool.parallel_for(10'000, [&](std::size_t i) {
        entered = true;
        if (i == 0) throw std::runtime_error("task error");
      });
    } catch (...) {
      seen = std::current_exception();
    }
  });
  while (!entered.load()) std::this_thread::yield();
  pool.shutdown();
  caller.join();
  ASSERT_TRUE(seen != nullptr);
  EXPECT_THROW(std::rethrow_exception(seen), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace asap
