#include "common/json.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"

namespace asap::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("3.25").as_double(), 3.25);
  EXPECT_DOUBLE_EQ(parse("-17").as_double(), -17.0);
  EXPECT_DOUBLE_EQ(parse("6.02e23").as_double(), 6.02e23);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesContainers) {
  const Value v = parse(R"({"a": [1, 2, 3], "b": {"c": true}, "d": null})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_double(), 2.0);
  EXPECT_TRUE(v.at("b").at("c").as_bool());
  EXPECT_TRUE(v.at("d").is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), ConfigError);
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  const Value v = parse(R"({"z": 1, "a": 2, "m": 3})");
  const Object& o = v.as_object();
  ASSERT_EQ(o.size(), 3u);
  EXPECT_EQ(o[0].first, "z");
  EXPECT_EQ(o[1].first, "a");
  EXPECT_EQ(o[2].first, "m");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(parse(R"("Aé")").as_string(), "A\xC3\xA9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parse(R"("😀")").as_string(), "\xF0\x9F\x98\x80");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), ConfigError);
  EXPECT_THROW(parse("{"), ConfigError);
  EXPECT_THROW(parse("[1,]"), ConfigError);
  EXPECT_THROW(parse("nul"), ConfigError);
  EXPECT_THROW(parse("1 2"), ConfigError);
  EXPECT_THROW(parse("\"unterminated"), ConfigError);
  EXPECT_THROW(parse("{\"a\" 1}"), ConfigError);
  EXPECT_THROW(parse("+5"), ConfigError);
}

TEST(Json, TypedAccessorsCheckTypes) {
  EXPECT_THROW(parse("3").as_string(), ConfigError);
  EXPECT_THROW(parse("\"x\"").as_double(), ConfigError);
  EXPECT_THROW(parse("[]").as_object(), ConfigError);
}

TEST(Json, HexU64RoundTripsExactly) {
  // Values above 2^53 cannot survive a double; the hex-string convention
  // must round-trip every 64-bit pattern bit-exactly.
  for (const std::uint64_t v :
       {0ULL, 1ULL, 0x4851003f0d1a6c24ULL, ~0ULL, 1ULL << 63}) {
    EXPECT_EQ(parse(dump(Value(hex_u64(v)))).u64_hex(), v);
  }
  EXPECT_THROW(parse("\"42\"").u64_hex(), ConfigError);
  EXPECT_THROW(parse("\"0xZZ\"").u64_hex(), ConfigError);
  EXPECT_THROW(parse("\"0x\"").u64_hex(), ConfigError);
}

TEST(Json, DumpParsesBackIdentically) {
  Object inner;
  inner.emplace_back("pi", 3.141592653589793);
  inner.emplace_back("neg", -0.25);
  Object root;
  root.emplace_back("name", "asap \"matrix\"\n");
  root.emplace_back("flags", Array{Value(true), Value(false), Value(nullptr)});
  root.emplace_back("nested", Value(std::move(inner)));
  root.emplace_back("empty_arr", Array{});
  root.emplace_back("empty_obj", Object{});
  const Value original{std::move(root)};

  const std::string text = dump(original);
  const Value reparsed = parse(text);
  // Shortest-round-trip doubles make a second dump byte-identical.
  EXPECT_EQ(dump(reparsed), text);
  EXPECT_DOUBLE_EQ(reparsed.at("nested").at("pi").as_double(),
                   3.141592653589793);
  EXPECT_EQ(reparsed.at("name").as_string(), "asap \"matrix\"\n");
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(dump(Value(std::numeric_limits<double>::infinity())), "null\n");
}

TEST(Json, DumpCompactIsSingleLineAndReparses) {
  Object inner;
  inner.emplace_back("pi", 3.141592653589793);
  Object root;
  root.emplace_back("type", "query");
  root.emplace_back("ok", true);
  root.emplace_back("xs", Array{Value(1.0), Value(2.0)});
  root.emplace_back("nested", Value(std::move(inner)));
  const Value original{std::move(root)};

  const std::string text = dump_compact(original);
  // JSONL-ready: one line, no trailing newline, no formatting whitespace.
  EXPECT_EQ(text.find('\n'), std::string::npos);
  EXPECT_EQ(text.find("  "), std::string::npos);
  EXPECT_EQ(text,
            R"({"type":"query","ok":true,"xs":[1,2],)"
            R"("nested":{"pi":3.141592653589793}})");
  const Value reparsed = parse(text);
  EXPECT_EQ(reparsed.at("type").as_string(), "query");
  EXPECT_DOUBLE_EQ(reparsed.at("nested").at("pi").as_double(),
                   3.141592653589793);
}

}  // namespace
}  // namespace asap::json
