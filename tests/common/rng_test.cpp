#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace asap {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1'000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedResetsStream) {
  Rng a(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next_u64());
  a.reseed(77);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(9);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  const double rate = 8.0;
  double sum = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / kDraws, 1.0 / rate, 0.01);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(19);
  for (double mean : {0.5, 4.0, 40.0}) {
    double sum = 0.0;
    constexpr int kDraws = 50'000;
    for (int i = 0; i < kDraws; ++i) {
      sum += static_cast<double>(rng.poisson(mean));
    }
    EXPECT_NEAR(sum / kDraws, mean, mean * 0.05 + 0.05);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0.0, sq = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, GeometricMean) {
  Rng rng(29);
  const double p = 0.25;
  double sum = 0.0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(rng.geometric(p));
  }
  EXPECT_NEAR(sum / kDraws, (1 - p) / p, 0.1);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng rng(37);
  for (std::uint32_t n : {10u, 100u, 10'000u}) {
    for (std::uint32_t k : {0u, 1u, n / 2, n}) {
      auto s = rng.sample_indices(n, k);
      ASSERT_EQ(s.size(), k);
      std::set<std::uint32_t> uniq(s.begin(), s.end());
      EXPECT_EQ(uniq.size(), k);
      for (auto idx : s) EXPECT_LT(idx, n);
    }
  }
}

TEST(Rng, SampleIndicesRejectsOversizedRequest) {
  Rng rng(41);
  EXPECT_THROW(rng.sample_indices(5, 6), ConfigError);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(55);
  Rng child = a.fork();
  // The child stream should not replicate the parent's continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == child.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(61);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace asap
