#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace asap {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // m2 = 32 over 8 samples: sample variance 32/7, population 32/8.
  EXPECT_DOUBLE_EQ(s.variance(), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(32.0 / 7.0));
  EXPECT_DOUBLE_EQ(s.population_variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.population_stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(3.14);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.population_variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats whole, a, b;
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.normal(10, 4);
    whole.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 1, offset + 2, offset + 3}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
  EXPECT_NEAR(s.population_variance(), 2.0 / 3.0, 1e-6);
}

TEST(Histogram, BinningAndOutOfRangeCells) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // underflow cell, NOT bin 0
  h.add(42.0);   // overflow cell, NOT bin 9
  h.add(10.0);   // hi is exclusive: overflow, not bin 9
  h.add(5.0, 3); // weighted into bin 5
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 3u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.in_range(), 5u);
  EXPECT_EQ(h.total(), 8u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(Histogram, InRangeTotalsUnaffectedByOutliers) {
  // The in-range picture must be identical whether or not out-of-range
  // samples were ever added (the old clamping behavior polluted the edge
  // bins).
  Histogram clean(0.0, 1.0, 4);
  Histogram noisy(0.0, 1.0, 4);
  for (double x : {0.1, 0.4, 0.6, 0.9}) {
    clean.add(x);
    noisy.add(x);
  }
  noisy.add(-100.0, 7);
  noisy.add(1e9, 2);
  for (std::uint32_t i = 0; i < clean.bins(); ++i) {
    EXPECT_EQ(clean.bin_count(i), noisy.bin_count(i)) << "bin " << i;
  }
  EXPECT_EQ(clean.in_range(), noisy.in_range());
  EXPECT_EQ(noisy.underflow(), 7u);
  EXPECT_EQ(noisy.overflow(), 2u);
  EXPECT_EQ(noisy.total(), clean.total() + 9u);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ConfigError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
}

TEST(Percentile, Basics) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.125), 1.5);  // interpolation
}

TEST(Percentile, RejectsEmptyAndBadQuantile) {
  EXPECT_THROW(percentile({}, 0.5), ConfigError);
  EXPECT_THROW(percentile({1.0}, -0.1), ConfigError);
  EXPECT_THROW(percentile({1.0}, 1.1), ConfigError);
}

TEST(Percentile, SpanVariantsAgreeWithByValueForm) {
  // The allocation-free variants (ISSUE 6) must compute the same
  // quantiles as the sort-a-copy convenience form.
  std::vector<double> unsorted{5, 1, 4, 2, 3};
  for (const double q : {0.0, 0.125, 0.25, 0.5, 0.75, 1.0}) {
    std::vector<double> scratch = unsorted;
    EXPECT_DOUBLE_EQ(percentile_in_place(scratch, q), percentile(unsorted, q));
  }
  // percentile_in_place leaves the span ascending-sorted, ready for
  // repeated percentile_sorted reads without re-sorting.
  std::vector<double> scratch = unsorted;
  percentile_in_place(scratch, 0.5);
  EXPECT_TRUE(std::is_sorted(scratch.begin(), scratch.end()));
  EXPECT_DOUBLE_EQ(percentile_sorted(scratch, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(scratch, 0.125), 1.5);
}

TEST(Percentile, SpanVariantsRejectEmptyAndBadQuantile) {
  std::vector<double> one{1.0};
  EXPECT_THROW(percentile_sorted({}, 0.5), ConfigError);
  EXPECT_THROW(percentile_in_place(std::span<double>{}, 0.5), ConfigError);
  EXPECT_THROW(percentile_sorted(one, -0.1), ConfigError);
  EXPECT_THROW(percentile_in_place(one, 1.1), ConfigError);
}

}  // namespace
}  // namespace asap
