// Identity tests for the divisionless Kirsch–Mitzenmacher probe walk.
//
// Every committed run digest depends on the exact probe positions, so the
// divisionless walk must match the canonical ((h1 + i*h2) mod 2^64) mod m
// sequence bit-for-bit — including across the rare 64-bit accumulator
// wraps the add-and-conditional-subtract scheme corrects for.
#include "bloom/probe.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace asap::bloom::probe {
namespace {

std::vector<std::uint32_t> fast_positions(std::uint64_t key, std::uint32_t m,
                                          std::uint32_t k) {
  std::vector<std::uint32_t> out;
  for_each_position(key, m, k,
                    [&out](std::uint32_t pos) { out.push_back(pos); });
  return out;
}

std::vector<std::uint32_t> reference_positions(std::uint64_t key,
                                               std::uint32_t m,
                                               std::uint32_t k) {
  std::vector<std::uint32_t> out;
  for_each_position_reference(
      key, m, k, [&out](std::uint32_t pos) { out.push_back(pos); });
  return out;
}

TEST(Probe, HashPairStrideIsAlwaysOdd) {
  Rng rng(1);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_EQ(km_hash(rng.next_u64()).h2 & 1ULL, 1ULL);
  }
  EXPECT_EQ(km_hash(0).h2 & 1ULL, 1ULL);
  EXPECT_EQ(km_hash(~0ULL).h2 & 1ULL, 1ULL);
}

TEST(Probe, MatchesReferenceAtPaperGeometry) {
  constexpr std::uint32_t kBits = 11'542;
  constexpr std::uint32_t kHashes = 8;
  Rng rng(2);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t key = rng.next_u64();
    EXPECT_EQ(fast_positions(key, kBits, kHashes),
              reference_positions(key, kBits, kHashes))
        << "key " << key;
  }
  // Sequential keyword ids, the dominant real workload.
  for (std::uint64_t key = 0; key < 20'000; ++key) {
    ASSERT_EQ(fast_positions(key, kBits, kHashes),
              reference_positions(key, kBits, kHashes))
        << "key " << key;
  }
}

// The wrap correction matters exactly when h1 + i*h2 overflows 2^64, which
// for random h2 ~ U[0, 2^64) happens within k=8 probes for most keys. Sweep
// widely varied geometries — tiny m, odd m, powers of two, huge m — so both
// wrap and no-wrap steps are exercised everywhere.
TEST(Probe, MatchesReferenceAcrossGeometries) {
  const std::uint32_t ms[] = {1,     2,          3,        64,        65,
                              127,   128,        1'000,    4'096,     11'541,
                              11'542, 11'543,    65'536,   1'000'003,
                              1u << 31,          4'000'000'019u};
  const std::uint32_t ks[] = {1, 2, 3, 8, 13, 32};
  Rng rng(3);
  for (const auto m : ms) {
    for (const auto k : ks) {
      for (int i = 0; i < 500; ++i) {
        const std::uint64_t key = rng.next_u64();
        ASSERT_EQ(fast_positions(key, m, k), reference_positions(key, m, k))
            << "m=" << m << " k=" << k << " key=" << key;
      }
      for (const std::uint64_t key : {0ULL, 1ULL, ~0ULL, 0x8000000000000000ULL}) {
        ASSERT_EQ(fast_positions(key, m, k), reference_positions(key, m, k))
            << "m=" << m << " k=" << k << " key=" << key;
      }
    }
  }
}

TEST(Probe, AllPositionsInRange) {
  Rng rng(4);
  for (const std::uint32_t m : {1u, 63u, 11'542u, 4'000'000'019u}) {
    for (int i = 0; i < 200; ++i) {
      for (const auto pos : fast_positions(rng.next_u64(), m, 16)) {
        ASSERT_LT(pos, m);
      }
    }
  }
}

TEST(Probe, BoolCallbackStopsEarly) {
  const auto all = fast_positions(42, 11'542, 8);
  ASSERT_EQ(all.size(), 8u);
  // Stop after the third probe: exactly three callbacks, result false.
  std::vector<std::uint32_t> seen;
  const bool completed =
      for_each_position(42, 11'542, 8, [&seen](std::uint32_t pos) {
        seen.push_back(pos);
        return seen.size() < 3;
      });
  EXPECT_FALSE(completed);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], all[0]);
  EXPECT_EQ(seen[1], all[1]);
  EXPECT_EQ(seen[2], all[2]);
  // Never stopping visits all k and reports completion.
  seen.clear();
  EXPECT_TRUE(for_each_position(42, 11'542, 8, [&seen](std::uint32_t pos) {
    seen.push_back(pos);
    return true;
  }));
  EXPECT_EQ(seen, all);
}

}  // namespace
}  // namespace asap::bloom::probe
