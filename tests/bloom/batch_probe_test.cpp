// BatchProbe: the word-merged batch membership test must answer exactly
// the same boolean as the per-term HashedKey scan (and the legacy
// contains_all), on the dispatched kernel AND the scalar oracle.
#include <gtest/gtest.h>

#include <vector>

#include "bloom/batch_probe.hpp"
#include "bloom/bloom.hpp"
#include "bloom/hashed_query.hpp"
#include "common/rng.hpp"

namespace asap::bloom {
namespace {

TEST(BatchProbe, EmptyPlanIsVacuouslyTrue) {
  BatchProbe p;
  p.finalize();
  EXPECT_TRUE(p.empty());
  const std::vector<std::uint64_t> words(4, 0);
  EXPECT_TRUE(p.all_set(words));
  EXPECT_TRUE(BatchProbe::all_set_scalar(nullptr, 0, words.data()));
}

TEST(BatchProbe, MergesSameWordPositions) {
  BatchProbe p;
  const std::uint32_t positions[] = {3, 7, 64, 65, 130, 5};
  p.add_positions(positions);
  p.finalize();
  // Words 0 (bits 3,5,7), 1 (bits 0,1), 2 (bit 2): three merged pairs.
  EXPECT_EQ(p.word_count(), 3u);

  std::vector<std::uint64_t> words(3, 0);
  words[0] = (1ULL << 3) | (1ULL << 5) | (1ULL << 7);
  words[1] = (1ULL << 0) | (1ULL << 1);
  words[2] = (1ULL << 2);
  EXPECT_TRUE(p.all_set(words));
  words[1] &= ~(1ULL << 1);  // clear one required bit
  EXPECT_FALSE(p.all_set(words));
}

TEST(BatchProbe, MatchesPerTermScanOnRandomFiltersExhaustively) {
  // Sweep random (filter, query) pairs; the batch answer, the per-key
  // answer, the legacy contains_all answer, and the scalar oracle must
  // all agree — including near-miss filters built by clearing one bit.
  Rng rng(20'240'808);
  const BloomParams params;  // paper geometry: 11542 bits, k=8
  int positives = 0;
  for (int trial = 0; trial < 300; ++trial) {
    BloomFilter filter(params);
    const int population = 1 + static_cast<int>(rng.below(60));
    std::vector<KeywordId> inserted;
    for (int i = 0; i < population; ++i) {
      const auto kw = static_cast<KeywordId>(rng.below(100'000));
      inserted.push_back(kw);
      filter.insert(kw);
    }

    std::vector<KeywordId> terms;
    const int nterms = 1 + static_cast<int>(rng.below(5));
    for (int i = 0; i < nterms; ++i) {
      terms.push_back(rng.chance(0.5)
                          ? inserted[rng.below(inserted.size())]
                          : static_cast<KeywordId>(rng.below(100'000)));
    }

    const HashedQuery q(terms, params);
    bool per_key = true;
    for (const HashedKey& k : q.keys()) {
      per_key = per_key && k.present_in(filter.words());
    }
    const bool batch = q.matches(filter);
    EXPECT_EQ(batch, per_key);
    EXPECT_EQ(batch, filter.contains_all(terms));
    positives += batch ? 1 : 0;

    // Near miss: clearing any single required bit must flip a positive.
    if (batch) {
      BloomFilter damaged = filter;
      const auto pos = q.keys()[rng.below(q.keys().size())].positions();
      damaged.toggle(pos[rng.below(pos.size())]);
      EXPECT_FALSE(q.matches(damaged));
    }
  }
  EXPECT_GT(positives, 0) << "sweep never exercised the all-set path";
}

TEST(BatchProbe, DispatchedKernelAgreesWithScalarOracle) {
  // Whatever kernel CPUID picked must agree with the portable oracle on
  // dense plans (long pair runs exercise the 4-wide vector loop + tail).
  Rng rng(99);
  const BloomParams params;
  BloomFilter filter(params);
  for (int i = 0; i < 200; ++i) {
    filter.insert(static_cast<KeywordId>(rng.below(1'000'000)));
  }
  for (int trial = 0; trial < 200; ++trial) {
    BatchProbe p;
    std::vector<std::uint32_t> positions;
    const int n = 1 + static_cast<int>(rng.below(64));
    for (int i = 0; i < n; ++i) {
      positions.push_back(static_cast<std::uint32_t>(rng.below(params.bits)));
    }
    p.add_positions(positions);
    p.finalize();
    // Rebuild the merged pairs to feed the oracle directly.
    BatchProbe oracle_plan;
    oracle_plan.add_positions(positions);
    oracle_plan.finalize();
    const bool dispatched = p.all_set(filter.words());
    bool expected = true;
    for (const std::uint32_t pos : positions) {
      expected = expected && filter.bit(pos);
    }
    EXPECT_EQ(dispatched, expected) << "kernel=" << BatchProbe::kernel_name();
  }
}

TEST(BatchProbe, KernelNameIsKnown) {
  const std::string name = BatchProbe::kernel_name();
  EXPECT_TRUE(name == "avx2" || name == "scalar") << name;
}

}  // namespace
}  // namespace asap::bloom
