#include "bloom/variable_bloom.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace asap::bloom {
namespace {

TEST(VariableBloom, DefaultPoolIsSortedAndCoversFixedDesign) {
  const auto pool = default_length_pool();
  ASSERT_FALSE(pool.empty());
  for (std::size_t i = 1; i < pool.size(); ++i) {
    EXPECT_GT(pool[i], pool[i - 1]);
  }
  // The pool must reach beyond the fixed design's 11,542 bits so heavy
  // sharers are covered.
  EXPECT_GE(pool.back(), 11'542u);
}

TEST(VariableBloom, PickLengthSatisfiesOptimalBound) {
  const auto pool = default_length_pool();
  for (std::uint32_t n : {1u, 10u, 44u, 100u, 500u, 1'000u}) {
    const auto l = pick_length(n, 8, pool);
    EXPECT_GE(l, BloomParams::min_bits_for(n, 8)) << "n=" << n;
    // And it is the *smallest* such pool entry.
    for (const auto candidate : pool) {
      if (candidate >= BloomParams::min_bits_for(n, 8)) {
        EXPECT_EQ(l, candidate);
        break;
      }
    }
  }
}

TEST(VariableBloom, PickLengthSaturatesAtPoolMax) {
  const auto pool = default_length_pool();
  EXPECT_EQ(pick_length(1'000'000, 8, pool), pool.back());
}

TEST(VariableBloom, NoFalseNegatives) {
  Rng rng(1);
  for (std::uint32_t n : {5u, 50u, 500u}) {
    VariableBloomFilter f(n);
    std::vector<std::uint64_t> keys;
    for (std::uint32_t i = 0; i < n; ++i) keys.push_back(rng.next_u64());
    for (const auto k : keys) f.insert(k);
    for (const auto k : keys) EXPECT_TRUE(f.contains(k));
  }
}

TEST(VariableBloom, FalsePositiveRateNearOptimalAtEveryScale) {
  Rng rng(2);
  // Every node gets ~the same fp rate regardless of how much it shares —
  // the whole point of the variable design.
  for (std::uint32_t n : {30u, 100u, 400u, 1'000u}) {
    VariableBloomFilter f(n);
    for (std::uint64_t k = 0; k < n; ++k) f.insert(k * 3 + 7'000'000);
    int fp = 0;
    constexpr int kProbes = 50'000;
    for (int i = 0; i < kProbes; ++i) {
      fp += f.contains(rng.next_u64());
    }
    const double measured = static_cast<double>(fp) / kProbes;
    const double expected = f.false_positive_rate(n);
    EXPECT_LT(measured, expected * 2.5 + 5e-3) << "n=" << n;
  }
}

TEST(VariableBloom, LightSharersUseSmallFilters) {
  VariableBloomFilter light(20);
  VariableBloomFilter heavy(1'000);
  EXPECT_LT(light.bits(), heavy.bits());
  for (std::uint64_t k = 0; k < 20; ++k) {
    light.insert(k);
  }
  EXPECT_LT(light.wire_bytes(), 200u);
}

TEST(VariableBloom, ContainsAllSemantics) {
  VariableBloomFilter f(10);
  const std::vector<KeywordId> in{11, 22, 33};
  for (const auto k : in) f.insert(k);
  EXPECT_TRUE(f.contains_all(in));
  const std::vector<KeywordId> miss{11, 4'000'000};
  EXPECT_FALSE(f.contains_all(miss));
  EXPECT_TRUE(f.contains_all({}));
}

TEST(VariableBloom, SpaceComparisonFavorsVariableForTypicalSharers) {
  // eDonkey-like population: most nodes share ~25 docs (~150 keywords).
  std::vector<std::uint32_t> sizes;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    sizes.push_back(10 + static_cast<std::uint32_t>(rng.below(300)));
  }
  const auto cmp = compare_filter_space(sizes, BloomParams{});
  EXPECT_LT(cmp.variable_total, cmp.fixed_total)
      << "variable-length filters must use less total space on a "
         "skewed population";
}

TEST(VariableBloom, RejectsBadParams) {
  EXPECT_THROW(VariableBloomFilter(10, 0), ConfigError);
  const std::vector<std::uint32_t> empty_pool;
  EXPECT_THROW(pick_length(10, 8, empty_pool), ConfigError);
}

}  // namespace
}  // namespace asap::bloom
