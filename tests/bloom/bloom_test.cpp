#include "bloom/bloom.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace asap::bloom {
namespace {

TEST(BloomParams, PaperNumbers) {
  // §III-B: |K_max| = 1000 keys at k = 8 need m = 1000*8/ln 2 = 11,542 bits.
  EXPECT_EQ(BloomParams::min_bits_for(1'000, 8), 11'542u);
  const BloomParams p = BloomParams::for_capacity(1'000, 8);
  EXPECT_EQ(p.bits, 11'542u);
  // The optimal false positive rate at full load is (1/2)^k ~ 0.39%.
  EXPECT_NEAR(p.false_positive_rate(1'000), std::pow(0.5, 8), 5e-4);
}

TEST(BloomParams, FalsePositiveRateGrowsWithLoad) {
  const BloomParams p;
  EXPECT_LT(p.false_positive_rate(100), p.false_positive_rate(1'000));
  EXPECT_LT(p.false_positive_rate(1'000), p.false_positive_rate(5'000));
  EXPECT_NEAR(p.false_positive_rate(0), 0.0, 1e-12);
}

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter f;
  Rng rng(1);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 1'000; ++i) keys.push_back(rng.next_u64());
  for (auto k : keys) f.insert(k);
  for (auto k : keys) EXPECT_TRUE(f.contains(k));
}

TEST(BloomFilter, FalsePositiveRateNearTheory) {
  BloomFilter f;
  Rng rng(2);
  for (std::uint64_t k = 0; k < 1'000; ++k) f.insert(k * 2 + 1'000'000);
  int fp = 0;
  constexpr int kProbes = 100'000;
  for (int i = 0; i < kProbes; ++i) {
    if (f.contains(rng.next_u64())) ++fp;
  }
  const double measured = static_cast<double>(fp) / kProbes;
  const double expected = f.params().false_positive_rate(1'000);
  EXPECT_NEAR(measured, expected, expected * 0.5 + 1e-3);
}

TEST(BloomFilter, ContainsAllSemantics) {
  BloomFilter f;
  const std::vector<KeywordId> in{10, 20, 30};
  for (auto k : in) f.insert(k);
  EXPECT_TRUE(f.contains_all(in));
  const std::vector<KeywordId> partial{10, 20};
  EXPECT_TRUE(f.contains_all(partial));
  const std::vector<KeywordId> with_miss{10, 999'999};
  EXPECT_FALSE(f.contains_all(with_miss));
  EXPECT_TRUE(f.contains_all({}));  // vacuous truth
}

TEST(BloomFilter, PopcountAndSetPositions) {
  BloomFilter f;
  EXPECT_EQ(f.popcount(), 0u);
  f.insert(42);
  const auto pos = f.set_positions();
  EXPECT_EQ(pos.size(), f.popcount());
  EXPECT_LE(pos.size(), f.params().hashes);  // double hashing may collide
  for (auto p : pos) EXPECT_TRUE(f.bit(p));
}

TEST(BloomFilter, DiffAndApplyTogglesRoundTrip) {
  BloomFilter a, b;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) a.insert(rng.next_u64());
  b = a;
  for (int i = 0; i < 50; ++i) b.insert(rng.next_u64());
  const auto patch = BloomFilter::diff(a, b);
  EXPECT_FALSE(patch.empty());
  a.apply_toggles(patch);
  EXPECT_EQ(a, b);
  // Applying the same patch again toggles back.
  a.apply_toggles(patch);
  EXPECT_NE(a, b);
}

TEST(BloomFilter, DiffOfIdenticalFiltersIsEmpty) {
  BloomFilter a;
  a.insert(7);
  const BloomFilter b = a;
  EXPECT_TRUE(BloomFilter::diff(a, b).empty());
}

TEST(BloomFilter, WireBytesPrefersSparseWhenNearlyEmpty) {
  BloomFilter f;
  EXPECT_EQ(f.wire_bytes(), 0u);
  f.insert(1);
  EXPECT_LE(f.wire_bytes(), 2u * f.params().hashes);
  // A heavily loaded filter transmits the bitmap instead.
  for (std::uint64_t k = 0; k < 2'000; ++k) f.insert(k);
  EXPECT_EQ(f.wire_bytes(), (f.params().bits + 7) / 8);
}

TEST(BloomFilter, ClearResets) {
  BloomFilter f;
  f.insert(1);
  f.insert(2);
  f.clear();
  EXPECT_EQ(f.popcount(), 0u);
  EXPECT_FALSE(f.contains(1));
}

TEST(BloomFilter, PositionsAreStableAndInRange) {
  BloomFilter f;
  std::vector<std::uint32_t> p1, p2;
  f.positions(123456789, p1);
  f.positions(123456789, p2);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(p1.size(), f.params().hashes);
  for (auto p : p1) EXPECT_LT(p, f.params().bits);
}

TEST(BloomFilter, RejectsBadParams) {
  EXPECT_THROW(BloomFilter(BloomParams{32, 8}), ConfigError);
  EXPECT_THROW(BloomFilter(BloomParams{1'000, 0}), ConfigError);
  EXPECT_THROW(BloomParams::for_capacity(0, 8), ConfigError);
}

TEST(CountingBloomFilter, InsertRemoveRestoresEmpty) {
  CountingBloomFilter c;
  Rng rng(4);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 300; ++i) keys.push_back(rng.next_u64());
  for (auto k : keys) c.insert(k);
  for (auto k : keys) EXPECT_TRUE(c.contains(k));
  for (auto k : keys) c.remove(k);
  EXPECT_EQ(c.projection().popcount(), 0u);
}

TEST(CountingBloomFilter, SharedBitsSurviveSingleRemoval) {
  CountingBloomFilter c;
  // Insert the same key twice (two documents sharing a keyword): removing
  // one copy must keep the key visible.
  c.insert(42);
  c.insert(42);
  c.remove(42);
  EXPECT_TRUE(c.contains(42));
  c.remove(42);
  EXPECT_FALSE(c.contains(42));
}

TEST(CountingBloomFilter, ProjectionTracksIncrementally) {
  CountingBloomFilter c;
  BloomFilter reference;
  Rng rng(5);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 500; ++i) {
    const auto k = rng.next_u64();
    keys.push_back(k);
    c.insert(k);
    reference.insert(k);
  }
  EXPECT_EQ(c.projection(), reference);
  // Remove half; rebuild the reference from scratch and compare.
  BloomFilter reference2;
  for (std::size_t i = 250; i < keys.size(); ++i) reference2.insert(keys[i]);
  for (std::size_t i = 0; i < 250; ++i) c.remove(keys[i]);
  EXPECT_EQ(c.projection(), reference2);
}

TEST(CountingBloomFilter, InsertSaturatesInsteadOfWrapping) {
  CountingBloomFilter c;
  constexpr std::uint32_t kMax = 65'535;
#ifdef NDEBUG
  // A wrapped counter would reach zero with the projection bit still set,
  // and the insert after that would toggle the bit *off* — the key would
  // vanish from the filter while still present. Saturation keeps it visible.
  for (std::uint32_t i = 0; i < kMax + 2; ++i) c.insert(42);
  EXPECT_TRUE(c.contains(42));
  std::vector<std::uint32_t> pos;
  c.projection().positions(42, pos);
  for (auto p : pos) EXPECT_EQ(c.counter(p), kMax);
#else
  EXPECT_THROW(
      {
        for (std::uint32_t i = 0; i <= kMax; ++i) c.insert(42);
      },
      InvariantError);
  EXPECT_TRUE(c.contains(42));  // the filter stays consistent regardless
#endif
}

TEST(CountingBloomFilter, RemovalOfAbsentKeySaturatesAtZero) {
  CountingBloomFilter c;
#ifdef NDEBUG
  c.remove(7);  // release builds saturate silently
  EXPECT_EQ(c.projection().popcount(), 0u);
#else
  EXPECT_THROW(c.remove(7), InvariantError);
#endif
}

// Property sweep: diff/apply round-trips across filter loads.
class BloomDiffTest : public ::testing::TestWithParam<int> {};

TEST_P(BloomDiffTest, RoundTripAtLoad) {
  const int load = GetParam();
  BloomFilter a, b;
  Rng rng(100 + load);
  for (int i = 0; i < load; ++i) a.insert(rng.next_u64());
  b = a;
  for (int i = 0; i < load / 4 + 1; ++i) b.insert(rng.next_u64());
  auto patch = BloomFilter::diff(a, b);
  a.apply_toggles(patch);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Loads, BloomDiffTest,
                         ::testing::Values(0, 1, 10, 100, 500, 1'000, 3'000));

}  // namespace
}  // namespace asap::bloom
