// HashedQuery / HashedKey: the one-shot query hashing fast path must be
// observationally identical to the legacy hash-per-probe membership tests.
#include "bloom/hashed_query.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace asap::bloom {
namespace {

TEST(HashedKey, PositionsMatchFilterPositions) {
  const BloomParams params;
  BloomFilter f(params);
  Rng rng(1);
  std::vector<std::uint32_t> expected;
  for (int i = 0; i < 5'000; ++i) {
    const std::uint64_t key = rng.next_u64();
    const HashedKey hk(key, params);
    f.positions(key, expected);
    ASSERT_EQ(std::vector<std::uint32_t>(hk.positions().begin(),
                                         hk.positions().end()),
              expected)
        << "key " << key;
  }
}

TEST(HashedKey, FoldMaskCoversItsPositions) {
  const BloomParams params;
  Rng rng(2);
  for (int i = 0; i < 2'000; ++i) {
    const HashedKey hk(rng.next_u64(), params);
    std::uint64_t mask = 0;
    for (const auto pos : hk.positions()) mask |= 1ULL << (pos & 63);
    EXPECT_EQ(hk.fold_mask(), mask);
  }
}

TEST(HashedKey, PresentInMatchesContains) {
  const BloomParams params;
  BloomFilter f(params);
  Rng rng(3);
  std::vector<std::uint64_t> inserted;
  for (int i = 0; i < 400; ++i) {
    inserted.push_back(rng.next_u64());
    f.insert(inserted.back());
  }
  for (const auto key : inserted) {
    EXPECT_TRUE(HashedKey(key, params).present_in(f.words()));
  }
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t key = rng.next_u64();
    EXPECT_EQ(HashedKey(key, params).present_in(f.words()), f.contains(key))
        << "key " << key;
  }
}

TEST(HashedKey, PrefilterIsSound) {
  // "key in filter" must imply "fold mask covered by filter fold" — the
  // prefilter may pass non-members, never reject members.
  const BloomParams params;
  BloomFilter f(params);
  Rng rng(4);
  for (int i = 0; i < 300; ++i) f.insert(rng.next_u64());
  const std::uint64_t fold = f.fold();
  for (int i = 0; i < 20'000; ++i) {
    const HashedKey hk(rng.next_u64(), params);
    if (hk.present_in(f.words())) {
      EXPECT_EQ(fold & hk.fold_mask(), hk.fold_mask());
    }
  }
}

TEST(HashedQuery, MatchesEqualsContainsAll) {
  const BloomParams params;
  Rng rng(5);
  for (int round = 0; round < 50; ++round) {
    BloomFilter f(params);
    std::vector<KeywordId> pool;
    for (int i = 0; i < 40; ++i) {
      pool.push_back(static_cast<KeywordId>(rng.below(5'000)));
    }
    for (std::size_t i = 0; i < pool.size() / 2; ++i) f.insert(pool[i]);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<KeywordId> terms;
      const std::size_t n = rng.below(4);  // 0..3 terms, like real queries
      for (std::size_t t = 0; t < n; ++t) {
        terms.push_back(pool[rng.below(pool.size())]);
      }
      const HashedQuery q(terms, params);
      EXPECT_EQ(q.matches(f), f.contains_all(terms));
    }
  }
}

TEST(HashedQuery, EmptyQueryMatchesVacuously) {
  const HashedQuery q({}, BloomParams{});
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.fold_mask_all(), 0u);
  BloomFilter f;
  EXPECT_TRUE(q.matches(f));
}

TEST(HashedQuery, FoldMaskAllIsTheUnionOfTermMasks) {
  const BloomParams params;
  const std::vector<KeywordId> terms{11, 22, 33};
  const HashedQuery q(terms, params);
  std::uint64_t expected = 0;
  for (const auto& key : q.keys()) expected |= key.fold_mask();
  EXPECT_EQ(q.fold_mask_all(), expected);
}

TEST(HashedQuery, GeometryMismatchFallsBackToLegacyScan) {
  // A query hashed for the default geometry must still answer correctly
  // against a filter with different params (positions are meaningless
  // there; matches() re-hashes via contains_all).
  const BloomParams other = BloomParams::for_capacity(100, 4);
  ASSERT_NE(other, BloomParams{});
  BloomFilter f(other);
  f.insert(7);
  f.insert(8);
  const HashedQuery q(std::vector<KeywordId>{7, 8}, BloomParams{});
  EXPECT_TRUE(q.matches(f));
  const HashedQuery miss(std::vector<KeywordId>{7, 999'999}, BloomParams{});
  EXPECT_EQ(miss.matches(f), f.contains_all(miss.terms()));
}

TEST(HashedQuery, AssignReusesTheInstance) {
  const BloomParams params;
  BloomFilter f(params);
  f.insert(1);
  f.insert(2);
  HashedQuery q;
  q.assign(std::vector<KeywordId>{1, 2}, params);
  EXPECT_TRUE(q.matches(f));
  EXPECT_EQ(q.size(), 2u);
  q.assign(std::vector<KeywordId>{3}, params);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.matches(f), f.contains_all(q.terms()));
  q.assign({}, params);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.matches(f));
  // Re-assigning the first term set restores identical behavior.
  q.assign(std::vector<KeywordId>{1, 2}, params);
  EXPECT_TRUE(q.matches(f));
  EXPECT_EQ(HashedQuery(q.terms(), params).fold_mask_all(),
            q.fold_mask_all());
}

}  // namespace
}  // namespace asap::bloom
