#include "sim/liveness.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace asap::sim {
namespace {

TEST(Liveness, InitialState) {
  Liveness l(10, 7);
  EXPECT_EQ(l.live_count(), 7u);
  EXPECT_TRUE(l.online(0));
  EXPECT_TRUE(l.online(6));
  EXPECT_FALSE(l.online(7));
  EXPECT_EQ(l.capacity(), 10u);
}

TEST(Liveness, TransitionsAreIdempotent) {
  Liveness l(4, 4);
  l.set_online(1, false, 1.0);
  l.set_online(1, false, 2.0);  // no-op
  EXPECT_EQ(l.live_count(), 3u);
  l.set_online(1, true, 3.0);
  l.set_online(1, true, 4.0);  // no-op
  EXPECT_EQ(l.live_count(), 4u);
}

TEST(Liveness, RejectsUnknownNode) {
  Liveness l(2, 2);
  EXPECT_THROW(l.set_online(5, false, 0.0), ConfigError);
}

TEST(Liveness, RejectsOversizedInitial) {
  EXPECT_THROW(Liveness(2, 3), ConfigError);
}

TEST(Liveness, GrowAddsOfflineSlots) {
  Liveness l(2, 2);
  l.grow(5);
  EXPECT_EQ(l.capacity(), 5u);
  EXPECT_FALSE(l.online(4));
  EXPECT_EQ(l.live_count(), 2u);
  EXPECT_THROW(l.grow(1), ConfigError);
}

TEST(Liveness, SeriesConstantWithoutChurn) {
  Liveness l(100, 42);
  const auto s = l.live_count_series(5.0);
  ASSERT_EQ(s.size(), 5u);
  for (double v : s) EXPECT_DOUBLE_EQ(v, 42.0);
}

TEST(Liveness, SeriesIntegratesMidBucketTransition) {
  Liveness l(10, 10);
  // One node leaves exactly at t=2.5: bucket 2 averages 9.5.
  l.set_online(0, false, 2.5);
  const auto s = l.live_count_series(5.0);
  EXPECT_DOUBLE_EQ(s[0], 10.0);
  EXPECT_DOUBLE_EQ(s[1], 10.0);
  EXPECT_DOUBLE_EQ(s[2], 9.5);
  EXPECT_DOUBLE_EQ(s[3], 9.0);
  EXPECT_DOUBLE_EQ(s[4], 9.0);
}

TEST(Liveness, SeriesHandlesJoinAndLeave) {
  Liveness l(4, 2);
  l.set_online(2, true, 1.0);   // 3 live from t=1
  l.set_online(0, false, 3.0);  // 2 live from t=3
  const auto s = l.live_count_series(4.0);
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], 3.0);
  EXPECT_DOUBLE_EQ(s[2], 3.0);
  EXPECT_DOUBLE_EQ(s[3], 2.0);
}

TEST(Liveness, SeriesIgnoresTransitionsBeyondHorizon) {
  Liveness l(4, 4);
  l.set_online(0, false, 10.0);
  const auto s = l.live_count_series(3.0);
  for (double v : s) EXPECT_DOUBLE_EQ(v, 4.0);
}

TEST(Liveness, SeriesTransitionExactlyOnBucketBoundary) {
  Liveness l(10, 10);
  // A transition at exactly t=2.0 contributes nothing to bucket [1,2):
  // the old count covers that bucket fully, the new count owns [2,3).
  l.set_online(0, false, 2.0);
  const auto s = l.live_count_series(4.0);
  EXPECT_DOUBLE_EQ(s[0], 10.0);
  EXPECT_DOUBLE_EQ(s[1], 10.0);
  EXPECT_DOUBLE_EQ(s[2], 9.0);
  EXPECT_DOUBLE_EQ(s[3], 9.0);
}

TEST(Liveness, SeriesBoundaryJoinAndLeaveAtSameInstant) {
  Liveness l(4, 2);
  // Leave and join at the same boundary instant cancel out from t=1 on.
  l.set_online(0, false, 1.0);
  l.set_online(2, true, 1.0);
  const auto s = l.live_count_series(3.0);
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_DOUBLE_EQ(s[2], 2.0);
}

TEST(Liveness, SeriesExtendsPastLastTransition) {
  Liveness l(8, 8);
  l.set_online(0, false, 1.5);
  // Horizon far beyond the last transition: the tail holds the final count.
  const auto s = l.live_count_series(100.0);
  ASSERT_EQ(s.size(), 100u);
  EXPECT_DOUBLE_EQ(s[0], 8.0);
  EXPECT_DOUBLE_EQ(s[1], 7.5);
  for (std::size_t b = 2; b < s.size(); ++b) EXPECT_DOUBLE_EQ(s[b], 7.0);
}

TEST(Liveness, SeriesFractionalHorizonRoundsUpToWholeBucket) {
  Liveness l(4, 4);
  const auto s = l.live_count_series(2.25);
  // ceil(2.25) = 3 buckets; the partial last bucket integrates as a full
  // one (no transitions, so it still averages the constant count).
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[2], 4.0);
}

TEST(Liveness, GrowMidRunKeepsSeriesConsistent) {
  Liveness l(3, 3);
  l.set_online(1, false, 1.0);  // 2 live
  l.grow(6);                    // new slots offline, count unchanged
  EXPECT_EQ(l.live_count(), 2u);
  l.set_online(4, true, 3.0);   // a grown slot joins: 3 live
  l.set_online(5, true, 3.5);   // 4 live
  const auto s = l.live_count_series(5.0);
  EXPECT_DOUBLE_EQ(s[0], 3.0);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_DOUBLE_EQ(s[2], 2.0);
  EXPECT_DOUBLE_EQ(s[3], 3.5);  // +1 at 3.0, +1 at 3.5 -> avg 3.5
  EXPECT_DOUBLE_EQ(s[4], 4.0);
}

TEST(Liveness, GrownSlotTransitionExactlyOnBucketBoundary) {
  Liveness l(2, 2);
  l.grow(4);
  // A grown slot joining exactly at t=2.0 owns bucket [2,3) fully.
  l.set_online(3, true, 2.0);
  const auto s = l.live_count_series(4.0);
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_DOUBLE_EQ(s[2], 3.0);
  EXPECT_DOUBLE_EQ(s[3], 3.0);
  // The grown slot churns like any original one.
  l.set_online(3, false, 3.5);
  EXPECT_EQ(l.live_count(), 2u);
  EXPECT_FALSE(l.online(3));
}

TEST(Liveness, GrowToCurrentCapacityIsANoOp) {
  Liveness l(3, 2);
  l.grow(3);
  EXPECT_EQ(l.capacity(), 3u);
  EXPECT_EQ(l.live_count(), 2u);
  EXPECT_TRUE(l.online(1));
  EXPECT_FALSE(l.online(2));
}

TEST(Liveness, IdempotentSetOnlineDoesNotSkewSeries) {
  Liveness expected(5, 5);
  expected.set_online(0, false, 1.0);
  expected.set_online(0, true, 3.0);

  Liveness noisy(5, 5);
  noisy.set_online(2, true, 0.5);   // already online: must record nothing
  noisy.set_online(0, false, 1.0);
  noisy.set_online(0, false, 1.5);  // already offline: must record nothing
  noisy.set_online(0, false, 2.0);  // and again
  noisy.set_online(0, true, 3.0);
  noisy.set_online(0, true, 3.25);  // already online again

  const auto want = expected.live_count_series(5.0);
  const auto got = noisy.live_count_series(5.0);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t b = 0; b < want.size(); ++b) {
    EXPECT_DOUBLE_EQ(got[b], want[b]) << "bucket " << b;
  }
  EXPECT_EQ(noisy.live_count(), expected.live_count());
}

}  // namespace
}  // namespace asap::sim
