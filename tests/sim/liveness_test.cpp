#include "sim/liveness.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace asap::sim {
namespace {

TEST(Liveness, InitialState) {
  Liveness l(10, 7);
  EXPECT_EQ(l.live_count(), 7u);
  EXPECT_TRUE(l.online(0));
  EXPECT_TRUE(l.online(6));
  EXPECT_FALSE(l.online(7));
  EXPECT_EQ(l.capacity(), 10u);
}

TEST(Liveness, TransitionsAreIdempotent) {
  Liveness l(4, 4);
  l.set_online(1, false, 1.0);
  l.set_online(1, false, 2.0);  // no-op
  EXPECT_EQ(l.live_count(), 3u);
  l.set_online(1, true, 3.0);
  l.set_online(1, true, 4.0);  // no-op
  EXPECT_EQ(l.live_count(), 4u);
}

TEST(Liveness, RejectsUnknownNode) {
  Liveness l(2, 2);
  EXPECT_THROW(l.set_online(5, false, 0.0), ConfigError);
}

TEST(Liveness, RejectsOversizedInitial) {
  EXPECT_THROW(Liveness(2, 3), ConfigError);
}

TEST(Liveness, GrowAddsOfflineSlots) {
  Liveness l(2, 2);
  l.grow(5);
  EXPECT_EQ(l.capacity(), 5u);
  EXPECT_FALSE(l.online(4));
  EXPECT_EQ(l.live_count(), 2u);
  EXPECT_THROW(l.grow(1), ConfigError);
}

TEST(Liveness, SeriesConstantWithoutChurn) {
  Liveness l(100, 42);
  const auto s = l.live_count_series(5.0);
  ASSERT_EQ(s.size(), 5u);
  for (double v : s) EXPECT_DOUBLE_EQ(v, 42.0);
}

TEST(Liveness, SeriesIntegratesMidBucketTransition) {
  Liveness l(10, 10);
  // One node leaves exactly at t=2.5: bucket 2 averages 9.5.
  l.set_online(0, false, 2.5);
  const auto s = l.live_count_series(5.0);
  EXPECT_DOUBLE_EQ(s[0], 10.0);
  EXPECT_DOUBLE_EQ(s[1], 10.0);
  EXPECT_DOUBLE_EQ(s[2], 9.5);
  EXPECT_DOUBLE_EQ(s[3], 9.0);
  EXPECT_DOUBLE_EQ(s[4], 9.0);
}

TEST(Liveness, SeriesHandlesJoinAndLeave) {
  Liveness l(4, 2);
  l.set_online(2, true, 1.0);   // 3 live from t=1
  l.set_online(0, false, 3.0);  // 2 live from t=3
  const auto s = l.live_count_series(4.0);
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], 3.0);
  EXPECT_DOUBLE_EQ(s[2], 3.0);
  EXPECT_DOUBLE_EQ(s[3], 2.0);
}

TEST(Liveness, SeriesIgnoresTransitionsBeyondHorizon) {
  Liveness l(4, 4);
  l.set_online(0, false, 10.0);
  const auto s = l.live_count_series(3.0);
  for (double v : s) EXPECT_DOUBLE_EQ(v, 4.0);
}

}  // namespace
}  // namespace asap::sim
