// SlabPool: size classes, LIFO recycling, oversize fallback, and the
// std::pmr adapter used for pooled wire-payload buffers.
#include <gtest/gtest.h>

#include <cstring>
#include <memory_resource>
#include <set>
#include <vector>

#include "sim/slab_pool.hpp"

namespace asap::sim {
namespace {

TEST(SlabPool, AllocateReturnsWritableDistinctBlocks) {
  SlabPool pool;
  std::set<void*> seen;
  std::vector<void*> blocks;
  for (int i = 0; i < 100; ++i) {
    void* p = pool.allocate(64);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate live block";
    std::memset(p, 0xAB, 64);
    blocks.push_back(p);
  }
  EXPECT_EQ(pool.live_blocks(), 100u);
  for (void* p : blocks) pool.deallocate(p, 64);
  EXPECT_EQ(pool.live_blocks(), 0u);
}

TEST(SlabPool, FreedBlocksAreRecycledLifo) {
  SlabPool pool;
  void* a = pool.allocate(100);
  pool.deallocate(a, 100);
  // Same size class (128 B) must hand the same block straight back.
  void* b = pool.allocate(80);
  EXPECT_EQ(a, b);
  pool.deallocate(b, 80);
}

TEST(SlabPool, SizeClassesAreIsolated) {
  SlabPool pool;
  void* small = pool.allocate(64);
  pool.deallocate(small, 64);
  // A larger class must not reuse the small block.
  void* big = pool.allocate(1024);
  EXPECT_NE(small, big);
  pool.deallocate(big, 1024);
}

TEST(SlabPool, OversizeRequestsFallBackToOperatorNew) {
  SlabPool pool;
  const std::size_t before = pool.reserved_bytes();
  void* p = pool.allocate(SlabPool::kMaxBlock + 1);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5A, SlabPool::kMaxBlock + 1);
  // Oversize goes to the global allocator: no slab reserved, not counted
  // as a live pooled block.
  EXPECT_EQ(pool.reserved_bytes(), before);
  EXPECT_EQ(pool.live_blocks(), 0u);
  pool.deallocate(p, SlabPool::kMaxBlock + 1);
}

TEST(SlabPool, SlabsGrowGeometricallyWithCappedReservation) {
  SlabPool pool;
  std::vector<void*> blocks;
  std::size_t last_reserved = 0;
  for (int i = 0; i < 20'000; ++i) {
    blocks.push_back(pool.allocate(64));
    const std::size_t reserved = pool.reserved_bytes();
    ASSERT_GE(reserved, last_reserved);
    // A single refill never reserves more than 256 KiB at once.
    ASSERT_LE(reserved - last_reserved, 256u << 10);
    last_reserved = reserved;
  }
  EXPECT_EQ(pool.live_blocks(), blocks.size());
  EXPECT_GE(pool.reserved_bytes(), blocks.size() * 64);
  for (void* p : blocks) pool.deallocate(p, 64);
}

TEST(SlabPool, SlabResourceBacksPmrContainers) {
  SlabPool pool;
  SlabResource mr(pool);
  {
    std::pmr::vector<std::uint8_t> buf(&mr);
    for (int i = 0; i < 1000; ++i) buf.push_back(static_cast<std::uint8_t>(i));
    EXPECT_GT(pool.reserved_bytes(), 0u);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_EQ(buf[static_cast<std::size_t>(i)], static_cast<std::uint8_t>(i));
    }
  }
  // Vector destruction returned every block to the pool.
  EXPECT_EQ(pool.live_blocks(), 0u);
}

}  // namespace
}  // namespace asap::sim
