// EventCallback: inline vs pool storage selection, move semantics, and
// closure lifetime (destructors must run exactly once, pooled blocks must
// be returned).
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>

#include "sim/event_callback.hpp"
#include "sim/slab_pool.hpp"

namespace asap::sim {
namespace {

TEST(EventCallback, SmallClosuresAreStoredInline) {
  SlabPool pool;
  int hits = 0;
  EventCallback cb(pool, [&hits] { ++hits; });
  EXPECT_TRUE(cb.inlined());
  EXPECT_EQ(pool.live_blocks(), 0u) << "small closure must not allocate";
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(EventCallback, LargeClosuresDrawFromThePool) {
  SlabPool pool;
  struct Big {
    std::byte payload[EventCallback::kInlineSize + 1] = {};
  };
  Big big;
  big.payload[0] = std::byte{42};
  int hits = 0;
  {
    EventCallback cb(pool, [big, &hits] {
      hits += static_cast<int>(big.payload[0]);
    });
    EXPECT_FALSE(cb.inlined());
    EXPECT_EQ(pool.live_blocks(), 1u);
    cb();
  }
  EXPECT_EQ(hits, 42);
  EXPECT_EQ(pool.live_blocks(), 0u) << "destruction must return the block";
}

TEST(EventCallback, DestroysCaptureExactlyOnce) {
  SlabPool pool;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  {
    EventCallback cb(pool, [token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(watch.expired()) << "callback keeps the capture alive";
    cb();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired()) << "capture must die with the callback";
}

TEST(EventCallback, MoveTransfersInlineClosure) {
  SlabPool pool;
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  int hits = 0;
  EventCallback a(pool, [token, &hits] { ++hits; });
  token.reset();
  ASSERT_TRUE(a.inlined());

  EventCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  EXPECT_FALSE(watch.expired());
  b();
  EXPECT_EQ(hits, 1);

  EventCallback c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  c();
  EXPECT_EQ(hits, 2);

  c = EventCallback();  // drop the closure
  EXPECT_TRUE(watch.expired());
}

TEST(EventCallback, MoveTransfersPooledClosureWithoutCopying) {
  SlabPool pool;
  struct Big {
    int value = 0;
    std::byte pad[EventCallback::kInlineSize] = {};
  };
  Big big;
  big.value = 99;
  int seen = 0;
  EventCallback a(pool, [big, &seen] { seen = big.value; });
  ASSERT_FALSE(a.inlined());
  EXPECT_EQ(pool.live_blocks(), 1u);

  EventCallback b(std::move(a));
  EXPECT_EQ(pool.live_blocks(), 1u) << "move must hand over the block";
  b();
  EXPECT_EQ(seen, 99);
  b = EventCallback();
  EXPECT_EQ(pool.live_blocks(), 0u);
}

TEST(EventCallback, PooledBlocksAreRecycledAcrossCallbacks) {
  SlabPool pool;
  struct Big {
    std::byte pad[EventCallback::kInlineSize + 8] = {};
  };
  for (int i = 0; i < 1000; ++i) {
    EventCallback cb(pool, [big = Big{}] { (void)big; });
    cb();
  }
  EXPECT_EQ(pool.live_blocks(), 0u);
  // Steady-state schedule/execute must reuse one block, not grow slabs.
  EXPECT_LE(pool.reserved_bytes(), 256u << 10);
}

}  // namespace
}  // namespace asap::sim
