// Window-parallel execution and the cross-partition mailbox contract
// (DESIGN.md §14).
//
// A synthetic peer-to-peer workload — per-node splitmix state machines
// exchanging lossy, jittered messages whose cross-partition latency is
// >= the lookahead — is replayed under every execution configuration:
// canonical single-queue, canonical multi-shard, and window-parallel at
// 1/2/8 shards on both policy backends. All of them must agree on
//   * the engine digest (FNV-1a over the executed (time, key) stream),
//   * the ledger digest (every staged deposit replayed canonically),
//   * each node's exact observation sequence (mailbox sends replay in
//     (time, key) order at the receiver, never reordered by lane
//     interleaving).
// Loss and jitter parameters come from the PR 5 fault presets ("lossy",
// "chaos"), drawn from per-message hashes so every configuration sees
// the identical fault pattern.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "exec/policy.hpp"
#include "faults/fault_config.hpp"
#include "sim/bandwidth.hpp"
#include "sim/engine.hpp"

namespace asap::sim {
namespace {

/// splitmix64 finalizer: the workload's only source of randomness, keyed
/// off per-node state so every draw is identical whatever the shard
/// count or thread interleaving.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

double unit(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1p-53; }

struct Params {
  std::size_t nodes = 96;
  Seconds horizon = 300.0;
  Seconds lookahead = 5.0;
  double link_loss = 0.0;       // per-message drop probability
  double latency_jitter = 0.0;  // multiplicative, uniform(1-j, 1+j)
};

/// One observation a node made: its state right after an event ran.
struct Rec {
  Seconds time;
  std::uint64_t state;
  int kind;  // 0 = self-tick, 1 = message receipt

  bool operator==(const Rec&) const = default;
};

/// The workload. Every closure captures at most {this, node, payload,
/// ttl} — well under EventCallback's inline buffer, as window-parallel
/// mode requires.
class P2pSim {
 public:
  P2pSim(const EngineTuning& tuning, const Params& p, std::uint64_t seed)
      : engine_(tuning), ledger_(p.horizon), p_(p) {
    engine_.set_ledger(&ledger_);
    state_.resize(p.nodes);
    logs_.resize(p.nodes);
    cross_sends_.assign(p.nodes, 0);
    // Cross-partition latency floor: base * (1 - jitter) stays a hair
    // above the lookahead, the conservative-synchronization contract.
    base_latency_ = p.lookahead / (1.0 - p.latency_jitter) * 1.0625;
    for (NodeId n = 0; n < p.nodes; ++n) {
      state_[n] = mix(seed ^ (0x5EEDULL + n));
      const Seconds at = 0.25 * unit(mix(state_[n]));
      engine_.schedule_at(at, n, [this, n] { tick(n); });
    }
  }

  Engine& engine() { return engine_; }
  std::uint64_t ledger_digest() const { return ledger_.digest(); }
  const std::vector<std::vector<Rec>>& logs() const { return logs_; }
  std::uint64_t cross_sends() const {
    std::uint64_t total = 0;
    for (const auto c : cross_sends_) total += c;
    return total;
  }

 private:
  void tick(NodeId n) {
    state_[n] = mix(state_[n]);
    logs_[n].push_back({engine_.now(), state_[n], 0});
    engine_.deposit(Traffic::kQuery, 64 + state_[n] % 128);
    const std::uint64_t s = state_[n];
    if (unit(mix(s ^ 2)) < 0.5) {
      send(n, static_cast<NodeId>(mix(s ^ 3) % p_.nodes), mix(s ^ 4), 2);
    }
    const Seconds delay = 0.5 + 2.5 * unit(mix(s ^ 1));
    if (engine_.now() + delay <= p_.horizon) {
      engine_.schedule_in(delay, n, [this, n] { tick(n); });
    }
  }

  void recv(NodeId n, std::uint64_t payload, int ttl) {
    state_[n] = mix(state_[n] ^ payload);
    logs_[n].push_back({engine_.now(), state_[n], 1});
    engine_.deposit(Traffic::kResponse, 32 + payload % 64);
    if (ttl > 0 && unit(mix(payload ^ 7)) < 0.4) {
      send(n, static_cast<NodeId>(mix(payload ^ 8) % p_.nodes), mix(payload),
           ttl - 1);
    }
  }

  void send(NodeId src, NodeId dst, std::uint64_t payload, int ttl) {
    if (p_.link_loss > 0.0 && unit(mix(payload ^ 0xDEAD)) < p_.link_loss) {
      return;  // deterministically lost
    }
    const double j = p_.latency_jitter;
    const double scale = j > 0.0 ? 1.0 - j + 2.0 * j * unit(mix(payload ^ 5))
                                 : 1.0;
    if (engine_.shard_of(dst) != engine_.shard_of(src)) ++cross_sends_[src];
    engine_.schedule_in(base_latency_ * scale, dst,
                        [this, dst, payload, ttl] { recv(dst, payload, ttl); });
  }

  Engine engine_;
  BandwidthLedger ledger_;
  Params p_;
  Seconds base_latency_;
  std::vector<std::uint64_t> state_;
  std::vector<std::vector<Rec>> logs_;  // written only by the owning shard
  std::vector<std::uint32_t> cross_sends_;
};

struct RunOutput {
  std::uint64_t engine_digest;
  std::uint64_t ledger_digest;
  std::uint64_t executed;
  std::uint64_t cross_sends;
  std::vector<std::vector<Rec>> logs;
};

EngineTuning causal_tuning(std::size_t shards) {
  EngineTuning t;
  t.shards = shards;
  t.causal_keys = true;
  return t;
}

RunOutput run_canonical(const Params& p, std::size_t shards) {
  P2pSim sim(causal_tuning(shards), p, 99);
  sim.engine().run_until(p.horizon);
  return {sim.engine().digest(), sim.ledger_digest(), sim.engine().executed(),
          sim.cross_sends(), sim.logs()};
}

RunOutput run_windowed(const Params& p, std::size_t shards,
                       exec::Policy& policy) {
  P2pSim sim(causal_tuning(shards), p, 99);
  sim.engine().run_window_parallel(policy, p.horizon, p.lookahead);
  return {sim.engine().digest(), sim.ledger_digest(), sim.engine().executed(),
          sim.cross_sends(), sim.logs()};
}

void expect_same(const RunOutput& base, const RunOutput& got,
                 const char* label) {
  EXPECT_EQ(got.engine_digest, base.engine_digest) << label;
  EXPECT_EQ(got.ledger_digest, base.ledger_digest) << label;
  EXPECT_EQ(got.executed, base.executed) << label;
  ASSERT_EQ(got.logs.size(), base.logs.size()) << label;
  for (std::size_t n = 0; n < base.logs.size(); ++n) {
    EXPECT_EQ(got.logs[n], base.logs[n]) << label << " / node " << n;
  }
}

Params preset_params(const char* preset) {
  const auto cfg = faults::fault_preset(preset).config;
  Params p;
  p.link_loss = cfg.link_loss;
  p.latency_jitter = cfg.latency_jitter;
  return p;
}

TEST(ShardExec, WindowParallelMatchesCanonicalAcrossShardCounts) {
  for (const char* preset : {"none", "lossy", "chaos"}) {
    const Params p = preset_params(preset);
    const RunOutput base = run_canonical(p, 1);
    ASSERT_NE(base.engine_digest, 0u) << preset;
    ASSERT_GT(base.executed, p.nodes * 10) << preset;

    // Canonical mode is shard-count invariant (same pops, same keys).
    for (const std::size_t shards : {2u, 8u}) {
      expect_same(base, run_canonical(p, shards), preset);
    }
    // Window-parallel mode merges back to the identical stream.
    exec::SeqPolicy seq;
    for (const std::size_t shards : {1u, 2u, 8u}) {
      const RunOutput got = run_windowed(p, shards, seq);
      expect_same(base, got, preset);
      // The identity must be earned: multi-shard runs really route
      // traffic through the mailbox grid.
      if (shards > 1) {
        EXPECT_GT(got.cross_sends, 0u) << preset;
      }
    }
  }
}

TEST(ShardExec, PoolLanesMatchSeqLanes) {
  // Real concurrency: 8 shards on 4 pool threads vs the same shards run
  // serially. Thread interleaving must not leak into any output (the
  // sanitizer jobs run this test under TSan).
  const Params p = preset_params("chaos");
  exec::SeqPolicy seq;
  const RunOutput base = run_windowed(p, 8, seq);
  ThreadPool pool(4);
  exec::PoolPolicy policy(pool);
  for (int round = 0; round < 3; ++round) {
    expect_same(base, run_windowed(p, 8, policy), "pool-vs-seq");
  }
}

TEST(ShardExec, ReceiversObserveMailboxSendsInTimeOrder) {
  // The mailbox replay property, observed from the receiving side: every
  // node sees its events in nondecreasing time order even when they were
  // staged by many concurrently-executing source shards.
  const Params p = preset_params("lossy");
  ThreadPool pool(4);
  exec::PoolPolicy policy(pool);
  const RunOutput got = run_windowed(p, 8, policy);
  EXPECT_GT(got.cross_sends, 0u);
  std::uint64_t receipts = 0;
  for (std::size_t n = 0; n < got.logs.size(); ++n) {
    for (std::size_t i = 0; i + 1 < got.logs[n].size(); ++i) {
      ASSERT_LE(got.logs[n][i].time, got.logs[n][i + 1].time)
          << "node " << n << " saw time run backwards at index " << i;
    }
    for (const Rec& r : got.logs[n]) receipts += r.kind == 1 ? 1 : 0;
  }
  EXPECT_GT(receipts, 0u);
}

TEST(ShardExec, CrossShardScheduleInsideLookaheadWindowThrows) {
  // The conservative-synchronization contract is checked, not assumed: a
  // cross-partition send that lands inside the current window is a
  // workload bug (its latency is below the lookahead) and must trip the
  // invariant instead of silently racing.
  EngineTuning t = causal_tuning(2);
  Engine e(t);
  e.schedule_at(1.0, NodeId{0}, [&e] {
    e.schedule_in(0.5, NodeId{1}, [] {});  // shard 0 -> shard 1, t < w_end
  });
  exec::SeqPolicy seq;
  EXPECT_THROW(e.run_window_parallel(seq, 100.0, 10.0), ConfigError);
}

TEST(ShardExec, WindowParallelRequiresCausalKeys) {
  EngineTuning t;
  t.shards = 2;  // counter keys: pop order would depend on lane timing
  Engine e(t);
  e.schedule_at(1.0, [] {});
  exec::SeqPolicy seq;
  EXPECT_THROW(e.run_window_parallel(seq, 10.0, 1.0), ConfigError);
}

TEST(ShardExec, OversizedWindowClosureIsRejectedNotPooled) {
  // The SlabPool is single-threaded, so window lanes must never reach it:
  // a closure past the inline buffer is an invariant violation, caught at
  // schedule time on the offending lane.
  EngineTuning t = causal_tuning(2);
  Engine e(t);
  e.schedule_at(1.0, NodeId{0}, [&e] {
    unsigned char big[EventCallback::kInlineSize + 1] = {};
    e.schedule_in(0.5, NodeId{0}, [big] { (void)big; });
  });
  exec::SeqPolicy seq;
  EXPECT_THROW(e.run_window_parallel(seq, 10.0, 2.0), ConfigError);
}

TEST(ShardExec, AutoShardCountIsAtLeastOne) {
  EngineTuning t;
  t.shards = 0;  // auto-detect must clamp hardware_concurrency() == 0
  Engine e(t);
  EXPECT_GE(e.shards(), 1u);
  EXPECT_LT(e.shard_of(NodeId{12345}), e.shards());
}

}  // namespace
}  // namespace asap::sim
