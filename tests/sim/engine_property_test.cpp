// Property tests for sim::Engine against a reference model.
//
// The reference is a std::priority_queue over (time, seq) — the textbook
// definition of the engine's contract. A mirrored sequence counter tracks
// the engine's internal one (both advance once per schedule call), so the
// model predicts not just time ordering but the exact FIFO tie-break, and
// random interleavings of schedule/pop — including events scheduled from
// inside running callbacks — must execute in exactly the model's order.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace asap::sim {
namespace {

struct RefEvent {
  Seconds time;
  std::uint64_t seq;
  int id;
};

struct LaterThan {
  bool operator()(const RefEvent& a, const RefEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;  // min-heap on (time, seq)
  }
};

using RefQueue =
    std::priority_queue<RefEvent, std::vector<RefEvent>, LaterThan>;

/// Engine + reference model driven in lockstep.
class Mirror {
 public:
  Mirror() = default;
  explicit Mirror(const EngineTuning& tuning) : engine(tuning) {}

  /// Schedules an event at `t`; with `depth` < 2 its callback may spawn
  /// children at execution time (mirrored into the model the same way).
  void schedule_at(Seconds t, int depth) {
    const int id = next_id_++;
    model.push(RefEvent{t, next_seq_++, id});
    engine.schedule_at(t, [this, id, depth] {
      executed.push_back(id);
      if (depth < 2 && spawn_rng_.chance(0.4)) {
        const int children = 1 + static_cast<int>(spawn_rng_.below(3));
        for (int c = 0; c < children; ++c) {
          schedule_at(engine.now() + spawn_rng_.uniform(0.0, 40.0),
                      depth + 1);
        }
      }
    });
  }

  /// Pops the model and steps the engine; they must agree on which event
  /// runs and at what time.
  void step_and_check() {
    ASSERT_FALSE(model.empty());
    const RefEvent expected = model.top();
    model.pop();
    const std::size_t before = executed.size();
    ASSERT_TRUE(engine.step());
    ASSERT_EQ(executed.size(), before + 1);
    EXPECT_EQ(executed.back(), expected.id)
        << "engine executed a different event than the reference model";
    EXPECT_DOUBLE_EQ(engine.now(), expected.time);
  }

  Engine engine;
  RefQueue model;
  std::vector<int> executed;

 private:
  std::uint64_t next_seq_ = 0;  // mirrors Engine's internal counter
  int next_id_ = 0;
  Rng spawn_rng_{0xC0FFEE};
};

TEST(EngineProperty, RandomInterleavingsMatchReferenceModel) {
  Mirror m;
  Rng rng(2024);
  int steps = 0;
  for (int op = 0; op < 20'000; ++op) {
    if (m.model.empty() || rng.chance(0.55)) {
      // Bursts at identical timestamps exercise the seq tie-break; the
      // 0.25 mass at now() exercises zero-delay self-scheduling.
      Seconds t = m.engine.now();
      if (!rng.chance(0.25)) t += rng.uniform(0.0, 100.0);
      const int burst = 1 + static_cast<int>(rng.below(4));
      for (int b = 0; b < burst; ++b) m.schedule_at(t, 0);
    } else {
      m.step_and_check();
      ++steps;
    }
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_EQ(m.engine.pending(), m.model.size());
  }
  // Drain: every remaining event still pops in model order.
  while (!m.model.empty()) {
    m.step_and_check();
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_FALSE(m.engine.step());
  EXPECT_EQ(m.engine.executed(), m.executed.size());
  EXPECT_GT(steps, 0);
}

TEST(EngineProperty, RunUntilLeavesPostHorizonEventsQueued) {
  // run_until(h) must execute exactly the model events with time <= h —
  // including events a callback schedules inside the window — and leave
  // the rest queued with the clock parked at h.
  Mirror m;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    m.schedule_at(rng.uniform(0.0, 200.0), 0);
  }
  const Seconds horizon = 100.0;
  while (!m.model.empty() && m.model.top().time <= horizon) {
    m.step_and_check();
    if (::testing::Test::HasFatalFailure()) return;
  }
  const std::size_t in_window = m.executed.size();
  m.engine.run_until(horizon);  // nothing left in the window: only advances
  EXPECT_EQ(m.executed.size(), in_window);
  EXPECT_DOUBLE_EQ(m.engine.now(), horizon);
  EXPECT_EQ(m.engine.pending(), m.model.size());
  EXPECT_GT(m.engine.pending(), 0u);
  for (const int id : m.executed) EXPECT_GE(id, 0);

  // The queued remainder still replays in model order.
  while (!m.model.empty()) {
    m.step_and_check();
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_EQ(m.engine.pending(), 0u);
}

/// Random interleavings under a given tuning — the ISSUE 6 sweep: the
/// ladder queue and the pooled-callback path must match the
/// priority_queue reference exactly, including at depths that force
/// rung rebuilds and heap↔ladder migrations.
void run_interleaving_sweep(const EngineTuning& tuning, std::uint64_t seed,
                            int ops) {
  Mirror m(tuning);
  Rng rng(seed);
  for (int op = 0; op < ops; ++op) {
    if (m.model.empty() || rng.chance(0.6)) {
      Seconds t = m.engine.now();
      if (!rng.chance(0.2)) t += rng.uniform(0.0, 100.0);
      const int burst = 1 + static_cast<int>(rng.below(4));
      for (int b = 0; b < burst; ++b) m.schedule_at(t, 0);
    } else {
      m.step_and_check();
    }
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_EQ(m.engine.pending(), m.model.size());
  }
  while (!m.model.empty()) {
    m.step_and_check();
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_FALSE(m.engine.step());
}

TEST(EngineProperty, LadderOnlyMatchesReferenceModel) {
  EngineTuning t;
  t.ladder_threshold = 0;  // ladder from the first event
  t.heap_threshold = 0;    // and never migrate back
  run_interleaving_sweep(t, 31, 30'000);
}

TEST(EngineProperty, LadderAtDepthMatchesReferenceModel) {
  // Deep backlog first (forces rung spreads), then interleaved pops.
  EngineTuning t;
  t.ladder_threshold = 0;
  t.heap_threshold = 0;
  Mirror m(t);
  Rng rng(137);
  for (int i = 0; i < 80'000; ++i) {
    m.schedule_at(rng.uniform(0.0, 10'000.0), 0);
  }
  EXPECT_TRUE(m.engine.using_ladder());
  while (!m.model.empty()) {
    m.step_and_check();
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(EngineProperty, MigrationThrashMatchesReferenceModel) {
  // Tight thresholds so the queue migrates heap→ladder→heap many times
  // mid-run; order must be unaffected.
  EngineTuning t;
  t.ladder_threshold = 48;
  t.heap_threshold = 32;
  run_interleaving_sweep(t, 59, 30'000);
}

TEST(EngineProperty, PooledCallbacksMatchReferenceModel) {
  EngineTuning t;
  t.force_heap_callbacks = true;  // every closure through the SlabPool
  run_interleaving_sweep(t, 83, 20'000);
}

TEST(EngineProperty, DegenerateLadderRegimeMatchesReferenceModel) {
  // Gaps shrink geometrically toward the end of each wave's span
  // (t = base + span * (1 - 2^(-i/8)), ladder_queue_test's degenerate
  // tail), so every rung's final bucket re-concentrates and the rung
  // stack recurses to kMaxRungs, where the sort-regardless degenerate
  // path takes over (the regime whose drain used to leak rung shells).
  // Interleaved pops, timestamp ties, and in-window reschedules must
  // still match the reference exactly.
  EngineTuning t;
  t.ladder_threshold = 0;
  t.heap_threshold = 0;
  Mirror m(t);
  Rng rng(211);
  const double span = 1024.0;
  for (int wave = 0; wave < 3; ++wave) {
    const double base = m.engine.now();
    for (int i = 0; i < 300; ++i) {
      const double at =
          base + span * (1.0 - std::exp2(-static_cast<double>(i) / 8.0));
      m.schedule_at(at, 2);
      m.schedule_at(at, 2);  // duplicate time: seq tie-break in the tail
    }
    EXPECT_TRUE(m.engine.using_ladder());
    // Drain most of the wave with occasional tail-region insertions.
    while (m.model.size() > 64) {
      m.step_and_check();
      if (::testing::Test::HasFatalFailure()) return;
      if (rng.chance(0.05)) {
        m.schedule_at(m.engine.now() + rng.uniform(0.0, 1.0 / 1024.0), 2);
      }
      ASSERT_EQ(m.engine.pending(), m.model.size());
    }
  }
  while (!m.model.empty()) {
    m.step_and_check();
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_FALSE(m.engine.step());
}

TEST(EngineProperty, EventExactlyAtHorizonExecutes) {
  Engine e;
  int fired = 0;
  e.schedule_at(5.0, [&] { ++fired; });
  e.schedule_at(5.0 + 1e-9, [&] { ++fired; });
  e.run_until(5.0);
  EXPECT_EQ(fired, 1) << "boundary events belong to the window (<= t_end)";
  EXPECT_EQ(e.pending(), 1u);
}

}  // namespace
}  // namespace asap::sim
