#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace asap::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.executed(), 3u);
}

TEST(Engine, TiesBreakByScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, RejectsPastEvents) {
  Engine e;
  e.schedule_at(2.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(1.0, [] {}), ConfigError);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double fired_at = -1.0;
  e.schedule_at(4.0, [&] {
    e.schedule_in(2.5, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 6.5);
}

TEST(Engine, RunUntilLeavesLaterEventsQueued) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(10.0, [&] { ++fired; });
  e.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.pending(), 1u);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);  // clock advances to the barrier
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 100) e.schedule_in(0.1, step);
  };
  e.schedule_at(0.0, step);
  e.run();
  EXPECT_EQ(chain, 100);
  EXPECT_NEAR(e.now(), 9.9, 1e-9);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.schedule_at(1.0, [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, HeapStressRandomOrder) {
  // Property: any schedule order pops in non-decreasing time order.
  Engine e;
  Rng rng(99);
  std::vector<double> times;
  for (int i = 0; i < 5'000; ++i) times.push_back(rng.uniform(0.0, 1e4));
  double last = -1.0;
  int executed = 0;
  for (double t : times) {
    e.schedule_at(t, [&last, &executed, t, &e] {
      EXPECT_GE(t, last);
      EXPECT_DOUBLE_EQ(e.now(), t);
      last = t;
      ++executed;
    });
  }
  e.run();
  EXPECT_EQ(executed, 5'000);
}

}  // namespace
}  // namespace asap::sim
