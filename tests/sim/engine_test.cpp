#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace asap::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.executed(), 3u);
}

TEST(Engine, TiesBreakByScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, RejectsPastEvents) {
  Engine e;
  e.schedule_at(2.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(1.0, [] {}), ConfigError);
}

TEST(Engine, RejectsNonFiniteEventTimes) {
  // Regression (ISSUE 6): a NaN time used to slip past the past-event
  // check (NaN >= now_ is false... but the throw message blamed "the
  // past") and ±inf passed outright, silently corrupting queue ordering
  // and the run digest. All three must throw ConfigError up front.
  Engine e;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(e.schedule_at(nan, [] {}), ConfigError);
  EXPECT_THROW(e.schedule_at(inf, [] {}), ConfigError);
  EXPECT_THROW(e.schedule_at(-inf, [] {}), ConfigError);
  EXPECT_THROW(e.schedule_in(nan, [] {}), ConfigError);
  EXPECT_THROW(e.schedule_in(inf, [] {}), ConfigError);
  EXPECT_EQ(e.pending(), 0u) << "rejected events must not be queued";
  e.schedule_at(1.0, [] {});  // engine still usable
  e.run();
  EXPECT_EQ(e.executed(), 1u);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double fired_at = -1.0;
  e.schedule_at(4.0, [&] {
    e.schedule_in(2.5, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 6.5);
}

TEST(Engine, RunUntilLeavesLaterEventsQueued) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(10.0, [&] { ++fired; });
  e.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.pending(), 1u);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);  // clock advances to the barrier
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 100) e.schedule_in(0.1, step);
  };
  e.schedule_at(0.0, step);
  e.run();
  EXPECT_EQ(chain, 100);
  EXPECT_NEAR(e.now(), 9.9, 1e-9);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.schedule_at(1.0, [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, HeapStressRandomOrder) {
  // Property: any schedule order pops in non-decreasing time order.
  Engine e;
  Rng rng(99);
  std::vector<double> times;
  for (int i = 0; i < 5'000; ++i) times.push_back(rng.uniform(0.0, 1e4));
  double last = -1.0;
  int executed = 0;
  for (double t : times) {
    e.schedule_at(t, [&last, &executed, t, &e] {
      EXPECT_GE(t, last);
      EXPECT_DOUBLE_EQ(e.now(), t);
      last = t;
      ++executed;
    });
  }
  e.run();
  EXPECT_EQ(executed, 5'000);
}

TEST(Engine, MigratesBetweenHeapAndLadderWithHysteresis) {
  EngineTuning tuning;
  tuning.ladder_threshold = 100;
  tuning.heap_threshold = 20;
  Engine e(tuning);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) e.schedule_at(rng.uniform(0.0, 50.0), [] {});
  EXPECT_FALSE(e.using_ladder()) << "at the threshold, still on the heap";
  e.schedule_at(rng.uniform(0.0, 50.0), [] {});
  EXPECT_TRUE(e.using_ladder()) << "crossing the threshold migrates";
  while (e.pending() > tuning.heap_threshold) e.step();
  EXPECT_TRUE(e.using_ladder()) << "hysteresis: no flap at the boundary";
  while (e.step()) {
  }
  EXPECT_FALSE(e.using_ladder()) << "draining below heap_threshold migrates back";
  EXPECT_EQ(e.executed(), 101u);
}

TEST(Engine, DigestIdenticalAcrossQueueAndCallbackConfigurations) {
  // The acceptance bar of ISSUE 6: the digest hashes executed (time, seq)
  // pairs, so heap-only, ladder-only, hybrid, and forced-pool-callback
  // configurations must be bit-identical.
  const auto run_with = [](const EngineTuning& tuning) {
    Engine e(tuning);
    Rng rng(0xD1CE5);
    for (int i = 0; i < 20'000; ++i) {
      // A slice of events re-schedules follow-ups, exercising pushes into
      // partially consumed queues.
      if (i % 7 == 0) {
        e.schedule_at(rng.uniform(0.0, 1000.0), [&e, i] {
          e.schedule_in(0.25 + static_cast<double>(i % 13), [] {});
        });
      } else {
        e.schedule_at(rng.uniform(0.0, 1000.0), [] {});
      }
    }
    e.run();
    return e.digest();
  };

  const std::uint64_t base = run_with(EngineTuning{});
  ASSERT_NE(base, 0u);

  EngineTuning heap_only;
  heap_only.ladder_threshold = static_cast<std::size_t>(-1);
  EXPECT_EQ(run_with(heap_only), base) << "heap-only digest diverged";

  EngineTuning ladder_only;
  ladder_only.ladder_threshold = 0;
  ladder_only.heap_threshold = 0;
  EXPECT_EQ(run_with(ladder_only), base) << "ladder-only digest diverged";

  EngineTuning thrash;
  thrash.ladder_threshold = 64;
  thrash.heap_threshold = 48;
  EXPECT_EQ(run_with(thrash), base) << "migration-heavy digest diverged";

  EngineTuning pooled;
  pooled.force_heap_callbacks = true;
  EXPECT_EQ(run_with(pooled), base) << "pooled-callback digest diverged";
}

}  // namespace
}  // namespace asap::sim
