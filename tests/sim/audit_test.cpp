#include "sim/audit.hpp"

#include <gtest/gtest.h>

#include "sim/bandwidth.hpp"
#include "sim/engine.hpp"

namespace asap::sim {
namespace {

TEST(Fnv64, MatchesReferenceVectorsAndOrderMatters) {
  // Empty stream = offset basis.
  EXPECT_EQ(Fnv64{}.value(), 14695981039346656037ULL);

  Fnv64 a, b, c;
  a.absorb(std::uint64_t{1});
  a.absorb(std::uint64_t{2});
  b.absorb(std::uint64_t{1});
  b.absorb(std::uint64_t{2});
  c.absorb(std::uint64_t{2});
  c.absorb(std::uint64_t{1});
  EXPECT_EQ(a.value(), b.value());
  EXPECT_NE(a.value(), c.value());
}

TEST(Fnv64, CombineIsDeterministic) {
  EXPECT_EQ(combine_digests(1, 2), combine_digests(1, 2));
  EXPECT_NE(combine_digests(1, 2), combine_digests(2, 1));
}

TEST(SimAuditor, CleanRunHasNoViolations) {
  SimAuditor aud;
  BandwidthLedger ledger(10.0);
  ledger.set_auditor(&aud);

  aud.on_event(1.0);
  aud.on_event(1.0);  // equal times are fine
  aud.on_event(2.5);
  aud.on_send(Traffic::kQuery, 100);
  ledger.deposit(1.0, Traffic::kQuery, 100);
  aud.on_delivery(/*online=*/true);
  aud.on_confirm_request();
  aud.on_confirm_reply();
  aud.on_confirm_request();
  aud.on_confirm_timeout();
  aud.on_cache_occupancy(5, 5);

  aud.finalize(ledger);
  EXPECT_TRUE(aud.ok());
  EXPECT_EQ(aud.summary().events, 3u);
  EXPECT_EQ(aud.summary().sends, 1u);
  EXPECT_EQ(aud.summary().deposits, 1u);
  EXPECT_EQ(aud.summary().confirm_requests, 2u);
}

TEST(SimAuditor, DetectsBackwardsTime) {
  SimAuditor aud;
  BandwidthLedger ledger(10.0);
  aud.on_event(5.0);
  aud.on_event(4.9);
  aud.finalize(ledger);
  EXPECT_FALSE(aud.ok());
  ASSERT_EQ(aud.violations().size(), 1u);
  EXPECT_NE(aud.violations()[0].find("backwards"), std::string::npos);
}

TEST(SimAuditor, DetectsSendWithoutDeposit) {
  SimAuditor aud;
  BandwidthLedger ledger(10.0);
  ledger.set_auditor(&aud);
  aud.on_send(Traffic::kFullAd, 500);  // never deposited
  aud.finalize(ledger);
  EXPECT_FALSE(aud.ok());
  EXPECT_EQ(aud.summary().violations, 1u);
}

TEST(SimAuditor, DetectsDepositWithoutSend) {
  SimAuditor aud;
  BandwidthLedger ledger(10.0);
  ledger.set_auditor(&aud);
  ledger.deposit(1.0, Traffic::kConfirm, 64);  // no matching send record
  aud.finalize(ledger);
  EXPECT_FALSE(aud.ok());
  // sent != ledger total; observed deposits == ledger total (that part ok).
  EXPECT_EQ(aud.summary().violations, 1u);
}

TEST(SimAuditor, DetectsConfirmImbalance) {
  SimAuditor aud;
  BandwidthLedger ledger(10.0);
  aud.on_confirm_request();
  aud.on_confirm_request();
  aud.on_confirm_reply();
  aud.finalize(ledger);
  EXPECT_FALSE(aud.ok());
  ASSERT_FALSE(aud.violations().empty());
  EXPECT_NE(aud.violations()[0].find("confirm"), std::string::npos);
}

TEST(SimAuditor, DetectsCacheOverCapacityAndOfflineDelivery) {
  SimAuditor aud;
  aud.on_cache_occupancy(11, 10);
  aud.on_delivery(/*online=*/false);
  EXPECT_EQ(aud.summary().violations, 2u);
}

TEST(SimAuditor, ViolationMessagesAreCappedButCounted) {
  SimAuditor aud;
  for (int i = 0; i < 100; ++i) aud.on_delivery(/*online=*/false);
  EXPECT_EQ(aud.summary().violations, 100u);
  EXPECT_LE(aud.violations().size(), 32u);
}

TEST(Engine, DigestReflectsExecutionOrder) {
  auto run = [](Seconds first, Seconds second) {
    Engine e;
    e.schedule_at(first, [] {});
    e.schedule_at(second, [] {});
    e.run_until(100.0);
    return e.digest();
  };
  EXPECT_EQ(run(1.0, 2.0), run(1.0, 2.0));
  EXPECT_NE(run(1.0, 2.0), run(2.0, 1.0));
  EXPECT_NE(run(1.0, 2.0), Fnv64{}.value());
}

TEST(Engine, AuditorSeesEveryExecutedEvent) {
  SimAuditor aud;
  Engine e;
  e.set_auditor(&aud);
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(static_cast<Seconds>(i), [] {});
  }
  e.run_until(100.0);
  EXPECT_EQ(aud.summary().events, 5u);
  EXPECT_TRUE(aud.ok());
}

}  // namespace
}  // namespace asap::sim
