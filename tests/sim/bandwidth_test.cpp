#include "sim/bandwidth.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace asap::sim {
namespace {

TEST(BandwidthLedger, DepositsLandInCorrectBuckets) {
  BandwidthLedger l(10.0);
  l.deposit(0.5, Traffic::kQuery, 100);
  l.deposit(0.9, Traffic::kQuery, 50);
  l.deposit(3.2, Traffic::kQuery, 10);
  const auto s = l.series(Traffic::kQuery);
  EXPECT_EQ(s[0], 150u);
  EXPECT_EQ(s[3], 10u);
  EXPECT_EQ(l.total(Traffic::kQuery), 160u);
}

TEST(BandwidthLedger, CategoriesAreIndependent) {
  BandwidthLedger l(5.0);
  l.deposit(1.0, Traffic::kQuery, 10);
  l.deposit(1.0, Traffic::kFullAd, 20);
  l.deposit(1.0, Traffic::kRefreshAd, 30);
  EXPECT_EQ(l.total(Traffic::kQuery), 10u);
  EXPECT_EQ(l.total(Traffic::kFullAd), 20u);
  EXPECT_EQ(l.total(Traffic::kRefreshAd), 30u);
  EXPECT_EQ(l.total(Traffic::kPatchAd), 0u);
  EXPECT_EQ(l.grand_total(), 60u);
}

TEST(BandwidthLedger, LateAndEarlyDepositsClamp) {
  BandwidthLedger l(3.0);
  l.deposit(-1.0, Traffic::kConfirm, 5);   // clamps to bucket 0
  l.deposit(100.0, Traffic::kConfirm, 7);  // clamps to last bucket
  const auto s = l.series(Traffic::kConfirm);
  EXPECT_EQ(s.front(), 5u);
  EXPECT_EQ(s.back(), 7u);
  EXPECT_EQ(l.total(Traffic::kConfirm), 12u);
}

TEST(BandwidthLedger, CombinedSeriesSumsCategories) {
  BandwidthLedger l(4.0);
  l.deposit(1.5, Traffic::kFullAd, 100);
  l.deposit(1.5, Traffic::kPatchAd, 10);
  l.deposit(2.5, Traffic::kRefreshAd, 1);
  const Traffic ads[] = {Traffic::kFullAd, Traffic::kPatchAd,
                         Traffic::kRefreshAd};
  const auto combined = l.combined_series(ads);
  EXPECT_EQ(combined[1], 110u);
  EXPECT_EQ(combined[2], 1u);
  EXPECT_EQ(l.total(ads), 111u);
}

TEST(BandwidthLedger, RejectsNonPositiveHorizon) {
  EXPECT_THROW(BandwidthLedger(0.0), ConfigError);
  EXPECT_THROW(BandwidthLedger(-5.0), ConfigError);
}

TEST(BandwidthLedger, TrafficNamesAreDistinct) {
  for (std::size_t a = 0; a < kTrafficCount; ++a) {
    for (std::size_t b = a + 1; b < kTrafficCount; ++b) {
      EXPECT_STRNE(traffic_name(static_cast<Traffic>(a)),
                   traffic_name(static_cast<Traffic>(b)));
    }
  }
}

}  // namespace
}  // namespace asap::sim
