#include "sim/bandwidth.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"

namespace asap::sim {
namespace {

TEST(BandwidthLedger, DepositsLandInCorrectBuckets) {
  BandwidthLedger l(10.0);
  l.deposit(0.5, Traffic::kQuery, 100);
  l.deposit(0.9, Traffic::kQuery, 50);
  l.deposit(3.2, Traffic::kQuery, 10);
  const auto s = l.series(Traffic::kQuery);
  EXPECT_EQ(s[0], 150u);
  EXPECT_EQ(s[3], 10u);
  EXPECT_EQ(l.total(Traffic::kQuery), 160u);
}

TEST(BandwidthLedger, CategoriesAreIndependent) {
  BandwidthLedger l(5.0);
  l.deposit(1.0, Traffic::kQuery, 10);
  l.deposit(1.0, Traffic::kFullAd, 20);
  l.deposit(1.0, Traffic::kRefreshAd, 30);
  EXPECT_EQ(l.total(Traffic::kQuery), 10u);
  EXPECT_EQ(l.total(Traffic::kFullAd), 20u);
  EXPECT_EQ(l.total(Traffic::kRefreshAd), 30u);
  EXPECT_EQ(l.total(Traffic::kPatchAd), 0u);
  EXPECT_EQ(l.grand_total(), 60u);
}

TEST(BandwidthLedger, LateAndEarlyDepositsClamp) {
  BandwidthLedger l(3.0);
  l.deposit(-1.0, Traffic::kConfirm, 5);   // clamps to bucket 0
  l.deposit(100.0, Traffic::kConfirm, 7);  // past horizon: overflow cell
  const auto s = l.series(Traffic::kConfirm);
  EXPECT_EQ(s.front(), 5u);
  // Deposits past the horizon used to inflate the last per-second bucket,
  // skewing every time-series-derived metric. They now land in a separate
  // overflow cell that still counts toward totals.
  EXPECT_EQ(s.back(), 0u);
  EXPECT_EQ(l.overflow(Traffic::kConfirm), 7u);
  EXPECT_EQ(l.total(Traffic::kConfirm), 12u);
}

TEST(BandwidthLedger, NegativeAndNonFiniteTimesPinToBucketZero) {
  // Pins the ISSUE 6 contract: a (jitter-induced) slightly negative t —
  // and even a NaN/-inf t, which slips past both the `>= horizon` and the
  // old `<= 0.0` comparisons — must clamp to bucket 0 rather than cast a
  // negative/NaN double to an unsigned index (UB). Totals stay conserved.
  BandwidthLedger l(4.0);
  l.deposit(-0.25, Traffic::kQuery, 11);
  l.deposit(-1e9, Traffic::kQuery, 13);
  l.deposit(std::numeric_limits<double>::quiet_NaN(), Traffic::kQuery, 17);
  l.deposit(-std::numeric_limits<double>::infinity(), Traffic::kQuery, 19);
  const auto s = l.series(Traffic::kQuery);
  EXPECT_EQ(s.front(), 11u + 13u + 17u + 19u);
  EXPECT_EQ(l.overflow(Traffic::kQuery), 0u);
  EXPECT_EQ(l.total(Traffic::kQuery), 60u);
  // +inf is "past the horizon": overflow cell, like any late deposit.
  l.deposit(std::numeric_limits<double>::infinity(), Traffic::kQuery, 23);
  EXPECT_EQ(l.overflow(Traffic::kQuery), 23u);
  EXPECT_EQ(l.total(Traffic::kQuery), 83u);
}

TEST(BandwidthLedger, OverflowExcludedFromSeriesIncludedInTotals) {
  BandwidthLedger l(2.0);  // ceil(2)+1 = 3 buckets covering [0, 3)
  l.deposit(0.5, Traffic::kQuery, 10);
  l.deposit(1.5, Traffic::kQuery, 20);
  l.deposit(2.5, Traffic::kQuery, 40);  // last covered second
  l.deposit(3.0, Traffic::kQuery, 80);  // first uncovered second -> overflow
  l.deposit(9.0, Traffic::kQuery, 160);
  const auto s = l.series(Traffic::kQuery);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 10u);
  EXPECT_EQ(s[1], 20u);
  EXPECT_EQ(s[2], 40u);
  EXPECT_EQ(l.overflow(Traffic::kQuery), 240u);
  EXPECT_EQ(l.total(Traffic::kQuery), 310u);
  EXPECT_EQ(l.grand_total(), 310u);
}

TEST(BandwidthLedger, DigestIsDeterministicAndOrderSensitive) {
  BandwidthLedger a(4.0), b(4.0), c(4.0);
  a.deposit(1.0, Traffic::kQuery, 10);
  a.deposit(2.0, Traffic::kFullAd, 20);
  b.deposit(1.0, Traffic::kQuery, 10);
  b.deposit(2.0, Traffic::kFullAd, 20);
  c.deposit(2.0, Traffic::kFullAd, 20);
  c.deposit(1.0, Traffic::kQuery, 10);
  EXPECT_NE(a.digest(), 0u);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

TEST(BandwidthLedger, CombinedSeriesSumsCategories) {
  BandwidthLedger l(4.0);
  l.deposit(1.5, Traffic::kFullAd, 100);
  l.deposit(1.5, Traffic::kPatchAd, 10);
  l.deposit(2.5, Traffic::kRefreshAd, 1);
  const Traffic ads[] = {Traffic::kFullAd, Traffic::kPatchAd,
                         Traffic::kRefreshAd};
  const auto combined = l.combined_series(ads);
  EXPECT_EQ(combined[1], 110u);
  EXPECT_EQ(combined[2], 1u);
  EXPECT_EQ(l.total(ads), 111u);
}

TEST(BandwidthLedger, RejectsNonPositiveHorizon) {
  EXPECT_THROW(BandwidthLedger(0.0), ConfigError);
  EXPECT_THROW(BandwidthLedger(-5.0), ConfigError);
}

TEST(BandwidthLedger, TrafficNamesAreDistinct) {
  for (std::size_t a = 0; a < kTrafficCount; ++a) {
    for (std::size_t b = a + 1; b < kTrafficCount; ++b) {
      EXPECT_STRNE(traffic_name(static_cast<Traffic>(a)),
                   traffic_name(static_cast<Traffic>(b)));
    }
  }
}

}  // namespace
}  // namespace asap::sim
