// LadderQueue: exact (time, seq) total order against a sorted reference,
// across random interleavings, timestamp bursts, rebuilds, and the bulk
// migration entry points the Engine uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "sim/ladder_queue.hpp"

namespace asap::sim {
namespace {

struct Ev {
  Seconds time;
  std::uint64_t seq;
};

bool ref_before(const Ev& a, const Ev& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

/// Drains `q` completely and checks every pop against the sorted model.
void drain_and_check(LadderQueue<Ev>& q, std::vector<Ev> model) {
  std::sort(model.begin(), model.end(), ref_before);
  for (const Ev& expected : model) {
    ASSERT_FALSE(q.empty());
    const Ev* peeked = q.peek();
    ASSERT_NE(peeked, nullptr);
    EXPECT_EQ(peeked->seq, expected.seq);
    const Ev got = q.pop();
    ASSERT_EQ(got.seq, expected.seq) << "pop order diverged at t=" << got.time;
    EXPECT_EQ(got.time, expected.time);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.peek(), nullptr);
}

TEST(LadderQueue, PopsInExactTimeSeqOrder) {
  LadderQueue<Ev> q;
  std::vector<Ev> model;
  Rng rng(42);
  std::uint64_t seq = 0;
  for (int i = 0; i < 50'000; ++i) {
    const Ev e{rng.uniform(0.0, 1000.0), seq++};
    model.push_back(e);
    q.push(Ev{e});
  }
  EXPECT_EQ(q.size(), model.size());
  drain_and_check(q, std::move(model));
}

TEST(LadderQueue, TimestampBurstsBreakTiesBySeq) {
  // Heavy duplication (only 10 distinct times for 10k events) forces
  // zero-span buckets; ordering must fall back to seq cleanly instead of
  // spreading forever.
  LadderQueue<Ev> q;
  std::vector<Ev> model;
  Rng rng(7);
  std::uint64_t seq = 0;
  for (int i = 0; i < 10'000; ++i) {
    const Ev e{static_cast<double>(rng.below(10)), seq++};
    model.push_back(e);
    q.push(Ev{e});
  }
  drain_and_check(q, std::move(model));
}

TEST(LadderQueue, InterleavedPushPopMatchesReference) {
  // Pops interleave with pushes whose times move forward like a
  // simulation clock; pushed times are >= the last popped time, matching
  // the Engine's no-past-events contract.
  LadderQueue<Ev> q;
  std::vector<Ev> reference;  // every event ever pushed
  std::vector<Ev> popped;
  Rng rng(1234);
  std::uint64_t seq = 0;
  double now = 0.0;
  for (int op = 0; op < 60'000; ++op) {
    if (q.empty() || rng.chance(0.55)) {
      const Ev e{now + rng.uniform(0.0, 50.0), seq++};
      reference.push_back(e);
      q.push(Ev{e});
    } else {
      const Ev got = q.pop();
      ASSERT_GE(got.time, now);
      now = got.time;
      popped.push_back(got);
    }
  }
  while (!q.empty()) popped.push_back(q.pop());
  std::sort(reference.begin(), reference.end(), ref_before);
  ASSERT_EQ(popped.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(popped[i].seq, reference[i].seq) << "diverged at index " << i;
  }
}

TEST(LadderQueue, AssignUnorderedThenDrainsInOrder) {
  // The Engine's heap → ladder migration path: bulk-load an unordered
  // batch, optionally push more, pop everything in global order.
  LadderQueue<Ev> q;
  std::vector<Ev> model;
  Rng rng(99);
  std::uint64_t seq = 0;
  std::vector<Ev> batch;
  for (int i = 0; i < 5'000; ++i) {
    batch.push_back(Ev{rng.uniform(0.0, 500.0), seq++});
  }
  model = batch;
  q.assign_unordered(std::move(batch));
  for (int i = 0; i < 1'000; ++i) {
    const Ev e{rng.uniform(0.0, 500.0), seq++};
    model.push_back(e);
    q.push(Ev{e});
  }
  drain_and_check(q, std::move(model));
}

TEST(LadderQueue, DrainUnorderedReturnsEverythingAndEmpties) {
  // The ladder → heap migration path: after partial consumption, drain
  // must surrender every remaining event exactly once.
  LadderQueue<Ev> q;
  Rng rng(5);
  std::uint64_t seq = 0;
  for (int i = 0; i < 2'000; ++i) {
    q.push(Ev{rng.uniform(0.0, 100.0), seq++});
  }
  std::vector<Ev> popped;
  for (int i = 0; i < 500; ++i) popped.push_back(q.pop());
  auto rest = q.drain_unordered();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(popped.size() + rest.size(), 2'000u);
  std::vector<bool> seen(2'000, false);
  for (const Ev& e : popped) seen[e.seq] = true;
  for (const Ev& e : rest) {
    EXPECT_FALSE(seen[e.seq]) << "event surfaced twice";
    seen[e.seq] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));

  // The queue is reusable after a drain.
  std::vector<Ev> model;
  for (int i = 0; i < 300; ++i) {
    const Ev e{rng.uniform(0.0, 10.0), seq++};
    model.push_back(e);
    q.push(Ev{e});
  }
  drain_and_check(q, std::move(model));
}

TEST(LadderQueue, PushIntoConsumedRegionSortsIntoBottom) {
  // Force a rebuild, pop a little, then push events equal to the current
  // minimum: they must surface immediately (bottom insert), not be lost
  // in a consumed bucket.
  LadderQueue<Ev> q;
  std::uint64_t seq = 0;
  for (int i = 0; i < 1'000; ++i) {
    q.push(Ev{static_cast<double>(i), seq++});
  }
  const Ev first = q.pop();
  EXPECT_EQ(first.time, 0.0);
  // Same time as the next pending event, later seq: must pop second.
  q.push(Ev{1.0, seq++});
  const Ev a = q.pop();
  const Ev b = q.pop();
  EXPECT_EQ(a.time, 1.0);
  EXPECT_EQ(a.seq, 1u);
  EXPECT_EQ(b.time, 1.0);
  EXPECT_EQ(b.seq, 1000u);
}

/// Timestamps engineered so every spread re-concentrates: gaps shrink
/// geometrically toward the span's end (t_i = hi * (1 - 2^(-i/8))), so
/// whatever a rung's bucket width, its final bucket keeps well over
/// kSortThreshold items spanning distinct times — each spread sheds only
/// ~8*log2(buckets) items off the tail — and the rung stack recurses
/// until it hits kMaxRungs, where the degenerate sort-regardless path
/// takes over. The 2^(-1/8) ratio keeps all 300 gaps far above
/// ulp(1024), so every timestamp stays distinct.
std::vector<Ev> degenerate_tail(std::size_t count, std::uint64_t& seq) {
  std::vector<Ev> out;
  const double hi = 1024.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double t = hi * (1.0 - std::exp2(-static_cast<double>(i) / 8.0));
    out.push_back(Ev{t, seq++});
  }
  return out;
}

TEST(LadderQueue, DegenerateTailReachesMaxRungsAndPopsExactly) {
  LadderQueue<Ev> q;
  std::uint64_t seq = 0;
  std::vector<Ev> model = degenerate_tail(300, seq);
  for (const Ev& e : model) q.push(Ev{e});
  std::size_t deepest = 0;
  std::sort(model.begin(), model.end(), ref_before);
  for (const Ev& expected : model) {
    const Ev got = q.pop();
    ASSERT_EQ(got.seq, expected.seq);
    deepest = std::max(deepest, q.active_rungs());
  }
  // The workload must actually have held the queue in the degenerate
  // regime, or this test proves nothing.
  EXPECT_EQ(deepest, LadderQueue<Ev>::kMaxRungs);
}

TEST(LadderQueue, DrainRecyclesRungShellsWithinBound) {
  // Regression: drain_unordered() used to destroy the active rungs'
  // bucket-array shells instead of retiring them to the free list, so
  // sustained heap/ladder migration thrash rebuilt every bucket vector
  // from scratch on each cycle.
  LadderQueue<Ev> q;
  std::uint64_t seq = 0;
  for (int cycle = 0; cycle < 6; ++cycle) {
    for (const Ev& e : degenerate_tail(300, seq)) q.push(Ev{e});
    (void)q.pop();  // builds the rung stack
    EXPECT_GT(q.active_rungs(), 0u);
    (void)q.drain_unordered();
    EXPECT_EQ(q.active_rungs(), 0u);
    EXPECT_GT(q.spare_shells(), 0u) << "drain destroyed the shells";
    EXPECT_LE(q.spare_shells(), LadderQueue<Ev>::kMaxRungs);
  }
}

}  // namespace
}  // namespace asap::sim
