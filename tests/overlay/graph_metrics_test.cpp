#include "overlay/graph_metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace asap::overlay {
namespace {

/// Ring of n nodes: CC = 0, diameter = n/2, every pair reachable.
Overlay make_ring(std::uint32_t n) {
  auto g = Overlay::edgeless(n);
  for (NodeId i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  return g;
}

/// Complete graph: CC = 1, diameter = 1.
Overlay make_clique(std::uint32_t n) {
  auto g = Overlay::edgeless(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  return g;
}

TEST(GraphMetrics, BfsDepthsOnRing) {
  const auto g = make_ring(10);
  const auto d = bfs_depths(g, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[9], 1u);
  EXPECT_EQ(d[5], 5u);  // antipode
}

TEST(GraphMetrics, BfsMarksUnreachable) {
  auto g = make_ring(6);
  g.detach(3);  // break the ring at one point: still connected as a path
  const auto d = bfs_depths(g, 0);
  EXPECT_EQ(d[3], kUnreachable);
  EXPECT_EQ(d[2], 2u);
  EXPECT_EQ(d[4], 2u);  // the long way round is now the only way
  EXPECT_THROW(bfs_depths(g, 3), ConfigError);
}

TEST(GraphMetrics, ClusteringCoefficientExtremes) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(clustering_coefficient(make_ring(20), 50, rng), 0.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(make_clique(8), 50, rng), 1.0);
}

TEST(GraphMetrics, PathStatsOnClique) {
  Rng rng(2);
  const auto stats = path_stats(make_clique(10), 5, rng);
  EXPECT_DOUBLE_EQ(stats.mean_hops, 1.0);
  EXPECT_EQ(stats.max_hops, 1u);
  EXPECT_DOUBLE_EQ(stats.reachable_fraction, 1.0);
}

TEST(GraphMetrics, PathStatsOnRing) {
  Rng rng(3);
  const auto stats = path_stats(make_ring(16), 8, rng);
  // Mean distance on a 16-ring: (2*(1+..+7)+8)/15 = 64/15 ~ 4.27.
  EXPECT_NEAR(stats.mean_hops, 64.0 / 15.0, 1e-9);
  EXPECT_EQ(stats.max_hops, 8u);
}

TEST(GraphMetrics, CrawledOverlayHasSmallWorldShape) {
  Rng rng(4);
  const auto g = Overlay::crawled_like(2'000, 3.35, rng);
  const auto stats = path_stats(g, 10, rng);
  // Two-tier Limewire-like mesh: low diameter despite sparse mean degree.
  EXPECT_LT(stats.mean_hops, 5.0);
  EXPECT_LE(stats.max_hops, 10u);
  EXPECT_DOUBLE_EQ(stats.reachable_fraction, 1.0);
  // Ultrapeer mesh gives nonzero clustering, unlike a pure random graph of
  // the same density.
  const auto cc = clustering_coefficient(g, 300, rng);
  Rng rng2(5);
  const auto random_g = Overlay::random(2'000, 3.35, rng2);
  const auto cc_random = clustering_coefficient(random_g, 300, rng2);
  EXPECT_GT(cc, cc_random);
}

}  // namespace
}  // namespace asap::overlay
