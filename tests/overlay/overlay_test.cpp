#include "overlay/overlay.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace asap::overlay {
namespace {

TEST(Overlay, RandomHasRequestedMeanDegreeAndIsConnected) {
  Rng rng(1);
  const auto g = Overlay::random(2'000, 5.0, rng);
  EXPECT_EQ(g.num_nodes(), 2'000u);
  EXPECT_NEAR(g.avg_degree(), 5.0, 0.15);
  EXPECT_TRUE(g.connected());
}

TEST(Overlay, PowerlawMeanDegreeAndConnectivity) {
  Rng rng(2);
  const auto g = Overlay::powerlaw(2'000, 5.0, 0.74, rng);
  EXPECT_NEAR(g.avg_degree(), 5.0, 0.35);
  EXPECT_TRUE(g.connected());
}

TEST(Overlay, CrawledLikeMatchesLimewireShape) {
  Rng rng(3);
  const auto g = Overlay::crawled_like(2'000, 3.35, rng);
  EXPECT_NEAR(g.avg_degree(), 3.35, 0.5);
  EXPECT_TRUE(g.connected());
  // Two-tier shape: many leaves (degree 1-2) plus well-connected hubs.
  const auto hist = g.degree_histogram();
  std::uint32_t leaves = 0, hubs = 0;
  for (std::size_t d = 0; d < hist.size(); ++d) {
    if (d <= 2) leaves += hist[d];
    if (d >= 10) hubs += hist[d];
  }
  EXPECT_GT(leaves, 1'000u);
  EXPECT_GT(hubs, 50u);
}

TEST(Overlay, NoSelfLoopsOrParallelEdges) {
  Rng rng(4);
  const auto g = Overlay::powerlaw(500, 5.0, 0.74, rng);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    std::set<NodeId> seen;
    for (NodeId nb : g.neighbors(n)) {
      EXPECT_NE(nb, n) << "self-loop at " << n;
      EXPECT_TRUE(seen.insert(nb).second) << "parallel edge at " << n;
    }
  }
}

TEST(Overlay, AdjacencyIsSymmetric) {
  Rng rng(5);
  const auto g = Overlay::random(300, 4.0, rng);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (NodeId nb : g.neighbors(n)) {
      const auto back = g.neighbors(nb);
      EXPECT_NE(std::find(back.begin(), back.end(), n), back.end());
    }
  }
}

TEST(Overlay, DetachRemovesAllEdges) {
  Rng rng(6);
  auto g = Overlay::random(100, 5.0, rng);
  const auto edges_before = g.num_edges();
  const auto deg = g.degree(7);
  ASSERT_GT(deg, 0u);
  g.detach(7);
  EXPECT_FALSE(g.attached(7));
  EXPECT_EQ(g.degree(7), 0u);
  EXPECT_EQ(g.num_edges(), edges_before - deg);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (NodeId nb : g.neighbors(n)) EXPECT_NE(nb, 7u);
  }
  g.detach(7);  // idempotent
  EXPECT_EQ(g.num_edges(), edges_before - deg);
}

TEST(Overlay, AttachNewConnectsToLivePeers) {
  Rng rng(7);
  auto g = Overlay::random(50, 4.0, rng);
  g.detach(3);
  const NodeId id = g.attach_new(5, rng);
  EXPECT_EQ(id, 50u);
  EXPECT_TRUE(g.attached(id));
  EXPECT_EQ(g.degree(id), 5u);
  for (NodeId nb : g.neighbors(id)) {
    EXPECT_TRUE(g.attached(nb));
    EXPECT_NE(nb, 3u) << "must not connect to a detached node";
  }
}

TEST(Overlay, AttachNewClampsDegreeToPopulation) {
  Rng rng(8);
  auto g = Overlay::random(5, 2.0, rng);
  const NodeId id = g.attach_new(100, rng);
  EXPECT_EQ(g.degree(id), 5u);  // all pre-existing nodes
}

TEST(Overlay, AttachedNodesReflectsChurn) {
  Rng rng(9);
  auto g = Overlay::random(10, 3.0, rng);
  g.detach(2);
  g.detach(8);
  const auto live = g.attached_nodes();
  EXPECT_EQ(live.size(), 8u);
  EXPECT_EQ(std::find(live.begin(), live.end(), 2u), live.end());
}

TEST(Overlay, AddEdgeRejectsDuplicatesAndSelfLoops) {
  Rng rng(10);
  auto g = Overlay::random(10, 2.0, rng);
  EXPECT_FALSE(g.add_edge(3, 3));
  const bool added = g.add_edge(0, 9);
  EXPECT_FALSE(g.add_edge(0, 9));
  EXPECT_FALSE(g.add_edge(9, 0));
  std::ignore = added;
}

TEST(Overlay, DeterministicForSeed) {
  Rng a(11), b(11);
  const auto g1 = Overlay::crawled_like(500, 3.35, a);
  const auto g2 = Overlay::crawled_like(500, 3.35, b);
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  for (NodeId n = 0; n < g1.num_nodes(); ++n) {
    ASSERT_EQ(g1.degree(n), g2.degree(n)) << "node " << n;
  }
}

TEST(Overlay, RejectsBadParameters) {
  Rng rng(12);
  EXPECT_THROW(Overlay::random(1, 1.0, rng), ConfigError);
  EXPECT_THROW(Overlay::random(100, 1.0, rng), ConfigError);
  EXPECT_THROW(Overlay::random(10, 10.0, rng), ConfigError);
  EXPECT_THROW(Overlay::powerlaw(100, 1.0, 0.74, rng), ConfigError);
  EXPECT_THROW(Overlay::crawled_like(10, 3.35, rng), ConfigError);
}


TEST(Overlay, InterestClusteredFavorsSameGroupEdges) {
  Rng rng(20);
  constexpr std::uint32_t kN = 1'000;
  std::vector<std::uint8_t> groups(kN);
  for (NodeId i = 0; i < kN; ++i) groups[i] = i % 4;
  const auto g = Overlay::interest_clustered(kN, 6.0, groups, 0.8, rng);
  EXPECT_TRUE(g.connected());
  EXPECT_NEAR(g.avg_degree(), 6.0, 0.4);
  std::uint64_t same = 0, cross = 0;
  for (NodeId n = 0; n < kN; ++n) {
    for (NodeId nb : g.neighbors(n)) {
      (groups[n] == groups[nb] ? same : cross) += 1;
    }
  }
  // With 4 equal groups and uniform wiring, same-group edges would be
  // ~25%; clustering at 0.8 must push well past half.
  EXPECT_GT(same, cross);

  Rng rng2(21);
  const auto uniform = Overlay::interest_clustered(kN, 6.0, groups, 0.0, rng2);
  std::uint64_t same_u = 0, cross_u = 0;
  for (NodeId n = 0; n < kN; ++n) {
    for (NodeId nb : uniform.neighbors(n)) {
      (groups[n] == groups[nb] ? same_u : cross_u) += 1;
    }
  }
  EXPECT_LT(same_u, cross_u);
}

TEST(Overlay, InterestClusteredRejectsBadParams) {
  Rng rng(22);
  std::vector<std::uint8_t> groups(100, 0);
  EXPECT_THROW(Overlay::interest_clustered(200, 5.0, groups, 0.5, rng),
               ConfigError);
  groups.resize(200);
  EXPECT_THROW(Overlay::interest_clustered(200, 5.0, groups, 1.5, rng),
               ConfigError);
  EXPECT_THROW(Overlay::interest_clustered(200, 1.0, groups, 0.5, rng),
               ConfigError);
}

TEST(Overlay, ReattachRestoresNodeWithFreshEdges) {
  Rng rng(23);
  auto g = Overlay::random(60, 4.0, rng);
  g.detach(10);
  ASSERT_FALSE(g.attached(10));
  g.reattach(10, 4, rng);
  EXPECT_TRUE(g.attached(10));
  EXPECT_EQ(g.degree(10), 4u);
  for (NodeId nb : g.neighbors(10)) EXPECT_TRUE(g.attached(nb));
  // Idempotent for already-attached nodes.
  const auto deg = g.degree(10);
  g.reattach(10, 4, rng);
  EXPECT_EQ(g.degree(10), deg);
  EXPECT_THROW(g.reattach(10'000, 4, rng), ConfigError);
}

// Degree histogram sanity across all three generators.
class OverlayGeneratorTest
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(OverlayGeneratorTest, HistogramTotalsMatchNodeCount) {
  Rng rng(13);
  const auto [kind, mean] = GetParam();
  Overlay g = std::string(kind) == "random"
                  ? Overlay::random(1'000, mean, rng)
                  : std::string(kind) == "powerlaw"
                        ? Overlay::powerlaw(1'000, mean, 0.74, rng)
                        : Overlay::crawled_like(1'000, mean, rng);
  const auto hist = g.degree_histogram();
  std::uint64_t total = 0, weighted = 0;
  for (std::size_t d = 0; d < hist.size(); ++d) {
    total += hist[d];
    weighted += hist[d] * d;
  }
  EXPECT_EQ(total, 1'000u);
  EXPECT_EQ(weighted, 2 * g.num_edges());
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, OverlayGeneratorTest,
    ::testing::Values(std::make_tuple("random", 5.0),
                      std::make_tuple("powerlaw", 5.0),
                      std::make_tuple("crawled", 3.35)));

}  // namespace
}  // namespace asap::overlay
