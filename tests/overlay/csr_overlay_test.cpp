// Pooled-CSR overlay storage tests (DESIGN.md §15): degree_histogram()
// read off the block headers must match a per-node neighbors() recount,
// attached_view() must cache between churn events and invalidate across
// them, and heavy detach/attach/reattach churn must keep the slab
// consistent through block relocation and automatic compaction.
#include "overlay/overlay.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace asap::overlay {
namespace {

/// Recomputes the degree histogram the slow way, straight from spans.
std::vector<std::uint32_t> histogram_by_recount(const Overlay& o) {
  std::vector<std::uint32_t> hist;
  for (NodeId n = 0; n < o.num_nodes(); ++n) {
    if (!o.attached(n)) continue;
    const auto d = static_cast<std::uint32_t>(o.neighbors(n).size());
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

/// Full structural audit: every edge symmetric, within-slab, no self
/// loops or duplicates, degree headers match span sizes, edge count and
/// average degree consistent.
void audit(const Overlay& o) {
  std::uint64_t end_sum = 0;
  for (NodeId n = 0; n < o.num_nodes(); ++n) {
    const auto nb = o.neighbors(n);
    ASSERT_EQ(nb.size(), o.degree(n));
    if (!o.attached(n)) {
      ASSERT_EQ(nb.size(), 0u) << "detached node " << n << " kept edges";
    }
    std::unordered_set<NodeId> seen;
    for (const auto v : nb) {
      ASSERT_NE(v, n) << "self loop at " << n;
      ASSERT_LT(v, o.num_nodes());
      ASSERT_TRUE(o.attached(v)) << n << " -> detached " << v;
      ASSERT_TRUE(seen.insert(v).second) << "duplicate edge " << n << "-" << v;
      const auto back = o.neighbors(v);
      ASSERT_TRUE(std::find(back.begin(), back.end(), n) != back.end())
          << "asymmetric edge " << n << "-" << v;
    }
    end_sum += nb.size();
  }
  ASSERT_EQ(end_sum, 2 * o.num_edges());
}

TEST(CsrOverlay, DegreeHistogramMatchesRecountAcrossGenerators) {
  Rng rng(41);
  const Overlay overlays[] = {
      Overlay::random(600, 5.0, rng),
      Overlay::powerlaw(600, 5.0, 0.74, rng),
      Overlay::crawled_like(600, 3.35, rng),
  };
  for (const auto& o : overlays) {
    const auto fast = o.degree_histogram();
    const auto slow = histogram_by_recount(o);
    ASSERT_EQ(fast, slow);
    // Histogram mass equals the attached population.
    const auto mass = std::accumulate(fast.begin(), fast.end(), 0u);
    EXPECT_EQ(mass, o.attached_count());
    // First moment equals the handshake sum.
    std::uint64_t degree_sum = 0;
    for (std::size_t d = 0; d < fast.size(); ++d) {
      degree_sum += d * fast[d];
    }
    EXPECT_EQ(degree_sum, 2 * o.num_edges());
  }
}

TEST(CsrOverlay, DegreeHistogramTracksChurn) {
  Rng rng(17);
  auto o = Overlay::random(300, 5.0, rng);
  for (int round = 0; round < 50; ++round) {
    const NodeId victim = static_cast<NodeId>(rng.below(o.num_nodes()));
    if (o.attached(victim) && o.attached_count() > 10) o.detach(victim);
    o.attach_new(4, rng);
    ASSERT_EQ(o.degree_histogram(), histogram_by_recount(o));
  }
}

TEST(CsrOverlay, AttachedViewIsCachedAndInvalidatedByChurn) {
  Rng rng(7);
  auto o = Overlay::random(200, 5.0, rng);

  const auto v1 = o.attached_view();
  const auto v2 = o.attached_view();
  // Same generation: the cached span must be literally the same storage.
  EXPECT_EQ(v1.data(), v2.data());
  EXPECT_EQ(v1.size(), v2.size());
  EXPECT_EQ(v1.size(), o.attached_count());
  EXPECT_TRUE(std::is_sorted(v1.begin(), v1.end()));
  // And agree with the copying accessor.
  const auto copy = o.attached_nodes();
  ASSERT_EQ(copy.size(), v1.size());
  for (std::size_t i = 0; i < copy.size(); ++i) EXPECT_EQ(copy[i], v1[i]);

  const auto gen_before = o.churn_generation();
  o.detach(v1[0]);
  EXPECT_GT(o.churn_generation(), gen_before);
  const auto v3 = o.attached_view();
  EXPECT_EQ(v3.size(), o.attached_count());
  EXPECT_TRUE(std::find(v3.begin(), v3.end(), copy[0]) == v3.end());

  const auto id = o.attach_new(3, rng);
  const auto v4 = o.attached_view();
  EXPECT_TRUE(std::find(v4.begin(), v4.end(), id) != v4.end());

  o.reattach(copy[0], 3, rng);
  const auto v5 = o.attached_view();
  EXPECT_TRUE(std::find(v5.begin(), v5.end(), copy[0]) != v5.end());
  EXPECT_EQ(v5.size(), o.attached_count());
}

TEST(CsrOverlay, CopyDoesNotAliasTheAttachedCache) {
  Rng rng(3);
  auto a = Overlay::random(100, 4.0, rng);
  (void)a.attached_view();  // warm the cache
  Overlay b(a);
  // Mutating the copy must not disturb the original's view.
  b.detach(b.attached_view()[0]);
  EXPECT_EQ(a.attached_view().size(), a.attached_count());
  EXPECT_EQ(b.attached_view().size(), b.attached_count());
  EXPECT_EQ(a.attached_count(), b.attached_count() + 1);
}

TEST(CsrOverlay, ChurnStressKeepsSlabConsistentThroughRelocation) {
  Rng rng(1234);
  auto o = Overlay::random(400, 5.0, rng);
  std::uint64_t max_dead = 0;
  for (int round = 0; round < 2'000; ++round) {
    switch (rng.below(3)) {
      case 0: {
        const NodeId n = static_cast<NodeId>(rng.below(o.num_nodes()));
        if (o.attached(n) && o.attached_count() > 20) o.detach(n);
        break;
      }
      case 1:
        o.attach_new(3 + static_cast<std::uint32_t>(rng.below(6)), rng);
        break;
      default: {
        const NodeId n = static_cast<NodeId>(rng.below(o.num_nodes()));
        if (!o.attached(n)) {
          o.reattach(n, 3 + static_cast<std::uint32_t>(rng.below(6)), rng);
        }
        break;
      }
    }
    max_dead = std::max(max_dead, o.dead_slots());
  }
  audit(o);
  // The churn mix above must actually exercise block relocation.
  ASSERT_GT(max_dead, 0u);
  // Auto-compaction keeps relocation garbage from dominating the slab.
  EXPECT_LT(o.dead_slots(), o.slab_slots());

  // Explicit compaction reclaims every dead slot and changes nothing
  // observable: identical adjacency, histogram and edge count after.
  const auto hist_before = o.degree_histogram();
  std::vector<std::vector<NodeId>> adj(o.num_nodes());
  for (NodeId n = 0; n < o.num_nodes(); ++n) {
    const auto nb = o.neighbors(n);
    adj[n].assign(nb.begin(), nb.end());
  }
  const auto edges_before = o.num_edges();
  o.compact();
  EXPECT_EQ(o.dead_slots(), 0u);
  EXPECT_EQ(o.num_edges(), edges_before);
  EXPECT_EQ(o.degree_histogram(), hist_before);
  for (NodeId n = 0; n < o.num_nodes(); ++n) {
    const auto nb = o.neighbors(n);
    ASSERT_EQ(std::vector<NodeId>(nb.begin(), nb.end()), adj[n]) << n;
  }
  audit(o);
}

TEST(CsrOverlay, MemoryBytesIsBoundedPerNode) {
  Rng rng(99);
  const auto o = Overlay::random(50'000, 5.0, rng);
  // CSR slab + 16-byte headers + bitmaps: small multiple of edges+nodes.
  const double per_node =
      static_cast<double>(o.memory_bytes()) / o.num_nodes();
  // avg degree 5 → ~10 slab entries/node (with headroom) at 4 bytes plus a
  // 16-byte header: comfortably under 150 bytes/node (the ISSUE budget for
  // the whole overlay+state layer).
  EXPECT_LT(per_node, 150.0);
  EXPECT_GT(o.memory_bytes(),
            static_cast<std::uint64_t>(2 * o.num_edges() * sizeof(NodeId)));
}

}  // namespace
}  // namespace asap::overlay
