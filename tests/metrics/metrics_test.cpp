#include <gtest/gtest.h>

#include "metrics/load_series.hpp"
#include "metrics/search_stats.hpp"

namespace asap::metrics {
namespace {

TEST(SearchStats, EmptyStats) {
  SearchStats s;
  EXPECT_EQ(s.total(), 0u);
  EXPECT_DOUBLE_EQ(s.success_rate(), 0.0);
  EXPECT_DOUBLE_EQ(s.avg_response_time(), 0.0);
  EXPECT_DOUBLE_EQ(s.local_hit_rate(), 0.0);
}

TEST(SearchStats, AggregatesRecords) {
  SearchStats s;
  s.add({.success = true, .response_time = 0.2, .cost_bytes = 100,
         .messages = 2, .local_hit = true});
  s.add({.success = false, .response_time = 0.0, .cost_bytes = 300,
         .messages = 10, .local_hit = false});
  s.add({.success = true, .response_time = 0.4, .cost_bytes = 200,
         .messages = 4, .local_hit = false});
  EXPECT_EQ(s.total(), 3u);
  EXPECT_EQ(s.successes(), 2u);
  EXPECT_NEAR(s.success_rate(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.avg_response_time(), 0.3, 1e-12)
      << "response time averages successful searches only";
  EXPECT_NEAR(s.avg_cost_bytes(), 200.0, 1e-12)
      << "cost averages all searches";
  EXPECT_NEAR(s.avg_messages(), 16.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.local_hit_rate(), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(s.response_samples().size(), 2u);
}

TEST(LoadSeries, ReducesPerLiveNode) {
  sim::BandwidthLedger ledger(10.0);
  ledger.deposit(2.5, sim::Traffic::kQuery, 1'000);
  ledger.deposit(3.5, sim::Traffic::kQuery, 500);
  const std::vector<double> live{10, 10, 10, 5, 10, 10, 10, 10, 10, 10};
  const sim::Traffic cats[] = {sim::Traffic::kQuery};
  const auto sum = reduce_load(ledger, cats, live, 0, 10);
  ASSERT_EQ(sum.series.size(), 10u);
  EXPECT_DOUBLE_EQ(sum.series[2], 100.0);  // 1000 B / 10 nodes
  EXPECT_DOUBLE_EQ(sum.series[3], 100.0);  // 500 B / 5 nodes
  EXPECT_DOUBLE_EQ(sum.peak_bytes_per_node_per_sec, 100.0);
  EXPECT_NEAR(sum.mean_bytes_per_node_per_sec, 20.0, 1e-12);
}

TEST(LoadSeries, WindowRestrictsReduction) {
  sim::BandwidthLedger ledger(10.0);
  ledger.deposit(1.0, sim::Traffic::kQuery, 999'999);  // outside window
  ledger.deposit(5.0, sim::Traffic::kQuery, 100);
  const std::vector<double> live{10, 10, 10, 10, 10, 10, 10, 10, 10, 10};
  const sim::Traffic cats[] = {sim::Traffic::kQuery};
  const auto sum = reduce_load(ledger, cats, live, 4, 8);
  EXPECT_EQ(sum.series.size(), 4u);
  EXPECT_DOUBLE_EQ(sum.series[1], 10.0);
  EXPECT_DOUBLE_EQ(sum.peak_bytes_per_node_per_sec, 10.0);
}

TEST(LoadSeries, ZeroLiveNodesYieldZeroLoad) {
  sim::BandwidthLedger ledger(4.0);
  ledger.deposit(1.0, sim::Traffic::kQuery, 100);
  const std::vector<double> live{0, 0, 0, 0};
  const sim::Traffic cats[] = {sim::Traffic::kQuery};
  const auto sum = reduce_load(ledger, cats, live, 0, 4);
  EXPECT_DOUBLE_EQ(sum.mean_bytes_per_node_per_sec, 0.0);
}

TEST(LoadSeries, RejectsEmptyWindow) {
  sim::BandwidthLedger ledger(4.0);
  const std::vector<double> live{1, 1, 1, 1};
  const sim::Traffic cats[] = {sim::Traffic::kQuery};
  EXPECT_THROW(reduce_load(ledger, cats, live, 3, 3), ConfigError);
}

TEST(CategoryBreakdown, SharesSumToOne) {
  sim::BandwidthLedger ledger(10.0);
  ledger.deposit(1.0, sim::Traffic::kFullAd, 850);
  ledger.deposit(2.0, sim::Traffic::kPatchAd, 100);
  ledger.deposit(3.0, sim::Traffic::kRefreshAd, 50);
  const sim::Traffic cats[] = {sim::Traffic::kFullAd, sim::Traffic::kPatchAd,
                               sim::Traffic::kRefreshAd};
  const auto bd = category_breakdown(ledger, cats, 0, 10);
  ASSERT_EQ(bd.size(), 3u);
  double total_share = 0.0;
  for (const auto& cs : bd) total_share += cs.share;
  EXPECT_NEAR(total_share, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(bd[0].share, 0.85);
  EXPECT_EQ(bd[1].bytes, 100u);
}

TEST(CategoryBreakdown, EmptyLedgerHasZeroShares) {
  sim::BandwidthLedger ledger(5.0);
  const sim::Traffic cats[] = {sim::Traffic::kFullAd};
  const auto bd = category_breakdown(ledger, cats, 0, 5);
  ASSERT_EQ(bd.size(), 1u);
  EXPECT_DOUBLE_EQ(bd[0].share, 0.0);
}

}  // namespace
}  // namespace asap::metrics
