#include <gtest/gtest.h>

#include <cmath>

#include "metrics/load_series.hpp"
#include "metrics/search_stats.hpp"

namespace asap::metrics {
namespace {

TEST(SearchStats, EmptyStats) {
  SearchStats s;
  EXPECT_EQ(s.total(), 0u);
  EXPECT_DOUBLE_EQ(s.success_rate(), 0.0);
  EXPECT_DOUBLE_EQ(s.avg_response_time(), 0.0);
  EXPECT_DOUBLE_EQ(s.local_hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(s.avg_cost_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(s.avg_messages(), 0.0);
  EXPECT_DOUBLE_EQ(s.avg_results(), 0.0);
}

TEST(SearchStats, EmptyRunPercentilesAreDefined) {
  // A run with zero searches must export defined percentiles (0.0), not
  // trip percentile()'s "empty sample set" check.
  SearchStats s;
  EXPECT_DOUBLE_EQ(s.response_percentile(0.50), 0.0);
  EXPECT_DOUBLE_EQ(s.response_percentile(0.95), 0.0);
}

TEST(SearchStats, AllFailuresPercentilesAreDefined) {
  // Searches ran but none succeeded: no response samples exist, so the
  // percentile export must still be defined rather than aborting.
  SearchStats s;
  s.add({.success = false, .cost_bytes = 10, .messages = 3});
  s.add({.success = false, .cost_bytes = 20, .messages = 5});
  EXPECT_EQ(s.total(), 2u);
  EXPECT_EQ(s.successes(), 0u);
  EXPECT_DOUBLE_EQ(s.success_rate(), 0.0);
  EXPECT_DOUBLE_EQ(s.avg_response_time(), 0.0);
  EXPECT_DOUBLE_EQ(s.response_percentile(0.50), 0.0);
  EXPECT_DOUBLE_EQ(s.response_percentile(0.95), 0.0);
  EXPECT_FALSE(std::isnan(s.success_rate()));
  EXPECT_FALSE(std::isnan(s.avg_response_time()));
}

TEST(SearchStats, PercentileMatchesFreeFunction) {
  SearchStats s;
  for (double t : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    s.add({.success = true, .response_time = t});
  }
  EXPECT_DOUBLE_EQ(s.response_percentile(0.5),
                   percentile(s.response_samples(), 0.5));
  EXPECT_DOUBLE_EQ(s.response_percentile(0.0), 0.1);
  EXPECT_DOUBLE_EQ(s.response_percentile(1.0), 0.5);
}

TEST(SearchStats, AggregatesRecords) {
  SearchStats s;
  s.add({.success = true, .response_time = 0.2, .cost_bytes = 100,
         .messages = 2, .local_hit = true});
  s.add({.success = false, .response_time = 0.0, .cost_bytes = 300,
         .messages = 10, .local_hit = false});
  s.add({.success = true, .response_time = 0.4, .cost_bytes = 200,
         .messages = 4, .local_hit = false});
  EXPECT_EQ(s.total(), 3u);
  EXPECT_EQ(s.successes(), 2u);
  EXPECT_NEAR(s.success_rate(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.avg_response_time(), 0.3, 1e-12)
      << "response time averages successful searches only";
  EXPECT_NEAR(s.avg_cost_bytes(), 200.0, 1e-12)
      << "cost averages all searches";
  EXPECT_NEAR(s.avg_messages(), 16.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.local_hit_rate(), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(s.response_samples().size(), 2u);
}

TEST(LoadSeries, ReducesPerLiveNode) {
  sim::BandwidthLedger ledger(10.0);
  ledger.deposit(2.5, sim::Traffic::kQuery, 1'000);
  ledger.deposit(3.5, sim::Traffic::kQuery, 500);
  const std::vector<double> live{10, 10, 10, 5, 10, 10, 10, 10, 10, 10};
  const sim::Traffic cats[] = {sim::Traffic::kQuery};
  const auto sum = reduce_load(ledger, cats, live, 0, 10);
  ASSERT_EQ(sum.series.size(), 10u);
  EXPECT_DOUBLE_EQ(sum.series[2], 100.0);  // 1000 B / 10 nodes
  EXPECT_DOUBLE_EQ(sum.series[3], 100.0);  // 500 B / 5 nodes
  EXPECT_DOUBLE_EQ(sum.peak_bytes_per_node_per_sec, 100.0);
  EXPECT_NEAR(sum.mean_bytes_per_node_per_sec, 20.0, 1e-12);
  // Load stddev describes the window's own buckets — population form:
  // sqrt((2*80^2 + 8*20^2) / 10) = 40.
  EXPECT_NEAR(sum.stddev_bytes_per_node_per_sec, 40.0, 1e-9);
}

TEST(LoadSeries, WindowRestrictsReduction) {
  sim::BandwidthLedger ledger(10.0);
  ledger.deposit(1.0, sim::Traffic::kQuery, 999'999);  // outside window
  ledger.deposit(5.0, sim::Traffic::kQuery, 100);
  const std::vector<double> live{10, 10, 10, 10, 10, 10, 10, 10, 10, 10};
  const sim::Traffic cats[] = {sim::Traffic::kQuery};
  const auto sum = reduce_load(ledger, cats, live, 4, 8);
  EXPECT_EQ(sum.series.size(), 4u);
  EXPECT_DOUBLE_EQ(sum.series[1], 10.0);
  EXPECT_DOUBLE_EQ(sum.peak_bytes_per_node_per_sec, 10.0);
}

TEST(LoadSeries, ZeroLiveNodesYieldZeroLoad) {
  sim::BandwidthLedger ledger(4.0);
  ledger.deposit(1.0, sim::Traffic::kQuery, 100);
  const std::vector<double> live{0, 0, 0, 0};
  const sim::Traffic cats[] = {sim::Traffic::kQuery};
  const auto sum = reduce_load(ledger, cats, live, 0, 4);
  EXPECT_DOUBLE_EQ(sum.mean_bytes_per_node_per_sec, 0.0);
}

TEST(LoadSeries, RejectsEmptyWindow) {
  sim::BandwidthLedger ledger(4.0);
  const std::vector<double> live{1, 1, 1, 1};
  const sim::Traffic cats[] = {sim::Traffic::kQuery};
  EXPECT_THROW(reduce_load(ledger, cats, live, 3, 3), ConfigError);
}

TEST(CategoryBreakdown, SharesSumToOne) {
  sim::BandwidthLedger ledger(10.0);
  ledger.deposit(1.0, sim::Traffic::kFullAd, 850);
  ledger.deposit(2.0, sim::Traffic::kPatchAd, 100);
  ledger.deposit(3.0, sim::Traffic::kRefreshAd, 50);
  const sim::Traffic cats[] = {sim::Traffic::kFullAd, sim::Traffic::kPatchAd,
                               sim::Traffic::kRefreshAd};
  const auto bd = category_breakdown(ledger, cats, 0, 10);
  ASSERT_EQ(bd.size(), 3u);
  double total_share = 0.0;
  for (const auto& cs : bd) total_share += cs.share;
  EXPECT_NEAR(total_share, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(bd[0].share, 0.85);
  EXPECT_EQ(bd[1].bytes, 100u);
}

TEST(CategoryBreakdown, EmptyLedgerHasZeroShares) {
  sim::BandwidthLedger ledger(5.0);
  const sim::Traffic cats[] = {sim::Traffic::kFullAd};
  const auto bd = category_breakdown(ledger, cats, 0, 5);
  ASSERT_EQ(bd.size(), 1u);
  EXPECT_DOUBLE_EQ(bd[0].share, 0.0);
}

}  // namespace
}  // namespace asap::metrics
