// Unit coverage for the observability primitives: the sampled JSONL trace
// sink, the counter registry and the phase profiler.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/counters.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_sink.hpp"

namespace asap::obs {
namespace {

std::vector<std::string> lines_of(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

json::Object record(const char* type, int n) {
  json::Object rec;
  rec.emplace_back("type", json::Value(type));
  rec.emplace_back("n", json::Value(static_cast<double>(n)));
  return rec;
}

TEST(TraceSink, SampleOneKeepsEveryRecord) {
  std::ostringstream out;
  TraceSink sink(out, 1);
  for (int i = 0; i < 5; ++i) {
    if (sink.sampled(RecordKind::kQuery)) sink.write(record("query", i));
  }
  EXPECT_EQ(sink.records_written(), 5u);
  EXPECT_EQ(sink.records_seen(RecordKind::kQuery), 5u);
  EXPECT_EQ(lines_of(out.str()).size(), 5u);
}

TEST(TraceSink, SamplesEveryNthPerKindIndependently) {
  std::ostringstream out;
  TraceSink sink(out, 3);
  int kept_queries = 0;
  for (int i = 0; i < 7; ++i) {
    if (sink.sampled(RecordKind::kQuery)) {
      ++kept_queries;
      sink.write(record("query", i));
    }
  }
  // Records 0, 3 and 6 survive.
  EXPECT_EQ(kept_queries, 3);
  EXPECT_EQ(sink.records_seen(RecordKind::kQuery), 7u);
  // A rare kind is sampled on its own counter, so its first record is
  // always kept regardless of how chatty the other kinds were.
  EXPECT_TRUE(sink.sampled(RecordKind::kChurn));
  EXPECT_EQ(sink.records_seen(RecordKind::kChurn), 1u);
}

TEST(TraceSink, EmitsOneParseableJsonObjectPerLine) {
  std::ostringstream out;
  TraceSink sink(out, 1);
  for (int i = 0; i < 3; ++i) {
    if (sink.sampled(RecordKind::kAd)) sink.write(record("ad", i));
  }
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    // Single-line records: no embedded newlines, parseable in isolation.
    EXPECT_EQ(lines[i].find('\n'), std::string::npos);
    const json::Value v = json::parse(lines[i]);
    EXPECT_EQ(v.at("type").as_string(), "ad");
    EXPECT_EQ(v.at("n").as_double(), static_cast<double>(i));
  }
}

TEST(CounterRegistry, TracksCategoryTallies) {
  CounterRegistry reg;
  reg.count_deposit(sim::Traffic::kQuery, 100);
  reg.count_deposit(sim::Traffic::kQuery, 50);
  reg.count_drop_ttl(sim::Traffic::kQuery);
  reg.count_drop_loss(sim::Traffic::kConfirm);
  reg.count_drop_duplicate(sim::Traffic::kQuery);
  reg.count_drop_offline(sim::Traffic::kQuery);

  const auto& q = reg.category(sim::Traffic::kQuery);
  EXPECT_EQ(q.deposits, 2u);
  EXPECT_EQ(q.bytes, 150u);
  EXPECT_EQ(q.drops_ttl, 1u);
  EXPECT_EQ(q.drops_duplicate, 1u);
  EXPECT_EQ(q.drops_offline, 1u);
  EXPECT_EQ(reg.category(sim::Traffic::kConfirm).drops_loss, 1u);
  EXPECT_FALSE(reg.category(sim::Traffic::kFullAd).any());
}

TEST(CounterRegistry, TracksNodeTalliesAndTotals) {
  CounterRegistry reg;
  reg.count_ad_stored(3);
  reg.count_ad_stored(3);
  reg.count_ad_evicted(3);
  reg.count_ad_invalidated(7);
  reg.count_confirm_sent(7);
  reg.count_confirm_positive(7);
  reg.count_confirm_timed_out(3);

  EXPECT_EQ(reg.totals().ads_stored, 2u);
  EXPECT_EQ(reg.totals().ads_evicted, 1u);
  EXPECT_EQ(reg.totals().ads_invalidated, 1u);
  EXPECT_EQ(reg.totals().confirms_sent, 1u);
  ASSERT_GE(reg.nodes().size(), 8u);
  EXPECT_EQ(reg.nodes()[3].ads_stored, 2u);
  EXPECT_EQ(reg.nodes()[3].confirms_timed_out, 1u);
  EXPECT_EQ(reg.nodes()[7].confirms_positive, 1u);
  EXPECT_FALSE(reg.nodes()[0].any());
}

TEST(CounterRegistry, SnapshotElidesZeroCategories) {
  CounterRegistry reg;
  reg.count_deposit(sim::Traffic::kConfirm, 64);
  reg.count_ad_stored(1);
  const json::Value snap{reg.snapshot()};
  const json::Value& cats = snap.at("categories");
  EXPECT_NE(cats.find("confirm"), nullptr);
  EXPECT_EQ(cats.find("query"), nullptr) << "zero category not elided";
  EXPECT_EQ(cats.at("confirm").at("bytes").as_double(), 64.0);
  EXPECT_EQ(snap.at("ads").at("stored").as_double(), 1.0);
  EXPECT_EQ(snap.at("confirms").at("sent").as_double(), 0.0);
}

TEST(CounterRegistry, NodeRowsCoverOnlyTouchedNodes) {
  CounterRegistry reg;
  reg.count_ad_stored(2);
  reg.count_confirm_sent(5);
  const json::Array rows = reg.node_rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].at("type").as_string(), "node-counters");
  EXPECT_EQ(rows[0].at("node").as_double(), 2.0);
  EXPECT_EQ(rows[0].at("ads_stored").as_double(), 1.0);
  EXPECT_EQ(rows[1].at("node").as_double(), 5.0);
  EXPECT_EQ(rows[1].at("confirms_sent").as_double(), 1.0);
}

TEST(PhaseProfiler, RecordsPhasesInOrderWithEventDeltas) {
  PhaseProfiler prof;
  prof.begin("build");
  prof.begin("replay", 100);  // implicitly closes "build"
  prof.end(350);
  ASSERT_EQ(prof.phases().size(), 2u);
  const auto& build = prof.phases()[0];
  const auto& replay = prof.phases()[1];
  EXPECT_EQ(build.phase, "build");
  // "build" opened at event count 0 and closed at 100: the 100 events
  // executed before "replay" began belong to it.
  EXPECT_EQ(build.events, 100u);
  EXPECT_GE(build.wall_seconds, 0.0);
  EXPECT_EQ(replay.phase, "replay");
  EXPECT_EQ(replay.events, 250u);
  EXPECT_GE(replay.wall_seconds, 0.0);
  // end() with no open phase is a no-op.
  prof.end();
  EXPECT_EQ(prof.phases().size(), 2u);
}

TEST(PhaseProfiler, JsonShape) {
  PhaseProfiler prof;
  prof.begin("world-build");
  prof.end();
  const json::Array arr = prof.to_json();
  ASSERT_EQ(arr.size(), 1u);
  EXPECT_EQ(arr[0].at("phase").as_string(), "world-build");
  EXPECT_GE(arr[0].at("wall_seconds").as_double(), 0.0);
  EXPECT_EQ(arr[0].at("events").as_double(), 0.0);
  EXPECT_GE(arr[0].at("events_per_sec").as_double(), 0.0);
}

}  // namespace
}  // namespace asap::obs
