// Golden gate for the adversarial-resilience subsystem (DESIGN.md §16).
//
// tests/support/adversarial_small.json is a committed matrix run of
// asap(rw) on the kSmall preset across five fault scenarios — none,
// polluted-open/polluted (20% ad polluters, defense off/on) and
// storm-open/storm (flash-crowd query storms, shedding off/on) — crawled
// topology, seed 42, 1,000 queries. This test
//   1. replays the exact recorded spec and diffs every digest and metric
//      (the adversarial twin of the golden-metrics gate), and
//   2. pins the headline resilience claims on the artifact itself:
//      trust scoring recovers at least half the success-rate loss the
//      polluters inflict, at equal-or-lower advertisement bandwidth; and
//      query shedding bounds the pending queue at the configured cap
//      while keeping legitimate success within 2 pp of the unshedded run.
//
// When a change is intentional, refresh the baseline and commit it:
//
//   build/tools/asap_sim --matrix --preset small --topology crawled
//     --algo asap-rw --seed 42 --trials 1 --queries 1000
//     --faults none,polluted-open,polluted,storm-open,storm
//     --json tests/support/adversarial_small.json
//   (one command line; wrapped here for width)
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "harness/matrix_runner.hpp"

namespace asap::harness {
namespace {

constexpr const char* kGoldenPath =
    ASAP_TEST_SUPPORT_DIR "/adversarial_small.json";
constexpr const char* kRefreshHint =
    "\nIf this change is intentional, refresh the baseline:\n"
    "  build/tools/asap_sim --matrix --preset small --topology crawled "
    "--algo asap-rw --seed 42 --trials 1 --queries 1000 "
    "--faults none,polluted-open,polluted,storm-open,storm --json "
    "tests/support/adversarial_small.json\n";

json::Value load_golden() {
  std::ifstream in(kGoldenPath);
  EXPECT_TRUE(in.good()) << "cannot open " << kGoldenPath;
  std::ostringstream buf;
  buf << in.rdbuf();
  return json::parse(buf.str());
}

bool near(double a, double b) {
  return std::abs(a - b) <= 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
}

/// trial_runs rows keyed by fault-scenario name (one algo, one trial).
std::map<std::string, const json::Value*> rows_by_scenario(
    const json::Value& golden) {
  std::map<std::string, const json::Value*> rows;
  for (const auto& run : golden.at("trial_runs").as_array()) {
    rows[run.at("faults").as_string()] = &run;
  }
  return rows;
}

double metric(const json::Value& row, const char* name) {
  const json::Value* v = row.at("metrics").find(name);
  EXPECT_NE(v, nullptr) << "row lacks metric " << name << kRefreshHint;
  return v ? v->as_double() : 0.0;
}

TEST(AdversarialGolden, MatrixMatchesCommittedBaseline) {
  const json::Value golden = load_golden();
  ASSERT_EQ(golden.at("schema").as_string(), "asap-matrix-results/1");

  MatrixSpec spec = spec_from_json(golden);
  const MatrixResult actual = run_matrix(spec);

  const auto& golden_cells = golden.at("cells").as_array();
  ASSERT_EQ(actual.cells.size(), golden_cells.size())
      << "cell count drifted from the baseline" << kRefreshHint;

  for (std::size_t i = 0; i < golden_cells.size(); ++i) {
    const json::Value& want = golden_cells[i];
    const CellAggregate& got = actual.cells[i];
    const std::string label = want.at("faults").as_string() + "/" +
                              want.at("algo").as_string();
    EXPECT_EQ(algo_name(got.algo), want.at("algo").as_string());

    const auto& want_digests = want.at("digests").as_array();
    ASSERT_EQ(got.digests.size(), want_digests.size()) << label;
    for (std::size_t k = 0; k < want_digests.size(); ++k) {
      EXPECT_EQ(got.digests[k], want_digests[k].u64_hex())
          << label << " trial " << k << ": run digest drifted (golden "
          << want_digests[k].as_string() << ", actual "
          << json::hex_u64(got.digests[k]) << ")" << kRefreshHint;
    }

    const json::Value& want_metrics = want.at("metrics");
    for (const auto& [name, summary] : got.metrics) {
      const json::Value* want_metric = want_metrics.find(name);
      ASSERT_NE(want_metric, nullptr)
          << label << ": metric " << name << " missing from baseline"
          << kRefreshHint;
      EXPECT_TRUE(near(summary.mean, want_metric->at("mean").as_double()))
          << label << " " << name << ": golden mean "
          << want_metric->at("mean").as_double() << ", actual "
          << summary.mean << kRefreshHint;
    }
  }

  EXPECT_EQ(actual.matrix_digest, golden.at("matrix_digest").u64_hex())
      << "matrix digest drifted" << kRefreshHint;
}

// Acceptance claim 1, checked against the committed artifact so a
// refreshed baseline cannot silently regress the defense: at 20% ad
// polluters, trust scoring recovers at least half of the success-rate
// loss the undefended run suffers — without spending more ad bytes than
// the undefended run (quarantined sources stop being advertised for).
TEST(AdversarialGolden, TrustRecoversPollutedLossAtNoExtraBandwidth) {
  const json::Value golden = load_golden();
  const auto rows = rows_by_scenario(golden);
  ASSERT_TRUE(rows.count("none")) << kRefreshHint;
  ASSERT_TRUE(rows.count("polluted-open")) << kRefreshHint;
  ASSERT_TRUE(rows.count("polluted")) << kRefreshHint;

  const double clean = metric(*rows.at("none"), "success_rate");
  const double open = metric(*rows.at("polluted-open"), "success_rate");
  const double defended = metric(*rows.at("polluted"), "success_rate");
  const double loss = clean - open;
  EXPECT_GT(loss, 0.0)
      << "polluters no longer hurt the undefended run — the attack arm of "
         "the golden is vacuous"
      << kRefreshHint;
  EXPECT_GE(defended - open, 0.5 * loss)
      << "trust scoring recovered less than half the polluted loss (clean "
      << clean << ", open " << open << ", defended " << defended << ")"
      << kRefreshHint;

  const double open_bytes = metric(*rows.at("polluted-open"),
                                   "ad_bytes_total");
  const double defended_bytes = metric(*rows.at("polluted"),
                                       "ad_bytes_total");
  EXPECT_LE(defended_bytes, open_bytes)
      << "defense-on spent more advertisement bytes than defense-off"
      << kRefreshHint;

  // The recovery must come from the trust machinery actually engaging.
  const json::Value& fs = rows.at("polluted")->at("fault_summary");
  EXPECT_GT(fs.at("polluted_ads").as_double(), 0.0) << kRefreshHint;
  EXPECT_GT(fs.at("trust_strikes").as_double(), 0.0) << kRefreshHint;
  EXPECT_GT(fs.at("quarantines").as_double(), 0.0) << kRefreshHint;
}

// Acceptance claim 2: under flash-crowd storms, the bounded pending-query
// queue keeps its peak depth at or below the configured cap, and shedding
// costs the legitimate workload at most 2 pp of success versus the
// unshedded storm run (storm queries themselves are synthetic and never
// counted in success_rate).
TEST(AdversarialGolden, SheddingBoundsPendingDepthAtNearZeroSuccessCost) {
  const json::Value golden = load_golden();
  const auto rows = rows_by_scenario(golden);
  ASSERT_TRUE(rows.count("storm-open")) << kRefreshHint;
  ASSERT_TRUE(rows.count("storm")) << kRefreshHint;

  // The storm preset's pending_query_cap (fault_config.cpp).
  const double cap =
      faults::fault_preset("storm").config.pending_query_cap;
  ASSERT_GT(cap, 0.0);

  const json::Value& shielded = rows.at("storm")->at("fault_summary");
  EXPECT_LE(shielded.at("peak_pending_depth").as_double(), cap)
      << "pending-query queue overran the shedding cap" << kRefreshHint;
  EXPECT_GT(shielded.at("storm_queries").as_double(), 0.0)
      << "no storm queries fired — the overload arm is vacuous"
      << kRefreshHint;

  const double open = metric(*rows.at("storm-open"), "success_rate");
  const double shielded_succ = metric(*rows.at("storm"), "success_rate");
  EXPECT_GE(shielded_succ, open - 0.02)
      << "shedding cost the legitimate workload more than 2 pp"
      << kRefreshHint;

  // The unshedded control really ran without the shield.
  const json::Value& open_fs = rows.at("storm-open")->at("fault_summary");
  EXPECT_EQ(open_fs.at("queries_shed").as_double(), 0.0) << kRefreshHint;
}

// The gated-metric discipline: adversarial counters appear only on
// adversarial rows, so pre-existing fault goldens (and faults-off runs)
// keep their exact metric set byte-for-byte.
TEST(AdversarialGolden, AdversarialMetricsAreGatedToAdversarialRows) {
  const json::Value golden = load_golden();
  const auto rows = rows_by_scenario(golden);
  ASSERT_TRUE(rows.count("none")) << kRefreshHint;

  const json::Value& clean = rows.at("none")->at("metrics");
  for (const char* name : {"polluted_ads", "trust_strikes", "quarantines",
                           "queries_shed", "storm_queries",
                           "peak_pending_depth"}) {
    EXPECT_EQ(clean.find(name), nullptr)
        << "faults-off row leaked gated metric " << name << kRefreshHint;
  }
  EXPECT_EQ(rows.at("none")->find("fault_summary"), nullptr)
      << "faults-off row carries a fault_summary" << kRefreshHint;

  const json::Value& polluted = rows.at("polluted")->at("metrics");
  for (const char* name : {"polluted_ads", "trust_strikes", "quarantines"}) {
    EXPECT_NE(polluted.find(name), nullptr)
        << "adversarial row lacks gated metric " << name << kRefreshHint;
  }
  const json::Value& fs = rows.at("polluted")->at("fault_summary");
  EXPECT_TRUE(fs.at("adversarial").as_bool()) << kRefreshHint;
}

}  // namespace
}  // namespace asap::harness
