// ISSUE 6 acceptance sweep: the event-queue structure (4-ary heap vs
// ladder queue, including mid-run migrations) and the callback storage
// path (inline SBO vs forced SlabPool fallback) are pure speed choices —
// every configuration must replay a world to a bit-identical run digest,
// for all six algorithms, with and without fault injection.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "faults/fault_config.hpp"
#include "harness/replay.hpp"
#include "harness/world.hpp"

namespace asap::harness {
namespace {

/// Smaller than determinism_test's world: this suite replays 6 algorithms
/// x 3 fault presets x 4 engine configurations.
ExperimentConfig sweep_config() {
  auto cfg = ExperimentConfig::make(Preset::kSmall, TopologyKind::kCrawled, 23);
  cfg.content.initial_nodes = 300;
  cfg.content.joiner_nodes = 20;
  cfg.trace.num_queries = 150;
  cfg.trace.joins = 10;
  cfg.trace.leaves = 10;
  cfg.warmup = 120.0;
  return cfg;
}

class EngineDigestTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new World(build_world(sweep_config()));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};

World* EngineDigestTest::world_ = nullptr;

struct NamedTuning {
  const char* name;
  sim::EngineTuning tuning;
};

std::vector<NamedTuning> tuning_sweep() {
  sim::EngineTuning heap_only;
  heap_only.ladder_threshold = static_cast<std::size_t>(-1);

  sim::EngineTuning ladder_only;
  ladder_only.ladder_threshold = 0;
  ladder_only.heap_threshold = 0;

  sim::EngineTuning pooled;
  pooled.force_heap_callbacks = true;

  return {
      {"heap-only", heap_only},
      {"ladder-only", ladder_only},
      {"forced-pool-callbacks", pooled},
  };
}

TEST_F(EngineDigestTest, AllQueueAndCallbackPathsMatchDefaultDigest) {
  for (const auto kind : kAllAlgos) {
    const auto base = run_experiment(*world_, kind);
    ASSERT_NE(base.digest, 0u) << algo_name(kind);
    for (const auto& [name, tuning] : tuning_sweep()) {
      RunOptions opts;
      opts.engine_tuning = tuning;
      const auto res = run_experiment(*world_, kind, opts);
      EXPECT_EQ(res.digest, base.digest) << algo_name(kind) << " / " << name;
      EXPECT_EQ(res.engine_events, base.engine_events)
          << algo_name(kind) << " / " << name;
    }
  }
}

TEST_F(EngineDigestTest, SweepHoldsUnderFaultPresets) {
  // Fault injection reshapes the event population (crash timers, burst
  // windows, jittered latencies) — exactly the traffic that stresses
  // rung rebuilds — so the identity must hold under the PR 5 presets too.
  // A representative algorithm pair keeps the suite's runtime bounded:
  // one baseline, one ASAP variant.
  for (const auto kind : {AlgoKind::kFlooding, AlgoKind::kAsapRw}) {
    for (const char* preset : {"churn", "chaos"}) {
      RunOptions base_opts;
      base_opts.faults = faults::fault_preset(preset).config;
      const auto base = run_experiment(*world_, kind, base_opts);
      ASSERT_NE(base.digest, 0u) << algo_name(kind) << " / " << preset;
      for (const auto& [name, tuning] : tuning_sweep()) {
        RunOptions opts = base_opts;
        opts.engine_tuning = tuning;
        const auto res = run_experiment(*world_, kind, opts);
        EXPECT_EQ(res.digest, base.digest)
            << algo_name(kind) << " / " << preset << " / " << name;
      }
    }
  }
}

}  // namespace
}  // namespace asap::harness
