// The --scale axis (DESIGN.md §15): apply_scale() re-dimensioning rules,
// spec round-trip of the scale / stream_trace keys through results.json
// (including absent-key defaults for pre-scale documents), and the load-
// bearing digest identity — a matrix run with on-demand trace synthesis is
// bit-identical to the same matrix with materialized traces, with faults
// armed and off.
#include <gtest/gtest.h>

#include <cmath>

#include "common/json.hpp"
#include "faults/fault_config.hpp"
#include "harness/config.hpp"
#include "harness/matrix_runner.hpp"
#include "harness/world.hpp"

namespace asap::harness {
namespace {

void shrink(ExperimentConfig& cfg) {
  cfg.content.initial_nodes = 300;
  cfg.content.joiner_nodes = 20;
  cfg.trace.num_queries = 200;
  cfg.trace.joins = 10;
  cfg.trace.leaves = 10;
  cfg.warmup = 120.0;
}

MatrixSpec tiny_spec() {
  MatrixSpec spec;
  spec.preset = Preset::kSmall;
  spec.topologies = {TopologyKind::kCrawled};
  spec.algos = {AlgoKind::kFlooding, AlgoKind::kRandomWalk, AlgoKind::kAsapRw};
  spec.seed = 7;
  spec.trials = 1;
  spec.tweak = shrink;
  return spec;
}

TEST(ApplyScale, RedimensionsEveryCoupledKnob) {
  auto cfg = ExperimentConfig::make(Preset::kSmall, TopologyKind::kCrawled, 1);
  cfg.apply_scale(50'000);
  EXPECT_EQ(cfg.scale, 50'000u);
  EXPECT_EQ(cfg.content.initial_nodes, 50'000u);
  EXPECT_EQ(cfg.content.joiner_nodes, 5'000u);
  EXPECT_LE(cfg.trace.joins, 2'000u);
  EXPECT_LE(cfg.trace.leaves, 2'000u);
  EXPECT_GE(cfg.content.popular_terms_per_class, 1'000u);
  // The physical network must offer at least one stub slot per peer
  // (initial nodes + joiners).
  const auto slots = static_cast<std::uint64_t>(cfg.phys.total_stub_domains()) *
                     cfg.phys.stub_nodes_per_domain;
  EXPECT_GE(slots, 55'000u);
  EXPECT_FALSE(cfg.stream_trace) << "below the auto-streaming threshold";

  cfg.apply_scale(100'000);
  EXPECT_TRUE(cfg.stream_trace) << "large worlds stream by default";
}

TEST(ApplyScale, SmallScaleKeepsMaterializedTraces) {
  auto cfg = ExperimentConfig::make(Preset::kSmall, TopologyKind::kCrawled, 1);
  cfg.apply_scale(10'000);
  EXPECT_EQ(cfg.content.initial_nodes, 10'000u);
  EXPECT_FALSE(cfg.stream_trace);
}

TEST(ScaleAxis, SpecRoundTripsThroughResultsJson) {
  auto spec = tiny_spec();
  spec.algos = {AlgoKind::kFlooding};
  spec.stream_trace = true;
  // A scale override would fight the shrink tweak; exercise it purely on
  // the serialization path by patching the recorded spec.
  auto result = run_matrix(spec);
  result.spec.scale = 250'000;

  const auto doc = json::parse(json::dump(results_to_json(result)));
  const auto parsed = spec_from_json(doc);
  EXPECT_EQ(parsed.scale, 250'000u);
  EXPECT_TRUE(parsed.stream_trace);
}

TEST(ScaleAxis, PreScaleDocumentsParseWithDefaults) {
  // results.json written before the scale axis existed carries neither
  // key; spec_from_json must default them, not throw.
  auto spec = tiny_spec();
  spec.algos = {AlgoKind::kFlooding};
  const auto result = run_matrix(spec);
  auto doc = results_to_json(result);
  for (auto& [key, value] : doc.as_object()) {
    if (key != "spec") continue;
    auto& spec_obj = value.as_object();
    std::erase_if(spec_obj, [](const auto& kv) {
      return kv.first == "scale" || kv.first == "stream_trace";
    });
  }
  const auto parsed = spec_from_json(json::parse(json::dump(doc)));
  EXPECT_EQ(parsed.scale, 0u);
  EXPECT_FALSE(parsed.stream_trace);
}

TEST(ScaleAxis, TrialRunsCarryThroughputInstrumentation) {
  auto spec = tiny_spec();
  // Baseline algorithms run their propagation synchronously (0 engine
  // events by design); ASAP schedules real engine events and owns real
  // protocol state, so it exercises all three instrumentation fields.
  spec.algos = {AlgoKind::kAsapRw};
  const auto result = run_matrix(spec);
  ASSERT_EQ(result.trials.size(), 1u);
  const auto& r = result.trials[0].result;
  EXPECT_GT(r.events_per_sec, 0.0);
  EXPECT_GT(r.state_bytes, 0u);
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(r.peak_rss_bytes, 0u);
#endif
  const auto doc = json::parse(json::dump(results_to_json(result)));
  const auto& run0 = doc.at("trial_runs").as_array()[0];
  EXPECT_GT(run0.at("events_per_sec").as_double(), 0.0);
  EXPECT_GT(run0.at("state_bytes").as_double(), 0.0);
  EXPECT_NE(run0.find("peak_rss_bytes"), nullptr);
}

TEST(ScaleAxis, StreamingMatrixIsBitIdenticalToMaterialized) {
  // The headline determinism claim behind streaming synthesis: the same
  // matrix — several algorithms, faults off — digests identically whether
  // traces are materialized up front or synthesized on demand.
  auto spec = tiny_spec();
  const auto materialized = run_matrix(spec);
  spec.stream_trace = true;
  const auto streamed = run_matrix(spec);

  ASSERT_EQ(materialized.trials.size(), streamed.trials.size());
  for (std::size_t i = 0; i < materialized.trials.size(); ++i) {
    EXPECT_EQ(materialized.trials[i].result.digest,
              streamed.trials[i].result.digest)
        << algo_name(materialized.trials[i].algo);
    EXPECT_EQ(materialized.trials[i].result.engine_events,
              streamed.trials[i].result.engine_events);
  }
  EXPECT_EQ(materialized.matrix_digest, streamed.matrix_digest);
  EXPECT_NE(materialized.matrix_digest, 0u);
}

TEST(ScaleAxis, StreamingIsBitIdenticalUnderFaults) {
  // The fault planner consumes the world's churn set; streaming worlds
  // hand it a bitmap instead of a materialized event span. Same plan,
  // same digests.
  auto spec = tiny_spec();
  spec.algos = {AlgoKind::kAsapRw};
  spec.fault_scenarios = {faults::FaultScenario{}, faults::fault_preset("churn")};
  const auto materialized = run_matrix(spec);
  spec.stream_trace = true;
  const auto streamed = run_matrix(spec);
  ASSERT_EQ(materialized.trials.size(), 2u);
  ASSERT_EQ(streamed.trials.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(materialized.trials[i].result.digest,
              streamed.trials[i].result.digest)
        << materialized.trials[i].scenario;
  }
  EXPECT_EQ(materialized.matrix_digest, streamed.matrix_digest);
}

TEST(ScaleAxis, StreamingWorldCarriesChurnBitmapNotEvents) {
  auto cfg = ExperimentConfig::make(Preset::kSmall, TopologyKind::kCrawled, 3);
  shrink(cfg);
  cfg.stream_trace = true;
  const auto world = build_world(cfg);
  EXPECT_TRUE(world.streaming.enabled);
  EXPECT_TRUE(world.trace.events.empty());
  EXPECT_EQ(world.streaming.churned.size(), cfg.content.initial_nodes);
  EXPECT_GT(world.trace.num_queries, 0u);
  EXPECT_GT(world.trace.horizon, 0.0);
}

}  // namespace
}  // namespace asap::harness
