// Fault-injection subsystem over the full replay harness.
//
// The headline contracts (tier 1):
//   * determinism guard — an *armed* injector whose config is all-zero
//     changes nothing: digests are bit-identical to the plain run;
//   * bounded termination — even total blackout (message_loss = 1.0, or a
//     burst window at loss 1.0 over the whole run) with confirm retries on
//     terminates with finite cost and a clean audit;
//   * under real churn the hardened protocol retries confirms, evicts
//     stale ads, and the invariant auditor stays green.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "faults/fault_config.hpp"
#include "harness/matrix_runner.hpp"
#include "harness/replay.hpp"
#include "harness/world.hpp"
#include "obs/observer.hpp"

namespace asap::harness {
namespace {

ExperimentConfig tiny_config() {
  auto cfg = ExperimentConfig::make(Preset::kSmall, TopologyKind::kCrawled, 23);
  cfg.content.initial_nodes = 400;
  cfg.content.joiner_nodes = 30;
  cfg.trace.num_queries = 300;
  cfg.trace.joins = 20;
  cfg.trace.leaves = 20;
  cfg.warmup = 120.0;
  return cfg;
}

/// A churn-heavy scenario sized for the tiny world: enough crash-stop
/// failures that stale ads are confirmed (and strike out) repeatedly.
faults::FaultConfig heavy_churn() {
  faults::FaultConfig cfg = faults::fault_preset("churn").config;
  cfg.crash_fraction = 0.15;
  return cfg;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new World(build_world(tiny_config()));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};

World* FaultInjectionTest::world_ = nullptr;

// The tier-1 determinism guard: arming the injector with an all-zero
// config must leave every algorithm's digest bit-identical.
TEST_F(FaultInjectionTest, ZeroRateArmedInjectorIsBitIdentical) {
  for (const auto kind : kAllAlgos) {
    const auto plain = run_experiment(*world_, kind);
    RunOptions opts;
    opts.faults = faults::FaultConfig{};  // armed, all rates zero
    const auto armed = run_experiment(*world_, kind, opts);
    EXPECT_TRUE(armed.faults.enabled) << algo_name(kind);
    EXPECT_EQ(plain.digest, armed.digest) << algo_name(kind);
    EXPECT_EQ(plain.engine_events, armed.engine_events) << algo_name(kind);
    EXPECT_EQ(armed.faults.crashes, 0u);
    EXPECT_EQ(armed.faults.dead_sends, 0u);
  }
}

TEST_F(FaultInjectionTest, ChurnHardensRetriesAndEvictsStaleAds) {
  RunOptions opts;
  opts.faults = heavy_churn();
  opts.audit = true;
  const auto res = run_experiment(*world_, AlgoKind::kAsapRw, opts);
  EXPECT_TRUE(res.faults.enabled);
  EXPECT_GT(res.faults.crashes, 0u);
  EXPECT_GT(res.faults.dead_sends, 0u);
  EXPECT_GT(res.asap_counters.confirm_retries, 0u);
  EXPECT_GT(res.asap_counters.retry_bytes, 0u);
  EXPECT_GT(res.asap_counters.stale_evictions, 0u);
  EXPECT_GT(res.faults.queries_after_onset, 0u);
  EXPECT_GE(res.faults.success_rate_after_onset, 0.0);
  EXPECT_LE(res.faults.success_rate_after_onset, 1.0);
  ASSERT_TRUE(res.audited);
  EXPECT_EQ(res.audit_violations, 0u)
      << (res.audit_messages.empty() ? "" : res.audit_messages.front());
}

TEST_F(FaultInjectionTest, BaselinesPayForSendsIntoTheVoid) {
  RunOptions opts;
  opts.faults = heavy_churn();
  opts.audit = true;
  const auto res = run_experiment(*world_, AlgoKind::kFlooding, opts);
  EXPECT_GT(res.faults.crashes, 0u);
  EXPECT_GT(res.faults.dead_sends, 0u)
      << "flooding must keep paying for transmissions to crashed-but-"
         "undetected neighbors";
  ASSERT_TRUE(res.audited);
  EXPECT_EQ(res.audit_violations, 0u);
}

// Bounded termination, part 1: scalar total blackout. Confirm retries are
// capped and budgeted, so even at loss 1.0 the run completes and audits.
TEST_F(FaultInjectionTest, TotalMessageLossTerminatesWithRetriesOn) {
  RunOptions opts;
  opts.message_loss = 1.0;
  faults::FaultConfig cfg;  // no injected faults, hardening knobs only
  cfg.confirm_attempts = 3;
  cfg.stale_strikes = 2;
  cfg.confirm_backoff = 0.5;
  opts.faults = cfg;
  opts.audit = true;
  const auto res = run_experiment(*world_, AlgoKind::kAsapRw, opts);
  EXPECT_GT(res.engine_events, 0u);
  ASSERT_TRUE(res.audited);
  EXPECT_EQ(res.audit_violations, 0u)
      << (res.audit_messages.empty() ? "" : res.audit_messages.front());
}

// Bounded termination, part 2: a loss-1.0 burst window covering the whole
// run drops every transmission at the fault layer instead.
TEST_F(FaultInjectionTest, TotalBurstBlackoutTerminates) {
  RunOptions opts;
  faults::FaultConfig cfg;
  cfg.bursts = 1;
  cfg.burst_loss = 1.0;
  cfg.burst_duration = 1e6;  // outlasts the horizon
  cfg.confirm_attempts = 3;
  cfg.stale_strikes = 2;
  cfg.confirm_backoff = 0.5;
  opts.faults = cfg;
  opts.audit = true;
  const auto res = run_experiment(*world_, AlgoKind::kAsapRw, opts);
  EXPECT_GT(res.faults.burst_drops, 0u);
  ASSERT_TRUE(res.audited);
  EXPECT_EQ(res.audit_violations, 0u)
      << (res.audit_messages.empty() ? "" : res.audit_messages.front());
}

TEST_F(FaultInjectionTest, FaultRunsAreDeterministic) {
  RunOptions opts;
  opts.faults = heavy_churn();
  const auto a = run_experiment(*world_, AlgoKind::kAsapGsa, opts);
  const auto b = run_experiment(*world_, AlgoKind::kAsapGsa, opts);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.engine_events, b.engine_events);
  EXPECT_EQ(a.faults.dead_sends, b.faults.dead_sends);
  EXPECT_EQ(a.asap_counters.confirm_retries, b.asap_counters.confirm_retries);
  // The injected schedule derives from the world seed alone, so every
  // algorithm faces the same crashes.
  const auto c = run_experiment(*world_, AlgoKind::kFlooding, opts);
  EXPECT_EQ(a.faults.crashes, c.faults.crashes);
  EXPECT_DOUBLE_EQ(a.faults.first_fault_time, c.faults.first_fault_time);
}

// Observability stays passive under faults, and the new span kinds appear.
TEST_F(FaultInjectionTest, TracedFaultRunIsPassiveAndEmitsFaultSpans) {
  RunOptions opts;
  opts.faults = heavy_churn();
  const auto plain = run_experiment(*world_, AlgoKind::kAsapRw, opts);

  std::ostringstream trace_out;
  obs::ObsConfig ocfg;
  ocfg.trace_out = &trace_out;
  obs::RunObserver observer(ocfg);
  opts.observer = &observer;
  const auto traced = run_experiment(*world_, AlgoKind::kAsapRw, opts);
  EXPECT_EQ(plain.digest, traced.digest);
  const std::string trace = trace_out.str();
  EXPECT_NE(trace.find("\"type\":\"fault\""), std::string::npos);
  EXPECT_NE(trace.find("\"kind\":\"crash\""), std::string::npos);
  EXPECT_NE(trace.find("\"type\":\"retry\""), std::string::npos);
  EXPECT_NE(trace.find("\"type\":\"stale-evict\""), std::string::npos);
}

TEST(FaultMatrix, ScenarioAxisSweepsAndSerializes) {
  MatrixSpec spec;
  spec.preset = Preset::kSmall;
  spec.topologies = {TopologyKind::kCrawled};
  spec.algos = {AlgoKind::kAsapRw};
  spec.fault_scenarios = {faults::fault_preset("none"),
                          faults::FaultScenario{"heavy-churn", heavy_churn()}};
  spec.seed = 23;
  spec.trials = 1;
  spec.queries = 200;
  spec.tweak = [](ExperimentConfig& cfg) {
    cfg.content.initial_nodes = 400;
    cfg.content.joiner_nodes = 30;
    cfg.trace.joins = 20;
    cfg.trace.leaves = 20;
    cfg.warmup = 120.0;
  };
  const MatrixResult result = run_matrix(spec);
  ASSERT_EQ(result.cells.size(), 2u);
  ASSERT_EQ(result.trials.size(), 2u);
  EXPECT_EQ(result.cells[0].scenario, "none");
  EXPECT_EQ(result.cells[1].scenario, "heavy-churn");
  EXPECT_NE(result.trials[0].result.digest, result.trials[1].result.digest);

  // Fault metrics appear only in the fault-armed cell.
  const auto has_metric = [](const CellAggregate& cell, const char* name) {
    for (const auto& [k, v] : cell.metrics) {
      (void)v;
      if (k == name) return true;
    }
    return false;
  };
  EXPECT_FALSE(has_metric(result.cells[0], "success_rate_under_churn"));
  EXPECT_TRUE(has_metric(result.cells[1], "success_rate_under_churn"));
  EXPECT_TRUE(has_metric(result.cells[1], "stale_evictions"));
  EXPECT_FALSE(result.trials[0].result.faults.enabled);
  EXPECT_TRUE(result.trials[1].result.faults.enabled);

  // The spec round-trips through results.json, scenarios included.
  const json::Value doc = results_to_json(result);
  const MatrixSpec back = spec_from_json(doc);
  ASSERT_EQ(back.fault_scenarios.size(), 2u);
  EXPECT_EQ(back.fault_scenarios[0].name, "none");
  EXPECT_EQ(back.fault_scenarios[1].name, "heavy-churn");
  EXPECT_DOUBLE_EQ(back.fault_scenarios[1].config.crash_fraction,
                   heavy_churn().crash_fraction);
  // And per-trial fault summaries land in the document.
  const auto& runs = doc.at("trial_runs").as_array();
  EXPECT_EQ(runs[0].find("fault_summary"), nullptr);
  ASSERT_NE(runs[1].find("fault_summary"), nullptr);
  EXPECT_EQ(runs[1].at("faults").as_string(), "heavy-churn");
}

// tests/support/fault_small.json is a committed fault-scenario run
// (asap-rw, crawled, churn preset, seed 42). It documents what hardening
// looks like in results.json and pins the schema: the fault axis, the
// gated fault metrics, and non-zero retry/eviction counters.
TEST(FaultArtifact, CommittedChurnRunHasNonzeroHardeningCounters) {
  std::ifstream in(ASAP_TEST_SUPPORT_DIR "/fault_small.json");
  ASSERT_TRUE(in.good()) << "cannot open tests/support/fault_small.json";
  std::ostringstream buf;
  buf << in.rdbuf();
  const json::Value doc = json::parse(buf.str());
  ASSERT_EQ(doc.at("schema").as_string(), "asap-matrix-results/1");

  const MatrixSpec spec = spec_from_json(doc);
  ASSERT_EQ(spec.fault_scenarios.size(), 1u);
  EXPECT_EQ(spec.fault_scenarios[0].name, "churn");
  EXPECT_TRUE(spec.fault_scenarios[0].config.any());

  const auto& runs = doc.at("trial_runs").as_array();
  ASSERT_FALSE(runs.empty());
  const json::Value& run = runs.front();
  EXPECT_EQ(run.at("faults").as_string(), "churn");
  const json::Value& metrics = run.at("metrics");
  EXPECT_GT(metrics.at("stale_evictions").as_double(), 0.0);
  EXPECT_GT(metrics.at("confirm_retries").as_double(), 0.0);
  EXPECT_GT(metrics.at("retry_overhead_bytes").as_double(), 0.0);
  const json::Value& summary = run.at("fault_summary");
  EXPECT_GT(summary.at("crashes").as_double(), 0.0);
  EXPECT_GT(summary.at("dead_sends").as_double(), 0.0);
  EXPECT_GT(summary.at("queries_after_onset").as_double(), 0.0);
}

TEST(FaultMatrix, SpecWithoutScenarioKeyDefaultsToNone) {
  // Backward compatibility: pre-fault results.json documents have no
  // "fault_scenarios" key and must parse to the single "none" scenario.
  MatrixSpec legacy;
  legacy.algos = {AlgoKind::kFlooding};
  MatrixResult result;
  result.spec = legacy;
  json::Value doc = results_to_json(result);
  auto& spec_obj = doc.as_object();
  for (auto& [key, value] : spec_obj) {
    if (key != "spec") continue;
    auto& inner = value.as_object();
    inner.erase(
        std::remove_if(inner.begin(), inner.end(),
                       [](const auto& kv) {
                         return kv.first == "fault_scenarios";
                       }),
        inner.end());
  }
  const MatrixSpec back = spec_from_json(doc);
  ASSERT_EQ(back.fault_scenarios.size(), 1u);
  EXPECT_EQ(back.fault_scenarios[0].name, "none");
  EXPECT_FALSE(back.fault_scenarios[0].config.any());
}

}  // namespace
}  // namespace asap::harness
