// Observability-layer guarantees over the full replay harness.
//
// The headline contract (tier 1): tracing is provably passive. A run with
// the observer attached — trace spans, counter snapshots, the works —
// produces a digest bit-identical to the same run without it, for every
// algorithm. The remaining tests pin down the JSONL record schema, the
// deterministic sampling behaviour and the profile block.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "harness/replay.hpp"
#include "harness/world.hpp"
#include "obs/observer.hpp"

namespace asap::harness {
namespace {

/// Mirrors determinism_test's tiny world: this suite runs every algorithm
/// at least twice.
ExperimentConfig tiny_config() {
  auto cfg = ExperimentConfig::make(Preset::kSmall, TopologyKind::kCrawled, 11);
  cfg.content.initial_nodes = 400;
  cfg.content.joiner_nodes = 30;
  cfg.trace.num_queries = 300;
  cfg.trace.joins = 20;
  cfg.trace.leaves = 20;
  cfg.warmup = 120.0;
  return cfg;
}

class ObservabilityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new World(build_world(tiny_config()));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};

World* ObservabilityTest::world_ = nullptr;

struct TracedRun {
  std::string trace;
  std::string counters;
  RunResult result;
  std::uint64_t records = 0;
};

TracedRun run_traced(const World& world, AlgoKind kind,
                     std::uint64_t sample = 1, Seconds period = 120.0) {
  std::ostringstream trace_out;
  std::ostringstream counters_out;
  obs::ObsConfig cfg;
  cfg.trace_out = &trace_out;
  cfg.trace_sample = sample;
  cfg.counters_out = &counters_out;
  cfg.snapshot_period = period;
  obs::RunObserver observer(cfg);
  RunOptions opts;
  opts.observer = &observer;
  TracedRun out;
  out.result = run_experiment(world, kind, opts);
  out.trace = trace_out.str();
  out.counters = counters_out.str();
  out.records = observer.trace_records_written();
  return out;
}

std::vector<json::Value> parse_jsonl(const std::string& text) {
  std::vector<json::Value> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_FALSE(line.empty());
    out.push_back(json::parse(line));
  }
  return out;
}

// The tier-1 passivity gate: observing must not change what executed.
TEST_F(ObservabilityTest, TracingDoesNotPerturbTheDigest) {
  for (const auto kind : kAllAlgos) {
    const auto plain = run_experiment(*world_, kind);
    const auto traced = run_traced(*world_, kind);
    EXPECT_NE(plain.digest, 0u) << algo_name(kind);
    EXPECT_EQ(plain.digest, traced.result.digest) << algo_name(kind);
    EXPECT_EQ(plain.engine_events, traced.result.engine_events)
        << algo_name(kind);
    EXPECT_GT(traced.records, 0u) << algo_name(kind);
  }
}

TEST_F(ObservabilityTest, TraceRecordsAreSchemaValidJsonl) {
  const auto traced = run_traced(*world_, AlgoKind::kAsapRw);
  const auto records = parse_jsonl(traced.trace);
  ASSERT_FALSE(records.empty());

  std::set<std::string> types;
  for (const auto& rec : records) {
    const std::string type = rec.at("type").as_string();
    types.insert(type);
    EXPECT_GE(rec.at("t").as_double(), 0.0);
    EXPECT_GE(rec.at("node").as_double(), 0.0);
    if (type == "query") {
      rec.at("success").as_bool();
      rec.at("local_hit").as_bool();
      EXPECT_GE(rec.at("response_s").as_double(), 0.0);
      EXPECT_GE(rec.at("bytes").as_double(), 0.0);
      EXPECT_GE(rec.at("messages").as_double(), 0.0);
      EXPECT_GE(rec.at("results").as_double(), 0.0);
    } else if (type == "ad") {
      const std::string kind = rec.at("kind").as_string();
      EXPECT_TRUE(kind == "full" || kind == "patch" || kind == "refresh")
          << kind;
      EXPECT_GT(rec.at("bytes").as_double(), 0.0);
    } else if (type == "confirm") {
      EXPECT_GE(rec.at("source").as_double(), 0.0);
      const std::string outcome = rec.at("outcome").as_string();
      EXPECT_TRUE(outcome == "positive" || outcome == "negative" ||
                  outcome == "timeout")
          << outcome;
    } else if (type == "churn") {
      const std::string tr = rec.at("transition").as_string();
      EXPECT_TRUE(tr == "join" || tr == "leave" || tr == "rejoin") << tr;
    } else if (type == "fault") {
      const std::string kind = rec.at("kind").as_string();
      EXPECT_TRUE(kind == "crash" || kind == "detect" || kind == "partition" ||
                  kind == "heal" || kind == "burst" || kind == "burst-end")
          << kind;
    } else if (type == "retry") {
      EXPECT_GE(rec.at("source").as_double(), 0.0);
      EXPECT_GE(rec.at("attempt").as_double(), 2.0);
    } else if (type == "stale-evict") {
      EXPECT_GE(rec.at("source").as_double(), 0.0);
    } else {
      FAIL() << "unknown record type " << type;
    }
  }
  // An ASAP run exercises the full lifecycle: queries, ad dissemination,
  // confirmation round trips and churn transitions all appear.
  EXPECT_TRUE(types.count("query"));
  EXPECT_TRUE(types.count("ad"));
  EXPECT_TRUE(types.count("confirm"));
  EXPECT_TRUE(types.count("churn"));
}

TEST_F(ObservabilityTest, CounterSnapshotsAccumulateAndFinalize) {
  const auto traced =
      run_traced(*world_, AlgoKind::kAsapGsa, /*sample=*/1, /*period=*/30.0);
  const auto records = parse_jsonl(traced.counters);
  ASSERT_FALSE(records.empty());

  double last_t = -1.0;
  double last_bytes = -1.0;
  std::size_t snapshots = 0;
  for (const auto& rec : records) {
    const std::string type = rec.at("type").as_string();
    if (type == "counters") {
      ++snapshots;
      const double t = rec.at("t").as_double();
      EXPECT_GE(t, last_t) << "snapshots must be time-ordered";
      last_t = t;
      // Cumulative tallies never decrease.
      double bytes = 0.0;
      for (const auto& [name, cat] : rec.at("categories").as_object()) {
        (void)name;
        bytes += cat.at("bytes").as_double();
      }
      EXPECT_GE(bytes, last_bytes);
      last_bytes = bytes;
      // Confirmation outcomes never exceed attempts.
      const auto& confirms = rec.at("confirms");
      EXPECT_LE(confirms.at("positive").as_double() +
                    confirms.at("timed_out").as_double(),
                confirms.at("sent").as_double());
    } else {
      ASSERT_EQ(type, "node-counters");
      EXPECT_GE(rec.at("node").as_double(), 0.0);
      EXPECT_GE(rec.at("ads_stored").as_double() +
                    rec.at("ads_evicted").as_double() +
                    rec.at("ads_invalidated").as_double() +
                    rec.at("confirms_sent").as_double(),
                0.0);
    }
  }
  // Multiple cadence snapshots plus the final one at the horizon.
  EXPECT_GE(snapshots, 3u);
  EXPECT_GT(last_bytes, 0.0);
}

TEST_F(ObservabilityTest, SamplingIsDeterministicAndThins) {
  const auto full_a = run_traced(*world_, AlgoKind::kAsapFld, 1);
  const auto full_b = run_traced(*world_, AlgoKind::kAsapFld, 1);
  // Same run, same sampling: byte-identical artifacts.
  EXPECT_EQ(full_a.trace, full_b.trace);
  EXPECT_EQ(full_a.counters, full_b.counters);

  const auto thinned = run_traced(*world_, AlgoKind::kAsapFld, 10);
  // Thinning changes what is written, never what executed.
  EXPECT_EQ(thinned.result.digest, full_a.result.digest);
  EXPECT_LT(thinned.records, full_a.records);
  EXPECT_GT(thinned.records, 0u);
  // Roughly one in ten survives (per-kind rounding gives slack).
  EXPECT_LE(thinned.records, full_a.records / 10 + 8);
}

TEST_F(ObservabilityTest, ProfileBlockCoversTheRunPhases) {
  const auto res = run_experiment(*world_, AlgoKind::kAsapRw);
  ASSERT_EQ(res.profile.size(), 3u);
  EXPECT_EQ(res.profile[0].phase, "warm-up");
  EXPECT_EQ(res.profile[1].phase, "query-replay");
  EXPECT_EQ(res.profile[2].phase, "reduce");
  std::uint64_t events = 0;
  double wall = 0.0;
  for (const auto& p : res.profile) {
    EXPECT_GE(p.wall_seconds, 0.0);
    events += p.events;
    wall += p.wall_seconds;
  }
  EXPECT_EQ(events, res.engine_events)
      << "phases must partition the executed events";
  EXPECT_GT(res.profile[1].events, 0u);
  EXPECT_LE(wall, res.wall_seconds + 1e-3);
}

TEST_F(ObservabilityTest, BaselineRunsTraceQueriesToo) {
  const auto traced = run_traced(*world_, AlgoKind::kFlooding);
  const auto records = parse_jsonl(traced.trace);
  std::size_t queries = 0;
  for (const auto& rec : records) {
    if (rec.at("type").as_string() == "query") ++queries;
  }
  EXPECT_EQ(queries, 300u) << "one span per replayed query";
}

}  // namespace
}  // namespace asap::harness
