// ISSUE 8 acceptance gate: the event-loop shard count is a pure speed
// knob. Canonical execution pops the global (time, seq) minimum across
// shard fronts and routes cross-partition schedules through ordered
// mailboxes, so a full protocol replay must produce a bit-identical run
// digest for shards = 1 vs N — for all six algorithms, and under fault
// presets whose crash timers and jittered latencies reshape the event
// population.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "faults/fault_config.hpp"
#include "harness/replay.hpp"
#include "harness/world.hpp"

namespace asap::harness {
namespace {

ExperimentConfig sweep_config() {
  auto cfg = ExperimentConfig::make(Preset::kSmall, TopologyKind::kCrawled, 23);
  cfg.content.initial_nodes = 300;
  cfg.content.joiner_nodes = 20;
  cfg.trace.num_queries = 150;
  cfg.trace.joins = 10;
  cfg.trace.leaves = 10;
  cfg.warmup = 120.0;
  return cfg;
}

class ShardDigestTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new World(build_world(sweep_config()));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};

World* ShardDigestTest::world_ = nullptr;

constexpr std::size_t kShardCounts[] = {1, 2, 8};

TEST_F(ShardDigestTest, AllAlgorithmsMatchDefaultDigestAtEveryShardCount) {
  for (const auto kind : kAllAlgos) {
    const auto base = run_experiment(*world_, kind);
    ASSERT_NE(base.digest, 0u) << algo_name(kind);
    for (const std::size_t shards : kShardCounts) {
      RunOptions opts;
      opts.engine_tuning.shards = shards;
      const auto res = run_experiment(*world_, kind, opts);
      EXPECT_EQ(res.digest, base.digest)
          << algo_name(kind) << " / shards=" << shards;
      EXPECT_EQ(res.engine_events, base.engine_events)
          << algo_name(kind) << " / shards=" << shards;
    }
  }
}

TEST_F(ShardDigestTest, ShardIdentityHoldsUnderFaultPresets) {
  // Crash/detect timers carry owner nodes (they route to real shards) and
  // partition/burst markers are world-global (shard 0) — the mix that
  // exercises every mailbox routing path. One baseline and one ASAP
  // variant keep the runtime bounded, matching engine_digest_test.
  for (const auto kind : {AlgoKind::kFlooding, AlgoKind::kAsapRw}) {
    for (const char* preset : {"churn", "chaos"}) {
      RunOptions base_opts;
      base_opts.faults = faults::fault_preset(preset).config;
      const auto base = run_experiment(*world_, kind, base_opts);
      ASSERT_NE(base.digest, 0u) << algo_name(kind) << " / " << preset;
      for (const std::size_t shards : kShardCounts) {
        RunOptions opts = base_opts;
        opts.engine_tuning.shards = shards;
        const auto res = run_experiment(*world_, kind, opts);
        EXPECT_EQ(res.digest, base.digest)
            << algo_name(kind) << " / " << preset << " / shards=" << shards;
      }
    }
  }
}

TEST_F(ShardDigestTest, ShardsComposeWithQueueAndCallbackTunings) {
  // The shard axis must be orthogonal to the PR 6/7 queue knobs: a
  // sharded ladder-only engine and a sharded forced-pool engine still
  // land on the same digest.
  const auto kind = AlgoKind::kAsapRw;
  const auto base = run_experiment(*world_, kind);
  for (const std::size_t shards : {2u, 8u}) {
    RunOptions opts;
    opts.engine_tuning.shards = shards;
    opts.engine_tuning.ladder_threshold = 0;
    opts.engine_tuning.heap_threshold = 0;
    EXPECT_EQ(run_experiment(*world_, kind, opts).digest, base.digest)
        << "ladder-only / shards=" << shards;
    RunOptions pooled;
    pooled.engine_tuning.shards = shards;
    pooled.engine_tuning.force_heap_callbacks = true;
    EXPECT_EQ(run_experiment(*world_, kind, pooled).digest, base.digest)
        << "forced-pool / shards=" << shards;
  }
}

}  // namespace
}  // namespace asap::harness
