// Integration tests: rejoin churn and loss injection through the full
// replay pipeline.
#include <gtest/gtest.h>

#include "harness/replay.hpp"
#include "harness/world.hpp"

namespace asap::harness {
namespace {

ExperimentConfig churny_config() {
  auto cfg = ExperimentConfig::make(Preset::kSmall, TopologyKind::kCrawled, 9);
  cfg.content.initial_nodes = 600;
  cfg.content.joiner_nodes = 40;
  cfg.trace.num_queries = 600;
  cfg.trace.joins = 30;
  cfg.trace.leaves = 60;
  cfg.trace.rejoin_fraction = 1.0;
  cfg.trace.mean_offline = 15.0;
  cfg.warmup = 120.0;
  return cfg;
}

class ChurnLossTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new World(build_world(churny_config()));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};

World* ChurnLossTest::world_ = nullptr;

TEST_F(ChurnLossTest, TraceContainsRejoins) {
  EXPECT_GT(world_->trace.num_rejoins, 0u);
  EXPECT_LE(world_->trace.num_rejoins, world_->trace.num_leaves);
}

TEST_F(ChurnLossTest, AsapSurvivesHeavySessionChurn) {
  const auto res = run_experiment(*world_, AlgoKind::kAsapRw);
  EXPECT_EQ(res.search.total(), world_->trace.num_queries);
  EXPECT_GT(res.search.success_rate(), 0.6)
      << "rejoin handling (re-advertise + ads request) must keep the "
         "system searchable under heavy churn";
}

TEST_F(ChurnLossTest, RejoinsReattachOverlayNodes) {
  // The replay must not throw on rejoin events (overlay reattach path) and
  // the baseline must keep finding content that left and came back.
  const auto res = run_experiment(*world_, AlgoKind::kFlooding);
  EXPECT_GT(res.search.success_rate(), 0.6);
}

TEST_F(ChurnLossTest, LossDegradesFloodingMoreThanAsap) {
  RunOptions lossy;
  lossy.message_loss = 0.25;
  const auto flood_clean = run_experiment(*world_, AlgoKind::kFlooding);
  const auto flood_lossy =
      run_experiment(*world_, AlgoKind::kFlooding, lossy);
  const auto asap_clean = run_experiment(*world_, AlgoKind::kAsapRw);
  const auto asap_lossy = run_experiment(*world_, AlgoKind::kAsapRw, lossy);

  const double flood_drop =
      flood_clean.search.success_rate() - flood_lossy.search.success_rate();
  const double asap_drop =
      asap_clean.search.success_rate() - asap_lossy.search.success_rate();
  EXPECT_GT(flood_drop, 0.0);
  EXPECT_LT(asap_drop, flood_drop)
      << "reliable confirmations + fallback must shed loss better than "
         "redundant flooding";
}

TEST_F(ChurnLossTest, LossOptionValidated) {
  RunOptions bad;
  bad.message_loss = 1.001;
  EXPECT_THROW(run_experiment(*world_, AlgoKind::kFlooding, bad),
               ConfigError);
  bad.message_loss = -0.1;
  EXPECT_THROW(run_experiment(*world_, AlgoKind::kFlooding, bad),
               ConfigError);
}

TEST_F(ChurnLossTest, ZeroLossReproducesTheLossFreeDigestBitForBit) {
  // loss=0.0 must not even touch the RNG (transmission_lost()
  // short-circuits), so the digest matches the default run exactly.
  RunOptions zero_loss;
  zero_loss.message_loss = 0.0;
  for (const auto kind : {AlgoKind::kFlooding, AlgoKind::kAsapRw}) {
    const auto plain = run_experiment(*world_, kind);
    const auto lossy = run_experiment(*world_, kind, zero_loss);
    EXPECT_EQ(plain.digest, lossy.digest) << algo_name(kind);
    EXPECT_EQ(plain.engine_events, lossy.engine_events) << algo_name(kind);
  }
}

TEST_F(ChurnLossTest, TotalLossTerminatesAndAuditsClean) {
  // loss=1.0 is a valid blackout scenario: every transmission is dropped,
  // but senders still pay for each attempt, budgets still burn down, and
  // the run must reach the horizon with conservation intact.
  RunOptions blackout;
  blackout.message_loss = 1.0;
  blackout.audit = true;
  for (const auto kind : kAllAlgos) {
    const auto res = run_experiment(*world_, kind, blackout);
    EXPECT_EQ(res.search.total(), world_->trace.num_queries)
        << algo_name(kind);
    EXPECT_TRUE(res.audited) << algo_name(kind);
    EXPECT_EQ(res.audit_violations, 0u)
        << algo_name(kind) << ": "
        << (res.audit_messages.empty() ? "" : res.audit_messages.front());
    // Nothing ever crosses the network — warm-up ad dissemination is
    // lossy too, so even ASAP's caches stay empty and no search succeeds.
    EXPECT_DOUBLE_EQ(res.search.success_rate(), 0.0) << algo_name(kind);
  }
}

TEST_F(ChurnLossTest, IntermediateLossIsDeterministicUnderAFixedSeed) {
  RunOptions lossy;
  lossy.message_loss = 0.37;
  const auto a = run_experiment(*world_, AlgoKind::kAsapRw, lossy);
  const auto b = run_experiment(*world_, AlgoKind::kAsapRw, lossy);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.engine_events, b.engine_events);
  EXPECT_DOUBLE_EQ(a.search.success_rate(), b.search.success_rate());
  // And the loss dice are really being rolled: the digest differs from
  // the loss-free stream.
  const auto clean = run_experiment(*world_, AlgoKind::kAsapRw);
  EXPECT_NE(a.digest, clean.digest);
}

}  // namespace
}  // namespace asap::harness
