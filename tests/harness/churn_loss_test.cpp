// Integration tests: rejoin churn and loss injection through the full
// replay pipeline.
#include <gtest/gtest.h>

#include "harness/replay.hpp"
#include "harness/world.hpp"

namespace asap::harness {
namespace {

ExperimentConfig churny_config() {
  auto cfg = ExperimentConfig::make(Preset::kSmall, TopologyKind::kCrawled, 9);
  cfg.content.initial_nodes = 600;
  cfg.content.joiner_nodes = 40;
  cfg.trace.num_queries = 600;
  cfg.trace.joins = 30;
  cfg.trace.leaves = 60;
  cfg.trace.rejoin_fraction = 1.0;
  cfg.trace.mean_offline = 15.0;
  cfg.warmup = 120.0;
  return cfg;
}

class ChurnLossTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new World(build_world(churny_config()));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};

World* ChurnLossTest::world_ = nullptr;

TEST_F(ChurnLossTest, TraceContainsRejoins) {
  EXPECT_GT(world_->trace.num_rejoins, 0u);
  EXPECT_LE(world_->trace.num_rejoins, world_->trace.num_leaves);
}

TEST_F(ChurnLossTest, AsapSurvivesHeavySessionChurn) {
  const auto res = run_experiment(*world_, AlgoKind::kAsapRw);
  EXPECT_EQ(res.search.total(), world_->trace.num_queries);
  EXPECT_GT(res.search.success_rate(), 0.6)
      << "rejoin handling (re-advertise + ads request) must keep the "
         "system searchable under heavy churn";
}

TEST_F(ChurnLossTest, RejoinsReattachOverlayNodes) {
  // The replay must not throw on rejoin events (overlay reattach path) and
  // the baseline must keep finding content that left and came back.
  const auto res = run_experiment(*world_, AlgoKind::kFlooding);
  EXPECT_GT(res.search.success_rate(), 0.6);
}

TEST_F(ChurnLossTest, LossDegradesFloodingMoreThanAsap) {
  RunOptions lossy;
  lossy.message_loss = 0.25;
  const auto flood_clean = run_experiment(*world_, AlgoKind::kFlooding);
  const auto flood_lossy =
      run_experiment(*world_, AlgoKind::kFlooding, lossy);
  const auto asap_clean = run_experiment(*world_, AlgoKind::kAsapRw);
  const auto asap_lossy = run_experiment(*world_, AlgoKind::kAsapRw, lossy);

  const double flood_drop =
      flood_clean.search.success_rate() - flood_lossy.search.success_rate();
  const double asap_drop =
      asap_clean.search.success_rate() - asap_lossy.search.success_rate();
  EXPECT_GT(flood_drop, 0.0);
  EXPECT_LT(asap_drop, flood_drop)
      << "reliable confirmations + fallback must shed loss better than "
         "redundant flooding";
}

TEST_F(ChurnLossTest, LossOptionValidated) {
  RunOptions bad;
  bad.message_loss = 1.0;
  EXPECT_THROW(run_experiment(*world_, AlgoKind::kFlooding, bad),
               ConfigError);
  bad.message_loss = -0.1;
  EXPECT_THROW(run_experiment(*world_, AlgoKind::kFlooding, bad),
               ConfigError);
}

}  // namespace
}  // namespace asap::harness
