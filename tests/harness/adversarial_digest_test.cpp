// Determinism gate for the adversarial fault domain: Byzantine roles,
// storm schedules and the trust/overload defenses are all compiled from
// seeded plans and per-node RNG streams, so an adversarial run must be a
// pure function of (world, seed) — bit-identical across event-loop shard
// counts and across both execution-policy digest families (counter keys
// and causal keys), exactly like the crash/partition presets before it.
#include <gtest/gtest.h>

#include <cstddef>

#include "faults/fault_config.hpp"
#include "harness/replay.hpp"
#include "harness/world.hpp"

namespace asap::harness {
namespace {

ExperimentConfig sweep_config() {
  auto cfg = ExperimentConfig::make(Preset::kSmall, TopologyKind::kCrawled, 29);
  cfg.content.initial_nodes = 300;
  cfg.content.joiner_nodes = 20;
  cfg.trace.num_queries = 150;
  cfg.trace.joins = 10;
  cfg.trace.leaves = 10;
  cfg.warmup = 120.0;
  return cfg;
}

class AdversarialDigestTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new World(build_world(sweep_config()));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};

World* AdversarialDigestTest::world_ = nullptr;

constexpr std::size_t kShardCounts[] = {1, 2, 8};
constexpr const char* kPresets[] = {"polluted", "storm", "byzantine"};

TEST_F(AdversarialDigestTest, PresetsDigestIdenticallyAcrossShardsAndKeys) {
  for (const char* preset : kPresets) {
    RunOptions base_opts;
    base_opts.faults = faults::fault_preset(preset).config;
    for (const bool causal : {false, true}) {
      base_opts.engine_tuning.causal_keys = causal;
      base_opts.engine_tuning.shards = 1;
      const auto base =
          run_experiment(*world_, AlgoKind::kAsapRw, base_opts);
      ASSERT_NE(base.digest, 0u) << preset << " / causal=" << causal;
      for (const std::size_t shards : kShardCounts) {
        RunOptions opts = base_opts;
        opts.engine_tuning.shards = shards;
        const auto res = run_experiment(*world_, AlgoKind::kAsapRw, opts);
        EXPECT_EQ(res.digest, base.digest)
            << preset << " / causal=" << causal << " / shards=" << shards;
        EXPECT_EQ(res.engine_events, base.engine_events)
            << preset << " / causal=" << causal << " / shards=" << shards;
      }
    }
  }
}

TEST_F(AdversarialDigestTest, AdversariesActuallyActAndDefensesEngage) {
  // The digest gate above is vacuous if the roles never fire; pin the
  // fault summary so a refactor cannot silently disarm the adversaries.
  RunOptions opts;
  opts.faults = faults::fault_preset("byzantine").config;
  const auto res = run_experiment(*world_, AlgoKind::kAsapRw, opts);
  EXPECT_TRUE(res.faults.enabled);
  EXPECT_TRUE(res.faults.adversarial);
  EXPECT_GT(res.faults.polluters, 0u);
  EXPECT_GT(res.faults.stale_advertisers, 0u);
  EXPECT_GT(res.faults.confirm_droppers, 0u);
  EXPECT_GT(res.faults.storm_queries, 0u);
  EXPECT_GT(res.faults.polluted_ads, 0u);
  EXPECT_GT(res.faults.trust_strikes, 0u);
}

TEST_F(AdversarialDigestTest, ArmedZeroRoleConfigKeepsVanillaDigest) {
  // An armed injector whose adversary rates are all zero (and defenses
  // off) must leave the digest bit-identical to the unarmed run — the
  // adversarial subsystem's analogue of the zero-rate determinism guard,
  // and the reason legacy goldens survive this PR unchanged.
  const auto vanilla = run_experiment(*world_, AlgoKind::kAsapRw);
  RunOptions opts;
  opts.faults = faults::FaultConfig{};  // armed, all rates zero
  const auto armed = run_experiment(*world_, AlgoKind::kAsapRw, opts);
  EXPECT_EQ(armed.digest, vanilla.digest);
  EXPECT_FALSE(armed.faults.adversarial);
}

}  // namespace
}  // namespace asap::harness
