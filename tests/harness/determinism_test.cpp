// Determinism and invariant-audit coverage for the full replay harness:
// two runs of the same world must produce bit-identical digests, and an
// audited run of every algorithm must finish with zero violations.
#include <gtest/gtest.h>

#include "harness/replay.hpp"
#include "harness/world.hpp"

namespace asap::harness {
namespace {

/// Smaller than replay_test's world: this suite runs every algorithm twice.
ExperimentConfig tiny_config() {
  auto cfg = ExperimentConfig::make(Preset::kSmall, TopologyKind::kCrawled, 11);
  cfg.content.initial_nodes = 400;
  cfg.content.joiner_nodes = 30;
  cfg.trace.num_queries = 300;
  cfg.trace.joins = 20;
  cfg.trace.leaves = 20;
  cfg.warmup = 120.0;
  return cfg;
}

class DeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { world_ = new World(build_world(tiny_config())); }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};

World* DeterminismTest::world_ = nullptr;

TEST_F(DeterminismTest, IdenticalRunsProduceIdenticalDigests) {
  for (const auto kind : kAllAlgos) {
    const auto a = run_experiment(*world_, kind);
    const auto b = run_experiment(*world_, kind);
    EXPECT_NE(a.digest, 0u) << algo_name(kind);
    EXPECT_EQ(a.digest, b.digest) << algo_name(kind);
    EXPECT_EQ(a.engine_events, b.engine_events) << algo_name(kind);
  }
}

TEST_F(DeterminismTest, DifferentAlgorithmsProduceDifferentDigests) {
  const auto fld = run_experiment(*world_, AlgoKind::kFlooding);
  const auto rw = run_experiment(*world_, AlgoKind::kRandomWalk);
  EXPECT_NE(fld.digest, rw.digest);
}

TEST_F(DeterminismTest, SeedSaltChangesTheDigest) {
  RunOptions a, b;
  b.seed_salt = 1;
  EXPECT_NE(run_experiment(*world_, AlgoKind::kAsapRw, a).digest,
            run_experiment(*world_, AlgoKind::kAsapRw, b).digest);
}

TEST_F(DeterminismTest, AuditedRunsAreViolationFree) {
  RunOptions opts;
  opts.audit = true;
  for (const auto kind : kAllAlgos) {
    const auto res = run_experiment(*world_, kind, opts);
    EXPECT_TRUE(res.audited) << algo_name(kind);
    EXPECT_EQ(res.audit_violations, 0u)
        << algo_name(kind) << ": "
        << (res.audit_messages.empty() ? "" : res.audit_messages.front());
  }
}

TEST_F(DeterminismTest, AuditHoldsUnderMessageLoss) {
  // Dropped messages must be accounted (sent bytes are charged at the
  // sender even when the copy is lost), so the conservation invariants
  // hold with loss enabled too.
  RunOptions opts;
  opts.audit = true;
  opts.message_loss = 0.1;
  for (const auto kind : {AlgoKind::kFlooding, AlgoKind::kAsapRw}) {
    const auto res = run_experiment(*world_, kind, opts);
    EXPECT_EQ(res.audit_violations, 0u)
        << algo_name(kind) << ": "
        << (res.audit_messages.empty() ? "" : res.audit_messages.front());
  }
}

TEST_F(DeterminismTest, AuditingDoesNotPerturbTheDigest) {
  // All six algorithms: the audit hooks (and, in ASAP_AUDIT builds, the
  // hashed-scan and popcount oracles) must be pure observers — bit-for-bit
  // identical digests with auditing on and off.
  RunOptions audited;
  audited.audit = true;
  for (const auto kind : kAllAlgos) {
    const auto plain = run_experiment(*world_, kind);
    const auto checked = run_experiment(*world_, kind, audited);
    EXPECT_EQ(plain.digest, checked.digest) << algo_name(kind);
  }
}

}  // namespace
}  // namespace asap::harness
