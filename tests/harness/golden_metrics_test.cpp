// Golden-metrics regression gate.
//
// tests/support/golden_small.json is a committed results.json produced by
// the matrix runner on the kSmall preset (all six algorithms, crawled
// topology, seed 42). This test re-runs the exact spec recorded in the
// file and diffs every per-trial digest and every headline metric against
// it, so "did PR X silently change Fig 4-9?" is a red test with a
// readable diff instead of an eyeball check.
//
// When a change is *intentional*, refresh the baseline and commit it
// (EXPERIMENTS.md, "Matrix runner" section):
//
//   build/tools/asap_sim --matrix --preset small --topology crawled \
//     --algo all --seed 42 --trials 1 --json tests/support/golden_small.json
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "harness/matrix_runner.hpp"

namespace asap::harness {
namespace {

constexpr const char* kGoldenPath =
    ASAP_TEST_SUPPORT_DIR "/golden_small.json";
constexpr const char* kRefreshHint =
    "\nIf this change is intentional, refresh the baseline:\n"
    "  build/tools/asap_sim --matrix --preset small --topology crawled "
    "--algo all --seed 42 --trials 1 --json "
    "tests/support/golden_small.json\n";

json::Value load_golden() {
  std::ifstream in(kGoldenPath);
  EXPECT_TRUE(in.good()) << "cannot open " << kGoldenPath;
  std::ostringstream buf;
  buf << in.rdbuf();
  return json::parse(buf.str());
}

/// Deterministic replays should match the baseline exactly (the writer's
/// doubles round-trip); the epsilon only absorbs text-formatting slack.
bool near(double a, double b) {
  return std::abs(a - b) <= 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
}

TEST(GoldenMetrics, SmallPresetMatchesCommittedBaseline) {
  const json::Value golden = load_golden();
  ASSERT_EQ(golden.at("schema").as_string(), "asap-matrix-results/1");

  // Re-run exactly the spec the baseline records.
  MatrixSpec spec = spec_from_json(golden);
  const MatrixResult actual = run_matrix(spec);

  const auto& golden_cells = golden.at("cells").as_array();
  ASSERT_EQ(actual.cells.size(), golden_cells.size())
      << "cell count drifted from the baseline" << kRefreshHint;

  for (std::size_t i = 0; i < golden_cells.size(); ++i) {
    const json::Value& want = golden_cells[i];
    const CellAggregate& got = actual.cells[i];
    const std::string label = want.at("topology").as_string() + "/" +
                              want.at("algo").as_string();
    EXPECT_EQ(topology_name(got.topology), want.at("topology").as_string());
    EXPECT_EQ(algo_name(got.algo), want.at("algo").as_string());

    const auto& want_digests = want.at("digests").as_array();
    ASSERT_EQ(got.digests.size(), want_digests.size()) << label;
    for (std::size_t k = 0; k < want_digests.size(); ++k) {
      EXPECT_EQ(got.digests[k], want_digests[k].u64_hex())
          << label << " trial " << k << ": run digest drifted (golden "
          << want_digests[k].as_string() << ", actual "
          << json::hex_u64(got.digests[k])
          << ") — the simulation executes differently now" << kRefreshHint;
    }

    const json::Value& want_metrics = want.at("metrics");
    for (const auto& [name, summary] : got.metrics) {
      const json::Value* want_metric = want_metrics.find(name);
      ASSERT_NE(want_metric, nullptr)
          << label << ": metric " << name << " missing from baseline"
          << kRefreshHint;
      const double want_mean = want_metric->at("mean").as_double();
      EXPECT_TRUE(near(summary.mean, want_mean))
          << label << " " << name << ": golden mean " << want_mean
          << ", actual " << summary.mean << kRefreshHint;
      const double want_sd = want_metric->at("stddev").as_double();
      EXPECT_TRUE(near(summary.stddev, want_sd))
          << label << " " << name << ": golden stddev " << want_sd
          << ", actual " << summary.stddev << kRefreshHint;
    }
  }

  EXPECT_EQ(actual.matrix_digest, golden.at("matrix_digest").u64_hex())
      << "matrix digest drifted (golden "
      << golden.at("matrix_digest").as_string() << ", actual "
      << json::hex_u64(actual.matrix_digest) << ")" << kRefreshHint;
}

}  // namespace
}  // namespace asap::harness
