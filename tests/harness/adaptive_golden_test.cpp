// Golden gate for the adaptive advertisement variants.
//
// tests/support/adaptive_small.json is a committed matrix run of
// asap(rw) + asap-adaptive + asap-delta on the kSmall preset under the
// churn fault preset (crawled topology, seed 42, 1,000 queries). This test
//   1. replays the exact recorded spec and diffs every digest and metric
//      (the adaptive twins of the golden-metrics gate), and
//   2. pins the headline acceptance claim on the artifact itself: the
//      adaptive scheduler spends >= 25% fewer advertisement bytes than
//      vanilla ASAP(RW) at equal (+/- 1 pp) success under churn.
//
// When a change is intentional, refresh the baseline and commit it:
//
//   build/tools/asap_sim --matrix --preset small --topology crawled
//     --algo asap-rw,asap-adaptive,asap-delta --seed 42 --trials 1
//     --queries 1000 --faults churn --json tests/support/adaptive_small.json
//   (one command line; wrapped here for width)
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "harness/matrix_runner.hpp"

namespace asap::harness {
namespace {

constexpr const char* kGoldenPath =
    ASAP_TEST_SUPPORT_DIR "/adaptive_small.json";
constexpr const char* kRefreshHint =
    "\nIf this change is intentional, refresh the baseline:\n"
    "  build/tools/asap_sim --matrix --preset small --topology crawled "
    "--algo asap-rw,asap-adaptive,asap-delta --seed 42 --trials 1 "
    "--queries 1000 --faults churn --json "
    "tests/support/adaptive_small.json\n";

json::Value load_golden() {
  std::ifstream in(kGoldenPath);
  EXPECT_TRUE(in.good()) << "cannot open " << kGoldenPath;
  std::ostringstream buf;
  buf << in.rdbuf();
  return json::parse(buf.str());
}

bool near(double a, double b) {
  return std::abs(a - b) <= 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
}

TEST(AdaptiveGolden, ChurnMatrixMatchesCommittedBaseline) {
  const json::Value golden = load_golden();
  ASSERT_EQ(golden.at("schema").as_string(), "asap-matrix-results/1");

  MatrixSpec spec = spec_from_json(golden);
  const MatrixResult actual = run_matrix(spec);

  const auto& golden_cells = golden.at("cells").as_array();
  ASSERT_EQ(actual.cells.size(), golden_cells.size())
      << "cell count drifted from the baseline" << kRefreshHint;

  for (std::size_t i = 0; i < golden_cells.size(); ++i) {
    const json::Value& want = golden_cells[i];
    const CellAggregate& got = actual.cells[i];
    const std::string label = want.at("topology").as_string() + "/" +
                              want.at("algo").as_string();
    EXPECT_EQ(algo_name(got.algo), want.at("algo").as_string());

    const auto& want_digests = want.at("digests").as_array();
    ASSERT_EQ(got.digests.size(), want_digests.size()) << label;
    for (std::size_t k = 0; k < want_digests.size(); ++k) {
      EXPECT_EQ(got.digests[k], want_digests[k].u64_hex())
          << label << " trial " << k << ": run digest drifted (golden "
          << want_digests[k].as_string() << ", actual "
          << json::hex_u64(got.digests[k]) << ")" << kRefreshHint;
    }

    const json::Value& want_metrics = want.at("metrics");
    for (const auto& [name, summary] : got.metrics) {
      const json::Value* want_metric = want_metrics.find(name);
      ASSERT_NE(want_metric, nullptr)
          << label << ": metric " << name << " missing from baseline"
          << kRefreshHint;
      EXPECT_TRUE(near(summary.mean, want_metric->at("mean").as_double()))
          << label << " " << name << ": golden mean "
          << want_metric->at("mean").as_double() << ", actual "
          << summary.mean << kRefreshHint;
    }
  }

  EXPECT_EQ(actual.matrix_digest, golden.at("matrix_digest").u64_hex())
      << "matrix digest drifted" << kRefreshHint;
}

// The acceptance claim, checked against the committed artifact so a
// refreshed baseline cannot silently regress the savings.
TEST(AdaptiveGolden, AdaptiveSavesAdBytesAtEqualSuccessUnderChurn) {
  const json::Value golden = load_golden();
  std::map<std::string, const json::Value*> by_algo;
  for (const auto& run : golden.at("trial_runs").as_array()) {
    by_algo[run.at("algo").as_string()] = &run.at("metrics");
  }
  ASSERT_TRUE(by_algo.count("asap(rw)")) << kRefreshHint;
  ASSERT_TRUE(by_algo.count("asap-adaptive")) << kRefreshHint;
  ASSERT_TRUE(by_algo.count("asap-delta")) << kRefreshHint;

  const auto metric = [&](const char* algo, const char* name) {
    const json::Value* v = by_algo.at(algo)->find(name);
    EXPECT_NE(v, nullptr) << algo << " lacks metric " << name << kRefreshHint;
    return v ? v->as_double() : 0.0;
  };

  const double vanilla_bytes = metric("asap(rw)", "ad_bytes_total");
  const double vanilla_success = metric("asap(rw)", "success_rate");
  ASSERT_GT(vanilla_bytes, 0.0);

  for (const char* algo : {"asap-adaptive", "asap-delta"}) {
    SCOPED_TRACE(algo);
    const double bytes = metric(algo, "ad_bytes_total");
    const double success = metric(algo, "success_rate");
    // >= 25% fewer advertisement bytes than vanilla...
    EXPECT_LE(bytes, 0.75 * vanilla_bytes)
        << "ad-byte savings fell below the 25% acceptance floor"
        << kRefreshHint;
    // ...at equal success (within one percentage point).
    EXPECT_NEAR(success, vanilla_success, 0.01) << kRefreshHint;
    // The savings must come from the packed-round machinery actually
    // running, not from ads silently not being sent.
    EXPECT_GT(metric(algo, "ad_bytes_packed"), 0.0);
    EXPECT_GT(metric(algo, "ad_rounds"), 0.0);
  }

  // Vanilla rows must NOT carry the adaptive-only metrics: the gated
  // metric set is what keeps pre-existing goldens byte-compatible.
  EXPECT_EQ(by_algo.at("asap(rw)")->find("ad_bytes_packed"), nullptr);
  EXPECT_EQ(by_algo.at("asap(rw)")->find("ad_rounds"), nullptr);
}

}  // namespace
}  // namespace asap::harness
