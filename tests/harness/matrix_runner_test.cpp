// MatrixRunner contract: bit-identical results regardless of parallelism,
// canonical trial seeding, stable ordering, and a results.json that
// round-trips through the JSON module.
#include "harness/matrix_runner.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/json.hpp"

namespace asap::harness {
namespace {

/// Shrinks every world the spec builds to keep the suite fast; the runner
/// itself never sees preset-sized state in these tests.
void shrink(ExperimentConfig& cfg) {
  cfg.content.initial_nodes = 300;
  cfg.content.joiner_nodes = 20;
  cfg.trace.num_queries = 200;
  cfg.trace.joins = 10;
  cfg.trace.leaves = 10;
  cfg.warmup = 120.0;
}

MatrixSpec tiny_spec() {
  MatrixSpec spec;
  spec.preset = Preset::kSmall;
  spec.topologies = {TopologyKind::kCrawled};
  spec.algos = {AlgoKind::kFlooding, AlgoKind::kAsapRw};
  spec.seed = 7;
  spec.trials = 2;
  spec.tweak = shrink;
  return spec;
}

TEST(TrialSeedSalt, TrialZeroIsUnsalted) {
  EXPECT_EQ(trial_seed_salt(0), 0u);
}

TEST(TrialSeedSalt, LaterTrialsAreDistinct) {
  std::set<std::uint64_t> salts;
  for (std::uint32_t k = 0; k < 64; ++k) salts.insert(trial_seed_salt(k));
  EXPECT_EQ(salts.size(), 64u);
  // Stable across calls — this is a published derivation, not a cache.
  EXPECT_EQ(trial_seed_salt(3), trial_seed_salt(3));
}

TEST(MatrixRunner, JobsDoNotChangeAnyDigest) {
  auto spec = tiny_spec();
  spec.jobs = 1;
  const auto sequential = run_matrix(spec);
  spec.jobs = 4;
  const auto parallel = run_matrix(spec);

  ASSERT_EQ(sequential.trials.size(), parallel.trials.size());
  for (std::size_t i = 0; i < sequential.trials.size(); ++i) {
    const auto& a = sequential.trials[i];
    const auto& b = parallel.trials[i];
    EXPECT_EQ(a.result.digest, b.result.digest)
        << topology_name(a.topology) << '/' << algo_name(a.algo) << " trial "
        << a.trial;
    EXPECT_EQ(a.result.engine_events, b.result.engine_events);
  }
  EXPECT_EQ(sequential.matrix_digest, parallel.matrix_digest);
  EXPECT_NE(sequential.matrix_digest, 0u);
}

TEST(MatrixRunner, TrialZeroMatchesAPlainRun) {
  auto spec = tiny_spec();
  spec.trials = 1;
  spec.algos = {AlgoKind::kAsapRw};
  const auto matrix = run_matrix(spec);

  auto cfg = ExperimentConfig::make(spec.preset, TopologyKind::kCrawled,
                                    spec.seed);
  shrink(cfg);
  const auto plain = run_experiment(build_world(cfg), AlgoKind::kAsapRw);

  ASSERT_EQ(matrix.trials.size(), 1u);
  EXPECT_EQ(matrix.trials[0].world_seed, spec.seed);
  EXPECT_EQ(matrix.trials[0].result.digest, plain.digest)
      << "trial 0 must be the unsalted canonical run";
}

TEST(MatrixRunner, TrialsAreIndependentlySeeded) {
  auto spec = tiny_spec();
  spec.algos = {AlgoKind::kFlooding};
  spec.trials = 3;
  const auto result = run_matrix(spec);

  std::set<std::uint64_t> digests;
  for (const auto& run : result.trials) digests.insert(run.result.digest);
  EXPECT_EQ(digests.size(), 3u) << "trials must not repeat each other";
}

TEST(MatrixRunner, CanonicalOrderingAndAggregates) {
  const auto result = run_matrix(tiny_spec());

  ASSERT_EQ(result.trials.size(), 4u);  // 1 topo x 2 algos x 2 trials
  EXPECT_EQ(result.trials[0].algo, AlgoKind::kFlooding);
  EXPECT_EQ(result.trials[0].trial, 0u);
  EXPECT_EQ(result.trials[1].algo, AlgoKind::kFlooding);
  EXPECT_EQ(result.trials[1].trial, 1u);
  EXPECT_EQ(result.trials[2].algo, AlgoKind::kAsapRw);
  EXPECT_EQ(result.trials[3].trial, 1u);

  ASSERT_EQ(result.cells.size(), 2u);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.trials, 2u);
    ASSERT_EQ(cell.digests.size(), 2u);
    ASSERT_FALSE(cell.metrics.empty());
    for (const auto& [name, summary] : cell.metrics) {
      EXPECT_EQ(summary.count, 2u) << name;
      EXPECT_LE(summary.min, summary.mean) << name;
      EXPECT_LE(summary.mean, summary.max) << name;
      EXPECT_GE(summary.stddev, 0.0) << name;
    }
  }
  // Cell digests mirror the trial slots.
  EXPECT_EQ(result.cells[0].digests[1], result.trials[1].result.digest);
}

TEST(MatrixRunner, ResultsJsonRoundTripsTheSpec) {
  auto spec = tiny_spec();
  spec.queries = 200;
  spec.options.message_loss = 0.05;
  spec.options.audit = true;
  const auto result = run_matrix(spec);

  const auto doc = json::parse(json::dump(results_to_json(result)));
  EXPECT_EQ(doc.at("schema").as_string(), "asap-matrix-results/1");
  EXPECT_EQ(doc.at("matrix_digest").u64_hex(), result.matrix_digest);

  const auto parsed = spec_from_json(doc);
  EXPECT_EQ(parsed.preset, spec.preset);
  EXPECT_EQ(parsed.topologies, spec.topologies);
  EXPECT_EQ(parsed.algos, spec.algos);
  EXPECT_EQ(parsed.seed, spec.seed);
  EXPECT_EQ(parsed.trials, spec.trials);
  EXPECT_EQ(parsed.queries, spec.queries);
  EXPECT_DOUBLE_EQ(parsed.options.message_loss, spec.options.message_loss);
  EXPECT_TRUE(parsed.options.audit);

  const auto& cells = doc.at("cells").as_array();
  ASSERT_EQ(cells.size(), result.cells.size());
  EXPECT_EQ(cells[0].at("digests").as_array()[0].u64_hex(),
            result.cells[0].digests[0]);
  // Audited runs must have come back clean.
  for (const auto& run : result.trials) {
    EXPECT_TRUE(run.result.audited);
    EXPECT_EQ(run.result.audit_violations, 0u);
  }
}

TEST(MatrixRunner, RejectsDegenerateSpecs) {
  auto spec = tiny_spec();
  spec.trials = 0;
  EXPECT_THROW(run_matrix(spec), ConfigError);
  spec = tiny_spec();
  spec.algos.clear();
  EXPECT_THROW(run_matrix(spec), ConfigError);
  spec = tiny_spec();
  spec.topologies.clear();
  EXPECT_THROW(run_matrix(spec), ConfigError);
  spec = tiny_spec();
  spec.options.seed_salt = 5;  // reserved for the runner's own derivation
  EXPECT_THROW(run_matrix(spec), ConfigError);
}

}  // namespace
}  // namespace asap::harness
