#include "harness/replay.hpp"

#include <gtest/gtest.h>

#include "harness/world.hpp"

namespace asap::harness {
namespace {

/// A reduced world so the full 6-algorithm replay stays fast in CI.
ExperimentConfig test_config(TopologyKind topo = TopologyKind::kCrawled) {
  auto cfg = ExperimentConfig::make(Preset::kSmall, topo, 7);
  cfg.content.initial_nodes = 600;
  cfg.content.joiner_nodes = 40;
  cfg.trace.num_queries = 600;
  cfg.trace.joins = 30;
  cfg.trace.leaves = 30;
  cfg.warmup = 120.0;
  return cfg;
}

class ReplayTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new World(build_world(test_config()));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};

World* ReplayTest::world_ = nullptr;

TEST_F(ReplayTest, WorldIsConsistent) {
  EXPECT_EQ(world_->node_phys.size(), world_->model.total_node_slots());
  EXPECT_EQ(world_->base_overlay.num_nodes(),
            world_->cfg.content.initial_nodes);
  EXPECT_TRUE(world_->base_overlay.connected());
  EXPECT_EQ(world_->trace.num_queries, world_->cfg.trace.num_queries);
  // Every node slot maps to a distinct physical node.
  auto phys = world_->node_phys;
  std::sort(phys.begin(), phys.end());
  EXPECT_EQ(std::adjacent_find(phys.begin(), phys.end()), phys.end());
}

TEST_F(ReplayTest, FloodingBaselineProducesPaperShapedMetrics) {
  const auto res = run_experiment(*world_, AlgoKind::kFlooding);
  EXPECT_EQ(res.search.total(), world_->trace.num_queries);
  EXPECT_GT(res.search.success_rate(), 0.75);
  EXPECT_GT(res.search.avg_response_time(), 0.0);
  EXPECT_GT(res.load.mean_bytes_per_node_per_sec, 0.0);
  EXPECT_EQ(res.algo, "flooding");
}

TEST_F(ReplayTest, AsapRwBeatsFloodingOnCostAndLoad) {
  const auto flooding = run_experiment(*world_, AlgoKind::kFlooding);
  const auto asap = run_experiment(*world_, AlgoKind::kAsapRw);
  // The paper's headline claims, as shape assertions:
  // response time >= 62% shorter is hardware-specific; require "shorter".
  EXPECT_LT(asap.search.avg_response_time(),
            flooding.search.avg_response_time());
  // Search cost: 2-3 orders of magnitude lower (require >= 1.5 orders).
  EXPECT_LT(asap.search.avg_cost_bytes(),
            flooding.search.avg_cost_bytes() / 30.0);
  // System load lower, with smaller variance.
  EXPECT_LT(asap.load.mean_bytes_per_node_per_sec,
            flooding.load.mean_bytes_per_node_per_sec);
  EXPECT_LT(asap.load.stddev_bytes_per_node_per_sec,
            flooding.load.stddev_bytes_per_node_per_sec);
  // And a healthy success rate.
  EXPECT_GT(asap.search.success_rate(), 0.7);
}

TEST_F(ReplayTest, RandomWalkHasLowSuccessWithRareReplicas) {
  // §V-A: random walk shows poor success rate because ~89% of documents
  // have a single copy.
  const auto rw = run_experiment(*world_, AlgoKind::kRandomWalk);
  const auto flooding = run_experiment(*world_, AlgoKind::kFlooding);
  EXPECT_LT(rw.search.success_rate(), flooding.search.success_rate());
  EXPECT_LT(rw.load.mean_bytes_per_node_per_sec,
            flooding.load.mean_bytes_per_node_per_sec);
}

TEST_F(ReplayTest, AsapBreakdownDominatedByMaintenanceAds) {
  const auto res = run_experiment(*world_, AlgoKind::kAsapRw);
  Bytes full = 0, patch = 0, refresh = 0;
  for (const auto& cs : res.breakdown) {
    if (cs.category == sim::Traffic::kFullAd) full = cs.bytes;
    if (cs.category == sim::Traffic::kPatchAd) patch = cs.bytes;
    if (cs.category == sim::Traffic::kRefreshAd) refresh = cs.bytes;
  }
  // Fig 7 shape: after warm-up, patch + refresh ads dominate ad traffic.
  EXPECT_GT(patch + refresh, full);
  EXPECT_GT(res.asap_counters.refresh_ads, 0u);
  EXPECT_GT(res.asap_counters.patch_ads, 0u);
}

TEST_F(ReplayTest, DeterministicAcrossRuns) {
  const auto a = run_experiment(*world_, AlgoKind::kGsa);
  const auto b = run_experiment(*world_, AlgoKind::kGsa);
  EXPECT_EQ(a.search.successes(), b.search.successes());
  EXPECT_DOUBLE_EQ(a.search.avg_cost_bytes(), b.search.avg_cost_bytes());
  EXPECT_DOUBLE_EQ(a.load.mean_bytes_per_node_per_sec,
                   b.load.mean_bytes_per_node_per_sec);
}

TEST_F(ReplayTest, SeedSaltPerturbsAlgorithmOnly) {
  RunOptions opts;
  opts.seed_salt = 99;
  const auto a = run_experiment(*world_, AlgoKind::kRandomWalk);
  const auto b = run_experiment(*world_, AlgoKind::kRandomWalk, opts);
  // Different walks => different outcomes, same workload size.
  EXPECT_EQ(a.search.total(), b.search.total());
  EXPECT_NE(a.search.avg_cost_bytes(), b.search.avg_cost_bytes());
}

TEST_F(ReplayTest, OverridesAreHonored) {
  RunOptions opts;
  auto p = default_asap_params(AlgoKind::kAsapRw, Preset::kSmall);
  p.ads_request_hops = 0;  // disable the fallback entirely
  opts.asap = p;
  const auto with = run_experiment(*world_, AlgoKind::kAsapRw);
  const auto without = run_experiment(*world_, AlgoKind::kAsapRw, opts);
  EXPECT_EQ(without.asap_counters.ads_requests, 0u);
  EXPECT_GT(with.asap_counters.ads_requests, 0u);
  EXPECT_LE(without.search.success_rate(), with.search.success_rate());
}

TEST(ReplayHelpers, AlgoNamesAndCategories) {
  EXPECT_STREQ(algo_name(AlgoKind::kAsapGsa), "asap(gsa)");
  EXPECT_STREQ(algo_name(AlgoKind::kAsapAdaptive), "asap-adaptive");
  EXPECT_STREQ(algo_name(AlgoKind::kAsapDelta), "asap-delta");
  EXPECT_FALSE(is_asap(AlgoKind::kGsa));
  EXPECT_TRUE(is_asap(AlgoKind::kAsapFld));
  EXPECT_TRUE(is_asap(AlgoKind::kAsapAdaptive));
  EXPECT_TRUE(is_asap(AlgoKind::kAsapDelta));
  EXPECT_EQ(load_categories(AlgoKind::kFlooding).size(), 1u);
  // ASAP counts confirm + ads-request + full/patch/refresh/packed ads.
  EXPECT_EQ(load_categories(AlgoKind::kAsapRw).size(), 6u);
  EXPECT_THROW(default_baseline_params(AlgoKind::kAsapRw, Preset::kSmall),
               ConfigError);
  EXPECT_THROW(default_asap_params(AlgoKind::kFlooding, Preset::kSmall),
               ConfigError);
  // The adaptive variants stay out of the canonical six-algorithm matrix
  // axis but resolve by name.
  EXPECT_EQ(std::size(kAllAlgos), 6u);
  EXPECT_EQ(std::size(kExtendedAlgos), 8u);
  EXPECT_EQ(algo_from_name("asap-adaptive"), AlgoKind::kAsapAdaptive);
  EXPECT_EQ(algo_from_name("asap-delta"), AlgoKind::kAsapDelta);
  // The adaptive defaults enable the scheduler and the re-admit backoff;
  // the vanilla variants keep both off (digest safety).
  const auto adaptive =
      default_asap_params(AlgoKind::kAsapAdaptive, Preset::kSmall);
  EXPECT_EQ(adaptive.ad_mode, ads::AdMode::kAdaptive);
  EXPECT_GT(adaptive.stale_readmit_backoff, 0.0);
  const auto delta = default_asap_params(AlgoKind::kAsapDelta, Preset::kSmall);
  EXPECT_EQ(delta.ad_mode, ads::AdMode::kDelta);
  const auto vanilla = default_asap_params(AlgoKind::kAsapRw, Preset::kSmall);
  EXPECT_EQ(vanilla.ad_mode, ads::AdMode::kVanilla);
  EXPECT_EQ(vanilla.stale_readmit_backoff, 0.0);
}

TEST(ReplayHelpers, ConfigPresets) {
  const auto small =
      ExperimentConfig::make(Preset::kSmall, TopologyKind::kRandom, 1);
  const auto paper =
      ExperimentConfig::make(Preset::kPaper, TopologyKind::kRandom, 1);
  EXPECT_EQ(paper.phys.total_nodes(), 51'984u);
  EXPECT_EQ(paper.content.initial_nodes, 10'000u);
  EXPECT_EQ(paper.trace.num_queries, 30'000u);
  EXPECT_LT(small.content.initial_nodes, paper.content.initial_nodes);
  EXPECT_GE(small.phys.total_nodes(), small.content.initial_nodes +
                                          small.content.joiner_nodes);
  EXPECT_STREQ(topology_name(TopologyKind::kPowerlaw), "powerlaw");
}

}  // namespace
}  // namespace asap::harness
