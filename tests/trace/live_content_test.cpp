#include "trace/live_content.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace asap::trace {
namespace {

ContentModelParams tiny_params() {
  ContentModelParams p;
  p.initial_nodes = 200;
  p.joiner_nodes = 20;
  return p;
}

class LiveContentTest : public ::testing::Test {
 protected:
  LiveContentTest() : rng_(11), model_(ContentModel::build(tiny_params(), rng_)) {}
  Rng rng_;
  ContentModel model_;
};

TEST_F(LiveContentTest, InitialStateMirrorsModel) {
  LiveContent live(model_);
  EXPECT_EQ(live.live_count(), tiny_params().initial_nodes);
  EXPECT_EQ(live.capacity(), model_.total_node_slots());
  for (NodeId n = 0; n < tiny_params().initial_nodes; ++n) {
    EXPECT_TRUE(live.online(n));
    EXPECT_EQ(live.docs(n), model_.initial_docs(n));
  }
  for (NodeId n = tiny_params().initial_nodes; n < live.capacity(); ++n) {
    EXPECT_FALSE(live.online(n));
    EXPECT_TRUE(live.docs(n).empty());
  }
}

TEST_F(LiveContentTest, AddRemoveDoc) {
  LiveContent live(model_);
  const DocId d = model_.corpus().size() - 1;
  live.add_doc(5, d);
  EXPECT_TRUE(live.has_doc(5, d));
  live.add_doc(5, d);  // idempotent
  const auto count =
      std::count(live.docs(5).begin(), live.docs(5).end(), d);
  EXPECT_EQ(count, 1);
  live.remove_doc(5, d);
  EXPECT_FALSE(live.has_doc(5, d));
}

TEST_F(LiveContentTest, NodeMatchesRequiresSingleDocConjunction) {
  LiveContent live(model_);
  // Find a node with at least one doc; use that doc's keywords.
  NodeId holder = kInvalidNode;
  for (NodeId n = 0; n < tiny_params().initial_nodes; ++n) {
    if (!live.docs(n).empty()) {
      holder = n;
      break;
    }
  }
  ASSERT_NE(holder, kInvalidNode);
  const DocId d = live.docs(holder).front();
  const auto& kws = model_.doc(d).keywords;
  EXPECT_TRUE(live.node_matches(holder, kws, model_));
  // A term set spanning two different documents must NOT match: take one
  // keyword from this doc plus a keyword that exists nowhere.
  std::vector<KeywordId> cross{kws.front(), 0xFFFFFFFF};
  EXPECT_FALSE(live.node_matches(holder, cross, model_));
  // Offline nodes never match.
  live.set_online(holder, false);
  EXPECT_FALSE(live.node_matches(holder, kws, model_));
}

TEST_F(LiveContentTest, EmptyTermsNeverMatch) {
  LiveContent live(model_);
  EXPECT_FALSE(live.node_matches(0, {}, model_));
}

TEST_F(LiveContentTest, ApplyJoinBringsJoinerDocs) {
  LiveContent live(model_);
  const NodeId joiner = tiny_params().initial_nodes;
  TraceEvent ev;
  ev.type = TraceEventType::kJoin;
  ev.node = joiner;
  live.apply(ev, model_);
  EXPECT_TRUE(live.online(joiner));
  EXPECT_EQ(live.docs(joiner).size(), model_.joiner_docs(joiner).size());
  ev.type = TraceEventType::kLeave;
  live.apply(ev, model_);
  EXPECT_FALSE(live.online(joiner));
  // Content is retained across a departure (the node, not its disk, left).
  EXPECT_EQ(live.docs(joiner).size(), model_.joiner_docs(joiner).size());
}

TEST_F(LiveContentTest, KeywordCountDeduplicates) {
  LiveContent live(model_);
  for (NodeId n = 0; n < 50; ++n) {
    std::set<KeywordId> expected;
    for (DocId d : live.docs(n)) {
      const auto& kws = model_.doc(d).keywords;
      expected.insert(kws.begin(), kws.end());
    }
    EXPECT_EQ(live.keyword_count(n, model_), expected.size());
  }
}

TEST_F(LiveContentTest, ContentIndexFindsAllHolders) {
  LiveContent live(model_);
  ContentIndex index(model_, live);
  // For every document of a few nodes, the index must report the holder.
  for (NodeId n = 0; n < 50; ++n) {
    for (DocId d : live.docs(n)) {
      const auto& kws = model_.doc(d).keywords;
      const auto matches = index.matching_nodes(kws, live, model_);
      EXPECT_TRUE(std::binary_search(matches.begin(), matches.end(), n))
          << "node " << n << " doc " << d;
    }
  }
}

TEST_F(LiveContentTest, ContentIndexRespectsLiveness) {
  LiveContent live(model_);
  ContentIndex index(model_, live);
  NodeId holder = kInvalidNode;
  DocId doc = kInvalidDoc;
  for (NodeId n = 0; n < tiny_params().initial_nodes && holder == kInvalidNode;
       ++n) {
    if (!live.docs(n).empty()) {
      holder = n;
      doc = live.docs(n).front();
    }
  }
  ASSERT_NE(holder, kInvalidNode);
  const auto& kws = model_.doc(doc).keywords;

  live.set_online(holder, false);
  auto matches = index.matching_nodes(kws, live, model_);
  EXPECT_FALSE(std::binary_search(matches.begin(), matches.end(), holder));

  live.set_online(holder, true);
  live.remove_doc(holder, doc);
  matches = index.matching_nodes(kws, live, model_);
  EXPECT_FALSE(std::binary_search(matches.begin(), matches.end(), holder));
}

TEST_F(LiveContentTest, ContentIndexPicksUpAdditions) {
  LiveContent live(model_);
  ContentIndex index(model_, live);
  Rng rng(5);
  ContentModel model = ContentModel::build(tiny_params(), rng);  // fresh
  const DocId fresh = model_.corpus().size() - 1;
  TraceEvent ev;
  ev.type = TraceEventType::kAddDoc;
  ev.node = 3;
  ev.doc = fresh;
  live.apply(ev, model_);
  index.apply(ev, model_);
  const auto& kws = model_.doc(fresh).keywords;
  const auto matches = index.matching_nodes(kws, live, model_);
  EXPECT_TRUE(std::binary_search(matches.begin(), matches.end(), 3u));
}

TEST_F(LiveContentTest, UnknownTermMatchesNothing) {
  LiveContent live(model_);
  ContentIndex index(model_, live);
  const std::vector<KeywordId> bogus{0xFFFFFFF0};
  EXPECT_TRUE(index.matching_nodes(bogus, live, model_).empty());
}

}  // namespace
}  // namespace asap::trace
