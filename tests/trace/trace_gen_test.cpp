#include "trace/trace_gen.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "trace/live_content.hpp"

namespace asap::trace {
namespace {

ContentModelParams model_params() {
  ContentModelParams p;
  p.initial_nodes = 500;
  p.joiner_nodes = 50;
  return p;
}

TraceParams trace_params() {
  TraceParams p;
  p.num_queries = 1'500;
  p.joins = 40;
  p.leaves = 40;
  return p;
}

class TraceGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(21);
    model_ = new ContentModel(ContentModel::build(model_params(), rng));
    Rng gen_rng(22);
    TraceGenerator gen(*model_, trace_params(), gen_rng);
    trace_ = new Trace(gen.generate());
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete model_;
  }
  static ContentModel* model_;
  static Trace* trace_;
};

ContentModel* TraceGenTest::model_ = nullptr;
Trace* TraceGenTest::trace_ = nullptr;

TEST_F(TraceGenTest, EventCountsMatchParams) {
  EXPECT_EQ(trace_->num_queries, trace_params().num_queries);
  EXPECT_EQ(trace_->num_joins, trace_params().joins);
  EXPECT_LE(trace_->num_leaves, trace_params().leaves);
  // ~10% of queries are followed by a content change.
  EXPECT_NEAR(static_cast<double>(trace_->num_changes),
              0.1 * trace_params().num_queries,
              0.04 * trace_params().num_queries);
}

TEST_F(TraceGenTest, EventsAreTimeOrdered) {
  for (std::size_t i = 1; i < trace_->events.size(); ++i) {
    EXPECT_LE(trace_->events[i - 1].time, trace_->events[i].time);
  }
  EXPECT_DOUBLE_EQ(trace_->horizon, trace_->events.back().time);
}

TEST_F(TraceGenTest, ArrivalRateApproximatesPoissonLambda) {
  // 1500 queries at λ=8/s should span ~187 s.
  const double expected = trace_params().num_queries /
                          trace_params().arrival_rate;
  EXPECT_NEAR(trace_->horizon, expected, expected * 0.15);
}

TEST_F(TraceGenTest, EveryQueryHasALiveMatchAtIssueTime) {
  // Replay the trace; at each query, the ground-truth index must report at
  // least one matching online node other than the requester (§V-A).
  LiveContent live(*model_);
  ContentIndex index(*model_, live);
  for (const auto& ev : trace_->events) {
    if (ev.type == TraceEventType::kQuery) {
      ASSERT_GE(ev.num_terms, 1u);
      auto matches = index.matching_nodes(ev.term_span(), live, *model_);
      matches.erase(std::remove(matches.begin(), matches.end(), ev.node),
                    matches.end());
      ASSERT_FALSE(matches.empty())
          << "query at t=" << ev.time << " has no live match";
    }
    live.apply(ev, *model_);
    index.apply(ev, *model_);
  }
}

TEST_F(TraceGenTest, RequestersAreOnlineAndInterested) {
  LiveContent live(*model_);
  for (const auto& ev : trace_->events) {
    if (ev.type == TraceEventType::kQuery) {
      EXPECT_TRUE(live.online(ev.node));
      // A peer only asks for documents in classes it is interested in.
      const auto& ints = model_->interests(ev.node);
      const TopicId cls = model_->doc(ev.doc).topic;
      EXPECT_TRUE(std::find(ints.begin(), ints.end(), cls) != ints.end());
    }
    live.apply(ev, *model_);
  }
}

TEST_F(TraceGenTest, QueryTermsComeFromTargetDocument) {
  for (const auto& ev : trace_->events) {
    if (ev.type != TraceEventType::kQuery) continue;
    const auto& kws = model_->doc(ev.doc).keywords;
    for (KeywordId t : ev.term_span()) {
      EXPECT_TRUE(std::find(kws.begin(), kws.end(), t) != kws.end());
    }
    // Terms are distinct.
    const auto span = ev.term_span();
    for (std::size_t i = 0; i < span.size(); ++i) {
      for (std::size_t j = i + 1; j < span.size(); ++j) {
        EXPECT_NE(span[i], span[j]);
      }
    }
  }
}

TEST_F(TraceGenTest, JoinsUseSequentialJoinerSlots) {
  NodeId expected = model_params().initial_nodes;
  for (const auto& ev : trace_->events) {
    if (ev.type == TraceEventType::kJoin) {
      EXPECT_EQ(ev.node, expected);
      ++expected;
    }
  }
}

TEST_F(TraceGenTest, LeavesTargetOnlineNodes) {
  LiveContent live(*model_);
  for (const auto& ev : trace_->events) {
    if (ev.type == TraceEventType::kLeave) {
      EXPECT_TRUE(live.online(ev.node));
    }
    live.apply(ev, *model_);
  }
}

TEST_F(TraceGenTest, RemovalsTargetHeldDocuments) {
  LiveContent live(*model_);
  for (const auto& ev : trace_->events) {
    if (ev.type == TraceEventType::kRemoveDoc) {
      EXPECT_TRUE(live.has_doc(ev.node, ev.doc));
    }
    live.apply(ev, *model_);
  }
}

TEST(TraceGenValidation, RejectsBadParams) {
  Rng rng(1);
  auto model = ContentModel::build(model_params(), rng);
  TraceParams p = trace_params();
  p.joins = 10'000;  // more than joiner slots
  Rng rng2(2);
  EXPECT_THROW(TraceGenerator(model, p, rng2), ConfigError);
  p = trace_params();
  p.num_queries = 0;
  EXPECT_THROW(TraceGenerator(model, p, rng2), ConfigError);
}

TEST(TraceGenValidation, GenerateIsSingleUse) {
  Rng rng(3);
  auto model = ContentModel::build(model_params(), rng);
  TraceParams p = trace_params();
  p.num_queries = 50;
  p.joins = 0;
  p.leaves = 0;
  Rng rng2(4);
  TraceGenerator gen(model, p, rng2);
  gen.generate();
  EXPECT_THROW(gen.generate(), ConfigError);
}

TEST(TraceGenDeterminism, SameSeedsSameTrace) {
  Rng ra(5), rb(5);
  auto ma = ContentModel::build(model_params(), ra);
  auto mb = ContentModel::build(model_params(), rb);
  Rng ga(6), gb(6);
  TraceParams p = trace_params();
  p.num_queries = 300;
  auto ta = TraceGenerator(ma, p, ga).generate();
  auto tb = TraceGenerator(mb, p, gb).generate();
  ASSERT_EQ(ta.events.size(), tb.events.size());
  for (std::size_t i = 0; i < ta.events.size(); ++i) {
    EXPECT_EQ(ta.events[i].type, tb.events[i].type);
    EXPECT_EQ(ta.events[i].node, tb.events[i].node);
    EXPECT_EQ(ta.events[i].doc, tb.events[i].doc);
    EXPECT_DOUBLE_EQ(ta.events[i].time, tb.events[i].time);
  }
}

}  // namespace
}  // namespace asap::trace
