#include "trace/content_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "trace/classes.hpp"

namespace asap::trace {
namespace {

ContentModelParams test_params() {
  ContentModelParams p;
  p.initial_nodes = 1'000;
  p.joiner_nodes = 100;
  return p;
}

class ContentModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(7);
    model_ = new ContentModel(ContentModel::build(test_params(), rng));
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }
  static ContentModel* model_;
};

ContentModel* ContentModelTest::model_ = nullptr;

TEST_F(ContentModelTest, SlotLayout) {
  EXPECT_EQ(model_->total_node_slots(), 1'100u);
  EXPECT_FALSE(model_->corpus().empty());
}

TEST_F(ContentModelTest, ReplicationMatchesEdonkeyStatistics) {
  // §V-A: "the average number of copies per document is around 1.28 and
  // 89% files only have one copy".
  EXPECT_NEAR(model_->mean_replication(), 1.28, 0.12);
  EXPECT_NEAR(model_->single_copy_fraction(), 0.89, 0.04);
}

TEST_F(ContentModelTest, FreeRiderFractionRoughlyMatches) {
  std::uint32_t free_riders = 0;
  for (NodeId n = 0; n < test_params().initial_nodes; ++n) {
    free_riders += model_->is_free_rider(n);
  }
  const double frac =
      static_cast<double>(free_riders) / test_params().initial_nodes;
  EXPECT_NEAR(frac, test_params().free_rider_fraction, 0.06);
}

TEST_F(ContentModelTest, InterestsMatchContentClasses) {
  // Paper: a sharer's interests are exactly the classes of its contents.
  for (NodeId n = 0; n < test_params().initial_nodes; ++n) {
    if (model_->is_free_rider(n)) {
      EXPECT_FALSE(model_->interests(n).empty())
          << "free-riders get random interests";
      continue;
    }
    std::set<TopicId> classes;
    for (DocId d : model_->initial_docs(n)) {
      classes.insert(model_->doc(d).topic);
    }
    const auto& ints = model_->interests(n);
    EXPECT_EQ(std::set<TopicId>(ints.begin(), ints.end()), classes)
        << "node " << n;
  }
}

TEST_F(ContentModelTest, InterestsAreSortedAndValid) {
  for (NodeId n = 0; n < model_->total_node_slots(); ++n) {
    const auto& ints = model_->interests(n);
    EXPECT_FALSE(ints.empty());
    EXPECT_TRUE(std::is_sorted(ints.begin(), ints.end()));
    for (TopicId t : ints) EXPECT_LT(t, kNumClasses);
  }
}

TEST_F(ContentModelTest, DocumentsHaveKeywordsAndValidTopic) {
  for (const auto& doc : model_->corpus()) {
    EXPECT_LT(doc.topic, kNumClasses);
    EXPECT_GE(doc.keywords.size(), 3u);
    EXPECT_LE(doc.keywords.size(), 8u);
  }
}

TEST_F(ContentModelTest, KeywordSetsStayUnderFilterCapacity) {
  // |K_p| must stay below the paper's |K_max| = 1000 so the fixed-size
  // Bloom filter retains its false-positive guarantee.
  for (NodeId n = 0; n < test_params().initial_nodes; ++n) {
    std::set<KeywordId> kws;
    for (DocId d : model_->initial_docs(n)) {
      const auto& dk = model_->doc(d).keywords;
      kws.insert(dk.begin(), dk.end());
    }
    EXPECT_LE(kws.size(), 1'000u) << "node " << n;
  }
}

TEST_F(ContentModelTest, ClassDistributionIsSkewed) {
  const auto per_class = model_->nodes_per_class();
  // Fig 2 shape: the most popular class covers many more nodes than the
  // least popular one.
  const auto mx = *std::max_element(per_class.begin(), per_class.end());
  const auto mn = *std::min_element(per_class.begin(), per_class.end());
  EXPECT_GT(mx, 3 * (mn + 1));
}

TEST_F(ContentModelTest, InterestDistributionCoversAllClasses) {
  const auto per_interest = model_->nodes_per_interest();
  for (std::uint32_t c = 0; c < kNumClasses; ++c) {
    EXPECT_GT(per_interest[c], 0u) << class_name(static_cast<TopicId>(c));
  }
  // Fig 3: interest counts dominate content counts (free-riders add
  // interests without content).
  const auto per_class = model_->nodes_per_class();
  std::uint64_t ints = 0, classes = 0;
  for (std::uint32_t c = 0; c < kNumClasses; ++c) {
    ints += per_interest[c];
    classes += per_class[c];
  }
  EXPECT_GE(ints, classes);
}

TEST_F(ContentModelTest, JoinerSlotsHaveContentOrInterests) {
  const auto initial = test_params().initial_nodes;
  std::uint32_t sharers = 0;
  for (NodeId n = initial; n < model_->total_node_slots(); ++n) {
    sharers += !model_->joiner_docs(n).empty();
    EXPECT_FALSE(model_->interests(n).empty());
  }
  EXPECT_GT(sharers, 50u);  // ~75% of joiners share
  EXPECT_THROW(model_->joiner_docs(0), ConfigError);
}

TEST_F(ContentModelTest, MintDocumentAppendsToCorpus) {
  Rng rng(9);
  ContentModel m = ContentModel::build(test_params(), rng);
  const auto before = m.corpus().size();
  const DocId d = m.mint_document(3, rng);
  EXPECT_EQ(d, before);
  EXPECT_EQ(m.corpus().size(), before + 1);
  EXPECT_EQ(m.doc(d).topic, 3);
  EXPECT_THROW(m.mint_document(kNumClasses, rng), ConfigError);
}

TEST(ContentModelValidation, RejectsBadParams) {
  Rng rng(1);
  ContentModelParams p = test_params();
  p.initial_nodes = 5;
  EXPECT_THROW(ContentModel::build(p, rng), ConfigError);
  p = test_params();
  p.free_rider_fraction = 1.0;
  EXPECT_THROW(ContentModel::build(p, rng), ConfigError);
  p = test_params();
  p.mean_docs_per_sharer = 0.5;
  EXPECT_THROW(ContentModel::build(p, rng), ConfigError);
}

TEST(ContentModelDeterminism, SameSeedSameModel) {
  Rng a(33), b(33);
  const auto m1 = ContentModel::build(test_params(), a);
  const auto m2 = ContentModel::build(test_params(), b);
  ASSERT_EQ(m1.corpus().size(), m2.corpus().size());
  for (std::size_t i = 0; i < m1.corpus().size(); i += 97) {
    EXPECT_EQ(m1.corpus()[i].topic, m2.corpus()[i].topic);
    EXPECT_EQ(m1.corpus()[i].keywords, m2.corpus()[i].keywords);
  }
  for (NodeId n = 0; n < m1.total_node_slots(); n += 13) {
    EXPECT_EQ(m1.interests(n), m2.interests(n));
  }
}

TEST(Classes, NamesAndWeights) {
  const auto& w = class_weights();
  double total = 0.0;
  for (std::uint32_t c = 0; c < kNumClasses; ++c) {
    EXPECT_FALSE(class_name(static_cast<TopicId>(c)).empty());
    EXPECT_GT(w[c], 0.0);
    total += w[c];
    if (c > 0) EXPECT_LE(w[c], w[c - 1]);  // sorted by popularity
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_THROW(class_name(kNumClasses), ConfigError);
}

}  // namespace
}  // namespace asap::trace
