// StreamingTraceGenerator contracts:
//   * build mode emits exactly the stream the materializing facade
//     records — same events bit for bit, same counters, same final RNG
//     state — at a size with real churn, rejoins and mid-trace mints;
//   * replay mode re-derives that identical stream against the *const*
//     post-build model (mints resolve to the pre-minted ids), never
//     mutating it;
//   * the golden-metrics harness gate (tier 1) separately pins this whole
//     pipeline against artifacts produced by the historical materializing
//     generator, so these tests plus that gate close the loop.
#include "trace/streaming_trace_gen.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "trace/content_model.hpp"
#include "trace/trace_gen.hpp"

namespace asap::trace {
namespace {

ContentModelParams small_model_params() {
  auto p = ContentModelParams::small();
  p.initial_nodes = 1'000;
  p.joiner_nodes = 100;
  return p;
}

TraceParams busy_trace_params() {
  TraceParams p;
  p.num_queries = 2'000;
  p.joins = 80;
  p.leaves = 80;
  p.rejoin_fraction = 0.5;
  p.content_change_fraction = 0.2;  // plenty of mints and removals
  return p;
}

void expect_same_event(const TraceEvent& a, const TraceEvent& b, int idx) {
  ASSERT_EQ(a.time, b.time) << "event " << idx;  // exact: same computation
  ASSERT_EQ(a.type, b.type) << "event " << idx;
  ASSERT_EQ(a.node, b.node) << "event " << idx;
  ASSERT_EQ(a.doc, b.doc) << "event " << idx;
  ASSERT_EQ(a.num_terms, b.num_terms) << "event " << idx;
  for (std::uint8_t t = 0; t < a.num_terms; ++t) {
    ASSERT_EQ(a.terms[t], b.terms[t]) << "event " << idx << " term "
                                      << static_cast<int>(t);
  }
}

TEST(StreamingTraceGenerator, BuildModeMatchesMaterializingFacade) {
  const auto mp = small_model_params();
  const auto tp = busy_trace_params();

  Rng content_a(99), content_b(99);
  auto model_a = ContentModel::build(mp, content_a);
  auto model_b = ContentModel::build(mp, content_b);

  Rng trace_a(1234);
  TraceGenerator facade(model_a, tp, trace_a);
  const Trace t = facade.generate();
  ASSERT_GT(t.num_rejoins, 0u);  // the busy params must exercise rejoins

  Rng trace_b(1234);
  StreamingTraceGenerator stream(model_b, tp, trace_b);
  std::vector<TraceEvent> events;
  TraceEvent ev;
  while (stream.next(ev)) events.push_back(ev);

  ASSERT_EQ(events.size(), t.events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    expect_same_event(t.events[i], events[i], static_cast<int>(i));
  }
  EXPECT_EQ(stream.num_queries(), t.num_queries);
  EXPECT_EQ(stream.num_changes(), t.num_changes);
  EXPECT_EQ(stream.num_joins(), t.num_joins);
  EXPECT_EQ(stream.num_leaves(), t.num_leaves);
  EXPECT_EQ(stream.num_rejoins(), t.num_rejoins);
  EXPECT_EQ(stream.last_event_time(), t.horizon);
  // Both paths minted the same documents into their models.
  EXPECT_EQ(model_a.num_docs(), model_b.num_docs());
  // The facade handed the final stream state back to the caller's RNG;
  // the streaming generator must report the identical state.
  Rng stream_final = stream.rng_state();
  EXPECT_EQ(trace_a.next_u64(), stream_final.next_u64());
}

TEST(StreamingTraceGenerator, ReplayModeReproducesBuildStreamAgainstConstModel) {
  const auto mp = small_model_params();
  const auto tp = busy_trace_params();

  Rng content(7);
  auto model = ContentModel::build(mp, content);
  const auto mint_base = static_cast<DocId>(model.num_docs());

  // Build pass: mutates the model, records the stream.
  const Rng trace_rng(42);
  std::vector<TraceEvent> built;
  std::uint64_t build_final = 0;
  {
    StreamingTraceGenerator gen(model, tp, trace_rng);
    TraceEvent ev;
    while (gen.next(ev)) built.push_back(ev);
    Rng fin = gen.rng_state();
    build_final = fin.next_u64();
  }
  ASSERT_GT(model.num_docs(), mint_base);  // mid-trace mints happened

  // Replay pass: same initial RNG, const model, pre-minted ids.
  const ContentModel& frozen = model;
  const auto docs_before = frozen.num_docs();
  StreamingTraceGenerator replay(frozen, tp, trace_rng, mint_base);
  std::size_t idx = 0;
  TraceEvent ev;
  while (replay.next(ev)) {
    ASSERT_LT(idx, built.size());
    expect_same_event(built[idx], ev, static_cast<int>(idx));
    ++idx;
  }
  EXPECT_EQ(idx, built.size());
  EXPECT_EQ(frozen.num_docs(), docs_before);  // replay never mutates
  Rng fin = replay.rng_state();
  EXPECT_EQ(fin.next_u64(), build_final);
}

TEST(StreamingTraceGenerator, ReplayIsRepeatable) {
  // Many replays of one immutable model must all see the same stream —
  // the property the matrix runner's shared-World cells rely on.
  auto mp = small_model_params();
  mp.initial_nodes = 300;
  auto tp = busy_trace_params();
  tp.num_queries = 400;
  tp.joins = 20;
  tp.leaves = 20;

  Rng content(15);
  auto model = ContentModel::build(mp, content);
  const auto mint_base = static_cast<DocId>(model.num_docs());
  const Rng trace_rng(5);
  {
    StreamingTraceGenerator build(model, tp, trace_rng);
    TraceEvent ev;
    while (build.next(ev)) {
    }
  }

  const ContentModel& frozen = model;
  std::vector<TraceEvent> first;
  for (int round = 0; round < 3; ++round) {
    StreamingTraceGenerator replay(frozen, tp, trace_rng, mint_base);
    std::size_t idx = 0;
    TraceEvent ev;
    while (replay.next(ev)) {
      if (round == 0) {
        first.push_back(ev);
      } else {
        ASSERT_LT(idx, first.size());
        expect_same_event(first[idx], ev, static_cast<int>(idx));
      }
      ++idx;
    }
    if (round > 0) {
      EXPECT_EQ(idx, first.size());
    }
  }
}

TEST(StreamingTraceGenerator, ResidentStateIsBoundedByLiveNotEvents) {
  // The generator's resident footprint tracks live nodes/documents, not
  // emitted events: a 4x longer trace over the same population must not
  // grow memory 4x (the whole point of streaming synthesis).
  auto mp = small_model_params();
  auto tp = busy_trace_params();
  tp.joins = 40;
  tp.leaves = 40;

  const auto run = [&](std::uint32_t queries) {
    Rng content(33);
    auto model = ContentModel::build(mp, content);
    auto p = tp;
    p.num_queries = queries;
    Rng trace_rng(8);
    StreamingTraceGenerator gen(model, p, trace_rng);
    TraceEvent ev;
    std::uint64_t peak = 0;
    while (gen.next(ev)) peak = std::max(peak, gen.memory_bytes());
    return peak;
  };

  const auto short_run = run(1'000);
  const auto long_run = run(4'000);
  // Mid-trace additions legitimately grow the instance pools a little;
  // 4x the events must stay well under 2x the footprint.
  EXPECT_LT(static_cast<double>(long_run),
            2.0 * static_cast<double>(short_run));
}

}  // namespace
}  // namespace asap::trace
