#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/codec.hpp"
#include "common/rng.hpp"
#include "trace/trace_gen.hpp"

namespace asap::trace {
namespace {

ContentModelParams small_params() {
  ContentModelParams p;
  p.initial_nodes = 300;
  p.joiner_nodes = 30;
  return p;
}

struct Fixture {
  Fixture() : rng(17), model(ContentModel::build(small_params(), rng)) {
    TraceParams tp;
    tp.num_queries = 400;
    tp.joins = 20;
    tp.leaves = 20;
    Rng gen_rng(18);
    TraceGenerator gen(model, tp, gen_rng);
    trace = gen.generate();
  }
  Rng rng;
  ContentModel model;
  Trace trace;
};

TEST(TraceIo, ContentRoundTrip) {
  Fixture fx;
  const auto bytes = serialize_content(fx.model);
  const auto restored = deserialize_content(bytes);

  EXPECT_EQ(restored.params().initial_nodes,
            fx.model.params().initial_nodes);
  EXPECT_EQ(restored.total_node_slots(), fx.model.total_node_slots());
  ASSERT_EQ(restored.corpus().size(), fx.model.corpus().size());
  for (std::size_t i = 0; i < fx.model.corpus().size(); i += 7) {
    EXPECT_EQ(restored.corpus()[i].topic, fx.model.corpus()[i].topic);
    EXPECT_EQ(restored.corpus()[i].keywords, fx.model.corpus()[i].keywords);
  }
  for (NodeId n = 0; n < fx.model.total_node_slots(); ++n) {
    EXPECT_EQ(restored.interests(n), fx.model.interests(n));
    if (n < fx.model.params().initial_nodes) {
      EXPECT_EQ(restored.initial_docs(n), fx.model.initial_docs(n));
    } else {
      EXPECT_EQ(restored.joiner_docs(n), fx.model.joiner_docs(n));
    }
  }
}

TEST(TraceIo, RestoredModelMintsDocumentsConsistently) {
  Fixture fx;
  auto restored = deserialize_content(serialize_content(fx.model));
  // Minting with the same RNG stream must produce identical documents
  // (next_keyword_ and the class pools must have survived).
  Rng a(55), b(55);
  const DocId da = fx.model.mint_document(3, a);
  const DocId db = restored.mint_document(3, b);
  EXPECT_EQ(da, db);
  EXPECT_EQ(fx.model.doc(da).keywords, restored.doc(db).keywords);
}

TEST(TraceIo, TraceRoundTrip) {
  Fixture fx;
  const auto bytes = serialize_trace(fx.trace);
  const auto restored = deserialize_trace(bytes);
  EXPECT_EQ(restored.num_queries, fx.trace.num_queries);
  EXPECT_EQ(restored.num_changes, fx.trace.num_changes);
  EXPECT_EQ(restored.num_joins, fx.trace.num_joins);
  EXPECT_EQ(restored.num_leaves, fx.trace.num_leaves);
  ASSERT_EQ(restored.events.size(), fx.trace.events.size());
  for (std::size_t i = 0; i < fx.trace.events.size(); ++i) {
    const auto& a = fx.trace.events[i];
    const auto& b = restored.events[i];
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.node, b.node);
    EXPECT_EQ(a.doc, b.doc);
    EXPECT_EQ(a.num_terms, b.num_terms);
    for (std::uint8_t k = 0; k < a.num_terms; ++k) {
      EXPECT_EQ(a.terms[k], b.terms[k]);
    }
    EXPECT_NEAR(a.time, b.time, 1e-6);  // microsecond quantization
  }
  EXPECT_NEAR(restored.horizon, fx.trace.horizon, 1e-6);
}

TEST(TraceIo, BundleFileRoundTrip) {
  Fixture fx;
  const std::string path = ::testing::TempDir() + "asap_bundle_test.bin";
  save_bundle(path, fx.model, fx.trace);
  const auto bundle = load_bundle(path);
  EXPECT_EQ(bundle.model.corpus().size(), fx.model.corpus().size());
  EXPECT_EQ(bundle.trace.events.size(), fx.trace.events.size());
  std::remove(path.c_str());
}

TEST(TraceIo, MalformedInputThrows) {
  Fixture fx;
  auto bytes = serialize_content(fx.model);
  bytes[0] ^= 0xFF;  // break the magic
  EXPECT_THROW(deserialize_content(bytes), wire::DecodeError);

  auto tr = serialize_trace(fx.trace);
  tr[0] ^= 0xFF;
  EXPECT_THROW(deserialize_trace(tr), wire::DecodeError);
  // Truncations must throw, never crash.
  const auto good = serialize_trace(fx.trace);
  for (std::size_t len = 5; len < good.size(); len += good.size() / 17 + 1) {
    EXPECT_THROW(deserialize_trace(
                     std::span<const std::uint8_t>(good.data(), len)),
                 wire::DecodeError);
  }
  EXPECT_THROW(load_bundle("/nonexistent/path/x.bin"), ConfigError);
}

TEST(TraceIo, CompressionIsReasonable) {
  Fixture fx;
  const auto bytes = serialize_trace(fx.trace);
  // Varint + delta encoding: far below a naive 40-byte-per-event format.
  EXPECT_LT(bytes.size(), fx.trace.events.size() * 24);
}

}  // namespace
}  // namespace asap::trace
