// Rejoin (session churn) model tests: departed nodes return with their
// content intact, and the generator keeps the trace consistent.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "trace/live_content.hpp"
#include "trace/trace_gen.hpp"

namespace asap::trace {
namespace {

ContentModelParams model_params() {
  ContentModelParams p;
  p.initial_nodes = 400;
  p.joiner_nodes = 40;
  return p;
}

TraceParams churny_params() {
  TraceParams p;
  p.num_queries = 1'200;
  p.joins = 30;
  p.leaves = 60;
  p.rejoin_fraction = 1.0;  // every leaver returns
  p.mean_offline = 20.0;
  return p;
}

TEST(Rejoin, EveryLeaverEventuallyRejoinsWithinTrace) {
  Rng rng(31);
  auto model = ContentModel::build(model_params(), rng);
  Rng gen_rng(32);
  TraceGenerator gen(model, churny_params(), gen_rng);
  const auto trace = gen.generate();
  EXPECT_GT(trace.num_rejoins, 0u);
  // With mean offline 20 s and a ~150 s trace, most leavers return.
  EXPECT_GE(trace.num_rejoins, trace.num_leaves / 2);
  EXPECT_LE(trace.num_rejoins, trace.num_leaves);
}

TEST(Rejoin, RejoinersWereOfflineAndKeepTheirDocs) {
  Rng rng(33);
  auto model = ContentModel::build(model_params(), rng);
  Rng gen_rng(34);
  TraceGenerator gen(model, churny_params(), gen_rng);
  const auto trace = gen.generate();

  LiveContent live(model);
  std::set<NodeId> offline;
  for (const auto& ev : trace.events) {
    if (ev.type == TraceEventType::kRejoin) {
      EXPECT_FALSE(live.online(ev.node)) << "rejoin of an online node";
      EXPECT_TRUE(offline.count(ev.node)) << "rejoin without a leave";
      const auto docs_before = live.docs(ev.node).size();
      live.apply(ev, model);
      EXPECT_TRUE(live.online(ev.node));
      EXPECT_EQ(live.docs(ev.node).size(), docs_before)
          << "rejoin must not change content";
      offline.erase(ev.node);
      continue;
    }
    if (ev.type == TraceEventType::kLeave) offline.insert(ev.node);
    if (ev.type == TraceEventType::kJoin) offline.erase(ev.node);
    live.apply(ev, model);
  }
}

TEST(Rejoin, QueriesCanTargetRejoinedContent) {
  // With every leaver rejoining quickly, the generator may again pick
  // their documents as query targets; the ground-truth invariant (a live
  // match exists at issue time) must still hold throughout.
  Rng rng(35);
  auto model = ContentModel::build(model_params(), rng);
  Rng gen_rng(36);
  TraceGenerator gen(model, churny_params(), gen_rng);
  const auto trace = gen.generate();

  LiveContent live(model);
  ContentIndex index(model, live);
  for (const auto& ev : trace.events) {
    if (ev.type == TraceEventType::kQuery) {
      auto matches = index.matching_nodes(ev.term_span(), live, model);
      matches.erase(std::remove(matches.begin(), matches.end(), ev.node),
                    matches.end());
      ASSERT_FALSE(matches.empty()) << "query at " << ev.time;
    }
    live.apply(ev, model);
    index.apply(ev, model);
  }
}

TEST(Rejoin, DisabledByDefaultFractionZero) {
  Rng rng(37);
  auto model = ContentModel::build(model_params(), rng);
  TraceParams p = churny_params();
  p.rejoin_fraction = 0.0;
  Rng gen_rng(38);
  TraceGenerator gen(model, p, gen_rng);
  const auto trace = gen.generate();
  EXPECT_EQ(trace.num_rejoins, 0u);
}

TEST(Rejoin, RejectsBadParams) {
  Rng rng(39);
  auto model = ContentModel::build(model_params(), rng);
  TraceParams p = churny_params();
  p.rejoin_fraction = 1.5;
  Rng gen_rng(40);
  EXPECT_THROW(TraceGenerator(model, p, gen_rng), ConfigError);
  p = churny_params();
  p.mean_offline = 0.0;
  EXPECT_THROW(TraceGenerator(model, p, gen_rng), ConfigError);
}

}  // namespace
}  // namespace asap::trace
