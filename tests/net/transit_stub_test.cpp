#include "net/transit_stub.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace asap::net {
namespace {

TransitStubParams tiny_params() {
  TransitStubParams p;
  p.transit_domains = 3;
  p.transit_nodes_per_domain = 4;
  p.stub_domains_per_transit = 2;
  p.stub_nodes_per_domain = 8;
  return p;
}

TEST(TransitStubParams, PaperScaleMatchesThePaper) {
  const auto p = TransitStubParams::paper();
  EXPECT_EQ(p.total_transit_nodes(), 144u);     // 9 domains x 16 nodes
  EXPECT_EQ(p.total_stub_domains(), 1'296u);    // 144 x 9
  EXPECT_EQ(p.total_nodes(), 51'984u);          // the paper's figure
}

TEST(TransitStubParams, SmallPresetIsConsistent) {
  const auto p = TransitStubParams::small();
  EXPECT_EQ(p.total_nodes(), p.total_transit_nodes() +
                                 p.total_stub_domains() *
                                     p.stub_nodes_per_domain);
  EXPECT_GT(p.total_nodes(), 2'000u);  // must fit the small content preset
}

TEST(TransitStubNetwork, GeneratesRequestedSize) {
  Rng rng(1);
  const auto net = TransitStubNetwork::generate(tiny_params(), rng);
  EXPECT_EQ(net.num_nodes(), tiny_params().total_nodes());
  EXPECT_GT(net.num_links(), 0u);
}

TEST(TransitStubNetwork, KindAndParentAreConsistent) {
  Rng rng(2);
  const auto p = tiny_params();
  const auto net = TransitStubNetwork::generate(p, rng);
  const auto t = p.total_transit_nodes();
  for (PhysNodeId n = 0; n < t; ++n) {
    EXPECT_EQ(net.kind(n), TransitStubNetwork::NodeKind::kTransit);
    EXPECT_EQ(net.parent_transit(n), n);
  }
  for (PhysNodeId n = t; n < net.num_nodes(); ++n) {
    EXPECT_EQ(net.kind(n), TransitStubNetwork::NodeKind::kStub);
    EXPECT_LT(net.parent_transit(n), t);
  }
  EXPECT_THROW(net.stub_domain_of(0), ConfigError);
}

TEST(TransitStubNetwork, LatencyAxioms) {
  Rng rng(3);
  const auto net = TransitStubNetwork::generate(tiny_params(), rng);
  Rng pick(7);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<PhysNodeId>(pick.below(net.num_nodes()));
    const auto b = static_cast<PhysNodeId>(pick.below(net.num_nodes()));
    const Seconds ab = net.latency(a, b);
    EXPECT_DOUBLE_EQ(net.latency(a, a), 0.0);
    EXPECT_DOUBLE_EQ(ab, net.latency(b, a)) << "latency must be symmetric";
    EXPECT_GE(ab, 0.0);
    EXPECT_TRUE(std::isfinite(ab)) << "network must be connected";
  }
}

TEST(TransitStubNetwork, IntraStubLatencyIsSmall) {
  Rng rng(4);
  const auto p = tiny_params();
  const auto net = TransitStubNetwork::generate(p, rng);
  const auto t = p.total_transit_nodes();
  // Two members of the same stub domain: path stays inside the domain, so
  // latency <= (s-1) hops * 2 ms.
  const PhysNodeId a = t;      // member 0 of stub domain 0
  const PhysNodeId b = t + 3;  // member 3 of stub domain 0
  const Seconds lat = net.latency(a, b);
  EXPECT_GT(lat, 0.0);
  EXPECT_LE(lat, (p.stub_nodes_per_domain - 1) * p.intra_stub_latency);
}

TEST(TransitStubNetwork, CrossDomainLatencyIncludesUplinks) {
  Rng rng(5);
  const auto p = tiny_params();
  const auto net = TransitStubNetwork::generate(p, rng);
  const auto t = p.total_transit_nodes();
  const auto s = p.stub_nodes_per_domain;
  // Stub nodes under different transit DOMAINS must pay two uplinks (2x5ms)
  // plus at least one inter-domain transit hop (50 ms).
  const PhysNodeId a = t;  // stub domain 0 -> transit 0 (domain 0)
  const auto last_domain = p.total_stub_domains() - 1;
  const PhysNodeId b = t + last_domain * s;  // last stub domain
  const Seconds lat = net.latency(a, b);
  EXPECT_GE(lat, 2 * p.transit_stub_latency + p.inter_transit_latency);
}

TEST(TransitStubNetwork, TriangleInequalityViaTransit) {
  // Hierarchical routing through precomputed APSP tables must satisfy the
  // triangle inequality on the transit level.
  Rng rng(6);
  const auto net = TransitStubNetwork::generate(tiny_params(), rng);
  Rng pick(8);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<PhysNodeId>(pick.below(net.num_nodes()));
    const auto b = static_cast<PhysNodeId>(pick.below(net.num_nodes()));
    const auto c = static_cast<PhysNodeId>(pick.below(12));  // transit node
    // Distance tables are float-backed; allow float-level rounding slack.
    EXPECT_LE(net.latency(a, b),
              net.latency(a, c) + net.latency(c, b) + 1e-6);
  }
}

TEST(TransitStubNetwork, DeterministicForSeed) {
  Rng rng1(42), rng2(42);
  const auto n1 = TransitStubNetwork::generate(tiny_params(), rng1);
  const auto n2 = TransitStubNetwork::generate(tiny_params(), rng2);
  EXPECT_EQ(n1.num_links(), n2.num_links());
  Rng pick(9);
  for (int i = 0; i < 100; ++i) {
    const auto a = static_cast<PhysNodeId>(pick.below(n1.num_nodes()));
    const auto b = static_cast<PhysNodeId>(pick.below(n1.num_nodes()));
    EXPECT_DOUBLE_EQ(n1.latency(a, b), n2.latency(a, b));
  }
}

TEST(TransitStubNetwork, RejectsBadParams) {
  Rng rng(10);
  TransitStubParams p = tiny_params();
  p.transit_domains = 0;
  EXPECT_THROW(TransitStubNetwork::generate(p, rng), ConfigError);
  p = tiny_params();
  p.intra_stub_edge_prob = 1.5;
  EXPECT_THROW(TransitStubNetwork::generate(p, rng), ConfigError);
}

}  // namespace
}  // namespace asap::net
