// Shared miniature world for search/ASAP unit tests: a small transit-stub
// network, an overlay, an eDonkey-like content model and the simulation
// services, bundled behind a search::Ctx.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "net/transit_stub.hpp"
#include "overlay/overlay.hpp"
#include "search/context.hpp"
#include "sim/bandwidth.hpp"
#include "sim/engine.hpp"
#include "trace/content_model.hpp"
#include "trace/live_content.hpp"

namespace asap::testing {

struct TestWorld {
  static constexpr std::uint32_t kNodes = 300;
  static constexpr std::uint32_t kJoiners = 30;

  explicit TestWorld(std::uint64_t seed = 1234, double avg_degree = 5.0)
      : rng(seed),
        phys(net::TransitStubNetwork::generate(tiny_phys(), rng)),
        overlay(overlay::Overlay::random(kNodes, avg_degree, rng)),
        model(trace::ContentModel::build(tiny_content(), rng)),
        live(model),
        index(model, live),
        ledger(3'600.0),
        ctx(overlay, phys, node_phys, model, live, index, engine, ledger,
            sizes, rng) {
    auto picks = rng.sample_indices(phys.num_nodes(), kNodes + kJoiners);
    node_phys.assign(picks.begin(), picks.end());
  }

  static net::TransitStubParams tiny_phys() {
    net::TransitStubParams p;
    p.transit_domains = 3;
    p.transit_nodes_per_domain = 4;
    p.stub_domains_per_transit = 3;
    p.stub_nodes_per_domain = 12;
    return p;  // 12 + 36*12 = 444 physical nodes
  }

  static trace::ContentModelParams tiny_content() {
    trace::ContentModelParams p;
    p.initial_nodes = kNodes;
    p.joiner_nodes = kJoiners;
    return p;
  }

  /// Any node that shares at least one document.
  NodeId a_sharer() const {
    for (NodeId n = 0; n < kNodes; ++n) {
      if (!live.docs(n).empty()) return n;
    }
    throw InvariantError("no sharer in test world");
  }

  Rng rng;
  net::TransitStubNetwork phys;
  overlay::Overlay overlay;
  std::vector<PhysNodeId> node_phys;
  trace::ContentModel model;
  trace::LiveContent live;
  trace::ContentIndex index;
  sim::Engine engine;
  sim::BandwidthLedger ledger;
  sim::SizeModel sizes;
  search::Ctx ctx;
};

}  // namespace asap::testing
