// Execution policies (exec/policy.hpp): both backends must cover every
// index exactly once, barrier before returning, and propagate the first
// task exception — SeqPolicy is the semantic reference PoolPolicy is
// held to.
#include "exec/policy.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace asap::exec {
namespace {

TEST(ExecPolicy, HardwareLanesIsAtLeastOne) {
  // hardware_concurrency() may legitimately return 0; every auto-detect
  // (pool size, matrix jobs, engine shards) goes through this clamp.
  EXPECT_GE(hardware_lanes(), 1u);
}

TEST(ExecPolicy, SeqPolicyRunsAllIndicesInOrderOnCaller) {
  SeqPolicy seq;
  EXPECT_EQ(seq.lanes(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  seq.run(8, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ExecPolicy, PoolPolicyCoversEveryIndexOnce) {
  ThreadPool pool(4);
  PoolPolicy policy(pool);
  EXPECT_EQ(policy.lanes(), 4u);
  std::vector<std::atomic<int>> hits(128);
  policy.run(128, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecPolicy, ZeroCountIsANoOpOnBothBackends) {
  SeqPolicy seq;
  seq.run(0, [](std::size_t) { FAIL() << "must not be called"; });
  ThreadPool pool(2);
  PoolPolicy policy(pool);
  policy.run(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ExecPolicy, BothBackendsRethrowFirstTaskExceptionAfterBarrier) {
  SeqPolicy seq;
  EXPECT_THROW(seq.run(4,
                       [](std::size_t i) {
                         if (i == 2) throw std::runtime_error("seq");
                       }),
               std::runtime_error);

  ThreadPool pool(4);
  PoolPolicy policy(pool);
  std::atomic<int> ran{0};
  try {
    policy.run(32, [&](std::size_t i) {
      ++ran;
      if (i >= 3) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "3");  // lowest index, not completion order
  }
  EXPECT_EQ(ran.load(), 32);  // the barrier held: every task finished
}

}  // namespace
}  // namespace asap::exec
