#include "search/baseline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "../support/test_world.hpp"

namespace asap::search {
namespace {

using asap::testing::TestWorld;

/// Builds a query event for a document actually shared by some node.
trace::TraceEvent query_for(const TestWorld& w, NodeId holder, Seconds t,
                            NodeId requester) {
  const DocId d = w.live.docs(holder).front();
  const auto& kws = w.model.doc(d).keywords;
  trace::TraceEvent ev;
  ev.type = trace::TraceEventType::kQuery;
  ev.time = t;
  ev.node = requester;
  ev.doc = d;
  ev.num_terms = static_cast<std::uint8_t>(std::min<std::size_t>(3, kws.size()));
  for (std::uint8_t i = 0; i < ev.num_terms; ++i) ev.terms[i] = kws[i];
  return ev;
}

TEST(BaselineSearch, FloodingFindsAnExistingDocument) {
  TestWorld w;
  BaselineSearch algo(w.ctx, BaselineParams{.scheme = Scheme::kFlooding,
                                            .flood_ttl = 30});
  const NodeId holder = w.a_sharer();
  const NodeId requester = holder == 0 ? 1 : 0;
  algo.on_trace_event(query_for(w, holder, 1.0, requester));
  EXPECT_EQ(algo.stats().total(), 1u);
  EXPECT_EQ(algo.stats().successes(), 1u);
  EXPECT_GT(algo.stats().avg_response_time(), 0.0);
  EXPECT_GT(algo.stats().avg_cost_bytes(), 0.0);
}

TEST(BaselineSearch, FloodingTtlZeroAlwaysFails) {
  TestWorld w;
  BaselineSearch algo(w.ctx, BaselineParams{.scheme = Scheme::kFlooding,
                                            .flood_ttl = 0});
  const NodeId holder = w.a_sharer();
  algo.on_trace_event(query_for(w, holder, 1.0, holder == 0 ? 1 : 0));
  EXPECT_EQ(algo.stats().successes(), 0u);
}

TEST(BaselineSearch, QueryForAbsentTermsFails) {
  TestWorld w;
  BaselineSearch algo(w.ctx, BaselineParams{.scheme = Scheme::kFlooding,
                                            .flood_ttl = 30});
  trace::TraceEvent ev;
  ev.type = trace::TraceEventType::kQuery;
  ev.time = 1.0;
  ev.node = 0;
  ev.num_terms = 1;
  ev.terms[0] = 0xFFFFFFF0;  // exists nowhere
  algo.on_trace_event(ev);
  EXPECT_EQ(algo.stats().total(), 1u);
  EXPECT_EQ(algo.stats().successes(), 0u);
  EXPECT_GT(algo.stats().avg_cost_bytes(), 0.0)
      << "a failed flood still floods";
}

TEST(BaselineSearch, RequesterOwnContentDoesNotCount) {
  TestWorld w;
  BaselineSearch algo(w.ctx, BaselineParams{.scheme = Scheme::kFlooding,
                                            .flood_ttl = 30});
  // Ask for a doc only the requester holds: must fail (we search the
  // network, not ourselves).
  NodeId lone = kInvalidNode;
  DocId doc = kInvalidDoc;
  for (NodeId n = 0; n < TestWorld::kNodes && lone == kInvalidNode; ++n) {
    for (DocId d : w.live.docs(n)) {
      const auto holders =
          w.index.matching_nodes(w.model.doc(d).keywords, w.live, w.model);
      if (holders.size() == 1 && holders[0] == n) {
        lone = n;
        doc = d;
        break;
      }
    }
  }
  ASSERT_NE(lone, kInvalidNode) << "89% of docs are single-copy";
  trace::TraceEvent ev;
  ev.type = trace::TraceEventType::kQuery;
  ev.time = 1.0;
  ev.node = lone;
  ev.doc = doc;
  const auto& kws = w.model.doc(doc).keywords;
  ev.num_terms = static_cast<std::uint8_t>(std::min<std::size_t>(3, kws.size()));
  for (std::uint8_t i = 0; i < ev.num_terms; ++i) ev.terms[i] = kws[i];
  algo.on_trace_event(ev);
  EXPECT_EQ(algo.stats().successes(), 0u);
}

TEST(BaselineSearch, RandomWalkStopsWalkersOnHit) {
  TestWorld w;
  // Huge budget: without stop-on-hit the cost would be walkers*ttl
  // messages; with hits, strictly less in expectation. Use a document with
  // many replicas (popular term) to make hits certain.
  BaselineSearch algo(w.ctx, BaselineParams{.scheme = Scheme::kRandomWalk,
                                            .walkers = 5,
                                            .walker_ttl = 10'000});
  const NodeId holder = w.a_sharer();
  const NodeId requester = holder == 0 ? 1 : 0;
  // Single-term query on the doc's first keyword: likely several holders.
  trace::TraceEvent ev = query_for(w, holder, 1.0, requester);
  ev.num_terms = 1;
  algo.on_trace_event(ev);
  EXPECT_EQ(algo.stats().successes(), 1u);
  EXPECT_LT(algo.stats().avg_messages(), 5.0 * 10'000.0);
}

TEST(BaselineSearch, GsaRespectsBudget) {
  TestWorld w;
  const std::uint64_t budget = 500;
  BaselineSearch algo(w.ctx, BaselineParams{.scheme = Scheme::kGsa,
                                            .gsa_budget = budget});
  const NodeId holder = w.a_sharer();
  trace::TraceEvent ev = query_for(w, holder, 1.0, holder == 0 ? 1 : 0);
  ev.terms[0] = 0xFFFFFFF0;  // force a miss so the full budget is spent
  ev.num_terms = 1;
  algo.on_trace_event(ev);
  EXPECT_LE(algo.stats().avg_messages(), static_cast<double>(budget));
  EXPECT_GT(algo.stats().avg_messages(), static_cast<double>(budget) * 0.5);
}

TEST(BaselineSearch, CostCountsQueryMessagesOnly) {
  TestWorld w;
  BaselineSearch algo(w.ctx, BaselineParams{.scheme = Scheme::kFlooding,
                                            .flood_ttl = 30});
  const auto responses_before = w.ledger.total(sim::Traffic::kResponse);
  const NodeId holder = w.a_sharer();
  algo.on_trace_event(query_for(w, holder, 1.0, holder == 0 ? 1 : 0));
  // Responses were generated (ledger) but never added to cost: cost must
  // equal the query-message bytes, which are a multiple of the query size.
  EXPECT_GT(w.ledger.total(sim::Traffic::kResponse), responses_before);
  const auto cost = algo.stats().avg_cost_bytes();
  EXPECT_DOUBLE_EQ(std::fmod(cost, static_cast<double>(w.sizes.query)), 0.0);
}

TEST(BaselineSearch, NonQueryEventsAreIgnored) {
  TestWorld w;
  BaselineSearch algo(w.ctx, BaselineParams{});
  trace::TraceEvent ev;
  ev.type = trace::TraceEventType::kLeave;
  ev.node = 3;
  algo.on_trace_event(ev);
  EXPECT_EQ(algo.stats().total(), 0u);
}

TEST(BaselineSearch, NamesMatchScheme) {
  TestWorld w;
  EXPECT_EQ(BaselineSearch(w.ctx, BaselineParams{.scheme = Scheme::kFlooding})
                .name(),
            "flooding");
  EXPECT_EQ(
      BaselineSearch(w.ctx, BaselineParams{.scheme = Scheme::kRandomWalk})
          .name(),
      "random-walk");
  EXPECT_EQ(BaselineSearch(w.ctx, BaselineParams{.scheme = Scheme::kGsa})
                .name(),
            "gsa");
}

TEST(BaselineSearch, ScaledPresetsShrinkBudgets) {
  const auto small = BaselineParams::small(Scheme::kRandomWalk);
  const auto paper = BaselineParams::paper(Scheme::kRandomWalk);
  EXPECT_LT(small.walker_ttl, paper.walker_ttl);
  EXPECT_LT(small.gsa_budget, paper.gsa_budget);
  EXPECT_EQ(paper.walker_ttl, 1'024u);  // §IV-A
  EXPECT_EQ(paper.gsa_budget, 8'000u);
  EXPECT_EQ(paper.flood_ttl, 6u);
  EXPECT_EQ(paper.walkers, 5u);
}

}  // namespace
}  // namespace asap::search
