#include "search/gossip.hpp"

#include <gtest/gtest.h>

#include "../support/test_world.hpp"

namespace asap::search {
namespace {

using asap::testing::TestWorld;

trace::TraceEvent query_event(const TestWorld& w, NodeId requester,
                              NodeId holder, Seconds t) {
  const DocId d = w.live.docs(holder).front();
  const auto& kws = w.model.doc(d).keywords;
  trace::TraceEvent ev;
  ev.type = trace::TraceEventType::kQuery;
  ev.time = t;
  ev.node = requester;
  ev.doc = d;
  ev.num_terms = static_cast<std::uint8_t>(std::min<std::size_t>(3, kws.size()));
  for (std::uint8_t i = 0; i < ev.num_terms; ++i) ev.terms[i] = kws[i];
  return ev;
}

TEST(GossipIndexSearch, WarmupReplicatesEverySharer) {
  TestWorld w;
  GossipIndexSearch algo(w.ctx, GossipParams{});
  algo.warm_up(120.0);
  std::size_t sharers = 0;
  for (NodeId n = 0; n < TestWorld::kNodes; ++n) {
    sharers += !w.live.docs(n).empty();
  }
  EXPECT_EQ(algo.directory_size(), sharers);
  EXPECT_GT(w.ledger.total(sim::Traffic::kFullAd), 0u)
      << "global replication traffic must be accounted";
}

TEST(GossipIndexSearch, LocalLookupFindsEverything) {
  TestWorld w;
  GossipIndexSearch algo(w.ctx, GossipParams{});
  algo.warm_up(120.0);
  // Past the replication delay every search over warm content succeeds.
  const NodeId holder = w.a_sharer();
  algo.on_trace_event(query_event(w, holder == 0 ? 1 : 0, holder, 500.0));
  EXPECT_EQ(algo.stats().successes(), 1u);
  EXPECT_DOUBLE_EQ(algo.stats().local_hit_rate(), 1.0);
}

TEST(GossipIndexSearch, UpdatesInvisibleBeforeReplicationDelay) {
  TestWorld w;
  GossipIndexSearch algo(w.ctx, GossipParams{});
  algo.warm_up(120.0);
  // Mint a fresh doc for a free-rider (no previous filter) and query for
  // it immediately: the update has not replicated yet.
  NodeId newcomer = kInvalidNode;
  for (NodeId n = 0; n < TestWorld::kNodes; ++n) {
    if (w.live.docs(n).empty()) {
      newcomer = n;
      break;
    }
  }
  ASSERT_NE(newcomer, kInvalidNode);
  Rng mint_rng(5);
  auto& model = const_cast<trace::ContentModel&>(w.model);
  const DocId fresh = model.mint_document(0, mint_rng);
  trace::TraceEvent add;
  add.type = trace::TraceEventType::kAddDoc;
  add.time = 500.0;
  add.node = newcomer;
  add.doc = fresh;
  w.live.apply(add, w.model);
  algo.on_trace_event(add);

  trace::TraceEvent q;
  q.type = trace::TraceEventType::kQuery;
  q.time = 500.5;  // well inside the replication window
  q.node = newcomer == 0 ? 1 : 0;
  q.doc = fresh;
  q.num_terms = 1;
  q.terms[0] = w.model.doc(fresh).keywords.back();
  algo.on_trace_event(q);
  EXPECT_EQ(algo.stats().successes(), 0u);

  // After the delay the same query succeeds.
  q.time = 600.0;
  algo.on_trace_event(q);
  EXPECT_EQ(algo.stats().successes(), 1u);
}

TEST(GossipIndexSearch, LoadScalesWithEveryUpdate) {
  // Two identical worlds; the one receiving content changes pays global
  // replication for each.
  TestWorld w1(7), w2(7);
  GossipIndexSearch a(w1.ctx, GossipParams{});
  GossipIndexSearch b(w2.ctx, GossipParams{});
  a.warm_up(120.0);
  b.warm_up(120.0);
  const auto base = w1.ledger.total(sim::Traffic::kFullAd);
  ASSERT_EQ(base, w2.ledger.total(sim::Traffic::kFullAd));
  Rng mint_rng(6);
  auto& model = const_cast<trace::ContentModel&>(w2.model);
  const NodeId sharer = w2.a_sharer();
  for (int i = 0; i < 5; ++i) {
    trace::TraceEvent add;
    add.type = trace::TraceEventType::kAddDoc;
    add.time = 200.0 + i;
    add.node = sharer;
    add.doc = model.mint_document(1, mint_rng);
    w2.live.apply(add, w2.model);
    b.on_trace_event(add);
  }
  EXPECT_GT(w2.ledger.total(sim::Traffic::kFullAd), base);
}

TEST(GossipIndexSearch, RejectsBadParams) {
  TestWorld w;
  GossipParams p;
  p.round_period = 0.0;
  EXPECT_THROW(GossipIndexSearch(w.ctx, p), ConfigError);
  p = GossipParams{};
  p.redundancy = 0.5;
  EXPECT_THROW(GossipIndexSearch(w.ctx, p), ConfigError);
}

}  // namespace
}  // namespace asap::search
