#include <gtest/gtest.h>

#include <map>

#include "../support/test_world.hpp"
#include "search/propagation.hpp"

namespace asap::search {
namespace {

using asap::testing::TestWorld;

TEST(BiasedWalk, UniformWeightMatchesBudgetSemantics) {
  TestWorld w;
  std::uint64_t visits = 0;
  const auto stats = biased_walk(
      w.ctx, 0, 0.0, 3, 40, 80, sim::Traffic::kQuery,
      [](NodeId) { return 1.0; },
      [&](NodeId, Seconds, std::uint32_t) {
        ++visits;
        return VisitAction::kContinue;
      });
  EXPECT_EQ(stats.messages, 3u * 40u);
  EXPECT_EQ(visits, stats.messages);
}

TEST(BiasedWalk, PrefersHeavyNeighbors) {
  TestWorld w;
  // Mark half the nodes "hot"; a strongly biased walk must visit hot
  // nodes far more often than cold ones.
  auto is_hot = [](NodeId n) { return n % 2 == 0; };
  std::uint64_t hot = 0, cold = 0;
  biased_walk(
      w.ctx, 1, 0.0, 10, 2'000, 80, sim::Traffic::kQuery,
      [&](NodeId n) { return is_hot(n) ? 50.0 : 1.0; },
      [&](NodeId n, Seconds, std::uint32_t) {
        (is_hot(n) ? hot : cold) += 1;
        return VisitAction::kContinue;
      });
  ASSERT_GT(hot + cold, 0u);
  EXPECT_GT(hot, cold * 3);
}

TEST(BiasedWalk, StopActionsHonored) {
  TestWorld w;
  std::uint64_t visits = 0;
  biased_walk(
      w.ctx, 0, 0.0, 5, 100, 80, sim::Traffic::kQuery,
      [](NodeId) { return 1.0; },
      [&](NodeId, Seconds, std::uint32_t) {
        ++visits;
        return visits >= 9 ? VisitAction::kStopAll : VisitAction::kContinue;
      });
  EXPECT_EQ(visits, 9u);
}

TEST(BiasedWalk, OfflineOriginProducesNothing) {
  TestWorld w;
  w.live.set_online(3, false);
  const auto stats = biased_walk(
      w.ctx, 3, 0.0, 5, 100, 80, sim::Traffic::kQuery,
      [](NodeId) { return 1.0; },
      [](NodeId, Seconds, std::uint32_t) { return VisitAction::kContinue; });
  EXPECT_EQ(stats.messages, 0u);
  w.live.set_online(3, true);
}

TEST(GraphScope, SubstitutesAndRestores) {
  TestWorld w;
  auto mesh = overlay::Overlay::edgeless(w.overlay.num_nodes());
  // A two-node line: 0 - 1; everything else edgeless.
  mesh.add_edge(0, 1);
  {
    GraphScope scope(w.ctx, mesh);
    std::uint64_t visits = 0;
    flood(w.ctx, 0, 0.0, 10, 80, sim::Traffic::kQuery,
          [&](NodeId n, Seconds, std::uint32_t) {
            EXPECT_EQ(n, 1u);
            ++visits;
            return VisitAction::kContinue;
          });
    EXPECT_EQ(visits, 1u);
  }
  // Scope ended: kernels use the full overlay again.
  std::uint64_t visits = 0;
  flood(w.ctx, 0, 0.0, 1, 80, sim::Traffic::kQuery,
        [&](NodeId, Seconds, std::uint32_t) {
          ++visits;
          return VisitAction::kContinue;
        });
  EXPECT_EQ(visits, w.overlay.degree(0));
}

TEST(GraphScope, RejectsUndersizedSubstitute) {
  TestWorld w;
  auto tiny = overlay::Overlay::edgeless(2);
  EXPECT_THROW(GraphScope(w.ctx, tiny), ConfigError);
}

}  // namespace
}  // namespace asap::search
