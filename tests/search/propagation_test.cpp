#include "search/propagation.hpp"

#include <gtest/gtest.h>

#include <set>

#include "../support/test_world.hpp"

namespace asap::search {
namespace {

using asap::testing::TestWorld;

TEST(Flood, Ttl1VisitsOnlineNeighborsOnly) {
  TestWorld w;
  const NodeId origin = 0;
  std::set<NodeId> visited;
  const auto stats = flood(w.ctx, origin, 0.0, 1, 80, sim::Traffic::kQuery,
                           [&](NodeId n, Seconds, std::uint32_t hops) {
                             EXPECT_EQ(hops, 1u);
                             visited.insert(n);
                             return VisitAction::kContinue;
                           });
  std::set<NodeId> expected;
  for (NodeId nb : w.overlay.neighbors(origin)) expected.insert(nb);
  EXPECT_EQ(visited, expected);
  EXPECT_EQ(stats.unique_nodes, expected.size());
  EXPECT_GE(stats.messages, expected.size());
  EXPECT_EQ(stats.bytes, stats.messages * 80);
}

TEST(Flood, LargeTtlReachesWholeConnectedOverlay) {
  TestWorld w;
  std::set<NodeId> visited;
  flood(w.ctx, 0, 0.0, 30, 80, sim::Traffic::kQuery,
        [&](NodeId n, Seconds, std::uint32_t) {
          visited.insert(n);
          return VisitAction::kContinue;
        });
  // Everything except the origin itself.
  EXPECT_EQ(visited.size(), TestWorld::kNodes - 1);
}

TEST(Flood, ArrivalTimesIncreaseWithHops) {
  TestWorld w;
  Seconds first_hop_max = 0.0;
  flood(w.ctx, 0, 10.0, 6, 80, sim::Traffic::kQuery,
        [&](NodeId, Seconds t, std::uint32_t hops) {
          EXPECT_GT(t, 10.0);
          if (hops == 1) first_hop_max = std::max(first_hop_max, t);
          return VisitAction::kContinue;
        });
  EXPECT_GT(first_hop_max, 10.0);
}

TEST(Flood, SkipsOfflineNodes) {
  TestWorld w;
  const NodeId origin = 0;
  const auto nbs = w.overlay.neighbors(origin);
  ASSERT_GE(nbs.size(), 1u);
  const NodeId dead = nbs[0];
  w.live.set_online(dead, false);
  std::set<NodeId> visited;
  flood(w.ctx, origin, 0.0, 2, 80, sim::Traffic::kQuery,
        [&](NodeId n, Seconds, std::uint32_t) {
          visited.insert(n);
          return VisitAction::kContinue;
        });
  EXPECT_EQ(visited.count(dead), 0u);
  w.live.set_online(dead, true);
}

TEST(Flood, OfflineOriginDoesNothing) {
  TestWorld w;
  w.live.set_online(0, false);
  const auto stats = flood(w.ctx, 0, 0.0, 6, 80, sim::Traffic::kQuery,
                           [&](NodeId, Seconds, std::uint32_t) {
                             ADD_FAILURE() << "must not visit";
                             return VisitAction::kContinue;
                           });
  EXPECT_EQ(stats.messages, 0u);
  w.live.set_online(0, true);
}

TEST(Flood, StopAllTerminatesEarly) {
  TestWorld w;
  int visits = 0;
  flood(w.ctx, 0, 0.0, 30, 80, sim::Traffic::kQuery,
        [&](NodeId, Seconds, std::uint32_t) {
          return ++visits >= 5 ? VisitAction::kStopAll
                               : VisitAction::kContinue;
        });
  EXPECT_EQ(visits, 5);
}

TEST(Flood, DepositsBytesIntoLedger) {
  TestWorld w;
  const auto before = w.ledger.total(sim::Traffic::kQuery);
  const auto stats =
      flood(w.ctx, 0, 0.0, 3, 100, sim::Traffic::kQuery,
            [](NodeId, Seconds, std::uint32_t) {
              return VisitAction::kContinue;
            });
  EXPECT_EQ(w.ledger.total(sim::Traffic::kQuery) - before, stats.bytes);
}

TEST(RandomWalk, RespectsPerWalkerBudget) {
  TestWorld w;
  std::uint64_t visits = 0;
  const auto stats = random_walk(w.ctx, 0, 0.0, 3, 50, 80,
                                 sim::Traffic::kQuery,
                                 [&](NodeId, Seconds, std::uint32_t) {
                                   ++visits;
                                   return VisitAction::kContinue;
                                 });
  EXPECT_EQ(stats.messages, 3u * 50u);
  EXPECT_EQ(visits, stats.messages);
  EXPECT_EQ(stats.bytes, stats.messages * 80);
}

TEST(RandomWalk, StopWalkerEndsOnlyThatWalker) {
  TestWorld w;
  std::uint64_t visits = 0;
  const auto stats = random_walk(w.ctx, 0, 0.0, 4, 100, 80,
                                 sim::Traffic::kQuery,
                                 [&](NodeId, Seconds, std::uint32_t hops) {
                                   ++visits;
                                   return hops >= 10
                                              ? VisitAction::kStopWalker
                                              : VisitAction::kContinue;
                                 });
  EXPECT_EQ(stats.messages, 4u * 10u);
  EXPECT_EQ(visits, 40u);
}

TEST(RandomWalk, StopAllEndsEverything) {
  TestWorld w;
  std::uint64_t visits = 0;
  random_walk(w.ctx, 0, 0.0, 5, 100, 80, sim::Traffic::kQuery,
              [&](NodeId, Seconds, std::uint32_t) {
                ++visits;
                return visits >= 7 ? VisitAction::kStopAll
                                   : VisitAction::kContinue;
              });
  EXPECT_EQ(visits, 7u);
}

TEST(RandomWalk, TimeAdvancesMonotonicallyPerWalker) {
  TestWorld w;
  Seconds last = 0.0;
  std::uint32_t last_hops = 0;
  random_walk(w.ctx, 0, 5.0, 1, 200, 80, sim::Traffic::kQuery,
              [&](NodeId, Seconds t, std::uint32_t hops) {
                EXPECT_GT(t, last);
                EXPECT_EQ(hops, last_hops + 1);
                last = t;
                last_hops = hops;
                return VisitAction::kContinue;
              });
  EXPECT_EQ(last_hops, 200u);
}

TEST(RandomWalk, IsolatedOriginProducesNothing) {
  TestWorld w;
  // Detach node 1 completely, then walk from it.
  w.overlay.detach(1);
  const auto stats = random_walk(w.ctx, 1, 0.0, 5, 100, 80,
                                 sim::Traffic::kQuery,
                                 [](NodeId, Seconds, std::uint32_t) {
                                   return VisitAction::kContinue;
                                 });
  EXPECT_EQ(stats.messages, 0u);
}

TEST(Gsa, BudgetBoundsMessages) {
  TestWorld w;
  for (std::uint64_t budget : {1ULL, 10ULL, 100ULL, 1'000ULL}) {
    const auto stats = gsa(w.ctx, 0, 0.0, budget, 80, sim::Traffic::kQuery,
                           [](NodeId, Seconds, std::uint32_t) {
                             return VisitAction::kContinue;
                           });
    EXPECT_LE(stats.messages, budget);
    EXPECT_GT(stats.messages, 0u);
  }
}

TEST(Gsa, FirstPhaseHitsAllNeighbors) {
  TestWorld w;
  std::set<NodeId> hop1;
  gsa(w.ctx, 0, 0.0, 10'000, 80, sim::Traffic::kQuery,
      [&](NodeId n, Seconds, std::uint32_t hops) {
        if (hops == 1) hop1.insert(n);
        return VisitAction::kContinue;
      });
  std::set<NodeId> expected;
  for (NodeId nb : w.overlay.neighbors(0)) expected.insert(nb);
  EXPECT_EQ(hop1, expected);
}

TEST(Gsa, StopAllHaltsPropagation) {
  TestWorld w;
  std::uint64_t visits = 0;
  gsa(w.ctx, 0, 0.0, 10'000, 80, sim::Traffic::kQuery,
      [&](NodeId, Seconds, std::uint32_t) {
        ++visits;
        return visits >= 12 ? VisitAction::kStopAll
                            : VisitAction::kContinue;
      });
  EXPECT_EQ(visits, 12u);
}

TEST(Gsa, BehavesLikeFloodWithinBudget) {
  // A GSA whose budget exceeds the full flood's message count must visit
  // exactly the same nodes at the same times as an unbounded flood.
  TestWorld w1(555), w2(555);
  std::vector<std::pair<NodeId, Seconds>> flood_visits, gsa_visits;
  flood(w1.ctx, 0, 0.0, 30, 80, sim::Traffic::kQuery,
        [&](NodeId n, Seconds t, std::uint32_t) {
          flood_visits.emplace_back(n, t);
          return VisitAction::kContinue;
        });
  gsa(w2.ctx, 0, 0.0, 1'000'000, 80, sim::Traffic::kQuery,
      [&](NodeId n, Seconds t, std::uint32_t) {
        gsa_visits.emplace_back(n, t);
        return VisitAction::kContinue;
      });
  EXPECT_EQ(flood_visits, gsa_visits);
}

TEST(Gsa, SmallBudgetReachesFewerNodesThanLargeBudget) {
  std::set<NodeId> small_set, large_set;
  {
    TestWorld w(888);
    gsa(w.ctx, 0, 0.0, 30, 80, sim::Traffic::kQuery,
        [&](NodeId n, Seconds, std::uint32_t) {
          small_set.insert(n);
          return VisitAction::kContinue;
        });
  }
  {
    TestWorld w(888);
    gsa(w.ctx, 0, 0.0, 600, 80, sim::Traffic::kQuery,
        [&](NodeId n, Seconds, std::uint32_t) {
          large_set.insert(n);
          return VisitAction::kContinue;
        });
  }
  EXPECT_LT(small_set.size(), large_set.size());
}

TEST(Propagation, DeterministicForSeed) {
  auto run = [] {
    TestWorld w(777);
    std::vector<NodeId> seq;
    random_walk(w.ctx, 0, 0.0, 2, 64, 80, sim::Traffic::kQuery,
                [&](NodeId n, Seconds, std::uint32_t) {
                  seq.push_back(n);
                  return VisitAction::kContinue;
                });
    return seq;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace asap::search
