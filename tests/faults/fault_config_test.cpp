#include "faults/fault_config.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/json.hpp"

namespace asap::faults {
namespace {

TEST(FaultConfig, DefaultsAreOffAndValid) {
  FaultConfig c;
  EXPECT_FALSE(c.any());
  EXPECT_NO_THROW(c.validate());
}

TEST(FaultConfig, HardeningKnobsAloneAreNotAFault) {
  // confirm_attempts/stale_strikes/confirm_backoff change nothing unless an
  // injector is armed, so they must not count as "faults on".
  FaultConfig c;
  c.confirm_attempts = 3;
  c.stale_strikes = 2;
  c.confirm_backoff = 0.5;
  EXPECT_FALSE(c.any());
}

TEST(FaultConfig, AnyFaultClassCounts) {
  for (int which = 0; which < 5; ++which) {
    FaultConfig c;
    switch (which) {
      case 0: c.crash_fraction = 0.01; break;
      case 1: c.link_loss = 0.01; break;
      case 2: c.latency_jitter = 0.1; break;
      case 3: c.partitions = 1; break;
      case 4: c.bursts = 1; break;
    }
    EXPECT_TRUE(c.any()) << "fault class " << which;
  }
}

TEST(FaultConfig, ValidateRejectsOutOfRange) {
  const auto reject = [](auto mutate) {
    FaultConfig c;
    mutate(c);
    EXPECT_THROW(c.validate(), ConfigError);
  };
  reject([](FaultConfig& c) { c.crash_fraction = 1.5; });
  reject([](FaultConfig& c) { c.link_loss = -0.1; });
  reject([](FaultConfig& c) { c.burst_loss = 2.0; });
  reject([](FaultConfig& c) { c.latency_jitter = 1.0; });  // must stay < 1
  reject([](FaultConfig& c) { c.partition_fraction = 0.0; });
  reject([](FaultConfig& c) { c.burst_duration = 0.0; });
  reject([](FaultConfig& c) { c.crash_detection = -1.0; });
}

TEST(FaultPresets, CanonicalNamesAllResolve) {
  const auto& names = fault_preset_names();
  ASSERT_EQ(names.size(), 11u);
  EXPECT_EQ(names.front(), "none");
  for (const auto& name : names) {
    const FaultScenario s = fault_preset(name);
    EXPECT_EQ(s.name, name);
    EXPECT_NO_THROW(s.config.validate());
    EXPECT_EQ(s.config.any(), name != "none") << name;
  }
}

TEST(FaultPresets, AdversePresetsAreHardened) {
  for (const auto& name : fault_preset_names()) {
    if (name == "none") continue;
    const FaultScenario s = fault_preset(name);
    EXPECT_GT(s.config.confirm_attempts, 1u) << name;
    EXPECT_GT(s.config.stale_strikes, 0u) << name;
  }
}

TEST(FaultPresets, UnknownNameThrowsReadableMessage) {
  try {
    fault_preset("bogus");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown fault preset 'bogus'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("none, churn, lossy, partition, burst, chaos, "
                       "polluted, polluted-open, storm, storm-open, "
                       "byzantine"),
              std::string::npos)
        << "message must list the available presets: " << msg;
  }
}

TEST(FaultScenarioSpec, ResolvesPresetNames) {
  const FaultScenario s = scenario_from_spec("churn");
  EXPECT_EQ(s.name, "churn");
  EXPECT_GT(s.config.crash_fraction, 0.0);
}

TEST(FaultScenarioSpec, MissingFileThrows) {
  EXPECT_THROW(scenario_from_spec("/nonexistent/scenario.json"), ConfigError);
  EXPECT_THROW(scenario_from_spec("also_missing.json"), ConfigError);
}

TEST(FaultScenarioJson, RoundTripsEveryField) {
  const FaultScenario chaos = fault_preset("chaos");
  const FaultScenario back = scenario_from_json(scenario_to_json(chaos));
  EXPECT_EQ(back.name, chaos.name);
  const FaultConfig& a = chaos.config;
  const FaultConfig& b = back.config;
  EXPECT_DOUBLE_EQ(b.crash_fraction, a.crash_fraction);
  EXPECT_DOUBLE_EQ(b.crash_detection, a.crash_detection);
  EXPECT_DOUBLE_EQ(b.link_loss, a.link_loss);
  EXPECT_DOUBLE_EQ(b.latency_jitter, a.latency_jitter);
  EXPECT_EQ(b.partitions, a.partitions);
  EXPECT_DOUBLE_EQ(b.partition_duration, a.partition_duration);
  EXPECT_DOUBLE_EQ(b.partition_fraction, a.partition_fraction);
  EXPECT_EQ(b.bursts, a.bursts);
  EXPECT_DOUBLE_EQ(b.burst_duration, a.burst_duration);
  EXPECT_DOUBLE_EQ(b.burst_loss, a.burst_loss);
  EXPECT_EQ(b.confirm_attempts, a.confirm_attempts);
  EXPECT_EQ(b.stale_strikes, a.stale_strikes);
  EXPECT_DOUBLE_EQ(b.confirm_backoff, a.confirm_backoff);
}

TEST(FaultScenarioJson, AbsentKeysKeepDefaultsAndBadValuesThrow) {
  json::Object o;
  o.emplace_back("name", "sparse");
  o.emplace_back("link_loss", 0.25);
  const FaultScenario s = scenario_from_json(json::Value(std::move(o)));
  EXPECT_EQ(s.name, "sparse");
  EXPECT_DOUBLE_EQ(s.config.link_loss, 0.25);
  EXPECT_DOUBLE_EQ(s.config.crash_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.config.burst_loss, 0.9);  // untouched default

  json::Object bad;
  bad.emplace_back("name", "broken");
  bad.emplace_back("crash_fraction", 7.0);
  EXPECT_THROW(scenario_from_json(json::Value(std::move(bad))), ConfigError);
}

}  // namespace
}  // namespace asap::faults
