#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <set>

namespace asap::faults {
namespace {

constexpr Seconds kStart = 60.0;
constexpr Seconds kEnd = 660.0;
constexpr std::uint32_t kNodes = 200;
constexpr std::uint32_t kDomains = 12;

FaultPlan build(const FaultConfig& cfg, std::uint64_t seed = 7,
                std::span<const trace::TraceEvent> events = {}) {
  return FaultPlan::build(cfg, seed, kNodes, events, kStart, kEnd, kDomains);
}

TEST(FaultPlan, ZeroConfigCompilesToEmptyPlan) {
  const FaultPlan plan = build(FaultConfig{});
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.crashes().empty());
  EXPECT_TRUE(plan.bursts().empty());
  EXPECT_TRUE(plan.partitions().empty());
  EXPECT_EQ(plan.first_fault_time(),
            std::numeric_limits<double>::infinity());
}

TEST(FaultPlan, SameSeedSamePlan) {
  FaultConfig cfg;
  cfg.crash_fraction = 0.10;
  cfg.partitions = 2;
  cfg.bursts = 3;
  const FaultPlan a = build(cfg);
  const FaultPlan b = build(cfg);
  ASSERT_EQ(a.crashes().size(), b.crashes().size());
  for (std::size_t i = 0; i < a.crashes().size(); ++i) {
    EXPECT_EQ(a.crashes()[i].node, b.crashes()[i].node);
    EXPECT_DOUBLE_EQ(a.crashes()[i].at, b.crashes()[i].at);
  }
  ASSERT_EQ(a.partitions().size(), b.partitions().size());
  for (std::size_t i = 0; i < a.partitions().size(); ++i) {
    EXPECT_EQ(a.partitions()[i].domains, b.partitions()[i].domains);
  }
  EXPECT_DOUBLE_EQ(a.first_fault_time(), b.first_fault_time());
}

TEST(FaultPlan, CrashesMatchFractionAndStayInWindow) {
  FaultConfig cfg;
  cfg.crash_fraction = 0.10;
  cfg.crash_detection = 25.0;
  const FaultPlan plan = build(cfg);
  ASSERT_EQ(plan.crashes().size(), 20u);  // 10% of 200
  std::set<NodeId> nodes;
  for (const auto& c : plan.crashes()) {
    EXPECT_LT(c.node, kNodes);
    EXPECT_TRUE(nodes.insert(c.node).second) << "node crashed twice";
    EXPECT_GE(c.at, kStart);
    EXPECT_LT(c.at, kEnd);
    EXPECT_DOUBLE_EQ(c.detect_at, c.at + 25.0);
  }
  EXPECT_DOUBLE_EQ(plan.first_fault_time(), plan.crashes().front().at);
  for (const auto& c : plan.crashes()) {
    EXPECT_LE(plan.first_fault_time(), c.at);
  }
}

TEST(FaultPlan, TraceChurnedNodesAreNeverCrashCandidates) {
  // Churn the first half of the population via every churn event type; a
  // 100% crash fraction must then only pick from the untouched half.
  std::vector<trace::TraceEvent> events;
  for (NodeId n = 0; n < kNodes / 2; ++n) {
    trace::TraceEvent ev;
    ev.time = 1.0 * n;
    ev.type = n % 3 == 0   ? trace::TraceEventType::kJoin
              : n % 3 == 1 ? trace::TraceEventType::kLeave
                           : trace::TraceEventType::kRejoin;
    ev.node = n;
    events.push_back(ev);
  }
  FaultConfig cfg;
  cfg.crash_fraction = 1.0;
  const FaultPlan plan = build(cfg, 7, events);
  EXPECT_EQ(plan.crashes().size(), kNodes / 2);
  for (const auto& c : plan.crashes()) {
    EXPECT_GE(c.node, kNodes / 2) << "crash collides with trace churn";
  }
}

TEST(FaultPlan, BurstAndPartitionWindowsLandInMeasurement) {
  FaultConfig cfg;
  cfg.bursts = 3;
  cfg.burst_duration = 15.0;
  cfg.partitions = 2;
  cfg.partition_duration = 60.0;
  cfg.partition_fraction = 0.25;
  const FaultPlan plan = build(cfg);
  ASSERT_EQ(plan.bursts().size(), 3u);
  for (const auto& w : plan.bursts()) {
    EXPECT_GE(w.begin, kStart);
    EXPECT_LT(w.begin, kEnd);
    EXPECT_DOUBLE_EQ(w.end, w.begin + 15.0);
  }
  ASSERT_EQ(plan.partitions().size(), 2u);
  for (const auto& p : plan.partitions()) {
    EXPECT_GE(p.begin, kStart);
    EXPECT_LT(p.begin, kEnd);
    EXPECT_DOUBLE_EQ(p.end, p.begin + 60.0);
    EXPECT_FALSE(p.domains.empty());
    EXPECT_LE(p.domains.size(), kDomains / 4 + 1);
    for (std::size_t i = 0; i < p.domains.size(); ++i) {
      EXPECT_LT(p.domains[i], kDomains);
      if (i > 0) {
        EXPECT_LT(p.domains[i - 1], p.domains[i]) << "not sorted";
      }
    }
  }
}

TEST(FaultPlan, ContinuousLinkFaultsStartAtMeasureStart) {
  FaultConfig loss;
  loss.link_loss = 0.05;
  EXPECT_DOUBLE_EQ(build(loss).first_fault_time(), kStart);

  FaultConfig jitter;
  jitter.latency_jitter = 0.25;
  EXPECT_DOUBLE_EQ(build(jitter).first_fault_time(), kStart);
  EXPECT_FALSE(build(jitter).empty());
}

FaultConfig byzantine_cfg() {
  FaultConfig cfg;
  cfg.polluter_fraction = 0.10;
  cfg.stale_advertiser_fraction = 0.05;
  cfg.confirm_dropper_fraction = 0.05;
  cfg.crash_fraction = 0.10;
  cfg.storms = 2;
  return cfg;
}

TEST(FaultPlanAdversarial, RolesMatchFractionsSortedAndDisjoint) {
  const FaultPlan plan = build(byzantine_cfg());
  EXPECT_EQ(plan.polluters().size(), 20u);         // 10% of 200
  EXPECT_EQ(plan.stale_advertisers().size(), 10u); // 5%
  EXPECT_EQ(plan.confirm_droppers().size(), 10u);  // 5%
  std::set<NodeId> seen;
  const auto check_roster = [&](const std::vector<NodeId>& roster,
                                const char* name) {
    for (std::size_t i = 0; i < roster.size(); ++i) {
      EXPECT_LT(roster[i], kNodes) << name;
      if (i > 0) {
        EXPECT_LT(roster[i - 1], roster[i]) << name << " not sorted";
      }
      EXPECT_TRUE(seen.insert(roster[i]).second)
          << name << ": node " << roster[i] << " holds two roles";
    }
  };
  check_roster(plan.polluters(), "polluters");
  check_roster(plan.stale_advertisers(), "stale-advertisers");
  check_roster(plan.confirm_droppers(), "confirm-droppers");
  // Disjoint from the crash roster too: a crashed polluter would make the
  // "under attack" population ambiguous.
  for (const auto& c : plan.crashes()) {
    EXPECT_TRUE(seen.insert(c.node).second)
        << "node " << c.node << " both crashes and holds a Byzantine role";
  }
}

TEST(FaultPlanAdversarial, SameSeedSameRosters) {
  const FaultPlan a = build(byzantine_cfg());
  const FaultPlan b = build(byzantine_cfg());
  EXPECT_EQ(a.polluters(), b.polluters());
  EXPECT_EQ(a.stale_advertisers(), b.stale_advertisers());
  EXPECT_EQ(a.confirm_droppers(), b.confirm_droppers());
  ASSERT_EQ(a.storm_queries().size(), b.storm_queries().size());
  for (std::size_t i = 0; i < a.storm_queries().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.storm_queries()[i].at, b.storm_queries()[i].at);
    EXPECT_EQ(a.storm_queries()[i].node, b.storm_queries()[i].node);
    EXPECT_EQ(a.storm_queries()[i].term, b.storm_queries()[i].term);
  }
  // Different seeds must pick different rosters (sanity: the seed is
  // actually wired into the adversary stream).
  const FaultPlan c = build(byzantine_cfg(), 8);
  EXPECT_NE(a.polluters(), c.polluters());
}

TEST(FaultPlanAdversarial, ArmingRolesNeverPerturbsCrashSchedule) {
  // The adversary roster draws from its own salted RNG stream, so adding
  // Byzantine roles to an existing preset must leave its crash/burst/
  // partition schedule bit-identical.
  FaultConfig base;
  base.crash_fraction = 0.10;
  base.bursts = 2;
  base.partitions = 1;
  FaultConfig armed = base;
  armed.polluter_fraction = 0.20;
  armed.storms = 2;
  const FaultPlan p0 = build(base);
  const FaultPlan p1 = build(armed);
  ASSERT_EQ(p0.crashes().size(), p1.crashes().size());
  for (std::size_t i = 0; i < p0.crashes().size(); ++i) {
    EXPECT_EQ(p0.crashes()[i].node, p1.crashes()[i].node);
    EXPECT_DOUBLE_EQ(p0.crashes()[i].at, p1.crashes()[i].at);
  }
  ASSERT_EQ(p0.bursts().size(), p1.bursts().size());
  for (std::size_t i = 0; i < p0.bursts().size(); ++i) {
    EXPECT_DOUBLE_EQ(p0.bursts()[i].begin, p1.bursts()[i].begin);
  }
  ASSERT_EQ(p0.partitions().size(), p1.partitions().size());
  for (std::size_t i = 0; i < p0.partitions().size(); ++i) {
    EXPECT_EQ(p0.partitions()[i].domains, p1.partitions()[i].domains);
  }
}

TEST(FaultPlanAdversarial, ChurnedNodesNeverGetRoles) {
  // Churn the first half of the population; every role must come from the
  // untouched half (same exclusion rule as crash candidates).
  std::vector<trace::TraceEvent> events;
  for (NodeId n = 0; n < kNodes / 2; ++n) {
    trace::TraceEvent ev;
    ev.time = 1.0 * n;
    ev.type = n % 3 == 0   ? trace::TraceEventType::kJoin
              : n % 3 == 1 ? trace::TraceEventType::kLeave
                           : trace::TraceEventType::kRejoin;
    ev.node = n;
    events.push_back(ev);
  }
  const FaultPlan plan = build(byzantine_cfg(), 7, events);
  for (const auto roster : {&plan.polluters(), &plan.stale_advertisers(),
                            &plan.confirm_droppers()}) {
    for (NodeId n : *roster) {
      EXPECT_GE(n, kNodes / 2) << "role assigned to a trace-churned node";
    }
  }
}

TEST(FaultPlanAdversarial, EventSpanAndChurnBitmapBuildsAgree) {
  // Streaming worlds hand the plan a churn bitmap instead of the events
  // vector; both overloads must compile to the identical roster.
  std::vector<trace::TraceEvent> events;
  std::vector<std::uint8_t> churned(kNodes, 0);
  for (NodeId n = 0; n < kNodes; n += 3) {
    trace::TraceEvent ev;
    ev.time = 1.0 * n;
    ev.type = trace::TraceEventType::kLeave;
    ev.node = n;
    events.push_back(ev);
    churned[n] = 1;
  }
  const FaultPlan a = build(byzantine_cfg(), 7, events);
  const FaultPlan b = FaultPlan::build(
      byzantine_cfg(), 7, kNodes, std::span<const std::uint8_t>(churned),
      kStart, kEnd, kDomains);
  EXPECT_EQ(a.polluters(), b.polluters());
  EXPECT_EQ(a.stale_advertisers(), b.stale_advertisers());
  EXPECT_EQ(a.confirm_droppers(), b.confirm_droppers());
  ASSERT_EQ(a.crashes().size(), b.crashes().size());
  for (std::size_t i = 0; i < a.crashes().size(); ++i) {
    EXPECT_EQ(a.crashes()[i].node, b.crashes()[i].node);
  }
}

TEST(FaultPlanAdversarial, StormScheduleLandsInWindowAndIsSorted) {
  FaultConfig cfg;
  cfg.storms = 2;
  cfg.storm_duration = 30.0;
  cfg.storm_emitters = 8;
  cfg.storm_queries_per_emitter = 5;
  cfg.storm_hot_terms = 4;
  const FaultPlan plan = build(cfg);
  ASSERT_EQ(plan.storms().size(), 2u);
  for (const auto& s : plan.storms()) {
    EXPECT_GE(s.begin, kStart);
    EXPECT_LT(s.begin, kEnd);
    EXPECT_DOUBLE_EQ(s.end, s.begin + 30.0);
  }
  ASSERT_EQ(plan.storm_queries().size(), 2u * 8u * 5u);
  for (std::size_t i = 0; i < plan.storm_queries().size(); ++i) {
    const auto& q = plan.storm_queries()[i];
    EXPECT_LT(q.node, kNodes);
    EXPECT_LT(q.term, cfg.storm_hot_terms);
    // Every query falls inside one of the storm windows.
    bool inside = false;
    for (const auto& s : plan.storms()) {
      inside = inside || (q.at >= s.begin && q.at < s.end);
    }
    EXPECT_TRUE(inside) << "storm query outside every storm window";
    if (i > 0) {
      const auto& p = plan.storm_queries()[i - 1];
      EXPECT_TRUE(p.at < q.at ||
                  (p.at == q.at &&
                   (p.node < q.node ||
                    (p.node == q.node && p.term <= q.term))))
          << "storm schedule not sorted by (at, node, term)";
    }
  }
  EXPECT_DOUBLE_EQ(plan.first_fault_time(),
                   std::min(plan.storms().front().begin,
                            plan.storm_queries().front().at));
  EXPECT_FALSE(plan.empty());
}

}  // namespace
}  // namespace asap::faults
