#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <set>

namespace asap::faults {
namespace {

constexpr Seconds kStart = 60.0;
constexpr Seconds kEnd = 660.0;
constexpr std::uint32_t kNodes = 200;
constexpr std::uint32_t kDomains = 12;

FaultPlan build(const FaultConfig& cfg, std::uint64_t seed = 7,
                std::span<const trace::TraceEvent> events = {}) {
  return FaultPlan::build(cfg, seed, kNodes, events, kStart, kEnd, kDomains);
}

TEST(FaultPlan, ZeroConfigCompilesToEmptyPlan) {
  const FaultPlan plan = build(FaultConfig{});
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.crashes().empty());
  EXPECT_TRUE(plan.bursts().empty());
  EXPECT_TRUE(plan.partitions().empty());
  EXPECT_EQ(plan.first_fault_time(),
            std::numeric_limits<double>::infinity());
}

TEST(FaultPlan, SameSeedSamePlan) {
  FaultConfig cfg;
  cfg.crash_fraction = 0.10;
  cfg.partitions = 2;
  cfg.bursts = 3;
  const FaultPlan a = build(cfg);
  const FaultPlan b = build(cfg);
  ASSERT_EQ(a.crashes().size(), b.crashes().size());
  for (std::size_t i = 0; i < a.crashes().size(); ++i) {
    EXPECT_EQ(a.crashes()[i].node, b.crashes()[i].node);
    EXPECT_DOUBLE_EQ(a.crashes()[i].at, b.crashes()[i].at);
  }
  ASSERT_EQ(a.partitions().size(), b.partitions().size());
  for (std::size_t i = 0; i < a.partitions().size(); ++i) {
    EXPECT_EQ(a.partitions()[i].domains, b.partitions()[i].domains);
  }
  EXPECT_DOUBLE_EQ(a.first_fault_time(), b.first_fault_time());
}

TEST(FaultPlan, CrashesMatchFractionAndStayInWindow) {
  FaultConfig cfg;
  cfg.crash_fraction = 0.10;
  cfg.crash_detection = 25.0;
  const FaultPlan plan = build(cfg);
  ASSERT_EQ(plan.crashes().size(), 20u);  // 10% of 200
  std::set<NodeId> nodes;
  for (const auto& c : plan.crashes()) {
    EXPECT_LT(c.node, kNodes);
    EXPECT_TRUE(nodes.insert(c.node).second) << "node crashed twice";
    EXPECT_GE(c.at, kStart);
    EXPECT_LT(c.at, kEnd);
    EXPECT_DOUBLE_EQ(c.detect_at, c.at + 25.0);
  }
  EXPECT_DOUBLE_EQ(plan.first_fault_time(), plan.crashes().front().at);
  for (const auto& c : plan.crashes()) {
    EXPECT_LE(plan.first_fault_time(), c.at);
  }
}

TEST(FaultPlan, TraceChurnedNodesAreNeverCrashCandidates) {
  // Churn the first half of the population via every churn event type; a
  // 100% crash fraction must then only pick from the untouched half.
  std::vector<trace::TraceEvent> events;
  for (NodeId n = 0; n < kNodes / 2; ++n) {
    trace::TraceEvent ev;
    ev.time = 1.0 * n;
    ev.type = n % 3 == 0   ? trace::TraceEventType::kJoin
              : n % 3 == 1 ? trace::TraceEventType::kLeave
                           : trace::TraceEventType::kRejoin;
    ev.node = n;
    events.push_back(ev);
  }
  FaultConfig cfg;
  cfg.crash_fraction = 1.0;
  const FaultPlan plan = build(cfg, 7, events);
  EXPECT_EQ(plan.crashes().size(), kNodes / 2);
  for (const auto& c : plan.crashes()) {
    EXPECT_GE(c.node, kNodes / 2) << "crash collides with trace churn";
  }
}

TEST(FaultPlan, BurstAndPartitionWindowsLandInMeasurement) {
  FaultConfig cfg;
  cfg.bursts = 3;
  cfg.burst_duration = 15.0;
  cfg.partitions = 2;
  cfg.partition_duration = 60.0;
  cfg.partition_fraction = 0.25;
  const FaultPlan plan = build(cfg);
  ASSERT_EQ(plan.bursts().size(), 3u);
  for (const auto& w : plan.bursts()) {
    EXPECT_GE(w.begin, kStart);
    EXPECT_LT(w.begin, kEnd);
    EXPECT_DOUBLE_EQ(w.end, w.begin + 15.0);
  }
  ASSERT_EQ(plan.partitions().size(), 2u);
  for (const auto& p : plan.partitions()) {
    EXPECT_GE(p.begin, kStart);
    EXPECT_LT(p.begin, kEnd);
    EXPECT_DOUBLE_EQ(p.end, p.begin + 60.0);
    EXPECT_FALSE(p.domains.empty());
    EXPECT_LE(p.domains.size(), kDomains / 4 + 1);
    for (std::size_t i = 0; i < p.domains.size(); ++i) {
      EXPECT_LT(p.domains[i], kDomains);
      if (i > 0) {
        EXPECT_LT(p.domains[i - 1], p.domains[i]) << "not sorted";
      }
    }
  }
}

TEST(FaultPlan, ContinuousLinkFaultsStartAtMeasureStart) {
  FaultConfig loss;
  loss.link_loss = 0.05;
  EXPECT_DOUBLE_EQ(build(loss).first_fault_time(), kStart);

  FaultConfig jitter;
  jitter.latency_jitter = 0.25;
  EXPECT_DOUBLE_EQ(build(jitter).first_fault_time(), kStart);
  EXPECT_FALSE(build(jitter).empty());
}

}  // namespace
}  // namespace asap::faults
