#include "wire/messages.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/size_model.hpp"

namespace asap::wire {
namespace {

ads::AdPayload make_payload(NodeId src, std::uint32_t version,
                            std::uint32_t keys) {
  bloom::BloomFilter f;
  Rng rng(src * 1000 + version);
  for (std::uint32_t i = 0; i < keys; ++i) f.insert(rng.next_u64());
  return ads::AdPayload(src, version, std::move(f), {1, 4, 9});
}

TEST(Messages, FullAdRoundTripSparse) {
  const auto ad = make_payload(42, 7, 20);  // light sharer -> sparse body
  const auto bytes = encode_full_ad(ad);
  const auto decoded = decode_ad(bytes);
  EXPECT_EQ(decoded.header.kind, ads::AdKind::kFull);
  EXPECT_EQ(decoded.header.source, 42u);
  EXPECT_EQ(decoded.header.version, 7u);
  EXPECT_EQ(decoded.header.topics, (std::vector<TopicId>{1, 4, 9}));
  ASSERT_TRUE(decoded.filter.has_value());
  EXPECT_EQ(*decoded.filter, ad.filter);
}

TEST(Messages, FullAdRoundTripBitmap) {
  const auto ad = make_payload(7, 1, 2'000);  // heavy sharer -> bitmap body
  const auto bytes = encode_full_ad(ad);
  const auto decoded = decode_ad(bytes);
  ASSERT_TRUE(decoded.filter.has_value());
  EXPECT_EQ(*decoded.filter, ad.filter);
  // Bitmap body: header + ~m/8 bytes.
  EXPECT_GE(bytes.size(), (ad.filter.params().bits + 7) / 8);
}

TEST(Messages, EncodedSizeWithinAnalyticModel) {
  // The simulator's analytic ad size must upper-bound the real encoding.
  const sim::SizeModel sizes;
  for (std::uint32_t keys : {1u, 10u, 100u, 500u, 1'000u, 3'000u}) {
    const auto ad = make_payload(1, 1, keys);
    const auto bytes = encode_full_ad(ad);
    EXPECT_LE(bytes.size(), ads::full_ad_bytes(ad, sizes))
        << "at " << keys << " keys";
  }
}

TEST(Messages, PatchAdRoundTrip) {
  const auto ad = make_payload(5, 3, 50);
  const std::vector<std::uint32_t> toggles{9, 2, 77, 10'000};
  const auto bytes = encode_patch_ad(ad, 2, toggles);
  const auto decoded = decode_ad(bytes);
  EXPECT_EQ(decoded.header.kind, ads::AdKind::kPatch);
  EXPECT_EQ(decoded.base_version, 2u);
  EXPECT_EQ(decoded.toggles,
            (std::vector<std::uint32_t>{2, 9, 77, 10'000}));
  EXPECT_FALSE(decoded.filter.has_value());
}

TEST(Messages, PatchSizeWithinAnalyticModel) {
  const sim::SizeModel sizes;
  const auto ad = make_payload(5, 3, 50);
  std::vector<std::uint32_t> toggles;
  Rng rng(3);
  auto raw = rng.sample_indices(11'542, 200);
  toggles.assign(raw.begin(), raw.end());
  const auto bytes = encode_patch_ad(ad, 2, toggles);
  EXPECT_LE(bytes.size(),
            ads::patch_ad_bytes(toggles.size(), ad.topics.size(), sizes));
}

TEST(Messages, RefreshAdRoundTrip) {
  const auto ad = make_payload(9, 12, 10);
  const auto bytes = encode_refresh_ad(ad);
  const auto decoded = decode_ad(bytes);
  EXPECT_EQ(decoded.header.kind, ads::AdKind::kRefresh);
  EXPECT_EQ(decoded.header.source, 9u);
  EXPECT_EQ(decoded.header.version, 12u);
  const sim::SizeModel sizes;
  EXPECT_LE(bytes.size(), ads::refresh_ad_bytes(sizes));
}

TEST(Messages, QueryRoundTrip) {
  const QueryMessage q{123, {7, 99, 100'000}};
  const auto bytes = encode_query(q);
  const auto decoded = decode_query(bytes);
  EXPECT_EQ(decoded.requester, 123u);
  EXPECT_EQ(decoded.terms, q.terms);
  const sim::SizeModel sizes;
  EXPECT_LE(bytes.size(), sizes.query);
}

TEST(Messages, MalformedInputsThrowNotCrash) {
  const auto ad = make_payload(1, 1, 20);
  auto bytes = encode_full_ad(ad);
  // Bad magic.
  auto bad = bytes;
  bad[0] = 0x00;
  EXPECT_THROW(decode_ad(bad), DecodeError);
  // Bad kind.
  bad = bytes;
  bad[1] = 0x77;
  EXPECT_THROW(decode_ad(bad), DecodeError);
  // Truncation at every prefix length must throw, never crash.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        decode_ad(std::span<const std::uint8_t>(bytes.data(), len)),
        DecodeError)
        << "prefix " << len;
  }
  // Trailing garbage.
  bad = bytes;
  bad.push_back(0xFF);
  EXPECT_THROW(decode_ad(bad), DecodeError);
}

TEST(Messages, FuzzedBuffersNeverCrash) {
  Rng rng(1234);
  for (int trial = 0; trial < 2'000; ++trial) {
    std::vector<std::uint8_t> buf(rng.below(64));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
    try {
      decode_ad(buf);
    } catch (const DecodeError&) {
      // expected for almost all inputs
    }
    try {
      decode_query(buf);
    } catch (const DecodeError&) {
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace asap::wire
