#include "common/codec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace asap::wire {
namespace {

TEST(Codec, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_TRUE(r.done());
}

TEST(Codec, VarintRoundTripBoundaries) {
  const std::uint64_t values[] = {
      0,    1,    127,        128,        16'383, 16'384,
      1ULL << 32, (1ULL << 63), ~0ULL};
  Writer w;
  for (auto v : values) w.varint(v);
  Reader r(w.buffer());
  for (auto v : values) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.done());
}

TEST(Codec, VarintSizes) {
  auto size_of = [](std::uint64_t v) {
    Writer w;
    w.varint(v);
    return w.size();
  };
  EXPECT_EQ(size_of(0), 1u);
  EXPECT_EQ(size_of(127), 1u);
  EXPECT_EQ(size_of(128), 2u);
  EXPECT_EQ(size_of(16'383), 2u);
  EXPECT_EQ(size_of(~0ULL), 10u);
}

TEST(Codec, SignedVarintRoundTrip) {
  const std::int64_t values[] = {0, -1, 1, -64, 64, -1'000'000, 1'000'000,
                                 INT64_MIN, INT64_MAX};
  Writer w;
  for (auto v : values) w.svarint(v);
  Reader r(w.buffer());
  for (auto v : values) EXPECT_EQ(r.svarint(), v);
}

TEST(Codec, TruncatedInputThrows) {
  Writer w;
  w.u32(42);
  Reader r(std::span<const std::uint8_t>(w.buffer().data(), 2));
  EXPECT_THROW(r.u32(), DecodeError);
}

TEST(Codec, MalformedVarintThrows) {
  // 11 continuation bytes: longer than any valid 64-bit varint.
  std::vector<std::uint8_t> bad(11, 0x80);
  Reader r(bad);
  EXPECT_THROW(r.varint(), DecodeError);
  // Truncated varint (continuation bit set, no next byte).
  std::vector<std::uint8_t> trunc{0x80};
  Reader r2(trunc);
  EXPECT_THROW(r2.varint(), DecodeError);
}

TEST(Codec, PositionListRoundTrip) {
  const std::vector<std::uint32_t> positions{0, 1, 5, 100, 10'000, 65'535};
  Writer w;
  encode_positions(w, positions);
  Reader r(w.buffer());
  EXPECT_EQ(decode_positions(r, positions.size()), positions);
}

TEST(Codec, PositionListDeltaCompresses) {
  // Dense consecutive positions: 1 byte for the first + 1 byte per delta.
  std::vector<std::uint32_t> dense;
  for (std::uint32_t i = 100; i < 1'100; ++i) dense.push_back(i);
  Writer w;
  encode_positions(w, dense);
  EXPECT_LE(w.size(), 2u + dense.size());
  EXPECT_LT(w.size(), dense.size() * 2)
      << "deltas must beat the 2-bytes-per-position estimate";
}

TEST(Codec, UnsortedPositionsRejected) {
  const std::vector<std::uint32_t> bad{5, 3};
  Writer w;
  EXPECT_THROW(encode_positions(w, bad), ConfigError);
  const std::vector<std::uint32_t> dup{5, 5};
  Writer w2;
  EXPECT_THROW(encode_positions(w2, dup), ConfigError);
}

TEST(Codec, RandomPositionListsRoundTrip) {
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    const auto count = 1 + rng.below(500);
    auto raw = rng.sample_indices(100'000, static_cast<std::uint32_t>(count));
    std::sort(raw.begin(), raw.end());
    Writer w;
    encode_positions(w, raw);
    Reader r(w.buffer());
    EXPECT_EQ(decode_positions(r, raw.size()), raw);
  }
}

}  // namespace
}  // namespace asap::wire
