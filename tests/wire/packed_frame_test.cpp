// Round-trip and fuzz coverage for the adaptive scheduler's wire forms:
// delta ads (patch body against the last FULL base) and byte-budget-packed
// ad frames. The contract under test: random ad sets survive
// pack -> unpack -> re-pack byte-identically, and truncated or corrupted
// buffers are rejected with DecodeError — never UB.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "wire/messages.hpp"

namespace asap::wire {
namespace {

ads::AdPayload make_payload(NodeId src, std::uint32_t version,
                            std::uint32_t keys) {
  bloom::BloomFilter f;
  Rng rng(src * 7'919 + version);
  for (std::uint32_t i = 0; i < keys; ++i) f.insert(rng.next_u64());
  return ads::AdPayload(src, version, std::move(f), {2, 5});
}

TEST(PackedFrame, DeltaAdRoundTrip) {
  const auto ad = make_payload(11, 9, 40);
  const std::vector<std::uint32_t> toggles{300, 4, 12, 11'000};
  const auto bytes = encode_delta_ad(ad, 6, toggles);
  const auto decoded = decode_ad(bytes);
  EXPECT_EQ(decoded.header.kind, ads::AdKind::kDelta);
  EXPECT_EQ(decoded.header.source, 11u);
  EXPECT_EQ(decoded.header.version, 9u);
  // The base names the last FULL ad, not version-1.
  EXPECT_EQ(decoded.base_version, 6u);
  EXPECT_EQ(decoded.toggles, (std::vector<std::uint32_t>{4, 12, 300, 11'000}));
  EXPECT_FALSE(decoded.filter.has_value());
}

// One randomly generated frame worth of ads, with the payload storage kept
// alive beside the PackedItem views.
struct FrameFixture {
  std::vector<ads::AdPayload> payloads;
  std::vector<std::vector<std::uint32_t>> toggle_sets;
  std::vector<PackedItem> items;
};

FrameFixture random_frame(Rng& rng, std::size_t count) {
  FrameFixture fx;
  fx.payloads.reserve(count);
  fx.toggle_sets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto src = static_cast<NodeId>(rng.below(500));
    const auto version = static_cast<std::uint32_t>(1 + rng.below(50));
    fx.payloads.push_back(
        make_payload(src, version, static_cast<std::uint32_t>(rng.below(80))));
    // Positions must be distinct and in-range for the (default) filter
    // geometry, like BloomFilter::diff output: the decoder rejects
    // out-of-range and repeated toggles.
    std::set<std::uint32_t> toggles;
    const std::uint64_t n = rng.below(12);
    for (std::uint64_t t = 0; t < n; ++t) {
      toggles.insert(static_cast<std::uint32_t>(
          rng.below(bloom::BloomParams{}.bits)));
    }
    fx.toggle_sets.emplace_back(toggles.begin(), toggles.end());
  }
  for (std::size_t i = 0; i < count; ++i) {
    PackedItem item;
    switch (rng.below(4)) {
      case 0: item.kind = ads::AdKind::kFull; break;
      case 1: item.kind = ads::AdKind::kPatch; break;
      case 2: item.kind = ads::AdKind::kRefresh; break;
      default: item.kind = ads::AdKind::kDelta; break;
    }
    item.ad = &fx.payloads[i];
    item.base_version = static_cast<std::uint32_t>(rng.below(50));
    item.toggles = fx.toggle_sets[i];
    fx.items.push_back(item);
  }
  return fx;
}

// Rebuild PackedItems from decoded ads and re-encode. Byte identity holds
// because every per-item choice (sparse-vs-bitmap full body, sorted
// toggles) is a deterministic function of the decoded content.
std::vector<std::uint8_t> repack(const std::vector<DecodedAd>& decoded,
                                 std::vector<ads::AdPayload>& storage) {
  storage.clear();
  storage.reserve(decoded.size());
  for (const auto& d : decoded) {
    storage.emplace_back(d.header.source, d.header.version,
                         d.filter ? *d.filter : bloom::BloomFilter{},
                         d.header.topics);
  }
  std::vector<PackedItem> items;
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    PackedItem item;
    item.kind = decoded[i].header.kind;
    item.ad = &storage[i];
    item.base_version = decoded[i].base_version;
    item.toggles = decoded[i].toggles;
    items.push_back(item);
  }
  return encode_packed_frame(items);
}

TEST(PackedFrame, RandomFramesRepackIdentically) {
  Rng rng(9'001);
  for (int trial = 0; trial < 60; ++trial) {
    const auto fx = random_frame(rng, 1 + rng.below(12));
    const auto bytes = encode_packed_frame(fx.items);
    const auto decoded = decode_packed_frame(bytes);
    ASSERT_EQ(decoded.size(), fx.items.size());
    for (std::size_t i = 0; i < decoded.size(); ++i) {
      EXPECT_EQ(decoded[i].header.kind, fx.items[i].kind);
      EXPECT_EQ(decoded[i].header.source, fx.payloads[i].source);
      EXPECT_EQ(decoded[i].header.version, fx.payloads[i].version);
      if (fx.items[i].kind == ads::AdKind::kFull) {
        ASSERT_TRUE(decoded[i].filter.has_value());
        EXPECT_EQ(*decoded[i].filter, fx.payloads[i].filter);
      }
    }
    std::vector<ads::AdPayload> storage;
    EXPECT_EQ(repack(decoded, storage), bytes) << "trial " << trial;
  }
}

TEST(PackedFrame, EmptyFrameRoundTrips) {
  const auto bytes = encode_packed_frame({});
  EXPECT_TRUE(decode_packed_frame(bytes).empty());
}

TEST(PackedFrame, TruncationAtEveryPrefixThrows) {
  Rng rng(77);
  const auto fx = random_frame(rng, 5);
  const auto bytes = encode_packed_frame(fx.items);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(decode_packed_frame(
                     std::span<const std::uint8_t>(bytes.data(), len)),
                 DecodeError)
        << "prefix " << len;
  }
  // Trailing garbage after a well-formed frame is also malformed.
  auto bad = bytes;
  bad.push_back(0xAB);
  EXPECT_THROW(decode_packed_frame(bad), DecodeError);
}

TEST(PackedFrame, CorruptedBytesThrowNotCrash) {
  Rng rng(424'242);
  const auto fx = random_frame(rng, 4);
  const auto bytes = encode_packed_frame(fx.items);
  // Single-byte corruption at every offset either still decodes (the byte
  // was incidental) or throws DecodeError; it must never crash or loop.
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    auto bad = bytes;
    bad[pos] ^= 0xFF;
    try {
      (void)decode_packed_frame(bad);
    } catch (const DecodeError&) {
      // expected for most positions
    }
  }
  SUCCEED();
}

TEST(PackedFrame, FuzzedBuffersNeverCrash) {
  Rng rng(31'337);
  for (int trial = 0; trial < 2'000; ++trial) {
    std::vector<std::uint8_t> buf(rng.below(96));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
    if (!buf.empty()) buf[0] = 0xA6;  // steer past the magic check sometimes
    try {
      (void)decode_packed_frame(buf);
    } catch (const DecodeError&) {
    }
  }
  SUCCEED();
}

TEST(PackedFrame, AbsurdCountRejected) {
  // magic + varint count far beyond the sanity cap, no items.
  std::vector<std::uint8_t> buf{0xA6, 0xFF, 0xFF, 0x7F};
  EXPECT_THROW(decode_packed_frame(buf), DecodeError);
}

// --- crafted-malicious corpus (adversarial-resilience hardening) ---------
//
// Each case is a hand-built buffer a Byzantine peer could ship that the
// encoder can never produce; the decoder must reject all of them with
// DecodeError before any oversized allocation or filter corruption.

namespace {

/// Hand-assembles an ad header (magic, kind, source, version, topics).
void craft_header(Writer& w, ads::AdKind kind, NodeId source,
                  std::uint32_t version) {
  w.u8(0xA5);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(source);
  w.varint(version);
  w.u8(0);  // no topics
}

}  // namespace

TEST(MaliciousWire, DuplicateDeltaToggleRejected) {
  // A zero delta after the first position encodes the same position twice;
  // applying such a patch would toggle the bit back OFF — a crafted ad
  // could use it to silently clear bits in a cached filter.
  Writer w;
  craft_header(w, ads::AdKind::kDelta, 7, 3);
  w.varint(2);  // base version
  w.varint(2);  // two toggles...
  w.varint(4);  // position 4
  w.varint(0);  // ...and position 4 again (zero delta)
  EXPECT_THROW(decode_ad(w.buffer()), DecodeError);
}

TEST(MaliciousWire, DuplicateSparsePositionRejected) {
  Writer w;
  craft_header(w, ads::AdKind::kFull, 7, 3);
  w.u8(1);      // sparse body
  w.varint(2);  // two positions...
  w.varint(9);
  w.varint(0);  // ...the second a duplicate of the first
  EXPECT_THROW(decode_ad(w.buffer()), DecodeError);
}

TEST(MaliciousWire, PositionCountBeyondBufferRejectedBeforeAllocation) {
  // Declared count passes the bits cap but wildly exceeds the bytes that
  // follow. Must throw before reserving count slots.
  Writer w;
  craft_header(w, ads::AdKind::kFull, 7, 3);
  w.u8(1);           // sparse body
  w.varint(10'000);  // < default bits (11'542), >> remaining bytes
  w.varint(1);       // a single actual position
  EXPECT_THROW(decode_ad(w.buffer()), DecodeError);
}

TEST(MaliciousWire, DeltaGrowingPastFilterWidthRejected) {
  const bloom::BloomParams params;
  Writer w;
  craft_header(w, ads::AdKind::kDelta, 7, 3);
  w.varint(2);            // base version
  w.varint(1);            // one toggle
  w.varint(params.bits);  // first out-of-range position
  EXPECT_THROW(decode_ad(w.buffer(), params), DecodeError);
}

TEST(MaliciousWire, ToggleCountBeyondFilterBitsRejected) {
  const bloom::BloomParams params;
  Writer w;
  craft_header(w, ads::AdKind::kDelta, 7, 3);
  w.varint(2);                // base version
  w.varint(params.bits + 1);  // more toggles than the filter has bits
  EXPECT_THROW(decode_ad(w.buffer(), params), DecodeError);
}

TEST(MaliciousWire, HugeQueryTermCountRejected) {
  Writer w;
  w.u8(0xA5);
  w.u32(3);          // requester
  w.varint(1 << 20);  // term count far past the cap
  EXPECT_THROW(decode_query(w.buffer()), DecodeError);
}

TEST(MaliciousWire, FrameWithOnePoisonedItemRejectedWhole) {
  // A frame whose second item carries a duplicate toggle: the whole frame
  // must be rejected, not partially applied.
  Rng rng(99);
  const auto fx = random_frame(rng, 1);
  const auto good_item = encode_packed_frame(fx.items);
  Writer poisoned_item;
  craft_header(poisoned_item, ads::AdKind::kDelta, 5, 2);
  poisoned_item.varint(1);  // base
  poisoned_item.varint(2);  // two toggles
  poisoned_item.varint(6);
  poisoned_item.varint(0);  // duplicate
  Writer w;
  w.u8(0xA6);
  w.varint(2);
  // First item: reuse the good frame's single item body.
  {
    Reader r(good_item);
    (void)r.u8();      // frame magic
    (void)r.varint();  // count == 1
    const auto len = r.varint();
    const auto body = r.bytes(static_cast<std::size_t>(len));
    w.varint(len);
    w.bytes(body);
  }
  w.varint(poisoned_item.size());
  w.bytes(poisoned_item.buffer());
  EXPECT_THROW(decode_packed_frame(w.buffer()), DecodeError);
}

}  // namespace
}  // namespace asap::wire
