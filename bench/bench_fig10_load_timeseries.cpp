// Reproduces Figure 10: the real-time system load (bytes per live node per
// second) on the crawled topology, plotted for a 100-second window, for
// flooding, random walk, GSA and ASAP(RW).
//
// Paper shapes: flooding exhibits tall bursty spikes (tens of KB/node/s at
// peaks); GSA fluctuates less but still heavily; random walk is flat and
// low; ASAP(RW) is the flattest and lowest of all.
#include <algorithm>
#include <iostream>

#include "bench/support.hpp"

int main(int argc, char** argv) {
  using namespace asap;
  auto args = bench::BenchArgs::parse(argc, argv);
  args.topologies = {harness::TopologyKind::kCrawled};

  const std::vector<harness::AlgoKind> algos{
      harness::AlgoKind::kFlooding, harness::AlgoKind::kRandomWalk,
      harness::AlgoKind::kGsa, harness::AlgoKind::kAsapRw};
  auto cells = bench::run_cells(args, algos);
  bench::sort_cells(cells, algos);

  // A 100-second window in the middle of the measurement period.
  const auto& first = cells.front().result;
  const std::size_t series_len = first.load.series.size();
  const std::size_t window = std::min<std::size_t>(100, series_len);
  const std::size_t start =
      series_len > window ? (series_len - window) / 2 : 0;

  std::cout << "=== Fig 10: per-second system load, crawled topology, "
            << window << " s window starting at t=+" << start << " s ===\n\n";
  std::vector<std::string> headers{"t (s)"};
  for (const auto& cell : cells) headers.push_back(cell.result.algo);
  TextTable table(headers);
  for (std::size_t s = 0; s < window; ++s) {
    std::vector<std::string> row{std::to_string(start + s)};
    for (const auto& cell : cells) {
      row.push_back(
          TextTable::num(cell.result.load.series[start + s], 1));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nwindow summary (B/node/s):\n";
  for (const auto& cell : cells) {
    const auto& series = cell.result.load.series;
    double mx = 0.0, sum = 0.0;
    for (std::size_t s = 0; s < window; ++s) {
      mx = std::max(mx, series[start + s]);
      sum += series[start + s];
    }
    std::cout << "  " << cell.result.algo << ": mean "
              << TextTable::num(sum / window, 1) << ", peak "
              << TextTable::num(mx, 1) << '\n';
  }
  return 0;
}
