// Ablation: interest-clustered overlays (SON-style, the paper's
// observation 4: "interest clustering is common in P2P systems and has
// been successfully exploited in prior work like SON and SSW").
//
// When neighbors share interests, ASAP's h-hop ads-request fallback asks
// peers that actually cache the relevant ads, and deliveries drop more of
// their copies on consumers. This bench rebuilds the world over overlays
// with increasing interest clustering (node group = primary interest
// class) and measures ASAP(RW).
#include <iostream>

#include "bench/support.hpp"

int main(int argc, char** argv) {
  using namespace asap;
  auto args = bench::BenchArgs::parse(argc, argv);
  if (args.queries_override == 0) args.queries_override = 2'000;

  std::cout << "=== Ablation: interest-clustered overlay (SON-style), "
               "ASAP(RW) ===\n\n";
  TextTable table({"cluster fraction", "success %", "local hit %",
                   "cost/search", "load B/node/s"});
  for (const double fraction : {0.0, 0.3, 0.6, 0.9}) {
    // Build the standard world, then replace the overlay with an
    // interest-clustered one over the same content model.
    auto cfg = bench::make_config(args, harness::TopologyKind::kRandom);
    std::cerr << "[bench] building world (cluster=" << fraction << ")...\n";
    auto world = harness::build_world(cfg);
    std::vector<std::uint8_t> groups(world.model.total_node_slots(), 0);
    for (NodeId n = 0; n < groups.size(); ++n) {
      groups[n] = world.model.interests(n).front();  // primary interest
    }
    Rng overlay_rng(cfg.seed ^ 0xC1A57E12);
    world.base_overlay = overlay::Overlay::interest_clustered(
        world.model.params().initial_nodes, cfg.random_avg_degree, groups,
        fraction, overlay_rng);

    const auto res =
        harness::run_experiment(world, harness::AlgoKind::kAsapRw);
    std::cerr << "[bench] cluster=" << fraction << " done\n";
    table.add_row({TextTable::num(fraction, 1),
                   TextTable::num(100.0 * res.search.success_rate(), 1),
                   TextTable::num(100.0 * res.search.local_hit_rate(), 1),
                   TextTable::bytes(res.search.avg_cost_bytes()),
                   TextTable::num(res.load.mean_bytes_per_node_per_sec, 1)});
  }
  table.print(std::cout);
  std::cout << "\n(0.0 is a plain random overlay; higher fractions wire "
               "same-interest peers together)\n";
  return 0;
}
