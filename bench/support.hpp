// Shared plumbing for the figure-reproduction benches: command-line
// parsing, the (algorithm x topology) cell runner, and result tables.
//
// Every bench accepts:
//   --preset small|paper   world scale (default: small; paper = §IV-A)
//   --seed N               master seed (default 42)
//   --queries N            override trace query count
//   --topology t1,t2       subset of random,powerlaw,crawled
//   --jobs N               parallel cells (default: hardware concurrency)
//   --trials N             repetitions per cell; trial k re-rolls the
//                          algorithm stream with trial_seed_salt(k)
//                          (harness/replay.hpp), the same "trial k of
//                          seed s" the matrix runner uses
#pragma once

#include <cstdint>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "harness/replay.hpp"
#include "harness/world.hpp"

namespace asap::bench {

struct BenchArgs {
  harness::Preset preset = harness::Preset::kSmall;
  std::uint64_t seed = 42;
  std::uint32_t queries_override = 0;  // 0 = preset default
  std::vector<harness::TopologyKind> topologies{
      harness::TopologyKind::kRandom, harness::TopologyKind::kPowerlaw,
      harness::TopologyKind::kCrawled};
  std::size_t jobs = 0;       // 0 = hardware concurrency
  std::uint32_t trials = 1;   // repetitions per (topology, algorithm) cell

  static BenchArgs parse(int argc, char** argv);
};

inline BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw ConfigError("missing value for flag " + flag);
      }
      return argv[++i];
    };
    if (flag == "--preset") {
      const auto v = next();
      if (v == "paper") {
        args.preset = harness::Preset::kPaper;
      } else if (v == "small") {
        args.preset = harness::Preset::kSmall;
      } else {
        throw ConfigError("unknown preset: " + v);
      }
    } else if (flag == "--seed") {
      args.seed = std::stoull(next());
    } else if (flag == "--queries") {
      args.queries_override =
          static_cast<std::uint32_t>(std::stoul(next()));
    } else if (flag == "--jobs") {
      args.jobs = std::stoul(next());
    } else if (flag == "--trials") {
      args.trials = static_cast<std::uint32_t>(std::stoul(next()));
      if (args.trials == 0) throw ConfigError("--trials must be >= 1");
    } else if (flag == "--topology") {
      args.topologies.clear();
      std::string list = next();
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const auto comma = list.find(',', pos);
        const auto item = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (item == "random") {
          args.topologies.push_back(harness::TopologyKind::kRandom);
        } else if (item == "powerlaw") {
          args.topologies.push_back(harness::TopologyKind::kPowerlaw);
        } else if (item == "crawled") {
          args.topologies.push_back(harness::TopologyKind::kCrawled);
        } else {
          throw ConfigError("unknown topology: " + item);
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (flag == "--help" || flag == "-h") {
      std::cout << "flags: --preset small|paper --seed N --queries N "
                   "--topology random,powerlaw,crawled --jobs N --trials N\n";
      std::exit(0);
    } else {
      throw ConfigError("unknown flag: " + flag);
    }
  }
  return args;
}

inline harness::ExperimentConfig make_config(
    const BenchArgs& args, harness::TopologyKind topology) {
  auto cfg =
      harness::ExperimentConfig::make(args.preset, topology, args.seed);
  if (args.queries_override != 0) {
    cfg.trace.num_queries = args.queries_override;
  }
  return cfg;
}

/// One completed (topology, algorithm, trial) cell.
struct Cell {
  harness::TopologyKind topology;
  harness::AlgoKind algo;
  std::uint32_t trial = 0;
  harness::RunResult result;
};

/// Runs the requested algorithms on each topology, args.trials times each.
/// Worlds are built once per topology and shared (read-only) by its cells;
/// trial k re-rolls the algorithm stream with seed_salt =
/// trial_seed_salt(k), the canonical "trial k of seed s" derivation
/// (harness/replay.hpp), so bench trials and matrix-runner trials with the
/// same master seed agree on trial 0 exactly. Cells run on a thread pool
/// (degenerates to sequential on a single-core machine).
inline std::vector<Cell> run_cells(
    const BenchArgs& args, const std::vector<harness::AlgoKind>& algos,
    const harness::RunOptions& opts = {}) {
  std::vector<Cell> cells;
  std::mutex mu;
  for (const auto topo : args.topologies) {
    std::cerr << "[bench] building " << harness::topology_name(topo)
              << " world...\n";
    const auto world = harness::build_world(make_config(args, topo));
    ThreadPool pool(args.jobs == 0 ? 0 : args.jobs);
    std::vector<std::future<void>> futs;
    futs.reserve(algos.size() * args.trials);
    for (const auto algo : algos) {
      for (std::uint32_t trial = 0; trial < args.trials; ++trial) {
        futs.push_back(pool.submit([&, algo, trial] {
          harness::RunOptions trial_opts = opts;
          trial_opts.seed_salt ^= harness::trial_seed_salt(trial);
          auto res = harness::run_experiment(world, algo, trial_opts);
          std::cerr << "[bench] " << harness::topology_name(topo) << " / "
                    << res.algo << " trial " << trial << " done in "
                    << TextTable::num(res.wall_seconds, 1) << " s\n";
          std::lock_guard lock(mu);
          cells.push_back(Cell{topo, algo, trial, std::move(res)});
        }));
      }
    }
    for (auto& f : futs) f.get();
  }
  return cells;
}

/// Orders cells for printing: topology-major, algorithm order as
/// requested, then trial index.
inline void sort_cells(std::vector<Cell>& cells,
                       const std::vector<harness::AlgoKind>& algos) {
  auto algo_rank = [&](harness::AlgoKind k) {
    for (std::size_t i = 0; i < algos.size(); ++i) {
      if (algos[i] == k) return i;
    }
    return algos.size();
  };
  std::sort(cells.begin(), cells.end(), [&](const Cell& a, const Cell& b) {
    if (a.topology != b.topology) {
      return static_cast<int>(a.topology) < static_cast<int>(b.topology);
    }
    if (algo_rank(a.algo) != algo_rank(b.algo)) {
      return algo_rank(a.algo) < algo_rank(b.algo);
    }
    return a.trial < b.trial;
  });
}

inline const std::vector<harness::AlgoKind>& all_algos() {
  static const std::vector<harness::AlgoKind> algos(
      std::begin(harness::kAllAlgos), std::end(harness::kAllAlgos));
  return algos;
}

}  // namespace asap::bench
