// Shared plumbing for the figure-reproduction benches: command-line
// parsing, the (algorithm x topology) cell runner, and result tables.
//
// Every bench accepts:
//   --preset small|paper   world scale (default: small; paper = §IV-A)
//   --seed N               master seed (default 42)
//   --queries N            override trace query count
//   --topology t1,t2       subset of random,powerlaw,crawled
//   --jobs N               parallel cells (default: hardware concurrency)
#pragma once

#include <cstdint>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "harness/replay.hpp"
#include "harness/world.hpp"

namespace asap::bench {

struct BenchArgs {
  harness::Preset preset = harness::Preset::kSmall;
  std::uint64_t seed = 42;
  std::uint32_t queries_override = 0;  // 0 = preset default
  std::vector<harness::TopologyKind> topologies{
      harness::TopologyKind::kRandom, harness::TopologyKind::kPowerlaw,
      harness::TopologyKind::kCrawled};
  std::size_t jobs = 0;  // 0 = hardware concurrency

  static BenchArgs parse(int argc, char** argv);
};

inline BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw ConfigError("missing value for flag " + flag);
      }
      return argv[++i];
    };
    if (flag == "--preset") {
      const auto v = next();
      if (v == "paper") {
        args.preset = harness::Preset::kPaper;
      } else if (v == "small") {
        args.preset = harness::Preset::kSmall;
      } else {
        throw ConfigError("unknown preset: " + v);
      }
    } else if (flag == "--seed") {
      args.seed = std::stoull(next());
    } else if (flag == "--queries") {
      args.queries_override =
          static_cast<std::uint32_t>(std::stoul(next()));
    } else if (flag == "--jobs") {
      args.jobs = std::stoul(next());
    } else if (flag == "--topology") {
      args.topologies.clear();
      std::string list = next();
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const auto comma = list.find(',', pos);
        const auto item = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (item == "random") {
          args.topologies.push_back(harness::TopologyKind::kRandom);
        } else if (item == "powerlaw") {
          args.topologies.push_back(harness::TopologyKind::kPowerlaw);
        } else if (item == "crawled") {
          args.topologies.push_back(harness::TopologyKind::kCrawled);
        } else {
          throw ConfigError("unknown topology: " + item);
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (flag == "--help" || flag == "-h") {
      std::cout << "flags: --preset small|paper --seed N --queries N "
                   "--topology random,powerlaw,crawled --jobs N\n";
      std::exit(0);
    } else {
      throw ConfigError("unknown flag: " + flag);
    }
  }
  return args;
}

inline harness::ExperimentConfig make_config(
    const BenchArgs& args, harness::TopologyKind topology) {
  auto cfg =
      harness::ExperimentConfig::make(args.preset, topology, args.seed);
  if (args.queries_override != 0) {
    cfg.trace.num_queries = args.queries_override;
  }
  return cfg;
}

/// One completed (topology, algorithm) cell.
struct Cell {
  harness::TopologyKind topology;
  harness::AlgoKind algo;
  harness::RunResult result;
};

/// Runs the requested algorithms on each topology. Worlds are built once
/// per topology and shared (read-only) by its cells; cells run on a thread
/// pool (degenerates to sequential on a single-core machine).
inline std::vector<Cell> run_cells(
    const BenchArgs& args, const std::vector<harness::AlgoKind>& algos,
    const harness::RunOptions& opts = {}) {
  std::vector<Cell> cells;
  std::mutex mu;
  for (const auto topo : args.topologies) {
    std::cerr << "[bench] building " << harness::topology_name(topo)
              << " world...\n";
    const auto world = harness::build_world(make_config(args, topo));
    ThreadPool pool(args.jobs == 0 ? 0 : args.jobs);
    std::vector<std::future<void>> futs;
    futs.reserve(algos.size());
    for (const auto algo : algos) {
      futs.push_back(pool.submit([&, algo] {
        auto res = harness::run_experiment(world, algo, opts);
        std::cerr << "[bench] " << harness::topology_name(topo) << " / "
                  << res.algo << " done in "
                  << TextTable::num(res.wall_seconds, 1) << " s\n";
        std::lock_guard lock(mu);
        cells.push_back(Cell{topo, algo, std::move(res)});
      }));
    }
    for (auto& f : futs) f.get();
  }
  return cells;
}

/// Orders cells for printing: topology-major, algorithm order as requested.
inline void sort_cells(std::vector<Cell>& cells,
                       const std::vector<harness::AlgoKind>& algos) {
  auto algo_rank = [&](harness::AlgoKind k) {
    for (std::size_t i = 0; i < algos.size(); ++i) {
      if (algos[i] == k) return i;
    }
    return algos.size();
  };
  std::sort(cells.begin(), cells.end(), [&](const Cell& a, const Cell& b) {
    if (a.topology != b.topology) {
      return static_cast<int>(a.topology) < static_cast<int>(b.topology);
    }
    return algo_rank(a.algo) < algo_rank(b.algo);
  });
}

inline const std::vector<harness::AlgoKind>& all_algos() {
  static const std::vector<harness::AlgoKind> algos(
      std::begin(harness::kAllAlgos), std::end(harness::kAllAlgos));
  return algos;
}

}  // namespace asap::bench
