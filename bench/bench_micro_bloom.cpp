// Micro-benchmarks of the Bloom-filter substrate (google-benchmark):
// the per-probe costs behind every ad match and ads-cache lookup.
#include <benchmark/benchmark.h>

#include "bloom/bloom.hpp"
#include "common/rng.hpp"

namespace {

using asap::Rng;
using asap::bloom::BloomFilter;
using asap::bloom::CountingBloomFilter;

void BM_BloomInsert(benchmark::State& state) {
  BloomFilter f;
  Rng rng(1);
  for (auto _ : state) {
    f.insert(rng.next_u64());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomInsert);

void BM_BloomContainsHit(benchmark::State& state) {
  BloomFilter f;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t k = 0; k < n; ++k) f.insert(k);
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.contains(k++ % n));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomContainsHit)->Arg(100)->Arg(1'000);

void BM_BloomContainsMiss(benchmark::State& state) {
  BloomFilter f;
  for (std::uint64_t k = 0; k < 1'000; ++k) f.insert(k);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.contains(rng.next_u64()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomContainsMiss);

void BM_BloomContainsAll3Terms(benchmark::State& state) {
  BloomFilter f;
  for (std::uint64_t k = 0; k < 1'000; ++k) f.insert(k);
  const asap::KeywordId terms[3] = {10, 500, 999};
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.contains_all(terms));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomContainsAll3Terms);

void BM_BloomDiff(benchmark::State& state) {
  BloomFilter a, b;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) a.insert(rng.next_u64());
  b = a;
  for (int i = 0; i < state.range(0); ++i) b.insert(rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(BloomFilter::diff(a, b));
  }
}
BENCHMARK(BM_BloomDiff)->Arg(1)->Arg(10)->Arg(100);

void BM_BloomWireBytes(benchmark::State& state) {
  BloomFilter f;
  Rng rng(4);
  for (int i = 0; i < state.range(0); ++i) f.insert(rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.wire_bytes());
  }
}
BENCHMARK(BM_BloomWireBytes)->Arg(10)->Arg(1'000);

void BM_CountingInsertRemove(benchmark::State& state) {
  CountingBloomFilter c;
  Rng rng(5);
  for (auto _ : state) {
    const auto k = rng.next_u64();
    c.insert(k);
    c.remove(k);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CountingInsertRemove);

}  // namespace

BENCHMARK_MAIN();
