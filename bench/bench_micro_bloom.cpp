// Micro-benchmarks of the Bloom-filter substrate (google-benchmark):
// the per-probe costs behind every ad match and ads-cache lookup.
#include <benchmark/benchmark.h>

#include <vector>

#include "bloom/bloom.hpp"
#include "bloom/hashed_query.hpp"
#include "common/rng.hpp"

namespace {

using asap::Rng;
using asap::bloom::BloomFilter;
using asap::bloom::BloomParams;
using asap::bloom::CountingBloomFilter;
using asap::bloom::HashedKey;
using asap::bloom::HashedQuery;

void BM_BloomInsert(benchmark::State& state) {
  BloomFilter f;
  Rng rng(1);
  for (auto _ : state) {
    f.insert(rng.next_u64());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomInsert);

void BM_BloomContainsHit(benchmark::State& state) {
  BloomFilter f;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t k = 0; k < n; ++k) f.insert(k);
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.contains(k++ % n));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomContainsHit)->Arg(100)->Arg(1'000);

void BM_BloomContainsMiss(benchmark::State& state) {
  BloomFilter f;
  for (std::uint64_t k = 0; k < 1'000; ++k) f.insert(k);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.contains(rng.next_u64()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomContainsMiss);

void BM_BloomContainsAll3Terms(benchmark::State& state) {
  BloomFilter f;
  for (std::uint64_t k = 0; k < 1'000; ++k) f.insert(k);
  const asap::KeywordId terms[3] = {10, 500, 999};
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.contains_all(terms));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomContainsAll3Terms);

// --- hashed (one-shot) vs raw (hash-per-probe) membership tests ----------
// The raw path re-derives the KM hash pair and walks the probe sequence on
// every test; the hashed path pays that once (BM_HashedQueryBuild) and then
// each test is pure word-index/bit-mask loads.

void BM_HashedQueryBuild3Terms(benchmark::State& state) {
  const BloomParams params;
  const std::vector<asap::KeywordId> terms{10, 500, 999};
  HashedQuery q;
  for (auto _ : state) {
    q.assign(terms, params);
    benchmark::DoNotOptimize(q.fold_mask_all());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashedQueryBuild3Terms);

void BM_HashedProbeHit(benchmark::State& state) {
  const BloomParams params;
  BloomFilter f(params);
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t k = 0; k < n; ++k) f.insert(k);
  std::vector<HashedKey> keys;
  for (std::uint64_t k = 0; k < n; ++k) keys.emplace_back(k, params);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(keys[i++ % n].present_in(f.words()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashedProbeHit)->Arg(100)->Arg(1'000);

void BM_HashedProbeMiss(benchmark::State& state) {
  const BloomParams params;
  BloomFilter f(params);
  for (std::uint64_t k = 0; k < 1'000; ++k) f.insert(k);
  Rng rng(2);
  std::vector<HashedKey> keys;
  for (int i = 0; i < 1'024; ++i) keys.emplace_back(rng.next_u64(), params);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(keys[i++ & 1'023].present_in(f.words()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashedProbeMiss);

void BM_HashedQueryMatches3Terms(benchmark::State& state) {
  // Counterpart of BM_BloomContainsAll3Terms with the hashing hoisted out.
  const BloomParams params;
  BloomFilter f(params);
  for (std::uint64_t k = 0; k < 1'000; ++k) f.insert(k);
  const std::vector<asap::KeywordId> terms{10, 500, 999};
  const HashedQuery q(terms, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.matches(f));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashedQueryMatches3Terms);

void BM_BloomDiff(benchmark::State& state) {
  BloomFilter a, b;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) a.insert(rng.next_u64());
  b = a;
  for (int i = 0; i < state.range(0); ++i) b.insert(rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(BloomFilter::diff(a, b));
  }
}
BENCHMARK(BM_BloomDiff)->Arg(1)->Arg(10)->Arg(100);

void BM_BloomWireBytes(benchmark::State& state) {
  BloomFilter f;
  Rng rng(4);
  for (int i = 0; i < state.range(0); ++i) f.insert(rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.wire_bytes());
  }
}
BENCHMARK(BM_BloomWireBytes)->Arg(10)->Arg(1'000);

void BM_CountingInsertRemove(benchmark::State& state) {
  CountingBloomFilter c;
  Rng rng(5);
  for (auto _ : state) {
    const auto k = rng.next_u64();
    c.insert(k);
    c.remove(k);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CountingInsertRemove);

}  // namespace

BENCHMARK_MAIN();
