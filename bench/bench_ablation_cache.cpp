// Ablation: ads-cache capacity (paper does not bound the cache explicitly;
// a production deployment must).
//
// Sweeps the per-node cache capacity for ASAP(RW) on the crawled topology.
// Below the working-set size the sampled-LRU eviction discards ads that
// would later have answered queries, lowering the local-hit rate and
// pushing searches onto the ads-request fallback.
#include <iostream>

#include "bench/support.hpp"

int main(int argc, char** argv) {
  using namespace asap;
  auto args = bench::BenchArgs::parse(argc, argv);
  if (args.queries_override == 0) args.queries_override = 2'000;

  const auto cfg = bench::make_config(args, harness::TopologyKind::kCrawled);
  std::cerr << "[bench] building crawled world...\n";
  const auto world = harness::build_world(cfg);

  std::cout << "=== Ablation: ads-cache capacity, ASAP(RW), crawled ===\n\n";
  TextTable table({"capacity (ads/node)", "success %", "local hit %",
                   "cost/search", "load B/node/s"});
  for (const std::uint32_t cap : {25u, 50u, 100u, 250u, 500u, 1'500u}) {
    harness::RunOptions opts;
    auto p = harness::default_asap_params(harness::AlgoKind::kAsapRw,
                                          cfg.preset);
    p.cache_capacity = cap;
    opts.asap = p;
    const auto res =
        harness::run_experiment(world, harness::AlgoKind::kAsapRw, opts);
    std::cerr << "[bench] capacity=" << cap << " done\n";
    table.add_row({std::to_string(cap),
                   TextTable::num(100.0 * res.search.success_rate(), 1),
                   TextTable::num(100.0 * res.search.local_hit_rate(), 1),
                   TextTable::bytes(res.search.avg_cost_bytes()),
                   TextTable::num(res.load.mean_bytes_per_node_per_sec,
                                  1)});
  }
  table.print(std::cout);
  return 0;
}
