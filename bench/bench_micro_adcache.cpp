// Micro-benchmarks of the ads-cache lookup: legacy hash-per-term scan vs
// the hashed-query fast path (one-shot hashing + 8-byte prefilter +
// rarest-term-first early exit).
//
// Two modes:
//   * default            — the usual google-benchmark suite,
//   * --json[=PATH]      — skip google-benchmark and instead self-time the
//                          legacy/hashed lookup pairs at 256/1k/4k cached
//                          ads under hit and miss query mixes, writing a
//                          machine-readable report (default
//                          BENCH_lookup.json; schema checked in CI by
//                          tools/check_bench_lookup.py).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "asap/ad_cache.hpp"
#include "bloom/hashed_query.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"

namespace {

using asap::KeywordId;
using asap::NodeId;
using asap::Rng;
using asap::TopicId;
using asap::ads::AdCache;
using asap::ads::AdPayload;
using asap::bloom::BloomFilter;
using asap::bloom::BloomParams;
using asap::bloom::HashedQuery;

constexpr std::uint64_t kAdKeyPool = 50'000;  // keyword space of cached ads
constexpr std::uint64_t kMissKeyBase = 1'000'000;  // disjoint: never cached
constexpr int kQueries = 256;
constexpr std::size_t kTermsPerQuery = 3;

struct Workload {
  AdCache cache{1u << 20};  // never evicts during setup
  std::vector<std::vector<KeywordId>> queries;
};

/// A cache with `entries` ads of 8–12 keywords each, plus `kQueries`
/// three-term queries. Hit mix: terms sampled from one cached ad (that ad
/// matches; the prefilter must let it through). Miss mix: terms from a
/// disjoint keyword range (matches only via Bloom false positives).
Workload build_workload(std::size_t entries, bool hits, std::uint64_t seed) {
  Workload w;
  Rng rng(seed);
  std::vector<std::vector<KeywordId>> ad_keys(entries);
  for (std::size_t e = 0; e < entries; ++e) {
    const std::uint64_t n = 8 + rng.below(5);
    BloomFilter f;
    for (std::uint64_t i = 0; i < n; ++i) {
      ad_keys[e].push_back(static_cast<KeywordId>(rng.below(kAdKeyPool)));
      f.insert(ad_keys[e].back());
    }
    w.cache.put(std::make_shared<const AdPayload>(
                    static_cast<NodeId>(e), 1u, std::move(f),
                    std::vector<TopicId>{static_cast<TopicId>(rng.below(8))}),
                1.0, rng);
  }
  for (int q = 0; q < kQueries; ++q) {
    std::vector<KeywordId> terms;
    if (hits) {
      const auto& keys = ad_keys[rng.below(entries)];
      for (std::size_t t = 0; t < kTermsPerQuery; ++t) {
        terms.push_back(keys[rng.below(keys.size())]);
      }
    } else {
      for (std::size_t t = 0; t < kTermsPerQuery; ++t) {
        terms.push_back(
            static_cast<KeywordId>(kMissKeyBase + rng.below(kAdKeyPool)));
      }
    }
    w.queries.push_back(std::move(terms));
  }
  return w;
}

// --- google-benchmark suite ----------------------------------------------

void BM_CollectMatchesLegacy(benchmark::State& state) {
  const auto w = build_workload(static_cast<std::size_t>(state.range(0)),
                                state.range(1) != 0, 42);
  std::vector<asap::ads::AdPayloadPtr> out;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& terms = w.queries[i++ % w.queries.size()];
    w.cache.collect_matches(std::span<const KeywordId>(terms), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CollectMatchesHashed(benchmark::State& state) {
  const auto w = build_workload(static_cast<std::size_t>(state.range(0)),
                                state.range(1) != 0, 42);
  const BloomParams params;
  HashedQuery q;
  std::vector<asap::ads::AdPayloadPtr> out;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& terms = w.queries[i++ % w.queries.size()];
    q.assign(terms, params);  // charged to the fast path: hash once here
    w.cache.collect_matches(q, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CollectForReplyLegacy(benchmark::State& state) {
  const auto w = build_workload(static_cast<std::size_t>(state.range(0)),
                                state.range(1) != 0, 43);
  const std::vector<TopicId> interests{1, 3};
  std::vector<asap::ads::AdPayloadPtr> out;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& terms = w.queries[i++ % w.queries.size()];
    w.cache.collect_for_reply(std::span<const KeywordId>(terms), interests,
                              16, 8, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CollectForReplyHashed(benchmark::State& state) {
  const auto w = build_workload(static_cast<std::size_t>(state.range(0)),
                                state.range(1) != 0, 43);
  const BloomParams params;
  const std::vector<TopicId> interests{1, 3};
  HashedQuery q;
  std::vector<asap::ads::AdPayloadPtr> out;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& terms = w.queries[i++ % w.queries.size()];
    q.assign(terms, params);
    w.cache.collect_for_reply(q, interests, 16, 8, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}

void lookup_args(benchmark::internal::Benchmark* b) {
  for (const std::int64_t entries : {256, 1'024, 4'096}) {
    b->Args({entries, 1});  // hit mix
    b->Args({entries, 0});  // miss mix
  }
}
BENCHMARK(BM_CollectMatchesLegacy)->Apply(lookup_args);
BENCHMARK(BM_CollectMatchesHashed)->Apply(lookup_args);
BENCHMARK(BM_CollectForReplyLegacy)->Apply(lookup_args);
BENCHMARK(BM_CollectForReplyHashed)->Apply(lookup_args);

// --- --json mode: self-timed report --------------------------------------

template <typename Fn>
double ns_per_lookup(const Workload& w, Fn&& lookup) {
  using Clock = std::chrono::steady_clock;
  // Warm caches and pre-size the out vector.
  for (int i = 0; i < kQueries; ++i) lookup(w.queries[i]);
  std::uint64_t lookups = 0;
  const auto start = Clock::now();
  Clock::duration elapsed{};
  constexpr auto kMinTime = std::chrono::milliseconds(200);
  while (elapsed < kMinTime) {
    for (int i = 0; i < kQueries; ++i) lookup(w.queries[i]);
    lookups += kQueries;
    elapsed = Clock::now() - start;
  }
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  return static_cast<double>(ns) / static_cast<double>(lookups);
}

int run_json_report(const std::string& path) {
  const BloomParams params;
  asap::json::Array results;
  for (const std::size_t entries : {256u, 1'024u, 4'096u}) {
    for (const bool hits : {true, false}) {
      const auto w = build_workload(entries, hits, 42);
      std::vector<asap::ads::AdPayloadPtr> out;
      const double legacy_ns =
          ns_per_lookup(w, [&](const std::vector<KeywordId>& terms) {
            w.cache.collect_matches(std::span<const KeywordId>(terms), out);
            benchmark::DoNotOptimize(out.data());
          });
      HashedQuery q;
      const double hashed_ns =
          ns_per_lookup(w, [&](const std::vector<KeywordId>& terms) {
            q.assign(terms, params);
            w.cache.collect_matches(q, out);
            benchmark::DoNotOptimize(out.data());
          });
      const double speedup = legacy_ns / hashed_ns;
      std::printf("entries=%5zu mix=%-4s legacy=%9.1f ns  hashed=%8.1f ns  "
                  "speedup=%.2fx\n",
                  entries, hits ? "hit" : "miss", legacy_ns, hashed_ns,
                  speedup);
      results.push_back(asap::json::Object{
          {"bench", std::string("adcache_collect_matches")},
          {"entries", static_cast<double>(entries)},
          {"mix", std::string(hits ? "hit" : "miss")},
          {"legacy_ns_per_lookup", legacy_ns},
          {"hashed_ns_per_lookup", hashed_ns},
          {"speedup", speedup},
      });
    }
  }
#ifdef NDEBUG
  const bool release = true;
#else
  const bool release = false;
#endif
#ifdef ASAP_AUDIT_FORCE_ON
  const bool audit = true;  // oracle re-scans make speedups meaningless
#else
  const bool audit = false;
#endif
  const asap::json::Value doc{asap::json::Object{
      {"schema", std::string("asap.bench_lookup.v1")},
      {"release_build", release},
      {"audit_build", audit},
      {"unit", std::string("ns_per_lookup")},
      {"results", std::move(results)},
  }};
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  f << asap::json::dump(doc) << "\n";
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return run_json_report("BENCH_lookup.json");
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      return run_json_report(argv[i] + 7);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
