// Ablation: refresh-beacon period and the refresh-pull extension.
//
// Shorter periods keep remote caches validated (dead/stale entries pruned
// sooner) at higher background load. The pull extension (an interested
// node that receives a refresh beacon for an unknown ad fetches the full
// ad from the source) grows coverage after warm-up for one direct transfer
// per new cacher.
#include <iostream>

#include "bench/support.hpp"

int main(int argc, char** argv) {
  using namespace asap;
  auto args = bench::BenchArgs::parse(argc, argv);
  if (args.queries_override == 0) args.queries_override = 2'000;

  const auto cfg = bench::make_config(args, harness::TopologyKind::kCrawled);
  std::cerr << "[bench] building crawled world...\n";
  const auto world = harness::build_world(cfg);

  auto run = [&](Seconds period, bool pull) {
    harness::RunOptions opts;
    auto p = harness::default_asap_params(harness::AlgoKind::kAsapRw,
                                          cfg.preset);
    p.refresh_period = period;
    p.refresh_pull = pull;
    opts.asap = p;
    return harness::run_experiment(world, harness::AlgoKind::kAsapRw, opts);
  };

  std::cout << "=== Ablation: refresh period, ASAP(RW), crawled ===\n\n";
  TextTable table({"period (s)", "success %", "local hit %",
                   "refresh B/node/s", "total load B/node/s"});
  for (const double period : {30.0, 60.0, 120.0, 300.0, 600.0}) {
    const auto res = run(period, false);
    std::cerr << "[bench] period=" << period << " done\n";
    double refresh_share = 0.0;
    for (const auto& cs : res.breakdown) {
      if (cs.category == sim::Traffic::kRefreshAd) {
        refresh_share = cs.share;
      }
    }
    table.add_row(
        {TextTable::num(period, 0),
         TextTable::num(100.0 * res.search.success_rate(), 1),
         TextTable::num(100.0 * res.search.local_hit_rate(), 1),
         TextTable::num(refresh_share * res.load.mean_bytes_per_node_per_sec,
                        1),
         TextTable::num(res.load.mean_bytes_per_node_per_sec, 1)});
  }
  table.print(std::cout);

  std::cout << "\n=== Extension: refresh-pull at period 120 s ===\n\n";
  TextTable pull_table({"refresh-pull", "success %", "local hit %",
                        "pulls", "load B/node/s"});
  for (const bool pull : {false, true}) {
    const auto res = run(120.0, pull);
    std::cerr << "[bench] pull=" << pull << " done\n";
    pull_table.add_row(
        {pull ? "on" : "off",
         TextTable::num(100.0 * res.search.success_rate(), 1),
         TextTable::num(100.0 * res.search.local_hit_rate(), 1),
         std::to_string(res.asap_counters.refresh_pulls),
         TextTable::num(res.load.mean_bytes_per_node_per_sec, 1)});
  }
  pull_table.print(std::cout);
  return 0;
}
