// Reproduces Figure 7: the breakdown of ASAP(RW) system load by traffic
// category on the crawled topology.
//
// Paper shape: after the system warms up, patch and refresh ads dominate
// (~91% of the ad traffic) while full ads contribute ~8.5%; search-related
// traffic (confirmations + ads requests) is a small slice.
#include <iostream>

#include "bench/support.hpp"

int main(int argc, char** argv) {
  using namespace asap;
  auto args = bench::BenchArgs::parse(argc, argv);
  args.topologies = {harness::TopologyKind::kCrawled};

  const auto cells =
      bench::run_cells(args, {harness::AlgoKind::kAsapRw});
  const auto& res = cells.front().result;

  std::cout << "=== Fig 7: ASAP(RW) system load breakdown, crawled "
               "topology ===\n\n";
  TextTable table({"traffic category", "bytes", "share of load",
                   "share of ad traffic"});
  Bytes ad_total = 0;
  for (const auto& cs : res.breakdown) {
    if (cs.category == sim::Traffic::kFullAd ||
        cs.category == sim::Traffic::kPatchAd ||
        cs.category == sim::Traffic::kRefreshAd) {
      ad_total += cs.bytes;
    }
  }
  for (const auto& cs : res.breakdown) {
    const bool is_ad = cs.category == sim::Traffic::kFullAd ||
                       cs.category == sim::Traffic::kPatchAd ||
                       cs.category == sim::Traffic::kRefreshAd;
    table.add_row(
        {sim::traffic_name(cs.category),
         TextTable::bytes(static_cast<double>(cs.bytes)),
         TextTable::num(100.0 * cs.share, 1) + "%",
         is_ad && ad_total > 0
             ? TextTable::num(100.0 * static_cast<double>(cs.bytes) /
                                  static_cast<double>(ad_total),
                              1) +
                   "%"
             : std::string("-")});
  }
  table.print(std::cout);

  std::cout << "\nevent counters: full=" << res.asap_counters.full_ads
            << " patch=" << res.asap_counters.patch_ads
            << " refresh=" << res.asap_counters.refresh_ads
            << " ads-requests=" << res.asap_counters.ads_requests
            << " confirms=" << res.asap_counters.confirm_requests << '\n';
  std::cout << "(paper: ~91% of ad traffic from patch+refresh ads, ~8.5% "
               "from full ads)\n";
  return 0;
}
