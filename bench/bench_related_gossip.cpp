// Related-work comparison: PlanetP-style global index gossip vs ASAP.
//
// The paper's Related Work argues that globally gossiped indices (PlanetP
// [8]) deliver good search performance but "the system load tends to be
// high due to the global gossiping", which "could limit the system
// scalability" — exactly the niche ASAP targets with selective,
// interest-gated caching. This bench puts numbers on that claim using the
// identical workload.
#include <iostream>

#include "bench/support.hpp"
#include "search/gossip.hpp"
#include "sim/liveness.hpp"

namespace {

using namespace asap;

struct GossipResult {
  metrics::SearchStats search;
  metrics::LoadSummary load;
};

GossipResult run_gossip(const harness::World& world,
                        const search::GossipParams& params) {
  const Seconds warmup = world.cfg.warmup;
  const Seconds horizon = warmup + world.trace.horizon + 30.0;
  overlay::Overlay ov = world.base_overlay;
  trace::LiveContent live(world.model);
  trace::ContentIndex index(world.model, live);
  sim::Liveness liveness(world.model.total_node_slots(),
                         world.model.params().initial_nodes);
  sim::Engine engine;
  sim::BandwidthLedger ledger(horizon);
  Rng algo_rng(world.cfg.seed ^ 0x517CC1B727220A95ULL);
  Rng churn_rng(world.cfg.seed ^ 0x2545F4914F6CDD1DULL);
  search::Ctx ctx(ov, world.phys, world.node_phys, world.model, live, index,
                  engine, ledger, world.cfg.sizes, algo_rng);
  search::GossipIndexSearch algo(ctx, params);

  algo.warm_up(warmup);
  for (const auto& ev : world.trace.events) {
    const Seconds t = ev.time + warmup;
    engine.run_until(t);
    switch (ev.type) {
      case trace::TraceEventType::kJoin:
        ov.attach_new(world.cfg.join_degree, churn_rng);
        liveness.set_online(ev.node, true, t);
        break;
      case trace::TraceEventType::kRejoin:
        ov.reattach(ev.node, world.cfg.join_degree, churn_rng);
        liveness.set_online(ev.node, true, t);
        break;
      case trace::TraceEventType::kLeave:
        ov.detach(ev.node);
        liveness.set_online(ev.node, false, t);
        break;
      default:
        break;
    }
    live.apply(ev, world.model);
    index.apply(ev, world.model);
    trace::TraceEvent shifted = ev;
    shifted.time = t;
    algo.on_trace_event(shifted);
  }
  engine.run_until(horizon);

  GossipResult out;
  out.search = algo.stats();
  const auto live_series = liveness.live_count_series(horizon);
  const sim::Traffic cats[] = {sim::Traffic::kFullAd, sim::Traffic::kConfirm};
  out.load = metrics::reduce_load(
      ledger, cats, live_series, static_cast<std::uint32_t>(warmup),
      static_cast<std::uint32_t>(warmup + world.trace.horizon) + 1);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  if (args.queries_override == 0) args.queries_override = 2'000;
  const auto cfg = bench::make_config(args, harness::TopologyKind::kCrawled);
  std::cerr << "[bench] building crawled world...\n";
  const auto world = harness::build_world(cfg);

  std::cout << "=== Related work: global gossip (PlanetP-like) vs ASAP, "
               "crawled ===\n\n";
  TextTable table({"system", "success %", "resp ms", "cost/search",
                   "load B/node/s", "load stddev"});

  {
    const auto res = run_gossip(world, search::GossipParams{});
    std::cerr << "[bench] gossip done\n";
    table.add_row({"gossip(planetp)",
                   TextTable::num(100.0 * res.search.success_rate(), 1),
                   TextTable::num(1e3 * res.search.avg_response_time(), 1),
                   TextTable::bytes(res.search.avg_cost_bytes()),
                   TextTable::num(res.load.mean_bytes_per_node_per_sec, 1),
                   TextTable::num(res.load.stddev_bytes_per_node_per_sec,
                                  1)});
  }
  for (const auto kind :
       {harness::AlgoKind::kAsapRw, harness::AlgoKind::kFlooding}) {
    const auto res = harness::run_experiment(world, kind);
    std::cerr << "[bench] " << res.algo << " done\n";
    table.add_row({res.algo,
                   TextTable::num(100.0 * res.search.success_rate(), 1),
                   TextTable::num(1e3 * res.search.avg_response_time(), 1),
                   TextTable::bytes(res.search.avg_cost_bytes()),
                   TextTable::num(res.load.mean_bytes_per_node_per_sec, 1),
                   TextTable::num(res.load.stddev_bytes_per_node_per_sec,
                                  1)});
  }
  table.print(std::cout);
  std::cout << "\n(expected shape: gossip matches ASAP's search quality but "
               "pays a much higher, continuous background load — the "
               "paper's scalability argument against global replication)\n";
  return 0;
}
