// Ablation: the ad-delivery budget unit M0 (paper fixes M0 = 3000).
//
// Sweeps M0 for ASAP(RW) on the crawled topology and reports the coverage
// vs. maintenance-load trade-off: a larger budget spreads each ad to more
// caches (higher local-hit and success rates) at proportionally higher
// background load.
#include <iostream>

#include "bench/support.hpp"

int main(int argc, char** argv) {
  using namespace asap;
  auto args = bench::BenchArgs::parse(argc, argv);
  if (args.queries_override == 0) args.queries_override = 2'000;

  const auto cfg = bench::make_config(args, harness::TopologyKind::kCrawled);
  std::cerr << "[bench] building crawled world...\n";
  const auto world = harness::build_world(cfg);

  std::cout << "=== Ablation: ad budget unit M0, ASAP(RW), crawled "
               "topology ===\n\n";
  TextTable table({"M0", "success %", "local hit %", "cost/search",
                   "load B/node/s", "load stddev"});
  for (const std::uint64_t m0 : {375ULL, 750ULL, 1'500ULL, 3'000ULL,
                                 6'000ULL}) {
    harness::RunOptions opts;
    auto p = harness::default_asap_params(harness::AlgoKind::kAsapRw,
                                          cfg.preset);
    p.budget_unit_m0 = m0;
    opts.asap = p;
    const auto res =
        harness::run_experiment(world, harness::AlgoKind::kAsapRw, opts);
    std::cerr << "[bench] M0=" << m0 << " done in "
              << TextTable::num(res.wall_seconds, 1) << " s\n";
    table.add_row({std::to_string(m0),
                   TextTable::num(100.0 * res.search.success_rate(), 1),
                   TextTable::num(100.0 * res.search.local_hit_rate(), 1),
                   TextTable::bytes(res.search.avg_cost_bytes()),
                   TextTable::num(res.load.mean_bytes_per_node_per_sec, 1),
                   TextTable::num(res.load.stddev_bytes_per_node_per_sec,
                                  1)});
  }
  table.print(std::cout);
  std::cout << "\n(the paper fixes M0 = 3000; the sweep shows the "
               "coverage/load knee)\n";
  return 0;
}
