// Micro-benchmarks of the simulation substrates (google-benchmark): the
// event heap, the transit-stub latency oracle and the propagation kernels.
#include <benchmark/benchmark.h>

#include "../tests/support/test_world.hpp"
#include "search/propagation.hpp"
#include "sim/engine.hpp"

namespace {

using namespace asap;

void BM_EngineScheduleAndRun(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  for (auto _ : state) {
    sim::Engine e;
    for (std::int64_t i = 0; i < n; ++i) {
      e.schedule_at(rng.uniform(0.0, 1e6), [] {});
    }
    e.run();
    benchmark::DoNotOptimize(e.executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleAndRun)->Arg(1'000)->Arg(100'000);

void BM_TransitStubLatency(benchmark::State& state) {
  Rng rng(2);
  const auto net =
      net::TransitStubNetwork::generate(net::TransitStubParams::small(), rng);
  Rng pick(3);
  for (auto _ : state) {
    const auto a = static_cast<PhysNodeId>(pick.below(net.num_nodes()));
    const auto b = static_cast<PhysNodeId>(pick.below(net.num_nodes()));
    benchmark::DoNotOptimize(net.latency(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransitStubLatency);

void BM_TransitStubGenerateSmall(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(4);
    benchmark::DoNotOptimize(
        net::TransitStubNetwork::generate(net::TransitStubParams::small(),
                                          rng));
  }
}
BENCHMARK(BM_TransitStubGenerateSmall)->Unit(benchmark::kMillisecond);

void BM_FloodKernel(benchmark::State& state) {
  testing::TestWorld w;
  const auto ttl = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    const auto stats =
        search::flood(w.ctx, 0, w.engine.now(), ttl, 80,
                      sim::Traffic::kQuery,
                      [](NodeId, Seconds, std::uint32_t) {
                        return search::VisitAction::kContinue;
                      });
    msgs += stats.messages;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(msgs));
}
BENCHMARK(BM_FloodKernel)->Arg(2)->Arg(6);

void BM_RandomWalkKernel(benchmark::State& state) {
  testing::TestWorld w;
  const auto hops = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    const auto stats = search::random_walk(
        w.ctx, 0, w.engine.now(), 5, hops, 80, sim::Traffic::kQuery,
        [](NodeId, Seconds, std::uint32_t) {
          return search::VisitAction::kContinue;
        });
    msgs += stats.messages;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(msgs));
}
BENCHMARK(BM_RandomWalkKernel)->Arg(64)->Arg(1'024);

void BM_OverlayGenerate(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(5);
    benchmark::DoNotOptimize(
        overlay::Overlay::crawled_like(2'000, 3.35, rng));
  }
  state.SetLabel("crawled-like, 2000 nodes");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OverlayGenerate)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
