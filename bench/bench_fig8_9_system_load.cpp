// Reproduces Figures 8 and 9: average system load (bytes per live node per
// second over the measurement window) and its standard deviation, for all
// six systems on the three overlay topologies.
//
// Paper shapes: flooding has the highest load with large variation;
// random walk bounds its load with the smallest variation among baselines;
// ASAP(RW) holds the lowest load overall (>=81% below the random-walk
// baseline in the paper) with only minor variation; ASAP(FLD) is the most
// expensive ASAP variant.
#include <iostream>

#include "bench/support.hpp"

int main(int argc, char** argv) {
  using namespace asap;
  const auto args = bench::BenchArgs::parse(argc, argv);
  auto cells = bench::run_cells(args, bench::all_algos());
  bench::sort_cells(cells, bench::all_algos());

  std::cout << "=== Fig 8: average system load (bytes/node/s) ===\n";
  std::cout << "=== Fig 9: system load standard deviation ===\n\n";

  TextTable table({"topology", "algorithm", "load B/node/s (Fig8)",
                   "stddev (Fig9)", "peak B/node/s"});
  for (const auto& cell : cells) {
    const auto& l = cell.result.load;
    table.add_row({harness::topology_name(cell.topology), cell.result.algo,
                   TextTable::num(l.mean_bytes_per_node_per_sec, 1),
                   TextTable::num(l.stddev_bytes_per_node_per_sec, 1),
                   TextTable::num(l.peak_bytes_per_node_per_sec, 1)});
  }
  table.print(std::cout);

  // Headline ratio: ASAP(RW) vs the random-walk baseline (crawled).
  const harness::RunResult* rw = nullptr;
  const harness::RunResult* asap_rw = nullptr;
  for (const auto& cell : cells) {
    if (cell.topology != harness::TopologyKind::kCrawled) continue;
    if (cell.algo == harness::AlgoKind::kRandomWalk) rw = &cell.result;
    if (cell.algo == harness::AlgoKind::kAsapRw) asap_rw = &cell.result;
  }
  if (rw != nullptr && asap_rw != nullptr &&
      rw->load.mean_bytes_per_node_per_sec > 0.0) {
    const double cut =
        100.0 * (1.0 - asap_rw->load.mean_bytes_per_node_per_sec /
                           rw->load.mean_bytes_per_node_per_sec);
    std::cout << "\ncrawled topology: ASAP(RW) load is "
              << TextTable::num(cut, 1)
              << "% below the random-walk baseline (paper: >81%)\n";
  }
  return 0;
}
