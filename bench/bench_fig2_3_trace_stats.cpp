// Reproduces Figure 2 (nodes per semantic class) and Figure 3 (nodes per
// interest) of the paper: the content-distribution statistics of the
// synthesized eDonkey-like corpus, plus the replication statistics quoted
// in §V-A (mean ~1.28 copies/doc, ~89% single-copy).
#include <iostream>

#include "bench/support.hpp"
#include "trace/classes.hpp"
#include "trace/content_model.hpp"

int main(int argc, char** argv) {
  using namespace asap;
  const auto args = bench::BenchArgs::parse(argc, argv);
  auto cfg = bench::make_config(args, harness::TopologyKind::kCrawled);

  Rng rng(cfg.seed);
  const auto model = trace::ContentModel::build(cfg.content, rng);

  std::cout << "=== Fig 2/3: semantic class and interest distributions ("
            << cfg.content.initial_nodes << " peers) ===\n\n";

  const auto per_class = model.nodes_per_class();
  const auto per_interest = model.nodes_per_interest();

  TextTable table({"class", "nodes sharing it (Fig 2)",
                   "nodes interested (Fig 3)"});
  for (std::uint32_t c = 0; c < trace::kNumClasses; ++c) {
    table.add_row({std::string(trace::class_name(static_cast<TopicId>(c))),
                   std::to_string(per_class[c]),
                   std::to_string(per_interest[c])});
  }
  table.print(std::cout);

  std::cout << "\n=== §V-A replication statistics (paper: mean ~1.28, "
               "~89% single-copy) ===\n";
  std::cout << "documents:            " << model.corpus().size() << '\n';
  std::cout << "mean copies/document: "
            << TextTable::num(model.mean_replication(), 3) << '\n';
  std::cout << "single-copy fraction: "
            << TextTable::num(100.0 * model.single_copy_fraction(), 1)
            << "%\n";

  std::uint32_t free_riders = 0;
  for (NodeId n = 0; n < cfg.content.initial_nodes; ++n) {
    free_riders += model.is_free_rider(n);
  }
  std::cout << "free-riders:          " << free_riders << " ("
            << TextTable::num(
                   100.0 * free_riders / cfg.content.initial_nodes, 1)
            << "%)\n";
  return 0;
}
