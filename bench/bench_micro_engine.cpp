// Micro-benchmarks of the event-loop hot path: the seed engine (4-ary
// heap over std::function items, one heap allocation per oversized
// closure) vs the current sim::Engine (ladder queue above the migration
// threshold + SBO EventCallbacks drawing pool blocks for big closures).
//
// Workload is the classic "hold" model for priority queues: pre-fill the
// queue to a fixed depth, then repeatedly pop the earliest event whose
// callback schedules one successor at now + U(0, horizon). Steady-state
// depth stays constant, so ns/event isolates queue + dispatch + closure
// storage cost at that depth.
//
// A third workload covers the sharded event loop (DESIGN.md §14): a
// 64k-node world runs window-parallel at 1/2/4/8 shards, with ~16
// splitmix rounds of per-event state work and 10% cross-partition
// messages whose latency respects the lookahead. Digests must be
// bit-identical across every shard count; wall-clock speedup is recorded
// per count (and only meaningful on a machine with that many lanes —
// the report carries hardware_lanes so the checker can tell).
//
// Three modes:
//   * default            — the usual google-benchmark suite,
//   * --shards           — just the sharded sweep, printed to stdout,
//   * --json[=PATH]      — skip google-benchmark and self-time the
//                          seed/current engine pairs at four queue depths
//                          and two closure sizes plus the sharded sweep,
//                          writing a machine-readable report (default
//                          BENCH_engine.json; schema- and threshold-
//                          checked by tools/check_bench_engine.py).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "exec/policy.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"

namespace {

using asap::Rng;
using asap::Seconds;

constexpr Seconds kHorizon = 1'000.0;  // successor delay ~ U(0, kHorizon)

/// Successor delays come from a precomputed table so the measured loop
/// prices the event loop (pop + dispatch + closure storage + push), not
/// the RNG. 8192 doubles = 64 KiB, L2-resident.
class DeltaTable {
 public:
  DeltaTable() {
    Rng rng(0xDE17A5);
    for (double& d : deltas_) d = rng.uniform(0.0, kHorizon);
  }
  double next() { return deltas_[cur_++ & (kSize - 1)]; }

 private:
  static constexpr std::size_t kSize = 8192;
  double deltas_[kSize];
  std::size_t cur_ = 0;
};

/// Closure payloads. 16 bytes + the captured this-pointer stays inside
/// EventCallback's 40-byte inline buffer (and forces a heap allocation in
/// the seed's std::function, whose libstdc++ inline buffer is 16 bytes —
/// exactly the seed behavior for typical protocol closures). 64 bytes
/// overflows the inline buffer, exercising the SlabPool fallback against
/// std::function's plain operator new.
constexpr std::size_t kInlinePayload = 16;
constexpr std::size_t kPooledPayload = 64;

/// Faithful replica of the pre-ladder engine (the growth seed): a 4-ary
/// heap of (time, seq, std::function) items with the same digest
/// absorption per executed event, so both engines do identical per-event
/// bookkeeping and the measured delta is queue + closure storage only.
class SeedEngine {
 public:
  template <typename F>
  void schedule_at(Seconds t, F&& f) {
    heap_.push_back(Item{t, next_seq_++, std::forward<F>(f)});
    sift_up(heap_.size() - 1);
  }

  bool step() {
    if (heap_.empty()) return false;
    Item item = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    digest_.absorb(item.time);
    digest_.absorb(item.seq);
    now_ = item.time;
    ++executed_;
    item.cb();
    return true;
  }

  Seconds now() const { return now_; }
  std::uint64_t digest() const { return digest_.value(); }

 private:
  struct Item {
    Seconds time;
    std::uint64_t seq;
    std::function<void()> cb;

    bool before(const Item& other) const {
      if (time != other.time) return time < other.time;
      return seq < other.seq;
    }
  };

  static constexpr std::size_t kArity = 4;

  void sift_up(std::size_t i) {
    Item item = std::move(heap_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!item.before(heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(item);
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    Item item = std::move(heap_[i]);
    for (;;) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t last_child = std::min(first_child + kArity, n);
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (heap_[c].before(heap_[best])) best = c;
      }
      if (!heap_[best].before(item)) break;
      heap_[i] = std::move(heap_[best]);
      i = best;
    }
    heap_[i] = std::move(item);
  }

  std::vector<Item> heap_;
  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  asap::sim::Fnv64 digest_;
};

/// Self-sustaining hold workload over either engine type.
template <typename Eng, std::size_t PayloadBytes>
struct Hold {
  Eng engine;
  DeltaTable deltas;
  std::uint64_t sink = 0;

  struct Payload {
    unsigned char bytes[PayloadBytes];
  };

  void seed_event(Seconds t) {
    Payload p{};
    p.bytes[0] = static_cast<unsigned char>(sink & 0xFF);
    engine.schedule_at(t, [this, p] {
      sink += p.bytes[0] + 1;
      seed_event(engine.now() + deltas.next());
    });
  }

  void fill(std::size_t depth) {
    Rng fill_rng(0xF111);
    for (std::size_t i = 0; i < depth; ++i) {
      seed_event(fill_rng.uniform(0.0, kHorizon));
    }
  }
};

// --- google-benchmark suite ----------------------------------------------

template <typename Eng, std::size_t PayloadBytes>
void run_hold(benchmark::State& state) {
  Hold<Eng, PayloadBytes> h;
  h.fill(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    h.engine.step();
  }
  benchmark::DoNotOptimize(h.sink);
  state.SetItemsProcessed(state.iterations());
}

void BM_HoldSeedInline(benchmark::State& state) {
  run_hold<SeedEngine, kInlinePayload>(state);
}
void BM_HoldSeedPooled(benchmark::State& state) {
  run_hold<SeedEngine, kPooledPayload>(state);
}
void BM_HoldEngineInline(benchmark::State& state) {
  run_hold<asap::sim::Engine, kInlinePayload>(state);
}
void BM_HoldEnginePooled(benchmark::State& state) {
  run_hold<asap::sim::Engine, kPooledPayload>(state);
}

void hold_args(benchmark::internal::Benchmark* b) {
  for (const std::int64_t depth :
       {1'024, 16'384, 65'536, 262'144, 1'048'576}) {
    b->Arg(depth);
  }
}
BENCHMARK(BM_HoldSeedInline)->Apply(hold_args);
BENCHMARK(BM_HoldSeedPooled)->Apply(hold_args);
BENCHMARK(BM_HoldEngineInline)->Apply(hold_args);
BENCHMARK(BM_HoldEnginePooled)->Apply(hold_args);

// --- sharded window-parallel hold ----------------------------------------

constexpr std::size_t kShardNodes = 65'536;
constexpr Seconds kShardHorizon = 1'000.0;
constexpr Seconds kLookahead = 50.0;

/// splitmix64 finalizer — the sharded workload's per-node state advance
/// and its only randomness source, so every shard count replays the
/// identical event tree.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

double unit64(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1p-53;
}

/// 64k per-node state machines: each tick burns ~16 splitmix rounds
/// (the "protocol work" a real kernel would do), reschedules itself, and
/// sends a cross-partition message 10% of the time with latency >= the
/// lookahead, so the conservative-window contract holds by construction.
class ShardHold {
 public:
  explicit ShardHold(std::size_t shards) : engine_(tuned(shards)) {
    state_.resize(kShardNodes);
    for (asap::NodeId n = 0; n < kShardNodes; ++n) {
      state_[n] = mix64(0x51A2DULL + n);
      const Seconds at = 5.0 * unit64(mix64(state_[n]));
      engine_.schedule_at(at, n, [this, n] { tick(n); });
    }
  }

  void run(asap::exec::Policy& policy) {
    engine_.run_window_parallel(policy, kShardHorizon, kLookahead);
  }

  std::uint64_t digest() const { return engine_.digest(); }
  std::uint64_t events() const { return engine_.executed(); }

 private:
  static asap::sim::EngineTuning tuned(std::size_t shards) {
    asap::sim::EngineTuning t;
    t.shards = shards;
    t.causal_keys = true;  // window-parallel requirement
    return t;
  }

  void tick(asap::NodeId n) {
    std::uint64_t s = state_[n];
    for (int r = 0; r < 16; ++r) s = mix64(s);
    state_[n] = s;
    if ((s >> 8) % 10 == 0) {
      const auto dst = static_cast<asap::NodeId>((s >> 16) % kShardNodes);
      // latency = lookahead * (1 + u) >= lookahead: rounding is monotone,
      // so the scheduled time can never undershoot the window end.
      const Seconds latency = kLookahead * (1.0 + unit64(mix64(s ^ 0xC)));
      engine_.schedule_in(latency, dst, [this, dst] { poke(dst); });
    }
    const Seconds delay = 5.0 + 40.0 * unit64(mix64(s ^ 0xD));
    if (engine_.now() + delay <= kShardHorizon) {
      engine_.schedule_in(delay, n, [this, n] { tick(n); });
    }
  }

  void poke(asap::NodeId n) {
    std::uint64_t s = state_[n] ^ 0xB0B0;
    for (int r = 0; r < 16; ++r) s = mix64(s);
    state_[n] = s;
  }

  asap::sim::Engine engine_;
  std::vector<std::uint64_t> state_;
};

struct ShardCell {
  std::size_t shards;
  double wall_seconds;
  std::uint64_t events;
  std::uint64_t digest;
};

ShardCell run_shard_cell(std::size_t shards) {
  using Clock = std::chrono::steady_clock;
  // Min over fresh worlds: an engine cannot rewind, so each repetition
  // replays from scratch (the replay is bit-identical by design).
  constexpr int kReps = 2;
  ShardCell cell{shards, std::numeric_limits<double>::infinity(), 0, 0};
  for (int rep = 0; rep < kReps; ++rep) {
    ShardHold hold(shards);
    asap::exec::SeqPolicy seq;
    asap::ThreadPool pool(shards > 1 ? shards : 1);
    asap::exec::PoolPolicy pooled(pool);
    asap::exec::Policy& policy =
        shards > 1 ? static_cast<asap::exec::Policy&>(pooled)
                   : static_cast<asap::exec::Policy&>(seq);
    const auto start = Clock::now();
    hold.run(policy);
    const std::chrono::duration<double> wall = Clock::now() - start;
    cell.wall_seconds = std::min(cell.wall_seconds, wall.count());
    cell.events = hold.events();
    cell.digest = hold.digest();
  }
  return cell;
}

/// Runs the sweep, prints a table, and appends rows to `out` (when
/// non-null). Returns false if any shard count diverges from the
/// single-shard digest — that is a correctness failure, not a timing
/// result.
bool run_shard_sweep(asap::json::Array* out) {
  std::vector<ShardCell> cells;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    cells.push_back(run_shard_cell(shards));
  }
  const ShardCell& base = cells.front();
  bool ok = true;
  for (const ShardCell& c : cells) {
    const bool digest_ok = c.digest == base.digest && c.events == base.events;
    ok = ok && digest_ok;
    const double speedup = base.wall_seconds / c.wall_seconds;
    std::printf("shards=%zu nodes=%zu events=%llu wall=%.3fs speedup=%.2fx "
                "digest=%s\n",
                c.shards, kShardNodes,
                static_cast<unsigned long long>(c.events), c.wall_seconds,
                speedup, digest_ok ? "ok" : "MISMATCH");
    if (out != nullptr) {
      out->push_back(asap::json::Object{
          {"bench", std::string("engine_shard_hold")},
          {"shards", static_cast<double>(c.shards)},
          {"nodes", static_cast<double>(kShardNodes)},
          {"events", static_cast<double>(c.events)},
          {"wall_seconds", c.wall_seconds},
          {"speedup", speedup},
          {"digest_ok", digest_ok},
      });
    }
  }
  if (!ok) std::fprintf(stderr, "shard digest mismatch: run is broken\n");
  return ok;
}

// --- --json mode: self-timed report --------------------------------------

template <typename Eng, std::size_t PayloadBytes>
double ns_per_event(std::size_t depth) {
  using Clock = std::chrono::steady_clock;
  Hold<Eng, PayloadBytes> h;
  h.fill(depth);
  // Warm-up: one full queue turnover settles allocator pools and caches.
  for (std::size_t i = 0; i < depth; ++i) h.engine.step();
  // Min over repetitions: the least-perturbed pass is the standard
  // noise-robust microbench estimator on shared machines.
  constexpr int kReps = 3;
  constexpr auto kMinTime = std::chrono::milliseconds(200);
  constexpr std::uint64_t kBatch = 20'000;
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    std::uint64_t events = 0;
    const auto start = Clock::now();
    Clock::duration elapsed{};
    while (elapsed < kMinTime) {
      for (std::uint64_t i = 0; i < kBatch; ++i) h.engine.step();
      events += kBatch;
      elapsed = Clock::now() - start;
    }
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    best = std::min(best,
                    static_cast<double>(ns) / static_cast<double>(events));
  }
  benchmark::DoNotOptimize(h.sink);
  return best;
}

int run_json_report(const std::string& path) {
  asap::json::Array results;
  for (const std::size_t depth :
       {1'024u, 16'384u, 65'536u, 262'144u, 1'048'576u}) {
    for (const bool pooled : {false, true}) {
      const double seed_ns = pooled
                                 ? ns_per_event<SeedEngine, kPooledPayload>(depth)
                                 : ns_per_event<SeedEngine, kInlinePayload>(depth);
      const double engine_ns =
          pooled ? ns_per_event<asap::sim::Engine, kPooledPayload>(depth)
                 : ns_per_event<asap::sim::Engine, kInlinePayload>(depth);
      const double speedup = seed_ns / engine_ns;
      const char* closure = pooled ? "pooled" : "inline";
      std::printf("depth=%7zu closure=%-6s seed=%7.1f ns  engine=%6.1f ns  "
                  "speedup=%.2fx\n",
                  depth, closure, seed_ns, engine_ns, speedup);
      results.push_back(asap::json::Object{
          {"bench", std::string("engine_hold")},
          {"depth", static_cast<double>(depth)},
          {"closure", std::string(closure)},
          {"seed_ns_per_event", seed_ns},
          {"engine_ns_per_event", engine_ns},
          {"speedup", speedup},
      });
    }
  }
  const bool shards_ok = run_shard_sweep(&results);
#ifdef NDEBUG
  const bool release = true;
#else
  const bool release = false;
#endif
#ifdef ASAP_AUDIT_FORCE_ON
  const bool audit = true;  // audit hooks inflate per-event cost
#else
  const bool audit = false;
#endif
  const asap::json::Value doc{asap::json::Object{
      {"schema", std::string("asap.bench_engine.v2")},
      {"release_build", release},
      {"audit_build", audit},
      {"hardware_lanes", static_cast<double>(asap::exec::hardware_lanes())},
      {"unit", std::string("ns_per_event")},
      {"results", std::move(results)},
  }};
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  f << asap::json::dump(doc) << "\n";
  std::printf("wrote %s\n", path.c_str());
  return shards_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return run_json_report("BENCH_engine.json");
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      return run_json_report(argv[i] + 7);
    }
    if (std::strcmp(argv[i], "--shards") == 0) {
      return run_shard_sweep(nullptr) ? 0 : 1;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
