// Ablation: flat ASAP vs. hierarchical (superpeer) ASAP — the paper's
// footnote-3 deployment mode, where only superpeers represent, deliver,
// cache and process ads.
//
// Expectations: the superpeer mode concentrates cache memory on ~15% of
// peers and disseminates over a much smaller mesh (lower ad load), at the
// cost of one extra proxy round trip per leaf search (higher response
// time) and sensitivity to superpeer liveness.
#include <iostream>

#include "asap/superpeer.hpp"
#include "bench/support.hpp"
#include "search/context.hpp"
#include "sim/liveness.hpp"

namespace {

using namespace asap;

struct SpResult {
  metrics::SearchStats search;
  metrics::LoadSummary load;
  std::uint64_t cached_ads = 0;
  std::uint32_t superpeers = 0;
};

/// Replays the world against SuperpeerAsap (the harness only knows the
/// six built-in systems, so this bench drives the replay loop directly).
SpResult run_superpeer(const harness::World& world,
                       const ads::SuperpeerParams& params) {
  const Seconds warmup = world.cfg.warmup;
  const Seconds horizon = warmup + world.trace.horizon + 30.0;
  overlay::Overlay ov = world.base_overlay;
  trace::LiveContent live(world.model);
  trace::ContentIndex index(world.model, live);
  sim::Liveness liveness(world.model.total_node_slots(),
                         world.model.params().initial_nodes);
  sim::Engine engine;
  sim::BandwidthLedger ledger(horizon);
  Rng algo_rng(world.cfg.seed ^ 0x517CC1B727220A95ULL);
  Rng churn_rng(world.cfg.seed ^ 0x2545F4914F6CDD1DULL);
  search::Ctx ctx(ov, world.phys, world.node_phys, world.model, live, index,
                  engine, ledger, world.cfg.sizes, algo_rng);
  ads::SuperpeerAsap algo(ctx, params);

  algo.warm_up(warmup);
  for (const auto& ev : world.trace.events) {
    const Seconds t = ev.time + warmup;
    engine.run_until(t);
    switch (ev.type) {
      case trace::TraceEventType::kJoin:
        ov.attach_new(world.cfg.join_degree, churn_rng);
        liveness.set_online(ev.node, true, t);
        break;
      case trace::TraceEventType::kLeave:
        ov.detach(ev.node);
        liveness.set_online(ev.node, false, t);
        break;
      default:
        break;
    }
    live.apply(ev, world.model);
    index.apply(ev, world.model);
    trace::TraceEvent shifted = ev;
    shifted.time = t;
    algo.on_trace_event(shifted);
  }
  engine.run_until(horizon);

  SpResult out;
  out.search = algo.stats();
  const auto live_series = liveness.live_count_series(horizon);
  const auto cats = harness::load_categories(harness::AlgoKind::kAsapRw);
  out.load = metrics::reduce_load(
      ledger, cats, live_series, static_cast<std::uint32_t>(warmup),
      static_cast<std::uint32_t>(warmup + world.trace.horizon) + 1);
  out.cached_ads = algo.total_cached_ads();
  out.superpeers = algo.num_superpeers();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  if (args.queries_override == 0) args.queries_override = 2'000;
  const auto cfg = bench::make_config(args, harness::TopologyKind::kCrawled);
  std::cerr << "[bench] building crawled world...\n";
  const auto world = harness::build_world(cfg);

  std::cout << "=== Ablation: flat ASAP(RW) vs superpeer ASAP(RW), crawled "
               "===\n\n";
  TextTable table({"mode", "success %", "local hit %", "resp ms",
                   "cost/search", "load B/node/s", "cached ads total"});

  {
    const auto flat =
        harness::run_experiment(world, harness::AlgoKind::kAsapRw);
    std::cerr << "[bench] flat done\n";
    // Flat cache occupancy is not exposed via RunResult; report the load
    // and search metrics, cache column marked from the protocol run below.
    table.add_row({"flat asap(rw)",
                   TextTable::num(100.0 * flat.search.success_rate(), 1),
                   TextTable::num(100.0 * flat.search.local_hit_rate(), 1),
                   TextTable::num(1e3 * flat.search.avg_response_time(), 1),
                   TextTable::bytes(flat.search.avg_cost_bytes()),
                   TextTable::num(flat.load.mean_bytes_per_node_per_sec, 1),
                   "~every interested node"});
  }
  for (const double fraction : {0.10, 0.15, 0.25}) {
    auto p = ads::SuperpeerParams::small(search::Scheme::kRandomWalk);
    p.superpeer_fraction = fraction;
    const auto res = run_superpeer(world, p);
    std::cerr << "[bench] superpeer fraction=" << fraction << " done\n";
    table.add_row(
        {"sp-asap(rw) " + TextTable::num(100.0 * fraction, 0) + "% (" +
             std::to_string(res.superpeers) + " SPs)",
         TextTable::num(100.0 * res.search.success_rate(), 1),
         TextTable::num(100.0 * res.search.local_hit_rate(), 1),
         TextTable::num(1e3 * res.search.avg_response_time(), 1),
         TextTable::bytes(res.search.avg_cost_bytes()),
         TextTable::num(res.load.mean_bytes_per_node_per_sec, 1),
         std::to_string(res.cached_ads)});
  }
  table.print(std::cout);
  return 0;
}
