// Ablation: interest-biased ad delivery (extension).
//
// With the RW scheme, delivery walkers can prefer next hops whose
// interests overlap the ad's topics. Because caching is interest-gated,
// biased walks waste fewer hops on indifferent peers: the same delivery
// budget yields more cached copies and a higher local-hit rate.
#include <iostream>

#include "bench/support.hpp"

int main(int argc, char** argv) {
  using namespace asap;
  auto args = bench::BenchArgs::parse(argc, argv);
  if (args.queries_override == 0) args.queries_override = 2'000;

  const auto cfg = bench::make_config(args, harness::TopologyKind::kCrawled);
  std::cerr << "[bench] building crawled world...\n";
  const auto world = harness::build_world(cfg);

  std::cout << "=== Ablation: interest-biased delivery walks, ASAP(RW), "
               "crawled ===\n\n";
  TextTable table({"bias", "success %", "local hit %", "cost/search",
                   "load B/node/s"});
  for (const double bias : {1.0, 2.0, 4.0, 8.0}) {
    harness::RunOptions opts;
    auto p = harness::default_asap_params(harness::AlgoKind::kAsapRw,
                                          cfg.preset);
    p.interest_bias = bias;
    opts.asap = p;
    const auto res =
        harness::run_experiment(world, harness::AlgoKind::kAsapRw, opts);
    std::cerr << "[bench] bias=" << bias << " done\n";
    table.add_row({bias == 1.0 ? "off (uniform)" : TextTable::num(bias, 0) + "x",
                   TextTable::num(100.0 * res.search.success_rate(), 1),
                   TextTable::num(100.0 * res.search.local_hit_rate(), 1),
                   TextTable::bytes(res.search.avg_cost_bytes()),
                   TextTable::num(res.load.mean_bytes_per_node_per_sec, 1)});
  }
  table.print(std::cout);
  return 0;
}
