// Ablation: the ads-request radius h (paper §III-C fixes h = 1).
//
// h = 0 disables the fallback entirely: searches succeed only from the
// local cache. h = 2 widens the request flood to two overlay hops, buying
// success at a sharply higher per-failure cost (every node within two hops
// answers with a reply bundle).
#include <iostream>

#include "bench/support.hpp"

int main(int argc, char** argv) {
  using namespace asap;
  auto args = bench::BenchArgs::parse(argc, argv);
  if (args.queries_override == 0) args.queries_override = 2'000;

  const auto cfg = bench::make_config(args, harness::TopologyKind::kCrawled);
  std::cerr << "[bench] building crawled world...\n";
  const auto world = harness::build_world(cfg);

  std::cout << "=== Ablation: ads-request radius h, ASAP(RW), crawled "
               "===\n\n";
  TextTable table({"h (hops)", "success %", "local hit %", "resp ms",
                   "cost/search", "load B/node/s"});
  for (const std::uint32_t h : {0u, 1u, 2u}) {
    harness::RunOptions opts;
    auto p = harness::default_asap_params(harness::AlgoKind::kAsapRw,
                                          cfg.preset);
    p.ads_request_hops = h;
    opts.asap = p;
    const auto res =
        harness::run_experiment(world, harness::AlgoKind::kAsapRw, opts);
    std::cerr << "[bench] h=" << h << " done\n";
    table.add_row(
        {std::to_string(h),
         TextTable::num(100.0 * res.search.success_rate(), 1),
         TextTable::num(100.0 * res.search.local_hit_rate(), 1),
         TextTable::num(1e3 * res.search.avg_response_time(), 1),
         TextTable::bytes(res.search.avg_cost_bytes()),
         TextTable::num(res.load.mean_bytes_per_node_per_sec, 1)});
  }
  table.print(std::cout);
  std::cout << "\n(the paper fixes h = 1 'to control the network bandwidth "
               "consumption')\n";
  return 0;
}
