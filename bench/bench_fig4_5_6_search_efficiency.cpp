// Reproduces Figures 4, 5 and 6: search success rate, average response
// time and average bandwidth per search, for all six systems (flooding,
// random walk, GSA, ASAP(FLD), ASAP(RW), ASAP(GSA)) on the three overlay
// topologies (random, power-law, crawled).
//
// Paper shapes to expect: ASAP variants combine a high success rate with a
// response time 62-78% below flooding/GSA and a search cost 2-3 orders of
// magnitude lower; random walk has poor success (most documents are
// single-copy) and the longest response time.
#include <iostream>

#include "bench/support.hpp"

int main(int argc, char** argv) {
  using namespace asap;
  const auto args = bench::BenchArgs::parse(argc, argv);
  auto cells = bench::run_cells(args, bench::all_algos());
  bench::sort_cells(cells, bench::all_algos());

  std::cout << "=== Fig 4: search success rate (%) ===\n";
  std::cout << "=== Fig 5: average response time of successful searches "
               "(ms) ===\n";
  std::cout << "=== Fig 6: average bandwidth consumed per search ===\n\n";

  TextTable table({"topology", "algorithm", "success % (Fig4)",
                   "resp ms (Fig5)", "cost/search (Fig6)", "msgs/search",
                   "local hit %"});
  for (const auto& cell : cells) {
    const auto& s = cell.result.search;
    table.add_row(
        {harness::topology_name(cell.topology), cell.result.algo,
         TextTable::num(100.0 * s.success_rate(), 1),
         TextTable::num(1e3 * s.avg_response_time(), 1),
         TextTable::bytes(s.avg_cost_bytes()),
         TextTable::num(s.avg_messages(), 1),
         harness::is_asap(cell.algo)
             ? TextTable::num(100.0 * s.local_hit_rate(), 1)
             : std::string("-")});
  }
  table.print(std::cout);

  // Headline ratios on the crawled topology (the paper's §V focus).
  const harness::RunResult* flood = nullptr;
  const harness::RunResult* asap_rw = nullptr;
  for (const auto& cell : cells) {
    if (cell.topology != harness::TopologyKind::kCrawled) continue;
    if (cell.algo == harness::AlgoKind::kFlooding) flood = &cell.result;
    if (cell.algo == harness::AlgoKind::kAsapRw) asap_rw = &cell.result;
  }
  if (flood != nullptr && asap_rw != nullptr &&
      flood->search.avg_response_time() > 0.0) {
    const double resp_cut = 100.0 * (1.0 - asap_rw->search.avg_response_time() /
                                               flood->search.avg_response_time());
    const double cost_ratio =
        flood->search.avg_cost_bytes() /
        std::max(1.0, asap_rw->search.avg_cost_bytes());
    std::cout << "\ncrawled topology, ASAP(RW) vs flooding: response time "
              << TextTable::num(resp_cut, 1) << "% shorter (paper: 62-78%), "
              << "search cost " << TextTable::num(cost_ratio, 0)
              << "x lower (paper: 2-3 orders of magnitude)\n";
  }
  return 0;
}
