// Ablation: robustness under message loss (failure injection).
//
// Every overlay transmission is dropped with probability p. Flooding has
// massive path redundancy, so it sheds loss gracefully; ASAP's one-hop
// confirmations depend on individual round trips, but a search confirms
// several matching ads in parallel, and a failed round falls back to the
// neighbor ads-request — so the paper's qualitative ordering should hold
// well beyond lossless conditions.
//
// Note: the confirmation/ads-request round trips themselves are modeled
// as reliable transport (TCP); loss applies to overlay propagation
// (queries, walkers, ad dissemination).
#include <iostream>

#include "bench/support.hpp"

int main(int argc, char** argv) {
  using namespace asap;
  auto args = bench::BenchArgs::parse(argc, argv);
  if (args.queries_override == 0) args.queries_override = 2'000;

  const auto cfg = bench::make_config(args, harness::TopologyKind::kCrawled);
  std::cerr << "[bench] building crawled world...\n";
  const auto world = harness::build_world(cfg);

  std::cout << "=== Ablation: message loss, crawled topology ===\n\n";
  TextTable table({"loss", "algorithm", "success %", "resp ms",
                   "cost/search", "load B/node/s"});
  for (const double loss : {0.0, 0.05, 0.15, 0.30}) {
    for (const auto kind :
         {harness::AlgoKind::kFlooding, harness::AlgoKind::kAsapRw}) {
      harness::RunOptions opts;
      opts.message_loss = loss;
      const auto res = harness::run_experiment(world, kind, opts);
      std::cerr << "[bench] loss=" << loss << " " << res.algo << " done\n";
      table.add_row(
          {TextTable::num(100.0 * loss, 0) + "%", res.algo,
           TextTable::num(100.0 * res.search.success_rate(), 1),
           TextTable::num(1e3 * res.search.avg_response_time(), 1),
           TextTable::bytes(res.search.avg_cost_bytes()),
           TextTable::num(res.load.mean_bytes_per_node_per_sec, 1)});
    }
  }
  table.print(std::cout);
  return 0;
}
