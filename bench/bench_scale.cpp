// Scale sweep (DESIGN.md §15): world-build and replay cost from 10k to 1M
// peers on one machine. Exercises the pooled CSR overlay, the SoA/FlatMap
// node state and streaming trace synthesis end to end, and emits the
// machine-readable BENCH_scale.json that tools/check_bench_scale.py gates
// in CI (--enforce pins the 1M bytes-per-node budget).
//
// Random-walk runs at every scale (bounded per-query cost); ASAP(RW) runs
// at the scales where its M0 advertisement budget is feasible on one core
// (the paper's protocol floods ads to every peer at startup — at 1M nodes
// that is the dominant cost by orders of magnitude, and not what this
// sweep measures).
//
//   bench_scale [--scales 10000,100000,1000000] [--queries 2000]
//               [--seed 7] [--json PATH] [--algos random-walk,asap(rw)]
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/resource.hpp"
#include "common/table.hpp"
#include "harness/config.hpp"
#include "harness/replay.hpp"
#include "harness/world.hpp"

namespace {

using namespace asap;
using namespace asap::harness;

struct Args {
  std::vector<std::uint32_t> scales{10'000, 100'000, 1'000'000};
  std::uint32_t queries = 2'000;
  std::uint64_t seed = 7;
  std::string json_path;
  /// Empty = default policy: random-walk everywhere, ASAP(RW) up to 100k
  /// (its startup ad flood costs minutes and ~gigabytes past that — CI
  /// passes --algos random-walk to stay inside its address-space cap).
  std::vector<AlgoKind> algos;
};

std::vector<std::uint32_t> parse_scales(const std::string& csv) {
  std::vector<std::uint32_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const auto comma = csv.find(',', pos);
    const auto tok = csv.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos);
    out.push_back(static_cast<std::uint32_t>(std::stoul(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  ASAP_REQUIRE(!out.empty(), "--scales needs at least one value");
  return out;
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      ASAP_REQUIRE(i + 1 < argc, flag + " needs a value");
      return argv[++i];
    };
    if (flag == "--scales") {
      a.scales = parse_scales(next());
    } else if (flag == "--queries") {
      a.queries = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (flag == "--seed") {
      a.seed = std::stoull(next());
    } else if (flag == "--json") {
      a.json_path = next();
    } else if (flag == "--algos") {
      const auto csv = next();
      std::size_t pos = 0;
      while (pos < csv.size()) {
        const auto comma = csv.find(',', pos);
        const auto tok = csv.substr(pos, comma == std::string::npos
                                             ? std::string::npos
                                             : comma - pos);
        const auto kind = algo_from_name(tok);
        ASAP_REQUIRE(kind.has_value(), "unknown algorithm: " + tok);
        a.algos.push_back(*kind);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      std::exit(2);
    }
  }
  return a;
}

struct Row {
  std::uint32_t scale = 0;
  std::uint32_t nodes = 0;
  std::string algo;
  std::uint32_t queries = 0;
  bool streaming = false;
  double world_build_seconds = 0.0;
  double run_wall_seconds = 0.0;
  std::uint64_t engine_events = 0;
  double events_per_sec = 0.0;
  double ns_per_event = 0.0;
  std::uint64_t overlay_bytes = 0;
  std::uint64_t state_bytes = 0;
  double bytes_per_node = 0.0;
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t digest = 0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  std::vector<Row> rows;

  // Ascending scales so peak RSS at each row reflects the largest world
  // seen so far — the 1M row's value is the number that matters.
  for (const auto scale : args.scales) {
    auto cfg = ExperimentConfig::make(Preset::kSmall, TopologyKind::kCrawled,
                                      args.seed);
    cfg.apply_scale(scale);
    cfg.trace.num_queries = args.queries;

    const auto build_start = std::chrono::steady_clock::now();
    const World world = build_world(cfg);
    const double build_seconds = seconds_since(build_start);
    std::cerr << "[scale " << scale << "] world built in " << build_seconds
              << "s (streaming=" << (world.streaming.enabled ? "yes" : "no")
              << ")\n";

    std::vector<AlgoKind> algos = args.algos;
    if (algos.empty()) {
      algos.push_back(AlgoKind::kRandomWalk);
      // ASAP's startup advertisement flood is O(n * cache traffic); past
      // ~100k peers it dwarfs the replay this sweep measures.
      if (scale <= 100'000) algos.push_back(AlgoKind::kAsapRw);
    }

    for (const auto kind : algos) {
      const auto run_start = std::chrono::steady_clock::now();
      const RunResult r = run_experiment(world, kind);
      const double run_seconds = seconds_since(run_start);

      Row row;
      row.scale = scale;
      row.nodes = cfg.content.initial_nodes;
      row.algo = r.algo;
      row.queries = cfg.trace.num_queries;
      row.streaming = world.streaming.enabled;
      row.world_build_seconds = build_seconds;
      row.run_wall_seconds = run_seconds;
      row.engine_events = r.engine_events;
      row.events_per_sec = r.events_per_sec;
      row.ns_per_event = r.engine_events > 0
                             ? 1e9 * r.wall_seconds /
                                   static_cast<double>(r.engine_events)
                             : 0.0;
      row.overlay_bytes = world.base_overlay.memory_bytes();
      row.state_bytes = r.state_bytes;
      row.bytes_per_node =
          static_cast<double>(row.overlay_bytes + row.state_bytes) /
          static_cast<double>(row.nodes);
      row.peak_rss_bytes = r.peak_rss_bytes;
      row.digest = r.digest;
      rows.push_back(row);
      std::cerr << "[scale " << scale << "] " << row.algo << " done in "
                << run_seconds << "s\n";
    }
  }

  TextTable table({"scale", "algo", "stream", "build s", "run s", "events",
                   "B/node", "peak RSS MiB"});
  for (const auto& r : rows) {
    table.add_row({std::to_string(r.scale), r.algo, r.streaming ? "yes" : "no",
                   TextTable::num(r.world_build_seconds, 2),
                   TextTable::num(r.run_wall_seconds, 2),
                   std::to_string(r.engine_events),
                   TextTable::num(r.bytes_per_node, 1),
                   TextTable::num(static_cast<double>(r.peak_rss_bytes) /
                                      (1024.0 * 1024.0),
                                  1)});
  }
  table.print(std::cout);

  if (!args.json_path.empty()) {
    json::Array arr;
    for (const auto& r : rows) {
      json::Object o;
      o.emplace_back("scale", static_cast<double>(r.scale));
      o.emplace_back("nodes", static_cast<double>(r.nodes));
      o.emplace_back("algo", r.algo);
      o.emplace_back("queries", static_cast<double>(r.queries));
      o.emplace_back("streaming", r.streaming);
      o.emplace_back("world_build_seconds", r.world_build_seconds);
      o.emplace_back("run_wall_seconds", r.run_wall_seconds);
      o.emplace_back("engine_events", static_cast<double>(r.engine_events));
      o.emplace_back("events_per_sec", r.events_per_sec);
      o.emplace_back("ns_per_event", r.ns_per_event);
      o.emplace_back("overlay_bytes", static_cast<double>(r.overlay_bytes));
      o.emplace_back("state_bytes", static_cast<double>(r.state_bytes));
      o.emplace_back("bytes_per_node", r.bytes_per_node);
      o.emplace_back("peak_rss_bytes", static_cast<double>(r.peak_rss_bytes));
      o.emplace_back("digest", json::hex_u64(r.digest));
      arr.emplace_back(std::move(o));
    }
    json::Object doc;
    doc.emplace_back("schema", "asap.bench_scale.v1");
    doc.emplace_back("seed", static_cast<double>(args.seed));
    doc.emplace_back("rows", std::move(arr));
    std::ofstream os(args.json_path);
    ASAP_REQUIRE(os.good(), "cannot open " + args.json_path);
    os << json::dump(json::Value(std::move(doc)));
  }
  return 0;
}
