#include "search/baseline.hpp"

#include <algorithm>
#include <limits>

#include "search/propagation.hpp"

namespace asap::search {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kFlooding:
      return "flooding";
    case Scheme::kRandomWalk:
      return "random-walk";
    case Scheme::kGsa:
      return "gsa";
  }
  return "?";
}

BaselineParams BaselineParams::paper(Scheme s) {
  BaselineParams p;
  p.scheme = s;
  return p;
}

BaselineParams BaselineParams::small(Scheme s) {
  BaselineParams p;
  p.scheme = s;
  // The paper network has 10,000 peers; the small preset has ~2,000. The
  // flood TTL keeps its value (reach saturates either way); walk and GSA
  // budgets scale by the population ratio so relative coverage matches.
  p.walker_ttl = 256;
  p.gsa_budget = 1'600;
  return p;
}

BaselineSearch::BaselineSearch(Ctx& ctx, BaselineParams params)
    : ctx_(ctx), params_(params) {}

std::string BaselineSearch::name() const {
  return scheme_name(params_.scheme);
}

void BaselineSearch::on_trace_event(const trace::TraceEvent& event) {
  if (event.type == trace::TraceEventType::kQuery) run_query(event);
}

void BaselineSearch::run_query(const trace::TraceEvent& event) {
  const NodeId origin = event.node;
  const Seconds t0 = event.time;
  // A crash-stop node issues nothing: the trace's query never happens, for
  // any algorithm (the fault plan is world-seeded, so all algorithms skip
  // the same queries and success rates stay comparable).
  if (ctx_.faults != nullptr && ctx_.faults->crashed(origin, t0)) return;
  const auto terms = event.term_span();

  // Ground truth: online nodes holding a document with all terms. The
  // kernels check membership per visit (binary search) instead of scanning
  // each visited node's document list. The GSA/flood/walk baselines test
  // no Bloom filters, so they have nothing to gain from the hashed-query
  // fast path (ctx_.hash_query) the filter-scanning protocols use.
  auto matching = ctx_.index.matching_nodes(terms, ctx_.live, ctx_.model);
  // The requester searches the network, not itself.
  matching.erase(std::remove(matching.begin(), matching.end(), origin),
                 matching.end());

  std::uint64_t hits = 0;
  Seconds best_response = std::numeric_limits<Seconds>::infinity();
  auto on_visit = [&](NodeId node, Seconds t, std::uint32_t) {
    if (!std::binary_search(matching.begin(), matching.end(), node)) {
      return VisitAction::kContinue;
    }
    ++hits;
    // The hit node responds directly to the requester.
    const Seconds back = t + ctx_.hop_latency(node, origin);
    ASAP_AUDIT_HOOK(ctx_.auditor,
                    on_send(sim::Traffic::kResponse, ctx_.sizes.response));
    ctx_.ledger.deposit(back, sim::Traffic::kResponse, ctx_.sizes.response);
    best_response = std::min(best_response, back);
    // A satisfied walker terminates; flooding ignores the hint.
    return VisitAction::kStopWalker;
  };

  PropagationStats prop;
  switch (params_.scheme) {
    case Scheme::kFlooding:
      prop = flood(ctx_, origin, t0, params_.flood_ttl, ctx_.sizes.query,
                   sim::Traffic::kQuery, on_visit);
      break;
    case Scheme::kRandomWalk:
      prop = random_walk(ctx_, origin, t0, params_.walkers,
                         params_.walker_ttl, ctx_.sizes.query,
                         sim::Traffic::kQuery, on_visit);
      break;
    case Scheme::kGsa:
      prop = gsa(ctx_, origin, t0, params_.gsa_budget, ctx_.sizes.query,
                 sim::Traffic::kQuery, on_visit);
      break;
  }

  metrics::SearchRecord rec;
  rec.issued_at = t0;
  rec.success = hits > 0;
  rec.response_time = rec.success ? best_response - t0 : 0.0;
  rec.cost_bytes = prop.bytes;  // query messages only (§V-A)
  rec.messages = prop.messages;
  // rec.results stays 0 for baselines (they count responding holders via
  // `hits` but the paper's results metric is ASAP's confirmations); the
  // trace span reports the responder count for observability.
  ASAP_OBS_HOOK(ctx_.obs,
                trace_query(t0, origin, rec.success, rec.local_hit,
                            rec.response_time, rec.cost_bytes, rec.messages,
                            static_cast<std::uint32_t>(hits)));
  if (!synthetic_query()) stats_.add(rec);
}

}  // namespace asap::search
