// PlanetP-style globally gossiped index (Cuenca-Acuna et al. [8]) — the
// Related-Work comparator the paper singles out: "PlanetP employs a
// gossiping layer to globally replicate a membership directory and content
// indices. While the search performance was reported promising, the system
// load tends to be high due to the global gossiping."
//
// Model: every content filter update is epidemically replicated to every
// live peer. An update published at time t becomes visible system-wide by
// t + D where D ~ log2(N) gossip rounds, and costs N * redundancy
// transmissions of the (compressed) filter — the defining property is
// that *everyone* pays for *every* update, regardless of interest. A
// search is then a purely local directory lookup plus the usual one-hop
// confirmation.
//
// The directory is modeled as a single replicated structure with
// per-update visibility times rather than N physical copies; this is
// exact for search semantics (all replicas converge identically) and
// keeps memory O(sources).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bloom/bloom.hpp"
#include "search/algorithm.hpp"
#include "search/context.hpp"

namespace asap::search {

struct GossipParams {
  /// Gossip round period; an update is fully replicated after
  /// ceil(log2(live peers)) rounds.
  Seconds round_period = 5.0;
  /// Epidemic redundancy: total transmissions per update ~ N * redundancy.
  double redundancy = 1.5;
  std::uint32_t max_confirms = 8;
};

class GossipIndexSearch final : public SearchAlgorithm {
 public:
  GossipIndexSearch(Ctx& ctx, GossipParams params);

  std::string name() const override { return "gossip(planetp)"; }
  void warm_up(Seconds duration) override;
  void on_trace_event(const trace::TraceEvent& event) override;

  std::size_t directory_size() const { return directory_.size(); }

 private:
  struct Entry {
    std::shared_ptr<const bloom::BloomFilter> filter;
    Seconds visible_at = 0.0;  // globally replicated by this time
  };

  /// Publishes node n's current filter at `when`, paying the epidemic
  /// replication cost.
  void publish(NodeId n, Seconds when);
  void run_query(const trace::TraceEvent& ev);
  Seconds replication_delay() const;

  Ctx& ctx_;
  GossipParams params_;
  std::vector<bloom::CountingBloomFilter> filters_;  // per-node live filter
  std::vector<std::uint8_t> has_filter_;
  std::unordered_map<NodeId, Entry> directory_;
  std::vector<NodeId> sources_;  // directory keys, for iteration order
};

}  // namespace asap::search
