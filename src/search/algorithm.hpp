// Common interface all systems under test implement.
//
// The harness replays the trace: for every event it first updates the
// shared world state (overlay churn, live content, ground-truth index),
// then hands the event to the algorithm. Baselines only act on queries;
// ASAP also reacts to joins (advertise + warm its cache), content changes
// (patch ads) and timers.
#pragma once

#include <cstdint>
#include <string>

#include "metrics/search_stats.hpp"
#include "trace/trace.hpp"

namespace asap::search {

class SearchAlgorithm {
 public:
  virtual ~SearchAlgorithm() = default;

  virtual std::string name() const = 0;

  /// Called once before the trace starts, at virtual time 0; the
  /// measurement window begins after `warmup_duration` seconds.
  virtual void warm_up(Seconds /*warmup_duration*/) {}

  /// Called for every trace event, after world state has been updated.
  virtual void on_trace_event(const trace::TraceEvent& event) = 0;

  /// Heap bytes of per-node protocol state (ad caches, advertiser filters,
  /// timers) the algorithm owns right now. Stateless baselines report 0.
  /// Read by the harness for the scale-bench bytes/node accounting.
  virtual std::uint64_t state_bytes() const { return 0; }

  metrics::SearchStats& stats() { return stats_; }
  const metrics::SearchStats& stats() const { return stats_; }

  /// Tells the stats collector when the first fault fires so searches can
  /// be attributed to the pre-/post-onset windows. Harness-only plumbing —
  /// algorithms themselves never read it.
  void set_fault_onset(Seconds t) { stats_.set_fault_onset(t); }

  /// Runs one *synthetic* query (flash-crowd storm injection): the query
  /// executes the full protocol path — it costs bandwidth, occupies
  /// pending-queue slots and can be shed — but it is excluded from
  /// SearchStats, so success/latency metrics keep measuring the legitimate
  /// workload only. The event must be a kQuery.
  void inject_synthetic_query(const trace::TraceEvent& event) {
    synthetic_depth_ = true;
    on_trace_event(event);
    synthetic_depth_ = false;
  }

 protected:
  /// True while the event being processed is storm-injected; protocols
  /// consult this before recording a SearchRecord.
  bool synthetic_query() const { return synthetic_depth_; }

  metrics::SearchStats stats_;

 private:
  bool synthetic_depth_ = false;
};

}  // namespace asap::search
