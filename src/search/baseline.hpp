// Query-based baseline search algorithms (paper §IV-A):
//   * flooding with TTL 6,
//   * random walk with 5 walkers, TTL 1024 each,
//   * GSA with a total message budget of 8,000.
//
// A query is resolved inline: the kernel propagates the query message; at
// every visited node the query is checked against that node's actual
// shared documents (via the ground-truth index); each hit sends a response
// straight back to the requester. Search cost counts query messages only
// (§V-A); responses are tracked under Traffic::kResponse but excluded from
// cost and system load, exactly as the paper does.
#pragma once

#include <cstdint>
#include <string>

#include "search/algorithm.hpp"
#include "search/context.hpp"

namespace asap::search {

enum class Scheme : std::uint8_t { kFlooding, kRandomWalk, kGsa };

const char* scheme_name(Scheme s);

struct BaselineParams {
  Scheme scheme = Scheme::kFlooding;
  std::uint32_t flood_ttl = 6;
  std::uint32_t walkers = 5;
  std::uint64_t walker_ttl = 1'024;
  std::uint64_t gsa_budget = 8'000;

  /// Parameters scaled for the small preset (budgets shrink with N so the
  /// relative reach matches the paper-scale configuration).
  static BaselineParams small(Scheme s);
  static BaselineParams paper(Scheme s);
};

class BaselineSearch final : public SearchAlgorithm {
 public:
  BaselineSearch(Ctx& ctx, BaselineParams params);

  std::string name() const override;
  void on_trace_event(const trace::TraceEvent& event) override;

 private:
  void run_query(const trace::TraceEvent& event);

  Ctx& ctx_;
  BaselineParams params_;
};

}  // namespace asap::search
