#include "search/gossip.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace asap::search {

namespace {
constexpr Seconds kInfTime = std::numeric_limits<Seconds>::infinity();
constexpr Bytes kUpdateHeader = 40;
}  // namespace

GossipIndexSearch::GossipIndexSearch(Ctx& ctx, GossipParams params)
    : ctx_(ctx), params_(params) {
  ASAP_REQUIRE(params.round_period > 0.0, "round period must be positive");
  ASAP_REQUIRE(params.redundancy >= 1.0, "redundancy must be >= 1");
  const auto slots = ctx.model.total_node_slots();
  has_filter_.assign(slots, 0);
  // Counting filters are sized lazily via has_filter_; the vector holds
  // default-constructed filters only for nodes that ever share.
  filters_.resize(slots);
}

Seconds GossipIndexSearch::replication_delay() const {
  const double live = std::max(2u, ctx_.live.live_count());
  return params_.round_period * std::ceil(std::log2(live));
}

void GossipIndexSearch::publish(NodeId n, Seconds when) {
  auto snapshot = std::make_shared<const bloom::BloomFilter>(
      filters_[n].projection());
  const Seconds delay = replication_delay();
  const Bytes msg = kUpdateHeader + snapshot->wire_bytes();
  const double copies =
      static_cast<double>(ctx_.live.live_count()) * params_.redundancy;
  const Bytes total = static_cast<Bytes>(copies * static_cast<double>(msg));

  // Deposit the epidemic traffic in per-second chunks across the
  // replication window (identical totals, far fewer ledger operations
  // than one deposit per transmission). The last chunk carries the
  // division remainder so the deposited total matches `total` exactly.
  ASAP_AUDIT_HOOK(ctx_.auditor, on_send(sim::Traffic::kFullAd, total));
  const auto chunks = std::max(1u, static_cast<std::uint32_t>(delay));
  for (std::uint32_t c = 0; c < chunks; ++c) {
    const Bytes part =
        total / chunks + (c + 1 == chunks ? total % chunks : 0);
    ctx_.ledger.deposit(when + delay * (c + 0.5) / chunks,
                        sim::Traffic::kFullAd, part);
  }
  // The epidemic round is this protocol's ad dissemination; the chunked
  // deposits above stand in for ~copies transmissions.
  ASAP_OBS_HOOK(ctx_.obs,
                trace_ad(when, n, "full", static_cast<std::uint64_t>(copies),
                         total));

  auto [it, inserted] = directory_.try_emplace(n);
  if (inserted) sources_.push_back(n);
  it->second.filter = std::move(snapshot);
  it->second.visible_at = when + delay;
}

void GossipIndexSearch::warm_up(Seconds duration) {
  const auto initial = ctx_.model.params().initial_nodes;
  for (NodeId n = 0; n < initial; ++n) {
    const auto& docs = ctx_.live.docs(n);
    if (docs.empty()) continue;
    for (DocId d : docs) {
      for (KeywordId kw : ctx_.model.doc(d).keywords) {
        filters_[n].insert(kw);
      }
    }
    has_filter_[n] = 1;
    publish(n, ctx_.rng.uniform(0.0, duration * 0.5));
  }
}

void GossipIndexSearch::on_trace_event(const trace::TraceEvent& ev) {
  switch (ev.type) {
    case trace::TraceEventType::kQuery:
      run_query(ev);
      break;
    case trace::TraceEventType::kAddDoc:
    case trace::TraceEventType::kRemoveDoc: {
      auto& f = filters_[ev.node];
      for (KeywordId kw : ctx_.model.doc(ev.doc).keywords) {
        if (ev.type == trace::TraceEventType::kAddDoc) {
          f.insert(kw);
        } else if (has_filter_[ev.node]) {
          f.remove(kw);
        }
      }
      has_filter_[ev.node] = 1;
      if (ctx_.online(ev.node)) publish(ev.node, ev.time);
      break;
    }
    case trace::TraceEventType::kJoin:
    case trace::TraceEventType::kRejoin: {
      const auto& docs = ctx_.live.docs(ev.node);
      if (!has_filter_[ev.node] && !docs.empty()) {
        for (DocId d : docs) {
          for (KeywordId kw : ctx_.model.doc(d).keywords) {
            filters_[ev.node].insert(kw);
          }
        }
        has_filter_[ev.node] = 1;
      }
      if (has_filter_[ev.node]) publish(ev.node, ev.time);
      break;
    }
    case trace::TraceEventType::kLeave:
      break;  // directory entries linger; confirmations catch dead sources
  }
}

void GossipIndexSearch::run_query(const trace::TraceEvent& ev) {
  const NodeId p = ev.node;
  const auto terms = ev.term_span();
  metrics::SearchRecord rec;

  // Hash once, then test every directory filter with pure bit probes.
  const bloom::HashedQuery& query = ctx_.hash_query(terms);

  Seconds best = kInfTime;
  std::uint32_t sent = 0;
  for (const NodeId src : sources_) {
    if (sent >= params_.max_confirms) break;
    if (src == p) continue;
    const auto& entry = directory_.at(src);
    if (entry.visible_at > ev.time) continue;  // not yet replicated to p
    if (!query.matches(*entry.filter)) continue;
    ++sent;
    const Seconds lat = ctx_.latency(p, src);
    const Seconds t_req = ev.time + lat;
    ASAP_AUDIT_HOOK(ctx_.auditor, on_confirm_request());
    ASAP_AUDIT_HOOK(ctx_.auditor, on_send(sim::Traffic::kConfirm,
                                          ctx_.sizes.confirm_request));
    ctx_.ledger.deposit(t_req, sim::Traffic::kConfirm,
                        ctx_.sizes.confirm_request);
    ASAP_OBS_HOOK(ctx_.obs, on_confirm_sent(p));
    rec.cost_bytes += ctx_.sizes.confirm_request;
    ++rec.messages;
    if (!ctx_.online(src)) {
      ASAP_AUDIT_HOOK(ctx_.auditor, on_confirm_timeout());
      ASAP_OBS_HOOK(ctx_.obs, on_confirm_timed_out(p));
      ASAP_OBS_HOOK(ctx_.obs, trace_confirm(t_req, p, src, "timeout"));
      continue;
    }
    const Seconds t_reply = t_req + lat;
    ASAP_AUDIT_HOOK(ctx_.auditor, on_confirm_reply());
    ASAP_AUDIT_HOOK(ctx_.auditor, on_send(sim::Traffic::kConfirm,
                                          ctx_.sizes.confirm_reply));
    ctx_.ledger.deposit(t_reply, sim::Traffic::kConfirm,
                        ctx_.sizes.confirm_reply);
    rec.cost_bytes += ctx_.sizes.confirm_reply;
    ++rec.messages;
    if (ctx_.live.node_matches(src, terms, ctx_.model)) {
      best = std::min(best, t_reply);
      ++rec.results;
      ASAP_OBS_HOOK(ctx_.obs, on_confirm_positive(p));
      ASAP_OBS_HOOK(ctx_.obs, trace_confirm(t_reply, p, src, "positive"));
    } else {
      ASAP_OBS_HOOK(ctx_.obs, trace_confirm(t_reply, p, src, "negative"));
    }
  }
  rec.success = best < kInfTime;
  rec.local_hit = rec.success;  // every lookup is local by construction
  rec.response_time = rec.success ? best - ev.time : 0.0;
  ASAP_OBS_HOOK(ctx_.obs,
                trace_query(ev.time, p, rec.success, rec.local_hit,
                            rec.response_time, rec.cost_bytes, rec.messages,
                            rec.results));
  if (!synthetic_query()) stats_.add(rec);
}

}  // namespace asap::search
