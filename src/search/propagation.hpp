// Propagation kernels: flooding, random walk, and the budgeted hybrid
// scheme (GSA, Gkantsidis et al. [12]).
//
// These expand a message's journey inline (DESIGN.md §3): bytes land in the
// BandwidthLedger at the virtual time of each hop, and a visitor callback
// fires per arrival so callers implement query matching (baselines) or ad
// caching (ASAP) on top. Node liveness is evaluated at propagation start;
// only online neighbors are forwarded to (peers know neighbor liveness via
// keep-alives, which the paper excludes from system load).
//
// Callback contract: VisitAction fn(NodeId node, Seconds arrival,
// std::uint32_t hops). Flooding invokes it on a node's *first* arrival;
// walks invoke it on every arrival (revisits included — caching/matching
// are idempotent for all callers).
#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "common/types.hpp"
#include "search/context.hpp"
#include "sim/bandwidth.hpp"

namespace asap::search {

enum class VisitAction : std::uint8_t {
  kContinue,    // keep going
  kStopWalker,  // terminate this walker (no-op for floods)
  kStopAll,     // terminate the whole propagation
};

struct PropagationStats {
  std::uint64_t messages = 0;
  Bytes bytes = 0;
  std::uint32_t unique_nodes = 0;  // distinct nodes visited (flood only)
};

namespace detail {

struct FloodMsg {
  Seconds time;
  NodeId node;
  NodeId from;
  std::uint32_t ttl;
  bool operator>(const FloodMsg& other) const { return time > other.time; }
};

}  // namespace detail

/// Flood with duplicate suppression: a node forwards the first copy it
/// receives (TTL permitting); later copies still cost bandwidth but are
/// dropped. `ttl` is the number of overlay hops a message may travel.
/// `max_messages` optionally caps the total transmissions (the budgeted
/// flood behind the GSA scheme); forwarding stops once the cap is hit.
template <typename VisitFn>
PropagationStats flood(Ctx& ctx, NodeId origin, Seconds start,
                       std::uint32_t ttl, Bytes msg_size, sim::Traffic cat,
                       VisitFn&& visit,
                       std::uint64_t max_messages =
                           std::numeric_limits<std::uint64_t>::max()) {
  PropagationStats stats;
  if (ttl == 0 || max_messages == 0 || !ctx.online(origin)) return stats;
  ctx.begin_epoch();
  ctx.mark_visited(origin);

  std::priority_queue<detail::FloodMsg, std::vector<detail::FloodMsg>,
                      std::greater<>>
      pq;
  auto send_to_neighbors = [&](NodeId from_node, NodeId prev, Seconds t,
                               std::uint32_t remaining) {
    for (NodeId nb : ctx.graph().neighbors(from_node)) {
      if (stats.messages >= max_messages) return;
      if (nb == prev) continue;
      if (!ctx.online(nb)) {
        if (ctx.dead_unnoticed(nb, t)) {
          // Crash-stop before detection: keep-alives have not yet told the
          // sender, so it transmits — and pays — into the void.
          ++stats.messages;
          stats.bytes += msg_size;
          ASAP_AUDIT_HOOK(ctx.auditor, on_send(cat, msg_size));
          ctx.ledger.deposit(t, cat, msg_size);
          ASAP_OBS_HOOK(ctx.obs, on_drop_dead(cat));
          ctx.faults->count_dead_send();
          continue;
        }
        // Liveness skip: keep-alives told the sender not to bother.
        ASAP_OBS_HOOK(ctx.obs, on_drop_offline(cat));
        continue;
      }
      ++stats.messages;
      stats.bytes += msg_size;
      ASAP_AUDIT_HOOK(ctx.auditor, on_send(cat, msg_size));
      if (ctx.transmission_lost(from_node, nb, t)) {
        // The sender paid for the transmission; nothing arrives.
        ctx.ledger.deposit(t, cat, msg_size);
        ASAP_OBS_HOOK(ctx.obs, on_drop_loss(cat));
        continue;
      }
      pq.push({t + ctx.hop_latency(from_node, nb), nb, from_node, remaining});
    }
  };
  send_to_neighbors(origin, kInvalidNode, start, ttl - 1);

  while (!pq.empty()) {
    const detail::FloodMsg m = pq.top();
    pq.pop();
    ctx.ledger.deposit(m.time, cat, msg_size);
    if (ctx.visited(m.node)) {  // duplicate: paid for, dropped
      ASAP_OBS_HOOK(ctx.obs, on_drop_duplicate(cat));
      continue;
    }
    ctx.mark_visited(m.node);
    ++stats.unique_nodes;
    ASAP_AUDIT_HOOK(ctx.auditor, on_delivery(ctx.online(m.node)));
    const VisitAction action = visit(m.node, m.time, ttl - m.ttl);
    if (action == VisitAction::kStopAll) {
      // In-flight copies were already counted as sent and still arrive at
      // their receivers; deposit them so byte conservation holds instead
      // of silently dropping paid-for traffic.
      while (!pq.empty()) {
        ctx.ledger.deposit(pq.top().time, cat, msg_size);
        pq.pop();
      }
      break;
    }
    if (m.ttl > 0) {
      send_to_neighbors(m.node, m.from, m.time, m.ttl - 1);
    } else {
      // The copy dies here: TTL exhausted.
      ASAP_OBS_HOOK(ctx.obs, on_drop_ttl(cat));
    }
  }
  return stats;
}

/// `walkers` independent random walks of at most `per_walker_budget` hops
/// each. A walker moves to a uniformly random online neighbor, avoiding an
/// immediate backtrack when any other choice exists.
template <typename VisitFn>
PropagationStats random_walk(Ctx& ctx, NodeId origin, Seconds start,
                             std::uint32_t walkers,
                             std::uint64_t per_walker_budget, Bytes msg_size,
                             sim::Traffic cat, VisitFn&& visit) {
  PropagationStats stats;
  if (per_walker_budget == 0 || !ctx.online(origin)) return stats;
  std::vector<NodeId> choices;
  for (std::uint32_t w = 0; w < walkers; ++w) {
    NodeId cur = origin;
    NodeId prev = kInvalidNode;
    Seconds t = start;
    for (std::uint64_t hop = 1; hop <= per_walker_budget; ++hop) {
      choices.clear();
      for (NodeId nb : ctx.graph().neighbors(cur)) {
        if ((ctx.online(nb) || ctx.dead_unnoticed(nb, t)) && nb != prev) {
          choices.push_back(nb);
        }
      }
      if (choices.empty()) {
        // Dead end: allow the backtrack if the previous node is still up.
        if (prev != kInvalidNode &&
            (ctx.online(prev) || ctx.dead_unnoticed(prev, t))) {
          choices.push_back(prev);
        } else {
          break;
        }
      }
      const NodeId next = choices[ctx.rng.below(choices.size())];
      t += ctx.hop_latency(cur, next);
      ++stats.messages;
      stats.bytes += msg_size;
      ASAP_AUDIT_HOOK(ctx.auditor, on_send(cat, msg_size));
      ctx.ledger.deposit(t, cat, msg_size);
      if (!ctx.online(next)) {  // crashed but undetected: hop paid for,
                                // nothing there; walker stays and retries
        ASAP_OBS_HOOK(ctx.obs, on_drop_dead(cat));
        ctx.faults->count_dead_send();
        continue;
      }
      if (ctx.transmission_lost(cur, next, t)) {  // hop lost: budget spent,
                                                  // walker stays and retries
        ASAP_OBS_HOOK(ctx.obs, on_drop_loss(cat));
        continue;
      }
      ASAP_AUDIT_HOOK(ctx.auditor, on_delivery(ctx.online(next)));
      const VisitAction action =
          visit(next, t, static_cast<std::uint32_t>(hop));
      if (action == VisitAction::kStopAll) return stats;
      if (action == VisitAction::kStopWalker) break;
      prev = cur;
      cur = next;
    }
  }
  return stats;
}

/// Weighted random walks: like random_walk, but the next hop is drawn
/// with probability proportional to `weight(node)` among online
/// non-backtracking neighbors. Used by the interest-biased ad-delivery
/// extension (walkers steer toward peers whose interests overlap the ad's
/// topics, exploiting the interest clustering the paper's design leans
/// on). A uniform weight reduces to random_walk.
template <typename VisitFn, typename WeightFn>
PropagationStats biased_walk(Ctx& ctx, NodeId origin, Seconds start,
                             std::uint32_t walkers,
                             std::uint64_t per_walker_budget, Bytes msg_size,
                             sim::Traffic cat, WeightFn&& weight,
                             VisitFn&& visit) {
  PropagationStats stats;
  if (per_walker_budget == 0 || !ctx.online(origin)) return stats;
  std::vector<NodeId> choices;
  std::vector<double> weights;
  for (std::uint32_t w = 0; w < walkers; ++w) {
    NodeId cur = origin;
    NodeId prev = kInvalidNode;
    Seconds t = start;
    for (std::uint64_t hop = 1; hop <= per_walker_budget; ++hop) {
      choices.clear();
      weights.clear();
      double total = 0.0;
      for (NodeId nb : ctx.graph().neighbors(cur)) {
        if ((!ctx.online(nb) && !ctx.dead_unnoticed(nb, t)) || nb == prev) {
          continue;
        }
        const double wgt = std::max(1e-9, weight(nb));
        choices.push_back(nb);
        weights.push_back(wgt);
        total += wgt;
      }
      if (choices.empty()) {
        if (prev != kInvalidNode &&
            (ctx.online(prev) || ctx.dead_unnoticed(prev, t))) {
          choices.push_back(prev);
          weights.push_back(1.0);
          total = 1.0;
        } else {
          break;
        }
      }
      double u = ctx.rng.uniform01() * total;
      std::size_t pick = choices.size() - 1;
      for (std::size_t i = 0; i < weights.size(); ++i) {
        u -= weights[i];
        if (u <= 0.0) {
          pick = i;
          break;
        }
      }
      const NodeId next = choices[pick];
      t += ctx.hop_latency(cur, next);
      ++stats.messages;
      stats.bytes += msg_size;
      ASAP_AUDIT_HOOK(ctx.auditor, on_send(cat, msg_size));
      ctx.ledger.deposit(t, cat, msg_size);
      if (!ctx.online(next)) {  // crashed but undetected: hop paid for,
                                // nothing there; walker stays and retries
        ASAP_OBS_HOOK(ctx.obs, on_drop_dead(cat));
        ctx.faults->count_dead_send();
        continue;
      }
      if (ctx.transmission_lost(cur, next, t)) {  // hop lost: budget spent,
                                                  // walker stays and retries
        ASAP_OBS_HOOK(ctx.obs, on_drop_loss(cat));
        continue;
      }
      ASAP_AUDIT_HOOK(ctx.auditor, on_delivery(ctx.online(next)));
      const VisitAction action =
          visit(next, t, static_cast<std::uint32_t>(hop));
      if (action == VisitAction::kStopAll) return stats;
      if (action == VisitAction::kStopWalker) break;
      prev = cur;
      cur = next;
    }
  }
  return stats;
}

/// GSA: the generalized budgeted search of Gkantsidis et al. [12] — a
/// flood whose total message count is capped by the query's budget. The
/// expansion proceeds in arrival-time order, so it behaves exactly like
/// flooding until the budget runs out; response latency is flood-like
/// (the paper observes GSA response times comparable to flooding) while
/// cost and reach are bounded by the budget.
template <typename VisitFn>
PropagationStats gsa(Ctx& ctx, NodeId origin, Seconds start,
                     std::uint64_t budget, Bytes msg_size, sim::Traffic cat,
                     VisitFn&& visit) {
  return flood(ctx, origin, start,
               std::numeric_limits<std::uint32_t>::max() - 1, msg_size, cat,
               std::forward<VisitFn>(visit), budget);
}

}  // namespace asap::search
