// Shared run context handed to every search protocol.
//
// Bundles non-owning references to the world (overlay, physical network,
// content ground truth), the simulation services (engine, ledger, RNG) and
// reusable scratch space for the propagation kernels. One Ctx exists per
// simulation run; protocols never own world state.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bloom/hashed_query.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "faults/injector.hpp"
#include "net/transit_stub.hpp"
#include "obs/observer.hpp"
#include "overlay/overlay.hpp"
#include "sim/bandwidth.hpp"
#include "sim/engine.hpp"
#include "sim/size_model.hpp"
#include "trace/content_model.hpp"
#include "trace/live_content.hpp"

namespace asap::search {

struct Ctx {
  Ctx(overlay::Overlay& ov_in, const net::TransitStubNetwork& phys_in,
      const std::vector<PhysNodeId>& node_phys_in,
      const trace::ContentModel& model_in, const trace::LiveContent& live_in,
      const trace::ContentIndex& index_in, sim::Engine& engine_in,
      sim::BandwidthLedger& ledger_in, const sim::SizeModel& sizes_in,
      Rng& rng_in)
      : ov(ov_in),
        phys(phys_in),
        node_phys(node_phys_in),
        model(model_in),
        live(live_in),
        index(index_in),
        engine(engine_in),
        ledger(ledger_in),
        sizes(sizes_in),
        rng(rng_in) {}

  overlay::Overlay& ov;
  const net::TransitStubNetwork& phys;
  const std::vector<PhysNodeId>& node_phys;  // overlay slot -> physical node
  const trace::ContentModel& model;
  const trace::LiveContent& live;
  const trace::ContentIndex& index;
  sim::Engine& engine;
  sim::BandwidthLedger& ledger;
  sim::SizeModel sizes;
  Rng& rng;

  /// One-way propagation latency between two overlay nodes.
  Seconds latency(NodeId a, NodeId b) const {
    return phys.latency(node_phys[a], node_phys[b]);
  }

  bool online(NodeId n) const { return live.online(n); }

  /// The graph propagation kernels walk. Normally the main overlay, but a
  /// protocol can temporarily substitute another view — the superpeer
  /// extension routes ad deliveries over the superpeer mesh (see
  /// GraphScope below).
  const overlay::Overlay& graph() const {
    return graph_override_ != nullptr ? *graph_override_ : ov;
  }

  /// Failure injection: probability that any single overlay transmission
  /// is lost in transit (sender still pays the bandwidth; the receiver
  /// never sees it). 0 by default; robustness benches sweep it.
  double message_loss = 0.0;

  /// Optional run-time invariant auditor (sim/audit.hpp). Not owned; when
  /// null the kernels' audit hooks reduce to one predictable branch.
  sim::SimAuditor* auditor = nullptr;

  /// Optional passive observer (obs/observer.hpp). Not owned; same
  /// single-branch cost when null (ASAP_OBS_HOOK). Observers must never
  /// perturb the run — see sim/observe.hpp for the contract.
  obs::RunObserver* obs = nullptr;

  /// Optional fault injector (faults/injector.hpp). Not owned; null means
  /// the fault layer is absent and every fault-aware path below reduces to
  /// the historical behaviour bit for bit (no extra RNG draws).
  faults::FaultInjector* faults = nullptr;

  /// Rolls the loss dice for one transmission.
  bool transmission_lost() {
    return message_loss > 0.0 && rng.chance(message_loss);
  }

  /// Loss roll for one overlay hop `from -> to` at virtual time `t`: the
  /// base uniform loss first (preserving the historical draw order), then
  /// the fault layer's per-link loss / burst windows / partition cuts.
  bool transmission_lost(NodeId from, NodeId to, Seconds t) {
    const bool base = transmission_lost();
    if (faults == nullptr) return base;
    return faults->transmission_lost(node_phys[from], node_phys[to], t) || base;
  }

  /// Fault-layer-only loss roll for direct (non-overlay) exchanges such as
  /// confirmation round trips, which historically ignore `message_loss`.
  bool direct_lost(NodeId from, NodeId to, Seconds t) {
    return faults != nullptr &&
           faults->transmission_lost(node_phys[from], node_phys[to], t);
  }

  /// One-way hop latency with the fault layer's jitter applied (identity
  /// when no injector or jitter is configured — no RNG draw).
  Seconds hop_latency(NodeId a, NodeId b) {
    const Seconds base = latency(a, b);
    return faults != nullptr ? faults->hop_latency(base) : base;
  }

  /// True when `n` crashed at or before `t` but the overlay has not yet
  /// detected it: senders still pay bandwidth for messages to `n`.
  bool dead_unnoticed(NodeId n, Seconds t) const {
    return faults != nullptr && faults->dead_unnoticed(n, t);
  }

  /// Hashes a query's terms exactly once (bloom/hashed_query.hpp) into a
  /// Ctx-owned scratch instance reused across queries, so every per-node,
  /// per-entry filter test downstream is pure bit tests. The reference is
  /// valid until the next call; propagation kernels are single-query, so
  /// one slot suffices.
  const bloom::HashedQuery& hash_query(std::span<const KeywordId> terms,
                                       const bloom::BloomParams& params =
                                           bloom::BloomParams{}) {
    hashed_query_.assign(terms, params);
    return hashed_query_;
  }

  /// Opens a fresh visited-marker epoch; nodes test as unvisited until
  /// marked. O(1) amortized (epoch counter instead of clearing arrays).
  std::uint32_t begin_epoch() {
    if (epoch_mark_.size() < ov.num_nodes()) {
      epoch_mark_.resize(ov.num_nodes(), 0);
    }
    return ++epoch_;
  }
  bool visited(NodeId n) const { return epoch_mark_[n] == epoch_; }
  void mark_visited(NodeId n) { epoch_mark_[n] = epoch_; }

 private:
  friend class GraphScope;
  const overlay::Overlay* graph_override_ = nullptr;
  std::vector<std::uint32_t> epoch_mark_;
  std::uint32_t epoch_ = 0;
  bloom::HashedQuery hashed_query_;
};

/// RAII substitution of the propagation graph. Node ids, liveness and
/// latency are shared with the main overlay — the substitute must use the
/// same id space (e.g. a same-size overlay whose non-members are simply
/// edgeless).
class GraphScope {
 public:
  GraphScope(Ctx& ctx, const overlay::Overlay& graph)
      : ctx_(ctx), prev_(ctx.graph_override_) {
    ASAP_REQUIRE(graph.num_nodes() >= ctx.ov.num_nodes(),
                 "substitute graph must cover the overlay's id space");
    ctx_.graph_override_ = &graph;
  }
  ~GraphScope() { ctx_.graph_override_ = prev_; }
  GraphScope(const GraphScope&) = delete;
  GraphScope& operator=(const GraphScope&) = delete;

 private:
  Ctx& ctx_;
  const overlay::Overlay* prev_;
};

}  // namespace asap::search
