#include "trace/live_content.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace asap::trace {

LiveContent::LiveContent(const ContentModel& model)
    : docs_(model.total_node_slots()),
      online_(model.total_node_slots(), false) {
  const auto initial = model.params().initial_nodes;
  for (NodeId n = 0; n < initial; ++n) {
    docs_[n] = model.initial_docs(n);
    online_[n] = true;
  }
  live_count_ = initial;
}

bool LiveContent::has_doc(NodeId n, DocId d) const {
  const auto& lst = docs_[n];
  return std::find(lst.begin(), lst.end(), d) != lst.end();
}

bool LiveContent::node_matches(NodeId n, std::span<const KeywordId> terms,
                               const ContentModel& model) const {
  if (!online_[n] || terms.empty()) return false;
  for (DocId d : docs_[n]) {
    const auto& kws = model.doc(d).keywords;
    bool all = true;
    for (KeywordId t : terms) {
      if (std::find(kws.begin(), kws.end(), t) == kws.end()) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

std::uint32_t LiveContent::keyword_count(NodeId n,
                                         const ContentModel& model) const {
  std::vector<KeywordId> kws;
  for (DocId d : docs_[n]) {
    const auto& dk = model.doc(d).keywords;
    kws.insert(kws.end(), dk.begin(), dk.end());
  }
  std::sort(kws.begin(), kws.end());
  kws.erase(std::unique(kws.begin(), kws.end()), kws.end());
  return static_cast<std::uint32_t>(kws.size());
}

void LiveContent::set_online(NodeId n, bool up) {
  ASAP_REQUIRE(n < online_.size(), "unknown node");
  if (online_[n] == up) return;
  online_[n] = up;
  live_count_ = static_cast<std::uint32_t>(
      static_cast<std::int64_t>(live_count_) + (up ? 1 : -1));
}

void LiveContent::add_doc(NodeId n, DocId d) {
  ASAP_DCHECK(n < docs_.size());
  if (!has_doc(n, d)) docs_[n].push_back(d);
}

void LiveContent::remove_doc(NodeId n, DocId d) {
  auto& lst = docs_[n];
  lst.erase(std::remove(lst.begin(), lst.end(), d), lst.end());
}

void LiveContent::apply(const TraceEvent& ev, const ContentModel& model) {
  switch (ev.type) {
    case TraceEventType::kQuery:
      break;
    case TraceEventType::kAddDoc:
      add_doc(ev.node, ev.doc);
      break;
    case TraceEventType::kRemoveDoc:
      remove_doc(ev.node, ev.doc);
      break;
    case TraceEventType::kJoin:
      set_online(ev.node, true);
      for (DocId d : model.joiner_docs(ev.node)) add_doc(ev.node, d);
      break;
    case TraceEventType::kLeave:
      set_online(ev.node, false);
      break;
    case TraceEventType::kRejoin:
      // The node returns with the content it had when it left.
      set_online(ev.node, true);
      break;
  }
}

ContentIndex::ContentIndex(const ContentModel& model,
                           const LiveContent& live) {
  for (NodeId n = 0; n < live.capacity(); ++n) {
    for (DocId d : live.docs(n)) on_add(n, d, model);
  }
}

void ContentIndex::ensure_keyword(KeywordId kw) {
  if (kw >= postings_.size()) postings_.resize(kw + 1);
}

void ContentIndex::on_add(NodeId n, DocId d, const ContentModel& model) {
  for (KeywordId kw : model.doc(d).keywords) {
    ensure_keyword(kw);
    postings_[kw].push_back(Posting{n, d});
  }
}

void ContentIndex::apply(const TraceEvent& ev, const ContentModel& model) {
  switch (ev.type) {
    case TraceEventType::kAddDoc:
      on_add(ev.node, ev.doc, model);
      break;
    case TraceEventType::kJoin:
      for (DocId d : model.joiner_docs(ev.node)) on_add(ev.node, d, model);
      break;
    default:
      break;  // removals/leaves are invalidated lazily at query time
  }
}

std::vector<NodeId> ContentIndex::matching_nodes(
    std::span<const KeywordId> terms, const LiveContent& live,
    const ContentModel& model) const {
  std::vector<NodeId> out;
  if (terms.empty()) return out;

  // Drive from the rarest term's posting list.
  const std::vector<Posting>* driver = nullptr;
  for (KeywordId t : terms) {
    if (t >= postings_.size()) return out;  // term never indexed => no match
    const auto& lst = postings_[t];
    if (driver == nullptr || lst.size() < driver->size()) driver = &lst;
  }

  for (const Posting& p : *driver) {
    if (!live.online(p.node) || !live.has_doc(p.node, p.doc)) continue;
    const auto& kws = model.doc(p.doc).keywords;
    bool all = true;
    for (KeywordId t : terms) {
      if (std::find(kws.begin(), kws.end(), t) == kws.end()) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(p.node);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace asap::trace
