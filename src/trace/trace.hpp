// Trace event model (paper §IV-B).
//
// A trace is a time-ordered list of external events fed to every system
// under test: search requests (Poisson arrivals, λ=8/s), content changes
// (10% of requests are followed by a document addition or removal), and
// churn (node joins and departures at random positions in the trace).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace asap::trace {

enum class TraceEventType : std::uint8_t {
  kQuery,      // node issues a search (terms, target doc recorded for stats)
  kAddDoc,     // node starts sharing a document
  kRemoveDoc,  // node stops sharing a document
  kJoin,       // node slot comes online (brings ContentModel::joiner_docs)
  kLeave,      // node goes offline
  kRejoin,     // a previously departed node returns: it keeps its shared
               // content and its (possibly stale) ads cache (§III-C)
};

struct TraceEvent {
  Seconds time = 0.0;
  TraceEventType type = TraceEventType::kQuery;
  NodeId node = kInvalidNode;
  /// Query target / added / removed document (unused for join/leave).
  DocId doc = kInvalidDoc;
  /// Query search terms (kQuery only).
  std::array<KeywordId, 3> terms{};
  std::uint8_t num_terms = 0;

  std::span<const KeywordId> term_span() const {
    return {terms.data(), num_terms};
  }
};

struct Trace {
  std::vector<TraceEvent> events;
  Seconds horizon = 0.0;  // time of the last event
  std::uint32_t num_queries = 0;
  std::uint32_t num_changes = 0;
  std::uint32_t num_joins = 0;
  std::uint32_t num_leaves = 0;
  std::uint32_t num_rejoins = 0;
};

struct TraceParams {
  std::uint32_t num_queries = 6'000;
  /// Fraction of queries followed by a content change (§IV-B step 4).
  double content_change_fraction = 0.10;
  std::uint32_t joins = 200;
  std::uint32_t leaves = 200;
  /// Fraction of departures that later rejoin (same node, same content,
  /// stale ads cache — the scenario §III-C's ads-request flow exists for).
  double rejoin_fraction = 0.5;
  /// Mean offline duration before a rejoin, seconds (exponential).
  Seconds mean_offline = 120.0;
  /// Poisson arrival rate of search requests, per second (§IV-B step 5).
  double arrival_rate = 8.0;
  /// Queries use 1..max_query_terms terms from the target document.
  std::uint32_t max_query_terms = 3;
  /// Probability that a multi-term query is forced to include one of the
  /// document's unique (title) terms, making it selective.
  double unique_term_bias = 0.7;

  static TraceParams small() { return TraceParams{}; }
  static TraceParams paper() {
    TraceParams p;
    p.num_queries = 30'000;
    p.joins = 1'000;
    p.leaves = 1'000;
    return p;
  }
};

}  // namespace asap::trace
