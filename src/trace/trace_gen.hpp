// Synthetic query-trace generator (paper §IV-B steps 4-6).
//
// Produces a time-stamped event stream with:
//   * `num_queries` search requests at Poisson(λ) arrival times, each
//     guaranteed to have at least one live matching document at issue time
//     (§V-A: "all the search requests are created such that there is at
//     least one matching document existing in the system"),
//   * a content change (add/remove) right after `content_change_fraction`
//     of the queries,
//   * `joins` node-join and `leaves` node-departure events at uniformly
//     random trace positions,
//   * requesters only ask for documents in classes they are interested in
//     ("a peer only asks for interesting documents").
//
// The generator mutates the ContentModel (it mints documents for add
// events) and tracks live state internally, so the trace is consistent by
// construction.
#pragma once

#include <queue>

#include "common/rng.hpp"
#include "trace/content_model.hpp"
#include "trace/live_content.hpp"
#include "trace/trace.hpp"

namespace asap::trace {

class TraceGenerator {
 public:
  TraceGenerator(ContentModel& model, TraceParams params, Rng& rng);

  /// Generates the full trace. Call once.
  Trace generate();

 private:
  struct Instance {
    NodeId node;
    DocId doc;
  };

  /// Appends and applies an event, keeping live_ and class instance lists
  /// in sync.
  void emit(Trace& t, TraceEvent ev);

  /// Picks a live (holder, doc) instance in one of `requester`'s interest
  /// classes; returns false if none can be found after bounded retries.
  bool pick_target(NodeId requester, Instance& out);

  /// Chooses query terms from the target document.
  void pick_terms(const Document& doc, TraceEvent& ev);

  NodeId pick_online_node();

  void make_content_change(Trace& t, Seconds time);

  /// Emits any pending rejoin whose time has come (called while walking
  /// the main timeline).
  void flush_rejoins(Trace& t, Seconds upto);

  ContentModel& model_;
  TraceParams params_;
  Rng& rng_;

  /// Departed nodes waiting to come back, ordered by rejoin time.
  struct PendingRejoin {
    Seconds time;
    NodeId node;
    bool operator>(const PendingRejoin& o) const { return time > o.time; }
  };
  std::priority_queue<PendingRejoin, std::vector<PendingRejoin>,
                      std::greater<>>
      pending_rejoins_;

  LiveContent live_;
  /// Per-class (node, doc) instance lists with lazy invalidation.
  std::array<std::vector<Instance>, kNumClasses> class_instances_;
  std::vector<NodeId> online_pool_;  // lazily compacted
  std::uint32_t next_joiner_ = 0;
  bool generated_ = false;
};

}  // namespace asap::trace
