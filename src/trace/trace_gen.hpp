// Synthetic query-trace generator (paper §IV-B steps 4-6).
//
// Produces a time-stamped event stream with:
//   * `num_queries` search requests at Poisson(λ) arrival times, each
//     guaranteed to have at least one live matching document at issue time
//     (§V-A: "all the search requests are created such that there is at
//     least one matching document existing in the system"),
//   * a content change (add/remove) right after `content_change_fraction`
//     of the queries,
//   * `joins` node-join and `leaves` node-departure events at uniformly
//     random trace positions,
//   * requesters only ask for documents in classes they are interested in
//     ("a peer only asks for interesting documents").
//
// The generator mutates the ContentModel (it mints documents for add
// events) and tracks live state internally, so the trace is consistent by
// construction.
//
// This is the materializing facade: it drains a StreamingTraceGenerator
// (trace/streaming_trace_gen.hpp) into one events vector. Scale worlds
// skip the vector entirely and pull events from the streaming generator
// during the run; both paths produce the same stream bit for bit.
#pragma once

#include "common/rng.hpp"
#include "trace/content_model.hpp"
#include "trace/trace.hpp"

namespace asap::trace {

class TraceGenerator {
 public:
  TraceGenerator(ContentModel& model, TraceParams params, Rng& rng);

  /// Generates the full trace. Call once.
  Trace generate();

 private:
  ContentModel& model_;
  TraceParams params_;
  Rng& rng_;
  bool generated_ = false;
};

}  // namespace asap::trace
