#include "trace/trace_io.hpp"

#include <fstream>

#include "common/codec.hpp"
#include "common/error.hpp"

namespace asap::trace {

namespace {

constexpr std::uint32_t kContentMagic = 0xA5A7C0DE;
constexpr std::uint32_t kTraceMagic = 0xA5A77ACE;
constexpr std::uint8_t kFormatVersion = 1;

void put_doc_list(wire::Writer& w, const std::vector<DocId>& docs) {
  w.varint(docs.size());
  for (const DocId d : docs) w.varint(d);
}

std::vector<DocId> get_doc_list(wire::Reader& r, std::size_t corpus_size) {
  const auto count = r.varint();
  if (count > corpus_size) {
    throw wire::DecodeError("trace_io: doc list longer than corpus");
  }
  std::vector<DocId> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto d = r.varint();
    if (d >= corpus_size) throw wire::DecodeError("trace_io: doc id range");
    out.push_back(static_cast<DocId>(d));
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> serialize_content(const ContentModel& model) {
  wire::Writer w;
  w.u32(kContentMagic);
  w.u8(kFormatVersion);

  const auto& p = model.params_;
  w.varint(p.initial_nodes);
  w.varint(p.joiner_nodes);
  w.varint(static_cast<std::uint64_t>(p.free_rider_fraction * 1e9));
  w.varint(static_cast<std::uint64_t>(p.mean_docs_per_sharer * 1e6));
  w.varint(p.max_docs_per_node);
  w.varint(static_cast<std::uint64_t>(p.single_copy_fraction * 1e9));
  w.varint(static_cast<std::uint64_t>(p.copy_tail_alpha * 1e6));
  w.varint(p.copy_tail_max);
  w.varint(p.popular_terms_per_class);
  w.varint(static_cast<std::uint64_t>(p.popular_term_alpha * 1e6));

  w.varint(model.corpus_.size());
  for (const auto& doc : model.corpus_) {
    w.u8(doc.topic);
    w.varint(doc.keywords.size());
    for (const KeywordId kw : doc.keywords) w.varint(kw);
  }
  for (const auto& docs : model.initial_docs_) put_doc_list(w, docs);
  for (const auto& docs : model.joiner_docs_) put_doc_list(w, docs);
  for (const auto& ints : model.interests_) {
    w.varint(ints.size());
    for (const TopicId t : ints) w.u8(t);
  }
  w.varint(model.next_keyword_);
  return w.to_vector();
}

ContentModel deserialize_content(std::span<const std::uint8_t> data) {
  wire::Reader r(data);
  if (r.u32() != kContentMagic) {
    throw wire::DecodeError("trace_io: bad content magic");
  }
  if (r.u8() != kFormatVersion) {
    throw wire::DecodeError("trace_io: unsupported content format version");
  }

  ContentModel m;
  auto& p = m.params_;
  p.initial_nodes = static_cast<std::uint32_t>(r.varint());
  p.joiner_nodes = static_cast<std::uint32_t>(r.varint());
  p.free_rider_fraction = static_cast<double>(r.varint()) / 1e9;
  p.mean_docs_per_sharer = static_cast<double>(r.varint()) / 1e6;
  p.max_docs_per_node = static_cast<std::uint32_t>(r.varint());
  p.single_copy_fraction = static_cast<double>(r.varint()) / 1e9;
  p.copy_tail_alpha = static_cast<double>(r.varint()) / 1e6;
  p.copy_tail_max = static_cast<std::uint32_t>(r.varint());
  p.popular_terms_per_class = static_cast<std::uint32_t>(r.varint());
  p.popular_term_alpha = static_cast<double>(r.varint()) / 1e6;

  const auto corpus_size = r.varint();
  if (corpus_size > (1ULL << 31)) {
    throw wire::DecodeError("trace_io: unreasonable corpus size");
  }
  m.corpus_.reserve(static_cast<std::size_t>(corpus_size));
  for (std::uint64_t i = 0; i < corpus_size; ++i) {
    Document doc;
    doc.topic = r.u8();
    if (doc.topic >= kNumClasses) {
      throw wire::DecodeError("trace_io: topic out of range");
    }
    const auto kws = r.varint();
    if (kws > 64) throw wire::DecodeError("trace_io: keyword count");
    doc.keywords.reserve(static_cast<std::size_t>(kws));
    for (std::uint64_t k = 0; k < kws; ++k) {
      doc.keywords.push_back(static_cast<KeywordId>(r.varint()));
    }
    m.corpus_.push_back(std::move(doc));
  }

  const auto total = p.initial_nodes + p.joiner_nodes;
  m.initial_docs_.resize(total);
  for (auto& docs : m.initial_docs_) {
    docs = get_doc_list(r, m.corpus_.size());
  }
  m.joiner_docs_.resize(p.joiner_nodes);
  for (auto& docs : m.joiner_docs_) {
    docs = get_doc_list(r, m.corpus_.size());
  }
  m.interests_.resize(total);
  for (auto& ints : m.interests_) {
    const auto count = r.varint();
    if (count > kNumClasses) {
      throw wire::DecodeError("trace_io: interest count");
    }
    ints.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto t = r.u8();
      if (t >= kNumClasses) throw wire::DecodeError("trace_io: interest id");
      ints.push_back(t);
    }
  }
  m.next_keyword_ = static_cast<KeywordId>(r.varint());
  if (!r.done()) throw wire::DecodeError("trace_io: trailing bytes");

  // Rebuild the (deterministic) per-class keyword pools.
  m.class_pools_.resize(kNumClasses);
  KeywordId next = 0;
  for (auto& pool : m.class_pools_) {
    pool.resize(p.popular_terms_per_class);
    for (auto& kw : pool) kw = next++;
  }
  return m;
}

std::vector<std::uint8_t> serialize_trace(const Trace& trace) {
  wire::Writer w;
  w.u32(kTraceMagic);
  w.u8(kFormatVersion);
  w.varint(trace.num_queries);
  w.varint(trace.num_changes);
  w.varint(trace.num_joins);
  w.varint(trace.num_leaves);
  w.varint(trace.num_rejoins);
  w.varint(trace.events.size());
  // Times are stored as microsecond deltas (monotone non-decreasing).
  std::uint64_t prev_us = 0;
  for (const auto& ev : trace.events) {
    const auto us = static_cast<std::uint64_t>(ev.time * 1e6 + 0.5);
    ASAP_CHECK(us >= prev_us);
    w.varint(us - prev_us);
    prev_us = us;
    w.u8(static_cast<std::uint8_t>(ev.type));
    w.varint(ev.node);
    w.varint(ev.doc == kInvalidDoc ? 0 : static_cast<std::uint64_t>(ev.doc) + 1);
    w.u8(ev.num_terms);
    for (std::uint8_t i = 0; i < ev.num_terms; ++i) w.varint(ev.terms[i]);
  }
  return w.to_vector();
}

Trace deserialize_trace(std::span<const std::uint8_t> data) {
  wire::Reader r(data);
  if (r.u32() != kTraceMagic) {
    throw wire::DecodeError("trace_io: bad trace magic");
  }
  if (r.u8() != kFormatVersion) {
    throw wire::DecodeError("trace_io: unsupported trace format version");
  }
  Trace t;
  t.num_queries = static_cast<std::uint32_t>(r.varint());
  t.num_changes = static_cast<std::uint32_t>(r.varint());
  t.num_joins = static_cast<std::uint32_t>(r.varint());
  t.num_leaves = static_cast<std::uint32_t>(r.varint());
  t.num_rejoins = static_cast<std::uint32_t>(r.varint());
  const auto count = r.varint();
  if (count > (1ULL << 31)) {
    throw wire::DecodeError("trace_io: unreasonable event count");
  }
  t.events.reserve(static_cast<std::size_t>(count));
  std::uint64_t prev_us = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceEvent ev;
    prev_us += r.varint();
    ev.time = static_cast<Seconds>(prev_us) / 1e6;
    const auto type = r.u8();
    if (type > static_cast<std::uint8_t>(TraceEventType::kRejoin)) {
      throw wire::DecodeError("trace_io: bad event type");
    }
    ev.type = static_cast<TraceEventType>(type);
    ev.node = static_cast<NodeId>(r.varint());
    const auto doc_plus1 = r.varint();
    ev.doc = doc_plus1 == 0 ? kInvalidDoc
                            : static_cast<DocId>(doc_plus1 - 1);
    ev.num_terms = r.u8();
    if (ev.num_terms > ev.terms.size()) {
      throw wire::DecodeError("trace_io: term count");
    }
    for (std::uint8_t k = 0; k < ev.num_terms; ++k) {
      ev.terms[k] = static_cast<KeywordId>(r.varint());
    }
    t.events.push_back(ev);
  }
  if (!r.done()) throw wire::DecodeError("trace_io: trailing bytes");
  t.horizon = t.events.empty() ? 0.0 : t.events.back().time;
  return t;
}

void save_bundle(const std::string& path, const ContentModel& model,
                 const Trace& trace) {
  const auto content = serialize_content(model);
  const auto tr = serialize_trace(trace);
  std::ofstream out(path, std::ios::binary);
  ASAP_REQUIRE(out.good(), "cannot open bundle file for writing: " + path);
  wire::Writer header;
  header.varint(content.size());
  header.varint(tr.size());
  out.write(reinterpret_cast<const char*>(header.buffer().data()),
            static_cast<std::streamsize>(header.size()));
  out.write(reinterpret_cast<const char*>(content.data()),
            static_cast<std::streamsize>(content.size()));
  out.write(reinterpret_cast<const char*>(tr.data()),
            static_cast<std::streamsize>(tr.size()));
  ASAP_REQUIRE(out.good(), "failed writing bundle: " + path);
}

TraceBundle load_bundle(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ASAP_REQUIRE(in.good(), "cannot open bundle file: " + path);
  std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  wire::Reader r(data);
  const auto content_size = r.varint();
  const auto trace_size = r.varint();
  const auto content = r.bytes(static_cast<std::size_t>(content_size));
  const auto tr = r.bytes(static_cast<std::size_t>(trace_size));
  if (!r.done()) throw wire::DecodeError("trace_io: trailing bundle bytes");
  return TraceBundle{deserialize_content(content), deserialize_trace(tr)};
}

}  // namespace asap::trace
