// The 14 semantic document classes (paper §IV-B, Fig 2/3).
//
// The paper classifies the eDonkey corpus into 14 categories by file name
// and extension. The crawl is not public, so we model the categories and a
// skewed popularity profile over them (video/audio-dominated, as every
// eDonkey study reports); see DESIGN.md substitution #1.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace asap::trace {

inline constexpr std::uint32_t kNumClasses = 14;

/// Human-readable class labels, ordered by popularity rank.
std::string_view class_name(TopicId cls);

/// Relative popularity weight of each class (sums to 1). Follows a
/// Zipf(0.8) profile over the 14 classes, which matches the
/// "few classes dominate" shape of Fig 2.
const std::array<double, kNumClasses>& class_weights();

}  // namespace asap::trace
