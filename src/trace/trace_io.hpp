// Binary serialization of traces and content models.
//
// A (ContentModel, Trace) pair fully determines the workload a system
// under test sees, so persisting them lets one build a world once and
// replay the exact same workload across machines, tool versions, or
// competing implementations. The format uses the varint codec from
// common/codec.hpp; everything is versioned behind a magic/format header.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/content_model.hpp"
#include "trace/trace.hpp"

namespace asap::trace {

/// Serializes the content model (corpus, placements, interests).
std::vector<std::uint8_t> serialize_content(const ContentModel& model);
ContentModel deserialize_content(std::span<const std::uint8_t> data);

/// Serializes a trace (events + counters).
std::vector<std::uint8_t> serialize_trace(const Trace& trace);
Trace deserialize_trace(std::span<const std::uint8_t> data);

/// File round trips (throw ConfigError on I/O failure, wire::DecodeError
/// on malformed content).
void save_bundle(const std::string& path, const ContentModel& model,
                 const Trace& trace);
struct TraceBundle {
  ContentModel model;
  Trace trace;
};
TraceBundle load_bundle(const std::string& path);

}  // namespace asap::trace
