#include "trace/classes.hpp"

#include <cmath>

#include "common/error.hpp"

namespace asap::trace {

namespace {
constexpr std::array<std::string_view, kNumClasses> kNames = {
    "video",    "audio",     "archive",  "cd-image", "document",
    "software", "image",     "game",     "tv-series", "anime",
    "ebook",    "subtitles", "source",   "misc",
};
}  // namespace

std::string_view class_name(TopicId cls) {
  ASAP_REQUIRE(cls < kNumClasses, "class id out of range");
  return kNames[cls];
}

const std::array<double, kNumClasses>& class_weights() {
  static const std::array<double, kNumClasses> weights = [] {
    std::array<double, kNumClasses> w{};
    double total = 0.0;
    for (std::uint32_t i = 0; i < kNumClasses; ++i) {
      w[i] = std::pow(static_cast<double>(i + 1), -0.8);
      total += w[i];
    }
    for (auto& v : w) v /= total;
    return w;
  }();
  return weights;
}

}  // namespace asap::trace
