// Ground-truth content state during a trace replay.
//
// Every system under test shares this oracle: it answers "which online
// nodes currently hold a document containing all query terms" — the truth
// the search algorithms are measured against — and "does node n hold such a
// document" — what a node answers when asked directly (flooding hit test,
// ASAP content confirmation).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "trace/content_model.hpp"
#include "trace/trace.hpp"

namespace asap::trace {

/// Per-node online flag and shared-document list, mutated by trace events.
class LiveContent {
 public:
  explicit LiveContent(const ContentModel& model);

  bool online(NodeId n) const { return online_[n]; }
  std::uint32_t live_count() const { return live_count_; }
  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(online_.size());
  }

  const std::vector<DocId>& docs(NodeId n) const { return docs_[n]; }
  bool has_doc(NodeId n, DocId d) const;

  /// True iff node n is online and holds one document containing *all*
  /// terms (doc-level conjunction — the paper's confirmation semantics).
  bool node_matches(NodeId n, std::span<const KeywordId> terms,
                    const ContentModel& model) const;

  /// Number of distinct keywords node n currently shares (|K_p|).
  std::uint32_t keyword_count(NodeId n, const ContentModel& model) const;

  void set_online(NodeId n, bool up);
  void add_doc(NodeId n, DocId d);
  void remove_doc(NodeId n, DocId d);

  /// Applies one trace event (kQuery is a no-op here).
  void apply(const TraceEvent& ev, const ContentModel& model);

  /// Heap bytes owned by the mirror (scale instrumentation).
  std::uint64_t memory_bytes() const {
    std::uint64_t total = docs_.capacity() * sizeof(std::vector<DocId>) +
                          online_.capacity() / 8;
    for (const auto& d : docs_) total += d.capacity() * sizeof(DocId);
    return total;
  }

 private:
  std::vector<std::vector<DocId>> docs_;
  std::vector<bool> online_;
  std::uint32_t live_count_ = 0;
};

/// Global inverted index keyword -> (node, doc) postings with lazy
/// deletion; used to resolve the true matching-node set of a query in
/// O(shortest posting list) instead of scanning every node.
class ContentIndex {
 public:
  ContentIndex(const ContentModel& model, const LiveContent& live);

  /// Must be called for every kAddDoc / kJoin placement (postings for
  /// removals are invalidated lazily).
  void on_add(NodeId n, DocId d, const ContentModel& model);
  void apply(const TraceEvent& ev, const ContentModel& model);

  /// All online nodes holding a single document that contains every term.
  /// Result is sorted and duplicate-free.
  std::vector<NodeId> matching_nodes(std::span<const KeywordId> terms,
                                     const LiveContent& live,
                                     const ContentModel& model) const;

 private:
  struct Posting {
    NodeId node;
    DocId doc;
  };
  std::vector<std::vector<Posting>> postings_;  // indexed by KeywordId

  void ensure_keyword(KeywordId kw);
};

}  // namespace asap::trace
