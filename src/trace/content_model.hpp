// Synthetic content-distribution model matching the eDonkey statistics the
// paper's trace preparation relies on (§IV-B, §V-A):
//   * a universal document set shared by the selected peers,
//   * mean replication ~ 1.28 copies per document, ~89% single-copy,
//   * 14 semantic classes with skewed sizes (Fig 2),
//   * interest clustering: a sharer's interests are exactly the classes of
//     its shared documents; free-riders share nothing and receive random
//     interests (Fig 3),
//   * per-document keyword sets (file-name terms): a few popular class
//     terms plus unique title terms, so multi-term queries can miss even
//     when individual terms hit (exercising ASAP's confirmation step).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "common/zipf.hpp"
#include "trace/classes.hpp"

namespace asap::trace {

struct Document {
  TopicId topic = 0;
  /// File-name terms; queries draw subsets of these.
  std::vector<KeywordId> keywords;
};

struct ContentModelParams {
  std::uint32_t initial_nodes = 2'000;
  std::uint32_t joiner_nodes = 200;  // extra slots that join mid-trace
  double free_rider_fraction = 0.25;
  /// Mean shared documents per sharing node (eDonkey: ~25).
  double mean_docs_per_sharer = 25.0;
  std::uint32_t max_docs_per_node = 150;  // keeps |K_p| under ~1000
  /// Replication profile: P(copies=1) and the tail skew of extra copies.
  double single_copy_fraction = 0.89;
  double copy_tail_alpha = 2.0;
  std::uint32_t copy_tail_max = 50;
  /// Keyword model.
  std::uint32_t popular_terms_per_class = 800;
  double popular_term_alpha = 1.0;

  static ContentModelParams small();
  static ContentModelParams paper();  // 10,000 peers, 1,000 joiners
};

/// The generated corpus + placement + interests. Node slots
/// [0, initial_nodes) are the initially-online peers; slots
/// [initial_nodes, initial_nodes + joiner_nodes) are reserved for joiners.
class ContentModel {
 public:
  static ContentModel build(const ContentModelParams& params, Rng& rng);

  const ContentModelParams& params() const { return params_; }

  std::uint32_t total_node_slots() const {
    return params_.initial_nodes + params_.joiner_nodes;
  }

  const std::vector<Document>& corpus() const { return corpus_; }
  const Document& doc(DocId d) const { return corpus_[d]; }
  std::size_t num_docs() const { return corpus_.size(); }

  /// Documents initially shared by node n (empty for free-riders and for
  /// joiner slots, whose content arrives with their join event).
  const std::vector<DocId>& initial_docs(NodeId n) const {
    return initial_docs_[n];
  }
  /// Documents a joiner slot brings when it joins.
  const std::vector<DocId>& joiner_docs(NodeId n) const;

  /// Interest classes of node n (includes joiners).
  const std::vector<TopicId>& interests(NodeId n) const {
    return interests_[n];
  }

  bool is_free_rider(NodeId n) const {
    return n < params_.initial_nodes && initial_docs_[n].empty();
  }

  /// Creates a brand-new single-copy document in the given class and
  /// returns its id (used for mid-trace document additions).
  DocId mint_document(TopicId cls, Rng& rng);

  /// Consumes exactly the RNG draws mint_document would, without touching
  /// the corpus. The streaming trace path replays a build-mode stream
  /// against a const model whose corpus already holds every mid-trace
  /// mint (appended in stream order), so replayed mints resolve to
  /// sequential pre-minted ids while the draw stream stays bit-identical.
  void replay_mint_draws(TopicId cls, Rng& rng) const;

  // --- statistics used by Fig 2/3 and by tests -------------------------
  /// #nodes whose initial contents include each class (Fig 2).
  std::array<std::uint32_t, kNumClasses> nodes_per_class() const;
  /// #nodes whose interest set includes each class (Fig 3).
  std::array<std::uint32_t, kNumClasses> nodes_per_interest() const;
  /// Mean replicas per distinct document in the initial placement.
  double mean_replication() const;
  /// Fraction of distinct documents with exactly one initial copy.
  double single_copy_fraction() const;

 private:
  std::vector<KeywordId> make_keywords(TopicId cls, Rng& rng);

  // Binary persistence (trace/trace_io.hpp) reconstructs models directly.
  friend std::vector<std::uint8_t> serialize_content(const ContentModel&);
  friend ContentModel deserialize_content(
      std::span<const std::uint8_t> data);

  ContentModelParams params_;
  std::vector<Document> corpus_;
  std::vector<std::vector<DocId>> initial_docs_;
  std::vector<std::vector<DocId>> joiner_docs_;  // indexed by slot - initial
  std::vector<std::vector<TopicId>> interests_;
  // Keyword machinery (shared with mint_document).
  std::vector<std::vector<KeywordId>> class_pools_;
  // Lazily created on the first mint (or mint replay — hence mutable):
  // creation consumes no RNG draws, so build and replay paths may each
  // create it on demand without perturbing the stream. ZipfDraw keeps the
  // historical CDF sampler at small pool sizes and switches to O(1)
  // rejection-inversion for scale worlds' larger keyword pools.
  mutable std::unique_ptr<ZipfDraw> popular_sampler_;
  KeywordId next_keyword_ = 0;

  void ensure_popular_sampler(TopicId cls) const;
};

}  // namespace asap::trace
