#include "trace/streaming_trace_gen.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace asap::trace {

StreamingTraceGenerator::StreamingTraceGenerator(ContentModel& model,
                                                 const TraceParams& params,
                                                 const Rng& rng)
    : StreamingTraceGenerator(model, &model, params, rng, kInvalidDoc) {}

StreamingTraceGenerator::StreamingTraceGenerator(const ContentModel& model,
                                                 const TraceParams& params,
                                                 const Rng& rng,
                                                 DocId mint_base)
    : StreamingTraceGenerator(model, nullptr, params, rng, mint_base) {}

StreamingTraceGenerator::StreamingTraceGenerator(const ContentModel& model,
                                                 ContentModel* mutable_model,
                                                 const TraceParams& params,
                                                 const Rng& rng,
                                                 DocId mint_base)
    : model_(model),
      mutable_model_(mutable_model),
      params_(params),
      rng_(rng),
      qt_rng_(rng),
      next_mint_(mint_base),
      live_(model) {
  ASAP_REQUIRE(params.num_queries >= 1, "trace needs at least one query");
  ASAP_REQUIRE(params.arrival_rate > 0.0, "arrival rate must be positive");
  ASAP_REQUIRE(params.joins <= model.params().joiner_nodes,
               "more joins than joiner slots in the content model");
  ASAP_REQUIRE(params.max_query_terms >= 1 && params.max_query_terms <= 3,
               "1..3 query terms supported");
  ASAP_REQUIRE(params.rejoin_fraction >= 0.0 && params.rejoin_fraction <= 1.0,
               "rejoin fraction out of [0,1]");
  ASAP_REQUIRE(params.rejoin_fraction == 0.0 || params.mean_offline > 0.0,
               "mean offline duration must be positive");

  // Legacy phase A: the query-arrival Poisson process. Only the horizon is
  // kept; individual times are re-derived from qt_rng_ (a pre-drain copy)
  // as the walk reaches them.
  Seconds clock = 0.0;
  for (std::uint32_t i = 0; i < params_.num_queries; ++i) {
    clock += rng_.exponential(params_.arrival_rate);
  }
  const Seconds horizon = clock;

  // Legacy phase B: churn times, uniform over the active part of the trace
  // (skip the very beginning so the initial population handles the first
  // queries).
  churn_.reserve(params_.joins + params_.leaves);
  for (std::uint32_t i = 0; i < params_.joins; ++i) {
    churn_.push_back({rng_.uniform(horizon * 0.02, horizon), true});
  }
  for (std::uint32_t i = 0; i < params_.leaves; ++i) {
    churn_.push_back({rng_.uniform(horizon * 0.02, horizon), false});
  }
  std::sort(churn_.begin(), churn_.end(),
            [](const Churn& a, const Churn& b) { return a.time < b.time; });

  for (NodeId n = 0; n < model.params().initial_nodes; ++n) {
    for (DocId d : model.initial_docs(n)) {
      class_instances_[model.doc(d).topic].push_back({n, d});
    }
    online_pool_.push_back(n);
  }
}

bool StreamingTraceGenerator::next(TraceEvent& out) {
  while (buffer_head_ == buffer_.size()) {
    if (next_query_ >= params_.num_queries) return false;
    buffer_.clear();
    buffer_head_ = 0;
    step();
  }
  out = buffer_[buffer_head_++];
  return true;
}

void StreamingTraceGenerator::step() {
  const Seconds qt = (qt_clock_ += qt_rng_.exponential(params_.arrival_rate));
  ++next_query_;

  // Interleave churn events (and any due rejoins) preceding this query.
  while (churn_idx_ < churn_.size() && churn_[churn_idx_].time <= qt) {
    const Churn& c = churn_[churn_idx_++];
    flush_rejoins(c.time);
    TraceEvent ev;
    ev.time = c.time;
    if (c.join && next_joiner_ < model_.params().joiner_nodes) {
      ev.type = TraceEventType::kJoin;
      ev.node = model_.params().initial_nodes + next_joiner_++;
      ++joins_;
      emit(ev);
    } else if (!c.join && live_.live_count() > 10) {
      ev.type = TraceEventType::kLeave;
      ev.node = pick_online_node();
      ++leaves_;
      emit(ev);
      if (rng_.chance(params_.rejoin_fraction)) {
        const Seconds back =
            c.time + rng_.exponential(1.0 / params_.mean_offline);
        pending_rejoins_.push({back, ev.node});
      }
    }
  }
  flush_rejoins(qt);

  // The query itself: retry requesters until a valid target exists.
  TraceEvent ev;
  ev.time = qt;
  ev.type = TraceEventType::kQuery;
  Instance target{};
  bool found = false;
  for (int attempt = 0; attempt < 256 && !found; ++attempt) {
    ev.node = pick_online_node();
    found = pick_target(ev.node, target);
  }
  ASAP_CHECK(found);  // content model guarantees ample live instances
  ev.doc = target.doc;
  pick_terms(model_.doc(target.doc), ev);
  ++queries_;
  emit(ev);

  if (rng_.chance(params_.content_change_fraction)) {
    // Content change lands right after the query (same arrival burst).
    make_content_change(qt + 1e-4);
  }
}

void StreamingTraceGenerator::emit(TraceEvent ev) {
  live_.apply(ev, model_);
  switch (ev.type) {
    case TraceEventType::kAddDoc:
      class_instances_[model_.doc(ev.doc).topic].push_back({ev.node, ev.doc});
      break;
    case TraceEventType::kJoin:
      for (DocId d : model_.joiner_docs(ev.node)) {
        class_instances_[model_.doc(d).topic].push_back({ev.node, d});
      }
      online_pool_.push_back(ev.node);
      break;
    case TraceEventType::kRejoin:
      // Instances of this node were lazily dropped from the class pools
      // while it was offline; put its current documents back (duplicates
      // are harmless: sampling validates entries anyway).
      for (DocId d : live_.docs(ev.node)) {
        class_instances_[model_.doc(d).topic].push_back({ev.node, d});
      }
      online_pool_.push_back(ev.node);
      break;
    default:
      break;  // removals / leaves invalidated lazily
  }
  last_event_time_ = ev.time;
  buffer_.push_back(ev);
}

void StreamingTraceGenerator::flush_rejoins(Seconds upto) {
  while (!pending_rejoins_.empty() && pending_rejoins_.top().time <= upto) {
    const auto pr = pending_rejoins_.top();
    pending_rejoins_.pop();
    if (live_.online(pr.node)) continue;  // already back somehow
    TraceEvent ev;
    ev.time = pr.time;
    ev.type = TraceEventType::kRejoin;
    ev.node = pr.node;
    ++rejoins_;
    emit(ev);
  }
}

NodeId StreamingTraceGenerator::pick_online_node() {
  // Lazy compaction: drop stale entries as we meet them.
  for (int attempt = 0; attempt < 1'000; ++attempt) {
    ASAP_CHECK(!online_pool_.empty());
    const auto idx = rng_.below(online_pool_.size());
    const NodeId n = online_pool_[idx];
    if (live_.online(n)) return n;
    online_pool_[idx] = online_pool_.back();
    online_pool_.pop_back();
  }
  throw InvariantError("could not find an online node");
}

bool StreamingTraceGenerator::pick_target(NodeId requester, Instance& out) {
  const auto& interests = model_.interests(requester);
  if (interests.empty()) return false;
  // Try interest classes in random order; within a class, sample instances
  // with lazy invalidation.
  std::vector<TopicId> classes(interests.begin(), interests.end());
  rng_.shuffle(classes);
  for (TopicId cls : classes) {
    auto& pool = class_instances_[cls];
    for (int attempt = 0; attempt < 64 && !pool.empty(); ++attempt) {
      const auto idx = rng_.below(pool.size());
      const Instance inst = pool[idx];
      if (!live_.online(inst.node) || !live_.has_doc(inst.node, inst.doc)) {
        pool[idx] = pool.back();
        pool.pop_back();
        continue;
      }
      if (inst.node == requester) continue;  // self-hits are trivial
      out = inst;
      return true;
    }
  }
  return false;
}

void StreamingTraceGenerator::pick_terms(const Document& doc,
                                         TraceEvent& ev) {
  const auto& kws = doc.keywords;
  ASAP_CHECK(!kws.empty());
  const auto want = std::min<std::uint32_t>(
      1 + static_cast<std::uint32_t>(rng_.below(params_.max_query_terms)),
      static_cast<std::uint32_t>(kws.size()));

  // Unique (title) terms sit after the popular class terms in the keyword
  // id space; popular ids are below kNumClasses * popular_terms_per_class.
  const KeywordId popular_limit =
      kNumClasses * model_.params().popular_terms_per_class;

  std::vector<std::uint32_t> order(kws.size());
  for (std::uint32_t i = 0; i < kws.size(); ++i) order[i] = i;
  rng_.shuffle(order);

  ev.num_terms = 0;
  const bool force_unique = rng_.chance(params_.unique_term_bias);
  if (force_unique) {
    for (auto i : order) {
      if (kws[i] >= popular_limit) {
        ev.terms[ev.num_terms++] = kws[i];
        break;
      }
    }
  }
  for (auto i : order) {
    if (ev.num_terms >= want) break;
    const KeywordId kw = kws[i];
    bool dup = false;
    for (std::uint8_t j = 0; j < ev.num_terms; ++j) {
      dup = dup || ev.terms[j] == kw;
    }
    if (!dup) ev.terms[ev.num_terms++] = kw;
  }
  ASAP_CHECK(ev.num_terms >= 1);
}

DocId StreamingTraceGenerator::mint(TopicId cls) {
  if (mutable_model_) return mutable_model_->mint_document(cls, rng_);
  // Replay mode: consume the same draws, resolve to the pre-minted id.
  model_.replay_mint_draws(cls, rng_);
  const DocId id = next_mint_++;
  ASAP_CHECK(id < model_.num_docs());
  ASAP_CHECK(model_.doc(id).topic == cls);
  return id;
}

void StreamingTraceGenerator::make_content_change(Seconds time) {
  const NodeId n = pick_online_node();
  const auto& docs = live_.docs(n);
  const bool removal = !docs.empty() && rng_.chance(0.5);
  TraceEvent ev;
  ev.time = time;
  ev.node = n;
  if (removal) {
    ev.type = TraceEventType::kRemoveDoc;
    ev.doc = docs[rng_.below(docs.size())];
  } else {
    ev.type = TraceEventType::kAddDoc;
    const auto& interests = model_.interests(n);
    TopicId cls;
    if (!interests.empty()) {
      cls = interests[rng_.below(interests.size())];
    } else {
      cls = static_cast<TopicId>(rng_.below(kNumClasses));
    }
    // Half the additions replicate an existing document of the class (a
    // download being shared), half mint a brand-new single-copy document.
    DocId doc = kInvalidDoc;
    auto& pool = class_instances_[cls];
    if (!pool.empty() && rng_.chance(0.5)) {
      for (int attempt = 0; attempt < 16; ++attempt) {
        const Instance inst = pool[rng_.below(pool.size())];
        if (live_.online(inst.node) && live_.has_doc(inst.node, inst.doc) &&
            !live_.has_doc(n, inst.doc)) {
          doc = inst.doc;
          break;
        }
      }
    }
    if (doc == kInvalidDoc) doc = mint(cls);
    ev.doc = doc;
  }
  ++changes_;
  emit(ev);
}

std::uint64_t StreamingTraceGenerator::memory_bytes() const {
  std::uint64_t total = churn_.capacity() * sizeof(Churn) +
                        online_pool_.capacity() * sizeof(NodeId) +
                        buffer_.capacity() * sizeof(TraceEvent) +
                        live_.memory_bytes();
  for (const auto& pool : class_instances_) {
    total += pool.capacity() * sizeof(Instance);
  }
  return total;
}

}  // namespace asap::trace
