#include "trace/content_model.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "common/error.hpp"
#include "common/zipf.hpp"

namespace asap::trace {

ContentModelParams ContentModelParams::small() { return ContentModelParams{}; }

ContentModelParams ContentModelParams::paper() {
  ContentModelParams p;
  p.initial_nodes = 10'000;
  p.joiner_nodes = 1'000;
  return p;
}

namespace {

/// Picks `count` distinct classes, weighted by the global class popularity.
std::vector<TopicId> pick_classes(std::uint32_t count, Rng& rng) {
  const auto& w = class_weights();
  std::vector<TopicId> out;
  while (out.size() < count && out.size() < kNumClasses) {
    const double u = rng.uniform01();
    double acc = 0.0;
    TopicId pick = kNumClasses - 1;
    for (TopicId c = 0; c < kNumClasses; ++c) {
      acc += w[c];
      if (u < acc) {
        pick = c;
        break;
      }
    }
    if (std::find(out.begin(), out.end(), pick) == out.end()) {
      out.push_back(pick);
    }
  }
  return out;
}

}  // namespace

void ContentModel::ensure_popular_sampler(TopicId cls) const {
  // All class pools share one size, so one sampler serves them all.
  if (!popular_sampler_) {
    popular_sampler_ = std::make_unique<ZipfDraw>(
        static_cast<std::uint32_t>(class_pools_[cls].size()),
        params_.popular_term_alpha);
  }
}

std::vector<KeywordId> ContentModel::make_keywords(TopicId cls, Rng& rng) {
  // 1-2 popular class terms (Zipf-weighted) + 2-5 globally unique terms.
  ensure_popular_sampler(cls);
  std::vector<KeywordId> kws;
  const auto popular = 1 + static_cast<std::uint32_t>(rng.below(2));
  for (std::uint32_t i = 0; i < popular; ++i) {
    const auto rank = popular_sampler_->sample(rng) - 1;
    const KeywordId kw = class_pools_[cls][rank];
    if (std::find(kws.begin(), kws.end(), kw) == kws.end()) kws.push_back(kw);
  }
  const auto unique = 2 + static_cast<std::uint32_t>(rng.below(4));
  for (std::uint32_t i = 0; i < unique; ++i) kws.push_back(next_keyword_++);
  return kws;
}

DocId ContentModel::mint_document(TopicId cls, Rng& rng) {
  ASAP_REQUIRE(cls < kNumClasses, "class id out of range");
  const auto id = static_cast<DocId>(corpus_.size());
  corpus_.push_back(Document{cls, make_keywords(cls, rng)});
  return id;
}

void ContentModel::replay_mint_draws(TopicId cls, Rng& rng) const {
  ASAP_REQUIRE(cls < kNumClasses, "class id out of range");
  ensure_popular_sampler(cls);
  // Mirror make_keywords draw for draw: the popular-count uniform, one
  // sampler draw per popular term (dedup inspects only already-drawn
  // values), and the unique-count uniform (unique terms take fresh ids,
  // no draws).
  const auto popular = 1 + static_cast<std::uint32_t>(rng.below(2));
  for (std::uint32_t i = 0; i < popular; ++i) popular_sampler_->sample(rng);
  (void)rng.below(4);
}

ContentModel ContentModel::build(const ContentModelParams& params, Rng& rng) {
  ASAP_REQUIRE(params.initial_nodes >= 10, "need at least 10 initial nodes");
  ASAP_REQUIRE(params.free_rider_fraction >= 0.0 &&
                   params.free_rider_fraction < 1.0,
               "free-rider fraction out of [0,1)");
  ASAP_REQUIRE(params.mean_docs_per_sharer >= 1.0,
               "sharers must share at least one document on average");
  ASAP_REQUIRE(params.single_copy_fraction > 0.0 &&
                   params.single_copy_fraction <= 1.0,
               "single-copy fraction out of (0,1]");

  ContentModel m;
  m.params_ = params;
  const std::uint32_t total = m.total_node_slots();
  m.initial_docs_.resize(total);
  m.joiner_docs_.resize(params.joiner_nodes);
  m.interests_.resize(total);

  // Keyword pools: one per class, sequential ids.
  m.class_pools_.resize(kNumClasses);
  for (auto& pool : m.class_pools_) {
    pool.resize(params.popular_terms_per_class);
    for (auto& kw : pool) kw = m.next_keyword_++;
  }

  // --- interests & per-node document budget ----------------------------
  std::vector<std::uint32_t> need(total, 0);
  std::vector<std::vector<TopicId>> seed_classes(total);
  std::uint64_t target_instances = 0;
  for (NodeId n = 0; n < params.initial_nodes; ++n) {
    if (rng.chance(params.free_rider_fraction)) continue;  // free-rider
    seed_classes[n] = pick_classes(
        1 + static_cast<std::uint32_t>(rng.below(4)), rng);
    const auto docs = std::min<std::uint64_t>(
        params.max_docs_per_node,
        1 + rng.geometric(1.0 / params.mean_docs_per_sharer));
    need[n] = static_cast<std::uint32_t>(docs);
    target_instances += docs;
  }

  // Per-class candidate lists (nodes that still need documents).
  std::array<std::vector<NodeId>, kNumClasses> candidates;
  for (NodeId n = 0; n < params.initial_nodes; ++n) {
    for (TopicId c : seed_classes[n]) candidates[c].push_back(n);
  }

  ZipfSampler copy_tail(params.copy_tail_max, params.copy_tail_alpha);
  const auto& weights = class_weights();

  auto place_on = [&](NodeId n, DocId d) {
    m.initial_docs_[n].push_back(d);
    ASAP_DCHECK(need[n] > 0);
    --need[n];
  };

  // Draw a class for a new document, weighted by class popularity.
  auto draw_class = [&]() -> TopicId {
    const double u = rng.uniform01();
    double acc = 0.0;
    for (TopicId c = 0; c < kNumClasses; ++c) {
      acc += weights[c];
      if (u < acc) return c;
    }
    return kNumClasses - 1;
  };

  // Pick up to `copies` distinct holders for one document of class `cls`,
  // preferring interested candidates, spilling onto any needy node.
  std::vector<NodeId> all_needy;  // rebuilt lazily for the spill path
  auto pick_holders = [&](TopicId cls, std::uint32_t copies,
                          std::vector<NodeId>& out) {
    out.clear();
    auto& cand = candidates[cls];
    std::uint32_t attempts = 0;
    while (out.size() < copies && !cand.empty() &&
           attempts++ < copies * 8 + 16) {
      const auto idx = rng.below(cand.size());
      const NodeId n = cand[idx];
      if (need[n] == 0) {
        cand[idx] = cand.back();
        cand.pop_back();
        continue;
      }
      if (std::find(out.begin(), out.end(), n) == out.end()) {
        out.push_back(n);
      }
    }
    // Spill: the interested candidates ran short; place the rest anywhere.
    // At most one pool rebuild per call — if even a fresh pool cannot
    // provide a new distinct holder, the document gets fewer copies.
    bool rebuilt = false;
    while (out.size() < copies) {
      while (!all_needy.empty() &&
             (need[all_needy.back()] == 0 ||
              std::find(out.begin(), out.end(), all_needy.back()) !=
                  out.end())) {
        all_needy.pop_back();
      }
      if (all_needy.empty()) {
        if (rebuilt) break;
        rebuilt = true;
        all_needy.reserve(params.initial_nodes);
        for (NodeId n = 0; n < params.initial_nodes; ++n) {
          if (need[n] > 0) all_needy.push_back(n);
        }
        rng.shuffle(all_needy);
        continue;
      }
      out.push_back(all_needy.back());
      all_needy.pop_back();
    }
  };

  // --- generate documents until the instance budget is consumed --------
  std::uint64_t placed = 0;
  std::vector<NodeId> holders;
  while (placed < target_instances) {
    const TopicId cls = draw_class();
    std::uint32_t copies = 1;
    if (!rng.chance(params.single_copy_fraction)) {
      copies = 1 + copy_tail.sample(rng);
    }
    pick_holders(cls, copies, holders);
    if (holders.empty()) break;  // every need satisfied
    const DocId d = m.mint_document(cls, rng);
    for (NodeId n : holders) place_on(n, d);
    placed += holders.size();
  }

  // --- derive interests (paper: interests == classes of shared content;
  // free-riders get random interests) -----------------------------------
  for (NodeId n = 0; n < params.initial_nodes; ++n) {
    auto& ints = m.interests_[n];
    for (DocId d : m.initial_docs_[n]) {
      const TopicId c = m.corpus_[d].topic;
      if (std::find(ints.begin(), ints.end(), c) == ints.end()) {
        ints.push_back(c);
      }
    }
    if (ints.empty()) {
      // Free-rider (or a sharer that received no documents).
      const auto k = 1 + static_cast<std::uint32_t>(rng.below(3));
      while (ints.size() < k) {
        const auto c = static_cast<TopicId>(rng.below(kNumClasses));
        if (std::find(ints.begin(), ints.end(), c) == ints.end()) {
          ints.push_back(c);
        }
      }
    }
    std::sort(ints.begin(), ints.end());
  }

  // --- joiners: same sharing profile, content minted at build time ------
  for (std::uint32_t j = 0; j < params.joiner_nodes; ++j) {
    const NodeId slot = params.initial_nodes + j;
    auto classes = pick_classes(
        1 + static_cast<std::uint32_t>(rng.below(3)), rng);
    auto& docs = m.joiner_docs_[j];
    if (!rng.chance(params.free_rider_fraction)) {
      const auto count = std::min<std::uint64_t>(
          params.max_docs_per_node,
          1 + rng.geometric(1.0 / params.mean_docs_per_sharer));
      for (std::uint64_t i = 0; i < count; ++i) {
        const TopicId cls = classes[rng.below(classes.size())];
        docs.push_back(m.mint_document(cls, rng));
      }
    }
    auto& ints = m.interests_[slot];
    for (DocId d : docs) {
      const TopicId c = m.corpus_[d].topic;
      if (std::find(ints.begin(), ints.end(), c) == ints.end()) {
        ints.push_back(c);
      }
    }
    if (ints.empty()) ints.assign(classes.begin(), classes.end());
    std::sort(ints.begin(), ints.end());
  }

  return m;
}

const std::vector<DocId>& ContentModel::joiner_docs(NodeId n) const {
  ASAP_REQUIRE(n >= params_.initial_nodes && n < total_node_slots(),
               "not a joiner slot");
  return joiner_docs_[n - params_.initial_nodes];
}

std::array<std::uint32_t, kNumClasses> ContentModel::nodes_per_class() const {
  std::array<std::uint32_t, kNumClasses> out{};
  for (NodeId n = 0; n < params_.initial_nodes; ++n) {
    std::array<bool, kNumClasses> seen{};
    for (DocId d : initial_docs_[n]) seen[corpus_[d].topic] = true;
    for (std::uint32_t c = 0; c < kNumClasses; ++c) {
      if (seen[c]) ++out[c];
    }
  }
  return out;
}

std::array<std::uint32_t, kNumClasses> ContentModel::nodes_per_interest()
    const {
  std::array<std::uint32_t, kNumClasses> out{};
  for (NodeId n = 0; n < params_.initial_nodes; ++n) {
    for (TopicId c : interests_[n]) ++out[c];
  }
  return out;
}

double ContentModel::mean_replication() const {
  std::vector<std::uint32_t> copies(corpus_.size(), 0);
  for (NodeId n = 0; n < params_.initial_nodes; ++n) {
    for (DocId d : initial_docs_[n]) ++copies[d];
  }
  std::uint64_t instances = 0;
  std::uint32_t distinct = 0;
  for (auto c : copies) {
    if (c > 0) {
      ++distinct;
      instances += c;
    }
  }
  return distinct == 0
             ? 0.0
             : static_cast<double>(instances) / static_cast<double>(distinct);
}

double ContentModel::single_copy_fraction() const {
  std::vector<std::uint32_t> copies(corpus_.size(), 0);
  for (NodeId n = 0; n < params_.initial_nodes; ++n) {
    for (DocId d : initial_docs_[n]) ++copies[d];
  }
  std::uint32_t distinct = 0, singles = 0;
  for (auto c : copies) {
    if (c > 0) {
      ++distinct;
      if (c == 1) ++singles;
    }
  }
  return distinct == 0
             ? 0.0
             : static_cast<double>(singles) / static_cast<double>(distinct);
}

}  // namespace asap::trace
