#include "trace/trace_gen.hpp"

#include "common/error.hpp"
#include "trace/streaming_trace_gen.hpp"

namespace asap::trace {

TraceGenerator::TraceGenerator(ContentModel& model, TraceParams params,
                               Rng& rng)
    : model_(model), params_(params), rng_(rng) {
  // Validate eagerly (the streaming generator re-checks at generate time;
  // these keep construction-site failures at the construction site).
  ASAP_REQUIRE(params.num_queries >= 1, "trace needs at least one query");
  ASAP_REQUIRE(params.arrival_rate > 0.0, "arrival rate must be positive");
  ASAP_REQUIRE(params.joins <= model.params().joiner_nodes,
               "more joins than joiner slots in the content model");
  ASAP_REQUIRE(params.max_query_terms >= 1 && params.max_query_terms <= 3,
               "1..3 query terms supported");
  ASAP_REQUIRE(params.rejoin_fraction >= 0.0 && params.rejoin_fraction <= 1.0,
               "rejoin fraction out of [0,1]");
  ASAP_REQUIRE(params.rejoin_fraction == 0.0 || params.mean_offline > 0.0,
               "mean offline duration must be positive");
}

Trace TraceGenerator::generate() {
  ASAP_REQUIRE(!generated_, "generate() may only be called once");
  generated_ = true;

  StreamingTraceGenerator gen(model_, params_, rng_);
  Trace t;
  TraceEvent ev;
  while (gen.next(ev)) t.events.push_back(ev);
  t.num_queries = gen.num_queries();
  t.num_changes = gen.num_changes();
  t.num_joins = gen.num_joins();
  t.num_leaves = gen.num_leaves();
  t.num_rejoins = gen.num_rejoins();
  t.horizon = t.events.empty() ? 0.0 : t.events.back().time;
  rng_ = gen.rng_state();  // hand the final stream state back to the caller
  return t;
}

}  // namespace asap::trace
