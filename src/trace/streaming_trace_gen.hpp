// Streaming twin of TraceGenerator (paper §IV-B steps 4-6).
//
// Synthesizes the exact event stream TraceGenerator materializes — bit-
// identical for a given RNG state — but on demand, one event per next()
// call, so a run never holds an O(events) vector. Resident state is
// O(live nodes + documents): the live-content mirror, the per-class
// instance pools, the online pool and the churn schedule.
//
// The RNG discipline that makes lazy arrival times possible: the legacy
// generator draws every query-arrival exponential first, then the churn
// uniforms, then the per-event walk draws. The streaming ctor replays that
// prefix — it drains the arrival exponentials from the main stream
// (keeping only the horizon), having first saved a pre-drain RNG copy from
// which each arrival time is re-derived on demand, then draws the
// O(joins + leaves) churn schedule. Walk draws continue from the main
// stream, so after exhaustion rng_state() equals the legacy generator's
// final RNG state exactly.
//
// Two modes:
//   * build mode mutates the ContentModel — mid-trace document additions
//     mint brand-new documents, exactly like the legacy generator;
//   * replay mode re-runs a previously built stream against a *const*
//     model whose corpus already holds those mints, appended in stream
//     order starting at `mint_base`. Each replayed mint consumes the same
//     RNG draws (ContentModel::replay_mint_draws) and resolves to the next
//     sequential pre-minted id, keeping the event stream bit-identical
//     while many replay runs share one immutable model.
#pragma once

#include <array>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "trace/content_model.hpp"
#include "trace/live_content.hpp"
#include "trace/trace.hpp"

namespace asap::trace {

class StreamingTraceGenerator {
 public:
  /// Build mode: mid-trace additions mint documents into `model`.
  StreamingTraceGenerator(ContentModel& model, const TraceParams& params,
                          const Rng& rng);

  /// Replay mode: `model` stays const; mints resolve to the pre-minted ids
  /// `mint_base`, `mint_base + 1`, ... already present in its corpus.
  StreamingTraceGenerator(const ContentModel& model, const TraceParams& params,
                          const Rng& rng, DocId mint_base);

  /// Produces the next event; false once the stream is exhausted.
  bool next(TraceEvent& out);

  /// The walk RNG. After exhaustion this is bit-identical to the state the
  /// legacy generator leaves in its caller's RNG.
  const Rng& rng_state() const { return rng_; }

  /// Time of the most recent event (the legacy Trace::horizon once the
  /// stream is exhausted; 0.0 before the first event).
  Seconds last_event_time() const { return last_event_time_; }

  // Event counters so far (match the legacy Trace totals at exhaustion).
  std::uint32_t num_queries() const { return queries_; }
  std::uint32_t num_changes() const { return changes_; }
  std::uint32_t num_joins() const { return joins_; }
  std::uint32_t num_leaves() const { return leaves_; }
  std::uint32_t num_rejoins() const { return rejoins_; }

  /// Heap bytes of resident generator state (instrumentation; excludes the
  /// shared ContentModel).
  std::uint64_t memory_bytes() const;

 private:
  struct Instance {
    NodeId node;
    DocId doc;
  };
  struct Churn {
    Seconds time;
    bool join;
  };
  struct PendingRejoin {
    Seconds time;
    NodeId node;
    bool operator>(const PendingRejoin& o) const { return time > o.time; }
  };

  StreamingTraceGenerator(const ContentModel& model,
                          ContentModel* mutable_model,
                          const TraceParams& params, const Rng& rng,
                          DocId mint_base);

  /// Runs one legacy main-loop iteration (churn + rejoins + query +
  /// optional content change), buffering the events it produces.
  void step();

  void emit(TraceEvent ev);
  bool pick_target(NodeId requester, Instance& out);
  void pick_terms(const Document& doc, TraceEvent& ev);
  NodeId pick_online_node();
  void make_content_change(Seconds time);
  void flush_rejoins(Seconds upto);
  DocId mint(TopicId cls);

  const ContentModel& model_;
  ContentModel* mutable_model_;  // null in replay mode
  TraceParams params_;
  Rng rng_;     // main stream: walk draws (post-drain)
  Rng qt_rng_;  // pre-drain copy: re-derives arrival times on demand
  Seconds qt_clock_ = 0.0;
  DocId next_mint_;

  std::vector<Churn> churn_;
  std::size_t churn_idx_ = 0;
  std::uint32_t next_query_ = 0;

  std::priority_queue<PendingRejoin, std::vector<PendingRejoin>,
                      std::greater<>>
      pending_rejoins_;

  LiveContent live_;
  /// Per-class (node, doc) instance lists with lazy invalidation.
  std::array<std::vector<Instance>, kNumClasses> class_instances_;
  std::vector<NodeId> online_pool_;  // lazily compacted
  std::uint32_t next_joiner_ = 0;

  /// Events produced by the current step(), drained by next().
  std::vector<TraceEvent> buffer_;
  std::size_t buffer_head_ = 0;

  Seconds last_event_time_ = 0.0;
  std::uint32_t queries_ = 0;
  std::uint32_t changes_ = 0;
  std::uint32_t joins_ = 0;
  std::uint32_t leaves_ = 0;
  std::uint32_t rejoins_ = 0;
};

}  // namespace asap::trace
