// JSONL trace sink with deterministic sampling.
//
// Each record is one compact JSON object per line (json::dump_compact).
// Sampling is per record kind and purely counter-based: with
// `sample_every == N`, the 1st, (N+1)th, (2N+1)th ... record of each kind
// is written and the rest are suppressed (but still counted). Because the
// decision depends only on the record sequence — which is deterministic in
// a deterministic run — the same run traced twice produces byte-identical
// files, and changing N never changes *which* run executed, only which
// records survive.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>

#include "common/json.hpp"

namespace asap::obs {

/// Record kinds sampled independently, so a chatty kind (per-query spans)
/// cannot starve a rare one (churn transitions) out of the file.
enum class RecordKind : std::uint8_t {
  kQuery = 0,
  kAd,
  kConfirm,
  kChurn,
  kFault,       // fault-layer injections: crash/detect/partition/heal/burst
  kRetry,       // confirm retry attempts (protocol hardening)
  kStaleEvict,  // stale-ad evictions after consecutive confirm timeouts
  kAdRound,     // adaptive-scheduler ad rounds (emitted/spilled/bytes)
  kTrustStrike,  // trust strikes against an ad source (defense layer)
  kQuarantine,   // quarantine enter/exit of an ad source at a cacher
  kQueryShed,    // queries shed by overload protection
  kCount
};

inline constexpr std::size_t kRecordKindCount =
    static_cast<std::size_t>(RecordKind::kCount);

const char* record_kind_name(RecordKind k);

class TraceSink {
 public:
  /// @param out           stream the JSONL lines are appended to; not owned.
  /// @param sample_every  keep every Nth record per kind (>= 1).
  TraceSink(std::ostream& out, std::uint64_t sample_every);

  /// Advances the per-kind record counter; true when this record should be
  /// emitted. Call exactly once per record, before building the line.
  bool sampled(RecordKind kind);

  /// Writes one record as a single JSONL line.
  void write(const json::Object& record);

  std::uint64_t records_written() const { return written_; }
  std::uint64_t records_seen(RecordKind kind) const {
    return seen_[static_cast<std::size_t>(kind)];
  }

 private:
  std::ostream& out_;
  std::uint64_t sample_every_;
  std::array<std::uint64_t, kRecordKindCount> seen_{};
  std::uint64_t written_ = 0;
};

}  // namespace asap::obs
