#include "obs/trace_sink.hpp"

#include "common/error.hpp"

namespace asap::obs {

const char* record_kind_name(RecordKind k) {
  switch (k) {
    case RecordKind::kQuery:
      return "query";
    case RecordKind::kAd:
      return "ad";
    case RecordKind::kConfirm:
      return "confirm";
    case RecordKind::kChurn:
      return "churn";
    case RecordKind::kFault:
      return "fault";
    case RecordKind::kRetry:
      return "retry";
    case RecordKind::kStaleEvict:
      return "stale-evict";
    case RecordKind::kAdRound:
      return "ad-round";
    case RecordKind::kTrustStrike:
      return "trust-strike";
    case RecordKind::kQuarantine:
      return "quarantine";
    case RecordKind::kQueryShed:
      return "query-shed";
    case RecordKind::kCount:
      break;
  }
  return "?";
}

TraceSink::TraceSink(std::ostream& out, std::uint64_t sample_every)
    : out_(out), sample_every_(sample_every) {
  ASAP_REQUIRE(sample_every >= 1, "trace sample period must be >= 1");
}

bool TraceSink::sampled(RecordKind kind) {
  const std::uint64_t index = seen_[static_cast<std::size_t>(kind)]++;
  return index % sample_every_ == 0;
}

void TraceSink::write(const json::Object& record) {
  out_ << json::dump_compact(json::Value(record)) << '\n';
  ++written_;
}

}  // namespace asap::obs
