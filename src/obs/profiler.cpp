#include "obs/profiler.hpp"

namespace asap::obs {

json::Object phase_profile_to_json(const PhaseProfile& p) {
  json::Object out;
  out.emplace_back("phase", json::Value(p.phase));
  out.emplace_back("wall_seconds", json::Value(p.wall_seconds));
  out.emplace_back("events", json::Value(static_cast<double>(p.events)));
  out.emplace_back("events_per_sec", json::Value(p.events_per_sec));
  return out;
}

void PhaseProfiler::begin(std::string phase, std::uint64_t events_now) {
  end(events_now);
  phases_.push_back(PhaseProfile{std::move(phase), 0.0, 0, 0.0});
  open_start_ = Clock::now();
  open_events_ = events_now;
  open_ = true;
}

void PhaseProfiler::end(std::uint64_t events_now) {
  if (!open_) return;
  PhaseProfile& p = phases_.back();
  p.wall_seconds =
      std::chrono::duration<double>(Clock::now() - open_start_).count();
  p.events = events_now >= open_events_ ? events_now - open_events_ : 0;
  p.events_per_sec =
      p.wall_seconds > 1e-6 ? static_cast<double>(p.events) / p.wall_seconds
                            : 0.0;
  open_ = false;
}

json::Array PhaseProfiler::to_json() const {
  json::Array out;
  for (const auto& p : phases_) {
    out.push_back(json::Value(phase_profile_to_json(p)));
  }
  return out;
}

}  // namespace asap::obs
