#include "obs/observer.hpp"

#include <string>
#include <utility>

namespace asap::obs {

RunObserver::RunObserver(const ObsConfig& cfg)
    : cfg_(cfg), next_snapshot_(cfg.snapshot_period) {
  if (cfg_.trace_out != nullptr) {
    sink_.emplace(*cfg_.trace_out, cfg_.trace_sample);
  }
}

void RunObserver::on_engine_event(Seconds t) { maybe_snapshot(t); }

void RunObserver::on_ledger_deposit(Seconds /*t*/, sim::Traffic category,
                                    Bytes bytes) {
  // Deposit timestamps are not monotonic (inline expansion stamps arrival
  // times), so the snapshot cadence rides on engine time only.
  counters_.count_deposit(category, bytes);
}

void RunObserver::trace_query(Seconds t, NodeId node, bool success,
                              bool local_hit, Seconds response_s, Bytes bytes,
                              std::uint64_t messages, std::uint32_t results) {
  if (!sink_ || !sink_->sampled(RecordKind::kQuery)) return;
  json::Object rec;
  rec.emplace_back("type", json::Value("query"));
  rec.emplace_back("t", json::Value(t));
  rec.emplace_back("node", json::Value(static_cast<double>(node)));
  rec.emplace_back("success", json::Value(success));
  rec.emplace_back("local_hit", json::Value(local_hit));
  rec.emplace_back("response_s", json::Value(response_s));
  rec.emplace_back("bytes", json::Value(static_cast<double>(bytes)));
  rec.emplace_back("messages", json::Value(static_cast<double>(messages)));
  rec.emplace_back("results", json::Value(static_cast<double>(results)));
  sink_->write(rec);
}

void RunObserver::trace_ad(Seconds t, NodeId node, const char* kind,
                           std::uint64_t messages, Bytes bytes) {
  if (!sink_ || !sink_->sampled(RecordKind::kAd)) return;
  json::Object rec;
  rec.emplace_back("type", json::Value("ad"));
  rec.emplace_back("t", json::Value(t));
  rec.emplace_back("node", json::Value(static_cast<double>(node)));
  rec.emplace_back("kind", json::Value(kind));
  rec.emplace_back("messages", json::Value(static_cast<double>(messages)));
  rec.emplace_back("bytes", json::Value(static_cast<double>(bytes)));
  sink_->write(rec);
}

void RunObserver::trace_confirm(Seconds t, NodeId node, NodeId source,
                                const char* outcome) {
  if (!sink_ || !sink_->sampled(RecordKind::kConfirm)) return;
  json::Object rec;
  rec.emplace_back("type", json::Value("confirm"));
  rec.emplace_back("t", json::Value(t));
  rec.emplace_back("node", json::Value(static_cast<double>(node)));
  rec.emplace_back("source", json::Value(static_cast<double>(source)));
  rec.emplace_back("outcome", json::Value(outcome));
  sink_->write(rec);
}

void RunObserver::trace_churn(Seconds t, NodeId node, const char* transition) {
  if (!sink_ || !sink_->sampled(RecordKind::kChurn)) return;
  json::Object rec;
  rec.emplace_back("type", json::Value("churn"));
  rec.emplace_back("t", json::Value(t));
  rec.emplace_back("node", json::Value(static_cast<double>(node)));
  rec.emplace_back("transition", json::Value(transition));
  sink_->write(rec);
}

void RunObserver::trace_fault(Seconds t, const char* kind, NodeId node) {
  if (!sink_ || !sink_->sampled(RecordKind::kFault)) return;
  json::Object rec;
  rec.emplace_back("type", json::Value("fault"));
  rec.emplace_back("t", json::Value(t));
  rec.emplace_back("kind", json::Value(kind));
  rec.emplace_back("node", json::Value(static_cast<double>(node)));
  sink_->write(rec);
}

void RunObserver::trace_retry(Seconds t, NodeId node, NodeId source,
                              std::uint32_t attempt) {
  if (!sink_ || !sink_->sampled(RecordKind::kRetry)) return;
  json::Object rec;
  rec.emplace_back("type", json::Value("retry"));
  rec.emplace_back("t", json::Value(t));
  rec.emplace_back("node", json::Value(static_cast<double>(node)));
  rec.emplace_back("source", json::Value(static_cast<double>(source)));
  rec.emplace_back("attempt", json::Value(static_cast<double>(attempt)));
  sink_->write(rec);
}

void RunObserver::trace_stale_evict(Seconds t, NodeId node, NodeId source) {
  if (!sink_ || !sink_->sampled(RecordKind::kStaleEvict)) return;
  json::Object rec;
  rec.emplace_back("type", json::Value("stale-evict"));
  rec.emplace_back("t", json::Value(t));
  rec.emplace_back("node", json::Value(static_cast<double>(node)));
  rec.emplace_back("source", json::Value(static_cast<double>(source)));
  sink_->write(rec);
}

void RunObserver::trace_trust_strike(Seconds t, NodeId node, NodeId source,
                                     const char* kind) {
  if (!sink_ || !sink_->sampled(RecordKind::kTrustStrike)) return;
  json::Object rec;
  rec.emplace_back("type", json::Value("trust-strike"));
  rec.emplace_back("t", json::Value(t));
  rec.emplace_back("node", json::Value(static_cast<double>(node)));
  rec.emplace_back("source", json::Value(static_cast<double>(source)));
  rec.emplace_back("kind", json::Value(kind));
  sink_->write(rec);
}

void RunObserver::trace_quarantine(Seconds t, NodeId node, NodeId source,
                                   const char* phase) {
  if (!sink_ || !sink_->sampled(RecordKind::kQuarantine)) return;
  json::Object rec;
  rec.emplace_back("type", json::Value("quarantine"));
  rec.emplace_back("t", json::Value(t));
  rec.emplace_back("node", json::Value(static_cast<double>(node)));
  rec.emplace_back("source", json::Value(static_cast<double>(source)));
  rec.emplace_back("phase", json::Value(phase));
  sink_->write(rec);
}

void RunObserver::trace_shed(Seconds t, NodeId node, std::uint32_t depth) {
  if (!sink_ || !sink_->sampled(RecordKind::kQueryShed)) return;
  json::Object rec;
  rec.emplace_back("type", json::Value("query-shed"));
  rec.emplace_back("t", json::Value(t));
  rec.emplace_back("node", json::Value(static_cast<double>(node)));
  rec.emplace_back("depth", json::Value(static_cast<double>(depth)));
  sink_->write(rec);
}

void RunObserver::trace_ad_round(Seconds t, NodeId node, std::uint32_t emitted,
                                 std::uint32_t spilled, Bytes bytes) {
  if (!sink_ || !sink_->sampled(RecordKind::kAdRound)) return;
  json::Object rec;
  rec.emplace_back("type", json::Value("ad-round"));
  rec.emplace_back("t", json::Value(t));
  rec.emplace_back("node", json::Value(static_cast<double>(node)));
  rec.emplace_back("emitted", json::Value(static_cast<double>(emitted)));
  rec.emplace_back("spilled", json::Value(static_cast<double>(spilled)));
  rec.emplace_back("bytes", json::Value(static_cast<double>(bytes)));
  sink_->write(rec);
}

void RunObserver::finalize(Seconds t_end) {
  if (cfg_.counters_out == nullptr) return;
  // Emit any cadence boundaries the engine crossed without events after
  // them, then the final cumulative snapshot and per-node rows.
  maybe_snapshot(t_end);
  write_snapshot(t_end);
  for (auto& row : counters_.node_rows()) {
    *cfg_.counters_out << json::dump_compact(row) << '\n';
  }
}

void RunObserver::maybe_snapshot(Seconds t) {
  if (cfg_.counters_out == nullptr) return;
  while (t >= next_snapshot_) {
    write_snapshot(next_snapshot_);
    next_snapshot_ += cfg_.snapshot_period;
  }
}

void RunObserver::write_snapshot(Seconds t) {
  json::Object rec;
  rec.emplace_back("type", json::Value("counters"));
  rec.emplace_back("t", json::Value(t));
  for (auto& [k, v] : counters_.snapshot()) {
    rec.emplace_back(k, std::move(v));
  }
  *cfg_.counters_out << json::dump_compact(json::Value(rec)) << '\n';
}

}  // namespace asap::obs
