// Counter registry for the observability layer.
//
// Two counter families, both plain uint64 tallies:
//
//  * per traffic category (sim::Traffic): ledger deposits and bytes, plus
//    message drops split by cause — TTL expiry, transmission loss,
//    duplicate suppression, offline (liveness) skips;
//  * per node: advertisement-cache outcomes (ads stored / evicted /
//    invalidated) and confirmation round-trip outcomes (confirms sent /
//    positive / timed out). Global totals are kept alongside so snapshots
//    do not have to walk every node.
//
// The registry is passive storage — it never touches simulation state —
// and everything here is deterministic given a deterministic run.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"
#include "sim/bandwidth.hpp"

namespace asap::obs {

/// Tallies for one traffic category.
struct CategoryCounters {
  std::uint64_t deposits = 0;  ///< ledger deposits (messages / chunks)
  std::uint64_t bytes = 0;
  std::uint64_t drops_ttl = 0;
  std::uint64_t drops_loss = 0;
  std::uint64_t drops_duplicate = 0;
  std::uint64_t drops_offline = 0;
  /// Paid-for sends to crashed-but-undetected nodes (fault layer).
  std::uint64_t drops_dead = 0;

  bool any() const {
    return (deposits | bytes | drops_ttl | drops_loss | drops_duplicate |
            drops_offline | drops_dead) != 0;
  }
};

/// Per-node protocol tallies (ASAP family only; baselines keep no caches
/// and send no confirmations, so their rows stay zero).
struct NodeCounters {
  std::uint64_t ads_stored = 0;
  std::uint64_t ads_evicted = 0;
  std::uint64_t ads_invalidated = 0;
  std::uint64_t confirms_sent = 0;
  std::uint64_t confirms_positive = 0;
  std::uint64_t confirms_timed_out = 0;
  /// Confirm retry attempts (fault-hardening; 0 unless retries are on).
  std::uint64_t confirm_retries = 0;
  /// Ads evicted as stale after consecutive confirm timeouts.
  std::uint64_t stale_evictions = 0;
  /// Trust strikes recorded at this cacher (defense layer; 0 unless
  /// trust scoring is on).
  std::uint64_t trust_strikes = 0;
  /// Sources this cacher pushed into quarantine.
  std::uint64_t quarantines = 0;
  /// Queries shed at this node by overload protection.
  std::uint64_t queries_shed = 0;

  bool any() const {
    return (ads_stored | ads_evicted | ads_invalidated | confirms_sent |
            confirms_positive | confirms_timed_out | confirm_retries |
            stale_evictions | trust_strikes | quarantines | queries_shed) !=
           0;
  }
};

class CounterRegistry {
 public:
  void count_deposit(sim::Traffic category, Bytes bytes) {
    auto& c = categories_[static_cast<std::size_t>(category)];
    ++c.deposits;
    c.bytes += bytes;
  }
  void count_drop_ttl(sim::Traffic category) {
    ++categories_[static_cast<std::size_t>(category)].drops_ttl;
  }
  void count_drop_loss(sim::Traffic category) {
    ++categories_[static_cast<std::size_t>(category)].drops_loss;
  }
  void count_drop_duplicate(sim::Traffic category) {
    ++categories_[static_cast<std::size_t>(category)].drops_duplicate;
  }
  void count_drop_offline(sim::Traffic category) {
    ++categories_[static_cast<std::size_t>(category)].drops_offline;
  }
  void count_drop_dead(sim::Traffic category) {
    ++categories_[static_cast<std::size_t>(category)].drops_dead;
  }

  void count_ad_stored(NodeId node) {
    ++node_row(node).ads_stored;
    ++totals_.ads_stored;
  }
  void count_ad_evicted(NodeId node) {
    ++node_row(node).ads_evicted;
    ++totals_.ads_evicted;
  }
  void count_ad_invalidated(NodeId node) {
    ++node_row(node).ads_invalidated;
    ++totals_.ads_invalidated;
  }
  void count_confirm_sent(NodeId node) {
    ++node_row(node).confirms_sent;
    ++totals_.confirms_sent;
  }
  void count_confirm_positive(NodeId node) {
    ++node_row(node).confirms_positive;
    ++totals_.confirms_positive;
  }
  void count_confirm_timed_out(NodeId node) {
    ++node_row(node).confirms_timed_out;
    ++totals_.confirms_timed_out;
  }
  void count_confirm_retry(NodeId node) {
    ++node_row(node).confirm_retries;
    ++totals_.confirm_retries;
  }
  void count_stale_evicted(NodeId node) {
    ++node_row(node).stale_evictions;
    ++totals_.stale_evictions;
  }
  void count_trust_strike(NodeId node) {
    ++node_row(node).trust_strikes;
    ++totals_.trust_strikes;
  }
  void count_quarantine_enter(NodeId node) {
    ++node_row(node).quarantines;
    ++totals_.quarantines;
  }
  void count_query_shed(NodeId node) {
    ++node_row(node).queries_shed;
    ++totals_.queries_shed;
  }
  void count_fault_injected() { ++faults_injected_; }

  std::uint64_t faults_injected() const { return faults_injected_; }

  const CategoryCounters& category(sim::Traffic t) const {
    return categories_[static_cast<std::size_t>(t)];
  }
  const NodeCounters& totals() const { return totals_; }
  /// Per-node rows; only nodes touched by a counted event have rows.
  const std::vector<NodeCounters>& nodes() const { return per_node_; }

  /// Cumulative snapshot as a JSON object: per-category tallies (zero-only
  /// categories elided) plus the global ad/confirm totals.
  json::Object snapshot() const;

  /// Per-node JSON rows for nodes with at least one nonzero counter.
  json::Array node_rows() const;

 private:
  NodeCounters& node_row(NodeId node) {
    if (per_node_.size() <= static_cast<std::size_t>(node)) {
      per_node_.resize(static_cast<std::size_t>(node) + 1);
    }
    return per_node_[static_cast<std::size_t>(node)];
  }

  std::array<CategoryCounters, sim::kTrafficCount> categories_{};
  NodeCounters totals_{};
  std::uint64_t faults_injected_ = 0;
  std::vector<NodeCounters> per_node_;
};

}  // namespace asap::obs
