#include "obs/counters.hpp"

namespace asap::obs {

namespace {

double n(std::uint64_t v) { return static_cast<double>(v); }

json::Object category_to_json(const CategoryCounters& c) {
  json::Object out;
  out.emplace_back("deposits", json::Value(n(c.deposits)));
  out.emplace_back("bytes", json::Value(n(c.bytes)));
  out.emplace_back("drops_ttl", json::Value(n(c.drops_ttl)));
  out.emplace_back("drops_loss", json::Value(n(c.drops_loss)));
  out.emplace_back("drops_duplicate", json::Value(n(c.drops_duplicate)));
  out.emplace_back("drops_offline", json::Value(n(c.drops_offline)));
  out.emplace_back("drops_dead", json::Value(n(c.drops_dead)));
  return out;
}

}  // namespace

json::Object CounterRegistry::snapshot() const {
  json::Object categories;
  for (std::size_t i = 0; i < sim::kTrafficCount; ++i) {
    if (!categories_[i].any()) continue;
    categories.emplace_back(sim::traffic_name(static_cast<sim::Traffic>(i)),
                            json::Value(category_to_json(categories_[i])));
  }

  json::Object ads;
  ads.emplace_back("stored", json::Value(n(totals_.ads_stored)));
  ads.emplace_back("evicted", json::Value(n(totals_.ads_evicted)));
  ads.emplace_back("invalidated", json::Value(n(totals_.ads_invalidated)));

  json::Object confirms;
  confirms.emplace_back("sent", json::Value(n(totals_.confirms_sent)));
  confirms.emplace_back("positive", json::Value(n(totals_.confirms_positive)));
  confirms.emplace_back("timed_out",
                        json::Value(n(totals_.confirms_timed_out)));
  confirms.emplace_back("retries", json::Value(n(totals_.confirm_retries)));

  json::Object faults;
  faults.emplace_back("injected", json::Value(n(faults_injected_)));
  faults.emplace_back("stale_evictions",
                      json::Value(n(totals_.stale_evictions)));
  faults.emplace_back("trust_strikes", json::Value(n(totals_.trust_strikes)));
  faults.emplace_back("quarantines", json::Value(n(totals_.quarantines)));
  faults.emplace_back("queries_shed", json::Value(n(totals_.queries_shed)));

  json::Object out;
  out.emplace_back("categories", json::Value(std::move(categories)));
  out.emplace_back("ads", json::Value(std::move(ads)));
  out.emplace_back("confirms", json::Value(std::move(confirms)));
  out.emplace_back("faults", json::Value(std::move(faults)));
  return out;
}

json::Array CounterRegistry::node_rows() const {
  json::Array out;
  for (std::size_t i = 0; i < per_node_.size(); ++i) {
    const NodeCounters& c = per_node_[i];
    if (!c.any()) continue;
    json::Object row;
    row.emplace_back("type", json::Value(std::string("node-counters")));
    row.emplace_back("node", json::Value(static_cast<double>(i)));
    row.emplace_back("ads_stored", json::Value(n(c.ads_stored)));
    row.emplace_back("ads_evicted", json::Value(n(c.ads_evicted)));
    row.emplace_back("ads_invalidated", json::Value(n(c.ads_invalidated)));
    row.emplace_back("confirms_sent", json::Value(n(c.confirms_sent)));
    row.emplace_back("confirms_positive", json::Value(n(c.confirms_positive)));
    row.emplace_back("confirms_timed_out",
                     json::Value(n(c.confirms_timed_out)));
    row.emplace_back("confirm_retries", json::Value(n(c.confirm_retries)));
    row.emplace_back("stale_evictions", json::Value(n(c.stale_evictions)));
    row.emplace_back("trust_strikes", json::Value(n(c.trust_strikes)));
    row.emplace_back("quarantines", json::Value(n(c.quarantines)));
    row.emplace_back("queries_shed", json::Value(n(c.queries_shed)));
    out.push_back(json::Value(std::move(row)));
  }
  return out;
}

}  // namespace asap::obs
