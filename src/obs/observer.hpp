// RunObserver — the concrete observability hub for one simulation run.
//
// Implements sim::Observer (engine events + ledger deposits) and adds the
// richer protocol-level hooks the kernels and protocols call through
// Ctx::obs: message-drop causes, advertisement-cache outcomes,
// confirmation round trips, and trace spans for query lifecycle, ad
// dissemination and churn transitions.
//
// Passivity contract (sim/observe.hpp): nothing in here schedules events,
// draws randomness, or mutates simulation state. The observer only
// accumulates counters and appends JSONL lines; run digests are
// bit-identical with and without it (tests/harness/observability_test.cpp).
//
// Counter snapshots ride on engine-event time, which is monotonic; ledger
// deposits may carry future timestamps (the hybrid event model expands
// per-hop propagation inline, DESIGN.md §3), so a snapshot at cadence
// boundary T reports every deposit *recorded* by the time the engine clock
// first reached T — including in-flight bytes stamped later than T.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>

#include "common/types.hpp"
#include "obs/counters.hpp"
#include "obs/trace_sink.hpp"
#include "sim/bandwidth.hpp"
#include "sim/observe.hpp"

namespace asap::obs {

struct ObsConfig {
  std::ostream* trace_out = nullptr;     ///< JSONL trace stream; not owned.
  std::uint64_t trace_sample = 1;        ///< keep every Nth record per kind.
  std::ostream* counters_out = nullptr;  ///< JSONL snapshot stream; not owned.
  Seconds snapshot_period = 60.0;        ///< virtual-time snapshot cadence.
};

class RunObserver final : public sim::Observer {
 public:
  explicit RunObserver(const ObsConfig& cfg);

  // --- sim::Observer -------------------------------------------------------
  void on_engine_event(Seconds t) override;
  void on_ledger_deposit(Seconds t, sim::Traffic category,
                         Bytes bytes) override;

  // --- kernel hooks: message drops by cause --------------------------------
  void on_drop_ttl(sim::Traffic category) {
    counters_.count_drop_ttl(category);
  }
  void on_drop_loss(sim::Traffic category) {
    counters_.count_drop_loss(category);
  }
  void on_drop_duplicate(sim::Traffic category) {
    counters_.count_drop_duplicate(category);
  }
  void on_drop_offline(sim::Traffic category) {
    counters_.count_drop_offline(category);
  }
  void on_drop_dead(sim::Traffic category) {
    counters_.count_drop_dead(category);
  }

  // --- protocol hooks: ad-cache and confirmation outcomes ------------------
  void on_ad_stored(NodeId node) { counters_.count_ad_stored(node); }
  void on_ad_evicted(NodeId node) { counters_.count_ad_evicted(node); }
  void on_ad_invalidated(NodeId node) { counters_.count_ad_invalidated(node); }
  void on_confirm_sent(NodeId node) { counters_.count_confirm_sent(node); }
  void on_confirm_positive(NodeId node) {
    counters_.count_confirm_positive(node);
  }
  void on_confirm_timed_out(NodeId node) {
    counters_.count_confirm_timed_out(node);
  }
  void on_confirm_retry(NodeId node) { counters_.count_confirm_retry(node); }
  void on_stale_evicted(NodeId node) { counters_.count_stale_evicted(node); }

  // --- defense-layer hooks (trust scoring / overload protection) -----------
  void on_trust_strike(NodeId node) { counters_.count_trust_strike(node); }
  void on_quarantine_enter(NodeId node) {
    counters_.count_quarantine_enter(node);
  }
  void on_quarantine_exit(NodeId /*node*/) {}  // traced, not tallied
  void on_query_shed(NodeId node) { counters_.count_query_shed(node); }

  // --- fault-layer hooks ---------------------------------------------------
  void on_fault_injected() { counters_.count_fault_injected(); }

  // --- trace spans ---------------------------------------------------------
  /// One completed query (issued at `t`): outcome, latency and cost.
  void trace_query(Seconds t, NodeId node, bool success, bool local_hit,
                   Seconds response_s, Bytes bytes, std::uint64_t messages,
                   std::uint32_t results);

  /// One advertisement dissemination from `node`: `kind` is the ad kind
  /// name ("full" / "patch" / "refresh"), with the kernel's message and
  /// byte totals for the whole dissemination.
  void trace_ad(Seconds t, NodeId node, const char* kind,
                std::uint64_t messages, Bytes bytes);

  /// One confirmation round trip from `node` about `source`'s content;
  /// `outcome` is "positive", "negative" or "timeout".
  void trace_confirm(Seconds t, NodeId node, NodeId source,
                     const char* outcome);

  /// One churn transition of `node`; `transition` is "join", "leave" or
  /// "rejoin".
  void trace_churn(Seconds t, NodeId node, const char* transition);

  /// One fault-layer injection; `kind` is "crash", "detect", "partition",
  /// "heal", "burst" or "burst-end". Window events carry kInvalidNode.
  void trace_fault(Seconds t, const char* kind, NodeId node);

  /// One confirm retry: `node` re-asks `source` (attempt >= 2).
  void trace_retry(Seconds t, NodeId node, NodeId source,
                   std::uint32_t attempt);

  /// `node` evicted `source`'s ad as stale after consecutive timeouts.
  void trace_stale_evict(Seconds t, NodeId node, NodeId source);

  /// One trust strike at cacher `node` against ad source `source`;
  /// `kind` is "false-positive" or "timeout".
  void trace_trust_strike(Seconds t, NodeId node, NodeId source,
                          const char* kind);

  /// `node` quarantined (or re-admitted) `source`'s ads; `phase` is
  /// "enter" or "exit".
  void trace_quarantine(Seconds t, NodeId node, NodeId source,
                        const char* phase);

  /// Overload protection at `node` shed a query at pending depth `depth`.
  void trace_shed(Seconds t, NodeId node, std::uint32_t depth);

  /// One adaptive-scheduler ad round at `node`: how many scheduler items
  /// were emitted into the packed frame, how many spilled past the byte
  /// budget to a later round, and the frame's total dissemination bytes.
  void trace_ad_round(Seconds t, NodeId node, std::uint32_t emitted,
                      std::uint32_t spilled, Bytes bytes);

  /// Flushes the final counter snapshot (stamped `t_end`) plus per-node
  /// counter rows. Call once, after the run completes.
  void finalize(Seconds t_end);

  const CounterRegistry& counters() const { return counters_; }
  std::uint64_t trace_records_written() const {
    return sink_ ? sink_->records_written() : 0;
  }

 private:
  void maybe_snapshot(Seconds t);
  void write_snapshot(Seconds t);

  ObsConfig cfg_;
  CounterRegistry counters_;
  std::optional<TraceSink> sink_;
  Seconds next_snapshot_;
};

}  // namespace asap::obs
