// Phase profiler: wall-clock time and event throughput per simulation
// phase (world build, warm-up dissemination, query replay, ...).
//
// Wall-clock readings are inherently non-deterministic, so the profiler
// never feeds anything back into the run — it only annotates results.json
// (`profile` block) for performance triage of the experiment matrix.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace asap::obs {

struct PhaseProfile {
  std::string phase;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;  ///< engine events executed during the phase
  double events_per_sec = 0.0;  ///< 0 when the phase finished in < 1us
};

json::Object phase_profile_to_json(const PhaseProfile& p);

class PhaseProfiler {
 public:
  /// Starts a phase, closing any phase still open. `events_now` is the
  /// engine's cumulative executed-event count (0 for non-engine phases
  /// such as world build).
  void begin(std::string phase, std::uint64_t events_now = 0);

  /// Closes the open phase; no-op when none is open.
  void end(std::uint64_t events_now = 0);

  const std::vector<PhaseProfile>& phases() const { return phases_; }

  json::Array to_json() const;

 private:
  using Clock = std::chrono::steady_clock;

  std::vector<PhaseProfile> phases_;
  Clock::time_point open_start_{};
  std::uint64_t open_events_ = 0;
  bool open_ = false;
};

}  // namespace asap::obs
