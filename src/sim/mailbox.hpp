// Per-(src, dst) ordered mailboxes for cross-shard event staging
// (DESIGN.md §14).
//
// When an event on shard `src` schedules onto shard `dst != src`, the
// item cannot be pushed into dst's queue directly: inside a parallel
// window dst's queue is owned by another thread, and even in canonical
// (serial) execution routing through the same staging path keeps the two
// modes structurally identical. Instead the item is appended to the
// (src, dst) box — a plain vector, so the sender's schedule order is
// preserved — and the owner of the barrier (or the serial step loop)
// later flushes boxes into the destination queues.
//
// Thread-safety contract: box (src, dst) is written only by the thread
// executing shard src; flush_* runs only at a synchronization point
// (after the policy barrier, or between events in canonical mode), when
// no shard thread is running. No locks anywhere — the discipline is
// ownership, and the TSan CI job holds it to that.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace asap::sim {

template <typename Item>
class MailboxGrid {
 public:
  /// Drops all boxes and resizes the grid to `shards` x `shards`.
  void reset(std::size_t shards) {
    shards_ = shards;
    boxes_.clear();
    boxes_.resize(shards * shards);
  }

  std::size_t shards() const { return shards_; }

  /// The (src, dst) box. Append-only from shard src's thread.
  std::vector<Item>& box(std::size_t src, std::size_t dst) {
    return boxes_[src * shards_ + dst];
  }

  /// Total staged items (diagnostics; synchronization points only).
  std::size_t staged() const {
    std::size_t n = 0;
    for (const auto& b : boxes_) n += b.size();
    return n;
  }

  /// Moves every item staged by `src` out through `sink(dst, item)`,
  /// preserving per-box send order. Canonical mode calls this after each
  /// event; the capacity of drained boxes is kept for the next event.
  template <typename Sink>
  void flush_src(std::size_t src, Sink&& sink) {
    for (std::size_t dst = 0; dst < shards_; ++dst) {
      auto& b = box(src, dst);
      for (Item& it : b) sink(dst, std::move(it));
      b.clear();
    }
  }

  /// Flushes the whole grid (the window barrier), src-major.
  template <typename Sink>
  void flush_all(Sink&& sink) {
    for (std::size_t src = 0; src < shards_; ++src) {
      flush_src(src, sink);
    }
  }

 private:
  std::size_t shards_ = 0;
  std::vector<std::vector<Item>> boxes_;
};

}  // namespace asap::sim
