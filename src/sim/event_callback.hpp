// Allocation-free event callbacks (ISSUE 6 / DESIGN.md §12).
//
// Every scheduled event used to carry a std::function<void()>: one heap
// allocation per event for any capture beyond ~16 bytes, plus an
// indirect call through the function's manager machinery. EventCallback
// replaces it with a small-buffer-optimized, move-only callable tuned for
// the event loop:
//
//   * closures up to kInlineSize bytes (the common case: a `this` pointer
//     and a node id or two) live inside the queue Item itself — zero
//     allocations, and executing an event touches exactly the cache lines
//     the queue already loaded;
//   * larger closures are placed in a block from the Engine's SlabPool
//     (slab_pool.hpp): a pointer pop on schedule, a pointer push on
//     completion, never the global allocator;
//   * one static ops table per closure type (invoke/destroy/relocate)
//     instead of std::function's type-erasure manager calls.
//
// The layout is chosen so sizeof(EventCallback) == 48 and an Engine queue
// Item (time + seq + callback) is exactly 64 bytes — one cache line.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "common/error.hpp"
#include "sim/slab_pool.hpp"

namespace asap::sim {

class EventCallback {
 public:
  /// Captures up to this many bytes are stored inline (no allocation).
  static constexpr std::size_t kInlineSize = 40;
  /// Inline storage is pointer-aligned; closures needing more alignment
  /// (rare — over-aligned SIMD members) take the pool path, whose blocks
  /// carry new-expression alignment.
  static constexpr std::size_t kInlineAlign = alignof(void*);

  EventCallback() noexcept : ops_(nullptr) {}

  /// Wraps `f`, drawing from `pool` only when the closure exceeds the
  /// inline buffer. `pool` must outlive the callback.
  template <typename F>
  EventCallback(SlabPool& pool, F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>,
                  "event callbacks take no arguments and return void");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned closures are not supported");
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= kInlineAlign) {
      ::new (static_cast<void*>(storage_.buf)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      void* block = pool.allocate(sizeof(Fn));
      ::new (block) Fn(std::forward<F>(f));
      storage_.heap.obj = block;
      storage_.heap.pool = &pool;
      storage_.heap.bytes = sizeof(Fn);
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventCallback(EventCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
    }
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
      }
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { reset(); }

  void operator()() {
    ASAP_DCHECK(ops_ != nullptr);
    ops_->invoke(storage_);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when the closure lives in the inline buffer (diagnostics/tests).
  bool inlined() const { return ops_ != nullptr && ops_->inline_storage; }

  /// Hints the prefetcher at an out-of-line closure's block. The engine
  /// issues this for the *next* event while the current one runs: a
  /// pool-backed closure scheduled long ago is guaranteed cold, and the
  /// running callback's work hides most of the miss latency.
  void prefetch() const {
    if (ops_ != nullptr && !ops_->inline_storage) {
      __builtin_prefetch(storage_.heap.obj);
    }
  }

  /// Batch variant targeting L2 (locality hint 2): used for events a few
  /// dozen pops away, where an L1 line would be evicted again before use
  /// and a burst of full-latency prefetches would saturate the miss
  /// buffers anyway.
  void prefetch_far() const {
    if (ops_ != nullptr && !ops_->inline_storage) {
      __builtin_prefetch(storage_.heap.obj, 0, 2);
    }
  }

 private:
  union Storage {
    /// Out-of-line closures: block pointer plus what deallocate() needs.
    struct {
      void* obj;
      SlabPool* pool;
      std::size_t bytes;
    } heap;
    alignas(kInlineAlign) std::byte buf[kInlineSize];
  };

  struct Ops {
    void (*invoke)(Storage& s);
    void (*destroy)(Storage& s);
    /// Move the closure from one Storage to another and leave the source
    /// destroyed (inline) or disowned (heap). nullptr marks a trivially
    /// relocatable closure: moving is a raw byte copy of the Storage.
    /// Queue Items relocate constantly (heap sifts, rung spreads, bottom
    /// sorts), and an indirect call per move is measurably slower than
    /// the inlined memcpy — std::function wins exactly there, since its
    /// move never calls the manager. Pool-backed closures are always
    /// trivial to relocate (ownership is three words).
    void (*relocate)(Storage& from, Storage& to);
    bool inline_storage;
  };

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// Takes over `other`'s closure; ops_ must already equal other.ops_.
  void relocate_from(EventCallback& other) noexcept {
    if (ops_->relocate == nullptr) {
      std::memcpy(static_cast<void*>(&storage_), &other.storage_,
                  sizeof(Storage));
    } else {
      ops_->relocate(other.storage_, storage_);
    }
    other.ops_ = nullptr;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](Storage& s) { (*std::launder(reinterpret_cast<Fn*>(s.buf)))(); },
      [](Storage& s) { std::launder(reinterpret_cast<Fn*>(s.buf))->~Fn(); },
      std::is_trivially_copyable_v<Fn>
          ? nullptr
          : +[](Storage& from, Storage& to) {
              Fn* src = std::launder(reinterpret_cast<Fn*>(from.buf));
              ::new (static_cast<void*>(to.buf)) Fn(std::move(*src));
              src->~Fn();
            },
      true,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](Storage& s) { (*static_cast<Fn*>(s.heap.obj))(); },
      [](Storage& s) {
        static_cast<Fn*>(s.heap.obj)->~Fn();
        s.heap.pool->deallocate(s.heap.obj, s.heap.bytes);
      },
      nullptr,  // the block stays put; ownership is a trivial byte copy
      false,
  };

  const Ops* ops_;
  Storage storage_;
};

static_assert(sizeof(EventCallback) == 48,
              "EventCallback layout drifted; queue Items are sized to be "
              "one cache line (see engine.hpp)");

}  // namespace asap::sim
