// Run-time invariant auditing and deterministic run digests.
//
// The paper's quantitative claims (Figs 4-10) rest entirely on the
// simulator's bookkeeping, so the harness can cross-check it while it
// runs (DESIGN.md §8):
//
//   * SimAuditor — an opt-in observer wired into the Engine, the
//     BandwidthLedger and the protocols. It verifies conservation
//     invariants: virtual time never moves backwards; every byte
//     recorded at a logical send site is eventually deposited into the
//     ledger (and nothing is deposited twice); every content
//     confirmation request is balanced by a reply or an explicit
//     dead-source record; ad caches never exceed their configured
//     capacity; no message is delivered to a node the liveness model
//     says is offline. Hooks go through the ASAP_AUDIT_HOOK macro — a
//     null-pointer test when auditing is off, so the paper-scale hot
//     paths keep their speed.
//
//   * Fnv64 — a 64-bit FNV-1a accumulator. The Engine folds every
//     executed event's (time, seq) into one digest and the ledger folds
//     every deposit's (time, category, bytes) into another; the harness
//     combines both into RunResult::digest. Two runs of the same World
//     and seed must produce bit-identical digests, which turns
//     nondeterminism regressions (unordered-container iteration, RNG
//     misuse, cross-thread ordering) into plain test failures.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace asap::sim {

enum class Traffic : std::uint8_t;  // bandwidth.hpp
class BandwidthLedger;

/// 64-bit FNV-1a over a stream of 64-bit words.
class Fnv64 {
 public:
  static constexpr std::uint64_t kOffset = 14695981039346656037ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;

  void absorb(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ = (h_ ^ (v & 0xFF)) * kPrime;
      v >>= 8;
    }
  }
  void absorb(Seconds t) { absorb(std::bit_cast<std::uint64_t>(t)); }

  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = kOffset;
};

/// Combines the engine and ledger digests into the run digest.
inline std::uint64_t combine_digests(std::uint64_t engine_digest,
                                     std::uint64_t ledger_digest) {
  Fnv64 d;
  d.absorb(engine_digest);
  d.absorb(ledger_digest);
  return d.value();
}

/// Opt-in run-time invariant checker (see file comment). One auditor per
/// simulation run; all hooks are cheap counters, so an audited run stays
/// within a few percent of an unaudited one.
class SimAuditor {
 public:
  // Upper bound on traffic categories; checked against kTrafficCount in
  // audit.cpp (bandwidth.hpp is only forward-declared here).
  static constexpr std::size_t kMaxCategories = 16;

  struct Summary {
    std::uint64_t events = 0;            // engine events executed
    std::uint64_t sends = 0;             // logical transmissions recorded
    std::uint64_t deposits = 0;          // ledger deposits observed
    std::uint64_t deliveries = 0;        // visit-callback deliveries
    std::uint64_t confirm_requests = 0;
    std::uint64_t confirm_replies = 0;
    std::uint64_t confirm_timeouts = 0;  // dead-source records
    std::uint64_t violations = 0;
  };

  // --- Engine hooks ------------------------------------------------------
  /// Called for every executed event, before the clock advances to `t`.
  void on_event(Seconds t);

  // --- BandwidthLedger hooks ---------------------------------------------
  void on_deposit(Seconds t, Traffic category, Bytes bytes);

  // --- Protocol / kernel hooks -------------------------------------------
  /// One logical transmission of `bytes` in `category`. Every send must be
  /// matched by exactly one ledger deposit of the same size.
  void on_send(Traffic category, Bytes bytes);
  /// A message handed to a node's visit callback; `online` is the liveness
  /// model's verdict for that node at delivery time.
  void on_delivery(bool online);
  void on_confirm_request();
  void on_confirm_reply();
  /// The requester observed the confirm target dead (explicit loss record).
  void on_confirm_timeout();
  /// Ad-cache occupancy right after an insert.
  void on_cache_occupancy(std::size_t size, std::uint32_t capacity);

  /// Cross-checks the aggregate invariants (send/deposit conservation per
  /// category against the ledger's own totals, confirm-round balance).
  /// Call exactly once, after the engine drains.
  void finalize(const BandwidthLedger& ledger);

  bool ok() const { return summary_.violations == 0; }
  const Summary& summary() const { return summary_; }
  /// First few violation messages (each counted in summary().violations).
  const std::vector<std::string>& violations() const { return violations_; }

 private:
  void violate(std::string msg);

  Summary summary_{};
  bool finalized_ = false;
  bool have_time_ = false;
  Seconds last_time_ = 0.0;
  std::array<Bytes, kMaxCategories> sent_bytes_{};
  std::array<Bytes, kMaxCategories> deposited_bytes_{};
  std::vector<std::string> violations_;
};

/// Expands to a null-checked hook invocation: a single predictable branch
/// when `aud` is null (auditing off), the real check when it is set.
#define ASAP_AUDIT_HOOK(aud, call) \
  do {                             \
    if (aud) (aud)->call;          \
  } while (0)

/// Build-time switch (CMake option ASAP_AUDIT): when ON, harness runs
/// audit by default, so the whole tier-1 suite exercises the invariants.
#ifdef ASAP_AUDIT_FORCE_ON
inline constexpr bool kAuditDefaultOn = true;
#else
inline constexpr bool kAuditDefaultOn = false;
#endif

}  // namespace asap::sim
