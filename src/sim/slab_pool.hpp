// Slab/pool allocator for short-lived simulation objects.
//
// The event loop churns through millions of small, same-shaped blocks:
// oversized event closures (event_callback.hpp) and wire-message payload
// buffers. Hitting the global allocator for each one costs a malloc/free
// pair per event — measured as the dominant term once the AdCache fast
// path landed (ISSUE 6). A SlabPool instead carves fixed-size blocks out
// of geometrically-growing slabs and recycles them through per-class
// free lists: allocate/deallocate are a pointer pop/push, no locks, no
// per-block headers.
//
// Size classes are powers of two from 64 B to 4 KiB; larger requests fall
// through to operator new (rare by construction — a closure that big is a
// design smell the bench would surface). The pool is intentionally
// single-threaded: one pool per Engine, matching the one-engine-per-trial
// execution model (matrix trials parallelize across engines, never within
// one — DESIGN.md §12).
//
// Memory is returned to the system only on destruction. Freed blocks are
// reused in LIFO order, which keeps the hot block set small and
// cache-resident under the steady-state schedule/execute cycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <new>
#include <vector>

#include "common/error.hpp"

namespace asap::sim {

class SlabPool {
 public:
  static constexpr std::size_t kMinBlock = 64;
  static constexpr std::size_t kMaxBlock = 4096;
  /// Blocks are aligned for any object with fundamental alignment.
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;
  ~SlabPool() = default;  // slabs_ releases everything; free lists die with it

  /// Allocates at least `n` bytes. Never returns nullptr (throws
  /// std::bad_alloc on exhaustion, like operator new).
  void* allocate(std::size_t n) {
    const std::size_t cls = size_class(n);
    if (cls >= kNumClasses) return ::operator new(n);  // oversize fallback
    FreeNode*& head = free_[cls];
    if (head == nullptr) refill(cls);
    FreeNode* node = head;
    head = node->next;
    ++live_;
    return node;
  }

  /// Returns a block obtained from allocate(n). `n` must be the size the
  /// block was requested with (the usual sized-deallocate contract).
  void deallocate(void* p, std::size_t n) {
    if (p == nullptr) return;
    const std::size_t cls = size_class(n);
    if (cls >= kNumClasses) {
      ::operator delete(p);
      return;
    }
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_[cls];
    free_[cls] = node;
    ASAP_DCHECK(live_ > 0);
    --live_;
  }

  /// Blocks currently handed out (pooled classes only; diagnostics).
  std::size_t live_blocks() const { return live_; }
  /// Total bytes reserved from the system across all slabs.
  std::size_t reserved_bytes() const { return reserved_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  // Classes: 64, 128, 256, 512, 1024, 2048, 4096.
  static constexpr std::size_t kNumClasses = 7;

  static constexpr std::size_t class_size(std::size_t cls) {
    return kMinBlock << cls;
  }

  /// Smallest class whose blocks hold `n` bytes; kNumClasses when none do.
  static constexpr std::size_t size_class(std::size_t n) {
    std::size_t cls = 0;
    std::size_t size = kMinBlock;
    while (size < n) {
      size <<= 1;
      ++cls;
    }
    return cls;
  }

  void refill(std::size_t cls);

  FreeNode* free_[kNumClasses] = {};
  /// Slabs grow geometrically per class: 16 blocks, 32, 64, ... capped so
  /// one refill never reserves more than 256 KiB.
  std::uint32_t next_slab_blocks_[kNumClasses] = {};
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::size_t live_ = 0;
  std::size_t reserved_ = 0;
};

/// std::pmr adapter so standard containers — in particular wire-message
/// payload buffers (wire::Writer) — can draw their storage from a
/// SlabPool. The pool must outlive every container using the resource.
class SlabResource final : public std::pmr::memory_resource {
 public:
  explicit SlabResource(SlabPool& pool) : pool_(&pool) {}

 private:
  void* do_allocate(std::size_t bytes, std::size_t alignment) override {
    ASAP_REQUIRE(alignment <= SlabPool::kAlign,
                 "over-aligned slab pool request");
    return pool_->allocate(bytes);
  }
  void do_deallocate(void* p, std::size_t bytes, std::size_t) override {
    pool_->deallocate(p, bytes);
  }
  bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

  SlabPool* pool_;
};

}  // namespace asap::sim
