#include "sim/engine.hpp"

#include <algorithm>
#include <limits>

#include "exec/policy.hpp"
#include "sim/bandwidth.hpp"

namespace asap::sim {

namespace {

constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

/// Causal-key root: an arbitrary odd constant (driver-scheduled events
/// are children of this virtual root).
constexpr std::uint64_t kRootKey = 0x243F6A8885A308D3ULL;

/// Child key from (parent key, 1-based child index): a splitmix64-style
/// finalizer over their combination. Keys depend only on the event tree
/// — the same workload yields the same keys whatever the shard count or
/// thread interleaving, which is what lets window-parallel runs keep
/// bit-identical digests.
std::uint64_t causal_key(std::uint64_t parent, std::uint64_t child) {
  std::uint64_t x = parent + 0x9E3779B97F4A7C15ULL * child;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

thread_local Engine::ExecFrame* Engine::tls_frame_ = nullptr;

Engine::Engine(const EngineTuning& tuning) : tuning_(tuning) {
  const std::size_t n =
      tuning_.shards == 0 ? exec::hardware_lanes() : tuning_.shards;
  shards_.resize(n);
  for (auto& sh : shards_) {
    sh.queue.set_thresholds(tuning_.ladder_threshold, tuning_.heap_threshold);
  }
  mailboxes_.reset(n);
}

Engine::ExecFrame* Engine::active_frame() const {
  if (windowed_) {
    ExecFrame* f = tls_frame_;
    return (f != nullptr && f->engine == this) ? f : nullptr;
  }
  return frame_;
}

void Engine::schedule_impl(Seconds t, std::size_t dst, EventCallback cb) {
  ExecFrame* f = active_frame();
  ASAP_REQUIRE(std::isfinite(t), "event time must be finite");
  ASAP_REQUIRE(t >= (f != nullptr ? f->now : now_),
               "cannot schedule an event in the past");
  std::uint64_t key;
  if (tuning_.causal_keys) {
    key = f != nullptr ? causal_key(f->key, ++f->children)
                       : causal_key(kRootKey, ++root_children_);
  } else {
    key = next_seq_++;
  }
  Item item{t, key, std::move(cb)};
  if (f == nullptr || dst == f->shard) {
    // Driver-thread schedules and same-shard schedules go straight into
    // the destination queue (it is owned by this thread in both modes).
    shards_[dst].queue.push(std::move(item));
    return;
  }
  if (windowed_) {
    // Conservative-synchronization contract: inside a window a shard may
    // only reach another shard at or past the window end, i.e. the
    // workload's cross-partition latency must be >= the lookahead.
    ASAP_REQUIRE(t >= window_end_,
                 "cross-shard schedule lands inside the lookahead window");
  }
  mailboxes_.box(f->shard, dst).push_back(std::move(item));
}

std::size_t Engine::min_shard() {
  if (shards_.size() == 1) {
    return shards_[0].queue.empty() ? kNpos : 0;
  }
  std::size_t best = kNpos;
  const Item* best_front = nullptr;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Item* f = shards_[s].queue.front();
    if (f == nullptr) continue;
    if (best_front == nullptr || f->before(*best_front)) {
      best = s;
      best_front = f;
    }
  }
  return best;
}

std::size_t Engine::pending() const {
  std::size_t n = mailboxes_.staged();
  for (const auto& sh : shards_) n += sh.queue.size();
  return n;
}

void Engine::deposit(Traffic category, Bytes bytes) {
  ASAP_REQUIRE(ledger_ != nullptr,
               "Engine::deposit requires a ledger (set_ledger)");
  ExecFrame* f = active_frame();
  if (windowed_ && f != nullptr) {
    shards_[f->shard].deposits.push_back({f->now, f->key, category, bytes});
    return;
  }
  ledger_->deposit(f != nullptr ? f->now : now_, category, bytes);
}

bool Engine::step() {
  const std::size_t s = min_shard();
  if (s == kNpos) return false;
  Shard& sh = shards_[s];
  Item item = sh.queue.pop_front();
  // Warm the next event's out-of-line closure (if any) while this one
  // executes; purely a cache hint, so ordering and digests are untouched.
  if (const Item* next = sh.queue.front()) next->cb.prefetch();

  ASAP_DCHECK(item.time >= now_);
  digest_.absorb(item.time);
  digest_.absorb(item.seq);
  ASAP_AUDIT_HOOK(auditor_, on_event(item.time));
  ASAP_OBS_HOOK(observer_, on_engine_event(item.time));
  now_ = item.time;
  ++executed_;
  ExecFrame frame{this, s, item.time, item.seq, 0};
  frame_ = &frame;
  try {
    item.cb();
  } catch (...) {
    frame_ = nullptr;
    throw;
  }
  frame_ = nullptr;
  if (shards_.size() > 1) {
    // Canonical mode flushes the executing shard's staged cross-shard
    // sends before the next tournament pick, so the serial execution
    // order is exactly the single-queue engine's.
    mailboxes_.flush_src(s, [this](std::size_t dst, Item&& it) {
      shards_[dst].queue.push(std::move(it));
    });
  }
  return true;
}

void Engine::run_until(Seconds t_end) {
  for (;;) {
    const std::size_t s = min_shard();
    if (s == kNpos || shards_[s].queue.front()->time > t_end) break;
    step();
  }
  if (now_ < t_end) now_ = t_end;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_window_parallel(exec::Policy& policy, Seconds t_end,
                                 Seconds lookahead) {
  ASAP_REQUIRE(tuning_.causal_keys,
               "run_window_parallel requires EngineTuning::causal_keys");
  ASAP_REQUIRE(std::isfinite(t_end), "horizon must be finite");
  ASAP_REQUIRE(std::isfinite(lookahead) && lookahead > 0.0,
               "lookahead must be positive and finite");
  ASAP_REQUIRE(frame_ == nullptr && !windowed_,
               "window-parallel execution cannot start inside an event");
  const std::size_t n = shards_.size();
  for (;;) {
    const std::size_t s_min = min_shard();
    if (s_min == kNpos) break;
    const Seconds t_min = shards_[s_min].queue.front()->time;
    if (t_min > t_end) break;
    const Seconds w_end = t_min + lookahead;
    // FP guard: at extreme timescales t_min + lookahead can round back to
    // t_min, which would execute nothing and spin forever.
    ASAP_REQUIRE(w_end > t_min,
                 "lookahead too small to advance the window at this "
                 "timescale");
    window_end_ = w_end;
    windowed_ = true;
    try {
      policy.run(n, [&](std::size_t lane) {
        run_shard_window(lane, w_end, t_end);
      });
    } catch (...) {
      windowed_ = false;
      throw;
    }
    windowed_ = false;
    merge_window();
  }
  if (now_ < t_end) now_ = t_end;
}

void Engine::run_shard_window(std::size_t s, Seconds w_end, Seconds t_end) {
  Shard& sh = shards_[s];
  for (;;) {
    const Item* f = sh.queue.front();
    if (f == nullptr || f->time >= w_end || f->time > t_end) break;
    Item item = sh.queue.pop_front();
    sh.log.push_back({item.time, item.seq});
    ExecFrame frame{this, s, item.time, item.seq, 0};
    tls_frame_ = &frame;
    try {
      item.cb();
    } catch (...) {
      tls_frame_ = nullptr;
      throw;
    }
    tls_frame_ = nullptr;
  }
}

void Engine::merge_window() {
  const std::size_t n = shards_.size();
  // K-way merge of the per-shard window logs into the canonical
  // (time, key) stream: digest, auditor and observer all see exactly the
  // order a serial causal-keys run would have produced. Shard counts are
  // small (hardware lanes), so a linear tournament per record beats a
  // heap here.
  std::vector<std::size_t> idx(n, 0);
  for (;;) {
    std::size_t best = kNpos;
    for (std::size_t s = 0; s < n; ++s) {
      if (idx[s] >= shards_[s].log.size()) continue;
      if (best == kNpos) {
        best = s;
        continue;
      }
      const WindowRecord& r = shards_[s].log[idx[s]];
      const WindowRecord& b = shards_[best].log[idx[best]];
      if (r.time < b.time || (r.time == b.time && r.key < b.key)) best = s;
    }
    if (best == kNpos) break;
    const WindowRecord& r = shards_[best].log[idx[best]++];
    digest_.absorb(r.time);
    digest_.absorb(r.key);
    ASAP_AUDIT_HOOK(auditor_, on_event(r.time));
    ASAP_OBS_HOOK(observer_, on_engine_event(r.time));
    now_ = r.time;
    ++executed_;
  }
  for (auto& sh : shards_) sh.log.clear();

  // Staged ledger deposits replay in the same canonical order (each
  // deposit carries its event's (time, key); same-event deposits stay in
  // emission order because they are adjacent in one shard's stream).
  std::fill(idx.begin(), idx.end(), 0);
  for (;;) {
    std::size_t best = kNpos;
    for (std::size_t s = 0; s < n; ++s) {
      if (idx[s] >= shards_[s].deposits.size()) continue;
      if (best == kNpos) {
        best = s;
        continue;
      }
      const StagedDeposit& d = shards_[s].deposits[idx[s]];
      const StagedDeposit& b = shards_[best].deposits[idx[best]];
      if (d.time < b.time || (d.time == b.time && d.key < b.key)) best = s;
    }
    if (best == kNpos) break;
    const StagedDeposit& d = shards_[best].deposits[idx[best]++];
    ASAP_DCHECK(ledger_ != nullptr);
    ledger_->deposit(d.time, d.category, d.bytes);
  }
  for (auto& sh : shards_) sh.deposits.clear();

  // Barrier flush: staged cross-shard sends join their destination
  // queues before the next window opens.
  mailboxes_.flush_all([this](std::size_t dst, Item&& it) {
    shards_[dst].queue.push(std::move(it));
  });
}

}  // namespace asap::sim
