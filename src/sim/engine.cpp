#include "sim/engine.hpp"

namespace asap::sim {

namespace {
constexpr std::size_t kArity = 4;
}

void Engine::schedule_at(Seconds t, Callback cb) {
  ASAP_REQUIRE(t >= now_, "cannot schedule an event in the past");
  heap_.push_back(Item{t, next_seq_++, std::move(cb)});
  sift_up(heap_.size() - 1);
}

void Engine::sift_up(std::size_t i) {
  Item item = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!item.before(heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(item);
}

void Engine::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  Item item = std::move(heap_[i]);
  for (;;) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + kArity, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].before(heap_[best])) best = c;
    }
    if (!heap_[best].before(item)) break;
    heap_[i] = std::move(heap_[best]);
    i = best;
  }
  heap_[i] = std::move(item);
}

bool Engine::step() {
  if (heap_.empty()) return false;
  Item item = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);

  ASAP_DCHECK(item.time >= now_);
  digest_.absorb(item.time);
  digest_.absorb(item.seq);
  ASAP_AUDIT_HOOK(auditor_, on_event(item.time));
  ASAP_OBS_HOOK(observer_, on_engine_event(item.time));
  now_ = item.time;
  ++executed_;
  item.cb();
  return true;
}

void Engine::run_until(Seconds t_end) {
  while (!heap_.empty() && heap_.front().time <= t_end) {
    step();
  }
  if (now_ < t_end) now_ = t_end;
}

void Engine::run() {
  while (step()) {
  }
}

}  // namespace asap::sim
