#include "sim/engine.hpp"

#include <algorithm>

namespace asap::sim {

namespace {
constexpr std::size_t kArity = 4;
}

void Engine::push_event(Seconds t, EventCallback cb) {
  Item item{t, next_seq_++, std::move(cb)};
  if (use_ladder_) {
    ladder_.push(std::move(item));
    return;
  }
  heap_.push_back(std::move(item));
  sift_up(heap_.size() - 1);
  if (heap_.size() > tuning_.ladder_threshold) migrate_to_ladder();
}

void Engine::migrate_to_ladder() {
  ladder_.assign_unordered(std::move(heap_));
  heap_.clear();
  use_ladder_ = true;
}

void Engine::migrate_to_heap() {
  heap_ = ladder_.drain_unordered();
  use_ladder_ = false;
  const std::size_t n = heap_.size();
  if (n < 2) return;
  // Floyd heapify: sift down every internal node, last parent first.
  for (std::size_t i = (n - 2) / kArity + 1; i-- > 0;) {
    sift_down(i);
  }
}

const Engine::Item* Engine::front() {
  if (use_ladder_) return ladder_.peek();
  return heap_.empty() ? nullptr : &heap_.front();
}

Engine::Item Engine::pop_front() {
  if (use_ladder_) {
    Item item = ladder_.pop();
    if (ladder_.size() < tuning_.heap_threshold) migrate_to_heap();
    return item;
  }
  Item item = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return item;
}

void Engine::sift_up(std::size_t i) {
  Item item = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!item.before(heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(item);
}

void Engine::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  Item item = std::move(heap_[i]);
  for (;;) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + kArity, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].before(heap_[best])) best = c;
    }
    if (!heap_[best].before(item)) break;
    heap_[i] = std::move(heap_[best]);
    i = best;
  }
  heap_[i] = std::move(item);
}

bool Engine::step() {
  if (pending() == 0) return false;
  Item item = pop_front();
  // Warm the next event's out-of-line closure (if any) while this one
  // executes; purely a cache hint, so ordering and digests are untouched.
  if (const Item* next = front()) next->cb.prefetch();

  ASAP_DCHECK(item.time >= now_);
  digest_.absorb(item.time);
  digest_.absorb(item.seq);
  ASAP_AUDIT_HOOK(auditor_, on_event(item.time));
  ASAP_OBS_HOOK(observer_, on_engine_event(item.time));
  now_ = item.time;
  ++executed_;
  item.cb();
  return true;
}

void Engine::run_until(Seconds t_end) {
  for (const Item* next = front(); next != nullptr && next->time <= t_end;
       next = front()) {
    step();
  }
  if (now_ < t_end) now_ = t_end;
}

void Engine::run() {
  while (step()) {
  }
}

}  // namespace asap::sim
