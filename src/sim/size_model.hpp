// Wire sizes of every message type, in bytes.
//
// The paper never publishes exact message layouts; these defaults are the
// conventional sizes used by Gnutella-era simulation studies (a query
// descriptor plus TCP/IP framing ~ 80 B) and are configurable so
// sensitivity to the size model can be explored. Full/patch ad payload
// sizes are computed from the Bloom filter content at send time; the
// constants here cover fixed headers and per-entry overheads.
#pragma once

#include "common/types.hpp"

namespace asap::sim {

struct SizeModel {
  Bytes query = 80;          // flooding / walker query message
  Bytes response = 100;      // baseline query response
  Bytes confirm_request = 60;   // ASAP content confirmation request
  Bytes confirm_reply = 60;     // ASAP content confirmation reply
  Bytes ad_header = 40;      // identity + topics + version + type
  Bytes patch_entry = 2;     // one changed bit position (u16, m < 65536)
  Bytes ads_request = 60;    // ads request to a neighbor
  Bytes ads_reply_header = 40;
  Bytes ads_reply_entry_overhead = 8;  // per forwarded ad in a reply
  Bytes packed_frame_header = 8;       // packed ad-round frame header
  Bytes packed_entry_overhead = 2;     // per ad inside a packed frame
};

}  // namespace asap::sim
