// Per-node online/offline tracking plus a live-count step function.
//
// System load is reported per *live* node per second (§V-B), so the harness
// needs the number of live peers in every one-second bucket; Liveness
// records every transition and can replay them into a per-second series.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace asap::sim {

class Liveness {
 public:
  /// All of the first `initial_online` slots start online at t=0.
  explicit Liveness(std::uint32_t capacity, std::uint32_t initial_online);

  bool online(NodeId n) const { return n < online_.size() && online_[n]; }
  std::uint32_t live_count() const { return live_count_; }
  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(online_.size());
  }

  /// Marks a node online/offline at virtual time t (idempotent).
  void set_online(NodeId n, bool up, Seconds t);

  /// Grows capacity (new slots start offline).
  void grow(std::uint32_t new_capacity);

  /// Average live count within each one-second bucket of [0, horizon),
  /// computed exactly from the recorded transitions.
  std::vector<double> live_count_series(Seconds horizon) const;

 private:
  struct Transition {
    Seconds time;
    std::int32_t delta;  // +1 on join, -1 on leave
  };

  std::vector<bool> online_;
  std::uint32_t live_count_ = 0;
  std::vector<Transition> transitions_;
};

}  // namespace asap::sim
