// Ladder queue: an amortized-O(1) priority queue for high event rates.
//
// A binary/4-ary heap pays O(log n) scattered cache lines per operation;
// at the queue depths a million-node world sustains (10^5..10^6 pending
// timers) that log factor dominates the event loop. The ladder queue
// (Tang, Goh & Thng 2005) instead spreads events into time buckets and
// only sorts a small "bottom" slice at a time:
//
//   top     — unsorted spill for events beyond the active rung's span,
//   rungs   — a stack of bucket arrays; each rung refines one bucket of
//             the rung above it (the base rung refines the whole top),
//   bottom  — the next bucket's events, sorted, consumed back-to-front.
//
// Push appends to a bucket or the top (amortized O(1)); pop takes from
// bottom, lazily sorting/spreading the next non-empty bucket on demand.
//
// EXACT ORDER GUARANTEE. The simulation's run digests hash every executed
// (time, seq) pair, so this queue must pop in *exactly* the total order
// `time, then seq` — bit-identical to the 4-ary heap it replaces
// (DESIGN.md §12). Two disciplines make that an invariant rather than a
// hope:
//
//   1. Bucket routing is a single monotone function of time per rung
//      (clamped float bucket index), used identically when a rung is
//      built and for every later push into it. Monotonicity means
//      bucket i's events all sort strictly before bucket j's for i < j,
//      so consuming buckets left-to-right and sorting each one yields the
//      global order — even when FP rounding puts an event one bucket off
//      its "true" mathematical slot, it puts every later event there too.
//   2. The top/rung boundary is the recorded *actual* max event time of
//      the rung at build (`max_time`), not a computed bucket edge, so a
//      later push can never land in the top while an equal-or-later event
//      sits in a bucket.
//
// All ordering comes from sorting (time, seq); bucket geometry only
// decides how much work each sort does.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace asap::sim {

/// Item must expose `Seconds time`, `std::uint64_t seq`, and be movable.
/// (time, seq) pairs are unique per queue — seq is a schedule counter.
template <typename Item>
class LadderQueue {
 public:
  /// Buckets at or below this size are sorted straight into the bottom;
  /// larger ones are re-spread into a finer rung.
  static constexpr std::size_t kSortThreshold = 64;
  /// Rung-stack depth cap: beyond it buckets are sorted regardless (guards
  /// degenerate spreads; depth 8 already refines by ~64^8).
  static constexpr std::size_t kMaxRungs = 8;
  /// Bucket count targets ~kSortThreshold/2 items per bucket: most buckets
  /// then sort straight into the bottom (one rung level for uniform
  /// arrivals) while bucket-array overhead stays ~1/32 of a
  /// one-item-per-bucket geometry.
  static constexpr std::size_t kTargetOccupancy = kSortThreshold / 2;
  static constexpr std::size_t kMinBuckets = 8;
  static constexpr std::size_t kMaxBuckets = 1u << 16;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(Item&& item) {
    ++size_;
    if (rungs_.empty()) {
      // No active rung: the recorded boundary splits bottom from top.
      if (item.time <= bottom_limit_time_) {
        insert_bottom(std::move(item));
      } else {
        push_top(std::move(item));
      }
      return;
    }
    if (item.time > rungs_.front().max_time) {
      push_top(std::move(item));
      return;
    }
    route_into_rungs(std::move(item));
  }

  /// Readies and exposes the earliest item; nullptr when empty. The
  /// pointer is valid until the next mutation.
  const Item* peek() {
    if (size_ == 0) return nullptr;
    ensure_bottom();
    return &bottom_.back();
  }

  /// Removes and returns the earliest item. Requires !empty().
  Item pop() {
    ASAP_DCHECK(size_ > 0);
    ensure_bottom();
    Item out = std::move(bottom_.back());
    bottom_.pop_back();
    --size_;
    return out;
  }

  /// Bulk-loads from an unordered vector (the heap→ladder migration).
  /// Existing contents are kept; items simply join the spill.
  void assign_unordered(std::vector<Item>&& items) {
    for (Item& it : items) {
      ++size_;
      if (!rungs_.empty() && it.time <= rungs_.front().max_time) {
        route_into_rungs(std::move(it));
      } else if (rungs_.empty() && it.time <= bottom_limit_time_) {
        insert_bottom(std::move(it));
      } else {
        push_top(std::move(it));
      }
    }
    items.clear();
  }

  /// Moves every pending item out, in no particular order (the
  /// ladder→heap migration; the caller re-heapifies).
  std::vector<Item> drain_unordered() {
    std::vector<Item> out;
    out.reserve(size_);
    for (Item& it : bottom_) out.push_back(std::move(it));
    bottom_.clear();
    while (!rungs_.empty()) {
      Rung& rung = rungs_.back();
      for (auto& bucket : rung.buckets) {
        for (Item& it : bucket) out.push_back(std::move(it));
        bucket.clear();
      }
      // Retire the emptied shell to the free list instead of destroying
      // it: sustained spill near the heap/ladder hysteresis boundary
      // migrates back and forth constantly, and dropping the shells here
      // made every re-migration rebuild thousands of bucket vectors from
      // scratch. Same bound as ensure_bottom(): <= kMaxRungs shells kept.
      if (spare_rungs_.size() < kMaxRungs) {
        spare_rungs_.push_back(std::move(rungs_.back()));
      }
      rungs_.pop_back();
    }
    for (Item& it : top_) out.push_back(std::move(it));
    top_.clear();
    reset_boundaries();
    size_ = 0;
    return out;
  }

  /// Depth of the active rung stack (diagnostics/tests; kMaxRungs caps it).
  std::size_t active_rungs() const { return rungs_.size(); }
  /// Retired bucket-array shells available for reuse (diagnostics/tests).
  std::size_t spare_shells() const { return spare_rungs_.size(); }

 private:
  struct Rung {
    double start = 0.0;
    /// Reciprocal bucket width: routing multiplies instead of dividing
    /// (an fdiv costs ~15-20 cycles and runs twice per event). Still one
    /// monotone function of t, fixed at build time, so the order
    /// guarantee is unaffected.
    double inv_width = 1.0;
    /// Actual max event time routed here at build — the exact spill
    /// boundary for later pushes (discipline 2 above).
    double max_time = 0.0;
    /// Buckets [0, cur) are consumed; buckets[cur] is next.
    std::size_t cur = 0;
    std::vector<std::vector<Item>> buckets;
  };

  static bool before(const Item& a, const Item& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  /// Descending comparator: bottom_ is sorted largest-first so the
  /// earliest item is bottom_.back().
  static bool desc(const Item& a, const Item& b) { return before(b, a); }

  /// The one monotone routing function (discipline 1 above). Requires
  /// rung.inv_width > 0; clamps to [0, buckets). NaN cannot occur (event
  /// times are validated finite at schedule time).
  static std::size_t bucket_index(const Rung& rung, Seconds t) {
    const double q = (t - rung.start) * rung.inv_width;
    if (!(q > 0.0)) return 0;
    const auto n = rung.buckets.size();
    if (q >= static_cast<double>(n)) return n - 1;
    return static_cast<std::size_t>(q);
  }

  void insert_bottom(Item&& item) {
    const auto at =
        std::upper_bound(bottom_.begin(), bottom_.end(), item, desc);
    bottom_.insert(at, std::move(item));
  }

  void push_top(Item&& item) {
    top_min_ = top_.empty() ? item.time : std::min(top_min_, item.time);
    top_max_ = top_.empty() ? item.time : std::max(top_max_, item.time);
    top_.push_back(std::move(item));
  }

  void route_into_rungs(Item&& item) {
    for (std::size_t r = 0; r < rungs_.size(); ++r) {
      Rung& rung = rungs_[r];
      const std::size_t idx = bucket_index(rung, item.time);
      if (idx >= rung.cur) {
        rung.buckets[idx].push_back(std::move(item));
        return;
      }
      // idx lands in the consumed zone. The innermost open bucket
      // (cur - 1) may be refined by the next rung down; anything else was
      // already sorted into the bottom, so this item joins it there.
      if (idx == rung.cur - 1 && r + 1 < rungs_.size()) continue;
      insert_bottom(std::move(item));
      return;
    }
    insert_bottom(std::move(item));
  }

  /// Builds a rung over `items` (min/max precomputed by the caller) and
  /// pushes it onto the stack. Leaves `items` empty but with its capacity
  /// intact so callers can recycle the storage.
  void spread(std::vector<Item>&& items, double min_time, double max_time) {
    // Reuse a retired rung's bucket-array shell when one is available:
    // steady-state operation cycles through rungs constantly, and
    // re-allocating thousands of bucket vectors per cycle is pure churn.
    if (spare_rungs_.empty()) {
      rungs_.emplace_back();
    } else {
      rungs_.push_back(std::move(spare_rungs_.back()));
      spare_rungs_.pop_back();
    }
    Rung& r = rungs_.back();
    r.start = min_time;
    r.max_time = max_time;
    r.cur = 0;
    const std::size_t n = std::clamp(items.size() / kTargetOccupancy + 1,
                                     kMinBuckets, kMaxBuckets);
    r.inv_width = static_cast<double>(n) / (max_time - min_time);
    ASAP_DCHECK(r.inv_width > 0.0);
    r.buckets.resize(n);
    // Single placement pass. Bucket capacities persist through the shell
    // recycling above, so after the first cycle push_back growth is rare
    // and a counting pre-pass would just re-read every item.
    for (Item& it : items) {
      r.buckets[bucket_index(r, it.time)].push_back(std::move(it));
    }
    items.clear();
  }

  void reset_boundaries() {
    bottom_limit_time_ = -std::numeric_limits<double>::infinity();
    top_min_ = 0.0;
    top_max_ = 0.0;
  }

  /// If Item exposes a prefetch() hint (the engine's Items warm their
  /// out-of-line closure block), issue it for the whole freshly-sorted
  /// bottom: these are the next |bottom| pops, and batching the hints here
  /// overlaps their misses with the callbacks about to run.
  void prefetch_bottom() const {
    if constexpr (requires(const Item& it) { it.prefetch(); }) {
      for (const Item& it : bottom_) it.prefetch();
    }
  }

  /// Makes bottom_ non-empty. Requires size_ > 0.
  void ensure_bottom() {
    while (bottom_.empty()) {
      if (rungs_.empty()) {
        // Rebuild the ladder from the spill.
        ASAP_DCHECK(!top_.empty());
        std::vector<Item> items = std::move(top_);
        top_.clear();
        const double lo = top_min_;
        const double hi = top_max_;
        reset_boundaries();
        bottom_limit_time_ = hi;  // future pushes <= hi sort below the top
        if (items.size() <= kSortThreshold || !(hi > lo)) {
          std::sort(items.begin(), items.end(), desc);
          bottom_ = std::move(items);
          prefetch_bottom();
          return;
        }
        spread(std::move(items), lo, hi);
        // spread() emptied `items`; hand its capacity back to the spill so
        // the next cycle's pushes don't regrow it from scratch.
        top_ = std::move(items);
        continue;
      }
      Rung& rung = rungs_.back();
      while (rung.cur < rung.buckets.size() &&
             rung.buckets[rung.cur].empty()) {
        ++rung.cur;
      }
      if (rung.cur == rung.buckets.size()) {
        // Exhausted; resume the rung above. Keep the bucket-array shell
        // for the next spread instead of freeing every bucket vector.
        spare_rungs_.push_back(std::move(rungs_.back()));
        rungs_.pop_back();
        continue;
      }
      // Take the bucket's contents, parking bottom_'s dead storage in the
      // consumed slot (nothing routes there again; the shell recycles it).
      rung.buckets[rung.cur].swap(bottom_);
      ++rung.cur;
      double lo = bottom_.front().time;
      double hi = lo;
      for (const Item& it : bottom_) {
        lo = std::min(lo, it.time);
        hi = std::max(hi, it.time);
      }
      if (bottom_.size() <= kSortThreshold || rungs_.size() >= kMaxRungs ||
          !(hi > lo)) {
        std::sort(bottom_.begin(), bottom_.end(), desc);
        prefetch_bottom();
        return;
      }
      spread(std::move(bottom_), lo, hi);  // leaves bottom_ empty
    }
  }

  std::vector<Item> bottom_;  // sorted descending; earliest at the back
  std::vector<Rung> rungs_;   // rungs_[0] is the base; back() is innermost
  std::vector<Item> top_;     // unsorted spill past the base rung's span
  /// Retired rungs kept for their bucket-array storage (bounded by the
  /// deepest rung stack ever active, i.e. <= kMaxRungs shells).
  std::vector<Rung> spare_rungs_;
  double top_min_ = 0.0;
  double top_max_ = 0.0;
  /// With no rungs active: pushes at or below this time join the bottom,
  /// later ones the top. -inf until the first rebuild.
  double bottom_limit_time_ = -std::numeric_limits<double>::infinity();
  std::size_t size_ = 0;
};

}  // namespace asap::sim
