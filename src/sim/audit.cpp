#include "sim/audit.hpp"

#include <sstream>

#include "common/error.hpp"
#include "sim/bandwidth.hpp"

namespace asap::sim {

static_assert(kTrafficCount <= SimAuditor::kMaxCategories,
              "grow SimAuditor::kMaxCategories");

namespace {
// Violations past this many keep counting but stop storing messages.
constexpr std::size_t kMaxStoredViolations = 32;
}  // namespace

void SimAuditor::violate(std::string msg) {
  ++summary_.violations;
  if (violations_.size() < kMaxStoredViolations) {
    violations_.push_back(std::move(msg));
  }
}

void SimAuditor::on_event(Seconds t) {
  ++summary_.events;
  if (have_time_ && t < last_time_) {
    std::ostringstream os;
    os << "virtual time moved backwards: " << t << " after " << last_time_;
    violate(os.str());
  }
  have_time_ = true;
  last_time_ = t;
}

void SimAuditor::on_deposit(Seconds t, Traffic category, Bytes bytes) {
  (void)t;  // deposits may land at any virtual time (in-flight arrivals)
  ++summary_.deposits;
  const auto c = static_cast<std::size_t>(category);
  if (c >= kTrafficCount) {
    violate("deposit with invalid traffic category");
    return;
  }
  deposited_bytes_[c] += bytes;
}

void SimAuditor::on_send(Traffic category, Bytes bytes) {
  ++summary_.sends;
  const auto c = static_cast<std::size_t>(category);
  if (c >= kTrafficCount) {
    violate("send with invalid traffic category");
    return;
  }
  sent_bytes_[c] += bytes;
}

void SimAuditor::on_delivery(bool online) {
  ++summary_.deliveries;
  if (!online) violate("message delivered to an offline node");
}

void SimAuditor::on_confirm_request() { ++summary_.confirm_requests; }
void SimAuditor::on_confirm_reply() { ++summary_.confirm_replies; }
void SimAuditor::on_confirm_timeout() { ++summary_.confirm_timeouts; }

void SimAuditor::on_cache_occupancy(std::size_t size,
                                    std::uint32_t capacity) {
  if (size > capacity) {
    std::ostringstream os;
    os << "ad cache holds " << size << " entries, capacity " << capacity;
    violate(os.str());
  }
}

void SimAuditor::finalize(const BandwidthLedger& ledger) {
  ASAP_CHECK(!finalized_);
  finalized_ = true;

  for (std::size_t c = 0; c < kTrafficCount; ++c) {
    const auto cat = static_cast<Traffic>(c);
    const Bytes ledger_total = ledger.total(cat);
    if (sent_bytes_[c] != ledger_total) {
      std::ostringstream os;
      os << traffic_name(cat) << ": sent " << sent_bytes_[c]
         << " B but ledger holds " << ledger_total << " B";
      violate(os.str());
    }
    if (deposited_bytes_[c] != ledger_total) {
      std::ostringstream os;
      os << traffic_name(cat) << ": observed deposits " << deposited_bytes_[c]
         << " B but ledger total is " << ledger_total
         << " B (ledger accounting drift)";
      violate(os.str());
    }
  }

  if (summary_.confirm_requests !=
      summary_.confirm_replies + summary_.confirm_timeouts) {
    std::ostringstream os;
    os << "confirm round imbalance: " << summary_.confirm_requests
       << " requests vs " << summary_.confirm_replies << " replies + "
       << summary_.confirm_timeouts << " dead-source records";
    violate(os.str());
  }
}

}  // namespace asap::sim
