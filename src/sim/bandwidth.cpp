#include "sim/bandwidth.hpp"

#include <algorithm>
#include <cmath>

namespace asap::sim {

const char* traffic_name(Traffic t) {
  switch (t) {
    case Traffic::kQuery:
      return "query";
    case Traffic::kResponse:
      return "response";
    case Traffic::kConfirm:
      return "confirm";
    case Traffic::kAdsRequest:
      return "ads-request";
    case Traffic::kFullAd:
      return "full-ad";
    case Traffic::kPatchAd:
      return "patch-ad";
    case Traffic::kRefreshAd:
      return "refresh-ad";
    case Traffic::kCount:
      break;
  }
  return "?";
}

BandwidthLedger::BandwidthLedger(Seconds horizon) {
  ASAP_REQUIRE(horizon > 0.0, "ledger horizon must be positive");
  num_buckets_ = static_cast<std::uint32_t>(std::ceil(horizon)) + 1;
  for (auto& v : per_category_) v.assign(num_buckets_, 0);
}

void BandwidthLedger::deposit(Seconds t, Traffic category, Bytes bytes) {
  ASAP_DCHECK(category != Traffic::kCount);
  const auto c = static_cast<std::size_t>(category);
  auto bucket = t <= 0.0 ? 0u : static_cast<std::uint32_t>(t);
  bucket = std::min(bucket, num_buckets_ - 1);
  per_category_[c][bucket] += bytes;
  totals_[c] += bytes;
}

Bytes BandwidthLedger::total(Traffic category) const {
  return totals_[static_cast<std::size_t>(category)];
}

Bytes BandwidthLedger::total(std::span<const Traffic> categories) const {
  Bytes sum = 0;
  for (Traffic c : categories) sum += total(c);
  return sum;
}

Bytes BandwidthLedger::grand_total() const {
  Bytes sum = 0;
  for (auto t : totals_) sum += t;
  return sum;
}

std::span<const Bytes> BandwidthLedger::series(Traffic category) const {
  const auto& v = per_category_[static_cast<std::size_t>(category)];
  return {v.data(), v.size()};
}

std::vector<Bytes> BandwidthLedger::combined_series(
    std::span<const Traffic> categories) const {
  std::vector<Bytes> out(num_buckets_, 0);
  for (Traffic c : categories) {
    const auto s = series(c);
    for (std::uint32_t i = 0; i < num_buckets_; ++i) out[i] += s[i];
  }
  return out;
}

}  // namespace asap::sim
