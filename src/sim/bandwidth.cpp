#include "sim/bandwidth.hpp"

#include <algorithm>
#include <cmath>

namespace asap::sim {

const char* traffic_name(Traffic t) {
  switch (t) {
    case Traffic::kQuery:
      return "query";
    case Traffic::kResponse:
      return "response";
    case Traffic::kConfirm:
      return "confirm";
    case Traffic::kAdsRequest:
      return "ads-request";
    case Traffic::kFullAd:
      return "full-ad";
    case Traffic::kPatchAd:
      return "patch-ad";
    case Traffic::kRefreshAd:
      return "refresh-ad";
    case Traffic::kPackedAd:
      return "packed-ad";
    case Traffic::kCount:
      break;
  }
  return "?";
}

BandwidthLedger::BandwidthLedger(Seconds horizon) {
  ASAP_REQUIRE(horizon > 0.0, "ledger horizon must be positive");
  num_buckets_ = static_cast<std::uint32_t>(std::ceil(horizon)) + 1;
  for (auto& v : per_category_) v.assign(num_buckets_, 0);
}

void BandwidthLedger::deposit(Seconds t, Traffic category, Bytes bytes) {
  ASAP_DCHECK(category != Traffic::kCount);
  const auto c = static_cast<std::size_t>(category);
  totals_[c] += bytes;
  digest_.absorb(t);
  digest_.absorb((static_cast<std::uint64_t>(c) << 56) | bytes);
  ASAP_AUDIT_HOOK(auditor_, on_deposit(t, category, bytes));
  ASAP_OBS_HOOK(observer_, on_ledger_deposit(t, category, bytes));
  // Past-horizon deposits go to the overflow cell, not the last bucket —
  // piling them into one second would fake a load spike in the series.
  // (The >= comparison also dodges the UB of casting a huge double.)
  if (t >= static_cast<double>(num_buckets_)) {
    overflow_[c] += bytes;
    return;
  }
  // Negated comparison so a (jitter-induced) negative or non-finite t
  // clamps to bucket 0 instead of casting a negative/NaN double to an
  // unsigned index (UB). The digest absorbed the raw t above, so the
  // clamp never changes run digests — only where the bytes are binned.
  const auto bucket = !(t > 0.0) ? 0u : static_cast<std::uint32_t>(t);
  per_category_[c][bucket] += bytes;
}

Bytes BandwidthLedger::total(Traffic category) const {
  return totals_[static_cast<std::size_t>(category)];
}

Bytes BandwidthLedger::overflow(Traffic category) const {
  return overflow_[static_cast<std::size_t>(category)];
}

Bytes BandwidthLedger::total(std::span<const Traffic> categories) const {
  Bytes sum = 0;
  for (Traffic c : categories) sum += total(c);
  return sum;
}

Bytes BandwidthLedger::grand_total() const {
  Bytes sum = 0;
  for (auto t : totals_) sum += t;
  return sum;
}

std::span<const Bytes> BandwidthLedger::series(Traffic category) const {
  const auto& v = per_category_[static_cast<std::size_t>(category)];
  return {v.data(), v.size()};
}

std::vector<Bytes> BandwidthLedger::combined_series(
    std::span<const Traffic> categories) const {
  std::vector<Bytes> out(num_buckets_, 0);
  for (Traffic c : categories) {
    const auto s = series(c);
    for (std::uint32_t i = 0; i < num_buckets_; ++i) out[i] += s[i];
  }
  return out;
}

}  // namespace asap::sim
