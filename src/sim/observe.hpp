// Passive observation interface for the simulation services.
//
// The observability layer (src/obs) needs to see every executed engine
// event and every ledger deposit, but sim cannot depend on obs (obs
// depends on sim for the Traffic taxonomy). This header carries the tiny
// abstract interface both sides agree on: the Engine and the
// BandwidthLedger accept a sim::Observer*, and obs::RunObserver implements
// it.
//
// Contract — observers are PASSIVE: an observer must never schedule
// events, touch any Rng stream, or mutate simulation state. Run digests
// are required to be bit-identical with and without an observer installed
// (tests/harness/observability_test.cpp enforces this), which is what
// makes a traced run trustworthy evidence about an untraced one.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace asap::sim {

enum class Traffic : std::uint8_t;  // bandwidth.hpp

class Observer {
 public:
  virtual ~Observer() = default;

  /// An engine event is about to execute at virtual time `t`. Fires in
  /// execution order, so `t` is non-decreasing across calls.
  virtual void on_engine_event(Seconds t) = 0;

  /// `bytes` of `category` traffic were deposited at virtual time `t`.
  virtual void on_ledger_deposit(Seconds t, Traffic category, Bytes bytes) = 0;
};

/// Null-checked hook invocation — a single predictable branch when no
/// observer is installed, mirroring ASAP_AUDIT_HOOK.
#define ASAP_OBS_HOOK(obs, call) \
  do {                           \
    if (obs) (obs)->call;        \
  } while (0)

}  // namespace asap::sim
