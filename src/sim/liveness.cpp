#include "sim/liveness.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace asap::sim {

Liveness::Liveness(std::uint32_t capacity, std::uint32_t initial_online)
    : online_(capacity, false) {
  ASAP_REQUIRE(initial_online <= capacity,
               "more initial-online nodes than capacity");
  for (std::uint32_t i = 0; i < initial_online; ++i) online_[i] = true;
  live_count_ = initial_online;
}

void Liveness::set_online(NodeId n, bool up, Seconds t) {
  ASAP_REQUIRE(n < online_.size(), "liveness: unknown node");
  if (online_[n] == up) return;
  online_[n] = up;
  const std::int32_t delta = up ? 1 : -1;
  live_count_ = static_cast<std::uint32_t>(
      static_cast<std::int64_t>(live_count_) + delta);
  transitions_.push_back({t, delta});
}

void Liveness::grow(std::uint32_t new_capacity) {
  ASAP_REQUIRE(new_capacity >= online_.size(), "liveness cannot shrink");
  online_.resize(new_capacity, false);
}

std::vector<double> Liveness::live_count_series(Seconds horizon) const {
  ASAP_REQUIRE(horizon > 0.0, "horizon must be positive");
  const auto buckets = static_cast<std::uint32_t>(std::ceil(horizon));
  std::vector<double> out(buckets, 0.0);

  // Transitions are appended in non-decreasing time order by the engine;
  // sort defensively anyway (stable so same-time join/leave order holds).
  auto sorted = transitions_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Transition& a, const Transition& b) {
                     return a.time < b.time;
                   });

  // Walk buckets integrating the step function. Start from the count at
  // t=0: current live count minus all recorded deltas.
  std::int64_t count = live_count_;
  for (const auto& tr : sorted) count -= tr.delta;

  std::size_t idx = 0;
  for (std::uint32_t b = 0; b < buckets; ++b) {
    const Seconds lo = b;
    const Seconds hi = b + 1;
    double integral = 0.0;
    Seconds cursor = lo;
    while (idx < sorted.size() && sorted[idx].time < hi) {
      const Seconds at = std::max(sorted[idx].time, lo);
      integral += static_cast<double>(count) * (at - cursor);
      count += sorted[idx].delta;
      cursor = at;
      ++idx;
    }
    integral += static_cast<double>(count) * (hi - cursor);
    out[b] = integral;  // bucket width is 1 s, so integral == average
  }
  return out;
}

}  // namespace asap::sim
