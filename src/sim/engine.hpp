// Discrete-event simulation engine.
//
// The simulator uses a hybrid event model (DESIGN.md §3): protocol-level
// "macro" events (trace events, confirmation round trips, refresh timers)
// go through this queue, while per-hop message propagation is expanded
// inline by the propagation kernels and accounted directly in the
// BandwidthLedger. Ordering is the total order (time, seq) with a
// monotonically increasing sequence number as tie-breaker, which makes
// event ordering (and therefore every simulation) fully deterministic.
//
// Two pending-event structures sit behind the same API (DESIGN.md §12):
// a hand-rolled 4-ary heap — shallower than a binary heap, so fewer cache
// lines touched per push/pop — for shallow queues, and a ladder queue
// (ladder_queue.hpp) once the pending count crosses
// EngineTuning::ladder_threshold, where the heap's O(log n) per op starts
// to dominate. Both pop in exactly the same (time, seq) order, so the run
// digest is bit-identical whichever structure executes an event; the
// switchover is purely a speed decision. Callbacks are small-buffer
// EventCallbacks (event_callback.hpp) drawing oversized closures from the
// engine's SlabPool instead of std::function's per-event heap allocation.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "sim/audit.hpp"
#include "sim/event_callback.hpp"
#include "sim/ladder_queue.hpp"
#include "sim/observe.hpp"
#include "sim/slab_pool.hpp"

namespace asap::sim {

/// Knobs for the engine's pending-event structures. Defaults are the
/// production configuration; tests pin specific paths (forced heap,
/// forced ladder, forced pool-backed callbacks) to prove digest identity
/// across all of them.
struct EngineTuning {
  /// Heap → ladder once pending events exceed this. ~0 keeps the heap
  /// forever; 0 moves to the ladder on the first event.
  std::size_t ladder_threshold = 4096;
  /// Ladder → heap once pending events fall below this (hysteresis gap
  /// below ladder_threshold prevents migration thrash at the boundary).
  std::size_t heap_threshold = 512;
  /// Test hook: pad every closure past EventCallback::kInlineSize so the
  /// SlabPool fallback path runs for all events.
  bool force_heap_callbacks = false;
};

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  explicit Engine(const EngineTuning& tuning) : tuning_(tuning) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time in seconds.
  Seconds now() const { return now_; }

  /// Schedule `f` at absolute time `t` (must be finite and not in the
  /// past). Accepts any void() callable; captures up to
  /// EventCallback::kInlineSize bytes are stored allocation-free.
  template <typename F>
  void schedule_at(Seconds t, F&& f) {
    ASAP_REQUIRE(std::isfinite(t), "event time must be finite");
    ASAP_REQUIRE(t >= now_, "cannot schedule an event in the past");
    if (tuning_.force_heap_callbacks) {
      push_event(t, EventCallback(
                        pool_, Padded<std::decay_t<F>>(std::forward<F>(f))));
    } else {
      push_event(t, EventCallback(pool_, std::forward<F>(f)));
    }
  }

  /// Schedule `f` `dt` seconds from now (dt >= 0).
  template <typename F>
  void schedule_in(Seconds dt, F&& f) {
    schedule_at(now_ + dt, std::forward<F>(f));
  }

  /// Pop and execute the earliest event. Returns false if none remain.
  bool step();

  /// Run until the queue drains or virtual time would exceed `t_end`
  /// (events after t_end stay queued).
  void run_until(Seconds t_end);

  /// Run until the queue drains completely.
  void run();

  std::size_t pending() const {
    return use_ladder_ ? ladder_.size() : heap_.size();
  }
  std::uint64_t executed() const { return executed_; }

  /// FNV-1a over every executed event's (time, seq); always maintained, so
  /// two identically-seeded runs can be compared bit-for-bit.
  std::uint64_t digest() const { return digest_.value(); }

  /// Installs an invariant auditor (nullptr disables). Not owned.
  void set_auditor(SimAuditor* auditor) { auditor_ = auditor; }

  /// Installs a passive observer (nullptr disables). Not owned. Observers
  /// see every executed event but must never feed back into the run
  /// (sim/observe.hpp); the digest is identical either way.
  void set_observer(Observer* observer) { observer_ = observer; }

  /// True while the ladder queue is the active structure (diagnostics).
  bool using_ladder() const { return use_ladder_; }
  /// The engine's closure pool (diagnostics/tests).
  const SlabPool& pool() const { return pool_; }

 private:
  struct Item {
    Seconds time;
    std::uint64_t seq;
    EventCallback cb;

    bool before(const Item& other) const {
      if (time != other.time) return time < other.time;
      return seq < other.seq;
    }

    /// Cache hint picked up by the ladder's bottom batching.
    void prefetch() const { cb.prefetch_far(); }
  };
  static_assert(sizeof(Item) == 64,
                "queue Item should be exactly one cache line");

  /// force_heap_callbacks wrapper: same behavior, guaranteed pool storage.
  template <typename Fn>
  struct Padded {
    explicit Padded(Fn f) : fn(std::move(f)) {}
    void operator()() { fn(); }
    Fn fn;
    unsigned char pad[EventCallback::kInlineSize + 1] = {};
  };

  void push_event(Seconds t, EventCallback cb);
  /// Earliest pending item, readied for execution; nullptr when empty.
  const Item* front();
  Item pop_front();
  void migrate_to_ladder();
  void migrate_to_heap();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  SlabPool pool_;  // first member: must outlive every queued EventCallback
  EngineTuning tuning_;
  std::vector<Item> heap_;
  LadderQueue<Item> ladder_;
  bool use_ladder_ = false;
  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  Fnv64 digest_;
  SimAuditor* auditor_ = nullptr;
  Observer* observer_ = nullptr;
};

}  // namespace asap::sim
