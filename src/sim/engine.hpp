// Discrete-event simulation engine.
//
// The simulator uses a hybrid event model (DESIGN.md §3): protocol-level
// "macro" events (trace events, confirmation round trips, refresh timers)
// go through this heap, while per-hop message propagation is expanded
// inline by the propagation kernels and accounted directly in the
// BandwidthLedger. The heap is a hand-rolled 4-ary heap — shallower than a
// binary heap, so fewer cache lines touched per push/pop — with a
// monotonically increasing sequence number as tie-breaker, which makes
// event ordering (and therefore every simulation) fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "sim/audit.hpp"
#include "sim/observe.hpp"

namespace asap::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time in seconds.
  Seconds now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (must not be in the past).
  void schedule_at(Seconds t, Callback cb);

  /// Schedule `cb` `dt` seconds from now (dt >= 0).
  void schedule_in(Seconds dt, Callback cb) {
    schedule_at(now_ + dt, std::move(cb));
  }

  /// Pop and execute the earliest event. Returns false if none remain.
  bool step();

  /// Run until the queue drains or virtual time would exceed `t_end`
  /// (events after t_end stay queued).
  void run_until(Seconds t_end);

  /// Run until the queue drains completely.
  void run();

  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed() const { return executed_; }

  /// FNV-1a over every executed event's (time, seq); always maintained, so
  /// two identically-seeded runs can be compared bit-for-bit.
  std::uint64_t digest() const { return digest_.value(); }

  /// Installs an invariant auditor (nullptr disables). Not owned.
  void set_auditor(SimAuditor* auditor) { auditor_ = auditor; }

  /// Installs a passive observer (nullptr disables). Not owned. Observers
  /// see every executed event but must never feed back into the run
  /// (sim/observe.hpp); the digest is identical either way.
  void set_observer(Observer* observer) { observer_ = observer; }

 private:
  struct Item {
    Seconds time;
    std::uint64_t seq;
    Callback cb;

    bool before(const Item& other) const {
      if (time != other.time) return time < other.time;
      return seq < other.seq;
    }
  };

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Item> heap_;
  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  Fnv64 digest_;
  SimAuditor* auditor_ = nullptr;
  Observer* observer_ = nullptr;
};

}  // namespace asap::sim
