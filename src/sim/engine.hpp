// Discrete-event simulation engine.
//
// The simulator uses a hybrid event model (DESIGN.md §3): protocol-level
// "macro" events (trace events, confirmation round trips, refresh timers)
// go through this queue, while per-hop message propagation is expanded
// inline by the propagation kernels and accounted directly in the
// BandwidthLedger. Ordering is the total order (time, seq) with a
// monotonically increasing sequence number as tie-breaker, which makes
// event ordering (and therefore every simulation) fully deterministic.
//
// The pending set is sharded by overlay partition (DESIGN.md §14): every
// shard owns a heap/ladder hybrid (shard_queue.hpp) for the nodes mapped
// to it (owner % shards), and cross-shard schedules stage through
// per-(src, dst) ordered mailboxes (mailbox.hpp). Two execution modes
// drain the shards:
//
//   * canonical — step()/run_until() pops the global minimum (time, seq)
//     across all shard fronts on one thread. This is exactly the
//     pre-shard serial engine: same execution order, same sequence
//     numbers, same digests, for any shard count. All protocol runs use
//     this mode, so every committed golden digest is preserved.
//   * window-parallel — run_window_parallel() executes conservative time
//     windows [t_min, t_min + lookahead) with one lane per shard under an
//     exec::Policy, then merges shard outputs (executed events, staged
//     ledger deposits, auditor/observer hooks) in canonical (time, key)
//     order at the barrier. Requires EngineTuning::causal_keys, which
//     replaces the schedule-counter tie-breaker with keys derived from
//     the causal tree so keys cannot depend on thread interleaving; the
//     merged digest is bit-identical for shards=1 vs N and equal to a
//     canonical causal-keys run of the same workload.
//
// Callbacks are small-buffer EventCallbacks (event_callback.hpp) drawing
// oversized closures from the engine's SlabPool instead of
// std::function's per-event heap allocation.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "sim/audit.hpp"
#include "sim/event_callback.hpp"
#include "sim/mailbox.hpp"
#include "sim/observe.hpp"
#include "sim/shard_queue.hpp"
#include "sim/slab_pool.hpp"

namespace asap::exec {
class Policy;  // exec/policy.hpp
}  // namespace asap::exec

namespace asap::sim {

class BandwidthLedger;  // bandwidth.hpp

/// Knobs for the engine's pending-event structures. Defaults are the
/// production configuration; tests pin specific paths (forced heap,
/// forced ladder, forced pool-backed callbacks, shard counts) to prove
/// digest identity across all of them.
struct EngineTuning {
  /// Heap → ladder once pending events exceed this. ~0 keeps the heap
  /// forever; 0 moves to the ladder on the first event.
  std::size_t ladder_threshold = 4096;
  /// Ladder → heap once pending events fall below this (hysteresis gap
  /// below ladder_threshold prevents migration thrash at the boundary).
  std::size_t heap_threshold = 512;
  /// Test hook: pad every closure past EventCallback::kInlineSize so the
  /// SlabPool fallback path runs for all events.
  bool force_heap_callbacks = false;
  /// Event-loop shards (overlay partitions): owner node % shards picks
  /// the queue. 1 is the classic single queue; 0 auto-detects
  /// (exec::hardware_lanes(), clamped >= 1). Canonical execution pops
  /// the global (time, seq) minimum whatever the count, so run digests
  /// are bit-identical across shard counts.
  std::size_t shards = 1;
  /// Replace the schedule-counter tie-breaker with causally-derived keys
  /// (child key = mix of parent key and per-parent child index). Keys
  /// then depend only on the event tree, never on thread interleaving —
  /// required by run_window_parallel(). Counter runs and causal runs
  /// form two distinct digest families; each is internally bit-identical
  /// across shard counts and queue tunings.
  bool causal_keys = false;
};

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() : Engine(EngineTuning{}) {}
  explicit Engine(const EngineTuning& tuning);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time in seconds. Inside a callback this is the
  /// executing event's time in both modes (window-parallel shards run
  /// locally ahead of the merged global clock).
  Seconds now() const {
    const ExecFrame* f = active_frame();
    return f ? f->now : now_;
  }

  /// Schedule `f` at absolute time `t` (must be finite and not in the
  /// past). Accepts any void() callable; captures up to
  /// EventCallback::kInlineSize bytes are stored allocation-free. The
  /// owner-less overloads target the scheduling event's own shard
  /// (driver-thread calls target shard 0); pass an owner node to route
  /// the event to that node's partition.
  template <typename F>
  void schedule_at(Seconds t, F&& f) {
    schedule_to(t, default_shard(), std::forward<F>(f));
  }
  template <typename F>
  void schedule_at(Seconds t, NodeId owner, F&& f) {
    schedule_to(t, shard_of(owner), std::forward<F>(f));
  }

  /// Schedule `f` `dt` seconds from now (dt >= 0).
  template <typename F>
  void schedule_in(Seconds dt, F&& f) {
    schedule_to(now() + dt, default_shard(), std::forward<F>(f));
  }
  template <typename F>
  void schedule_in(Seconds dt, NodeId owner, F&& f) {
    schedule_to(now() + dt, shard_of(owner), std::forward<F>(f));
  }

  /// Pop and execute the earliest event (canonical mode). Returns false
  /// if none remain.
  bool step();

  /// Run until the queues drain or virtual time would exceed `t_end`
  /// (events after t_end stay queued). Canonical mode.
  void run_until(Seconds t_end);

  /// Run until the queues drain completely. Canonical mode.
  void run();

  /// Conservative time-window parallel execution (DESIGN.md §14): repeat
  /// { window = [min next-event time, +lookahead); each shard executes
  /// its own events inside the window on one policy lane; barrier;
  /// merge outputs in (time, key) order; flush mailboxes } until no
  /// event at or before `t_end` remains, then park the clock at t_end.
  ///
  /// Requires EngineTuning::causal_keys. Within a window, a shard may
  /// schedule onto itself at any t >= now(); cross-shard schedules must
  /// land at or past the window end (the lookahead contract — in the
  /// simulation that is "cross-partition latency >= lookahead") and are
  /// staged through the mailbox grid. Ledger deposits made during
  /// window execution must go through deposit(); they are staged
  /// per-shard and replayed into the ledger in merged canonical order.
  /// Closures scheduled inside a window must fit EventCallback's inline
  /// buffer (the SlabPool is not shared across lanes).
  void run_window_parallel(exec::Policy& policy, Seconds t_end,
                           Seconds lookahead);

  /// Ledger sink for deposit() (not owned; nullptr detaches). Canonical
  /// deposits forward immediately; window-parallel deposits are staged
  /// and replayed at the barrier in canonical order.
  void set_ledger(BandwidthLedger* ledger) { ledger_ = ledger; }

  /// Account `bytes` of `category` traffic at the executing event's time
  /// (current time when called outside a callback). Requires a ledger.
  void deposit(Traffic category, Bytes bytes);

  std::size_t pending() const;
  std::uint64_t executed() const { return executed_; }

  /// FNV-1a over every executed event's (time, seq); always maintained, so
  /// two identically-seeded runs can be compared bit-for-bit.
  std::uint64_t digest() const { return digest_.value(); }

  /// Installs an invariant auditor (nullptr disables). Not owned.
  void set_auditor(SimAuditor* auditor) { auditor_ = auditor; }

  /// Installs a passive observer (nullptr disables). Not owned. Observers
  /// see every executed event but must never feed back into the run
  /// (sim/observe.hpp); the digest is identical either way.
  void set_observer(Observer* observer) { observer_ = observer; }

  /// Resolved shard count (tuning 0 resolves to hardware lanes).
  std::size_t shards() const { return shards_.size(); }
  /// Shard a node's events execute on (owner % shards).
  std::size_t shard_of(NodeId owner) const {
    return shards_.size() == 1 ? 0 : owner % shards_.size();
  }

  /// True while shard 0's ladder queue is the active structure
  /// (diagnostics; with one shard this is the whole engine).
  bool using_ladder() const { return shards_[0].queue.using_ladder(); }
  /// The engine's closure pool (diagnostics/tests).
  const SlabPool& pool() const { return pool_; }

 private:
  struct Item {
    Seconds time;
    /// Tie-breaker: schedule counter, or the causal key when
    /// EngineTuning::causal_keys is set. Unique per run either way.
    std::uint64_t seq;
    EventCallback cb;

    bool before(const Item& other) const {
      if (time != other.time) return time < other.time;
      return seq < other.seq;
    }

    /// Cache hint picked up by the ladder's bottom batching.
    void prefetch() const { cb.prefetch_far(); }
  };
  static_assert(sizeof(Item) == 64,
                "queue Item should be exactly one cache line");

  /// Executing-event context: one per live callback, on the executing
  /// thread's stack. Routes now()/schedule_*/deposit() while a callback
  /// runs — in window-parallel mode each lane carries its own frame via
  /// a thread-local, so shards can execute concurrently without touching
  /// the shared clock.
  struct ExecFrame {
    const Engine* engine;
    std::size_t shard;
    Seconds now;
    std::uint64_t key;       ///< the executing event's (causal) key
    std::uint64_t children;  ///< causal child counter
  };

  struct WindowRecord {
    Seconds time;
    std::uint64_t key;
  };
  struct StagedDeposit {
    Seconds time;
    std::uint64_t key;  ///< depositing event's key (merge tie-breaker)
    Traffic category;
    Bytes bytes;
  };
  struct Shard {
    ShardQueue<Item> queue;
    /// Window-parallel per-shard outputs, merged then cleared at the
    /// barrier.
    std::vector<WindowRecord> log;
    std::vector<StagedDeposit> deposits;
  };

  /// force_heap_callbacks wrapper: same behavior, guaranteed pool storage.
  template <typename Fn>
  struct Padded {
    explicit Padded(Fn f) : fn(std::move(f)) {}
    void operator()() { fn(); }
    Fn fn;
    unsigned char pad[EventCallback::kInlineSize + 1] = {};
  };

  template <typename F>
  void schedule_to(Seconds t, std::size_t dst, F&& f) {
    if (tuning_.force_heap_callbacks) {
      ASAP_REQUIRE(!windowed_,
                   "force_heap_callbacks cannot run window-parallel: the "
                   "closure pool is not shared across lanes");
      schedule_impl(t, dst,
                    EventCallback(pool_, Padded<std::decay_t<F>>(
                                             std::forward<F>(f))));
    } else {
      if (windowed_) {
        // The SlabPool is single-threaded; window lanes may only
        // schedule closures the inline buffer can hold.
        ASAP_REQUIRE(sizeof(std::decay_t<F>) <= EventCallback::kInlineSize,
                     "window-parallel closures must fit the EventCallback "
                     "inline buffer");
      }
      schedule_impl(t, dst, EventCallback(pool_, std::forward<F>(f)));
    }
  }

  void schedule_impl(Seconds t, std::size_t dst, EventCallback cb);
  /// The executing event's frame on this thread, if any (else nullptr).
  ExecFrame* active_frame() const;
  std::size_t default_shard() const {
    const ExecFrame* f = active_frame();
    return f ? f->shard : 0;
  }
  /// Index of the shard holding the global minimum front; npos if empty.
  std::size_t min_shard();
  void run_shard_window(std::size_t s, Seconds w_end, Seconds t_end);
  void merge_window();

  SlabPool pool_;  // first member: must outlive every queued EventCallback
  EngineTuning tuning_;
  std::vector<Shard> shards_;
  MailboxGrid<Item> mailboxes_;
  /// Canonical-mode executing frame (window lanes use a thread-local).
  ExecFrame* frame_ = nullptr;
  /// Window-lane executing frame for the current thread; checked against
  /// `engine` so nested engines on one thread cannot cross wires.
  static thread_local ExecFrame* tls_frame_;
  /// True only while policy lanes run inside run_window_parallel (set
  /// and cleared around the barrier, so never read concurrently with a
  /// write).
  bool windowed_ = false;
  Seconds window_end_ = 0.0;
  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t root_children_ = 0;  ///< causal child counter, driver events
  std::uint64_t executed_ = 0;
  Fnv64 digest_;
  SimAuditor* auditor_ = nullptr;
  Observer* observer_ = nullptr;
  BandwidthLedger* ledger_ = nullptr;
};

}  // namespace asap::sim
