// Traffic accounting: who spent how many bytes, when, on what.
//
// The paper's metrics (§V-B) need (a) per-category totals — e.g. the
// ASAP(RW) load breakdown of Fig 7, (b) a per-second system-wide load
// series — Fig 10 and the mean/stddev of Fig 8/9. The ledger keeps one
// per-second bucket row per traffic category; deposits are O(1).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace asap::sim {

/// Traffic categories, matching the paper's load decomposition.
enum class Traffic : std::uint8_t {
  kQuery = 0,    // baseline query / walker messages
  kResponse,     // baseline response messages (tracked, not in paper's load)
  kConfirm,      // ASAP content-confirmation request + reply
  kAdsRequest,   // ASAP ads-request + ads-reply messages
  kFullAd,       // full advertisements
  kPatchAd,      // patch advertisements
  kRefreshAd,    // refresh advertisements
  kCount
};

inline constexpr std::size_t kTrafficCount =
    static_cast<std::size_t>(Traffic::kCount);

const char* traffic_name(Traffic t);

class BandwidthLedger {
 public:
  /// @param horizon  simulated duration covered by per-second buckets;
  ///                 deposits beyond the horizon clamp into the last bucket.
  explicit BandwidthLedger(Seconds horizon);

  void deposit(Seconds t, Traffic category, Bytes bytes);

  Bytes total(Traffic category) const;
  /// Sum over a subset of categories.
  Bytes total(std::span<const Traffic> categories) const;
  Bytes grand_total() const;

  /// Per-second byte series for one category.
  std::span<const Bytes> series(Traffic category) const;
  /// Per-second byte series summed over the given categories.
  std::vector<Bytes> combined_series(std::span<const Traffic> categories) const;

  std::uint32_t buckets() const { return num_buckets_; }

 private:
  std::uint32_t num_buckets_;
  std::array<std::vector<Bytes>, kTrafficCount> per_category_;
  std::array<Bytes, kTrafficCount> totals_{};
};

}  // namespace asap::sim
