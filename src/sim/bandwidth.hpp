// Traffic accounting: who spent how many bytes, when, on what.
//
// The paper's metrics (§V-B) need (a) per-category totals — e.g. the
// ASAP(RW) load breakdown of Fig 7, (b) a per-second system-wide load
// series — Fig 10 and the mean/stddev of Fig 8/9. The ledger keeps one
// per-second bucket row per traffic category; deposits are O(1).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "sim/audit.hpp"
#include "sim/observe.hpp"

namespace asap::sim {

/// Traffic categories, matching the paper's load decomposition.
enum class Traffic : std::uint8_t {
  kQuery = 0,    // baseline query / walker messages
  kResponse,     // baseline response messages (tracked, not in paper's load)
  kConfirm,      // ASAP content-confirmation request + reply
  kAdsRequest,   // ASAP ads-request + ads-reply messages
  kFullAd,       // full advertisements
  kPatchAd,      // patch advertisements
  kRefreshAd,    // refresh advertisements
  kPackedAd,     // byte-budget-packed ad-round frames (adaptive variants)
  kCount
};

inline constexpr std::size_t kTrafficCount =
    static_cast<std::size_t>(Traffic::kCount);

const char* traffic_name(Traffic t);

class BandwidthLedger {
 public:
  /// @param horizon  simulated duration covered by per-second buckets.
  ///                 Deposits past the covered range land in a per-category
  ///                 overflow cell: they count toward total() but are
  ///                 excluded from series(), so late stragglers cannot
  ///                 inflate the last per-second bucket (Fig 8-10 use the
  ///                 series; totals stay conserved).
  explicit BandwidthLedger(Seconds horizon);

  void deposit(Seconds t, Traffic category, Bytes bytes);

  Bytes total(Traffic category) const;
  /// Sum over a subset of categories.
  Bytes total(std::span<const Traffic> categories) const;
  Bytes grand_total() const;

  /// Bytes deposited past the bucketed horizon (included in total()).
  Bytes overflow(Traffic category) const;

  /// Per-second byte series for one category (overflow excluded).
  std::span<const Bytes> series(Traffic category) const;
  /// Per-second byte series summed over the given categories.
  std::vector<Bytes> combined_series(std::span<const Traffic> categories) const;

  std::uint32_t buckets() const { return num_buckets_; }

  /// FNV-1a over every deposit's (time, category, bytes); always
  /// maintained — see audit.hpp.
  std::uint64_t digest() const { return digest_.value(); }

  /// Installs an invariant auditor (nullptr disables). Not owned.
  void set_auditor(SimAuditor* auditor) { auditor_ = auditor; }

  /// Installs a passive observer (nullptr disables). Not owned.
  void set_observer(Observer* observer) { observer_ = observer; }

 private:
  std::uint32_t num_buckets_;
  std::array<std::vector<Bytes>, kTrafficCount> per_category_;
  std::array<Bytes, kTrafficCount> totals_{};
  std::array<Bytes, kTrafficCount> overflow_{};
  Fnv64 digest_;
  SimAuditor* auditor_ = nullptr;
  Observer* observer_ = nullptr;
};

}  // namespace asap::sim
