// One event-loop shard's pending-event structure (DESIGN.md §12, §14).
//
// The hybrid heap/ladder pair used to live inside the Engine; sharding
// the event loop by overlay partition gives every shard its own pair, so
// the hybrid is factored out here. Behavior is exactly the pre-shard
// engine queue: a hand-rolled 4-ary heap — shallower than a binary heap,
// so fewer cache lines touched per push/pop — below `ladder_threshold`
// pending items, the exact-order ladder queue (ladder_queue.hpp) above
// it, with a hysteresis gap (`heap_threshold`) so the boundary cannot
// thrash. Both structures pop in exactly the total (time, seq) order, so
// which one executes an event never shows in a run digest.
//
// Not thread-safe: a shard's queue is owned by whichever thread is
// executing that shard (the driver in canonical mode, one worker per
// shard inside a parallel window) and must never be touched by another.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "sim/ladder_queue.hpp"

namespace asap::sim {

/// Item must expose `Seconds time`, `std::uint64_t seq`, a
/// `before(const Item&)` strict order over (time, seq), and be movable
/// (the same contract LadderQueue requires).
template <typename Item>
class ShardQueue {
 public:
  /// Heap → ladder above `ladder_threshold` pending; ladder → heap below
  /// `heap_threshold` (EngineTuning semantics, same defaults).
  void set_thresholds(std::size_t ladder_threshold,
                      std::size_t heap_threshold) {
    ladder_threshold_ = ladder_threshold;
    heap_threshold_ = heap_threshold;
  }

  bool empty() const { return size() == 0; }
  std::size_t size() const {
    return use_ladder_ ? ladder_.size() : heap_.size();
  }

  /// True while the ladder queue is the active structure (diagnostics).
  bool using_ladder() const { return use_ladder_; }
  const LadderQueue<Item>& ladder() const { return ladder_; }

  void push(Item&& item) {
    if (use_ladder_) {
      ladder_.push(std::move(item));
      return;
    }
    heap_.push_back(std::move(item));
    sift_up(heap_.size() - 1);
    if (heap_.size() > ladder_threshold_) migrate_to_ladder();
  }

  /// Earliest pending item, readied for execution; nullptr when empty.
  /// The pointer is valid until the next mutation.
  const Item* front() {
    if (use_ladder_) return ladder_.peek();
    return heap_.empty() ? nullptr : &heap_.front();
  }

  /// Removes and returns the earliest item. Requires !empty().
  Item pop_front() {
    if (use_ladder_) {
      Item item = ladder_.pop();
      if (ladder_.size() < heap_threshold_) migrate_to_heap();
      return item;
    }
    Item item = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return item;
  }

 private:
  static constexpr std::size_t kArity = 4;

  void migrate_to_ladder() {
    ladder_.assign_unordered(std::move(heap_));
    heap_.clear();
    use_ladder_ = true;
  }

  void migrate_to_heap() {
    heap_ = ladder_.drain_unordered();
    use_ladder_ = false;
    const std::size_t n = heap_.size();
    if (n < 2) return;
    // Floyd heapify: sift down every internal node, last parent first.
    for (std::size_t i = (n - 2) / kArity + 1; i-- > 0;) {
      sift_down(i);
    }
  }

  void sift_up(std::size_t i) {
    Item item = std::move(heap_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!item.before(heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(item);
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    Item item = std::move(heap_[i]);
    for (;;) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t last_child = std::min(first_child + kArity, n);
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (heap_[c].before(heap_[best])) best = c;
      }
      if (!heap_[best].before(item)) break;
      heap_[i] = std::move(heap_[best]);
      i = best;
    }
    heap_[i] = std::move(item);
  }

  std::size_t ladder_threshold_ = 4096;
  std::size_t heap_threshold_ = 512;
  std::vector<Item> heap_;
  LadderQueue<Item> ladder_;
  bool use_ladder_ = false;
};

}  // namespace asap::sim
