#include "sim/slab_pool.hpp"

#include <algorithm>

namespace asap::sim {

void SlabPool::refill(std::size_t cls) {
  ASAP_DCHECK(cls < kNumClasses);
  const std::size_t block = class_size(cls);
  // First refill hands out 16 blocks; each subsequent slab doubles, capped
  // so a single reservation stays at or below 256 KiB.
  std::uint32_t blocks = next_slab_blocks_[cls];
  if (blocks == 0) blocks = 16;
  const std::size_t cap = std::max<std::size_t>(1, (256u << 10) / block);
  blocks = static_cast<std::uint32_t>(
      std::min<std::size_t>(blocks, cap));
  next_slab_blocks_[cls] =
      static_cast<std::uint32_t>(std::min<std::size_t>(2ull * blocks, cap));

  const std::size_t bytes = static_cast<std::size_t>(blocks) * block;
  slabs_.push_back(std::make_unique<std::byte[]>(bytes));
  std::byte* base = slabs_.back().get();
  reserved_ += bytes;
  // Thread the fresh slab onto the free list front-to-back so the first
  // allocations walk the slab in address order.
  FreeNode* head = free_[cls];
  for (std::size_t i = blocks; i-- > 0;) {
    auto* node = reinterpret_cast<FreeNode*>(base + i * block);
    node->next = head;
    head = node;
  }
  free_[cls] = head;
}

}  // namespace asap::sim
