// Precondition / invariant checking helpers.
//
// Following the C++ Core Guidelines (I.6, E.12), wide-contract API entry
// points validate their inputs and throw std::invalid_argument /
// std::logic_error; hot inner loops use ASAP_DCHECK which compiles away in
// release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace asap {

/// Thrown when a simulation configuration is inconsistent.
class ConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is violated (a bug, not a user error).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_config(const std::string& expr,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "configuration error: " << msg << " (violated: " << expr << ")";
  throw ConfigError(os.str());
}
[[noreturn]] inline void throw_invariant(const std::string& expr,
                                         const char* file, int line) {
  std::ostringstream os;
  os << "invariant violated at " << file << ":" << line << ": " << expr;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace asap

/// Validate a user-supplied configuration value; always on.
#define ASAP_REQUIRE(cond, msg)                         \
  do {                                                  \
    if (!(cond)) ::asap::detail::throw_config(#cond, (msg)); \
  } while (0)

/// Check an internal invariant; always on (cheap checks only).
#define ASAP_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond))                                                      \
      ::asap::detail::throw_invariant(#cond, __FILE__, __LINE__);     \
  } while (0)

/// Debug-only invariant check for hot paths.
#ifndef NDEBUG
#define ASAP_DCHECK(cond) ASAP_CHECK(cond)
#else
#define ASAP_DCHECK(cond) \
  do {                    \
  } while (0)
#endif
