#include "common/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace asap::json {

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw ConfigError(std::string("json: value is not ") + wanted);
}

}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) type_error("a bool");
  return std::get<bool>(v_);
}

double Value::as_double() const {
  if (!is_number()) type_error("a number");
  return std::get<double>(v_);
}

const std::string& Value::as_string() const {
  if (!is_string()) type_error("a string");
  return std::get<std::string>(v_);
}

const Array& Value::as_array() const {
  if (!is_array()) type_error("an array");
  return std::get<Array>(v_);
}

const Object& Value::as_object() const {
  if (!is_object()) type_error("an object");
  return std::get<Object>(v_);
}

Array& Value::as_array() {
  if (!is_array()) type_error("an array");
  return std::get<Array>(v_);
}

Object& Value::as_object() {
  if (!is_object()) type_error("an object");
  return std::get<Object>(v_);
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(v_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw ConfigError("json: missing member \"" + std::string(key) + '"');
  }
  return *v;
}

std::uint64_t Value::u64_hex() const {
  const std::string& s = as_string();
  if (s.size() < 3 || s[0] != '0' || (s[1] != 'x' && s[1] != 'X')) {
    throw ConfigError("json: expected \"0x...\" hex string, got \"" + s +
                      '"');
  }
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data() + 2, s.data() + s.size(), out, 16);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ConfigError("json: malformed hex string \"" + s + '"');
  }
  return out;
}

std::string hex_u64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// --- writer ---------------------------------------------------------------

namespace {

void write_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_number(double d, std::string& out) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    out += "null";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  ASAP_CHECK(ec == std::errc{});
  out.append(buf, ptr);
}

void write_value(const Value& v, int depth, std::string& out) {
  const auto indent = [&](int n) { out.append(2 * static_cast<std::size_t>(n), ' '); };
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    write_number(v.as_double(), out);
  } else if (v.is_string()) {
    write_string(v.as_string(), out);
  } else if (v.is_array()) {
    const Array& a = v.as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    // Arrays of scalars print on one line; arrays holding containers nest.
    bool flat = true;
    for (const auto& e : a) {
      if (e.is_array() || e.is_object()) flat = false;
    }
    out += '[';
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (flat) {
        if (i > 0) out += ", ";
      } else {
        out += i > 0 ? ",\n" : "\n";
        indent(depth + 1);
      }
      write_value(a[i], depth + 1, out);
    }
    if (!flat) {
      out += '\n';
      indent(depth);
    }
    out += ']';
  } else {
    const Object& o = v.as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < o.size(); ++i) {
      out += i > 0 ? ",\n" : "\n";
      indent(depth + 1);
      write_string(o[i].first, out);
      out += ": ";
      write_value(o[i].second, depth + 1, out);
    }
    out += '\n';
    indent(depth);
    out += '}';
  }
}

void write_value_compact(const Value& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    write_number(v.as_double(), out);
  } else if (v.is_string()) {
    write_string(v.as_string(), out);
  } else if (v.is_array()) {
    const Array& a = v.as_array();
    out += '[';
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i > 0) out += ',';
      write_value_compact(a[i], out);
    }
    out += ']';
  } else {
    const Object& o = v.as_object();
    out += '{';
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (i > 0) out += ',';
      write_string(o[i].first, out);
      out += ':';
      write_value_compact(o[i].second, out);
    }
    out += '}';
  }
}

}  // namespace

std::string dump(const Value& v) {
  std::string out;
  write_value(v, 0, out);
  out += '\n';
  return out;
}

std::string dump_compact(const Value& v) {
  std::string out;
  write_value_compact(v, out);
  return out;
}

// --- parser ---------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw ConfigError("json: " + msg + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + '\'');
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Value(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Value(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Value(nullptr);
    }
    return parse_number();
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    double out = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (ec != std::errc{} || ptr != text_.data() + pos_) {
      fail("malformed number");
    }
    return Value(out);
  }

  void append_utf8(std::uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    return out;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            expect('\\');
            expect('u');
            const std::uint32_t lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad surrogate pair");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          append_utf8(cp, out);
          break;
        }
        default:
          fail("bad escape");
      }
    }
    return out;
  }

  Value parse_array() {
    expect('[');
    Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      out.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Value(std::move(out));
  }

  Value parse_object() {
    expect('{');
    Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Value(std::move(out));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace asap::json
