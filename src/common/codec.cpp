#include "common/codec.hpp"

namespace asap::wire {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::svarint(std::int64_t v) {
  varint((static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63));
}

void Writer::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  const auto v = static_cast<std::uint16_t>(data_[pos_] |
                                            (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1);
    const std::uint8_t b = data_[pos_++];
    if (shift == 63 && (b & 0x7E) != 0) {
      throw DecodeError("wire: varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) throw DecodeError("wire: varint too long");
  }
}

std::int64_t Reader::svarint() {
  const std::uint64_t raw = varint();
  return static_cast<std::int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
}

std::span<const std::uint8_t> Reader::bytes(std::size_t n) {
  need(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

void encode_positions(Writer& w, std::span<const std::uint32_t> sorted) {
  std::uint32_t prev = 0;
  bool first = true;
  for (const std::uint32_t p : sorted) {
    if (first) {
      w.varint(p);
      first = false;
    } else {
      ASAP_REQUIRE(p > prev, "positions must be strictly increasing");
      w.varint(p - prev);
    }
    prev = p;
  }
}

std::vector<std::uint32_t> decode_positions(Reader& r, std::size_t count) {
  // Every encoded position costs at least one byte, so a count that
  // exceeds the bytes left is hostile or corrupt — reject it *before*
  // reserving, or a crafted header could force a huge allocation from a
  // tiny buffer.
  if (count > r.remaining()) {
    throw DecodeError("wire: position count exceeds remaining bytes");
  }
  std::vector<std::uint32_t> out;
  out.reserve(count);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t delta = r.varint();
    // The delta form makes strictly-increasing the only canonical
    // encoding; a zero delta after the first entry is a duplicate
    // position, which would toggle the same filter bit back OFF when a
    // patch is applied — a pollution-laundering vector, not a valid ad.
    if (i > 0 && delta == 0) {
      throw DecodeError("wire: duplicate position (zero delta)");
    }
    acc = i == 0 ? delta : acc + delta;
    if (acc > 0xFFFFFFFFULL) {
      throw DecodeError("wire: position overflows 32 bits");
    }
    out.push_back(static_cast<std::uint32_t>(acc));
  }
  return out;
}

}  // namespace asap::wire
