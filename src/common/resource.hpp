// Process resource probes for the scale benchmarks.
#pragma once

#include <cstdint>

namespace asap {

/// Peak resident set size of this process so far, in bytes (getrusage's
/// high-water mark — monotone, never decreases). 0 when unavailable.
std::uint64_t peak_rss_bytes();

}  // namespace asap
