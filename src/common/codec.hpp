// Byte-level wire codec primitives.
//
// The simulator itself only *accounts* message sizes, but a deployable
// implementation needs real encodings, and the size model should be
// backed by them. This module provides:
//   * LEB128 varints (unsigned),
//   * zig-zag signed varints,
//   * delta-encoded sorted position lists (the compressed sparse Bloom
//     filter and patch-ad bodies of §III-B: positions are sorted, so the
//     gaps are small and varint-compress well),
// plus a bounds-checked Reader/Writer pair.
#pragma once

#include <cstdint>
#include <memory_resource>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace asap::wire {

/// Thrown when decoding runs off the end of a buffer or meets malformed
/// input. Wire data is external input: decoding must never crash.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Writer {
 public:
  Writer() = default;
  /// Draws buffer storage from `mr` — e.g. a sim::SlabResource over an
  /// engine's SlabPool (sim/slab_pool.hpp) — so steady-state message
  /// encoding recycles pooled blocks instead of hitting the global
  /// allocator. `mr` must outlive the Writer.
  explicit Writer(std::pmr::memory_resource* mr) : buf_(mr) {}

  const std::pmr::vector<std::uint8_t>& buffer() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

  /// Discards contents but keeps capacity: one Writer can encode a stream
  /// of messages with at most one buffer growth overall.
  void clear() { buf_.clear(); }

  /// Contents as a plain vector (copies out of the pooled buffer).
  std::vector<std::uint8_t> to_vector() const {
    return {buf_.begin(), buf_.end()};
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  /// Fixed-width little-endian.
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  /// LEB128 varint.
  void varint(std::uint64_t v);
  /// Zig-zag signed varint.
  void svarint(std::int64_t v);
  void bytes(std::span<const std::uint8_t> data);

 private:
  std::pmr::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t varint();
  std::int64_t svarint();
  std::span<const std::uint8_t> bytes(std::size_t n);

 private:
  void need(std::size_t n) const {
    if (remaining() < n) throw DecodeError("wire: truncated input");
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Encodes a strictly increasing position list as varint deltas
/// (first value absolute, then gaps). Throws ConfigError if unsorted.
void encode_positions(Writer& w, std::span<const std::uint32_t> sorted);

/// Decodes a delta-encoded position list of `count` entries.
std::vector<std::uint32_t> decode_positions(Reader& r, std::size_t count);

}  // namespace asap::wire
