#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace asap {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::population_variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::population_stddev() const {
  return std::sqrt(population_variance());
}

Histogram::Histogram(double lo, double hi, std::uint32_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / bins), counts_(bins, 0) {
  ASAP_REQUIRE(hi > lo, "histogram range must be non-empty");
  ASAP_REQUIRE(bins >= 1, "histogram needs at least one bin");
}

void Histogram::add(double x, std::uint64_t weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  // Floating-point division can round x just under hi_ up to bins(); keep
  // such samples in the last bin rather than walking off the array.
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  counts_[idx] += weight;
}

double Histogram::bin_lo(std::uint32_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double percentile_sorted(std::span<const double> sorted, double q) {
  ASAP_REQUIRE(!sorted.empty(), "percentile of empty sample set");
  ASAP_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double percentile_in_place(std::span<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, q);
}

double percentile(std::vector<double> samples, double q) {
  return percentile_in_place(samples, q);
}

}  // namespace asap
