#include "common/thread_pool.hpp"

#include <algorithm>

namespace asap {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;  // no indices: never touch the pool or its state
  std::vector<std::future<void>> futs;
  futs.reserve(count);
  // A concurrent shutdown() can make submit() throw partway through this
  // loop. The already-submitted tasks still reference `fn` (and may still
  // be draining on workers), so the submit error must not propagate until
  // every one of them has finished.
  std::exception_ptr submit_error;
  for (std::size_t i = 0; i < count; ++i) {
    try {
      futs.push_back(submit([&fn, i] { fn(i); }));
    } catch (...) {
      submit_error = std::current_exception();
      break;
    }
  }
  // Wait for *every* submitted task before rethrowing anything: tasks
  // capture `fn` by reference, so returning early while some still run
  // would leave them with a dangling reference.
  std::exception_ptr first;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  // A task failure outranks the submit failure: it carries the caller's
  // own error, and dropping it would hide a real fn() exception behind a
  // generic "submit after shutdown".
  if (first) std::rethrow_exception(first);
  if (submit_error) std::rethrow_exception(submit_error);
}

}  // namespace asap
