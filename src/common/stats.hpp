// Streaming and batch statistics used by the metrics collectors.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace asap {

/// Numerically stable streaming mean/variance (Welford), plus min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Bessel-corrected sample variance (denominator n-1) — the unbiased
  /// estimator appropriate when the samples are trials drawn from a wider
  /// population, which is how aggregate.hpp summarizes per-trial metrics.
  /// 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  /// Population variance (denominator n), for when the samples ARE the
  /// whole population — e.g. every per-second bucket of a load series.
  double population_variance() const;
  double population_stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width linear histogram over [lo, hi). Out-of-range samples are
/// tallied in dedicated underflow/overflow cells rather than clamped into
/// the boundary bins, so the edge bins report only genuinely in-range
/// samples; total() still counts everything.
class Histogram {
 public:
  Histogram(double lo, double hi, std::uint32_t bins);

  void add(double x, std::uint64_t weight = 1);

  std::uint32_t bins() const { return static_cast<std::uint32_t>(counts_.size()); }
  std::uint64_t bin_count(std::uint32_t i) const { return counts_.at(i); }
  double bin_lo(std::uint32_t i) const;
  double bin_hi(std::uint32_t i) const { return bin_lo(i + 1); }
  /// Weight of samples below lo / at-or-above hi.
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  /// Weight of samples that landed in a bin (excludes under/overflow).
  std::uint64_t in_range() const { return total_ - underflow_ - overflow_; }
  /// Everything ever added, in range or not.
  std::uint64_t total() const { return total_; }

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Exact percentile of an ALREADY ASCENDING-SORTED sample span (q in
/// [0,1], linear interpolation). The allocation-free core: sort once,
/// then read as many quantiles as needed.
double percentile_sorted(std::span<const double> sorted, double q);

/// Sorts `samples` in place (ascending) and returns the percentile.
/// Callers that own a scratch buffer use this to avoid the copy; repeated
/// quantiles of the same data should sort once and use percentile_sorted.
double percentile_in_place(std::span<double> samples, double q);

/// Exact percentile of a sample vector (q in [0,1], linear interpolation).
/// Sorts a copy; convenience form for call sites where the copy is cold
/// (one-shot reporting). Hot paths use the span variants above.
double percentile(std::vector<double> samples, double q);

}  // namespace asap
