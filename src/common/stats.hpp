// Streaming and batch statistics used by the metrics collectors.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace asap {

/// Numerically stable streaming mean/variance (Welford), plus min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (denominator n); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width linear histogram over [lo, hi); out-of-range samples clamp to
/// the boundary bins so totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::uint32_t bins);

  void add(double x, std::uint64_t weight = 1);

  std::uint32_t bins() const { return static_cast<std::uint32_t>(counts_.size()); }
  std::uint64_t bin_count(std::uint32_t i) const { return counts_.at(i); }
  double bin_lo(std::uint32_t i) const;
  double bin_hi(std::uint32_t i) const { return bin_lo(i + 1); }
  std::uint64_t total() const { return total_; }

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Exact percentile of a sample vector (q in [0,1], linear interpolation).
/// Sorts a copy; intended for end-of-run reporting, not hot paths.
double percentile(std::vector<double> samples, double q);

}  // namespace asap
