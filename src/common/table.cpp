#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace asap {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ASAP_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  ASAP_REQUIRE(cells.size() == headers_.size(),
               "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::bytes(double v) {
  const char* suffix = "B";
  if (v >= 1e9) {
    v /= 1e9;
    suffix = "GB";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = "MB";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = "KB";
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << v << " " << suffix;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace asap
