// Fundamental identifier and quantity types shared by every asap_p2p module.
#pragma once

#include <cstdint>
#include <limits>

namespace asap {

/// Identifier of a node in the physical (transit-stub) network.
using PhysNodeId = std::uint32_t;
/// Identifier of a peer in the P2P overlay.
using NodeId = std::uint32_t;
/// Identifier of a logical document (all replicas share one DocId).
using DocId = std::uint32_t;
/// Identifier of a keyword (hashed term).
using KeywordId = std::uint32_t;
/// Identifier of a semantic class / ad topic (paper uses 14 classes).
using TopicId = std::uint8_t;

/// Virtual simulation time, in seconds.
using Seconds = double;
/// Quantity of network traffic, in bytes.
using Bytes = std::uint64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr PhysNodeId kInvalidPhysNode =
    std::numeric_limits<PhysNodeId>::max();
inline constexpr DocId kInvalidDoc = std::numeric_limits<DocId>::max();

/// Milliseconds expressed as Seconds, for latency constants.
constexpr Seconds ms(double v) { return v / 1000.0; }

}  // namespace asap
