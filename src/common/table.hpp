// Fixed-width plain-text table printer for bench / example output.
//
// Benches reproduce paper figures as text tables; this keeps their output
// aligned and diff-friendly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace asap {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  /// Formats with engineering suffix (K/M/G) for byte quantities.
  static std::string bytes(double v);

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace asap
