#include "common/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace asap {

ZipfSampler::ZipfSampler(std::uint32_t n, double alpha)
    : n_(n), alpha_(alpha) {
  ASAP_REQUIRE(n >= 1, "ZipfSampler needs at least one rank");
  ASAP_REQUIRE(alpha >= 0.0, "Zipf exponent must be non-negative");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::uint32_t r = 1; r <= n; ++r) {
    acc += std::pow(static_cast<double>(r), -alpha);
    cdf_[r - 1] = acc;
  }
  const double total = acc;
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding drift
}

std::uint32_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint32_t>(it - cdf_.begin()) + 1;
}

double ZipfSampler::pmf(std::uint32_t rank) const {
  ASAP_REQUIRE(rank >= 1 && rank <= n_, "rank out of range");
  const double lo = rank == 1 ? 0.0 : cdf_[rank - 2];
  return cdf_[rank - 1] - lo;
}

ZipfRejectionSampler::ZipfRejectionSampler(std::uint32_t n, double alpha)
    : n_(n),
      s_(alpha),
      oms_(1.0 - alpha),
      spole_(std::abs(oms_) < 1e-8),
      rvs_(spole_ ? 0.0 : 1.0 / oms_),
      H_x1_(H(1.5) - h(1.0)),
      H_n_(H(static_cast<double>(n) + 0.5)),
      cut_(1.0 - H_inv(H(1.5) - h(1.0))) {
  ASAP_REQUIRE(n >= 1, "ZipfRejectionSampler needs at least one rank");
  ASAP_REQUIRE(alpha >= 0.0, "Zipf exponent must be non-negative");
}

std::uint32_t ZipfRejectionSampler::sample(Rng& rng) const {
  if (n_ == 1) return 1;
  while (true) {
    const double u = rng.uniform(H_x1_, H_n_);
    const double x = H_inv(u);
    const double rounded = std::round(x);
    auto k = static_cast<std::uint32_t>(
        std::min(std::max(rounded, 1.0), static_cast<double>(n_)));
    if (static_cast<double>(k) - x <= cut_) return k;
    if (u >= H(static_cast<double>(k) + 0.5) - h(static_cast<double>(k)))
      return k;
  }
}

double ZipfRejectionSampler::H(double x) const {
  return spole_ ? std::log(x) : std::expm1(oms_ * std::log(x)) * rvs_;
}

double ZipfRejectionSampler::H_inv(double x) const {
  return spole_ ? std::exp(x) : std::exp(rvs_ * std::log1p(x * oms_));
}

double ZipfRejectionSampler::h(double x) const {
  return std::exp(-s_ * std::log(x));
}

ZipfDraw::ZipfDraw(std::uint32_t n, double alpha) : n_(n), alpha_(alpha) {
  if (n <= kCdfMaxRanks) {
    cdf_ = std::make_unique<ZipfSampler>(n, alpha);
  } else {
    rejection_ = std::make_unique<ZipfRejectionSampler>(n, alpha);
  }
}

std::vector<std::uint32_t> powerlaw_degree_sequence(std::uint32_t count,
                                                    double alpha,
                                                    std::uint32_t dmin,
                                                    std::uint32_t dmax,
                                                    double target_mean,
                                                    Rng& rng) {
  ASAP_REQUIRE(count >= 2, "degree sequence needs >= 2 nodes");
  ASAP_REQUIRE(dmin >= 1 && dmin <= dmax, "invalid degree bounds");
  ASAP_REQUIRE(target_mean >= dmin && target_mean <= dmax,
               "target mean outside degree bounds");

  const std::uint32_t span = dmax - dmin + 1;
  ZipfSampler zipf(span, alpha);
  std::vector<std::uint32_t> deg(count);

  // Draw, then nudge individual entries toward the target mean. Resampling
  // the farthest-off entries preserves the power-law body while pinning the
  // mean (the experiments care about mean degree, e.g. 5.0 or 3.35).
  for (auto& d : deg) d = dmin + zipf.sample(rng) - 1;

  // Maintained incrementally: recomputing the O(n) sum on each of the up
  // to 200k nudge passes made this loop O(n^2) for large worlds.
  auto sum = std::accumulate(deg.begin(), deg.end(), 0ULL);

  // The sum must move by O(n) to shift the mean, so the pass cap scales
  // with n (40n matches the old fixed 200k cap at the 5k-node scale —
  // affordable now that each pass is O(1)).
  const std::uint64_t max_passes = 40ULL * count;
  for (std::uint64_t pass = 0; pass < max_passes; ++pass) {
    const double m = static_cast<double>(sum) / static_cast<double>(count);
    if (std::abs(m - target_mean) * static_cast<double>(count) < 1.0) break;
    auto& d = deg[rng.below(count)];
    if (m > target_mean && d > dmin) {
      --d;
      --sum;
    } else if (m < target_mean && d < dmax) {
      ++d;
      ++sum;
    }
  }

  // Even total so a pairing-model construction can terminate cleanly.
  if (sum % 2 != 0) {
    for (auto& d : deg) {
      if (d < dmax) {
        ++d;
        break;
      }
    }
  }
  return deg;
}

}  // namespace asap
