// Minimal fixed-size thread pool for running independent experiment cells
// and embarrassingly-parallel preprocessing (e.g. per-domain APSP).
//
// Each simulation cell is deterministic and single-threaded; the pool only
// parallelizes *across* cells, so no shared mutable state crosses tasks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace asap {

class ThreadPool {
 public:
  /// @param threads number of workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the returned future rethrows any task exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, count) across the pool and wait for all.
  /// Exceptions from tasks are rethrown (first one wins).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace asap
