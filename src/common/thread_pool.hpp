// Minimal fixed-size thread pool for running independent experiment cells
// and embarrassingly-parallel preprocessing (e.g. per-domain APSP).
//
// Each simulation cell is deterministic and single-threaded; the pool only
// parallelizes *across* cells, so no shared mutable state crosses tasks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace asap {

class ThreadPool {
 public:
  /// @param threads number of workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Drains queued tasks, then joins all workers. Idempotent; called by
  /// the destructor. After shutdown, submit() throws.
  void shutdown();

  /// Enqueue a task; the returned future rethrows any task exception.
  /// Throws InvariantError after shutdown() — a task enqueued then would
  /// never run and its future would never become ready.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      if (stop_) {
        throw InvariantError("ThreadPool::submit after shutdown");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, count) across the pool and wait for all.
  /// count == 0 is a pure no-op (the pool is never touched, so it works
  /// even after shutdown). The first task exception (in index order) is
  /// rethrown — but only after every submitted task has finished, so no
  /// task still references `fn` when this returns or throws. A
  /// shutdown() racing the submit loop surfaces as InvariantError, again
  /// only after all already-submitted tasks drained.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace asap
