#include "common/rng.hpp"

#include <cmath>
#include <unordered_set>

namespace asap {

double Rng::exponential(double rate) {
  ASAP_DCHECK(rate > 0.0);
  // -log(1-u) with u in [0,1) avoids log(0).
  return -std::log1p(-uniform01()) / rate;
}

double Rng::normal(double mean, double stddev) {
  // Marsaglia polar method; one value per call (the spare is discarded to
  // keep the generator state a pure function of call count).
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
}

std::uint64_t Rng::geometric(double p) {
  ASAP_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  return static_cast<std::uint64_t>(std::log1p(-uniform01()) /
                                    std::log1p(-p));
}

std::uint64_t Rng::poisson(double mean) {
  ASAP_DCHECK(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    double prod = uniform01();
    std::uint64_t n = 0;
    while (prod > limit) {
      prod *= uniform01();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction is adequate for the
  // large-mean case (used only for bulk workload synthesis, never in the
  // per-event hot path).
  double x;
  do {
    x = normal(mean, std::sqrt(mean));
  } while (x < 0.0);
  return static_cast<std::uint64_t>(x + 0.5);
}

std::vector<std::uint32_t> Rng::sample_indices(std::uint32_t n,
                                               std::uint32_t k) {
  ASAP_REQUIRE(k <= n, "sample size exceeds population");
  std::vector<std::uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3ULL >= n) {
    // Dense case: partial Fisher-Yates over the full index range.
    std::vector<std::uint32_t> all(n);
    for (std::uint32_t i = 0; i < n; ++i) all[i] = i;
    for (std::uint32_t i = 0; i < k; ++i) {
      const auto j = i + static_cast<std::uint32_t>(below(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  // Sparse case: rejection sampling against a hash set.
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    const auto idx = static_cast<std::uint32_t>(below(n));
    if (seen.insert(idx).second) out.push_back(idx);
  }
  return out;
}

}  // namespace asap
