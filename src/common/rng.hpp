// Deterministic pseudo-random number generation.
//
// The simulator must be bit-reproducible across runs for a given seed, so we
// carry our own xoshiro256** implementation instead of relying on
// implementation-defined std::distributions. All distribution helpers below
// are written against the raw 64-bit stream and behave identically on every
// platform.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace asap {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
///
/// Satisfies UniformRandomBitGenerator so it can also feed std algorithms,
/// though the helpers below are preferred for reproducibility.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5EEDDEADBEEFULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t below(std::uint64_t bound) {
    ASAP_DCHECK(bound > 0);
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    ASAP_DCHECK(lo <= hi);
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// PTRS rejection for large).
  std::uint64_t poisson(double mean);

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Geometric number of failures before first success, p in (0,1].
  std::uint64_t geometric(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick one element uniformly (container must be non-empty).
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    ASAP_DCHECK(!v.empty());
    return v[below(v.size())];
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::uint32_t> sample_indices(std::uint32_t n, std::uint32_t k);

  /// Derive an independent child generator (stable given call order).
  Rng fork() { return Rng(next_u64() ^ 0xA5A5A5A5DEADC0DEULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

}  // namespace asap
