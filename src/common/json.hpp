// Minimal JSON document model, writer and parser.
//
// Used by the experiment-matrix runner for `results.json` and by the
// golden-metrics regression gate, which re-parses a committed results
// file; carrying our own ~300-line implementation keeps the toolchain
// dependency-free. Scope is deliberately small:
//
//   * Objects preserve insertion order (diffs against committed files stay
//     stable) and are stored as flat vectors — fine for the dozens of keys
//     a results file holds.
//   * Numbers are doubles. 64-bit quantities that must round-trip exactly
//     (digests, seeds) are serialized as "0x..." hex strings; u64_hex()
//     converts back.
//   * The writer emits shortest-round-trip doubles via std::to_chars, so
//     dump(parse(s)) is byte-stable for machine-generated files.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace asap::json {

class Value;
using Array = std::vector<Value>;
/// Insertion-ordered object; duplicate keys are not rejected but find()
/// returns the first.
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(double d) : v_(d) {}
  Value(int i) : v_(static_cast<double>(i)) {}
  Value(unsigned i) : v_(static_cast<double>(i)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  /// Typed accessors; throw ConfigError when the type does not match.
  bool as_bool() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
  /// Object member access; throws ConfigError when absent.
  const Value& at(std::string_view key) const;

  /// Parses a "0x..." hex string member back into a uint64 (see file
  /// comment); throws ConfigError on malformed input.
  std::uint64_t u64_hex() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Formats a uint64 as the "0x..." string form u64_hex() accepts.
std::string hex_u64(std::uint64_t v);

/// Serializes with 2-space indentation and a trailing newline at top level.
std::string dump(const Value& v);

/// Serializes onto a single line with no whitespace and no trailing
/// newline — the JSONL form the trace sink emits one record per line.
std::string dump_compact(const Value& v);

/// Parses a complete JSON document; throws ConfigError with position info
/// on malformed input or trailing garbage.
Value parse(std::string_view text);

}  // namespace asap::json
