// Open-addressing hash containers for per-node protocol state.
//
// The simulator keeps one AdCache (and several bookkeeping maps) per node,
// so at 1M nodes the fixed cost of every container is what decides whether a
// world fits in memory. std::unordered_map is ~56 bytes empty plus one heap
// node per entry; FlatMap below is 16 bytes empty, allocates lazily, and
// stores entries inline in a single slab with linear probing.
//
// Deletion uses backward-shift (no tombstones), so probe chains never decay
// under the churn-heavy insert/erase traffic of cache eviction. Keys must be
// unsigned integers and values trivially copyable — everything on the hot
// paths (NodeId -> slot index, NodeId -> deadline) qualifies, and the
// restriction is what lets the slab be raw bytes with memcpy copies.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>

#include "common/error.hpp"

namespace asap {

namespace detail {

/// SplitMix64 finalizer: cheap, well-mixed, and deterministic everywhere.
inline std::uint64_t flat_hash(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace detail

template <class Key, class Value>
class FlatMap {
  static_assert(std::is_unsigned_v<Key>, "FlatMap keys are unsigned ints");
  static_assert(std::is_trivially_copyable_v<Value>,
                "FlatMap values must be trivially copyable");

  struct Slot {
    Key key;
    [[no_unique_address]] Value val;
  };

 public:
  FlatMap() = default;

  FlatMap(const FlatMap& other) { copy_from(other); }
  FlatMap& operator=(const FlatMap& other) {
    if (this != &other) copy_from(other);
    return *this;
  }
  FlatMap(FlatMap&& other) noexcept
      : mem_(std::move(other.mem_)), cap_(other.cap_), size_(other.size_) {
    other.cap_ = 0;
    other.size_ = 0;
  }
  FlatMap& operator=(FlatMap&& other) noexcept {
    mem_ = std::move(other.mem_);
    cap_ = other.cap_;
    size_ = other.size_;
    other.cap_ = 0;
    other.size_ = 0;
    return *this;
  }

  std::uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint32_t capacity() const { return cap_; }

  /// Bytes owned by the slab (zero until the first insert).
  std::uint64_t memory_bytes() const {
    return static_cast<std::uint64_t>(cap_) * (sizeof(Slot) + 1);
  }

  const Value* find(Key key) const {
    if (size_ == 0) return nullptr;
    const std::uint32_t mask = cap_ - 1;
    std::uint32_t i = home(key, mask);
    while (used()[i]) {
      if (slots()[i].key == key) return &slots()[i].val;
      i = (i + 1) & mask;
    }
    return nullptr;
  }
  Value* find(Key key) {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }
  bool contains(Key key) const { return find(key) != nullptr; }

  /// Inserts (key, value) if absent; returns true if inserted.
  bool emplace(Key key, Value value) {
    reserve_one();
    const std::uint32_t mask = cap_ - 1;
    std::uint32_t i = home(key, mask);
    while (used()[i]) {
      if (slots()[i].key == key) return false;
      i = (i + 1) & mask;
    }
    used()[i] = 1;
    slots()[i] = Slot{key, value};
    ++size_;
    return true;
  }

  /// Returns the value for `key`, default-constructing it if absent.
  Value& operator[](Key key) {
    reserve_one();
    const std::uint32_t mask = cap_ - 1;
    std::uint32_t i = home(key, mask);
    while (used()[i]) {
      if (slots()[i].key == key) return slots()[i].val;
      i = (i + 1) & mask;
    }
    used()[i] = 1;
    slots()[i] = Slot{key, Value{}};
    ++size_;
    return slots()[i].val;
  }

  /// Removes `key` via backward-shift deletion; returns true if present.
  bool erase(Key key) {
    if (size_ == 0) return false;
    const std::uint32_t mask = cap_ - 1;
    std::uint32_t i = home(key, mask);
    while (true) {
      if (!used()[i]) return false;
      if (slots()[i].key == key) break;
      i = (i + 1) & mask;
    }
    // Walk the chain after the hole; any entry whose home precedes the hole
    // (cyclically) slides back so later probes still find it.
    std::uint32_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (!used()[j]) break;
      const std::uint32_t h = home(slots()[j].key, mask);
      if (((j - h) & mask) >= ((j - i) & mask)) {
        slots()[i] = slots()[j];
        i = j;
      }
    }
    used()[i] = 0;
    --size_;
    return true;
  }

  void clear() {
    mem_.reset();
    cap_ = 0;
    size_ = 0;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t i = 0; i < cap_; ++i) {
      if (used()[i]) fn(slots()[i].key, slots()[i].val);
    }
  }

 private:
  static std::uint32_t home(Key key, std::uint32_t mask) {
    return static_cast<std::uint32_t>(
               detail::flat_hash(static_cast<std::uint64_t>(key))) &
           mask;
  }

  Slot* slots() { return reinterpret_cast<Slot*>(mem_.get()); }
  const Slot* slots() const {
    return reinterpret_cast<const Slot*>(mem_.get());
  }
  std::uint8_t* used() {
    return reinterpret_cast<std::uint8_t*>(mem_.get() +
                                           std::size_t{cap_} * sizeof(Slot));
  }
  const std::uint8_t* used() const {
    return reinterpret_cast<const std::uint8_t*>(
        mem_.get() + std::size_t{cap_} * sizeof(Slot));
  }

  void copy_from(const FlatMap& other) {
    if (other.cap_ == 0) {
      clear();
      return;
    }
    const std::size_t bytes =
        std::size_t{other.cap_} * (sizeof(Slot) + 1);
    mem_ = std::make_unique<std::byte[]>(bytes);
    std::memcpy(mem_.get(), other.mem_.get(), bytes);
    cap_ = other.cap_;
    size_ = other.size_;
  }

  /// Grows to keep load factor below 3/4 with one more entry.
  void reserve_one() {
    if (cap_ != 0 && size_ + 1 <= cap_ - cap_ / 4) return;
    rehash(cap_ == 0 ? 8 : cap_ * 2);
  }

  void rehash(std::uint32_t new_cap) {
    ASAP_DCHECK((new_cap & (new_cap - 1)) == 0);
    const std::size_t bytes = std::size_t{new_cap} * (sizeof(Slot) + 1);
    auto fresh = std::make_unique<std::byte[]>(bytes);
    auto* fresh_slots = reinterpret_cast<Slot*>(fresh.get());
    auto* fresh_used = reinterpret_cast<std::uint8_t*>(
        fresh.get() + std::size_t{new_cap} * sizeof(Slot));
    std::memset(fresh_used, 0, new_cap);
    const std::uint32_t mask = new_cap - 1;
    for (std::uint32_t i = 0; i < cap_; ++i) {
      if (!used()[i]) continue;
      std::uint32_t j = home(slots()[i].key, mask);
      while (fresh_used[j]) j = (j + 1) & mask;
      fresh_used[j] = 1;
      fresh_slots[j] = slots()[i];
    }
    mem_ = std::move(fresh);
    cap_ = new_cap;
  }

  std::unique_ptr<std::byte[]> mem_;
  std::uint32_t cap_ = 0;
  std::uint32_t size_ = 0;
};

/// Set view over FlatMap: same probing, zero-size payload.
template <class Key>
class FlatSet {
  struct Unit {};

 public:
  std::uint32_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  std::uint64_t memory_bytes() const { return map_.memory_bytes(); }
  bool contains(Key key) const { return map_.contains(key); }
  /// Returns true if `key` was newly inserted.
  bool insert(Key key) { return map_.emplace(key, Unit{}); }
  bool erase(Key key) { return map_.erase(key); }
  void clear() { map_.clear(); }

 private:
  FlatMap<Key, Unit> map_;
};

}  // namespace asap
