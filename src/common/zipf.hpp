// Bounded Zipf / discrete power-law samplers.
//
// Used for document popularity (eDonkey replication skew) and power-law
// overlay degree sequences. Sampling is O(log n) via binary search on a
// precomputed CDF; construction is O(n).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace asap {

/// Samples ranks r in [1, n] with P(r) proportional to r^-alpha.
class ZipfSampler {
 public:
  /// @param n      number of ranks (must be >= 1)
  /// @param alpha  skew exponent (>= 0; 0 degenerates to uniform)
  ZipfSampler(std::uint32_t n, double alpha);

  /// Draws a rank in [1, n].
  std::uint32_t sample(Rng& rng) const;

  /// Probability mass of rank r (1-based).
  double pmf(std::uint32_t rank) const;

  std::uint32_t size() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  std::uint32_t n_;
  double alpha_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i+1); back() == 1.0
};

/// Draws an integer-valued degree sequence of given length whose values
/// follow P(d) ~ d^-alpha on [dmin, dmax], then rescales (by resampling)
/// until the mean lands within `mean_tolerance` of `target_mean` and the
/// total is even (so a multigraph-free pairing exists).
std::vector<std::uint32_t> powerlaw_degree_sequence(std::uint32_t count,
                                                    double alpha,
                                                    std::uint32_t dmin,
                                                    std::uint32_t dmax,
                                                    double target_mean,
                                                    Rng& rng);

}  // namespace asap
