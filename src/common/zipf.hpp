// Bounded Zipf / discrete power-law samplers.
//
// Used for document popularity (eDonkey replication skew) and power-law
// overlay degree sequences. Sampling is O(log n) via binary search on a
// precomputed CDF; construction is O(n).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace asap {

/// Samples ranks r in [1, n] with P(r) proportional to r^-alpha.
class ZipfSampler {
 public:
  /// @param n      number of ranks (must be >= 1)
  /// @param alpha  skew exponent (>= 0; 0 degenerates to uniform)
  ZipfSampler(std::uint32_t n, double alpha);

  /// Draws a rank in [1, n].
  std::uint32_t sample(Rng& rng) const;

  /// Probability mass of rank r (1-based).
  double pmf(std::uint32_t rank) const;

  std::uint32_t size() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  std::uint32_t n_;
  double alpha_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i+1); back() == 1.0
};

/// Samples ranks r in [1, n] with P(r) proportional to r^-alpha in O(1)
/// per draw and O(1) memory (no CDF table), via rejection-inversion
/// (Hörmann & Derflinger, ACM TOMACS 6.3, 1996).
///
/// This is what makes million-rank popularity draws feasible: the CDF
/// sampler above costs O(n) doubles to build, which at 1M ranks per class
/// is exactly the dense table the streaming trace path must avoid. The
/// acceptance loop takes < 1.1 iterations on average for every alpha.
class ZipfRejectionSampler {
 public:
  /// @param n      number of ranks (must be >= 1)
  /// @param alpha  skew exponent (>= 0; 0 degenerates to uniform)
  ZipfRejectionSampler(std::uint32_t n, double alpha);

  /// Draws a rank in [1, n]. Consumes a variable number of uniforms
  /// (usually one) — callers needing a fixed draw count must use the CDF
  /// sampler.
  std::uint32_t sample(Rng& rng) const;

  std::uint32_t size() const { return n_; }
  double alpha() const { return s_; }

 private:
  double H(double x) const;      // integral of the hat: (x^(1-s)-1)/(1-s)
  double H_inv(double x) const;  // inverse of H
  double h(double x) const;      // hat function x^-s

  std::uint32_t n_;
  double s_;
  double oms_;    // 1 - s
  bool spole_;    // |1 - s| below epsilon: use the log/exp pole forms
  double rvs_;    // 1 / (1 - s) away from the pole
  double H_x1_;   // H(1.5) - h(1.0), lower end of the inversion range
  double H_n_;    // H(n + 0.5), upper end
  double cut_;    // immediate-accept threshold on k - x
};

/// Popularity-draw facade: CDF sampler below kCdfMaxRanks, rejection-
/// inversion above.
///
/// The split keeps every draw at historical rank counts bit-identical to
/// the CDF path (one uniform01 per draw, same lower_bound walk) while
/// large worlds get the O(1)-memory sampler — run digests at existing
/// scales cannot move.
class ZipfDraw {
 public:
  static constexpr std::uint32_t kCdfMaxRanks = 4096;

  ZipfDraw(std::uint32_t n, double alpha);

  std::uint32_t sample(Rng& rng) const {
    return rejection_ ? rejection_->sample(rng) : cdf_->sample(rng);
  }

  std::uint32_t size() const { return n_; }
  double alpha() const { return alpha_; }
  bool uses_rejection() const { return rejection_ != nullptr; }

 private:
  std::uint32_t n_;
  double alpha_;
  std::unique_ptr<ZipfSampler> cdf_;
  std::unique_ptr<ZipfRejectionSampler> rejection_;
};

/// Draws an integer-valued degree sequence of given length whose values
/// follow P(d) ~ d^-alpha on [dmin, dmax], then rescales (by resampling)
/// until the mean lands within `mean_tolerance` of `target_mean` and the
/// total is even (so a multigraph-free pairing exists).
std::vector<std::uint32_t> powerlaw_degree_sequence(std::uint32_t count,
                                                    double alpha,
                                                    std::uint32_t dmin,
                                                    std::uint32_t dmax,
                                                    double target_mean,
                                                    Rng& rng);

}  // namespace asap
