#include "common/resource.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace asap {

std::uint64_t peak_rss_bytes() {
#if defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#elif defined(__unix__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#else
  return 0;
#endif
}

}  // namespace asap
