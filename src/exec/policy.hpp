// Execution policies: pluggable backends for intra-trial parallelism.
//
// MatrixRunner (PR 2) parallelizes *across* trials; the sharded event
// loop (DESIGN.md §14) parallelizes *inside* one trial. Both fan a fixed
// index space out over workers and barrier on completion — this header
// carries the one abstraction they share, in the zpc seq/omp policy
// style: a `Policy` runs `fn(i)` for i in [0, count) and returns when
// every index has finished. `SeqPolicy` runs them in order on the caller
// (the reference semantics, and the backend differential tests pin
// against); `PoolPolicy` fans out over a `common::ThreadPool`.
//
// Contract: callers own all cross-index synchronization. A policy
// guarantees only that (a) every index runs exactly once, (b) run()
// does not return until all indices finished, and (c) the first task
// exception (lowest index) is rethrown after that barrier — identical
// semantics to ThreadPool::parallel_for, which PoolPolicy delegates to.
#pragma once

#include <cstddef>
#include <functional>

namespace asap {
class ThreadPool;  // common/thread_pool.hpp
}  // namespace asap

namespace asap::exec {

/// Usable hardware lanes: std::thread::hardware_concurrency() clamped to
/// >= 1 — the standard allows it to return 0 when the platform cannot
/// tell, and every auto-detect (ThreadPool size, MatrixRunner jobs,
/// EngineTuning::shards = 0) must degrade to serial, never to zero.
std::size_t hardware_lanes();

class Policy {
 public:
  virtual ~Policy() = default;

  /// Parallel width this policy can actually deliver (1 for SeqPolicy).
  virtual std::size_t lanes() const = 0;

  /// Runs fn(i) for every i in [0, count); returns after all complete.
  virtual void run(std::size_t count,
                   const std::function<void(std::size_t)>& fn) = 0;
};

/// Serial reference backend: fn(0), fn(1), ... on the calling thread.
class SeqPolicy final : public Policy {
 public:
  std::size_t lanes() const override { return 1; }
  void run(std::size_t count,
           const std::function<void(std::size_t)>& fn) override;
};

/// ThreadPool backend. The pool is borrowed, not owned, so one pool can
/// serve many policy users (the matrix runner reuses its trial pool for
/// the world-build fan-out, and a sharded engine can share it too).
class PoolPolicy final : public Policy {
 public:
  explicit PoolPolicy(ThreadPool& pool) : pool_(&pool) {}

  std::size_t lanes() const override;
  void run(std::size_t count,
           const std::function<void(std::size_t)>& fn) override;

 private:
  ThreadPool* pool_;
};

}  // namespace asap::exec
