#include "exec/policy.hpp"

#include <algorithm>
#include <thread>

#include "common/thread_pool.hpp"

namespace asap::exec {

std::size_t hardware_lanes() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void SeqPolicy::run(std::size_t count,
                    const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) fn(i);
}

std::size_t PoolPolicy::lanes() const { return std::max<std::size_t>(1, pool_->size()); }

void PoolPolicy::run(std::size_t count,
                     const std::function<void(std::size_t)>& fn) {
  pool_->parallel_for(count, fn);
}

}  // namespace asap::exec
