#include "bloom/hashed_query.hpp"

#include "bloom/probe.hpp"
#include "common/error.hpp"

namespace asap::bloom {

HashedKey::HashedKey(std::uint64_t key, const BloomParams& params)
    : key_(key) {
  ASAP_DCHECK(params.hashes <= kMaxHashes);
  probe::for_each_position(key, params.bits, params.hashes,
                           [this](std::uint32_t pos) {
                             pos_[count_++] = pos;
                             fold_mask_ |= 1ULL << (pos & 63);
                           });
}

void HashedQuery::assign(std::span<const KeywordId> terms,
                         const BloomParams& params) {
  params_ = params;
  terms_.assign(terms.begin(), terms.end());
  keys_.clear();
  keys_.reserve(terms_.size());
  fold_all_ = 0;
  batch_.clear();
  for (const KeywordId term : terms_) {
    const HashedKey& k = keys_.emplace_back(term, params);
    fold_all_ |= k.fold_mask();
    batch_.add_positions(k.positions());
  }
  batch_.finalize();
}

}  // namespace asap::bloom
