// The one Kirsch–Mitzenmacher probe sequence shared by every filter.
//
// All Bloom variants in the system (BloomFilter, CountingBloomFilter,
// VariableBloomFilter) and the query-side fast path (hashed_query.hpp)
// derive their k probe positions from the same double-hashing scheme:
//
//   h1 = mix(key),  h2 = mix(key ^ golden) | 1
//   pos_i = ((h1 + i*h2) mod 2^64) mod m          for i in [0, k)
//
// The "mod 2^64" is load-bearing: the historical implementations let the
// 64-bit accumulator wrap naturally, and every committed run digest and
// golden metric depends on the resulting positions. Any replacement must
// reproduce them bit-for-bit.
//
// for_each_position() does, divisionlessly: it reduces h1 and h2 mod m
// once (two divisions per key instead of one per probe), then steps the
// reduced residue with add-and-conditional-subtract. A 64-bit shadow
// accumulator detects the rare mod-2^64 wrap, which is folded in as a
// precomputed additive correction — see the identity argument below and
// DESIGN.md §10.
//
// Identity argument. Let r_i = pos_i, r2 = h2 mod m, w = 2^64 mod m.
//   * No wrap at step i:   v_{i+1} = v_i + h2, so
//     r_{i+1} = (r_i + r2) mod m — one add, one conditional subtract.
//   * Wrap at step i:      v_{i+1} = v_i + h2 - 2^64, so
//     r_{i+1} = (r_i + r2 - w) mod m = (r_i + r2 + (m - w)) mod m.
//     Both operands of each add are < m, so two conditional subtracts
//     restore the invariant r < m. The wrap test (accumulator decreased
//     after the add) is exact because 0 < h2 < 2^64.
// Hence every emitted position equals the canonical formula's.
#pragma once

#include <cstdint>
#include <type_traits>

namespace asap::bloom::probe {

/// SplitMix64-style finalizer; good avalanche for sequential keyword ids.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// The Kirsch–Mitzenmacher hash pair for one key. h2 is forced odd so the
/// probe stride never collapses to zero.
struct KMHash {
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 1;
};

constexpr KMHash km_hash(std::uint64_t key) {
  return {mix64(key), mix64(key ^ 0x9E3779B97F4A7C15ULL) | 1ULL};
}

/// Calls fn(pos) for each of the k probe positions of `key` in an m-bit
/// filter, bit-identical to the canonical ((h1 + i*h2) mod 2^64) mod m
/// sequence (see file comment). Requires m >= 1, k >= 1. `fn` may return
/// void (all k positions are visited) or bool (returning false stops the
/// walk early — the membership-test exit). Returns false iff stopped.
template <typename Fn>
inline bool for_each_position(std::uint64_t key, std::uint32_t m,
                              std::uint32_t k, Fn&& fn) {
  const KMHash h = km_hash(key);
  const std::uint64_t bits = m;
  std::uint64_t r = h.h1 % bits;
  const std::uint64_t r2 = h.h2 % bits;
  // 2^64 mod m without 128-bit arithmetic; wrap_fix = (m - 2^64 mod m) mod m.
  const std::uint64_t w = (~0ULL % bits + 1) % bits;
  const std::uint64_t wrap_fix = (bits - w) % bits;
  std::uint64_t acc = h.h1;
  for (std::uint32_t i = 0;;) {
    if constexpr (std::is_void_v<
                      std::invoke_result_t<Fn&, std::uint32_t>>) {
      fn(static_cast<std::uint32_t>(r));
    } else {
      if (!fn(static_cast<std::uint32_t>(r))) return false;
    }
    if (++i == k) break;
    const std::uint64_t prev = acc;
    acc += h.h2;
    r += r2;
    if (r >= bits) r -= bits;
    if (acc < prev) {  // the 64-bit accumulator wrapped past 2^64
      r += wrap_fix;
      if (r >= bits) r -= bits;
    }
  }
  return true;
}

/// Reference implementation of the same sequence with a `%` per probe.
/// Kept as the oracle for the identity tests and the ASAP_AUDIT
/// cross-checks; not used on any hot path.
template <typename Fn>
inline void for_each_position_reference(std::uint64_t key, std::uint32_t m,
                                        std::uint32_t k, Fn&& fn) {
  const KMHash kmh = km_hash(key);
  std::uint64_t h = kmh.h1;
  for (std::uint32_t i = 0; i < k; ++i) {
    fn(static_cast<std::uint32_t>(h % m));
    h += kmh.h2;
  }
}

}  // namespace asap::bloom::probe
