#include "bloom/bloom.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "bloom/probe.hpp"
#include "common/error.hpp"

namespace asap::bloom {

namespace {

#ifdef ASAP_AUDIT_FORCE_ON
/// Audit builds re-derive the popcount from the bitmap on every read so a
/// drifted incremental counter fails loudly instead of corrupting wire
/// sizes (and therefore ledger bytes and run digests).
std::uint32_t recount(const std::vector<std::uint64_t>& words) {
  std::uint32_t total = 0;
  for (auto w : words) total += static_cast<std::uint32_t>(std::popcount(w));
  return total;
}
#endif

}  // namespace

std::uint32_t BloomParams::min_bits_for(std::uint32_t capacity,
                                        std::uint32_t hashes) {
  const double m = static_cast<double>(capacity) * hashes / std::log(2.0);
  return static_cast<std::uint32_t>(std::ceil(m));
}

BloomParams BloomParams::for_capacity(std::uint32_t capacity,
                                      std::uint32_t hashes) {
  ASAP_REQUIRE(capacity >= 1, "bloom capacity must be positive");
  ASAP_REQUIRE(hashes >= 1 && hashes <= 32, "hash count out of range");
  return BloomParams{min_bits_for(capacity, hashes), hashes};
}

double BloomParams::false_positive_rate(std::uint32_t n) const {
  const double exponent =
      -static_cast<double>(hashes) * n / static_cast<double>(bits);
  return std::pow(1.0 - std::exp(exponent), static_cast<double>(hashes));
}

BloomFilter::BloomFilter(BloomParams params)
    : params_(params), words_((params.bits + 63) / 64, 0) {
  ASAP_REQUIRE(params.bits >= 64, "filter too small");
  ASAP_REQUIRE(params.hashes >= 1 && params.hashes <= 32,
               "hash count out of range");
}

void BloomFilter::positions(std::uint64_t key,
                            std::vector<std::uint32_t>& out) const {
  out.clear();
  probe::for_each_position(key, params_.bits, params_.hashes,
                           [&out](std::uint32_t pos) { out.push_back(pos); });
}

void BloomFilter::insert(std::uint64_t key) {
  probe::for_each_position(
      key, params_.bits, params_.hashes, [this](std::uint32_t pos) {
        const std::uint64_t mask = 1ULL << (pos & 63);
        std::uint64_t& w = words_[pos >> 6];
        popcount_ += static_cast<std::uint32_t>((w & mask) == 0);
        w |= mask;
      });
}

bool BloomFilter::contains(std::uint64_t key) const {
  return probe::for_each_position(
      key, params_.bits, params_.hashes, [this](std::uint32_t pos) {
        return (words_[pos >> 6] & (1ULL << (pos & 63))) != 0;
      });
}

bool BloomFilter::contains_all(std::span<const KeywordId> keywords) const {
  for (KeywordId kw : keywords) {
    if (!contains(kw)) return false;
  }
  return true;
}

bool BloomFilter::bit(std::uint32_t pos) const {
  ASAP_DCHECK(pos < params_.bits);
  return (words_[pos >> 6] & (1ULL << (pos & 63))) != 0;
}

void BloomFilter::toggle(std::uint32_t pos) {
  ASAP_DCHECK(pos < params_.bits);
  const std::uint64_t mask = 1ULL << (pos & 63);
  std::uint64_t& w = words_[pos >> 6];
  if ((w & mask) != 0) {
    --popcount_;
  } else {
    ++popcount_;
  }
  w ^= mask;
}

void BloomFilter::clear() {
  std::fill(words_.begin(), words_.end(), 0);
  popcount_ = 0;
}

std::uint32_t BloomFilter::popcount() const {
#ifdef ASAP_AUDIT_FORCE_ON
  ASAP_CHECK(popcount_ == recount(words_));
#endif
  return popcount_;
}

std::uint64_t BloomFilter::fold() const {
  std::uint64_t fold = 0;
  for (auto w : words_) fold |= w;
  return fold;
}

std::vector<std::uint32_t> BloomFilter::set_positions() const {
  std::vector<std::uint32_t> out;
  out.reserve(popcount());
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const auto b = static_cast<std::uint32_t>(std::countr_zero(w));
      out.push_back(static_cast<std::uint32_t>(wi * 64 + b));
      w &= w - 1;
    }
  }
  return out;
}

std::vector<std::uint32_t> BloomFilter::diff(const BloomFilter& from,
                                             const BloomFilter& to) {
  ASAP_REQUIRE(from.params_ == to.params_, "diff of differently-sized filters");
  std::vector<std::uint32_t> out;
  for (std::size_t wi = 0; wi < from.words_.size(); ++wi) {
    std::uint64_t w = from.words_[wi] ^ to.words_[wi];
    while (w != 0) {
      const auto b = static_cast<std::uint32_t>(std::countr_zero(w));
      out.push_back(static_cast<std::uint32_t>(wi * 64 + b));
      w &= w - 1;
    }
  }
  return out;
}

void BloomFilter::apply_toggles(std::span<const std::uint32_t> positions) {
  for (auto pos : positions) toggle(pos);
}

Bytes BloomFilter::wire_bytes() const {
  const Bytes bitmap = (params_.bits + 7) / 8;
  const Bytes sparse = static_cast<Bytes>(popcount()) * 2;  // u16 positions
  return std::min(bitmap, sparse);
}

CountingBloomFilter::CountingBloomFilter(BloomParams params)
    : params_(params), counters_(params.bits, 0), projection_(params) {}

void CountingBloomFilter::insert(std::uint64_t key) {
  constexpr auto kMax = std::numeric_limits<std::uint16_t>::max();
  probe::for_each_position(
      key, params_.bits, params_.hashes, [this](std::uint32_t pos) {
        // Saturate instead of wrapping: a wrapped counter would reach 0 with
        // the projection bit still set, and the next insert would *clear* the
        // bit. A saturated counter merely loses removability for that bit,
        // which keeps the filter a conservative over-approximation.
        ASAP_DCHECK(counters_[pos] < kMax);
        if (counters_[pos] == kMax) return;
        if (counters_[pos]++ == 0) projection_.toggle(pos);
      });
}

void CountingBloomFilter::remove(std::uint64_t key) {
  probe::for_each_position(key, params_.bits, params_.hashes,
                           [this](std::uint32_t pos) {
                             ASAP_DCHECK(counters_[pos] > 0);
                             if (counters_[pos] > 0 &&
                                 --counters_[pos] == 0) {
                               projection_.toggle(pos);
                             }
                           });
}

bool CountingBloomFilter::contains(std::uint64_t key) const {
  return projection_.contains(key);
}

}  // namespace asap::bloom
