#include "bloom/bloom.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace asap::bloom {

namespace {

/// SplitMix64-style finalizer; good avalanche for sequential keyword ids.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint32_t BloomParams::min_bits_for(std::uint32_t capacity,
                                        std::uint32_t hashes) {
  const double m = static_cast<double>(capacity) * hashes / std::log(2.0);
  return static_cast<std::uint32_t>(std::ceil(m));
}

BloomParams BloomParams::for_capacity(std::uint32_t capacity,
                                      std::uint32_t hashes) {
  ASAP_REQUIRE(capacity >= 1, "bloom capacity must be positive");
  ASAP_REQUIRE(hashes >= 1 && hashes <= 32, "hash count out of range");
  return BloomParams{min_bits_for(capacity, hashes), hashes};
}

double BloomParams::false_positive_rate(std::uint32_t n) const {
  const double exponent =
      -static_cast<double>(hashes) * n / static_cast<double>(bits);
  return std::pow(1.0 - std::exp(exponent), static_cast<double>(hashes));
}

BloomFilter::BloomFilter(BloomParams params)
    : params_(params), words_((params.bits + 63) / 64, 0) {
  ASAP_REQUIRE(params.bits >= 64, "filter too small");
  ASAP_REQUIRE(params.hashes >= 1 && params.hashes <= 32,
               "hash count out of range");
}

void BloomFilter::positions(std::uint64_t key,
                            std::vector<std::uint32_t>& out) const {
  out.clear();
  const std::uint64_t h1 = mix(key);
  std::uint64_t h2 = mix(key ^ 0x9E3779B97F4A7C15ULL) | 1ULL;
  std::uint64_t h = h1;
  for (std::uint32_t i = 0; i < params_.hashes; ++i) {
    out.push_back(static_cast<std::uint32_t>(h % params_.bits));
    h += h2;
  }
}

void BloomFilter::insert(std::uint64_t key) {
  const std::uint64_t h1 = mix(key);
  const std::uint64_t h2 = mix(key ^ 0x9E3779B97F4A7C15ULL) | 1ULL;
  std::uint64_t h = h1;
  for (std::uint32_t i = 0; i < params_.hashes; ++i) {
    const auto pos = static_cast<std::uint32_t>(h % params_.bits);
    words_[pos >> 6] |= 1ULL << (pos & 63);
    h += h2;
  }
}

bool BloomFilter::contains(std::uint64_t key) const {
  const std::uint64_t h1 = mix(key);
  const std::uint64_t h2 = mix(key ^ 0x9E3779B97F4A7C15ULL) | 1ULL;
  std::uint64_t h = h1;
  for (std::uint32_t i = 0; i < params_.hashes; ++i) {
    const auto pos = static_cast<std::uint32_t>(h % params_.bits);
    if ((words_[pos >> 6] & (1ULL << (pos & 63))) == 0) return false;
    h += h2;
  }
  return true;
}

bool BloomFilter::contains_all(std::span<const KeywordId> keywords) const {
  for (KeywordId kw : keywords) {
    if (!contains(kw)) return false;
  }
  return true;
}

bool BloomFilter::bit(std::uint32_t pos) const {
  ASAP_DCHECK(pos < params_.bits);
  return (words_[pos >> 6] & (1ULL << (pos & 63))) != 0;
}

void BloomFilter::toggle(std::uint32_t pos) {
  ASAP_DCHECK(pos < params_.bits);
  words_[pos >> 6] ^= 1ULL << (pos & 63);
}

void BloomFilter::clear() {
  std::fill(words_.begin(), words_.end(), 0);
}

std::uint32_t BloomFilter::popcount() const {
  std::uint32_t total = 0;
  for (auto w : words_) total += static_cast<std::uint32_t>(std::popcount(w));
  return total;
}

std::vector<std::uint32_t> BloomFilter::set_positions() const {
  std::vector<std::uint32_t> out;
  out.reserve(popcount());
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const auto b = static_cast<std::uint32_t>(std::countr_zero(w));
      out.push_back(static_cast<std::uint32_t>(wi * 64 + b));
      w &= w - 1;
    }
  }
  return out;
}

std::vector<std::uint32_t> BloomFilter::diff(const BloomFilter& from,
                                             const BloomFilter& to) {
  ASAP_REQUIRE(from.params_ == to.params_, "diff of differently-sized filters");
  std::vector<std::uint32_t> out;
  for (std::size_t wi = 0; wi < from.words_.size(); ++wi) {
    std::uint64_t w = from.words_[wi] ^ to.words_[wi];
    while (w != 0) {
      const auto b = static_cast<std::uint32_t>(std::countr_zero(w));
      out.push_back(static_cast<std::uint32_t>(wi * 64 + b));
      w &= w - 1;
    }
  }
  return out;
}

void BloomFilter::apply_toggles(std::span<const std::uint32_t> positions) {
  for (auto pos : positions) toggle(pos);
}

Bytes BloomFilter::wire_bytes() const {
  const Bytes bitmap = (params_.bits + 7) / 8;
  const Bytes sparse = static_cast<Bytes>(popcount()) * 2;  // u16 positions
  return std::min(bitmap, sparse);
}

CountingBloomFilter::CountingBloomFilter(BloomParams params)
    : params_(params), counters_(params.bits, 0), projection_(params) {}

void CountingBloomFilter::insert(std::uint64_t key) {
  constexpr auto kMax = std::numeric_limits<std::uint16_t>::max();
  projection_.positions(key, scratch_);
  for (auto pos : scratch_) {
    // Saturate instead of wrapping: a wrapped counter would reach 0 with
    // the projection bit still set, and the next insert would *clear* the
    // bit. A saturated counter merely loses removability for that bit,
    // which keeps the filter a conservative over-approximation.
    ASAP_DCHECK(counters_[pos] < kMax);
    if (counters_[pos] == kMax) continue;
    if (counters_[pos]++ == 0) projection_.toggle(pos);
  }
}

void CountingBloomFilter::remove(std::uint64_t key) {
  projection_.positions(key, scratch_);
  for (auto pos : scratch_) {
    ASAP_DCHECK(counters_[pos] > 0);
    if (counters_[pos] > 0 && --counters_[pos] == 0) projection_.toggle(pos);
  }
}

bool CountingBloomFilter::contains(std::uint64_t key) const {
  return projection_.contains(key);
}

}  // namespace asap::bloom
