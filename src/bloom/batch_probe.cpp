#include "bloom/batch_probe.hpp"

#include <algorithm>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define ASAP_BATCH_PROBE_X86 1
#endif

namespace asap::bloom {

void BatchProbe::finalize() {
  std::sort(pairs_.begin(), pairs_.end(),
            [](const Pair& a, const Pair& b) { return a.word < b.word; });
  // Merge same-word masks in place.
  std::size_t out = 0;
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    if (out > 0 && pairs_[out - 1].word == pairs_[i].word) {
      pairs_[out - 1].mask |= pairs_[i].mask;
    } else {
      pairs_[out++] = pairs_[i];
    }
  }
  pairs_.resize(out);
}

bool BatchProbe::all_set_scalar(const Pair* pairs, std::size_t n,
                                const std::uint64_t* words) {
  // Branchless accumulation with a periodic early-exit check: `bad` goes
  // non-zero as soon as any required bit is missing.
  std::uint64_t bad = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (std::size_t j = 0; j < 8; ++j) {
      const Pair& p = pairs[i + j];
      bad |= (words[p.word] & p.mask) ^ p.mask;
    }
    if (bad != 0) return false;
  }
  for (; i < n; ++i) {
    bad |= (words[pairs[i].word] & pairs[i].mask) ^ pairs[i].mask;
  }
  return bad == 0;
}

namespace {

#ifdef ASAP_BATCH_PROBE_X86

// Pair is {u32 word; u64 mask} → 16 bytes with padding, so four pairs
// span two cache lines; gather the words by index and compare 4-wide.
__attribute__((target("avx2"))) bool all_set_avx2(
    const BatchProbe::Pair* pairs, std::size_t n,
    const std::uint64_t* words) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i idx = _mm_set_epi32(
        static_cast<int>(pairs[i + 3].word), static_cast<int>(pairs[i + 2].word),
        static_cast<int>(pairs[i + 1].word), static_cast<int>(pairs[i].word));
    const __m256i w = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(words), idx, 8);
    const __m256i m = _mm256_set_epi64x(
        static_cast<long long>(pairs[i + 3].mask),
        static_cast<long long>(pairs[i + 2].mask),
        static_cast<long long>(pairs[i + 1].mask),
        static_cast<long long>(pairs[i].mask));
    const __m256i eq = _mm256_cmpeq_epi64(_mm256_and_si256(w, m), m);
    if (_mm256_movemask_epi8(eq) != -1) return false;
  }
  for (; i < n; ++i) {
    const BatchProbe::Pair& p = pairs[i];
    if ((words[p.word] & p.mask) != p.mask) return false;
  }
  return true;
}

#endif  // ASAP_BATCH_PROBE_X86

BatchProbe::Kernel resolve_kernel() {
#ifdef ASAP_BATCH_PROBE_X86
  if (__builtin_cpu_supports("avx2")) return &all_set_avx2;
#endif
  return &BatchProbe::all_set_scalar;
}

}  // namespace

BatchProbe::Kernel BatchProbe::kernel_ = resolve_kernel();

const char* BatchProbe::kernel_name() {
#ifdef ASAP_BATCH_PROBE_X86
  if (kernel_ != &BatchProbe::all_set_scalar) return "avx2";
#endif
  return "scalar";
}

}  // namespace asap::bloom
