// Query-side probe fast path: hash each query term exactly once.
//
// ASAP turns a network search into a local ads-cache scan, so the same
// query terms are tested against many cached filters — at every node a
// flooded or walked query visits. The legacy path re-derived the
// Kirsch–Mitzenmacher hash pair and paid a `%` per probe for every
// (term, filter) pair. A HashedQuery is built once at query-origin time:
// it precomputes each term's k bit positions (probe.hpp, divisionless and
// bit-identical to the legacy sequence), after which every per-node,
// per-entry membership test is pure word-index/bit-mask tests.
//
// Each HashedKey also carries a 64-bit fold mask (OR of 1 << (pos & 63)
// over its positions). Because an m-bit filter folds to 64 bits by OR-ing
// its words — bit j of the fold is the OR of all filter bits at positions
// ≡ j (mod 64) — "term present in filter" implies "term fold mask covered
// by filter fold". AdCache keeps that 8-byte fold per entry as a prefilter
// so most non-matching entries are rejected without touching their ~1.4 KB
// filters (ad_cache.hpp).
//
// Precondition: positions are only meaningful against filters built with
// the same BloomParams. The system shares one fixed-length filter geometry
// (paper §III-B), so this holds everywhere; matches() still verifies and
// falls back to the legacy scan on a mismatch, keeping the wide contract.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "bloom/batch_probe.hpp"
#include "bloom/bloom.hpp"
#include "common/types.hpp"

namespace asap::bloom {

/// One key's precomputed probe state: the k bit positions and the 64-bit
/// fold mask. Fixed-capacity (BloomParams caps k at 32) so HashedQuery
/// construction never allocates per term.
class HashedKey {
 public:
  static constexpr std::uint32_t kMaxHashes = 32;

  HashedKey() = default;
  HashedKey(std::uint64_t key, const BloomParams& params);

  std::uint64_t key() const { return key_; }
  std::span<const std::uint32_t> positions() const {
    return {pos_.data(), count_};
  }
  /// OR of 1 << (pos & 63) over the key's positions (prefilter probe).
  std::uint64_t fold_mask() const { return fold_mask_; }

  /// True iff every probe bit is set in the given filter bitmap. Pure
  /// bit tests — no hashing, no division.
  bool present_in(std::span<const std::uint64_t> words) const {
    for (std::uint32_t i = 0; i < count_; ++i) {
      const std::uint32_t pos = pos_[i];
      if ((words[pos >> 6] & (1ULL << (pos & 63))) == 0) return false;
    }
    return true;
  }

 private:
  std::uint64_t key_ = 0;
  std::uint64_t fold_mask_ = 0;
  std::uint32_t count_ = 0;
  std::array<std::uint32_t, kMaxHashes> pos_{};
};

/// All of a query's terms, hashed once. Built at query-origin time and
/// reused at every node the query propagation visits (search::Ctx keeps a
/// reusable instance so steady-state queries allocate nothing).
class HashedQuery {
 public:
  HashedQuery() = default;
  HashedQuery(std::span<const KeywordId> terms, const BloomParams& params) {
    assign(terms, params);
  }

  /// Rebuilds in place for a new term set, reusing capacity.
  void assign(std::span<const KeywordId> terms, const BloomParams& params);

  bool empty() const { return terms_.empty(); }
  std::size_t size() const { return terms_.size(); }
  const BloomParams& params() const { return params_; }
  /// Original query terms, in trace order.
  std::span<const KeywordId> terms() const { return terms_; }
  /// Hashed probe state, index-aligned with terms().
  std::span<const HashedKey> keys() const { return keys_; }
  /// OR of every term's fold mask: a filter fold lacking any of these
  /// bits cannot contain all terms.
  std::uint64_t fold_mask_all() const { return fold_all_; }

  /// Position-sorted, word-merged probe plan over all terms
  /// (batch_probe.hpp) — what matches() executes.
  const BatchProbe& batch() const { return batch_; }

  /// True iff the filter claims every term (the paper's ad match test).
  /// Vacuously true for an empty query, like BloomFilter::contains_all.
  /// Falls back to the legacy hash-per-term scan if the filter's geometry
  /// differs from the one this query was hashed for.
  ///
  /// Executes the batch plan: the same conjunction as testing each key's
  /// present_in() in turn, reassociated into sequential whole-word tests
  /// (identical answers, so run digests are unchanged — DESIGN.md §12).
  bool matches(const BloomFilter& f) const {
    if (f.params() != params_) return f.contains_all(terms_);
    return batch_.all_set(f.words());
  }

 private:
  std::vector<KeywordId> terms_;
  std::vector<HashedKey> keys_;
  BatchProbe batch_;
  std::uint64_t fold_all_ = 0;
  BloomParams params_;
};

}  // namespace asap::bloom
