#include "bloom/variable_bloom.hpp"

#include <array>
#include <bit>
#include <cmath>

#include "bloom/probe.hpp"
#include "common/error.hpp"

namespace asap::bloom {

namespace {

// Geometric ladder: each step ~1.5x, covering light free-rider-adjacent
// sharers (hundreds of bits) up to heavy sharers (beyond the fixed 11,542).
constexpr std::array<std::uint32_t, 10> kPool = {
    512,   768,   1'152,  1'728,  2'592,
    3'888, 5'832, 8'748,  13'122, 19'683,
};

}  // namespace

std::span<const std::uint32_t> default_length_pool() {
  return {kPool.data(), kPool.size()};
}

std::uint32_t pick_length(std::uint32_t capacity, std::uint32_t hashes,
                          std::span<const std::uint32_t> pool) {
  ASAP_REQUIRE(!pool.empty(), "length pool must not be empty");
  const auto need = BloomParams::min_bits_for(std::max(1u, capacity), hashes);
  for (const auto l : pool) {
    if (l >= need) return l;
  }
  return pool.back();  // saturate, like the fixed design at |K_max|
}

VariableBloomFilter::VariableBloomFilter(std::uint32_t capacity,
                                         std::uint32_t hashes,
                                         std::span<const std::uint32_t> pool)
    : bits_(pick_length(capacity, hashes, pool)), hashes_(hashes) {
  ASAP_REQUIRE(hashes >= 1 && hashes <= 32, "hash count out of range");
  words_.assign((bits_ + 63) / 64, 0);
}

void VariableBloomFilter::insert(std::uint64_t key) {
  probe::for_each_position(key, bits_, hashes_, [this](std::uint32_t pos) {
    words_[pos >> 6] |= 1ULL << (pos & 63);
  });
}

bool VariableBloomFilter::contains(std::uint64_t key) const {
  return probe::for_each_position(
      key, bits_, hashes_, [this](std::uint32_t pos) {
        return (words_[pos >> 6] & (1ULL << (pos & 63))) != 0;
      });
}

bool VariableBloomFilter::contains_all(
    std::span<const KeywordId> keywords) const {
  for (const KeywordId kw : keywords) {
    if (!contains(kw)) return false;
  }
  return true;
}

std::uint32_t VariableBloomFilter::popcount() const {
  std::uint32_t total = 0;
  for (const auto w : words_) {
    total += static_cast<std::uint32_t>(std::popcount(w));
  }
  return total;
}

Bytes VariableBloomFilter::wire_bytes() const {
  const Bytes bitmap = (bits_ + 7) / 8;
  const Bytes sparse = static_cast<Bytes>(popcount()) * 2;
  return std::min(bitmap, sparse);
}

double VariableBloomFilter::false_positive_rate(std::uint32_t n) const {
  const double exponent =
      -static_cast<double>(hashes_) * n / static_cast<double>(bits_);
  return std::pow(1.0 - std::exp(exponent), static_cast<double>(hashes_));
}

FilterSpaceComparison compare_filter_space(
    std::span<const std::uint32_t> keyword_set_sizes,
    const BloomParams& fixed_params, std::span<const std::uint32_t> pool) {
  FilterSpaceComparison out;
  KeywordId next_key = 0;
  for (const auto n : keyword_set_sizes) {
    BloomFilter fixed(fixed_params);
    VariableBloomFilter variable(n, fixed_params.hashes, pool);
    for (std::uint32_t i = 0; i < n; ++i) {
      const KeywordId kw = next_key++;
      fixed.insert(kw);
      variable.insert(kw);
    }
    out.fixed_total += fixed.wire_bytes();
    out.variable_total += variable.wire_bytes();
  }
  return out;
}

}  // namespace asap::bloom
