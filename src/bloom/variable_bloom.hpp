// Variable-length Bloom filters (the paper's alternative design, §III-B).
//
// Instead of one fixed system-wide length sized for |K_max|, every node
// picks the smallest length from a shared pool that keeps the optimal
// false-positive rate for *its* keyword set: l(F) >= |K_p| * k / ln 2.
// All nodes agree on universal hash functions {h_1..h_k}; mapping or
// querying an item on a filter of length l uses h'_i = h_i mod l, so any
// peer can query any ad's filter knowing only its length.
//
// Trade-off (discussed in the paper and measured by
// bench_ablation_filters): variable lengths use space proportionally to
// each node's content, but complicate the system — e.g. a remote querier
// must evaluate the hash functions per distinct length.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bloom/bloom.hpp"
#include "common/types.hpp"

namespace asap::bloom {

/// The shared pool of allowed filter lengths: a geometric ladder from
/// 512 bits up to (at least) the fixed-size design's 11,542 bits.
std::span<const std::uint32_t> default_length_pool();

/// Smallest pool length satisfying l >= capacity * hashes / ln 2; returns
/// the pool maximum if even that is too small (mirrors the fixed design's
/// |K_max| saturation).
std::uint32_t pick_length(std::uint32_t capacity, std::uint32_t hashes,
                          std::span<const std::uint32_t> pool);

/// A Bloom filter whose length is one of the pool lengths. Uses the same
/// universal double-hashing as BloomFilter, reduced mod the length.
class VariableBloomFilter {
 public:
  /// Sizes the filter for `capacity` keys from the given pool.
  explicit VariableBloomFilter(
      std::uint32_t capacity, std::uint32_t hashes = 8,
      std::span<const std::uint32_t> pool = default_length_pool());

  std::uint32_t bits() const { return bits_; }
  std::uint32_t hashes() const { return hashes_; }

  void insert(std::uint64_t key);
  bool contains(std::uint64_t key) const;
  bool contains_all(std::span<const KeywordId> keywords) const;

  std::uint32_t popcount() const;
  /// Wire size: min(bitmap, 2 bytes per set bit), like the fixed design.
  Bytes wire_bytes() const;

  /// Expected false-positive rate with n elements inserted.
  double false_positive_rate(std::uint32_t n) const;

 private:
  std::uint32_t bits_;
  std::uint32_t hashes_;
  std::vector<std::uint64_t> words_;
};

/// Population-level space comparison used by the filter ablation: total
/// wire bytes if every node with the given keyword-set sizes used the
/// fixed design vs. the variable design.
struct FilterSpaceComparison {
  Bytes fixed_total = 0;
  Bytes variable_total = 0;
};
FilterSpaceComparison compare_filter_space(
    std::span<const std::uint32_t> keyword_set_sizes,
    const BloomParams& fixed_params,
    std::span<const std::uint32_t> pool = default_length_pool());

}  // namespace asap::bloom
