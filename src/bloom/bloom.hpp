// Bloom filters for ad content summaries (paper §III-B).
//
// The paper uses fixed-length filters shared system-wide: with a maximum
// keyword set of |K_max| = 1,000 and k = 8 hash functions, the minimum
// filter length at the optimal false-positive rate (0.6185^(m/n), i.e.
// (1/2)^k at m = n*k/ln 2) is 11,542 bits ~= 1.43 KB.
//
// Three layers:
//   * BloomFilter          — plain bitmap, the wire representation,
//   * CountingBloomFilter  — node-local counters (the paper's (i, x) "bit i
//                            set x times" tuples) so keyword removal works,
//   * patches              — toggled-position lists, the paper's "list of
//                            changed bit locations" carried by patch ads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace asap::bloom {

struct BloomParams {
  std::uint32_t bits = 11'542;  // paper default (|K_max|=1000, k=8)
  std::uint32_t hashes = 8;

  /// Minimum filter length for an n-element set at optimal fp: n*k/ln 2,
  /// rounded up.
  static std::uint32_t min_bits_for(std::uint32_t capacity,
                                    std::uint32_t hashes);

  /// Params sized for the given capacity at k hash functions.
  static BloomParams for_capacity(std::uint32_t capacity,
                                  std::uint32_t hashes = 8);

  /// Expected false-positive rate with n elements inserted:
  /// (1 - e^(-k n / m))^k.
  double false_positive_rate(std::uint32_t n) const;

  bool operator==(const BloomParams&) const = default;
};

/// Fixed-size Bloom filter over 64-bit keys (keyword ids are widened).
/// Uses Kirsch-Mitzenmacher double hashing: position_i = h1 + i*h2 (mod m),
/// with the probe sequence shared across all filter variants (probe.hpp).
class BloomFilter {
 public:
  explicit BloomFilter(BloomParams params = BloomParams{});

  const BloomParams& params() const { return params_; }

  void insert(std::uint64_t key);
  bool contains(std::uint64_t key) const;
  /// True iff every keyword maps to set bits (the paper's ad match test).
  bool contains_all(std::span<const KeywordId> keywords) const;

  bool bit(std::uint32_t pos) const;
  void toggle(std::uint32_t pos);
  void clear();

  /// Set-bit count, maintained incrementally on every mutation — O(1),
  /// because wire_bytes() is evaluated on every ad serialization.
  std::uint32_t popcount() const;
  std::vector<std::uint32_t> set_positions() const;

  /// Raw bitmap words (read-only); the query fast path tests precomputed
  /// positions directly against this (hashed_query.hpp).
  std::span<const std::uint64_t> words() const { return words_; }

  /// 64-bit fold of the bitmap: the OR of all words, i.e. bit j is the OR
  /// of filter bits at positions ≡ j (mod 64). AdCache stores this per
  /// entry as an 8-byte prefilter (see hashed_query.hpp).
  std::uint64_t fold() const;

  /// Positions whose bits differ between two same-sized filters; applying
  /// the result to `from` with apply_toggles yields `to`.
  static std::vector<std::uint32_t> diff(const BloomFilter& from,
                                         const BloomFilter& to);
  void apply_toggles(std::span<const std::uint32_t> positions);

  /// Transmitted size: the smaller of the raw bitmap and the compressed
  /// sparse form (2 bytes per set bit, §III-B).
  Bytes wire_bytes() const;

  bool operator==(const BloomFilter&) const = default;

  /// Heap bytes owned by the bitmap (scale-bench state accounting).
  std::uint64_t memory_bytes() const {
    return words_.capacity() * sizeof(std::uint64_t);
  }

  /// The k bit positions a key maps to (exposed for tests).
  void positions(std::uint64_t key, std::vector<std::uint32_t>& out) const;

 private:
  BloomParams params_;
  std::vector<std::uint64_t> words_;
  std::uint32_t popcount_ = 0;  // == recomputed popcount at all times
};

/// Counting filter used node-side so that keyword removals (document
/// deletions / content changes) can clear bits. Projects to a plain
/// BloomFilter for transmission.
class CountingBloomFilter {
 public:
  explicit CountingBloomFilter(BloomParams params = BloomParams{});

  const BloomParams& params() const { return params_; }

  /// Increments the key's counters; counters saturate at 65535 instead of
  /// wrapping (overflowing a counter is a caller bug, flagged in debug
  /// builds; release builds pin the counter at the maximum so the filter
  /// stays a conservative over-approximation).
  void insert(std::uint64_t key);
  /// Decrements the key's counters; counters saturate at 0 (removing a key
  /// that was never inserted is a caller bug, flagged in debug builds).
  void remove(std::uint64_t key);

  bool contains(std::uint64_t key) const;

  /// Plain-bitmap projection (bit set iff counter > 0).
  const BloomFilter& projection() const { return projection_; }

  std::uint16_t counter(std::uint32_t pos) const { return counters_[pos]; }

  /// Heap bytes owned by the counters and the projection bitmap.
  std::uint64_t memory_bytes() const {
    return counters_.capacity() * sizeof(std::uint16_t) +
           projection_.memory_bytes();
  }

 private:
  BloomParams params_;
  std::vector<std::uint16_t> counters_;
  BloomFilter projection_;  // maintained incrementally
};

}  // namespace asap::bloom
