// Batch Bloom probing: position-sorted, word-merged membership tests.
//
// A multi-keyword match ("does this filter contain ALL query terms?") is a
// conjunction over k·|terms| bit probes. Testing them term-by-term walks
// the ~1.4 KB filter in hash order — effectively random access — and pays
// a load per probe. A BatchProbe instead precomputes the probe set once
// per query (hashed_query.hpp):
//
//   * every probe position becomes a (word index, bit) pair,
//   * pairs are sorted by word index and same-word bits are merged into a
//     single 64-bit mask (SWAR: up to 64 probes collapse into one
//     `(word & mask) == mask` test),
//   * the test walks the merged pairs in ascending address order, so the
//     filter is touched sequentially, once per distinct word.
//
// With AVX2 available at runtime the pair loop vectorizes 4-wide: gather
// four filter words, AND with four masks, compare, movemask. Dispatch is
// resolved once at startup from CPUID; the scalar SWAR path is the
// portable fallback and the oracle for tests.
//
// Bit-identity: a BatchProbe answers exactly `AND over probes of
// bit(filter, pos)` — the same boolean as the per-term loop, just
// reassociated. Membership answers are identical bit-for-bit, so run
// digests are unchanged (DESIGN.md §12).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace asap::bloom {

class BatchProbe {
 public:
  /// Starts a new plan, reusing capacity.
  void clear() { pairs_.clear(); }

  /// Adds one key's probe positions (bit indices into the filter).
  void add_positions(std::span<const std::uint32_t> positions) {
    for (const std::uint32_t pos : positions) {
      pairs_.push_back(Pair{pos >> 6, 1ULL << (pos & 63)});
    }
  }

  /// Sorts by word index and merges same-word masks. Call once after the
  /// last add_positions; the plan is then immutable until clear().
  void finalize();

  bool empty() const { return pairs_.empty(); }
  /// Distinct filter words the finalized plan touches.
  std::size_t word_count() const { return pairs_.size(); }

  /// True iff every planned bit is set in the filter bitmap (vacuously
  /// true for an empty plan). `words` must be the bitmap of a filter with
  /// the geometry the positions were derived for.
  bool all_set(std::span<const std::uint64_t> words) const {
    return kernel_(pairs_.data(), pairs_.size(), words.data());
  }

  struct Pair {
    std::uint32_t word;
    std::uint64_t mask;
  };

  using Kernel = bool (*)(const Pair* pairs, std::size_t n,
                          const std::uint64_t* words);

  /// The dispatch choice for this process (diagnostics/tests).
  static const char* kernel_name();
  /// Portable kernel, used as the oracle in tests regardless of dispatch.
  static bool all_set_scalar(const Pair* pairs, std::size_t n,
                             const std::uint64_t* words);

 private:
  static Kernel kernel_;

  std::vector<Pair> pairs_;
};

}  // namespace asap::bloom
