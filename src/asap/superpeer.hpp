// Hierarchical (superpeer) ASAP — the deployment mode of the paper's
// footnote 3: "ASAP can work well on hierarchical systems in which only
// super peers are responsible for ad representation, delivery, caching and
// processing."
//
// A fraction of well-connected peers act as superpeers; every leaf is
// assigned to a *proxy* superpeer. Leaves upload their ads (full, patch,
// refresh) to their proxy over one hop; the proxy disseminates them across
// the superpeer mesh, where all caching happens. A leaf's search is a
// query to its proxy, which answers from its ads cache (falling back to an
// ads request among its superpeer neighbors); the leaf then confirms with
// the content source directly.
//
// Compared with flat ASAP: far fewer caches (memory concentrates on
// capable nodes), smaller dissemination graph (cheaper deliveries), at the
// price of one extra proxy round trip per search and reliance on
// superpeer availability.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "asap/ad.hpp"
#include "asap/ad_cache.hpp"
#include "asap/ad_scheduler.hpp"
#include "asap/advertiser.hpp"
#include "asap/asap_protocol.hpp"
#include "overlay/overlay.hpp"
#include "search/algorithm.hpp"
#include "search/baseline.hpp"
#include "search/context.hpp"

namespace asap::ads {

struct SuperpeerParams {
  /// Ad forwarding scheme across the superpeer mesh.
  search::Scheme scheme = search::Scheme::kRandomWalk;
  /// Fraction of (initial) peers promoted to superpeers, picked by degree.
  double superpeer_fraction = 0.15;
  std::uint32_t flood_ttl = 6;
  std::uint32_t walkers = 5;
  /// Budget unit per topic, applied to the superpeer mesh (which is ~6x
  /// smaller than the full overlay, so the default is scaled accordingly).
  std::uint64_t budget_unit_m0 = 450;
  double join_budget_scale = 0.05;
  double patch_budget_scale = 0.25;
  double refresh_budget_scale = 0.08;
  Seconds refresh_period = 120.0;
  std::uint32_t ads_request_hops = 1;
  std::uint32_t ads_reply_max = 16;
  std::uint32_t ads_reply_topical_max = 8;
  std::uint32_t cache_capacity = 4'000;  // superpeers are capable nodes
  std::uint32_t max_confirms = 8;
  std::uint64_t max_walk_hops = 600;

  // --- adaptive advertisement scheduling (kVanilla = legacy) ------------
  /// kAdaptive / kDelta batch mesh disseminations into per-superpeer
  /// byte-budgeted packed ad rounds: uploads still reach the proxy (and
  /// its cache) immediately, but the mesh spread waits for the proxy's
  /// next round, where an AdScheduler rotates one pending ad per source
  /// into a single packed frame. Exercises true multi-ad rotation,
  /// packing and budget spill (the flat protocol only rotates two items).
  AdMode ad_mode = AdMode::kVanilla;
  Bytes ad_round_budget = 1'200;
  std::uint32_t ad_stable_after = 2;
  std::uint32_t ad_very_stable_after = 4;
  /// Packed-round period per superpeer (with +-50% jitter).
  Seconds ad_round_period = 120.0;

  // --- adversarial defense (all off by default; DESIGN.md §16) -----------
  /// Per-source trust scores on the proxy caches: confirmed hits reward,
  /// false positives / timeouts strike, low-trust sources are quarantined
  /// with exponential re-admit backoff. Same model as AsapParams.
  bool trust_enabled = false;
  double trust_reward = 0.3;
  double trust_strike_decay = 0.5;
  double trust_quarantine_threshold = 0.2;
  double trust_quarantine_backoff = 120.0;
  /// Ad-admission fill-plausibility gate on the proxy caches; 0 = off.
  double trust_fill_gate = 0.0;
  /// Overload protection at the proxy (the hierarchy's congestion point):
  /// cap on concurrently pending queries per superpeer (0 = unbounded) and
  /// the depth at which the mesh-widening phase is suppressed (0 = never).
  std::uint32_t pending_query_cap = 0;
  std::uint32_t ttl_clamp_depth = 0;

  static SuperpeerParams small(search::Scheme s);
};

class SuperpeerAsap final : public search::SearchAlgorithm {
 public:
  SuperpeerAsap(search::Ctx& ctx, SuperpeerParams params);

  std::string name() const override;
  void warm_up(Seconds duration) override;
  void on_trace_event(const trace::TraceEvent& event) override;

  bool is_superpeer(NodeId n) const { return is_superpeer_[n]; }
  NodeId proxy_of(NodeId n) const { return proxy_[n]; }
  std::uint32_t num_superpeers() const { return num_superpeers_; }
  const AdCache& cache(NodeId sp) const { return caches_[sp]; }
  /// Total cache entries across all superpeers (memory footprint probe).
  std::uint64_t total_cached_ads() const;

  struct Counters {
    std::uint64_t full_ads = 0;
    std::uint64_t patch_ads = 0;
    std::uint64_t refresh_ads = 0;
    std::uint64_t delta_ads = 0;
    std::uint64_t proxy_uploads = 0;   // leaf -> proxy ad transfers
    std::uint64_t proxy_queries = 0;   // leaf -> proxy search requests
    std::uint64_t ads_requests = 0;
    std::uint64_t confirm_requests = 0;
    // Adaptive-scheduling telemetry (all zero in vanilla mode).
    std::uint64_t ad_rounds = 0;
    std::uint64_t packed_frames = 0;
    std::uint64_t packed_entries = 0;
    std::uint64_t spilled_entries = 0;
    // Adversary / defense telemetry (all zero without faults / defenses).
    std::uint64_t polluted_ads = 0;
    std::uint64_t forced_negatives = 0;
    std::uint64_t dropped_confirms = 0;
    std::uint64_t trust_strikes = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t readmissions = 0;
    std::uint64_t queries_shed = 0;
    std::uint64_t ttl_clamped = 0;
    std::uint64_t peak_pending_depth = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  void build_hierarchy();
  /// Picks (or re-picks) a proxy for node n; returns kInvalidNode if no
  /// superpeer is reachable/online.
  NodeId assign_proxy(NodeId n);

  std::uint64_t delivery_budget(std::size_t topics, double scale) const;

  /// Leaf (or superpeer) publishes an ad: pays the one-hop upload if the
  /// source is a leaf, then disseminates across the superpeer mesh.
  void publish(NodeId source, AdKind kind, Seconds when, double scale,
               const AdPayloadPtr& payload,
               std::span<const std::uint32_t> patch, std::uint32_t base);

  void on_join(const trace::TraceEvent& ev);
  void on_content_change(const trace::TraceEvent& ev);
  void run_query(const trace::TraceEvent& ev);

  Seconds confirm_round(NodeId requester, NodeId sp, Seconds start,
                        std::span<const KeywordId> terms,
                        std::span<const AdPayloadPtr> candidates,
                        metrics::SearchRecord& rec, Seconds& resolve);
  Seconds ads_request_phase(NodeId sp, Seconds start,
                            const bloom::HashedQuery& query,
                            metrics::SearchRecord* rec,
                            std::vector<AdPayloadPtr>& matches_out);

  void schedule_refresh(NodeId n);
  void on_refresh_timer(NodeId n);

  // --- adversarial roles / defenses -------------------------------------
  bool is_polluter(NodeId n) const;
  /// Stuffs deterministic phantom bits into a polluter's full ad (copy;
  /// the advertiser's canonical payload is never touched).
  AdPayloadPtr maybe_pollute(NodeId src, AdPayloadPtr payload);
  void note_readmit(NodeId cacher, NodeId source, Seconds t);
  /// Bookkeeping for an ad rejected by the fill-plausibility gate.
  void note_implausible(NodeId cacher, NodeId source, Seconds t);
  bool overload_enabled() const {
    return params_.pending_query_cap > 0 || params_.ttl_clamp_depth > 0;
  }

  // --- adaptive mode (ad_mode != kVanilla) ------------------------------
  /// The newest not-yet-disseminated ad a proxy holds for one source.
  struct PendingAd {
    AdKind kind = AdKind::kRefresh;
    AdPayloadPtr payload;
    std::uint32_t base = 0;                  // patch / delta base version
    std::vector<std::uint32_t> toggles;      // patch / delta entries
  };

  bool adaptive() const { return params_.ad_mode != AdMode::kVanilla; }
  Bytes pending_bytes(const PendingAd& p) const;
  /// Coalesces an uploaded ad into the proxy's pending set and (re)arms
  /// the scheduler item for its source.
  void enqueue_pending(NodeId sp, NodeId source, AdKind kind,
                       const AdPayloadPtr& payload,
                       std::span<const std::uint32_t> patch,
                       std::uint32_t base);
  void schedule_round(NodeId sp);
  /// Drains one scheduler round at `sp` into a packed mesh dissemination.
  void run_ad_round(NodeId sp);

  search::Ctx& ctx_;
  SuperpeerParams params_;
  overlay::Overlay sp_mesh_;  // same id space; only superpeers have edges
  std::vector<std::uint8_t> is_superpeer_;
  std::vector<NodeId> proxy_;
  std::uint32_t num_superpeers_ = 0;
  std::vector<Advertiser> advertisers_;
  std::vector<AdCache> caches_;  // only superpeer slots are ever filled
  std::vector<std::uint8_t> refresh_scheduled_;
  Counters counters_;
  std::vector<AdPayloadPtr> scratch_ads_;
  std::vector<AdPayloadPtr> reply_scratch_;
  // Adaptive-mode state; empty vectors in vanilla mode.
  std::vector<std::unordered_map<NodeId, PendingAd>> pending_;
  std::vector<AdScheduler> sp_scheds_;
  std::vector<std::uint8_t> round_scheduled_;
  /// Completion times of in-flight queries per superpeer; only allocated
  /// when overload protection is armed.
  std::vector<std::vector<Seconds>> pending_queries_;
};

}  // namespace asap::ads
