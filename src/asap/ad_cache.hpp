// Per-node ads repository (paper §III-C).
//
// Bounded store of interesting ads keyed by source node. Eviction is
// sampled-LRU (evict the least-recently-touched of k random entries), an
// O(1) approximation that avoids both full scans and heavyweight intrusive
// lists — important because ad deliveries generate millions of inserts.
//
// Storage is structure-of-arrays: `sources_`, `entries_` and `prefilter_`
// are index-aligned, with `pos_` — an open-addressing FlatMap, 16 bytes
// when empty — mapping source → index. An empty cache costs well under
// 200 bytes, which is what lets a million-node world keep one per peer. The scan path
// (collect_matches / collect_for_reply over a HashedQuery) walks the dense
// 8-byte prefilter array first — each word is the fold of that entry's
// Bloom filter (bloom/hashed_query.hpp) — and only entries whose fold
// covers the query's fold mask touch their ~1.4 KB filter. Query terms are
// tested rarest-fold-bit-first so mismatching entries exit early. Under
// ASAP_AUDIT every hashed scan is re-run through the legacy hash-per-term
// path and the results compared.
//
// Version discipline:
//   * a full ad replaces whatever is cached for its source,
//   * a patch applies only if the cached version equals the patch's base
//     version (the entry then adopts the new canonical payload); any
//     mismatch invalidates the entry — it will be re-learned from a later
//     full ad or an ads request,
//   * a refresh touches a version-matching entry and invalidates a
//     mismatching one,
//   * a delta applies only if the entry still remembers the full ad it is
//     based on (`Entry::base`, recorded at every full-ad put) and that
//     base matches the delta's base-full version; consecutive deltas
//     against the same base are then independently applicable, so a lost
//     delta does not break the chain the way a missed patch does.
//
// Re-admission backoff (stale-strike hygiene): when the confirm path
// strikes out a stale entry it calls erase_stale(), which opens a backoff
// window during which put() silently drops ads for that source — otherwise
// a walker already in flight re-admits the just-evicted stale ad in the
// same tick. A zero backoff (the default) makes erase_stale() behave
// exactly like erase().
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "asap/ad.hpp"
#include "bloom/hashed_query.hpp"
#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace asap::ads {

/// Outcome of a version-disciplined cache update (patch or refresh).
enum class UpdateOutcome : std::uint8_t {
  kApplied,       ///< patch applied / refresh touched a matching entry
  kMissing,       ///< source not cached; nothing to update
  kIgnoredStale,  ///< cached entry already newer; message ignored
  kInvalidated,   ///< stale-beyond-repair entry erased
};

class AdCache {
 public:
  struct Entry {
    AdPayloadPtr ad;
    /// The last *full* ad received for this source — the base delta ads
    /// apply against. Shares the canonical payload, so this costs one
    /// pointer, not a filter copy.
    AdPayloadPtr base;
    double touch = 0.0;  // virtual time of last use
    /// Consecutive confirm timeouts against this source; a fresh ad (any
    /// successful put) or a confirm reply resets it. Drives stale-ad
    /// eviction under the fault-hardening knobs.
    std::uint32_t timeout_strikes = 0;
    /// Per-source trust in [0,1], driven by confirm outcomes when trust
    /// scoring is enabled (set_trust_params). 1.0 = fully trusted; entries
    /// start trusted and earn strikes. Untouched (and never read) when
    /// trust is off, so vanilla digests cannot shift.
    double trust = 1.0;
    /// End of the last counted strike's confirm-attempt chain. With the
    /// strike-chain guard on, a strike whose chain *started* before this
    /// instant is part of the same evidence window and is not re-counted
    /// (one strike per confirm attempt chain).
    double strike_chain_end = -1.0;
  };

  /// What a put() did, so callers can count stores and evictions.
  struct PutResult {
    bool stored = false;   ///< payload inserted or replaced an older one
    bool evicted = false;  ///< another source's entry was evicted for room
    /// The source served out its quarantine and was re-admitted by this
    /// put (only ever true when trust scoring is enabled).
    bool readmitted = false;
    /// The ad failed the fill-plausibility gate (set_fill_gate): its Bloom
    /// filter claims more bits than an honest keyword set can set. The ad
    /// was admitted fully distrusted (demote-and-verify, not drop — the
    /// source's real content stays reachable as a last resort).
    bool implausible = false;
  };

  /// @param capacity  maximum entries; 0 disables caching entirely (every
  ///                  put is a silent no-op — useful for ablations).
  explicit AdCache(std::uint32_t capacity = 1'500);

  std::uint32_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }

  /// Inserts or replaces the ad for its source; evicts if over capacity.
  /// A stale version for an already-cached source only touches the entry
  /// (stored stays false).
  PutResult put(AdPayloadPtr ad, double now, Rng& rng);

  /// Applies a patch: swaps to `next` iff the cached version equals
  /// `base_version` (kApplied). Any other version mismatch either keeps a
  /// newer entry (kIgnoredStale) or erases the stale one (kInvalidated).
  UpdateOutcome apply_patch(NodeId source, std::uint32_t base_version,
                            const AdPayloadPtr& next, double now);

  /// Handles a refresh beacon: touches a version-matching entry
  /// (kApplied), erases one older than the beacon (kInvalidated), ignores
  /// a delayed beacon for a newer entry (kIgnoredStale).
  UpdateOutcome on_refresh(NodeId source, std::uint32_t version, double now);

  /// Applies a delta ad: swaps to `next` iff the entry's remembered full
  /// ad matches `base_full_version` (kApplied). A newer cached version
  /// ignores the delta (kIgnoredStale); a base mismatch erases the entry
  /// (kInvalidated) — it re-learns from the next full ad.
  UpdateOutcome apply_delta(NodeId source, std::uint32_t base_full_version,
                            std::span<const std::uint32_t> toggles,
                            const AdPayloadPtr& next, double now);

  bool erase(NodeId source);

  /// Erases like erase(), and — when a re-admission backoff is configured —
  /// blocks put() for this source until `now + backoff` so the evicted
  /// stale ad cannot be re-admitted by in-flight ads in the same tick.
  bool erase_stale(NodeId source, double now);

  /// Re-admission backoff after erase_stale(); 0 (default) disables the
  /// blocking entirely (erase_stale degenerates to erase).
  void set_readmit_backoff(double backoff) { readmit_backoff_ = backoff; }
  double readmit_backoff() const { return readmit_backoff_; }
  /// True while put() would drop ads for `source` (regression tests).
  bool readmit_blocked(NodeId source, double now) const;
  const Entry* find(NodeId source) const;
  void touch(NodeId source, double now);

  /// Records one confirm timeout against `source`; returns the updated
  /// consecutive-strike count (0 when the source is not cached).
  std::uint32_t record_timeout(NodeId source);
  /// Chain-aware twin: the timeout belongs to a confirm attempt chain
  /// spanning [chain_start, chain_end). With the strike-chain guard on
  /// (set_strike_per_chain), a chain that started before the last counted
  /// chain ended is the same evidence window — the count is returned
  /// unchanged instead of double-counting. Guard off = legacy behaviour.
  std::uint32_t record_timeout(NodeId source, double chain_start,
                               double chain_end);
  /// Clears the strike count (a confirm reply proved the source alive).
  void reset_timeouts(NodeId source);
  void set_strike_per_chain(bool on) { strike_per_chain_ = on; }

  // --- per-source trust (adversarial defense; off by default) -----------
  /// Enables trust scoring: confirmed hits reward (trust += reward *
  /// (1 - trust)), strikes decay (trust *= decay); an entry falling below
  /// `threshold` is quarantined for `backoff * 2^repeat_offenses`.
  void set_trust_params(double reward, double decay, double threshold,
                        double backoff);
  bool trust_enabled() const { return trust_enabled_; }
  /// Trust for a cached source; 1.0 when unknown / trust off.
  double trust_of(NodeId source) const;
  /// Positive confirm outcome: rewards the source's entry.
  void record_reward(NodeId source);
  /// Negative outcome (false positive or timed-out chain): decays trust;
  /// if the entry crosses the quarantine threshold it is erased and its
  /// source blocked from put() until the backoff expires. Returns true
  /// when this strike quarantined the entry.
  bool record_strike(NodeId source, double now);
  /// True while put() would drop ads from `source` due to quarantine.
  bool quarantined(NodeId source, double now) const;

  /// Admission-time plausibility gate against polluted ads: a put() whose
  /// filter fill ratio (popcount / bits) exceeds `max_fill` is admitted
  /// with trust forced to zero (PutResult::implausible). An honest node at
  /// the design keyword capacity fills at most 1 - e^(-k*n/m) (~0.50 for
  /// the default geometry), so a gate around 0.65 never fires on honest
  /// traffic. Demote-and-verify, not drop: trust-weighted ranking sends
  /// confirm probes to honest sources first, yet a polluter's *real*
  /// content (pollution only adds phantom bits to a truthful filter)
  /// remains reachable as a last resort; a distrusted entry that then
  /// wastes a confirm is quarantined by the first strike. 0 (default)
  /// disables.
  void set_fill_gate(double max_fill) {
    fill_gate_ = static_cast<float>(max_fill);
  }
  double fill_gate() const { return fill_gate_; }

  /// All cached ads whose filter claims every term (paper Table I match).
  /// Legacy hash-per-term scan; the HashedQuery overload is the hot path.
  void collect_matches(std::span<const KeywordId> terms,
                       std::vector<AdPayloadPtr>& out) const;

  /// Fast path: same result set and order as the span overload, but all
  /// hashing happened once at query-origin time and most non-matching
  /// entries are rejected by the 8-byte prefilter.
  void collect_matches(const bloom::HashedQuery& query,
                       std::vector<AdPayloadPtr>& out) const;

  /// Builds an ads-request reply: term-matching ads first (up to `max_ads`
  /// total), then at most `max_topical` ads whose topics overlap the
  /// requester's interests. Term filtering keeps failure-path replies small
  /// (a handful of candidate ads) while a join-time warm-up request
  /// (empty terms, large `max_topical`) still transfers a useful bundle.
  void collect_for_reply(std::span<const KeywordId> terms,
                         const std::vector<TopicId>& interests,
                         std::uint32_t max_ads, std::uint32_t max_topical,
                         std::vector<AdPayloadPtr>& out) const;

  /// Fast-path twin of the span overload (identical output).
  void collect_for_reply(const bloom::HashedQuery& query,
                         const std::vector<TopicId>& interests,
                         std::uint32_t max_ads, std::uint32_t max_topical,
                         std::vector<AdPayloadPtr>& out) const;

  /// Index-aligned views over the SoA storage (tests / debugging).
  std::span<const NodeId> sources() const { return sources_; }
  std::span<const Entry> entries() const { return entries_; }
  std::span<const std::uint64_t> prefilters() const { return prefilter_; }

  /// Heap bytes owned by this cache's containers (payloads are shared
  /// wire objects, counted by their producers, so they are excluded).
  /// Drives the per-node state accounting in scale benchmarks.
  std::uint64_t memory_bytes() const;

 private:
  void evict_one(Rng& rng);
  void erase_at(std::size_t idx);

  /// Puts `source` in quarantine (exponential backoff per repeat offense)
  /// and drops its cached entry if present. Shared by record_strike and the
  /// fill-plausibility gate.
  void quarantine_source(NodeId source, double now);

  /// Prefilter word for a payload: the filter's 64-bit fold when its
  /// geometry matches the system-wide default, else all-ones ("cannot
  /// prefilter, always scan") so foreign-geometry entries stay correct.
  std::uint64_t prefilter_for(const AdPayload& ad) const;
  void set_payload(std::size_t idx, AdPayloadPtr ad);
  void fold_count_add(std::uint64_t word);
  void fold_count_remove(std::uint64_t word);

  /// Orders query-term indices most-selective-first: ascending by the
  /// number of cached entries whose prefilter could cover the term's fold
  /// mask (an upper bound on its matchable entries). Returns the term
  /// count, or 0 for "use natural order" (oversized queries). Ordering
  /// only changes how fast a non-match exits, never the matched set.
  static constexpr std::size_t kMaxOrderedTerms = 8;
  std::size_t order_terms(const bloom::HashedQuery& query,
                          std::array<std::uint8_t, kMaxOrderedTerms>& order)
      const;

  /// Full match test for one entry against the hashed query (prefilter
  /// already passed). Falls back to the legacy per-term scan on a filter
  /// geometry mismatch.
  bool entry_matches(std::size_t idx, const bloom::HashedQuery& query,
                     std::span<const std::uint8_t> order) const;

  std::uint32_t capacity_;
  bloom::BloomParams canonical_;  // prefilter geometry (system default)
  std::vector<NodeId> sources_;
  std::vector<Entry> entries_;
  std::vector<std::uint64_t> prefilter_;
  // fold_count_[j] = number of entries whose prefilter has bit j set;
  // drives the rarest-first term ordering. Allocated lazily on the first
  // nonzero prefilter word — a million idle caches cost 8 bytes each here,
  // not 256 — and a null array reads as all-zero counts (order_terms then
  // degrades to natural term order, exactly like the eager all-zero
  // array did).
  std::unique_ptr<std::array<std::uint32_t, 64>> fold_count_;
  FlatMap<NodeId, std::uint32_t> pos_;  // source -> index
  /// source -> virtual time until which puts are dropped (erase_stale).
  /// Empty unless a backoff is configured, so vanilla runs never pay a
  /// lookup in put().
  FlatMap<NodeId, double> struck_;
  double readmit_backoff_ = 0.0;
  /// Quarantine roster: source -> (re-admit time, repeat-offense count).
  /// Empty unless trust scoring is on — put() guards on emptiness first.
  struct Quarantine {
    double until = 0.0;
    std::uint32_t offenses = 0;
  };
  FlatMap<NodeId, Quarantine> quar_;
  /// Max admissible filter fill ratio; 0 disables the plausibility gate.
  /// A float so it packs into the padding next to the two flags — the
  /// empty-cache footprint bound (million-node worlds) stays intact.
  float fill_gate_ = 0.0f;
  bool trust_enabled_ = false;
  bool strike_per_chain_ = false;
  double trust_reward_ = 0.3;
  double trust_decay_ = 0.5;
  double trust_threshold_ = 0.2;
  double quarantine_backoff_ = 120.0;
};

}  // namespace asap::ads
