// Per-node ads repository (paper §III-C).
//
// Bounded store of interesting ads keyed by source node. Eviction is
// sampled-LRU (evict the least-recently-touched of k random entries), an
// O(1) approximation that avoids both full scans and heavyweight intrusive
// lists — important because ad deliveries generate millions of inserts.
//
// Version discipline:
//   * a full ad replaces whatever is cached for its source,
//   * a patch applies only if the cached version equals the patch's base
//     version (the entry then adopts the new canonical payload); any
//     mismatch invalidates the entry — it will be re-learned from a later
//     full ad or an ads request,
//   * a refresh touches a version-matching entry and invalidates a
//     mismatching one.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "asap/ad.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace asap::ads {

/// Outcome of a version-disciplined cache update (patch or refresh).
enum class UpdateOutcome : std::uint8_t {
  kApplied,       ///< patch applied / refresh touched a matching entry
  kMissing,       ///< source not cached; nothing to update
  kIgnoredStale,  ///< cached entry already newer; message ignored
  kInvalidated,   ///< stale-beyond-repair entry erased
};

class AdCache {
 public:
  struct Entry {
    AdPayloadPtr ad;
    double touch = 0.0;  // virtual time of last use
  };

  /// What a put() did, so callers can count stores and evictions.
  struct PutResult {
    bool stored = false;   ///< payload inserted or replaced an older one
    bool evicted = false;  ///< another source's entry was evicted for room
  };

  /// @param capacity  maximum entries; 0 disables caching entirely (every
  ///                  put is a silent no-op — useful for ablations).
  explicit AdCache(std::uint32_t capacity = 1'500);

  std::uint32_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }

  /// Inserts or replaces the ad for its source; evicts if over capacity.
  /// A stale version for an already-cached source only touches the entry
  /// (stored stays false).
  PutResult put(AdPayloadPtr ad, double now, Rng& rng);

  /// Applies a patch: swaps to `next` iff the cached version equals
  /// `base_version` (kApplied). Any other version mismatch either keeps a
  /// newer entry (kIgnoredStale) or erases the stale one (kInvalidated).
  UpdateOutcome apply_patch(NodeId source, std::uint32_t base_version,
                            const AdPayloadPtr& next, double now);

  /// Handles a refresh beacon: touches a version-matching entry
  /// (kApplied), erases one older than the beacon (kInvalidated), ignores
  /// a delayed beacon for a newer entry (kIgnoredStale).
  UpdateOutcome on_refresh(NodeId source, std::uint32_t version, double now);

  bool erase(NodeId source);
  const Entry* find(NodeId source) const;
  void touch(NodeId source, double now);

  /// All cached ads whose filter claims every term (paper Table I match).
  void collect_matches(std::span<const KeywordId> terms,
                       std::vector<AdPayloadPtr>& out) const;

  /// Builds an ads-request reply: term-matching ads first (up to `max_ads`
  /// total), then at most `max_topical` ads whose topics overlap the
  /// requester's interests. Term filtering keeps failure-path replies small
  /// (a handful of candidate ads) while a join-time warm-up request
  /// (empty terms, large `max_topical`) still transfers a useful bundle.
  void collect_for_reply(std::span<const KeywordId> terms,
                         const std::vector<TopicId>& interests,
                         std::uint32_t max_ads, std::uint32_t max_topical,
                         std::vector<AdPayloadPtr>& out) const;

  /// Iterate entries (tests / debugging).
  const std::vector<std::pair<NodeId, Entry>>& entries() const {
    return entries_;
  }

 private:
  void evict_one(Rng& rng);
  void erase_at(std::size_t idx);

  std::uint32_t capacity_;
  std::vector<std::pair<NodeId, Entry>> entries_;
  std::unordered_map<NodeId, std::uint32_t> pos_;  // source -> entries_ index
};

}  // namespace asap::ads
