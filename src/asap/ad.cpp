#include "asap/ad.hpp"

namespace asap::ads {

const char* ad_kind_name(AdKind k) {
  switch (k) {
    case AdKind::kFull:
      return "full";
    case AdKind::kPatch:
      return "patch";
    case AdKind::kRefresh:
      return "refresh";
    case AdKind::kDelta:
      return "delta";
  }
  return "?";
}

Bytes full_ad_bytes(const AdPayload& ad, const sim::SizeModel& sizes) {
  return sizes.ad_header + ad.topics.size() + ad.filter.wire_bytes();
}

Bytes patch_ad_bytes(std::size_t toggled_positions, std::size_t topics,
                     const sim::SizeModel& sizes) {
  return sizes.ad_header + topics + sizes.patch_entry * toggled_positions;
}

Bytes refresh_ad_bytes(const sim::SizeModel& sizes) {
  return sizes.ad_header;
}

Bytes delta_ad_bytes(std::size_t toggled_positions, std::size_t topics,
                     const sim::SizeModel& sizes) {
  return patch_ad_bytes(toggled_positions, topics, sizes) + 2;
}

bool topics_overlap(const std::vector<TopicId>& a,
                    const std::vector<TopicId>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return true;
    if (*ia < *ib) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return false;
}

}  // namespace asap::ads
