#include "asap/advertiser.hpp"

#include "common/error.hpp"

namespace asap::ads {

Advertiser::Advertiser(NodeId source, bloom::BloomParams params)
    : source_(source), params_(params) {}

void Advertiser::ensure_filter() {
  if (!counting_) {
    counting_ = std::make_unique<bloom::CountingBloomFilter>(params_);
  }
}

void Advertiser::add_document(const trace::Document& doc) {
  ensure_filter();
  for (KeywordId kw : doc.keywords) counting_->insert(kw);
  ++class_counts_[doc.topic];
  ++doc_count_;
}

void Advertiser::remove_document(const trace::Document& doc) {
  ASAP_DCHECK(counting_ != nullptr && doc_count_ > 0);
  if (!counting_ || doc_count_ == 0) return;
  for (KeywordId kw : doc.keywords) counting_->remove(kw);
  if (class_counts_[doc.topic] > 0) --class_counts_[doc.topic];
  --doc_count_;
}

std::vector<TopicId> Advertiser::topics() const {
  std::vector<TopicId> out;
  for (TopicId c = 0; c < trace::kNumClasses; ++c) {
    if (class_counts_[c] > 0) out.push_back(c);
  }
  return out;  // ascending class id == sorted
}

AdPayloadPtr Advertiser::publish_full() {
  ensure_filter();
  ++version_;
  payload_ = std::make_shared<const AdPayload>(
      source_, version_, counting_->projection(), topics());
  base_payload_ = payload_;
  return payload_;
}

AdPayloadPtr Advertiser::publish_update() {
  ensure_filter();
  ++version_;
  payload_ = std::make_shared<const AdPayload>(
      source_, version_, counting_->projection(), topics());
  return payload_;
}

std::vector<std::uint32_t> Advertiser::pending_patch() const {
  if (!payload_) return {};
  ASAP_DCHECK(counting_ != nullptr);
  return bloom::BloomFilter::diff(payload_->filter, counting_->projection());
}

std::vector<std::uint32_t> Advertiser::pending_delta() const {
  if (!base_payload_) return {};
  ASAP_DCHECK(counting_ != nullptr);
  return bloom::BloomFilter::diff(base_payload_->filter,
                                  counting_->projection());
}

bool Advertiser::dirty() const {
  if (!counting_) return false;
  if (!payload_) return doc_count_ > 0;
  return !(payload_->filter == counting_->projection());
}

}  // namespace asap::ads
