#include "asap/asap_protocol.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "search/propagation.hpp"

namespace asap::ads {

namespace {
constexpr Seconds kInfTime = std::numeric_limits<Seconds>::infinity();
}

AsapParams AsapParams::paper(search::Scheme s) {
  AsapParams p;
  p.scheme = s;
  return p;
}

AsapParams AsapParams::small(search::Scheme s) {
  AsapParams p;
  p.scheme = s;
  // M0 = 3000 on the ~5x smaller population raises per-delivery coverage to
  // ~95%, which is what gives ASAP its near-local search behaviour. The
  // maintenance deliveries (join/patch/refresh) are scaled down by the same
  // 5x population ratio so their per-node background load — and therefore
  // the ASAP-vs-baseline load ratios of Fig 8/9 — matches the paper-scale
  // configuration (see EXPERIMENTS.md, calibration notes).
  p.budget_unit_m0 = 3'000;
  p.join_budget_scale = 0.01;
  p.patch_budget_scale = 0.05;
  p.refresh_budget_scale = 0.016;
  p.join_reply_max = 16;
  return p;
}

AsapProtocol::AsapProtocol(search::Ctx& ctx, AsapParams params)
    : ctx_(ctx), params_(params) {
  ASAP_REQUIRE(params.budget_unit_m0 >= 1, "M0 must be positive");
  // cache_capacity 0 is allowed: AdCache treats it as caching disabled,
  // which is a useful ablation (ASAP degenerates toward its walk baseline).
  const auto slots = ctx.model.total_node_slots();
  advertisers_.reserve(slots);
  caches_.reserve(slots);
  for (NodeId n = 0; n < slots; ++n) {
    advertisers_.emplace_back(n);
    caches_.emplace_back(params.cache_capacity);
  }
  refresh_scheduled_.assign(slots, 0);
  if (params_.stale_readmit_backoff > 0.0) {
    for (auto& c : caches_) {
      c.set_readmit_backoff(params_.stale_readmit_backoff);
    }
  }
  if (params_.trust_enabled) {
    for (auto& c : caches_) {
      c.set_trust_params(params_.trust_reward, params_.trust_strike_decay,
                         params_.trust_quarantine_threshold,
                         params_.trust_quarantine_backoff);
    }
  }
  if (params_.strike_per_chain) {
    for (auto& c : caches_) c.set_strike_per_chain(true);
  }
  if (params_.trust_fill_gate > 0.0) {
    for (auto& c : caches_) c.set_fill_gate(params_.trust_fill_gate);
  }
  if (overload_enabled()) pending_.resize(slots);
  if (adaptive()) {
    AdSchedulerParams sp;
    sp.round_budget = params_.ad_round_budget;
    sp.stable_after = params_.ad_stable_after;
    sp.very_stable_after = params_.ad_very_stable_after;
    scheds_.assign(slots, AdScheduler(sp));
  }
}

std::uint64_t AsapProtocol::state_bytes() const {
  std::uint64_t total = advertisers_.capacity() * sizeof(Advertiser) +
                        caches_.capacity() * sizeof(AdCache) +
                        refresh_scheduled_.capacity() +
                        scheds_.capacity() * sizeof(AdScheduler);
  for (const auto& a : advertisers_) total += a.memory_bytes();
  for (const auto& c : caches_) total += c.memory_bytes();
  total += pending_.capacity() * sizeof(std::vector<Seconds>);
  for (const auto& q : pending_) total += q.capacity() * sizeof(Seconds);
  return total;
}

bool AsapProtocol::is_polluter(NodeId n) const {
  return ctx_.faults != nullptr && ctx_.faults->is_polluter(n);
}

AdPayloadPtr AsapProtocol::maybe_pollute(NodeId src, AdPayloadPtr payload) {
  if (!is_polluter(src)) return payload;
  auto polluted = std::make_shared<AdPayload>(*payload);
  // Phantom bits are a pure function of (source, version): every delivery
  // of this version ships the identical stuffed filter, and no shared RNG
  // stream is consumed, so arming polluters perturbs nothing else.
  SplitMix64 sm(0xC6A4A7935BD1E995ULL ^
                (static_cast<std::uint64_t>(src) << 32) ^ payload->version);
  auto& filter = polluted->filter;
  const std::uint32_t bits = filter.params().bits;
  const std::uint32_t stuff =
      ctx_.faults->plan().config().pollution_bits;
  for (std::uint32_t i = 0; i < stuff && bits > 0; ++i) {
    const auto pos = static_cast<std::uint32_t>(sm.next() % bits);
    if (!filter.bit(pos)) filter.toggle(pos);
  }
  ++counters_.polluted_ads;
  return polluted;
}

void AsapProtocol::note_readmit(NodeId cacher, NodeId source, Seconds t) {
  ++counters_.readmissions;
  ASAP_OBS_HOOK(ctx_.obs, on_quarantine_exit(cacher));
  ASAP_OBS_HOOK(ctx_.obs, trace_quarantine(t, cacher, source, "exit"));
}

void AsapProtocol::note_implausible(NodeId cacher, NodeId source, Seconds t) {
  // A fill-gate demotion is a trust strike earned by the ad itself — no
  // confirm probe was needed. The entry stays cached at zero trust
  // (demote-and-verify); quarantine follows only if it wastes a probe.
  ++counters_.trust_strikes;
  ASAP_OBS_HOOK(ctx_.obs, on_trust_strike(cacher));
  ASAP_OBS_HOOK(ctx_.obs, trace_trust_strike(t, cacher, source, "implausible"));
}

std::string AsapProtocol::name() const {
  const char* mode = "asap";
  switch (params_.ad_mode) {
    case AdMode::kVanilla:
      break;
    case AdMode::kAdaptive:
      mode = "asap-adaptive";
      break;
    case AdMode::kDelta:
      mode = "asap-delta";
      break;
  }
  switch (params_.scheme) {
    case search::Scheme::kFlooding:
      return std::string(mode) + "(fld)";
    case search::Scheme::kRandomWalk:
      return std::string(mode) + "(rw)";
    case search::Scheme::kGsa:
      return std::string(mode) + "(gsa)";
  }
  return std::string(mode) + "(?)";
}

std::uint64_t AsapProtocol::delivery_budget(std::size_t num_topics,
                                            double scale) const {
  const auto topics = std::max<std::size_t>(1, num_topics);
  const double raw =
      scale * static_cast<double>(topics * params_.budget_unit_m0);
  return std::max<std::uint64_t>(params_.walkers,
                                 static_cast<std::uint64_t>(std::llround(raw)));
}

void AsapProtocol::deliver_ad(NodeId src, AdKind kind, Seconds when,
                              double scale, const AdPayloadPtr& payload,
                              std::span<const std::uint32_t> patch_positions,
                              std::uint32_t base_version) {
  ASAP_DCHECK(payload != nullptr);
  Bytes msg_size = 0;
  sim::Traffic cat = sim::Traffic::kFullAd;
  switch (kind) {
    case AdKind::kFull:
      msg_size = full_ad_bytes(*payload, ctx_.sizes);
      cat = sim::Traffic::kFullAd;
      ++counters_.full_ads;
      break;
    case AdKind::kPatch:
      msg_size = patch_ad_bytes(patch_positions.size(),
                                payload->topics.size(), ctx_.sizes);
      cat = sim::Traffic::kPatchAd;
      ++counters_.patch_ads;
      break;
    case AdKind::kRefresh:
      msg_size = refresh_ad_bytes(ctx_.sizes);
      cat = sim::Traffic::kRefreshAd;
      ++counters_.refresh_ads;
      break;
    case AdKind::kDelta:
      msg_size = delta_ad_bytes(patch_positions.size(),
                                payload->topics.size(), ctx_.sizes);
      cat = sim::Traffic::kPatchAd;
      ++counters_.delta_ads;
      break;
  }

  auto visit = [&](NodeId v, Seconds t, std::uint32_t) {
    if (v == src) return search::VisitAction::kContinue;
    // Selective caching: only interested nodes keep the ad (§III-B).
    if (!topics_overlap(payload->topics, ctx_.model.interests(v))) {
      return search::VisitAction::kContinue;
    }
    AdCache& cache = caches_[v];
    switch (kind) {
      case AdKind::kFull: {
        const auto r = cache.put(payload, t, ctx_.rng);
        if (r.stored) ASAP_OBS_HOOK(ctx_.obs, on_ad_stored(v));
        if (r.evicted) ASAP_OBS_HOOK(ctx_.obs, on_ad_evicted(v));
        if (r.readmitted) note_readmit(v, src, t);
        if (r.implausible) note_implausible(v, src, t);
        break;
      }
      case AdKind::kPatch: {
        const auto outcome = cache.apply_patch(src, base_version, payload, t);
        if (outcome == UpdateOutcome::kApplied) {
          ASAP_OBS_HOOK(ctx_.obs, on_ad_stored(v));
        } else if (outcome == UpdateOutcome::kInvalidated) {
          ASAP_OBS_HOOK(ctx_.obs, on_ad_invalidated(v));
        }
        break;
      }
      case AdKind::kDelta: {
        const auto outcome =
            cache.apply_delta(src, base_version, patch_positions, payload, t);
        if (outcome == UpdateOutcome::kApplied) {
          ASAP_OBS_HOOK(ctx_.obs, on_ad_stored(v));
        } else if (outcome == UpdateOutcome::kInvalidated) {
          ASAP_OBS_HOOK(ctx_.obs, on_ad_invalidated(v));
        }
        break;
      }
      case AdKind::kRefresh: {
        const auto outcome = cache.on_refresh(src, payload->version, t);
        if (outcome == UpdateOutcome::kInvalidated) {
          ASAP_OBS_HOOK(ctx_.obs, on_ad_invalidated(v));
        }
        const bool had = outcome == UpdateOutcome::kApplied;
        if (!had && params_.refresh_pull) {
          // Extension: pull the full ad straight from the source.
          const Seconds done = t + 2.0 * ctx_.latency(v, src);
          ASAP_AUDIT_HOOK(ctx_.auditor,
                          on_send(sim::Traffic::kFullAd,
                                  ctx_.sizes.confirm_request));
          ctx_.ledger.deposit(t, sim::Traffic::kFullAd,
                              ctx_.sizes.confirm_request);
          const Bytes pull_bytes = full_ad_bytes(*payload, ctx_.sizes);
          ASAP_AUDIT_HOOK(ctx_.auditor,
                          on_send(sim::Traffic::kFullAd, pull_bytes));
          ctx_.ledger.deposit(done, sim::Traffic::kFullAd, pull_bytes);
          const auto r = cache.put(payload, done, ctx_.rng);
          if (r.stored) ASAP_OBS_HOOK(ctx_.obs, on_ad_stored(v));
          if (r.evicted) ASAP_OBS_HOOK(ctx_.obs, on_ad_evicted(v));
          if (r.readmitted) note_readmit(v, src, done);
          if (r.implausible) note_implausible(v, src, done);
          ++counters_.refresh_pulls;
        }
        break;
      }
    }
    ASAP_AUDIT_HOOK(ctx_.auditor,
                    on_cache_occupancy(cache.size(), params_.cache_capacity));
    return search::VisitAction::kContinue;
  };

  search::PropagationStats prop;
  switch (params_.scheme) {
    case search::Scheme::kFlooding: {
      const auto ttl = kind == AdKind::kRefresh ? params_.refresh_flood_ttl
                                                : params_.flood_ttl;
      prop = search::flood(ctx_, src, when, ttl, msg_size, cat, visit);
      break;
    }
    case search::Scheme::kRandomWalk: {
      const auto budget = delivery_budget(payload->topics.size(), scale);
      // Enough walkers that no single walk exceeds max_walk_hops.
      const auto walkers = std::max<std::uint64_t>(
          params_.walkers,
          (budget + params_.max_walk_hops - 1) / params_.max_walk_hops);
      const auto per_walker = std::max<std::uint64_t>(1, budget / walkers);
      if (params_.interest_bias > 1.0) {
        auto weight = [&](NodeId v) {
          return topics_overlap(payload->topics, ctx_.model.interests(v))
                     ? params_.interest_bias
                     : 1.0;
        };
        prop = search::biased_walk(ctx_, src, when,
                                   static_cast<std::uint32_t>(walkers),
                                   per_walker, msg_size, cat, weight, visit);
      } else {
        prop = search::random_walk(ctx_, src, when,
                                   static_cast<std::uint32_t>(walkers),
                                   per_walker, msg_size, cat, visit);
      }
      break;
    }
    case search::Scheme::kGsa: {
      const auto budget = delivery_budget(payload->topics.size(), scale);
      prop = search::gsa(ctx_, src, when, budget, msg_size, cat, visit);
      break;
    }
  }
  ASAP_OBS_HOOK(ctx_.obs, trace_ad(when, src, ad_kind_name(kind),
                                   prop.messages, prop.bytes));
}

void AsapProtocol::warm_up(Seconds duration) {
  ASAP_REQUIRE(duration > 0.0, "warm-up duration must be positive");
  // Every initially-online sharer advertises a full ad at a random point in
  // the first half of the warm-up window; the second half absorbs the walk
  // durations (a budget/walkers-hop walk takes minutes of virtual time), so
  // no warm-up traffic lands inside the measurement window.
  const auto initial = ctx_.model.params().initial_nodes;
  for (NodeId n = 0; n < initial; ++n) {
    auto& adv = advertisers_[n];
    for (DocId d : ctx_.live.docs(n)) adv.add_document(ctx_.model.doc(d));
    if (!adv.has_content()) continue;  // free-riders advertise nothing
    const Seconds at = ctx_.rng.uniform(0.0, duration * 0.5);
    ctx_.engine.schedule_at(at, n, [this, n] {
      if (!ctx_.online(n)) return;
      auto payload = maybe_pollute(n, advertisers_[n].publish_full());
      deliver_ad(n, AdKind::kFull, ctx_.engine.now(), 1.0, payload, {}, 0);
      schedule_refresh(n);
    });
  }
}

void AsapProtocol::schedule_refresh(NodeId n) {
  if (refresh_scheduled_[n]) return;
  refresh_scheduled_[n] = 1;
  const Seconds delay =
      params_.refresh_period * ctx_.rng.uniform(0.5, 1.5);
  ctx_.engine.schedule_in(delay, n, [this, n] { on_refresh_timer(n); });
}

void AsapProtocol::on_refresh_timer(NodeId n) {
  refresh_scheduled_[n] = 0;
  if (!ctx_.online(n)) return;  // departed: beaconing stops
  if (adaptive()) {
    // The refresh timer doubles as the ad-round timer: one scheduler
    // round, one packed frame.
    run_ad_round(n);
    schedule_refresh(n);
    return;
  }
  auto& adv = advertisers_[n];
  if (adv.has_advertised() && adv.has_content()) {
    deliver_ad(n, AdKind::kRefresh, ctx_.engine.now(),
               params_.refresh_budget_scale, adv.payload(), {}, 0);
  }
  schedule_refresh(n);
}

void AsapProtocol::run_ad_round(NodeId n) {
  auto& adv = advertisers_[n];
  auto& sched = scheds_[n];
  // Keep the beacon item in sync with the advertising state; the change
  // item was enqueued (urgent) at content-change time.
  if (adv.has_advertised() && adv.has_content()) {
    sched.upsert(kBeaconItem, refresh_ad_bytes(ctx_.sizes), false);
  } else {
    sched.erase(kBeaconItem);
  }
  const auto plan = sched.next_round(emissions_scratch_);
  ++counters_.ad_rounds;
  counters_.spilled_entries += plan.spilled;

  frame_scratch_.clear();
  bool shipped_full = false;
  bool shipped_change = false;
  for (const auto& e : emissions_scratch_) {
    if (e.id == kChangeItem) {
      // All content changes since the last shipped round, coalesced into
      // one patch (or delta) computed now — never at change time, so a
      // burst of changes costs one wire body.
      sched.erase(kChangeItem);  // consumed (re-enqueued by the next change)
      if (params_.ad_mode == AdMode::kDelta) {
        auto delta = adv.pending_delta();
        if (delta.empty()) continue;  // changes cancelled out
        if (is_polluter(n) || delta.size() > params_.patch_to_full_threshold) {
          // Too far from the base: re-base with a full ad. Polluters always
          // re-base — a delta would rebuild the canonical filter at cachers
          // and silently launder the phantom bits away.
          FrameEntry fe;
          fe.kind = AdKind::kFull;
          fe.payload = maybe_pollute(n, adv.publish_full());
          frame_scratch_.push_back(std::move(fe));
          shipped_full = true;
        } else {
          FrameEntry fe;
          fe.kind = AdKind::kDelta;
          fe.base_version = adv.base_version();
          fe.payload = adv.publish_update();  // base stays put
          fe.toggles = std::move(delta);
          frame_scratch_.push_back(std::move(fe));
          shipped_change = true;
        }
      } else {
        auto patch = adv.pending_patch();
        if (patch.empty()) continue;
        const std::uint32_t base = adv.version();
        auto payload = adv.publish_full();
        FrameEntry fe;
        if (is_polluter(n) || patch.size() > params_.patch_to_full_threshold) {
          fe.kind = AdKind::kFull;
          fe.payload = maybe_pollute(n, std::move(payload));
          shipped_full = true;
        } else {
          fe.kind = AdKind::kPatch;
          fe.payload = std::move(payload);
          fe.base_version = base;
          fe.toggles = std::move(patch);
          shipped_change = true;
        }
        frame_scratch_.push_back(std::move(fe));
      }
    } else {  // kBeaconItem
      if (!adv.has_advertised()) continue;
      FrameEntry fe;
      fe.kind = AdKind::kRefresh;
      // Built after any change entry (urgent emissions come first), so
      // the beacon carries the freshly bumped version.
      fe.payload = adv.payload();
      frame_scratch_.push_back(std::move(fe));
    }
  }
  if (frame_scratch_.empty()) return;
  if (shipped_full || shipped_change) {
    // Changed content restarts the beacon's every-round cadence.
    sched.touch_changed(kBeaconItem);
  }
  const double scale = shipped_full     ? params_.join_budget_scale
                       : shipped_change ? params_.patch_budget_scale
                                        : params_.refresh_budget_scale;
  deliver_packed(n, ctx_.engine.now(), scale, frame_scratch_, plan.spilled);
}

void AsapProtocol::deliver_packed(NodeId src, Seconds when, double scale,
                                  std::span<const FrameEntry> entries,
                                  std::uint32_t spilled) {
  ASAP_DCHECK(!entries.empty());
  Bytes msg_size = ctx_.sizes.packed_frame_header;
  bool beacon_only = true;
  for (const FrameEntry& e : entries) {
    msg_size += ctx_.sizes.packed_entry_overhead;
    switch (e.kind) {
      case AdKind::kFull:
        msg_size += full_ad_bytes(*e.payload, ctx_.sizes);
        ++counters_.full_ads;
        beacon_only = false;
        break;
      case AdKind::kPatch:
        msg_size += patch_ad_bytes(e.toggles.size(), e.payload->topics.size(),
                                   ctx_.sizes);
        ++counters_.patch_ads;
        beacon_only = false;
        break;
      case AdKind::kRefresh:
        msg_size += refresh_ad_bytes(ctx_.sizes);
        ++counters_.refresh_ads;
        break;
      case AdKind::kDelta:
        msg_size += delta_ad_bytes(e.toggles.size(), e.payload->topics.size(),
                                   ctx_.sizes);
        ++counters_.delta_ads;
        beacon_only = false;
        break;
    }
  }
  ++counters_.packed_frames;
  counters_.packed_entries += entries.size();

  const sim::Traffic cat = sim::Traffic::kPackedAd;
  auto visit = [&](NodeId v, Seconds t, std::uint32_t) {
    if (v == src) return search::VisitAction::kContinue;
    AdCache& cache = caches_[v];
    for (const FrameEntry& e : entries) {
      // Selective caching per entry, same gate as deliver_ad (§III-B).
      if (!topics_overlap(e.payload->topics, ctx_.model.interests(v))) {
        continue;
      }
      switch (e.kind) {
        case AdKind::kFull: {
          const auto r = cache.put(e.payload, t, ctx_.rng);
          if (r.stored) ASAP_OBS_HOOK(ctx_.obs, on_ad_stored(v));
          if (r.evicted) ASAP_OBS_HOOK(ctx_.obs, on_ad_evicted(v));
          if (r.readmitted) note_readmit(v, src, t);
          break;
        }
        case AdKind::kPatch: {
          const auto outcome =
              cache.apply_patch(src, e.base_version, e.payload, t);
          if (outcome == UpdateOutcome::kApplied) {
            ASAP_OBS_HOOK(ctx_.obs, on_ad_stored(v));
          } else if (outcome == UpdateOutcome::kInvalidated) {
            ASAP_OBS_HOOK(ctx_.obs, on_ad_invalidated(v));
          }
          break;
        }
        case AdKind::kDelta: {
          const auto outcome =
              cache.apply_delta(src, e.base_version, e.toggles, e.payload, t);
          if (outcome == UpdateOutcome::kApplied) {
            ASAP_OBS_HOOK(ctx_.obs, on_ad_stored(v));
          } else if (outcome == UpdateOutcome::kInvalidated) {
            ASAP_OBS_HOOK(ctx_.obs, on_ad_invalidated(v));
          }
          break;
        }
        case AdKind::kRefresh: {
          // refresh_pull is a vanilla-mode ablation; packed frames only
          // touch / invalidate, like the default configuration.
          const auto outcome = cache.on_refresh(src, e.payload->version, t);
          if (outcome == UpdateOutcome::kInvalidated) {
            ASAP_OBS_HOOK(ctx_.obs, on_ad_invalidated(v));
          }
          break;
        }
      }
    }
    ASAP_AUDIT_HOOK(ctx_.auditor,
                    on_cache_occupancy(cache.size(), params_.cache_capacity));
    return search::VisitAction::kContinue;
  };

  search::PropagationStats prop;
  const auto& topics = entries.front().payload->topics;
  switch (params_.scheme) {
    case search::Scheme::kFlooding: {
      const auto ttl =
          beacon_only ? params_.refresh_flood_ttl : params_.flood_ttl;
      prop = search::flood(ctx_, src, when, ttl, msg_size, cat, visit);
      break;
    }
    case search::Scheme::kRandomWalk: {
      const auto budget = delivery_budget(topics.size(), scale);
      const auto walkers = std::max<std::uint64_t>(
          params_.walkers,
          (budget + params_.max_walk_hops - 1) / params_.max_walk_hops);
      const auto per_walker = std::max<std::uint64_t>(1, budget / walkers);
      if (params_.interest_bias > 1.0) {
        auto weight = [&](NodeId v) {
          return topics_overlap(topics, ctx_.model.interests(v))
                     ? params_.interest_bias
                     : 1.0;
        };
        prop = search::biased_walk(ctx_, src, when,
                                   static_cast<std::uint32_t>(walkers),
                                   per_walker, msg_size, cat, weight, visit);
      } else {
        prop = search::random_walk(ctx_, src, when,
                                   static_cast<std::uint32_t>(walkers),
                                   per_walker, msg_size, cat, visit);
      }
      break;
    }
    case search::Scheme::kGsa: {
      const auto budget = delivery_budget(topics.size(), scale);
      prop = search::gsa(ctx_, src, when, budget, msg_size, cat, visit);
      break;
    }
  }
  ASAP_OBS_HOOK(ctx_.obs,
                trace_ad(when, src, "packed", prop.messages, prop.bytes));
  ASAP_OBS_HOOK(ctx_.obs,
                trace_ad_round(when, src,
                               static_cast<std::uint32_t>(entries.size()),
                               spilled, prop.bytes));
}

void AsapProtocol::on_trace_event(const trace::TraceEvent& ev) {
  switch (ev.type) {
    case trace::TraceEventType::kQuery:
      run_query(ev);
      break;
    case trace::TraceEventType::kAddDoc:
    case trace::TraceEventType::kRemoveDoc:
      on_content_change(ev);
      break;
    case trace::TraceEventType::kJoin:
      on_join(ev);
      break;
    case trace::TraceEventType::kRejoin:
      on_rejoin(ev);
      break;
    case trace::TraceEventType::kLeave:
      break;  // cached state persists; timers notice the departure lazily
  }
}

void AsapProtocol::on_rejoin(const trace::TraceEvent& ev) {
  const NodeId n = ev.node;
  auto& adv = advertisers_[n];
  // The node kept its content across the offline period; its remote
  // cachers may hold stale versions, so it re-announces with a fresh full
  // ad. Its own cache "could be mostly out of date" (§III-C), so it runs
  // the same ads-request flow a brand-new node uses.
  if (adv.has_content()) {
    if (adaptive() && adv.has_advertised() && !adv.dirty()) {
      // Adaptive rejoin shortcut: nothing changed while away, so every
      // remote cacher still holds the *current* version — an urgent
      // refresh beacon in the next packed round re-validates them for a
      // few dozen bytes. Vanilla's full re-announcement at join breadth
      // is the dominant advertisement cost under churn, and for an
      // unchanged filter it carries zero new information.
      scheds_[n].upsert(kBeaconItem, refresh_ad_bytes(ctx_.sizes),
                        /*urgent=*/true);
      schedule_refresh(n);
    } else {
      auto payload = maybe_pollute(n, adv.publish_full());
      deliver_ad(n, AdKind::kFull, ev.time, params_.join_budget_scale,
                 payload, {}, 0);
      schedule_refresh(n);
    }
  }
  std::vector<AdPayloadPtr> unused;
  ads_request_phase(n, ev.time, ctx_.hash_query({}), nullptr, {}, unused);
}

void AsapProtocol::on_join(const trace::TraceEvent& ev) {
  const NodeId n = ev.node;
  ASAP_CHECK(n < advertisers_.size());
  auto& adv = advertisers_[n];
  for (DocId d : ctx_.live.docs(n)) adv.add_document(ctx_.model.doc(d));
  if (adv.has_content()) {
    auto payload = maybe_pollute(n, adv.publish_full());
    deliver_ad(n, AdKind::kFull, ev.time, params_.join_budget_scale, payload,
               {}, 0);
    schedule_refresh(n);
  }
  // Warm the joiner's cache with topical ads from its new neighbors — the
  // same ads-request flow a failed search uses (paper §III-C).
  std::vector<AdPayloadPtr> unused;
  ads_request_phase(n, ev.time, ctx_.hash_query({}), nullptr, {}, unused);
}

void AsapProtocol::on_content_change(const trace::TraceEvent& ev) {
  const NodeId n = ev.node;
  auto& adv = advertisers_[n];
  const auto& doc = ctx_.model.doc(ev.doc);
  if (ev.type == trace::TraceEventType::kAddDoc) {
    adv.add_document(doc);
  } else {
    adv.remove_document(doc);
  }
  if (!ctx_.online(n)) return;

  if (!adv.has_advertised()) {
    // First-time sharer (e.g. a free-rider that started sharing).
    if (adv.has_content()) {
      auto payload = maybe_pollute(n, adv.publish_full());
      deliver_ad(n, AdKind::kFull, ev.time, params_.join_budget_scale,
                 payload, {}, 0);
      schedule_refresh(n);
    }
    return;
  }

  if (adaptive()) {
    // Changes wait for the next ad round: the scheduler's urgent change
    // item coalesces everything that happens before the round fires, and
    // the round ships one budget-packed frame instead of one walk per
    // change event.
    auto& sched = scheds_[n];
    const auto pending = params_.ad_mode == AdMode::kDelta
                             ? adv.pending_delta()
                             : adv.pending_patch();
    if (pending.empty()) {
      sched.erase(kChangeItem);  // the changes cancelled out
      return;
    }
    const Bytes est =
        params_.ad_mode == AdMode::kDelta
            ? delta_ad_bytes(pending.size(), adv.payload()->topics.size(),
                             ctx_.sizes)
            : patch_ad_bytes(pending.size(), adv.payload()->topics.size(),
                             ctx_.sizes);
    sched.upsert(kChangeItem, est, /*urgent=*/true);
    schedule_refresh(n);  // no-op if the round timer is already pending
    return;
  }

  auto patch = adv.pending_patch();
  if (patch.empty()) return;  // shared keywords absorbed the change
  const std::uint32_t base = adv.version();
  auto payload = adv.publish_full();  // canonical payload for the new version
  // Polluters only ship full (stuffed) ads: a patch stores the *canonical*
  // payload at cachers, which would silently launder the pollution away.
  if (is_polluter(n) || patch.size() > params_.patch_to_full_threshold) {
    deliver_ad(n, AdKind::kFull, ev.time, params_.join_budget_scale,
               maybe_pollute(n, std::move(payload)), {}, 0);
  } else {
    deliver_ad(n, AdKind::kPatch, ev.time, params_.patch_budget_scale,
               payload, patch, base);
  }
}

Seconds AsapProtocol::confirm_round(NodeId p, Seconds start,
                                    std::span<const KeywordId> terms,
                                    std::span<const AdPayloadPtr> candidates,
                                    metrics::SearchRecord& rec,
                                    Seconds& resolve,
                                    std::vector<NodeId>& dead_sources) {
  Seconds best = kInfTime;
  std::uint32_t sent = 0;
  const std::uint32_t max_attempts =
      std::max<std::uint32_t>(1, params_.confirm_max_attempts);
  Bytes retry_budget_left = params_.confirm_retry_budget;
  for (const auto& ad : candidates) {
    if (sent >= params_.max_confirms) break;
    const NodeId s = ad->source;
    if (s == p) continue;
    ++sent;
    // Byzantine roles of the confirm target, resolved once per candidate
    // (deterministic bitmaps — no draws).
    const bool dropper =
        ctx_.faults != nullptr && ctx_.faults->is_confirm_dropper(s);
    const bool never_serves =
        ctx_.faults != nullptr && ctx_.faults->is_stale_advertiser(s);
    bool replied = false;
    Seconds t_attempt = start;
    Seconds t_deadline = start;
    for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
      if (attempt > 1) {
        // Retries share a per-round byte budget so a fully-lossy network
        // still terminates with bounded cost.
        if (params_.confirm_retry_budget != 0) {
          if (retry_budget_left < ctx_.sizes.confirm_request) break;
          retry_budget_left -= ctx_.sizes.confirm_request;
        }
        ++counters_.confirm_retries;
        counters_.retry_bytes += ctx_.sizes.confirm_request;
        ASAP_OBS_HOOK(ctx_.obs, on_confirm_retry(p));
        ASAP_OBS_HOOK(ctx_.obs, trace_retry(t_attempt, p, s, attempt));
      }
      ++counters_.confirm_requests;
      const Seconds lat = ctx_.hop_latency(p, s);
      const Seconds t_req = t_attempt + lat;
      ASAP_AUDIT_HOOK(ctx_.auditor, on_confirm_request());
      ASAP_AUDIT_HOOK(ctx_.auditor, on_send(sim::Traffic::kConfirm,
                                            ctx_.sizes.confirm_request));
      ctx_.ledger.deposit(t_req, sim::Traffic::kConfirm,
                          ctx_.sizes.confirm_request);
      ASAP_OBS_HOOK(ctx_.obs, on_confirm_sent(p));
      rec.cost_bytes += ctx_.sizes.confirm_request;
      ++rec.messages;
      const bool alive = ctx_.online(s);
      bool request_lost = alive && ctx_.direct_lost(p, s, t_req);
      if (alive && !request_lost && dropper) {
        // Confirm-dropper: the request arrives and is silently discarded —
        // the requester observes a timeout; no reply bytes are ever paid.
        request_lost = true;
        ++counters_.dropped_confirms;
      }
      if (alive && !request_lost) {
        const Seconds t_reply = t_req + lat;
        ASAP_AUDIT_HOOK(ctx_.auditor, on_confirm_reply());
        ASAP_AUDIT_HOOK(ctx_.auditor, on_send(sim::Traffic::kConfirm,
                                              ctx_.sizes.confirm_reply));
        ctx_.ledger.deposit(t_reply, sim::Traffic::kConfirm,
                            ctx_.sizes.confirm_reply);
        rec.cost_bytes += ctx_.sizes.confirm_reply;
        ++rec.messages;
        if (!ctx_.direct_lost(s, p, t_reply)) {
          replied = true;
          resolve = std::max(resolve, t_reply);
          caches_[p].reset_timeouts(s);
          bool matches = ctx_.live.node_matches(s, terms, ctx_.model);
          if (matches && never_serves) {
            // Stale-advertiser: replies, but always refuses to serve.
            matches = false;
            ++counters_.forced_negatives;
          }
          if (matches) {
            best = std::min(best, t_reply);
            caches_[p].touch(s, t_reply);
            ++rec.results;
            caches_[p].record_reward(s);
            ASAP_OBS_HOOK(ctx_.obs, on_confirm_positive(p));
            ASAP_OBS_HOOK(ctx_.obs, trace_confirm(t_reply, p, s, "positive"));
          } else {
            ASAP_OBS_HOOK(ctx_.obs, trace_confirm(t_reply, p, s, "negative"));
            if (caches_[p].trust_enabled()) {
              // With trust on, a negative confirm is a false-positive
              // strike: the ad claimed content the source will not serve.
              ++counters_.trust_strikes;
              ASAP_OBS_HOOK(ctx_.obs, on_trust_strike(p));
              ASAP_OBS_HOOK(ctx_.obs, trace_trust_strike(t_reply, p, s,
                                                         "false-positive"));
              if (caches_[p].record_strike(s, t_reply)) {
                ++counters_.quarantines;
                ASAP_OBS_HOOK(ctx_.obs, on_quarantine_enter(p));
                ASAP_OBS_HOOK(ctx_.obs,
                              trace_quarantine(t_reply, p, s, "enter"));
              }
            }
          }
          // Without trust scoring, a negative confirmation (cross-document
          // or Bloom false positive) keeps the entry: the ad honestly
          // summarizes the source's content.
          break;
        }
        // The reply was produced and paid for but lost in transit; the
        // requester can only observe a timeout below.
      } else {
        // Connection failure (dead source) or a lost request: the
        // requester's view of this request is a timeout.
        ASAP_AUDIT_HOOK(ctx_.auditor, on_confirm_timeout());
      }
      ++counters_.confirm_timeouts;
      ASAP_OBS_HOOK(ctx_.obs, on_confirm_timed_out(p));
      ASAP_OBS_HOOK(ctx_.obs, trace_confirm(t_req, p, s, "timeout"));
      t_deadline = t_attempt + 2.0 * lat;  // the requester waits ~1 RTT
      resolve = std::max(resolve, t_deadline);
      // Exponential backoff before the next attempt (if any).
      t_attempt = t_deadline + params_.confirm_retry_backoff *
                                  static_cast<double>(1u << (attempt - 1));
    }
    if (!replied) {
      // All attempts timed out: one more strike against the cached ad;
      // after stale_timeout_strikes consecutive strikes the entry goes
      // (legacy default 1: first timeout evicts). The chain-aware overload
      // collapses overlapping chains to one strike when the guard is on.
      const std::uint32_t needed =
          std::max<std::uint32_t>(1, params_.stale_timeout_strikes);
      const std::uint32_t strikes =
          caches_[p].record_timeout(s, start, t_deadline);
      bool quarantined = false;
      if (caches_[p].trust_enabled()) {
        // A timed-out chain also damages trust, so persistent silence
        // (stale advertisers, droppers) eventually quarantines the source.
        ++counters_.trust_strikes;
        ASAP_OBS_HOOK(ctx_.obs, on_trust_strike(p));
        ASAP_OBS_HOOK(ctx_.obs, trace_trust_strike(t_deadline, p, s,
                                                   "timeout"));
        if (caches_[p].record_strike(s, t_deadline)) {
          ++counters_.quarantines;
          ASAP_OBS_HOOK(ctx_.obs, on_quarantine_enter(p));
          ASAP_OBS_HOOK(ctx_.obs, trace_quarantine(t_deadline, p, s, "enter"));
          quarantined = true;
        }
      }
      // erase_stale (not erase): with a configured re-admission backoff the
      // evicted source's ads are dropped for a while, so an in-flight
      // delivery cannot re-admit the just-evicted stale ad immediately.
      if (!quarantined && strikes >= needed &&
          caches_[p].erase_stale(s, t_deadline)) {
        ++counters_.stale_evictions;
        ASAP_OBS_HOOK(ctx_.obs, on_stale_evicted(p));
        ASAP_OBS_HOOK(ctx_.obs, trace_stale_evict(t_deadline, p, s));
        repair_pending_since_ = std::min(repair_pending_since_, t_deadline);
      }
      dead_sources.push_back(s);
    }
  }
  return best;
}

Seconds AsapProtocol::ads_request_phase(
    NodeId p, Seconds start, const bloom::HashedQuery& query,
    metrics::SearchRecord* rec, std::span<const NodeId> skip_sources,
    std::vector<AdPayloadPtr>& matches_out) {
  matches_out.clear();
  last_request_stored_ = 0;
  if (params_.ads_request_hops == 0) return start;
  ++counters_.ads_requests;
  Seconds done = start;
  const auto& interests = ctx_.model.interests(p);

  const std::uint32_t total_cap =
      query.empty() ? params_.join_reply_max : params_.ads_reply_max;
  const std::uint32_t topical_cap =
      query.empty() ? params_.join_reply_max : params_.ads_reply_topical_max;
  auto visit = [&](NodeId v, Seconds t, std::uint32_t) {
    caches_[v].collect_for_reply(query, interests, total_cap, topical_cap,
                                 reply_scratch_);
    Bytes reply_bytes = ctx_.sizes.ads_reply_header;
    for (const auto& ad : reply_scratch_) {
      reply_bytes +=
          ctx_.sizes.ads_reply_entry_overhead + full_ad_bytes(*ad, ctx_.sizes);
    }
    const Seconds t_back = t + ctx_.latency(v, p);
    ASAP_AUDIT_HOOK(ctx_.auditor,
                    on_send(sim::Traffic::kAdsRequest, reply_bytes));
    ctx_.ledger.deposit(t_back, sim::Traffic::kAdsRequest, reply_bytes);
    if (rec != nullptr) {
      rec->cost_bytes += reply_bytes;
      ++rec->messages;
    }
    done = std::max(done, t_back);
    for (auto& ad : reply_scratch_) {
      if (ad->source == p) continue;
      if (std::find(skip_sources.begin(), skip_sources.end(), ad->source) !=
          skip_sources.end()) {
        continue;  // the requester just saw this source dead
      }
      const auto r = caches_[p].put(ad, t_back, ctx_.rng);
      if (r.stored) {
        ++last_request_stored_;
        ASAP_OBS_HOOK(ctx_.obs, on_ad_stored(p));
      }
      if (r.evicted) ASAP_OBS_HOOK(ctx_.obs, on_ad_evicted(p));
      if (r.readmitted) note_readmit(p, ad->source, t_back);
      ASAP_AUDIT_HOOK(ctx_.auditor,
                      on_cache_occupancy(caches_[p].size(),
                                         params_.cache_capacity));
      if (!query.empty() && query.matches(ad->filter)) {
        matches_out.push_back(ad);
      }
    }
    return search::VisitAction::kContinue;
  };

  const auto prop =
      search::flood(ctx_, p, start, params_.ads_request_hops,
                    ctx_.sizes.ads_request, sim::Traffic::kAdsRequest, visit);
  if (rec != nullptr) {
    rec->cost_bytes += prop.bytes;
    rec->messages += prop.messages;
  }

  // Deduplicate by source (two neighbors may return the same ad).
  std::sort(matches_out.begin(), matches_out.end(),
            [](const AdPayloadPtr& a, const AdPayloadPtr& b) {
              if (a->source != b->source) return a->source < b->source;
              return a->version > b->version;
            });
  matches_out.erase(std::unique(matches_out.begin(), matches_out.end(),
                                [](const AdPayloadPtr& a,
                                   const AdPayloadPtr& b) {
                                  return a->source == b->source;
                                }),
                    matches_out.end());
  return done;
}

void AsapProtocol::run_query(const trace::TraceEvent& ev) {
  const NodeId p = ev.node;
  const Seconds t0 = ev.time;
  // A crash-stop node issues nothing: the trace's query never happens, for
  // any algorithm (the fault plan is world-seeded, so all algorithms skip
  // the same queries and success rates stay comparable).
  if (ctx_.faults != nullptr && ctx_.faults->crashed(p, t0)) return;
  const auto terms = ev.term_span();
  metrics::SearchRecord rec;
  rec.issued_at = t0;
  repair_pending_since_ = kInfTime;

  // Overload protection: bounded per-origin pending-query queue with
  // deterministic shedding, plus graceful degradation (TTL clamp-down)
  // under pressure. pending_ is empty unless a cap/clamp is configured.
  bool clamp_ttl = false;
  if (!pending_.empty()) {
    auto& inflight = pending_[p];
    std::erase_if(inflight, [t0](Seconds end) { return end <= t0; });
    const auto depth = static_cast<std::uint32_t>(inflight.size());
    if (params_.pending_query_cap > 0 &&
        depth >= params_.pending_query_cap) {
      // Shed: the query fails immediately at zero protocol cost. A shed
      // legitimate query counts as a failed search; synthetic storm
      // queries are shed silently.
      ++counters_.queries_shed;
      ASAP_OBS_HOOK(ctx_.obs, on_query_shed(p));
      ASAP_OBS_HOOK(ctx_.obs, trace_shed(t0, p, depth));
      if (!synthetic_query()) stats_.add(rec);
      return;
    }
    // Peak counts admitted queries only, so with a cap it never exceeds
    // the cap — shedding is exactly the mechanism that bounds it.
    counters_.peak_pending_depth = std::max<std::uint64_t>(
        counters_.peak_pending_depth, std::uint64_t{depth} + 1);
    clamp_ttl =
        params_.ttl_clamp_depth > 0 && depth >= params_.ttl_clamp_depth;
    if (clamp_ttl) ++counters_.ttl_clamped;
  }

  // Hash the query terms exactly once; every cache scan below — at the
  // querying node and at every node its ads request visits — reuses the
  // precomputed probe positions.
  const bloom::HashedQuery& query = ctx_.hash_query(terms);

  // Phase 1: local ads-cache lookup + confirmations (paper Table I).
  caches_[p].collect_matches(query, scratch_ads_);
  if (caches_[p].trust_enabled() && scratch_ads_.size() > 1) {
    // Trust-weighted ranking: confirm the most trustworthy sources first,
    // so max_confirms budget is not burned on known polluters. stable_sort
    // keeps the deterministic cache-scan order for equal trust.
    std::stable_sort(scratch_ads_.begin(), scratch_ads_.end(),
                     [&](const AdPayloadPtr& a, const AdPayloadPtr& b) {
                       return caches_[p].trust_of(a->source) >
                              caches_[p].trust_of(b->source);
                     });
  }
  Seconds resolve = t0;
  std::vector<NodeId> dead;
  Seconds best =
      confirm_round(p, t0, terms, scratch_ads_, rec, resolve, dead);
  const bool local_success = best < kInfTime;
  Seconds done = resolve;

  // Phase 2: if no match was found *or more responses are needed* (paper
  // Table I), request ads from neighbors within h hops, merge, and retry
  // the confirmation round once. Under storm pressure the clamp suppresses
  // this widening entirely (graceful degradation).
  if ((!local_success || rec.results < params_.results_needed) &&
      !clamp_ttl) {
    std::vector<AdPayloadPtr> fresh;
    const Seconds phase_done =
        ads_request_phase(p, resolve, query, &rec, dead, fresh);
    done = std::max(done, phase_done);
    if (repair_pending_since_ < kInfTime && last_request_stored_ > 0) {
      // The refetch restored cache entries after a stale eviction earlier
      // in this query: a completed repair.
      ++counters_.repair_refetches;
      counters_.repair_seconds_sum += phase_done - repair_pending_since_;
      repair_pending_since_ = kInfTime;
    }
    // Skip sources already confirmed (positively or negatively) in the
    // local round — their answer is known.
    std::erase_if(fresh, [&](const AdPayloadPtr& ad) {
      for (const auto& tried : scratch_ads_) {
        if (tried->source == ad->source) return true;
      }
      return false;
    });
    if (!fresh.empty()) {
      if (caches_[p].trust_enabled() && fresh.size() > 1) {
        // Same trust-weighted ranking as phase 1: the ads-request merge
        // just put these entries into our cache, so sources the fill gate
        // demoted (or confirms struck) sort behind trusted ones.
        std::stable_sort(fresh.begin(), fresh.end(),
                         [&](const AdPayloadPtr& a, const AdPayloadPtr& b) {
                           return caches_[p].trust_of(a->source) >
                                  caches_[p].trust_of(b->source);
                         });
      }
      Seconds resolve2 = phase_done;
      best = std::min(best, confirm_round(p, phase_done, terms, fresh, rec,
                                          resolve2, dead));
      done = std::max(done, resolve2);
    }
  }

  if (!pending_.empty()) pending_[p].push_back(done);

  rec.success = best < kInfTime;
  rec.local_hit = local_success;
  rec.response_time = rec.success ? best - t0 : 0.0;
  ASAP_OBS_HOOK(ctx_.obs,
                trace_query(t0, p, rec.success, rec.local_hit,
                            rec.response_time, rec.cost_bytes, rec.messages,
                            rec.results));
  if (!synthetic_query()) stats_.add(rec);
}

}  // namespace asap::ads
