#include "asap/ad_cache.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace asap::ads {

AdCache::AdCache(std::uint32_t capacity) : capacity_(capacity) {}

AdCache::PutResult AdCache::put(AdPayloadPtr ad, double now, Rng& rng) {
  ASAP_DCHECK(ad != nullptr);
  // Capacity 0 = caching disabled: nothing is stored, nothing is evicted,
  // and no randomness is consumed.
  if (capacity_ == 0) return {};
  const NodeId src = ad->source;
  if (auto it = pos_.find(src); it != pos_.end()) {
    auto& entry = entries_[it->second].second;
    PutResult r;
    // Never downgrade to an older version (walk revisits can deliver the
    // same ad twice; late full ads can race a newer patch).
    if (ad->version >= entry.ad->version) {
      entry.ad = std::move(ad);
      r.stored = true;
    }
    entry.touch = now;
    return r;
  }
  PutResult r;
  if (entries_.size() >= capacity_) {
    evict_one(rng);
    r.evicted = true;
  }
  pos_.emplace(src, static_cast<std::uint32_t>(entries_.size()));
  entries_.emplace_back(src, Entry{std::move(ad), now});
  r.stored = true;
  return r;
}

UpdateOutcome AdCache::apply_patch(NodeId source, std::uint32_t base_version,
                                   const AdPayloadPtr& next, double now) {
  auto it = pos_.find(source);
  if (it == pos_.end()) return UpdateOutcome::kMissing;
  auto& entry = entries_[it->second].second;
  if (entry.ad->version == base_version) {
    entry.ad = next;
    entry.touch = now;
    return UpdateOutcome::kApplied;
  }
  if (entry.ad->version >= next->version) return UpdateOutcome::kIgnoredStale;
  erase_at(it->second);  // stale beyond repair
  return UpdateOutcome::kInvalidated;
}

UpdateOutcome AdCache::on_refresh(NodeId source, std::uint32_t version,
                                  double now) {
  auto it = pos_.find(source);
  if (it == pos_.end()) return UpdateOutcome::kMissing;
  auto& entry = entries_[it->second].second;
  if (entry.ad->version == version) {
    entry.touch = now;
    return UpdateOutcome::kApplied;
  }
  if (entry.ad->version < version) {
    erase_at(it->second);
    return UpdateOutcome::kInvalidated;
  }
  return UpdateOutcome::kIgnoredStale;
}

bool AdCache::erase(NodeId source) {
  auto it = pos_.find(source);
  if (it == pos_.end()) return false;
  erase_at(it->second);
  return true;
}

void AdCache::erase_at(std::size_t idx) {
  ASAP_DCHECK(idx < entries_.size());
  pos_.erase(entries_[idx].first);
  if (idx + 1 != entries_.size()) {
    entries_[idx] = std::move(entries_.back());
    pos_[entries_[idx].first] = static_cast<std::uint32_t>(idx);
  }
  entries_.pop_back();
}

const AdCache::Entry* AdCache::find(NodeId source) const {
  auto it = pos_.find(source);
  return it == pos_.end() ? nullptr : &entries_[it->second].second;
}

void AdCache::touch(NodeId source, double now) {
  auto it = pos_.find(source);
  if (it != pos_.end()) entries_[it->second].second.touch = now;
}

void AdCache::evict_one(Rng& rng) {
  if (entries_.empty()) return;
  // Sampled LRU: evict the stalest of up to 8 random entries.
  constexpr std::size_t kSamples = 8;
  if (entries_.size() <= kSamples) {
    // The sample budget covers the whole cache: scan it exactly. Random
    // sampling here would draw duplicates and could miss the true LRU
    // entry (and would burn RNG draws for nothing).
    std::size_t victim = 0;
    for (std::size_t idx = 1; idx < entries_.size(); ++idx) {
      if (entries_[idx].second.touch < entries_[victim].second.touch) {
        victim = idx;
      }
    }
    erase_at(victim);
    return;
  }
  std::size_t victim = rng.below(entries_.size());
  double oldest = entries_[victim].second.touch;
  for (std::size_t s = 1; s < kSamples; ++s) {
    const std::size_t idx = rng.below(entries_.size());
    if (entries_[idx].second.touch < oldest) {
      oldest = entries_[idx].second.touch;
      victim = idx;
    }
  }
  erase_at(victim);
}

void AdCache::collect_matches(std::span<const KeywordId> terms,
                              std::vector<AdPayloadPtr>& out) const {
  out.clear();
  if (terms.empty()) return;
  for (const auto& [src, entry] : entries_) {
    if (entry.ad->filter.contains_all(terms)) out.push_back(entry.ad);
  }
}

void AdCache::collect_for_reply(std::span<const KeywordId> terms,
                                const std::vector<TopicId>& interests,
                                std::uint32_t max_ads,
                                std::uint32_t max_topical,
                                std::vector<AdPayloadPtr>& out) const {
  out.clear();
  // Pass 1: ads that already satisfy the query terms.
  for (const auto& [src, entry] : entries_) {
    if (out.size() >= max_ads) return;
    if (!terms.empty() && entry.ad->filter.contains_all(terms)) {
      out.push_back(entry.ad);
    }
  }
  // Pass 2: up to max_topical ads topically relevant to the requester.
  std::uint32_t topical = 0;
  for (const auto& [src, entry] : entries_) {
    if (out.size() >= max_ads || topical >= max_topical) return;
    if (!terms.empty() && entry.ad->filter.contains_all(terms)) {
      continue;  // already included
    }
    if (topics_overlap(entry.ad->topics, interests)) {
      out.push_back(entry.ad);
      ++topical;
    }
  }
}

}  // namespace asap::ads
